package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"
)

// newSet builds a silent FlagSet with every shared flag registered —
// the superset no single command uses, which is exactly what makes the
// suite cover all of them at once.
func newSet(f *Flags) *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f.RegisterWorkers(fs, "workers")
	f.RegisterTimeout(fs)
	f.RegisterFaults(fs, "seed=7,synth=0.2")
	f.RegisterTrace(fs, "")
	f.RegisterMetrics(fs)
	f.RegisterCacheDir(fs, "later runs warm-start")
	return fs
}

func parse(t *testing.T, args ...string) (*Flags, error) {
	t.Helper()
	var f Flags
	fs := newSet(&f)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := f.Finish(fs); err != nil {
		return nil, err
	}
	return &f, nil
}

func TestDefaults(t *testing.T) {
	f, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if f.Workers != 0 || f.Timeout != 0 || f.Trace != "" || f.Metrics != "" ||
		f.CacheDir != "" || f.FaultPlan != nil {
		t.Fatalf("defaults wrong: %+v", f)
	}
}

func TestAllFlagsParse(t *testing.T) {
	f, err := parse(t,
		"-workers", "7",
		"-timeout", "90s",
		"-faults", "seed=7,synth@rt_1_rp:count=1,impl=0.3",
		"-trace", "run.json",
		"-metrics", "metrics.json",
		"-cache-dir", "/tmp/ckpt",
	)
	if err != nil {
		t.Fatal(err)
	}
	if f.Workers != 7 || f.Timeout != 90*time.Second || f.Trace != "run.json" ||
		f.Metrics != "metrics.json" || f.CacheDir != "/tmp/ckpt" {
		t.Fatalf("parsed wrong: %+v", f)
	}
	if f.FaultPlan == nil {
		t.Fatal("fault plan not parsed")
	}
}

func TestRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "-2"},
		{"-workers", "x"},
		{"-timeout", "-1s"},
		{"-timeout", "notaduration"},
		{"-faults", "frobnicate@x:count=1"},
		{"-faults", "synth:count=notanumber"},
		{"stray-positional"},
		{"-no-such-flag"},
	} {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("parse(%q) accepted, want error", args)
		}
	}
}

// TestWorkersFlagName: the same definition serves presp-served's
// -job-workers spelling with identical validation.
func TestWorkersFlagName(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f.RegisterWorkers(fs, "job-workers")
	if err := fs.Parse([]string{"-job-workers", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Finish(fs); err != nil {
		t.Fatal(err)
	}
	if f.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", f.Workers)
	}
	f2 := Flags{}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	f2.RegisterWorkers(fs2, "job-workers")
	if err := fs2.Parse([]string{"-job-workers", "-2"}); err != nil {
		t.Fatal(err)
	}
	if err := f2.Finish(fs2); err == nil {
		t.Fatal("negative -job-workers accepted")
	}
}

// TestUsageMentionsExample: the per-command fault-plan example lands in
// the usage text, so presp-sim's help still shows runtime fault ops.
func TestUsageMentionsExample(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.RegisterFaults(fs, "seed=7,icap=0.2,crc@rt_2=0.1")
	fl := fs.Lookup("faults")
	if fl == nil || !strings.Contains(fl.Usage, "icap=0.2") {
		t.Fatalf("usage missing example: %+v", fl)
	}
}
