// Package cliutil centralizes the flag definitions the presp command
// line tools share. presp-flow, presp-sim and presp-served each grew
// their own copies of -workers, -timeout, -faults, -trace, -metrics
// and -cache-dir; the copies had started to drift in usage text and
// validation, so the definitions live here once and the commands
// register the subset they support.
//
// Usage: create a Flags, call the Register* methods against the
// command's FlagSet before Parse, then call Finish after Parse —
// Finish rejects stray positional arguments and runs the shared
// validation (worker-count normalization, fault-plan parsing).
package cliutil

import (
	"flag"
	"fmt"
	"time"

	"presp/internal/faultinject"
	"presp/internal/flow"
)

// Flags holds the parsed values of the shared flags. Only fields whose
// Register* method was called are meaningful.
type Flags struct {
	// Workers is the flow scheduler pool width (0 = all CPUs). The
	// registered flag name varies per command ("workers" for
	// presp-flow, "job-workers" for presp-served) but semantics and
	// validation are identical.
	Workers int
	// Timeout bounds the whole run's wall clock (0 = none).
	Timeout time.Duration
	// Trace is the Chrome trace-event output path ("" = off).
	Trace string
	// Metrics is the flat-JSON metrics output path ("" = off).
	Metrics string
	// CacheDir backs the checkpoint cache with a persistent disk tier.
	CacheDir string
	// FaultPlan is the parsed -faults plan, filled by Finish (nil when
	// the flag was empty or never registered).
	FaultPlan *faultinject.Plan

	faults     string
	hasWorkers bool
}

// RegisterWorkers registers the flow scheduler pool-width flag under
// name (commands differ: presp-flow calls it -workers, presp-served
// -job-workers because -workers there means server execution slots).
func (f *Flags) RegisterWorkers(fs *flag.FlagSet, name string) {
	fs.IntVar(&f.Workers, name, 0, "flow scheduler worker goroutines (0 = all CPUs); results are identical for every value")
	f.hasWorkers = true
}

// RegisterTimeout registers -timeout.
func (f *Flags) RegisterTimeout(fs *flag.FlagSet) {
	fs.DurationVar(&f.Timeout, "timeout", 0, "abort the whole run after this wall-clock duration (0 = none)")
}

// RegisterFaults registers -faults; example is the command-appropriate
// plan shown in the usage text (flow faults differ from runtime ones).
func (f *Flags) RegisterFaults(fs *flag.FlagSet, example string) {
	fs.StringVar(&f.faults, "faults", "", "inject seeded faults, e.g. '"+example+"' (see internal/faultinject)")
}

// RegisterTrace registers -trace; note qualifies the time base (flow
// traces are wall-clock, runtime traces virtual).
func (f *Flags) RegisterTrace(fs *flag.FlagSet, note string) {
	usage := "write a Chrome trace-event file of the run (open in Perfetto)"
	if note != "" {
		usage = "write a Chrome trace-event file of the run (" + note + "; open in Perfetto)"
	}
	fs.StringVar(&f.Trace, "trace", "", usage)
}

// RegisterMetrics registers -metrics.
func (f *Flags) RegisterMetrics(fs *flag.FlagSet) {
	fs.StringVar(&f.Metrics, "metrics", "", "write the metrics registry as flat JSON to this file")
}

// RegisterCacheDir registers -cache-dir; note describes who benefits
// from the warm start ("later runs" vs "a restarted daemon").
func (f *Flags) RegisterCacheDir(fs *flag.FlagSet, note string) {
	fs.StringVar(&f.CacheDir, "cache-dir", "",
		"back the checkpoint cache with a persistent disk tier in this directory; "+note)
}

// Finish validates the shared flags after fs.Parse: no positional
// arguments, a normalizable worker count, a non-negative timeout and a
// parseable fault plan. Call it before reading any Flags field.
func (f *Flags) Finish(fs *flag.FlagSet) error {
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if f.hasWorkers {
		if _, err := flow.NormalizeWorkers(f.Workers); err != nil {
			return err
		}
	}
	if f.Timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", f.Timeout)
	}
	if f.faults != "" {
		plan, err := faultinject.ParsePlan(f.faults)
		if err != nil {
			return err
		}
		f.FaultPlan = plan
	}
	return nil
}
