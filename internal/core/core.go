// Package core implements the primary contribution of the PR-ESP paper:
// the size-driven P&R parallelism technique. It computes the size
// metrics κ, α_av and γ of Eq. (1), classifies a DPR design into the
// five-class taxonomy of Section IV, and chooses among the serial,
// semi-parallel and fully-parallel implementation strategies per the
// decision matrix of Table I. It also performs the semi-parallel
// grouping, packing reconfigurable partitions into balanced P&R runs.
package core

import (
	"fmt"
	"sort"

	"presp/internal/fpga"
	"presp/internal/socgen"
)

// Metrics holds the three size metrics of Eq. (1), all derived from
// post-synthesis LUT utilization.
type Metrics struct {
	// Kappa is lut_static / LUT_tot: the static part as a fraction of
	// the device.
	Kappa float64
	// AlphaAv is Σ lut_i / (N · LUT_tot): the average reconfigurable
	// tile as a fraction of the device.
	AlphaAv float64
	// Gamma is Σ lut_i / lut_static: total reconfigurable over static.
	Gamma float64
	// N is the reconfigurable tile count.
	N int
	// StaticLUTs and ReconfLUTs carry the raw numerators.
	StaticLUTs int
	ReconfLUTs int
	// MaxTileLUTs is the largest single reconfigurable tile.
	MaxTileLUTs int
	// DeviceLUTs is LUT_tot.
	DeviceLUTs int
}

// ComputeMetrics derives the Eq. (1) metrics from an elaborated design.
func ComputeMetrics(d *socgen.Design) (Metrics, error) {
	tot := d.Dev.Total[fpga.LUT]
	if tot <= 0 {
		return Metrics{}, fmt.Errorf("core: device %s reports no LUTs", d.Dev.Name)
	}
	m := Metrics{
		N:          len(d.RPs),
		StaticLUTs: d.StaticResources[fpga.LUT],
		DeviceLUTs: tot,
	}
	for _, rp := range d.RPs {
		l := rp.Resources[fpga.LUT]
		m.ReconfLUTs += l
		if l > m.MaxTileLUTs {
			m.MaxTileLUTs = l
		}
	}
	if m.N == 0 {
		return Metrics{}, fmt.Errorf("core: design %s has no reconfigurable tiles", d.Cfg.Name)
	}
	if m.StaticLUTs <= 0 {
		return Metrics{}, fmt.Errorf("core: design %s has an empty static part", d.Cfg.Name)
	}
	m.Kappa = float64(m.StaticLUTs) / float64(tot)
	m.AlphaAv = float64(m.ReconfLUTs) / (float64(m.N) * float64(tot))
	m.Gamma = float64(m.ReconfLUTs) / float64(m.StaticLUTs)
	return m, nil
}

// Class is the five-class size taxonomy of Section IV.
type Class int

const (
	// Class11: κ ≫ α_av and γ < 1 — the static part dominates every
	// reconfigurable tile and their sum.
	Class11 Class = iota
	// Class12: κ ≫ α_av and γ > 1 — large static part exceeded by the
	// combined reconfigurable tiles.
	Class12
	// Class13: κ ≫ α_av and γ ≈ 1.
	Class13
	// Class21: κ ≲ α_av (some reconfigurable tile rivals or exceeds the
	// static part) and γ > 1.
	Class21
	// Class22: a single reconfigurable tile with γ ≈ 1 — only a serial
	// implementation is meaningful.
	Class22
)

// String names the class with the paper's numbering.
func (c Class) String() string {
	switch c {
	case Class11:
		return "1.1"
	case Class12:
		return "1.2"
	case Class13:
		return "1.3"
	case Class21:
		return "2.1"
	case Class22:
		return "2.2"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// gammaTolerance is the band around γ = 1 treated as "γ ≈ 1". It places
// the paper's designs correctly: SoC_C (γ=0.97) and SOC_3 (γ=1.07) are
// ≈1, SoC_A (γ=1.26) and SOC_2 (γ=1.47) are >1, SoC_B (γ=0.6) is <1.
const gammaTolerance = 0.15

// Classify maps the metrics into the taxonomy. Group 2 membership (κ not
// ≫ α_av) is detected through its defining property: some reconfigurable
// tile is at least as large as the static region (Class 2.1), or the
// design has a single reconfigurable tile (Class 2.2).
func Classify(m Metrics) (Class, error) {
	if m.N <= 0 {
		return 0, fmt.Errorf("core: cannot classify a design with no reconfigurable tiles")
	}
	if m.N == 1 {
		return Class22, nil
	}
	if m.MaxTileLUTs >= m.StaticLUTs {
		if m.Gamma <= 1 {
			// The text proves this combination impossible: if one tile
			// exceeds the static region, the sum does too.
			return 0, fmt.Errorf("core: inconsistent metrics: max tile %d >= static %d but γ=%.2f <= 1",
				m.MaxTileLUTs, m.StaticLUTs, m.Gamma)
		}
		return Class21, nil
	}
	switch {
	case m.Gamma < 1-gammaTolerance:
		return Class11, nil
	case m.Gamma > 1+gammaTolerance:
		return Class12, nil
	default:
		return Class13, nil
	}
}

// StrategyKind enumerates the three P&R implementation strategies.
type StrategyKind int

const (
	// Serial: τ = 1, a single Vivado instance implements the whole
	// design, reconfigurable modules included.
	Serial StrategyKind = iota
	// SemiParallel: reconfigurable tiles are grouped into τ < N runs,
	// each implemented in-context with the pre-routed static part.
	SemiParallel
	// FullyParallel: τ = N, every reconfigurable tile gets its own run
	// after the static-only pre-route.
	FullyParallel
)

// String names the strategy with the paper's terminology.
func (s StrategyKind) String() string {
	switch s {
	case Serial:
		return "serial"
	case SemiParallel:
		return "semi-parallel"
	case FullyParallel:
		return "fully-parallel"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(s))
	}
}

// Strategy is a concrete implementation plan: the kind, the parallelism
// degree τ and the partition of RP names into P&R runs.
type Strategy struct {
	Kind StrategyKind
	// Tau is the number of parallel P&R runs (1 for serial, N for fully
	// parallel).
	Tau int
	// Groups assigns RP names to runs; len(Groups) == Tau except for
	// serial, where Groups is empty (the whole design is one run).
	Groups [][]string
	// Class records the taxonomy class that drove the choice.
	Class Class
	// Metrics records the inputs to the decision.
	Metrics Metrics
}

// DefaultSemiTau is the semi-parallel degree used throughout the paper's
// evaluation ("for all the semi-parallel implementations we set τ = 2").
const DefaultSemiTau = 2

// Choose applies the Table I decision matrix: it computes metrics,
// classifies the design and returns the strategy PR-ESP selects.
//
//	class 1.1 -> serial
//	class 1.2 -> fully-parallel (of the semi/fully pair, the evaluation
//	             shows fully-parallel wins for these designs)
//	class 1.3 -> semi-parallel with τ = DefaultSemiTau
//	class 2.1 -> fully-parallel
//	class 2.2 -> serial
func Choose(d *socgen.Design) (*Strategy, error) {
	m, err := ComputeMetrics(d)
	if err != nil {
		return nil, err
	}
	cls, err := Classify(m)
	if err != nil {
		return nil, err
	}
	s := &Strategy{Class: cls, Metrics: m}
	switch cls {
	case Class11, Class22:
		s.Kind = Serial
		s.Tau = 1
	case Class13:
		s.Kind = SemiParallel
		s.Tau = DefaultSemiTau
		if s.Tau >= m.N {
			// Semi-parallel at τ = N is fully parallel; report it as such
			// so the strategy stays internally consistent.
			s.Kind = FullyParallel
			s.Tau = m.N
		}
		s.Groups = GroupRPs(d, s.Tau)
	case Class12, Class21:
		s.Kind = FullyParallel
		s.Tau = m.N
		s.Groups = GroupRPs(d, s.Tau)
	}
	return s, nil
}

// ForceStrategy builds a Strategy of the requested kind regardless of the
// classification — used by the evaluation to sweep all strategies and by
// the ablation benches.
func ForceStrategy(d *socgen.Design, kind StrategyKind, tau int) (*Strategy, error) {
	m, err := ComputeMetrics(d)
	if err != nil {
		return nil, err
	}
	cls, err := Classify(m)
	if err != nil {
		return nil, err
	}
	s := &Strategy{Kind: kind, Class: cls, Metrics: m}
	switch kind {
	case Serial:
		s.Tau = 1
	case FullyParallel:
		s.Tau = m.N
		s.Groups = GroupRPs(d, s.Tau)
	case SemiParallel:
		if tau <= 1 || tau >= m.N {
			return nil, fmt.Errorf("core: semi-parallel τ=%d must satisfy 1 < τ < N=%d", tau, m.N)
		}
		s.Tau = tau
		s.Groups = GroupRPs(d, tau)
	default:
		return nil, fmt.Errorf("core: unknown strategy kind %d", int(kind))
	}
	return s, nil
}

// GroupRPs partitions the design's reconfigurable partitions into tau
// groups using longest-processing-time bin packing on LUT size, so the
// parallel runs are load-balanced (the slowest run bounds T_tot).
func GroupRPs(d *socgen.Design, tau int) [][]string {
	if tau <= 0 {
		return nil
	}
	type item struct {
		name string
		luts int
	}
	items := make([]item, 0, len(d.RPs))
	for _, rp := range d.RPs {
		items = append(items, item{name: rp.Name, luts: rp.Resources[fpga.LUT]})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].luts != items[j].luts {
			return items[i].luts > items[j].luts
		}
		return items[i].name < items[j].name
	})
	if tau > len(items) {
		tau = len(items)
	}
	groups := make([][]string, tau)
	loads := make([]int, tau)
	for _, it := range items {
		// Place on the least-loaded group.
		best := 0
		for g := 1; g < tau; g++ {
			if loads[g] < loads[best] {
				best = g
			}
		}
		groups[best] = append(groups[best], it.name)
		loads[best] += it.luts
	}
	return groups
}

// GroupRPsRoundRobin is the naive grouping used as an ablation baseline:
// RPs are dealt to groups in name order with no load balancing.
func GroupRPsRoundRobin(d *socgen.Design, tau int) [][]string {
	if tau <= 0 {
		return nil
	}
	if tau > len(d.RPs) {
		tau = len(d.RPs)
	}
	groups := make([][]string, tau)
	for i, rp := range d.RPs {
		groups[i%tau] = append(groups[i%tau], rp.Name)
	}
	return groups
}

// GroupLUTs returns the total LUTs of the named RPs in design d.
func GroupLUTs(d *socgen.Design, names []string) (int, error) {
	byName := make(map[string]int, len(d.RPs))
	for _, rp := range d.RPs {
		byName[rp.Name] = rp.Resources[fpga.LUT]
	}
	sum := 0
	for _, n := range names {
		l, ok := byName[n]
		if !ok {
			return 0, fmt.Errorf("core: design %s has no RP named %q", d.Cfg.Name, n)
		}
		sum += l
	}
	return sum, nil
}
