package core

import (
	"fmt"

	"presp/internal/socgen"
)

// CostEvaluator predicts the end-to-end P&R wall time of implementing
// design d under strategy s (internal/flow provides one backed by the
// calibrated CAD model).
type CostEvaluator interface {
	EvaluateStrategy(d *socgen.Design, s *Strategy) (minutes float64, err error)
}

// ChooseWithModel is the model-based alternative to the paper's
// rule-based Table I decision: instead of classifying by the resource
// profile, it evaluates every applicable strategy (serial, semi-parallel
// τ = 2..min(N-1, maxSemiTau), fully parallel) under the cost evaluator
// and returns the predicted-fastest plan.
//
// The paper's algorithm is the rule-based one — it costs nothing and
// needs no tool model at decision time. ChooseWithModel exists for the
// ablation comparing the two: with a perfectly calibrated model the
// exhaustive evaluation is optimal by construction, and the interesting
// question is how close the O(1) rule gets.
func ChooseWithModel(d *socgen.Design, eval CostEvaluator, maxSemiTau int) (*Strategy, error) {
	if eval == nil {
		return nil, fmt.Errorf("core: nil cost evaluator")
	}
	m, err := ComputeMetrics(d)
	if err != nil {
		return nil, err
	}
	if maxSemiTau <= 0 {
		maxSemiTau = 4
	}
	var candidates []*Strategy
	serial, err := ForceStrategy(d, Serial, 1)
	if err != nil {
		return nil, err
	}
	candidates = append(candidates, serial)
	if m.N >= 2 {
		full, err := ForceStrategy(d, FullyParallel, m.N)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, full)
	}
	for tau := 2; tau < m.N && tau <= maxSemiTau; tau++ {
		semi, err := ForceStrategy(d, SemiParallel, tau)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, semi)
	}

	var best *Strategy
	bestTime := 0.0
	for _, cand := range candidates {
		t, err := eval.EvaluateStrategy(d, cand)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s τ=%d: %w", cand.Kind, cand.Tau, err)
		}
		if best == nil || t < bestTime {
			best, bestTime = cand, t
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no applicable strategy for %s", d.Cfg.Name)
	}
	return best, nil
}
