package core

import (
	"testing"
	"testing/quick"

	"presp/internal/accel"
	"presp/internal/socgen"
)

func design(t *testing.T, cfg *socgen.Config) *socgen.Design {
	t.Helper()
	d, err := socgen.Elaborate(cfg, accel.Default())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMetricsMatchPaper checks Eq. (1) against the Table III values for
// the characterization SoCs.
func TestMetricsMatchPaper(t *testing.T) {
	cases := []struct {
		cfg     *socgen.Config
		alphaAv float64
		kappa   float64
		gamma   float64
	}{
		{socgen.SOC1(), 0.008, 0.271, 0.48},
		{socgen.SOC2(), 0.100, 0.271, 1.48},
		{socgen.SOC3(), 0.096, 0.271, 1.07},
		{socgen.SOC4(), 0.107, 0.129, 4.15},
	}
	for _, c := range cases {
		m, err := ComputeMetrics(design(t, c.cfg))
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.Name, err)
		}
		approx := func(got, want, tol float64) bool { return got-want <= tol && want-got <= tol }
		if !approx(m.AlphaAv, c.alphaAv, 0.002) {
			t.Errorf("%s α_av: got %.4f want %.4f", c.cfg.Name, m.AlphaAv, c.alphaAv)
		}
		if !approx(m.Kappa, c.kappa, 0.005) {
			t.Errorf("%s κ: got %.4f want %.4f", c.cfg.Name, m.Kappa, c.kappa)
		}
		if !approx(m.Gamma, c.gamma, 0.02) {
			t.Errorf("%s γ: got %.4f want %.4f", c.cfg.Name, m.Gamma, c.gamma)
		}
	}
}

// TestClassification places the characterization SoCs in the paper's
// classes: SOC_1 -> 1.1, SOC_2 -> 1.2, SOC_3 -> 1.3, SOC_4 -> 2.1.
func TestClassification(t *testing.T) {
	cases := []struct {
		cfg  *socgen.Config
		want Class
	}{
		{socgen.SOC1(), Class11},
		{socgen.SOC2(), Class12},
		{socgen.SOC3(), Class13},
		{socgen.SOC4(), Class21},
	}
	for _, c := range cases {
		m, err := ComputeMetrics(design(t, c.cfg))
		if err != nil {
			t.Fatal(err)
		}
		cls, err := Classify(m)
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.Name, err)
		}
		if cls != c.want {
			t.Errorf("%s: class %s, want %s", c.cfg.Name, cls, c.want)
		}
	}
}

func TestClassifySingleTile(t *testing.T) {
	m := Metrics{N: 1, StaticLUTs: 30000, ReconfLUTs: 31000, MaxTileLUTs: 31000, DeviceLUTs: 300000, Gamma: 1.03}
	cls, err := Classify(m)
	if err != nil {
		t.Fatal(err)
	}
	if cls != Class22 {
		t.Fatalf("single-tile design: class %s, want 2.2", cls)
	}
}

func TestClassifyGammaBoundaries(t *testing.T) {
	base := Metrics{N: 4, StaticLUTs: 90000, MaxTileLUTs: 30000, DeviceLUTs: 300000}
	cases := []struct {
		gamma float64
		want  Class
	}{
		{0.5, Class11},
		{0.84, Class11}, // just below the ≈1 band
		{0.86, Class13}, // inside the band
		{1.0, Class13},
		{1.14, Class13},
		{1.16, Class12}, // just above the band
		{2.0, Class12},
	}
	for _, c := range cases {
		m := base
		m.Gamma = c.gamma
		m.ReconfLUTs = int(c.gamma * float64(m.StaticLUTs))
		cls, err := Classify(m)
		if err != nil {
			t.Fatalf("γ=%.2f: %v", c.gamma, err)
		}
		if cls != c.want {
			t.Errorf("γ=%.2f: class %s, want %s", c.gamma, cls, c.want)
		}
	}
}

func TestClassifyImpossibleCondition(t *testing.T) {
	// A tile at least the static size with γ <= 1 is the impossible
	// condition the paper notes.
	m := Metrics{N: 3, StaticLUTs: 30000, ReconfLUTs: 25000, MaxTileLUTs: 31000, DeviceLUTs: 300000, Gamma: 0.83}
	if _, err := Classify(m); err == nil {
		t.Fatal("impossible metrics accepted")
	}
	if _, err := Classify(Metrics{}); err == nil {
		t.Fatal("empty metrics accepted")
	}
}

// TestChooseFollowsTableI verifies the full decision path on the
// characterization SoCs (Table I: 1.1 serial, 1.2 fully-parallel, 1.3
// semi-parallel, 2.1 fully-parallel).
func TestChooseFollowsTableI(t *testing.T) {
	cases := []struct {
		cfg  *socgen.Config
		want StrategyKind
		tau  int
	}{
		{socgen.SOC1(), Serial, 1},
		{socgen.SOC2(), FullyParallel, 4},
		{socgen.SOC3(), SemiParallel, 2},
		{socgen.SOC4(), FullyParallel, 5},
	}
	for _, c := range cases {
		s, err := Choose(design(t, c.cfg))
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.Name, err)
		}
		if s.Kind != c.want || s.Tau != c.tau {
			t.Errorf("%s: chose %s τ=%d, want %s τ=%d", c.cfg.Name, s.Kind, s.Tau, c.want, c.tau)
		}
		if s.Kind != Serial && len(s.Groups) != s.Tau {
			t.Errorf("%s: %d groups for τ=%d", c.cfg.Name, len(s.Groups), s.Tau)
		}
	}
}

func TestForceStrategyValidation(t *testing.T) {
	d := design(t, socgen.SOC2())
	if _, err := ForceStrategy(d, SemiParallel, 1); err == nil {
		t.Fatal("semi-parallel τ=1 accepted")
	}
	if _, err := ForceStrategy(d, SemiParallel, 4); err == nil {
		t.Fatal("semi-parallel τ=N accepted")
	}
	s, err := ForceStrategy(d, SemiParallel, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tau != 3 || len(s.Groups) != 3 {
		t.Fatalf("forced semi τ=3: got τ=%d groups=%d", s.Tau, len(s.Groups))
	}
	full, err := ForceStrategy(d, FullyParallel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Tau != 4 {
		t.Fatalf("fully-parallel τ: got %d want 4", full.Tau)
	}
	serial, err := ForceStrategy(d, Serial, 0)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Tau != 1 || len(serial.Groups) != 0 {
		t.Fatal("serial strategy should have no groups")
	}
}

// TestGroupRPsPartition: every partition appears in exactly one group.
func TestGroupRPsPartition(t *testing.T) {
	d := design(t, socgen.SOC1())
	for tau := 1; tau <= 16; tau++ {
		groups := GroupRPs(d, tau)
		seen := make(map[string]int)
		for _, g := range groups {
			for _, name := range g {
				seen[name]++
			}
		}
		if len(seen) != 16 {
			t.Fatalf("τ=%d: %d partitions grouped, want 16", tau, len(seen))
		}
		for name, n := range seen {
			if n != 1 {
				t.Fatalf("τ=%d: %s appears %d times", tau, name, n)
			}
		}
	}
}

// TestGroupRPsBalance: LPT packing keeps the heaviest group within 2x
// of the average (the classical LPT bound is 4/3 OPT; 2x is a loose
// sanity check that still catches naive packing).
func TestGroupRPsBalance(t *testing.T) {
	d := design(t, socgen.SOC2())
	groups := GroupRPs(d, 2)
	var loads []int
	total := 0
	for _, g := range groups {
		l, err := GroupLUTs(d, g)
		if err != nil {
			t.Fatal(err)
		}
		loads = append(loads, l)
		total += l
	}
	avg := total / len(groups)
	for i, l := range loads {
		if l > 2*avg {
			t.Fatalf("group %d load %d exceeds 2x average %d", i, l, avg)
		}
	}
}

// TestLPTBeatsRoundRobinOnSkewedSizes: the ablation baseline must be
// measurably worse on size-skewed designs.
func TestLPTBeatsRoundRobinOnSkewedSizes(t *testing.T) {
	d := design(t, socgen.SOC4()) // CPU 41.5k + accelerators 20-37k
	maxLoad := func(groups [][]string) int {
		max := 0
		for _, g := range groups {
			l, err := GroupLUTs(d, g)
			if err != nil {
				t.Fatal(err)
			}
			if l > max {
				max = l
			}
		}
		return max
	}
	lpt := maxLoad(GroupRPs(d, 2))
	rr := maxLoad(GroupRPsRoundRobin(d, 2))
	if lpt > rr {
		t.Fatalf("LPT (%d) worse than round-robin (%d)", lpt, rr)
	}
}

func TestGroupRPsProperty(t *testing.T) {
	d := design(t, socgen.SOC1())
	f := func(tauByte uint8) bool {
		tau := 1 + int(tauByte)%16
		groups := GroupRPs(d, tau)
		if len(groups) != tau {
			return false
		}
		count := 0
		for _, g := range groups {
			count += len(g)
		}
		return count == 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLUTsUnknownName(t *testing.T) {
	d := design(t, socgen.SOC2())
	if _, err := GroupLUTs(d, []string{"ghost_rp"}); err == nil {
		t.Fatal("unknown partition accepted")
	}
}

func TestStrategyKindStrings(t *testing.T) {
	if Serial.String() != "serial" || SemiParallel.String() != "semi-parallel" || FullyParallel.String() != "fully-parallel" {
		t.Fatal("strategy names wrong")
	}
	for _, c := range []Class{Class11, Class12, Class13, Class21, Class22} {
		if c.String() == "" {
			t.Fatal("unnamed class")
		}
	}
}

// fixedEvaluator scores strategies by a canned table for testing the
// model-based chooser.
type fixedEvaluator struct {
	times map[StrategyKind]float64
}

func (f *fixedEvaluator) EvaluateStrategy(_ *socgen.Design, s *Strategy) (float64, error) {
	t, ok := f.times[s.Kind]
	if !ok {
		return 1e9, nil
	}
	// Make higher τ slightly cheaper within a kind so the chooser must
	// visit every candidate.
	return t - float64(s.Tau)*0.01, nil
}

func TestChooseWithModel(t *testing.T) {
	d := design(t, socgen.SOC2())
	eval := &fixedEvaluator{times: map[StrategyKind]float64{
		Serial:        100,
		SemiParallel:  80,
		FullyParallel: 90,
	}}
	s, err := ChooseWithModel(d, eval, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != SemiParallel {
		t.Fatalf("model chooser picked %s", s.Kind)
	}
	if _, err := ChooseWithModel(d, nil, 4); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	// Single-partition design: only serial applies.
	single := design(t, socgen.Profiling2x2("fft"))
	s, err = ChooseWithModel(single, eval, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != Serial {
		t.Fatalf("single-RP design: picked %s", s.Kind)
	}
}
