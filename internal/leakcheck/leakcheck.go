// Package leakcheck verifies that tests leave no goroutines behind —
// the cancellation paths of the flow scheduler and the reconfiguration
// manager must drain their worker pools completely.
//
// It mirrors the VerifyTestMain/VerifyNone API of go.uber.org/goleak
// but is implemented on runtime.Stack alone, so it adds no dependency
// (the build environment is offline). Detection is snapshot-based:
// goroutines are given a grace period to finish, then any survivor that
// is not part of the runtime, the test framework or this package is
// reported as a leak.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// benign matches goroutine stacks that legitimately outlive a test:
// the test runner itself, runtime service goroutines, and this
// package's own snapshot machinery.
var benign = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.(*T).Run(",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"runtime.goexit",
	"created by runtime.",
	"runtime/trace.Start",
	"signal.Notify",
	"os/signal.signal_recv",
	"os/signal.loop",
	"leakcheck.stacks",
}

// stacks returns one stack dump per live goroutine, excluding the
// caller's own.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	dumps := strings.Split(string(buf), "\n\n")
	if len(dumps) > 0 {
		dumps = dumps[1:] // first dump is this goroutine
	}
	return dumps
}

// leaked returns the stack dumps of goroutines that look like leaks.
func leaked() []string {
	var out []string
	for _, d := range stacks() {
		if strings.TrimSpace(d) == "" {
			continue
		}
		ok := false
		for _, pat := range benign {
			if strings.Contains(d, pat) {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, d)
		}
	}
	return out
}

// check retries for the grace period, letting goroutines that are
// mid-shutdown finish before they are declared leaked.
func check(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	var last []string
	for {
		last = leaked()
		if len(last) == 0 || time.Now().After(deadline) {
			return last
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// errorReporter is the subset of testing.TB VerifyNone needs.
type errorReporter interface {
	Errorf(format string, args ...any)
}

// VerifyNone fails t if goroutines are still running after a short
// grace period. Call it at the end of a test that exercises worker
// pools or cancellation.
func VerifyNone(t errorReporter) {
	if bad := check(2 * time.Second); len(bad) > 0 {
		t.Errorf("leakcheck: %d leaked goroutine(s):\n%s", len(bad), strings.Join(bad, "\n\n"))
	}
}

// VerifyTestMain wraps a package's TestMain: it runs the tests, then
// fails the whole run if any goroutine outlived them. Usage:
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
func VerifyTestMain(m interface{ Run() int }) {
	code := m.Run()
	if code == 0 {
		if bad := check(2 * time.Second); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked past the test run:\n%s\n",
				len(bad), strings.Join(bad, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
