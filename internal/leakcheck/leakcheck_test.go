package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder captures Errorf calls without failing the real test.
type recorder struct {
	msgs []string
}

func (r *recorder) Errorf(format string, args ...any) {
	r.msgs = append(r.msgs, format)
}

func TestVerifyNoneCleanRun(t *testing.T) {
	VerifyNone(t)
}

func TestVerifyNoneCatchesLeak(t *testing.T) {
	stop := make(chan struct{})
	go func() { <-stop }() // deliberate leak
	time.Sleep(20 * time.Millisecond)

	bad := check(50 * time.Millisecond)
	close(stop)
	if len(bad) == 0 {
		t.Fatal("leaked goroutine not detected")
	}
	found := false
	for _, d := range bad {
		if strings.Contains(d, "TestVerifyNoneCatchesLeak") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak report does not name the leaking test:\n%s", strings.Join(bad, "\n\n"))
	}
	// The goroutine exits once stop is closed; a later VerifyNone passes.
	VerifyNone(&recorder{})
}

func TestMain(m *testing.M) { VerifyTestMain(m) }
