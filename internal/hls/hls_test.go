package hls

import (
	"testing"
	"testing/quick"

	"presp/internal/fpga"
)

func baseDesc() *Description {
	return &Description{
		Name:          "test",
		Width:         32,
		Adders:        4,
		Multipliers:   2,
		UseDSP:        true,
		Unroll:        4,
		MuxInputs:     8,
		FSMStates:     6,
		BufferBits:    8 * 36864,
		PipelineDepth: 6,
	}
}

func TestEstimateBasics(t *testing.T) {
	r, err := Estimate(baseDesc())
	if err != nil {
		t.Fatal(err)
	}
	if r[fpga.LUT] <= 0 || r[fpga.FF] <= 0 {
		t.Fatalf("degenerate estimate: %v", r)
	}
	if r[fpga.BRAM] != 8+2 { // 8 buffer blocks + wrapper's 2
		t.Fatalf("BRAM estimate: got %d want 10", r[fpga.BRAM])
	}
	if r[fpga.DSP] != 2*4*4 { // 2 muls × ceil(32/25)·ceil(32/18)=4 DSPs × 4 lanes
		t.Fatalf("DSP estimate: got %d want 32", r[fpga.DSP])
	}
}

func TestEstimateUnrollMonotonic(t *testing.T) {
	d1 := baseDesc()
	d1.Unroll = 2
	d2 := baseDesc()
	d2.Unroll = 8
	r1, err := Estimate(d1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Estimate(d2)
	if err != nil {
		t.Fatal(err)
	}
	if r2[fpga.LUT] <= r1[fpga.LUT] {
		t.Fatalf("more unroll should cost more LUTs: %d vs %d", r1[fpga.LUT], r2[fpga.LUT])
	}
	if r2[fpga.DSP] != 4*r1[fpga.DSP] {
		t.Fatalf("DSP should scale with lanes: %d vs %d", r1[fpga.DSP], r2[fpga.DSP])
	}
}

func TestEstimateMonotonicProperty(t *testing.T) {
	// Adding operators never reduces the LUT estimate.
	f := func(adders, extra uint8) bool {
		d1 := baseDesc()
		d1.Adders = int(adders % 32)
		d2 := baseDesc()
		d2.Adders = d1.Adders + int(extra%16)
		r1, err1 := Estimate(d1)
		r2, err2 := Estimate(d2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2[fpga.LUT] >= r1[fpga.LUT]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDSPvsLUTMultiplier(t *testing.T) {
	dsp := baseDesc()
	dsp.UseDSP = true
	soft := baseDesc()
	soft.UseDSP = false
	rd, err := Estimate(dsp)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Estimate(soft)
	if err != nil {
		t.Fatal(err)
	}
	if rs[fpga.LUT] <= rd[fpga.LUT] {
		t.Fatal("soft multipliers should cost more LUTs than DSP mapping")
	}
	if rs[fpga.DSP] != 0 {
		t.Fatalf("soft multipliers should use no DSPs, got %d", rs[fpga.DSP])
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Description){
		func(d *Description) { d.Width = 0 },
		func(d *Description) { d.Width = 200 },
		func(d *Description) { d.Unroll = 0 },
		func(d *Description) { d.Adders = -1 },
		func(d *Description) { d.BufferBits = -5 },
		func(d *Description) { d.Dividers = -1 },
	}
	for i, mutate := range cases {
		d := baseDesc()
		mutate(d)
		if _, err := Estimate(d); err == nil {
			t.Errorf("case %d: invalid description accepted", i)
		}
	}
}

func TestLatency(t *testing.T) {
	d := baseDesc()
	c0, err := Latency(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1000, err := Latency(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c1000 <= c0 {
		t.Fatal("latency should grow with items")
	}
	// Four lanes: 1000 items stream in 250 cycles.
	if c1000-c0 != 250 {
		t.Fatalf("streaming cycles: got %d want 250", c1000-c0)
	}
	if _, err := Latency(d, -1); err == nil {
		t.Fatal("negative item count accepted")
	}
}

func TestLatencyThroughputOverride(t *testing.T) {
	d := baseDesc()
	d.ItemsPerCycle = 0.5
	c, err := Latency(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Latency(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c-base != 200 {
		t.Fatalf("half-rate pipeline: got %d extra cycles, want 200", c-base)
	}
}

func TestRelativeError(t *testing.T) {
	est := fpga.NewResources(110, 0, 0, 0)
	meas := fpga.NewResources(100, 0, 0, 0)
	if got := RelativeError(est, meas); got < 0.099 || got > 0.101 {
		t.Fatalf("relative error: got %g want 0.1", got)
	}
}

// TestEstimatorTracksPaperAccelerators cross-checks the estimator
// against the measured Table II utilizations: datapath descriptions
// sized like the paper's accelerators must land within 35% on LUTs —
// the estimator is a planning tool, not a synthesis replacement.
func TestEstimatorTracksPaperAccelerators(t *testing.T) {
	cases := []struct {
		name     string
		desc     *Description
		measured int
	}{
		{
			name: "mac",
			desc: &Description{
				Name: "mac", Width: 32, Adders: 15, Multipliers: 16, UseDSP: true,
				Unroll: 1, MuxInputs: 18, FSMStates: 5, BufferBits: 2 * 36864, PipelineDepth: 6,
			},
			measured: 2450,
		},
		{
			name: "conv2d",
			desc: &Description{
				Name: "conv2d", Width: 32, Adders: 9, Multipliers: 9, UseDSP: true,
				Unroll: 32, MuxInputs: 40, FSMStates: 12, BufferBits: 90 * 36864, PipelineDepth: 10,
			},
			measured: 36741,
		},
		{
			name: "sort",
			desc: &Description{
				Name: "sort", Width: 64, Adders: 0, Comparators: 32, Multipliers: 0,
				Unroll: 8, MuxInputs: 28, FSMStates: 10, BufferBits: 46 * 36864, PipelineDepth: 8,
			},
			measured: 20468,
		},
	}
	for _, c := range cases {
		est, err := Estimate(c.desc)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		rel := RelativeError(est, fpga.NewResources(c.measured, 0, 0, 0))
		if rel > 0.35 {
			t.Errorf("%s: estimate %d vs measured %d (%.0f%% off)", c.name, est[fpga.LUT], c.measured, rel*100)
		}
	}
}
