// Package hls is a high-level-synthesis resource and latency estimator.
// It plays the role of the Vivado HLS / Stratus HLS resource reports in
// the PR-ESP flow: given a structural description of an accelerator
// datapath (operation mix, bit widths, unrolling, buffering), it predicts
// post-synthesis LUT/FF/BRAM/DSP utilization and pipeline latency.
//
// The cost coefficients follow the usual Xilinx 7-series mapping rules
// (a w-bit ripple adder is ~w LUTs, a pipelined multiplier maps to DSP48
// slices of 25x18 partial products plus glue, a 2:1 mux is one LUT per
// bit, ...). The estimator is validated in tests against the measured
// utilization of the paper's accelerators (Table II) within tolerance.
package hls

import (
	"fmt"
	"math"

	"presp/internal/fpga"
)

// Description is the structural description of one accelerator datapath.
type Description struct {
	// Name labels the design in error messages.
	Name string
	// Width is the datapath bit width.
	Width int
	// Adders, Comparators, LogicOps are per-lane operator counts.
	Adders      int
	Comparators int
	LogicOps    int
	// Multipliers is the per-lane multiplier count. UseDSP selects DSP48
	// mapping (the default for both HLS tools targeting 7-series).
	Multipliers int
	UseDSP      bool
	// Dividers is the per-lane divider count (iterative, LUT-heavy).
	Dividers int
	// Unroll is the lane count (parallel datapath copies).
	Unroll int
	// MuxInputs is the total number of steering mux inputs per lane.
	MuxInputs int
	// FSMStates is the controller state count.
	FSMStates int
	// BufferBits is the total on-chip buffering in bits (maps to BRAM).
	BufferBits int
	// PipelineDepth is the pipeline register depth (affects FF and
	// latency ramp-up).
	PipelineDepth int
	// ItemsPerCycle is the pipeline throughput once primed (items/cycle
	// across all lanes); zero means Unroll items per cycle.
	ItemsPerCycle float64
	// WrapperOverhead adds the ESP socket-side DMA/register adapter cost
	// inside the accelerator; when zero, the standard wrapper is assumed.
	WrapperOverhead fpga.Resources
}

// standardWrapper is the ESP accelerator-side socket adapter: DMA engine,
// register file, interrupt logic.
var standardWrapper = fpga.NewResources(1150, 1400, 2, 0)

// Validate checks the description for obvious inconsistencies.
func (d *Description) Validate() error {
	if d.Width <= 0 || d.Width > 128 {
		return fmt.Errorf("hls: %s: width %d out of range (1..128)", d.Name, d.Width)
	}
	if d.Unroll <= 0 {
		return fmt.Errorf("hls: %s: unroll must be positive, got %d", d.Name, d.Unroll)
	}
	if d.Adders < 0 || d.Comparators < 0 || d.LogicOps < 0 || d.Multipliers < 0 || d.Dividers < 0 {
		return fmt.Errorf("hls: %s: negative operator count", d.Name)
	}
	if d.BufferBits < 0 {
		return fmt.Errorf("hls: %s: negative buffer size", d.Name)
	}
	return nil
}

// Estimate predicts the post-synthesis resource utilization of d.
func Estimate(d *Description) (fpga.Resources, error) {
	if err := d.Validate(); err != nil {
		return fpga.Resources{}, err
	}
	w := float64(d.Width)
	lanes := float64(d.Unroll)

	// Per-lane LUT cost.
	perLane := 0.0
	perLane += float64(d.Adders) * w           // ripple/carry adders
	perLane += float64(d.Comparators) * w      // comparators
	perLane += float64(d.LogicOps) * w / 2     // bitwise ops pack 2/LUT6
	perLane += float64(d.MuxInputs) * w * 0.55 // steering muxes

	var dsp int
	if d.Multipliers > 0 {
		if d.UseDSP {
			perDSP := int(math.Ceil(w/25) * math.Ceil(w/18))
			dsp = d.Multipliers * perDSP * d.Unroll
			perLane += float64(d.Multipliers) * 45 // DSP cascade glue
		} else {
			perLane += float64(d.Multipliers) * w * w / 1.25
		}
	}
	perLane += float64(d.Dividers) * 3.4 * w * w // iterative divider array

	// Controller + wrapper.
	control := 140.0 + 28.0*float64(d.FSMStates)
	wrapper := d.WrapperOverhead
	if wrapper.IsZero() {
		wrapper = standardWrapper
	}

	lut := int(perLane*lanes + control)
	// Flip-flops: pipeline registers dominate.
	depth := d.PipelineDepth
	if depth <= 0 {
		depth = 4
	}
	ff := int(lanes*w*float64(depth)*1.15 + control)
	bram := int(math.Ceil(float64(d.BufferBits) / 36864.0))

	total := fpga.NewResources(lut, ff, bram, dsp).Add(wrapper)
	return total, nil
}

// Latency predicts the execution cycles for n input items.
func Latency(d *Description, n int) (int64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("hls: %s: negative item count %d", d.Name, n)
	}
	throughput := d.ItemsPerCycle
	if throughput <= 0 {
		throughput = float64(d.Unroll)
	}
	depth := d.PipelineDepth
	if depth <= 0 {
		depth = 4
	}
	// DMA setup + pipeline ramp + streaming.
	return int64(depth) + 64 + int64(math.Ceil(float64(n)/throughput)), nil
}

// RelativeError returns |est-meas| / meas for the LUT count, the metric
// the estimator is validated against.
func RelativeError(est, meas fpga.Resources) float64 {
	m := float64(meas[fpga.LUT])
	if m == 0 {
		return math.Inf(1)
	}
	return math.Abs(float64(est[fpga.LUT])-m) / m
}
