package tile

import (
	"testing"

	"presp/internal/fpga"
	"presp/internal/noc"
	"presp/internal/rtl"
)

// TestStaticPartMatchesPaper checks the resource accounting that anchors
// every size metric: CPU+MEM+AUX tiles plus their NoC routers total the
// paper's 82267 LUTs, and the CPU-less static part totals 39254
// (Table II).
func TestStaticPartMatchesPaper(t *testing.T) {
	r := RouterCost()[fpga.LUT]
	withCPU := CPUTileCost(Leon3)[fpga.LUT] + MemTileCost()[fpga.LUT] + AuxTileCost()[fpga.LUT] + 3*r
	if withCPU != 82267 {
		t.Fatalf("static part: got %d want 82267", withCPU)
	}
	withoutCPU := MemTileCost()[fpga.LUT] + AuxTileCost()[fpga.LUT] + 2*r
	if withoutCPU != 39254 {
		t.Fatalf("static part w/o CPU: got %d want 39254", withoutCPU)
	}
	if CPUTileCost(Leon3)[fpga.LUT] != 41544 {
		t.Fatalf("Leon3 tile: got %d want 41544", CPUTileCost(Leon3)[fpga.LUT])
	}
}

func TestCVA6LargerThanLeon3(t *testing.T) {
	if CPUTileCost(CVA6)[fpga.LUT] <= CPUTileCost(Leon3)[fpga.LUT] {
		t.Fatal("the 64-bit CVA6 should be larger than the Leon3")
	}
}

func TestKindStaticPartition(t *testing.T) {
	statics := []Kind{CPU, Mem, Aux, SLM, Accel}
	for _, k := range statics {
		if !k.Static() {
			t.Errorf("%s should be static", k)
		}
	}
	if Reconf.Static() {
		t.Error("reconfigurable tiles are not part of the static design")
	}
	if Empty.Static() {
		t.Error("empty slots are not static logic")
	}
}

func TestTileValidate(t *testing.T) {
	ok := Tile{Name: "rt", Kind: Reconf, AccelName: "fft", Pos: noc.Coord{}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid tile rejected: %v", err)
	}
	cases := []Tile{
		{Name: "", Kind: CPU},
		{Name: "a", Kind: Accel},  // accelerator tile without accelerator
		{Name: "r", Kind: Reconf}, // reconf tile with nothing to host
		{Name: "e", Kind: Empty},  // explicit empty tile
	}
	for i, tl := range cases {
		if err := tl.Validate(); err == nil {
			t.Errorf("case %d: invalid tile accepted: %+v", i, tl)
		}
	}
	// A reconfigurable tile hosting the CPU needs no accelerator.
	cpuRT := Tile{Name: "rt_cpu", Kind: Reconf, ReconfCPU: true}
	if err := cpuRT.Validate(); err != nil {
		t.Fatalf("reconfigurable CPU tile rejected: %v", err)
	}
}

func TestNativeAccelTileViolatesDFXRules(t *testing.T) {
	// The native ESP accelerator tile embeds clock-modifying power
	// management and drives an output clock — both prohibited inside
	// reconfigurable partitions (Section III).
	m := NativeAccelModule("acc_tile", fpga.NewResources(10000, 10000, 0, 0))
	if err := CheckDFXCompliance(m); err == nil {
		t.Fatal("native accelerator tile passed DFX compliance")
	}
	if !m.ContainsClockModifying() {
		t.Fatal("native tile should contain clock-modifying DVFS logic")
	}
	if !m.DrivesClockOut() {
		t.Fatal("native tile should drive an output clock")
	}
}

func TestWrapperModuleIsDFXCompliant(t *testing.T) {
	// The PR-ESP reconfigurable wrapper is exactly the fix: same
	// accelerator, no clock-modifying logic, no route-through clocks.
	w := WrapperModule("fft", fpga.NewResources(33690, 37000, 72, 144))
	if err := CheckDFXCompliance(w); err != nil {
		t.Fatalf("wrapper failed DFX compliance: %v", err)
	}
	// The wrapper presents the common interface: load/store ports,
	// configuration registers, completion interrupt.
	var hasLoad, hasStore, hasConf, hasIRQ bool
	for _, p := range w.Ports {
		switch p.Name {
		case "ld":
			hasLoad = true
		case "st":
			hasStore = true
		case "conf":
			hasConf = true
		case "acc_done":
			hasIRQ = true
		}
	}
	if !hasLoad || !hasStore || !hasConf || !hasIRQ {
		t.Fatalf("wrapper interface incomplete: ld=%v st=%v conf=%v irq=%v", hasLoad, hasStore, hasConf, hasIRQ)
	}
}

func TestReconfModuleBlackBoxWhenEmpty(t *testing.T) {
	m := ReconfModule("rt_1", nil)
	foundBB := false
	m.Walk(func(_ string, mod *rtl.Module) {
		if mod.BlackBox {
			foundBB = true
		}
	})
	if !foundBB {
		t.Fatal("empty reconfigurable tile should contain a black-box partition")
	}
	// With content, the partition carries the content's cost.
	w := WrapperModule("sort", fpga.NewResources(20468, 22000, 48, 0))
	filled := ReconfModule("rt_2", w)
	total := filled.TotalCost()[fpga.LUT]
	want := ReconfSocketCost()[fpga.LUT] + 20468
	if total != want {
		t.Fatalf("filled tile cost: got %d want %d", total, want)
	}
}

func TestAuxModuleHostsDFXC(t *testing.T) {
	m := AuxModule("aux0", fpga.Virtex7)
	if m.Find("aux0_dfxc") == nil {
		t.Fatal("auxiliary tile lacks the DFX controller")
	}
	if m.Find("ICAPE2") == nil {
		t.Fatal("Virtex-7 auxiliary tile should instantiate ICAPE2")
	}
	us := AuxModule("aux1", fpga.UltraScalePlus)
	if us.Find("ICAPE3") == nil {
		t.Fatal("UltraScale+ auxiliary tile should instantiate ICAPE3")
	}
	// The DFXC share is part of the AUX budget, not extra.
	if m.TotalCost()[fpga.LUT] != AuxTileCost()[fpga.LUT] {
		t.Fatalf("aux tile cost: got %d want %d", m.TotalCost()[fpga.LUT], AuxTileCost()[fpga.LUT])
	}
}

func TestCPUMemSLMModules(t *testing.T) {
	if CPUModule("cpu0", Leon3).TotalCost()[fpga.LUT] != CPUTileCost(Leon3)[fpga.LUT] {
		t.Fatal("CPU module cost mismatch")
	}
	if MemModule("mem0").TotalCost()[fpga.LUT] != MemTileCost()[fpga.LUT] {
		t.Fatal("MEM module cost mismatch")
	}
	if SLMModule("slm0").TotalCost()[fpga.LUT] != SLMTileCost()[fpga.LUT] {
		t.Fatal("SLM module cost mismatch")
	}
}

func TestKindJSONRoundtrip(t *testing.T) {
	for _, k := range []Kind{CPU, Mem, Aux, SLM, Accel, Reconf, Empty} {
		data, err := k.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if back != k {
			t.Fatalf("roundtrip %s -> %s", k, back)
		}
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"reconf"`)); err != nil || k != Reconf {
		t.Fatalf("lower-case mnemonic: %v %v", k, err)
	}
	if err := k.UnmarshalJSON([]byte(`"6"`)); err != nil || k != Reconf {
		t.Fatalf("legacy numeric: %v %v", k, err)
	}
	if err := k.UnmarshalJSON([]byte(`"warp-core"`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := k.UnmarshalJSON([]byte(`"99"`)); err == nil {
		t.Fatal("out-of-range numeric accepted")
	}
}

func TestCPUCoreStrings(t *testing.T) {
	if Leon3.String() != "leon3" || CVA6.String() != "cva6" {
		t.Fatal("core names wrong")
	}
}

func TestDFXCCostWithinAux(t *testing.T) {
	if !AuxTileCost().Covers(DFXCCost()) {
		t.Fatal("DFXC share exceeds the AUX tile budget")
	}
}
