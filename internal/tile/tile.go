// Package tile models the ESP tile-based architecture as extended by
// PR-ESP: processor, memory, auxiliary, shared-local-memory and
// accelerator tiles, plus the two PR-ESP additions — the reconfigurable
// tile (with its decoupling logic and common reconfigurable wrapper
// interface) and the upgraded auxiliary tile embedding the dynamic
// function exchange controller (DFXC) and the ICAP primitive.
//
// Each tile contributes two things: an RTL module (consumed by the FPGA
// flow) and runtime behaviour (consumed by the reconfiguration manager
// and the execution simulation).
package tile

import (
	"fmt"
	"strconv"
	"strings"

	"presp/internal/fpga"
	"presp/internal/noc"
	"presp/internal/rtl"
)

// Kind enumerates the tile types.
type Kind int

const (
	// Empty is an unpopulated grid slot.
	Empty Kind = iota
	// CPU is a processor tile (Leon3 or CVA6).
	CPU
	// Mem is a memory controller tile.
	Mem
	// Aux is the auxiliary tile (I/O, and in PR-ESP the DFXC + ICAP).
	Aux
	// SLM is a shared-local-memory tile.
	SLM
	// Accel is a native (monolithic, non-reconfigurable) accelerator tile.
	Accel
	// Reconf is the PR-ESP reconfigurable tile hosting an RP.
	Reconf
)

// String names the tile kind with the ESP mnemonic.
func (k Kind) String() string {
	switch k {
	case Empty:
		return "EMPTY"
	case CPU:
		return "CPU"
	case Mem:
		return "MEM"
	case Aux:
		return "AUX"
	case SLM:
		return "SLM"
	case Accel:
		return "ACC"
	case Reconf:
		return "RECONF"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalJSON serializes the kind as its mnemonic.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the mnemonic (case-insensitive) or the legacy
// numeric form.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s := strings.Trim(string(data), `"`)
	switch strings.ToUpper(s) {
	case "CPU":
		*k = CPU
	case "MEM":
		*k = Mem
	case "AUX":
		*k = Aux
	case "SLM":
		*k = SLM
	case "ACC", "ACCEL":
		*k = Accel
	case "RECONF":
		*k = Reconf
	case "EMPTY":
		*k = Empty
	default:
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 || n > int(Reconf) {
			return fmt.Errorf("tile: unknown kind %q", s)
		}
		*k = Kind(n)
	}
	return nil
}

// Static reports whether tiles of this kind belong to the static part of
// a PR-ESP design (Section IV: MEM, CPU, AUX and SLM instances form the
// static part; reconfigurable tiles do not).
func (k Kind) Static() bool {
	switch k {
	case CPU, Mem, Aux, SLM, Accel:
		return true
	default:
		return false
	}
}

// CPUCore selects the processor core in a CPU tile.
type CPUCore int

const (
	// Leon3 is the 32-bit SPARC core.
	Leon3 CPUCore = iota
	// CVA6 is the 64-bit RISC-V (Ariane) core.
	CVA6
)

// String names the core.
func (c CPUCore) String() string {
	if c == CVA6 {
		return "cva6"
	}
	return "leon3"
}

// Resource profiles of the fixed tiles. The CPU tile LUT count follows
// Table II (41544 for the Leon3 configuration); MEM and AUX are sized so
// the three-tile static part of the characterization SoCs totals the
// paper's 82267 LUTs, with the AUX tile carrying the DFXC + ICAP logic
// PR-ESP adds.
var (
	leon3TileCost = fpga.NewResources(41544, 45800, 72, 16)
	cva6TileCost  = fpga.NewResources(55210, 61400, 84, 27)
	memTileCost   = fpga.NewResources(21500, 24100, 38, 0)
	auxTileCost   = fpga.NewResources(14816, 16500, 22, 0)
	slmTileCost   = fpga.NewResources(6100, 6900, 128, 0)
	// routerCost is the 6-plane 5-port NoC router + tile-side queues
	// every populated tile instantiates. With this value the 3-tile
	// static part of the characterization SoCs (CPU+MEM+AUX plus their
	// routers) totals the paper's 82267 LUTs, and the CPU-less static
	// part totals 39254 (Table II).
	routerCost = fpga.NewResources(1469, 1780, 0, 0)
	// dfxcCost is the DFXC IP + ICAP + AXI adapters inside the AUX tile
	// (included in auxTileCost; tracked separately for reporting).
	dfxcCost = fpga.NewResources(1820, 2300, 2, 0)
	// reconfSocketCost is the decoupler, proxies and NoC queue gating of
	// the reconfigurable tile (lives with the tile, outside the static
	// part per the paper's accounting).
	reconfSocketCost = fpga.NewResources(2240, 2600, 4, 0)
)

// CPUTileCost returns the resource profile of a CPU tile with core c.
func CPUTileCost(c CPUCore) fpga.Resources {
	if c == CVA6 {
		return cva6TileCost
	}
	return leon3TileCost
}

// MemTileCost returns the memory tile resource profile.
func MemTileCost() fpga.Resources { return memTileCost }

// AuxTileCost returns the auxiliary tile resource profile (including the
// PR-ESP DFXC + ICAP additions).
func AuxTileCost() fpga.Resources { return auxTileCost }

// SLMTileCost returns the shared-local-memory tile resource profile.
func SLMTileCost() fpga.Resources { return slmTileCost }

// RouterCost returns the per-tile NoC router resource profile.
func RouterCost() fpga.Resources { return routerCost }

// DFXCCost returns the reconfiguration controller share of the AUX tile.
func DFXCCost() fpga.Resources { return dfxcCost }

// ReconfSocketCost returns the decoupler/proxy overhead of a
// reconfigurable tile.
func ReconfSocketCost() fpga.Resources { return reconfSocketCost }

// Tile is one populated grid slot.
type Tile struct {
	// Name is unique within the SoC (e.g. "cpu0", "rt_1").
	Name string `json:"name"`
	// Kind is the tile type (serialized as its mnemonic: "CPU", "MEM",
	// "AUX", "SLM", "ACC", "RECONF").
	Kind Kind `json:"kind"`
	// Pos is the mesh coordinate.
	Pos noc.Coord `json:"pos"`
	// Core is set for CPU tiles.
	Core CPUCore `json:"core,omitempty"`
	// AccelName is the hosted accelerator type for Accel tiles, or the
	// initially-loaded accelerator for Reconf tiles (may be empty).
	AccelName string `json:"accel,omitempty"`
	// ReconfCPU marks a Reconf tile hosting the CPU (the paper moves the
	// CPU tile into the reconfigurable part in SOC_4 / SoC_D to shrink
	// the static region; the CPU is not actually swapped at runtime).
	ReconfCPU bool `json:"reconf_cpu,omitempty"`
}

// Validate checks tile invariants.
func (t *Tile) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("tile: unnamed tile at %s", t.Pos)
	}
	switch t.Kind {
	case Accel:
		if t.AccelName == "" {
			return fmt.Errorf("tile: accelerator tile %s has no accelerator", t.Name)
		}
	case Reconf:
		if t.AccelName == "" && !t.ReconfCPU {
			return fmt.Errorf("tile: reconfigurable tile %s hosts neither an accelerator nor the CPU", t.Name)
		}
	case Empty:
		return fmt.Errorf("tile: %s has kind EMPTY; leave the slot unpopulated instead", t.Name)
	}
	return nil
}

// RTL builders -------------------------------------------------------------

// CPUModule builds the RTL hierarchy of a CPU tile.
func CPUModule(name string, core CPUCore) *rtl.Module {
	m := &rtl.Module{Name: name, Cost: CPUTileCost(core)}
	m.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	m.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	m.AddPort("noc_in", rtl.In, 64, rtl.DataPort)
	m.AddPort("noc_out", rtl.Out, 64, rtl.DataPort)
	m.AddPort("irq", rtl.In, 32, rtl.InterruptPort)
	return m
}

// MemModule builds the RTL hierarchy of a memory tile.
func MemModule(name string) *rtl.Module {
	m := &rtl.Module{Name: name, Cost: memTileCost}
	m.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	m.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	m.AddPort("noc_in", rtl.In, 64, rtl.DataPort)
	m.AddPort("noc_out", rtl.Out, 64, rtl.DataPort)
	m.AddPort("ddr", rtl.InOut, 64, rtl.DataPort)
	return m
}

// AuxModule builds the RTL hierarchy of the PR-ESP auxiliary tile,
// including the DFXC instance and the family-specific ICAP primitive.
func AuxModule(name string, fam fpga.Family) *rtl.Module {
	m := &rtl.Module{Name: name, Cost: auxTileCost.Sub(dfxcCost)}
	m.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	m.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	m.AddPort("noc_in", rtl.In, 64, rtl.DataPort)
	m.AddPort("noc_out", rtl.Out, 64, rtl.DataPort)
	m.AddPort("uart", rtl.InOut, 2, rtl.DataPort)

	dfxc := &rtl.Module{Name: name + "_dfxc", Cost: dfxcCost.Sub(fpga.NewResources(120, 0, 0, 0))}
	dfxc.AddPort("s_axi_lite", rtl.In, 32, rtl.ConfigPort)
	dfxc.AddPort("m_axi", rtl.Out, 64, rtl.DataPort)
	dfxc.AddPort("icap_o", rtl.Out, 32, rtl.DataPort)
	dfxc.AddPort("irq", rtl.Out, 1, rtl.InterruptPort)
	m.AddChild("dfxc0", dfxc)

	icap := &rtl.Module{Name: fam.ICAPPrimitive(), Cost: fpga.NewResources(120, 0, 0, 0)}
	icap.AddPort("i", rtl.In, 32, rtl.DataPort)
	icap.AddPort("csib", rtl.In, 1, rtl.ConfigPort)
	m.AddChild("icap0", icap)
	return m
}

// SLMModule builds the RTL hierarchy of a shared-local-memory tile.
func SLMModule(name string) *rtl.Module {
	m := &rtl.Module{Name: name, Cost: slmTileCost}
	m.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	m.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	m.AddPort("noc_in", rtl.In, 64, rtl.DataPort)
	m.AddPort("noc_out", rtl.Out, 64, rtl.DataPort)
	return m
}

// NativeAccelModule builds the *native* ESP accelerator tile for an
// accelerator with the given resource cost. The native tile embeds the
// dynamic power management logic (clock-modifying) and drives an output
// clock toward the SoC — the two features that make it non-compliant
// with the Xilinx DFX rules, as Section III explains.
func NativeAccelModule(name string, accelCost fpga.Resources) *rtl.Module {
	m := &rtl.Module{Name: name, Cost: fpga.NewResources(1900, 2200, 2, 0)}
	m.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	m.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	m.AddPort("noc_in", rtl.In, 64, rtl.DataPort)
	m.AddPort("noc_out", rtl.Out, 64, rtl.DataPort)
	m.AddPort("clk_out", rtl.Out, 1, rtl.ClockOutPort) // feeds the main SoC clock

	dvfs := &rtl.Module{Name: name + "_dvfs", Cost: fpga.NewResources(450, 600, 0, 0), ClockModifying: true}
	dvfs.AddPort("clk_in", rtl.In, 1, rtl.ClockPort)
	dvfs.AddPort("clk_div", rtl.Out, 1, rtl.ClockOutPort)
	m.AddChild("dvfs0", dvfs)

	acc := &rtl.Module{Name: name + "_acc", Cost: accelCost}
	acc.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	acc.AddPort("conf", rtl.In, 32, rtl.ConfigPort)
	acc.AddPort("dma_rd", rtl.In, 64, rtl.DataPort)
	acc.AddPort("dma_wr", rtl.Out, 64, rtl.DataPort)
	acc.AddPort("acc_done", rtl.Out, 1, rtl.InterruptPort)
	m.AddChild("acc0", acc)
	return m
}

// WrapperModule builds the PR-ESP reconfigurable wrapper: the predefined
// common interface every reconfigurable accelerator presents — load/store
// ports, configuration registers and a completion interrupt (Fig 2B).
// The wrapper content (the accelerator) is what gets swapped at runtime.
func WrapperModule(accelName string, accelCost fpga.Resources) *rtl.Module {
	m := &rtl.Module{Name: accelName + "_rm", Cost: accelCost}
	m.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	m.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	m.AddPort("ld", rtl.In, 64, rtl.DataPort)  // load port
	m.AddPort("st", rtl.Out, 64, rtl.DataPort) // store port
	m.AddPort("conf", rtl.In, 32, rtl.ConfigPort)
	m.AddPort("acc_done", rtl.Out, 1, rtl.InterruptPort)
	return m
}

// ReconfModule builds the reconfigurable tile hosting the wrapper as its
// reconfigurable partition. The socket (decoupler, proxies, gated NoC
// queues) stays with the tile; the wrapper is the RP content and is
// initially a black box when content is nil.
func ReconfModule(name string, content *rtl.Module) *rtl.Module {
	m := &rtl.Module{Name: name, Cost: reconfSocketCost}
	m.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	m.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	m.AddPort("noc_in", rtl.In, 64, rtl.DataPort)
	m.AddPort("noc_out", rtl.Out, 64, rtl.DataPort)
	m.AddPort("decouple", rtl.In, 1, rtl.ConfigPort)

	if content == nil {
		bb := &rtl.Module{Name: name + "_rp", BlackBox: true}
		bb.AddPort("clk", rtl.In, 1, rtl.ClockPort)
		bb.AddPort("ld", rtl.In, 64, rtl.DataPort)
		bb.AddPort("st", rtl.Out, 64, rtl.DataPort)
		bb.AddPort("conf", rtl.In, 32, rtl.ConfigPort)
		bb.AddPort("acc_done", rtl.Out, 1, rtl.InterruptPort)
		m.AddChild("rp0", bb)
	} else {
		m.AddChild("rp0", content)
	}
	return m
}

// CheckDFXCompliance verifies that module m is legal content for a
// reconfigurable partition under the Xilinx DFX rules the paper cites:
// no clock-modifying logic inside the RP and no route-through clock
// outputs.
func CheckDFXCompliance(m *rtl.Module) error {
	if m.ContainsClockModifying() {
		return fmt.Errorf("tile: %s contains clock-modifying logic, prohibited inside a reconfigurable partition", m.Name)
	}
	if m.DrivesClockOut() {
		return fmt.Errorf("tile: %s drives an output clock, a prohibited route-through path inside a reconfigurable partition", m.Name)
	}
	for _, c := range m.Children {
		if err := CheckDFXCompliance(c.Mod); err != nil {
			return err
		}
	}
	return nil
}
