package report

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"tile2": 1, "tile0": 2, "tile1": 3}
	want := []string{"tile0", "tile1", "tile2"}
	// Run repeatedly: a map-order bug would only fail sometimes.
	for i := 0; i < 50; i++ {
		if got := SortedKeys(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
	if got := SortedKeys(map[int]struct{}{3: {}, 1: {}, 2: {}}); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("int keys = %v", got)
	}
	if got := SortedKeys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("nil map keys = %v", got)
	}
}
