// Package report renders experiment results as aligned text tables, so
// the benchmark harness prints the same rows the paper's tables report.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Header holds the column names.
	Header []string
	rows   [][]string
}

// New builds a table with the given title and columns.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Header: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col).
func (t *Table) Cell(row, col int) (string, error) {
	if row < 0 || row >= len(t.rows) {
		return "", fmt.Errorf("report: row %d out of range (%d rows)", row, len(t.rows))
	}
	if col < 0 || col >= len(t.rows[row]) {
		return "", fmt.Errorf("report: col %d out of range", col)
	}
	return t.rows[row][col], nil
}

// trimFloat renders floats compactly: integers without decimals,
// otherwise two significant decimals.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bold marks a cell value the way the paper bolds winning strategies.
func Bold(s string) string { return "*" + s + "*" }

// Minutes formats a runtime in whole minutes, as the paper reports.
func Minutes(m float64) string { return fmt.Sprintf("%.0f", m) }

// Pct formats a ratio as a signed percentage.
func Pct(frac float64) string { return fmt.Sprintf("%+.1f%%", frac*100) }
