package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("title", "col1", "column2")
	tb.AddRow("a", 1)
	tb.AddRow("bbbb", 22.5)
	out := tb.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "col1") || !strings.Contains(lines[1], "column2") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	if !strings.Contains(out, "22.50") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "----") {
		t.Fatal("missing separator")
	}
}

func TestCellAccess(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("x", 3)
	got, err := tb.Cell(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != "3" {
		t.Fatalf("cell: %q", got)
	}
	if _, err := tb.Cell(5, 0); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := tb.Cell(0, 9); err == nil {
		t.Fatal("out-of-range col accepted")
	}
	if tb.Rows() != 1 {
		t.Fatal("row count wrong")
	}
}

func TestFloatTrimming(t *testing.T) {
	tb := New("", "v")
	tb.AddRow(3.0)
	got, err := tb.Cell(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != "3" {
		t.Fatalf("integral float: %q", got)
	}
}

func TestHelpers(t *testing.T) {
	if Bold("x") != "*x*" {
		t.Fatal("Bold wrong")
	}
	if Minutes(89.6) != "90" {
		t.Fatalf("Minutes: %q", Minutes(89.6))
	}
	if Pct(0.151) != "+15.1%" {
		t.Fatalf("Pct: %q", Pct(0.151))
	}
	if Pct(-0.025) != "-2.5%" {
		t.Fatalf("Pct: %q", Pct(-0.025))
	}
}

func TestColumnAlignment(t *testing.T) {
	tb := New("", "name", "v")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 2)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// The value column starts at the same offset on both data rows.
	i1 := strings.Index(lines[2], "1")
	i2 := strings.Index(lines[3], "2")
	if i1 != i2 {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}
