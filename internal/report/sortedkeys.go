package report

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order. Go's map iteration
// order is deliberately randomized, so any loop that feeds map entries
// into float accumulation or rendered output must iterate this instead
// — the repo-wide rule that keeps tables, float sums and best-pick
// scans byte-identical across runs.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
