// Package wami implements the Wide Area Motion Imagery benchmark
// application (PERFECT suite) the paper evaluates with: the Debayer,
// Grayscale, Lucas-Kanade and Change-Detection kernels, with
// Lucas-Kanade decomposed into multiple accelerators exactly as Fig 3
// does to expose parallelism. Every kernel is functional — it computes
// real image-processing results, validated against scalar golden
// references in tests — and doubles as the accelerator payload of the
// runtime evaluation (Fig 4).
//
// The paper's aerial input frames are not redistributable, so the
// package ships a synthetic Bayer-pattern frame generator with moving
// targets and known ground truth, exercising the identical code path.
package wami

import (
	"fmt"
	"math"
)

// Image is a square grayscale image stored row-major.
type Image struct {
	N   int
	Pix []float64
}

// NewImage allocates an n×n image.
func NewImage(n int) *Image {
	return &Image{N: n, Pix: make([]float64, n*n)}
}

// At returns the pixel at (x, y), clamping coordinates to the border.
func (im *Image) At(x, y int) float64 {
	if x < 0 {
		x = 0
	}
	if x >= im.N {
		x = im.N - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.N {
		y = im.N - 1
	}
	return im.Pix[y*im.N+x]
}

// Set writes the pixel at (x, y); out-of-range writes are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || x >= im.N || y < 0 || y >= im.N {
		return
	}
	im.Pix[y*im.N+x] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.N)
	copy(out.Pix, im.Pix)
	return out
}

// imageFrom interprets a flat slice as a square image.
func imageFrom(pix []float64) (*Image, error) {
	n := int(math.Sqrt(float64(len(pix))))
	if n*n != len(pix) {
		return nil, fmt.Errorf("wami: length %d is not a square image", len(pix))
	}
	return &Image{N: n, Pix: pix}, nil
}

// Debayer demosaics an RGGB Bayer mosaic into an RGB image using
// bilinear interpolation. Returns r, g, b planes.
func Debayer(mosaic *Image) (r, g, b *Image) {
	n := mosaic.N
	r, g, b = NewImage(n), NewImage(n), NewImage(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			evenRow := y%2 == 0
			evenCol := x%2 == 0
			switch {
			case evenRow && evenCol: // red site
				r.Set(x, y, mosaic.At(x, y))
				g.Set(x, y, (mosaic.At(x-1, y)+mosaic.At(x+1, y)+mosaic.At(x, y-1)+mosaic.At(x, y+1))/4)
				b.Set(x, y, (mosaic.At(x-1, y-1)+mosaic.At(x+1, y-1)+mosaic.At(x-1, y+1)+mosaic.At(x+1, y+1))/4)
			case evenRow && !evenCol: // green site on red row
				g.Set(x, y, mosaic.At(x, y))
				r.Set(x, y, (mosaic.At(x-1, y)+mosaic.At(x+1, y))/2)
				b.Set(x, y, (mosaic.At(x, y-1)+mosaic.At(x, y+1))/2)
			case !evenRow && evenCol: // green site on blue row
				g.Set(x, y, mosaic.At(x, y))
				b.Set(x, y, (mosaic.At(x-1, y)+mosaic.At(x+1, y))/2)
				r.Set(x, y, (mosaic.At(x, y-1)+mosaic.At(x, y+1))/2)
			default: // blue site
				b.Set(x, y, mosaic.At(x, y))
				g.Set(x, y, (mosaic.At(x-1, y)+mosaic.At(x+1, y)+mosaic.At(x, y-1)+mosaic.At(x, y+1))/4)
				r.Set(x, y, (mosaic.At(x-1, y-1)+mosaic.At(x+1, y-1)+mosaic.At(x-1, y+1)+mosaic.At(x+1, y+1))/4)
			}
		}
	}
	return r, g, b
}

// Grayscale converts RGB planes to luma with the ITU-R BT.601 weights.
func Grayscale(r, g, b *Image) *Image {
	out := NewImage(r.N)
	for i := range out.Pix {
		out.Pix[i] = 0.299*r.Pix[i] + 0.587*g.Pix[i] + 0.114*b.Pix[i]
	}
	return out
}

// Gradient computes central-difference spatial gradients dx, dy.
func Gradient(im *Image) (gx, gy *Image) {
	n := im.N
	gx, gy = NewImage(n), NewImage(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			gx.Set(x, y, (im.At(x+1, y)-im.At(x-1, y))/2)
			gy.Set(x, y, (im.At(x, y+1)-im.At(x, y-1))/2)
		}
	}
	return gx, gy
}

// Affine holds the 6 parameters of an affine warp:
//
//	x' = (1+p0)·x + p2·y + p4
//	y' = p1·x + (1+p3)·y + p5
type Affine [6]float64

// Apply maps (x, y) through the warp.
func (p Affine) Apply(x, y float64) (float64, float64) {
	return (1+p[0])*x + p[2]*y + p[4], p[1]*x + (1+p[3])*y + p[5]
}

// Compose returns the warp equivalent to applying q after p (inverse
// compositional update uses the inverse of the increment; Invert below).
func (p Affine) Compose(q Affine) Affine {
	// Represent as 3x3 matrices M = [[1+p0, p2, p4], [p1, 1+p3, p5], [0,0,1]].
	a := p.matrix()
	b := q.matrix()
	var c [9]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				c[i*3+j] += a[i*3+k] * b[k*3+j]
			}
		}
	}
	return Affine{c[0] - 1, c[3], c[1], c[4] - 1, c[2], c[5]}
}

// Invert returns the inverse warp, or an error when singular.
func (p Affine) Invert() (Affine, error) {
	m := p.matrix()
	det := m[0]*m[4] - m[1]*m[3]
	if math.Abs(det) < 1e-12 {
		return Affine{}, fmt.Errorf("wami: singular affine warp")
	}
	inv0 := m[4] / det
	inv1 := -m[1] / det
	inv3 := -m[3] / det
	inv4 := m[0] / det
	inv2 := -(inv0*m[2] + inv1*m[5])
	inv5 := -(inv3*m[2] + inv4*m[5])
	return Affine{inv0 - 1, inv3, inv1, inv4 - 1, inv2, inv5}, nil
}

func (p Affine) matrix() [9]float64 {
	return [9]float64{1 + p[0], p[2], p[4], p[1], 1 + p[3], p[5], 0, 0, 1}
}

// Warp resamples image im through the affine warp with bilinear
// interpolation (the warp-img kernel).
func Warp(im *Image, p Affine) *Image {
	n := im.N
	out := NewImage(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			sx, sy := p.Apply(float64(x), float64(y))
			x0, y0 := int(math.Floor(sx)), int(math.Floor(sy))
			fx, fy := sx-float64(x0), sy-float64(y0)
			v := (1-fx)*(1-fy)*im.At(x0, y0) +
				fx*(1-fy)*im.At(x0+1, y0) +
				(1-fx)*fy*im.At(x0, y0+1) +
				fx*fy*im.At(x0+1, y0+1)
			out.Set(x, y, v)
		}
	}
	return out
}

// Subtract computes a - b per pixel (the error image kernel).
func Subtract(a, b *Image) *Image {
	out := NewImage(a.N)
	for i := range out.Pix {
		out.Pix[i] = a.Pix[i] - b.Pix[i]
	}
	return out
}

// SteepestDescent computes the six steepest-descent images of the
// inverse-compositional Lucas-Kanade algorithm from the template
// gradients: sd_k = ∇T · ∂W/∂p_k.
func SteepestDescent(gx, gy *Image) [6]*Image {
	n := gx.N
	var sd [6]*Image
	for k := range sd {
		sd[k] = NewImage(n)
	}
	for y := 0; y < n; y++ {
		fy := float64(y)
		for x := 0; x < n; x++ {
			fx := float64(x)
			gxv, gyv := gx.At(x, y), gy.At(x, y)
			sd[0].Set(x, y, gxv*fx)
			sd[1].Set(x, y, gyv*fx)
			sd[2].Set(x, y, gxv*fy)
			sd[3].Set(x, y, gyv*fy)
			sd[4].Set(x, y, gxv)
			sd[5].Set(x, y, gyv)
		}
	}
	return sd
}

// Hessian computes the 6x6 Gauss-Newton Hessian H[i][j] = Σ sd_i·sd_j.
func Hessian(sd [6]*Image) [36]float64 {
	var h [36]float64
	for i := 0; i < 6; i++ {
		for j := i; j < 6; j++ {
			var acc float64
			pi, pj := sd[i].Pix, sd[j].Pix
			for k := range pi {
				acc += pi[k] * pj[k]
			}
			h[i*6+j] = acc
			h[j*6+i] = acc
		}
	}
	return h
}

// SDUpdate computes the per-pixel products sd_k·err (the sd-update
// kernel); the reduction to the 6-vector b happens in Mult.
func SDUpdate(sd [6]*Image, err *Image) [6]*Image {
	var out [6]*Image
	for k := range out {
		out[k] = NewImage(err.N)
		for i := range err.Pix {
			out[k].Pix[i] = sd[k].Pix[i] * err.Pix[i]
		}
	}
	return out
}

// MatrixInvert inverts a 6x6 matrix with Gauss-Jordan elimination and
// partial pivoting (the matrix-invert kernel).
func MatrixInvert(m [36]float64) ([36]float64, error) {
	var aug [6][12]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			aug[i][j] = m[i*6+j]
		}
		aug[i][6+i] = 1
	}
	for col := 0; col < 6; col++ {
		piv := col
		for r := col + 1; r < 6; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[piv][col]) {
				piv = r
			}
		}
		if math.Abs(aug[piv][col]) < 1e-12 {
			return [36]float64{}, fmt.Errorf("wami: singular Hessian (pivot %d)", col)
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		p := aug[col][col]
		for j := 0; j < 12; j++ {
			aug[col][j] /= p
		}
		for r := 0; r < 6; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 12; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	var inv [36]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			inv[i*6+j] = aug[i][6+j]
		}
	}
	return inv, nil
}

// Mult reduces the sd-update planes to b_k = Σ sdu_k and applies the
// inverse Hessian: Δp = H⁻¹ · b (the mult kernel — image-scale
// reduction plus the small matrix-vector product).
func Mult(hinv [36]float64, sdu [6]*Image) Affine {
	var b [6]float64
	for k := 0; k < 6; k++ {
		var acc float64
		for _, v := range sdu[k].Pix {
			acc += v
		}
		b[k] = acc
	}
	var dp Affine
	for i := 0; i < 6; i++ {
		var acc float64
		for j := 0; j < 6; j++ {
			acc += hinv[i*6+j] * b[j]
		}
		dp[i] = acc
	}
	return dp
}

// ReshapeAdd performs the inverse-compositional parameter update: the
// current warp is composed with the inverse of the increment (the
// reshape-add kernel of the decomposition).
func ReshapeAdd(p, dp Affine) (Affine, error) {
	dinv, err := dp.Invert()
	if err != nil {
		return Affine{}, err
	}
	return p.Compose(dinv), nil
}

// LucasKanade registers img against template tmpl: it returns the affine
// warp p minimizing Σ (img(W(x;p)) - tmpl(x))², running the inverse
// compositional algorithm for at most iters iterations. It composes the
// decomposed kernels exactly as the SoC schedules them.
func LucasKanade(tmpl, img *Image, iters int, eps float64) (Affine, int, error) {
	if tmpl.N != img.N {
		return Affine{}, 0, fmt.Errorf("wami: template %d and image %d differ in size", tmpl.N, img.N)
	}
	gx, gy := Gradient(tmpl)
	sd := SteepestDescent(gx, gy)
	h := Hessian(sd)
	hinv, err := MatrixInvert(h)
	if err != nil {
		return Affine{}, 0, err
	}
	var p Affine
	for it := 1; it <= iters; it++ {
		warped := Warp(img, p)
		errImg := Subtract(warped, tmpl)
		sdu := SDUpdate(sd, errImg)
		dp := Mult(hinv, sdu)
		p, err = ReshapeAdd(p, dp)
		if err != nil {
			return Affine{}, it, err
		}
		norm := 0.0
		for _, v := range dp {
			norm += v * v
		}
		if math.Sqrt(norm) < eps {
			return p, it, nil
		}
	}
	return p, iters, nil
}

// ChangeDetection compares the registered frame against the background
// model: pixels deviating more than thresh are flagged, and the
// background is updated with an exponential moving average (rate alpha).
// It returns the binary mask and the updated background.
func ChangeDetection(frame, background *Image, thresh, alpha float64) (mask, newBg *Image) {
	n := frame.N
	mask, newBg = NewImage(n), NewImage(n)
	for i := range frame.Pix {
		d := frame.Pix[i] - background.Pix[i]
		if math.Abs(d) > thresh {
			mask.Pix[i] = 1
		}
		newBg.Pix[i] = (1-alpha)*background.Pix[i] + alpha*frame.Pix[i]
	}
	return mask, newBg
}
