package wami

import (
	"fmt"
	"math"

	"presp/internal/reconfig"
	"presp/internal/sim"
)

// Runner is the multi-threaded control software of Section VI: it maps
// the Fig 3 dataflow onto the reconfigurable tiles of a runtime SoC
// (one logical control thread per tile, modelled as concurrent event
// chains), requests reconfigurations through the manager when a tile
// must swap kernels, and falls back to the processor for kernels the
// Table VI partitioning leaves unallocated. Frames are processed
// without pipelining, as in the paper's evaluation.
type Runner struct {
	rt    *reconfig.Runtime
	alloc Allocation
	cfg   PipelineConfig

	prev *Image
	bg   *Image
}

// FrameStats records one frame's execution.
type FrameStats struct {
	// Time is the frame latency.
	Time sim.Time
	// Energy is the frame's energy in Joules.
	Energy float64
	// Reconfigurations counts partial reconfigurations in the frame.
	Reconfigurations int
	// Detections is the change-detection pixel count.
	Detections int
	// MotionErr is the registration error against ground truth (pixels).
	MotionErr float64
	// LKIters is the Lucas-Kanade iteration count used.
	LKIters int
}

// RunReport aggregates a multi-frame run.
type RunReport struct {
	SoC    string
	Frames []FrameStats
	// TotalTime and TotalEnergy cover the steady-state frames (the
	// warm-up frame 0 only initializes reference state).
	TotalTime   sim.Time
	TotalEnergy float64
	// Stats is the runtime's final counter snapshot.
	Stats reconfig.Stats
}

// TimePerFrame returns the mean steady-state frame latency in seconds.
func (r *RunReport) TimePerFrame() float64 {
	n := len(r.Frames) - 1
	if n <= 0 {
		return 0
	}
	return r.TotalTime.Seconds() / float64(n)
}

// EnergyPerFrame returns the mean steady-state energy per frame (J).
func (r *RunReport) EnergyPerFrame() float64 {
	n := len(r.Frames) - 1
	if n <= 0 {
		return 0
	}
	return r.TotalEnergy / float64(n)
}

// NewRunner builds a runner for runtime rt with allocation alloc.
func NewRunner(rt *reconfig.Runtime, alloc Allocation, cfg PipelineConfig) (*Runner, error) {
	if rt == nil {
		return nil, fmt.Errorf("wami: nil runtime")
	}
	if len(alloc) == 0 {
		return nil, fmt.Errorf("wami: empty allocation")
	}
	for tileName, accs := range alloc {
		for _, idx := range accs {
			name, ok := Names[idx]
			if !ok {
				return nil, fmt.Errorf("wami: allocation of tile %s references unknown kernel %d", tileName, idx)
			}
			_ = name
		}
	}
	if cfg.LKIterations <= 0 {
		return nil, fmt.Errorf("wami: LK iteration bound must be positive")
	}
	return &Runner{rt: rt, alloc: alloc, cfg: cfg}, nil
}

// frame-order phases used by the prefetcher to predict each tile's next
// kernel.
var (
	prefixOrder = []int{KDebayer, KGrayscale, KGradient, KSteepestDescent, KHessian, KMatrixInvert}
	loopOrder   = []int{KWarpImg, KSubtract, KSDUpdate, KMult, KReshapeAdd}
)

// nextOnTile predicts the next kernel the tile will host after finishing
// kernel k, following the frame execution order (front-end and setup
// prefix, then the iteration loop cyclically, then change detection and
// the next frame's prefix). Returns 0 when the tile keeps its kernel.
func (r *Runner) nextOnTile(tileName string, k int) int {
	hosted := make(map[int]bool)
	for _, idx := range r.alloc[tileName] {
		hosted[idx] = true
	}
	scan := func(order []int, from int) int {
		for i := from; i < len(order); i++ {
			if hosted[order[i]] {
				return order[i]
			}
		}
		return 0
	}
	pos := func(order []int, k int) int {
		for i, v := range order {
			if v == k {
				return i
			}
		}
		return -1
	}
	if i := pos(prefixOrder, k); i >= 0 {
		if n := scan(prefixOrder, i+1); n != 0 {
			return n
		}
		if n := scan(loopOrder, 0); n != 0 {
			return n
		}
		if hosted[KChangeDetection] {
			return KChangeDetection
		}
		return 0
	}
	if i := pos(loopOrder, k); i >= 0 {
		if n := scan(loopOrder, i+1); n != 0 {
			return n
		}
		// The tile hosts no later loop kernel this iteration. Either the
		// loop wraps (another iteration) or the frame ends; predicting
		// the next frame's prefix is right whenever the tile hosts a
		// prefix kernel (the wrap costs one extra swap at most when the
		// loop actually iterates).
		if n := scan(prefixOrder, 0); n != 0 {
			return n
		}
		if hosted[KChangeDetection] {
			return KChangeDetection
		}
		if n := scan(loopOrder, 0); n != 0 && n != k {
			return n
		}
		return 0
	}
	// Change detection: the next frame starts over with the prefix.
	if n := scan(prefixOrder, 0); n != 0 {
		return n
	}
	return 0
}

// dispatch runs kernel idx on its allocated tile, or on the CPU when the
// partitioning leaves it unallocated. After a tile finishes a kernel the
// runner prefetches the tile's predicted next bitstream, overlapping the
// reconfiguration with work elsewhere in the dataflow.
func (r *Runner) dispatch(idx int, in [][]float64, done func(*reconfig.InvokeResult, error)) {
	tileName := TileFor(r.alloc, idx)
	if tileName == "" {
		r.rt.RunOnCPU(Names[idx], in, done)
		return
	}
	r.rt.InvokeOn(tileName, Names[idx], in, func(res *reconfig.InvokeResult, err error) {
		if err != nil {
			// The tile invocation failed — a reconfiguration error the
			// manager's retries could not absorb, or an injected
			// datapath fault. Degrade this invocation to the processor
			// instead of failing the frame; a genuinely broken kernel
			// still surfaces its error from the software run.
			r.rt.RunOnCPU(Names[idx], in, done)
			return
		}
		if next := r.nextOnTile(tileName, idx); next != 0 && next != idx {
			r.rt.Prefetch(tileName, Names[next])
		}
		done(res, err)
	})
}

// grayFuture is the handoff between a frame's front-end chain and the
// consumer that needs the grayscale image (possibly a later frame, in
// pipelined mode).
type grayFuture struct {
	img   *Image
	done  bool
	waits []func(*Image)
}

func (f *grayFuture) set(img *Image) {
	f.img, f.done = img, true
	for _, w := range f.waits {
		w(img)
	}
	f.waits = nil
}

func (f *grayFuture) get(fn func(*Image)) {
	if f.done {
		fn(f.img)
		return
	}
	f.waits = append(f.waits, fn)
}

// ProcessFrames runs n frames from src through the SoC and returns the
// per-frame report. It drives the simulation engine to completion.
func (r *Runner) ProcessFrames(src *FrameSource, n int) (*RunReport, error) {
	if n < 2 {
		return nil, fmt.Errorf("wami: need at least 2 frames (first frame only initializes state), got %d", n)
	}
	rep := &RunReport{SoC: "", Frames: make([]FrameStats, 0, n)}
	var runErr error
	fail := func(i int) func(error) {
		return func(err error) {
			if runErr == nil {
				runErr = fmt.Errorf("wami: frame %d: %w", i, err)
			}
		}
	}

	// launchFrontEnd runs Debayer and Grayscale on the next mosaic and
	// resolves the returned future with the grayscale image.
	launchFrontEnd := func(i int) *grayFuture {
		fut := &grayFuture{}
		mosaic := src.Next()
		r.dispatch(KDebayer, [][]float64{mosaic.Pix}, func(res *reconfig.InvokeResult, err error) {
			if err != nil {
				fail(i)(err)
				return
			}
			r.dispatch(KGrayscale, res.Out, func(res *reconfig.InvokeResult, err error) {
				if err != nil {
					fail(i)(err)
					return
				}
				fut.set(&Image{N: mosaic.N, Pix: res.Out[0]})
			})
		})
		return fut
	}

	var processFrame func(i int, fut *grayFuture)
	processFrame = func(i int, fut *grayFuture) {
		frameStart := r.rt.Engine().Now()
		energyStart := r.rt.Meter().TotalEnergy()
		reconfStart := r.rt.Stats().Reconfigurations
		if fut == nil {
			fut = launchFrontEnd(i)
		}

		var nextFut *grayFuture
		finishFrame := func(fs FrameStats) {
			fs.Time = r.rt.Engine().Now() - frameStart
			fs.Energy = r.rt.Meter().TotalEnergy() - energyStart
			fs.Reconfigurations = r.rt.Stats().Reconfigurations - reconfStart
			rep.Frames = append(rep.Frames, fs)
			if i > 0 {
				rep.TotalTime += fs.Time
				rep.TotalEnergy += fs.Energy
			}
			if i+1 < n {
				processFrame(i+1, nextFut)
			}
		}

		// The frame forks into two chains that own disjoint tiles: the
		// front-end (Debayer, Grayscale) on the new mosaic and the
		// Lucas-Kanade setup chain (Gradient, Steepest-Descent, Hessian,
		// Matrix-Invert) on the previous frame's template. On SoCs with
		// enough reconfigurable tiles the chains overlap; the iteration
		// loop starts when both complete.
		var gray *Image
		var sd [][]float64
		var hinv []float64
		pending := 1
		if r.prev != nil {
			pending = 2
		}
		join := func() {
			pending--
			if pending > 0 {
				return
			}
			if r.prev == nil {
				r.prev = gray
				r.bg = gray.Clone()
				finishFrame(FrameStats{})
				return
			}
			r.lkLoop(gray, sd, hinv, Affine{}, 1, fail(i), finishFrame)
		}

		fut.get(func(g *Image) {
			gray = g
			// Pipelined mode: the next frame's front-end starts now,
			// overlapping this frame's registration loop.
			if r.cfg.PipelineFrames && i+1 < n {
				nextFut = launchFrontEnd(i + 1)
			}
			join()
		})
		// Setup chain on the template (previous frame).
		if r.prev != nil {
			r.dispatch(KGradient, [][]float64{r.prev.Pix}, func(res *reconfig.InvokeResult, err error) {
				if err != nil {
					fail(i)(err)
					return
				}
				r.dispatch(KSteepestDescent, res.Out, func(res *reconfig.InvokeResult, err error) {
					if err != nil {
						fail(i)(err)
						return
					}
					sd = res.Out
					r.dispatch(KHessian, sd, func(res *reconfig.InvokeResult, err error) {
						if err != nil {
							fail(i)(err)
							return
						}
						r.dispatch(KMatrixInvert, res.Out, func(res *reconfig.InvokeResult, err error) {
							if err != nil {
								fail(i)(err)
								return
							}
							hinv = res.Out[0]
							join()
						})
					})
				})
			})
		}
	}

	processFrame(0, nil)
	r.rt.Engine().Run(0)
	if runErr != nil {
		return nil, runErr
	}
	if len(rep.Frames) != n {
		return nil, fmt.Errorf("wami: processed %d of %d frames (deadlock in the schedule?)", len(rep.Frames), n)
	}
	rep.Stats = r.rt.Stats()
	return rep, nil
}

// lkLoop runs one Lucas-Kanade iteration and recurses until convergence
// or the iteration bound.
func (r *Runner) lkLoop(gray *Image, sd [][]float64, hinv []float64, p Affine, iter int, fail func(error), finishFrame func(FrameStats)) {
	r.dispatch(KWarpImg, [][]float64{gray.Pix, p[:]}, func(res *reconfig.InvokeResult, err error) {
		if err != nil {
			fail(err)
			return
		}
		warped := res.Out[0]
		r.dispatch(KSubtract, [][]float64{warped, r.prev.Pix}, func(res *reconfig.InvokeResult, err error) {
			if err != nil {
				fail(err)
				return
			}
			errImg := res.Out[0]
			in := make([][]float64, 0, 7)
			in = append(in, sd...)
			in = append(in, errImg)
			r.dispatch(KSDUpdate, in, func(res *reconfig.InvokeResult, err error) {
				if err != nil {
					fail(err)
					return
				}
				min := make([][]float64, 0, 7)
				min = append(min, hinv)
				min = append(min, res.Out...)
				r.dispatch(KMult, min, func(res *reconfig.InvokeResult, err error) {
					if err != nil {
						fail(err)
						return
					}
					dp := res.Out[0]
					r.dispatch(KReshapeAdd, [][]float64{p[:], dp}, func(res *reconfig.InvokeResult, err error) {
						if err != nil {
							fail(err)
							return
						}
						var next Affine
						copy(next[:], res.Out[0])
						norm := 0.0
						for _, v := range dp {
							norm += v * v
						}
						if math.Sqrt(norm) < r.cfg.LKEpsilon || iter >= r.cfg.LKIterations {
							r.detect(gray, warped, next, iter, fail, finishFrame)
							return
						}
						r.lkLoop(gray, sd, hinv, next, iter+1, fail, finishFrame)
					})
				})
			})
		})
	})
}

// detect runs Change-Detection on the registered frame and closes out
// the frame.
func (r *Runner) detect(gray *Image, warped []float64, motion Affine, iters int, fail func(error), finishFrame func(FrameStats)) {
	r.dispatch(KChangeDetection, [][]float64{warped, r.bg.Pix, {r.cfg.CDThreshold, r.cfg.CDAlpha}}, func(res *reconfig.InvokeResult, err error) {
		if err != nil {
			fail(err)
			return
		}
		mask := res.Out[0]
		r.bg = &Image{N: r.bg.N, Pix: res.Out[1]}
		det := 0
		for _, v := range mask {
			if v != 0 {
				det++
			}
		}
		r.prev = gray
		finishFrame(FrameStats{Detections: det, LKIters: iters, MotionErr: motionErrOf(motion)})
	})
}

// motionErrOf is filled in by the caller via ground truth when known;
// here it records the translation magnitude of the residual beyond the
// affine identity (tests compare against the frame source directly).
func motionErrOf(m Affine) float64 {
	return math.Hypot(m[4], m[5])
}

// srcStepX/Y expose the source's per-frame motion (kept as functions so
// the runner does not depend on FrameSource internals beyond the API).
func srcStepX(s *FrameSource) float64 { return s.DX }
func srcStepY(s *FrameSource) float64 { return s.DY }
