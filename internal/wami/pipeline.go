package wami

import (
	"fmt"
	"math"
)

// PipelineConfig tunes the frame-processing application.
type PipelineConfig struct {
	// LKIterations bounds the Lucas-Kanade refinement loop.
	LKIterations int
	// LKEpsilon is the convergence threshold on ‖Δp‖.
	LKEpsilon float64
	// CDThreshold is the change-detection intensity threshold.
	CDThreshold float64
	// CDAlpha is the background update rate.
	CDAlpha float64
	// PipelineFrames overlaps consecutive frames on the SoC: frame i+1's
	// front-end (Debayer, Grayscale) starts as soon as frame i's
	// grayscale is available, hiding it behind frame i's registration
	// loop. The paper's evaluation keeps this off ("all SoCs process
	// individual frames without pipelining"); it is implemented as the
	// natural extension. Only the hardware runner honours it — the
	// software Pipeline is inherently sequential.
	PipelineFrames bool
}

// DefaultPipelineConfig returns the evaluation configuration.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		LKIterations: 8,
		LKEpsilon:    1e-3,
		CDThreshold:  25,
		CDAlpha:      0.12,
	}
}

// FrameResult is the product of processing one frame.
type FrameResult struct {
	// Gray is the demosaiced grayscale frame.
	Gray *Image
	// Registered is the frame warped into the reference coordinate
	// system.
	Registered *Image
	// Motion is the estimated affine warp w.r.t. the previous frame.
	Motion Affine
	// LKIters is the Lucas-Kanade iteration count used.
	LKIters int
	// Mask is the change-detection output.
	Mask *Image
	// Detections is the flagged pixel count.
	Detections int
}

// Pipeline is the software (golden) implementation of the WAMI-App: the
// exact computation the accelerated SoCs perform, used both as the
// functional reference and as the CPU fallback for kernels without an
// allocated accelerator.
type Pipeline struct {
	cfg    PipelineConfig
	prev   *Image
	bg     *Image
	frames int
}

// NewPipeline builds a pipeline with config cfg.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.LKIterations <= 0 {
		return nil, fmt.Errorf("wami: LK iteration bound must be positive")
	}
	if cfg.CDAlpha <= 0 || cfg.CDAlpha > 1 {
		return nil, fmt.Errorf("wami: CD alpha %g out of (0,1]", cfg.CDAlpha)
	}
	return &Pipeline{cfg: cfg}, nil
}

// FramesProcessed returns the number of frames consumed so far.
func (p *Pipeline) FramesProcessed() int { return p.frames }

// Process runs one Bayer frame through the full application.
func (p *Pipeline) Process(mosaic *Image) (*FrameResult, error) {
	r, g, b := Debayer(mosaic)
	gray := Grayscale(r, g, b)
	res := &FrameResult{Gray: gray}

	if p.prev == nil {
		// First frame: initialize reference and background.
		p.prev = gray
		p.bg = gray.Clone()
		res.Registered = gray
		res.Mask = NewImage(gray.N)
		p.frames++
		return res, nil
	}

	motion, iters, err := LucasKanade(p.prev, gray, p.cfg.LKIterations, p.cfg.LKEpsilon)
	if err != nil {
		return nil, fmt.Errorf("wami: frame %d registration: %w", p.frames, err)
	}
	res.Motion = motion
	res.LKIters = iters
	res.Registered = Warp(gray, motion)

	mask, newBg := ChangeDetection(res.Registered, p.bg, p.cfg.CDThreshold, p.cfg.CDAlpha)
	res.Mask = mask
	for _, v := range mask.Pix {
		if v != 0 {
			res.Detections++
		}
	}
	p.bg = newBg
	p.prev = gray
	p.frames++
	return res, nil
}

// MotionError returns the Euclidean distance between the translation the
// pipeline estimated and the ground-truth per-frame motion (dx, dy) —
// the registration quality metric tests assert on. The estimated warp
// maps current-frame coordinates onto the previous frame, so its
// translation converges to (−dx, −dy).
func MotionError(m Affine, dx, dy float64) float64 {
	ex, ey := m[4]+dx, m[5]+dy
	return math.Hypot(ex, ey)
}
