package wami

import (
	"context"
	"math"
	"testing"

	"presp/internal/accel"
	"presp/internal/flow"
	"presp/internal/noc"
	"presp/internal/reconfig"
	"presp/internal/sim"
	"presp/internal/socgen"
	"presp/internal/tile"
)

// bootRunner builds a full runtime stack for the named SoC.
func bootRunner(t *testing.T, socName string, iters int) (*Runner, *reconfig.Runtime) {
	t.Helper()
	reg := accel.Default()
	if err := AddTo(reg); err != nil {
		t.Fatal(err)
	}
	cfg, alloc, err := RuntimeSoC(socName)
	if err != nil {
		t.Fatal(err)
	}
	d, err := socgen.Elaborate(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := flow.FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := reconfig.New(sim.NewEngine(), d, reg, plan, reconfig.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	am := make(map[string][]string, len(alloc))
	for tileName, idxs := range alloc {
		for _, idx := range idxs {
			am[tileName] = append(am[tileName], Names[idx])
		}
	}
	bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, am, reg, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for tileName, m := range bss {
		for acc, bs := range m {
			if err := rt.RegisterBitstream(tileName, acc, bs); err != nil {
				t.Fatal(err)
			}
		}
	}
	pcfg := DefaultPipelineConfig()
	pcfg.LKIterations = iters
	runner, err := NewRunner(rt, alloc, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	return runner, rt
}

func TestRunnerProcessesFramesOnSoCY(t *testing.T) {
	runner, rt := bootRunner(t, "SoC_Y", 1)
	src, err := NewFrameSource(64, 0.7, -0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ProcessFrames(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frames) != 4 {
		t.Fatalf("frames: %d", len(rep.Frames))
	}
	if rep.TimePerFrame() <= 0 || rep.EnergyPerFrame() <= 0 {
		t.Fatal("no time or energy accumulated")
	}
	// Steady-state frames must detect the moving targets.
	det := 0
	for _, f := range rep.Frames[1:] {
		det += f.Detections
		if f.Time <= 0 {
			t.Fatal("frame took no time")
		}
	}
	if det == 0 {
		t.Fatal("no detections")
	}
	st := rt.Stats()
	if st.Reconfigurations == 0 {
		t.Fatal("runtime never reconfigured")
	}
	// SoC_Y leaves subtract and reshape-add to the CPU: 2 per frame
	// after warm-up at one LK iteration.
	if st.CPUFallbacks == 0 {
		t.Fatal("CPU fallback kernels never ran")
	}
}

func TestRunnerAllHardwareOnSoCZ(t *testing.T) {
	runner, rt := bootRunner(t, "SoC_Z", 1)
	src, err := NewFrameSource(64, 0.7, -0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ProcessFrames(src, 3); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().CPUFallbacks != 0 {
		t.Fatalf("SoC_Z should run fully in hardware, %d CPU kernels", rt.Stats().CPUFallbacks)
	}
}

func TestRunnerMultiIteration(t *testing.T) {
	runner, _ := bootRunner(t, "SoC_Y", 4)
	src, err := NewFrameSource(64, 0.7, -0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ProcessFrames(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With sub-pixel motion the loop converges before the bound.
	for _, f := range rep.Frames[1:] {
		if f.LKIters < 1 || f.LKIters > 4 {
			t.Fatalf("LK iterations: %d", f.LKIters)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	runner, rt := bootRunner(t, "SoC_Y", 1)
	_ = runner
	if _, err := NewRunner(nil, Allocation{"rt_1": {1}}, DefaultPipelineConfig()); err == nil {
		t.Fatal("nil runtime accepted")
	}
	if _, err := NewRunner(rt, Allocation{}, DefaultPipelineConfig()); err == nil {
		t.Fatal("empty allocation accepted")
	}
	if _, err := NewRunner(rt, Allocation{"rt_1": {99}}, DefaultPipelineConfig()); err == nil {
		t.Fatal("unknown kernel index accepted")
	}
	bad := DefaultPipelineConfig()
	bad.LKIterations = 0
	if _, err := NewRunner(rt, Allocation{"rt_1": {1}}, bad); err == nil {
		t.Fatal("zero iterations accepted")
	}
	src, err := NewFrameSource(64, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.ProcessFrames(src, 1); err == nil {
		t.Fatal("single-frame run accepted")
	}
}

// TestPrefetcherPredictions pins the next-kernel prediction for the
// schedules that drive Fig 4's reconfiguration counts.
func TestPrefetcherPredictions(t *testing.T) {
	runner, _ := bootRunner(t, "SoC_Z", 1)
	cases := []struct {
		tile string
		k    int
		want int
	}{
		{"rt_3", KWarpImg, KMult},            // within the loop
		{"rt_2", KSubtract, KReshapeAdd},     // within the loop
		{"rt_3", KMult, KHessian},            // frame wrap -> next prefix kernel
		{"rt_2", KReshapeAdd, KGrayscale},    // frame wrap
		{"rt_1", KChangeDetection, KDebayer}, // next frame's front-end
		{"rt_4", KSDUpdate, KGradient},       // frame wrap to its prefix kernel
	}
	for _, c := range cases {
		if got := runner.nextOnTile(c.tile, c.k); got != c.want {
			t.Errorf("nextOnTile(%s, %s) = %s, want %s", c.tile, Names[c.k], Names[got], Names[c.want])
		}
	}
}

// TestFig4Orderings is the headline runtime claim: SoC_X is the slowest
// but most energy-efficient, SoC_Z the fastest but least efficient,
// SoC_Y in between on both axes.
func TestFig4Orderings(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-SoC simulation in -short mode")
	}
	results := make(map[string]*RunReport)
	for _, name := range RuntimeSoCNames() {
		runner, _ := bootRunner(t, name, 1)
		src, err := NewFrameSource(128, 0.7, -0.4, 3)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := runner.ProcessFrames(src, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = rep
	}
	x, y, z := results["SoC_X"], results["SoC_Y"], results["SoC_Z"]
	if !(x.TimePerFrame() > y.TimePerFrame() && y.TimePerFrame() > z.TimePerFrame()) {
		t.Errorf("time ordering violated: X=%.4f Y=%.4f Z=%.4f",
			x.TimePerFrame(), y.TimePerFrame(), z.TimePerFrame())
	}
	if !(x.EnergyPerFrame() < y.EnergyPerFrame() && y.EnergyPerFrame() < z.EnergyPerFrame()) {
		t.Errorf("energy ordering violated: X=%.3f Y=%.3f Z=%.3f",
			x.EnergyPerFrame(), y.EnergyPerFrame(), z.EnergyPerFrame())
	}
}

// TestHardwareMatchesGoldenPipeline runs the same frame stream through
// the all-hardware SoC_Z and the software Pipeline: the accelerators
// execute the identical kernels, so the estimated motion must agree to
// machine precision and the detections must be close (the two paths
// feed change-detection the last-iteration warp vs the final warp).
func TestHardwareMatchesGoldenPipeline(t *testing.T) {
	const frames = 4
	cfg := DefaultPipelineConfig()
	cfg.LKIterations = 6
	cfg.LKEpsilon = 1e-9 // run all iterations on both paths

	swSrc, err := NewFrameSource(64, 0.7, -0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var swMotion []float64
	var swDet []int
	for i := 0; i < frames; i++ {
		res, err := sw.Process(swSrc.Next())
		if err != nil {
			t.Fatal(err)
		}
		swMotion = append(swMotion, math.Hypot(res.Motion[4], res.Motion[5]))
		swDet = append(swDet, res.Detections)
	}

	runner, _ := bootRunner(t, "SoC_Z", cfg.LKIterations)
	runner.cfg.LKEpsilon = cfg.LKEpsilon
	hwSrc, err := NewFrameSource(64, 0.7, -0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ProcessFrames(hwSrc, frames)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < frames; i++ {
		if math.Abs(rep.Frames[i].MotionErr-swMotion[i]) > 1e-9 {
			t.Errorf("frame %d: hardware motion %.9f vs software %.9f",
				i, rep.Frames[i].MotionErr, swMotion[i])
		}
		if d := rep.Frames[i].Detections - swDet[i]; d > 4 || d < -4 {
			t.Errorf("frame %d: hardware detections %d vs software %d",
				i, rep.Frames[i].Detections, swDet[i])
		}
	}
}

// pipelineFriendlySoC builds a 5-tile SoC whose front-end kernels own a
// dedicated tile, so a pipelined next-frame front-end never contends
// with the registration loop.
func pipelineFriendlySoC() (*socgen.Config, Allocation) {
	cfg := &socgen.Config{
		Name: "SoC_P", Board: "VC707", Cols: 3, Rows: 3, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
			{Name: "rt_f", Kind: tile.Reconf, AccelName: Names[KDebayer], Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "rt_1", Kind: tile.Reconf, AccelName: Names[KMult], Pos: noc.Coord{X: 1, Y: 1}},
			{Name: "rt_2", Kind: tile.Reconf, AccelName: Names[KReshapeAdd], Pos: noc.Coord{X: 2, Y: 1}},
			{Name: "rt_3", Kind: tile.Reconf, AccelName: Names[KSDUpdate], Pos: noc.Coord{X: 0, Y: 2}},
			{Name: "rt_4", Kind: tile.Reconf, AccelName: Names[KChangeDetection], Pos: noc.Coord{X: 1, Y: 2}},
		},
	}
	alloc := Allocation{
		"rt_f": {KDebayer, KGrayscale},
		"rt_1": {KWarpImg, KMult},
		"rt_2": {KSubtract, KReshapeAdd},
		"rt_3": {KGradient, KSteepestDescent, KSDUpdate},
		"rt_4": {KHessian, KMatrixInvert, KChangeDetection},
	}
	return cfg, alloc
}

// runPipelineCase boots an arbitrary (config, allocation) pair and runs
// the WAMI stream with or without frame pipelining, under the given
// runtime configuration.
func runPipelineCase(t *testing.T, cfg *socgen.Config, alloc Allocation, rcfg reconfig.Config, pipelined bool) *RunReport {
	t.Helper()
	reg := accel.Default()
	if err := AddTo(reg); err != nil {
		t.Fatal(err)
	}
	d, err := socgen.Elaborate(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := flow.FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := reconfig.New(sim.NewEngine(), d, reg, plan, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	am := make(map[string][]string, len(alloc))
	for tileName, idxs := range alloc {
		for _, idx := range idxs {
			am[tileName] = append(am[tileName], Names[idx])
		}
	}
	bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, am, reg, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for tileName, m := range bss {
		for acc, bs := range m {
			if err := rt.RegisterBitstream(tileName, acc, bs); err != nil {
				t.Fatal(err)
			}
		}
	}
	pcfg := DefaultPipelineConfig()
	pcfg.LKIterations = 1
	pcfg.PipelineFrames = pipelined
	runner, err := NewRunner(rt, alloc, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewFrameSource(128, 0.7, -0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ProcessFrames(src, 6)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFramePipeliningExtension: overlapping consecutive frames (the
// extension the paper's evaluation leaves off) improves throughput when
// the front-end owns a dedicated tile — and, instructively, *hurts*
// under the Table VI allocations, where the front-end kernels share
// tiles with loop kernels and the early front-end churns their
// partitions. Functional results are identical either way.
func TestFramePipeliningExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulation in -short mode")
	}
	cfg, alloc := pipelineFriendlySoC()
	// In the evaluation regime the single PRC serializes every swap, so
	// pipelining is bounded; with a DMA-engine-grade configuration path
	// (the raw 400 MB/s ICAP) frames are compute-bound and the overlap
	// pays. Demonstrate the extension there.
	fast := reconfig.DefaultConfig()
	fast.ICAPEffectiveBps = 400e6
	seq := runPipelineCase(t, cfg, alloc, fast, false)
	pipe := runPipelineCase(t, cfg, alloc, fast, true)
	if pipe.TimePerFrame() >= seq.TimePerFrame() {
		t.Fatalf("pipelining did not improve throughput on the dedicated-front-end SoC: %.4f vs %.4f",
			pipe.TimePerFrame(), seq.TimePerFrame())
	}
	for i := 1; i < len(seq.Frames); i++ {
		if seq.Frames[i].MotionErr != pipe.Frames[i].MotionErr {
			t.Errorf("frame %d: motion differs under pipelining: %.9f vs %.9f",
				i, seq.Frames[i].MotionErr, pipe.Frames[i].MotionErr)
		}
		if seq.Frames[i].Detections != pipe.Frames[i].Detections {
			t.Errorf("frame %d: detections differ: %d vs %d",
				i, seq.Frames[i].Detections, pipe.Frames[i].Detections)
		}
	}
	t.Logf("SoC_P throughput: sequential %.4f, pipelined %.4f s/frame (%.1f%% faster)",
		seq.TimePerFrame(), pipe.TimePerFrame(),
		(1-pipe.TimePerFrame()/seq.TimePerFrame())*100)

	// The negative result on SoC_Z: shared tiles make pipelining a loss.
	zCfg, zAlloc, err := RuntimeSoC("SoC_Z")
	if err != nil {
		t.Fatal(err)
	}
	zSeq := runPipelineCase(t, zCfg, zAlloc, reconfig.DefaultConfig(), false)
	zPipe := runPipelineCase(t, zCfg, zAlloc, reconfig.DefaultConfig(), true)
	if zPipe.TimePerFrame() < zSeq.TimePerFrame()*0.98 {
		t.Errorf("expected pipelining to be neutral-to-harmful on SoC_Z's shared tiles: %.4f vs %.4f",
			zPipe.TimePerFrame(), zSeq.TimePerFrame())
	}
	t.Logf("SoC_Z throughput: sequential %.4f, pipelined %.4f s/frame (shared-tile churn)",
		zSeq.TimePerFrame(), zPipe.TimePerFrame())
}
