package wami

import "fmt"

// DetectionQuality scores a change-detection mask against the frame
// source's ground truth at the object level — the operationally
// meaningful WAMI metric: a moving target counts as detected when the
// mask flags fabric near its position, and flagged pixels far from any
// target (or its just-vacated position) count against precision.
type DetectionQuality struct {
	// TargetsDetected / TargetsTotal count object-level recall.
	TargetsDetected int
	TargetsTotal    int
	// TruePixels / FlaggedPixels count pixel-level precision: flagged
	// pixels within the match radius of a ground-truth change site.
	TruePixels    int
	FlaggedPixels int
}

// Recall returns the fraction of moving targets the mask found.
func (q DetectionQuality) Recall() float64 {
	if q.TargetsTotal == 0 {
		return 1
	}
	return float64(q.TargetsDetected) / float64(q.TargetsTotal)
}

// Precision returns the fraction of flagged pixels that sit on a
// ground-truth change site.
func (q DetectionQuality) Precision() float64 {
	if q.FlaggedPixels == 0 {
		return 1
	}
	return float64(q.TruePixels) / float64(q.FlaggedPixels)
}

// F1 returns the harmonic mean of precision and recall.
func (q DetectionQuality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// matchRadius is how far (in pixels) a flagged pixel may sit from a
// ground-truth change site and still count: it absorbs the sub-pixel
// registration shift and the background model's lag.
const matchRadius = 2

// targetPosition returns target t's top-left corner in frame idx.
func (s *FrameSource) targetPosition(t, idx int) (int, int) {
	tx := (17*t + 23 + 2*idx) % (s.N - 4)
	ty := (31*t + 11 + idx) % (s.N - 4)
	return tx, ty
}

// ScoreDetections compares a change-detection mask produced for frame
// idx (registered against frame idx-1) with the source's ground truth.
func (s *FrameSource) ScoreDetections(mask *Image, idx int) (DetectionQuality, error) {
	var q DetectionQuality
	if mask == nil || mask.N != s.N {
		return q, fmt.Errorf("wami: mask size mismatch")
	}
	if idx < 1 {
		return q, fmt.Errorf("wami: frame %d has no predecessor to diff against", idx)
	}
	// Change sites: each target's current footprint (appearance) and its
	// previous-frame footprint (disappearance).
	type site struct{ x0, y0 int }
	var sites []site
	for t := 0; t < s.Targets; t++ {
		cx, cy := s.targetPosition(t, idx)
		px, py := s.targetPosition(t, idx-1)
		sites = append(sites, site{cx, cy}, site{px, py})
	}

	near := func(x, y int) bool {
		for _, st := range sites {
			if x >= st.x0-matchRadius && x < st.x0+2+matchRadius &&
				y >= st.y0-matchRadius && y < st.y0+2+matchRadius {
				return true
			}
		}
		return false
	}

	for y := 0; y < s.N; y++ {
		for x := 0; x < s.N; x++ {
			if mask.At(x, y) == 0 {
				continue
			}
			q.FlaggedPixels++
			if near(x, y) {
				q.TruePixels++
			}
		}
	}

	// Object-level recall: a target counts as detected when any flagged
	// pixel lands within the match radius of its current footprint.
	q.TargetsTotal = s.Targets
	for t := 0; t < s.Targets; t++ {
		cx, cy := s.targetPosition(t, idx)
		found := false
		for y := cy - matchRadius; y < cy+2+matchRadius && !found; y++ {
			for x := cx - matchRadius; x < cx+2+matchRadius && !found; x++ {
				if x >= 0 && x < s.N && y >= 0 && y < s.N && mask.At(x, y) != 0 {
					found = true
				}
			}
		}
		if found {
			q.TargetsDetected++
		}
	}
	return q, nil
}
