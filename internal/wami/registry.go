package wami

import (
	"fmt"

	"presp/internal/accel"
	"presp/internal/fpga"
)

// Kernel indices of the Fig 3 dataflow decomposition. The Lucas-Kanade
// stage is split into accelerators 3..11 to expose parallelism.
const (
	KDebayer         = 1
	KGrayscale       = 2
	KGradient        = 3
	KWarpImg         = 4
	KSubtract        = 5
	KSteepestDescent = 6
	KHessian         = 7
	KSDUpdate        = 8
	KMatrixInvert    = 9
	KMult            = 10
	KReshapeAdd      = 11
	KChangeDetection = 12
	// NumKernels is the accelerator count of the decomposition.
	NumKernels = 12
)

// Names maps kernel index to accelerator name.
var Names = map[int]string{
	KDebayer:         "debayer",
	KGrayscale:       "grayscale",
	KGradient:        "gradient",
	KWarpImg:         "warp-img",
	KSubtract:        "subtract",
	KSteepestDescent: "steepest-descent",
	KHessian:         "hessian",
	KSDUpdate:        "sd-update",
	KMatrixInvert:    "matrix-invert",
	KMult:            "mult",
	KReshapeAdd:      "reshape-add",
	KChangeDetection: "change-detection",
}

// Index returns the Fig 3 kernel index for an accelerator name.
func Index(name string) (int, error) {
	for idx, n := range Names {
		if n == name {
			return idx, nil
		}
	}
	return 0, fmt.Errorf("wami: unknown accelerator %q", name)
}

// lutProfile carries the per-kernel measured LUT consumption (the Fig 3
// annotations). The values reproduce the aggregate size metrics of the
// evaluation SoCs: with the paper's static-part sizes, SoC_A..SoC_D land
// on γ = 1.26, 0.60, 0.97 and 2.40 and in classes 1.2, 1.1, 1.3 and 2.1
// exactly as Table IV reports.
var lutProfile = map[int]int{
	KDebayer:         20000,
	KGrayscale:       5000,
	KGradient:        12000,
	KWarpImg:         22000,
	KSubtract:        12000,
	KSteepestDescent: 34000,
	KHessian:         28400,
	KSDUpdate:        34000,
	KMatrixInvert:    13700,
	KMult:            34000,
	KReshapeAdd:      12400,
	KChangeDetection: 34000,
}

// LUTs returns the measured LUT consumption of kernel idx.
func LUTs(idx int) (int, error) {
	l, ok := lutProfile[idx]
	if !ok {
		return 0, fmt.Errorf("wami: no LUT profile for kernel %d", idx)
	}
	return l, nil
}

// cyclesPerPixel gives the pipeline throughput of each kernel in cycles
// per processed pixel; fixedCycles covers the non-pixel-scaled kernels.
var cyclesPerPixel = map[int]float64{
	KDebayer:         1.0,
	KGrayscale:       0.5,
	KGradient:        1.0,
	KWarpImg:         2.0,
	KSubtract:        1.0,
	KSteepestDescent: 1.5,
	KHessian:         2.6,
	KSDUpdate:        1.5,
	KMult:            0.75,
	KChangeDetection: 1.2,
}

var fixedCycles = map[int]int64{
	KMatrixInvert: 2800,
	KReshapeAdd:   420,
}

// Registry returns an accelerator registry holding the twelve WAMI
// kernels with their functional models, resource profiles and latency
// models. Descriptors compose with accel.Default() names without
// collision, so one registry can serve both accelerator families.
func Registry() (*accel.Registry, error) {
	r := accel.NewRegistry()
	if err := AddTo(r); err != nil {
		return nil, err
	}
	return r, nil
}

// AddTo registers the WAMI descriptors into an existing registry.
func AddTo(r *accel.Registry) error {
	for idx := 1; idx <= NumKernels; idx++ {
		idx := idx
		luts := lutProfile[idx]
		d := &accel.Descriptor{
			Name:      Names[idx],
			Kernel:    kernelFor(idx),
			Resources: fpga.NewResources(luts, int(float64(luts)*1.12), luts/450, luts/900),
			CyclesPerInvocation: func(n int) int64 {
				if f, ok := fixedCycles[idx]; ok {
					return 96 + f
				}
				return 96 + int64(cyclesPerPixel[idx]*float64(n))
			},
			// Dynamic power tracks datapath size (~21 mW per kLUT of
			// active logic on this fabric and clock).
			ActivePowerW: 0.021 * float64(luts) / 1000.0,
			HLSTool:      "stratus-hls",
		}
		if err := r.Register(d); err != nil {
			return err
		}
	}
	return nil
}
