package wami

import (
	"testing"

	"presp/internal/fpga"
	"presp/internal/hls"
)

// wamiDatapaths describes each WAMI accelerator's datapath the way its
// HLS project would: operator mix, unrolling, buffering. The estimator
// must land within 40% of the registered (reconstructed-measurement)
// profile — the same planning-accuracy bar the characterization
// accelerators meet.
var wamiDatapaths = map[int]*hls.Description{
	KDebayer: {
		Name: "debayer", Width: 32, Adders: 8, Unroll: 16, MuxInputs: 40,
		FSMStates: 8, BufferBits: 4 * 36864, PipelineDepth: 6,
	},
	KGrayscale: {
		Name: "grayscale", Width: 32, Adders: 2, Multipliers: 3, UseDSP: true,
		Unroll: 8, MuxInputs: 12, FSMStates: 4, BufferBits: 2 * 36864, PipelineDepth: 4,
	},
	KGradient: {
		Name: "gradient", Width: 32, Adders: 2, Unroll: 16, MuxInputs: 30,
		FSMStates: 6, BufferBits: 4 * 36864, PipelineDepth: 4,
	},
	KWarpImg: {
		Name: "warp-img", Width: 32, Adders: 6, Multipliers: 4, UseDSP: true,
		Unroll: 8, MuxInputs: 120, FSMStates: 10, BufferBits: 16 * 36864, PipelineDepth: 8,
	},
	KSubtract: {
		Name: "subtract", Width: 32, Adders: 1, Unroll: 32, MuxInputs: 16,
		FSMStates: 4, BufferBits: 2 * 36864, PipelineDepth: 3,
	},
	KSteepestDescent: {
		Name: "steepest-descent", Width: 32, Adders: 2, Multipliers: 2, UseDSP: true,
		Unroll: 16, MuxInputs: 100, FSMStates: 8, BufferBits: 8 * 36864, PipelineDepth: 6,
	},
	KHessian: {
		Name: "hessian", Width: 32, Adders: 6, Multipliers: 6, UseDSP: true,
		Unroll: 8, MuxInputs: 160, FSMStates: 10, BufferBits: 12 * 36864, PipelineDepth: 8,
	},
	KSDUpdate: {
		Name: "sd-update", Width: 32, Adders: 1, Multipliers: 6, UseDSP: true,
		Unroll: 16, MuxInputs: 95, FSMStates: 8, BufferBits: 12 * 36864, PipelineDepth: 6,
	},
	KMatrixInvert: {
		Name: "matrix-invert", Width: 32, Adders: 36, Multipliers: 36, UseDSP: true,
		Dividers: 1, Unroll: 1, MuxInputs: 300, FSMStates: 24, BufferBits: 36864, PipelineDepth: 12,
	},
	KMult: {
		Name: "mult", Width: 32, Adders: 2, Multipliers: 2, UseDSP: true,
		Unroll: 16, MuxInputs: 100, FSMStates: 8, BufferBits: 8 * 36864, PipelineDepth: 6,
	},
	KReshapeAdd: {
		Name: "reshape-add", Width: 32, Adders: 30, Multipliers: 40, UseDSP: true,
		Dividers: 2, Unroll: 1, MuxInputs: 60, FSMStates: 16, BufferBits: 36864, PipelineDepth: 10,
	},
	KChangeDetection: {
		Name: "change-detection", Width: 32, Adders: 3, Comparators: 2, Multipliers: 2,
		UseDSP: true, Unroll: 16, MuxInputs: 100, FSMStates: 8,
		BufferBits: 8 * 36864, PipelineDepth: 6,
	},
}

// TestEstimatorTracksWamiProfiles cross-validates the HLS resource
// estimator against the platform's WAMI accelerator profiles.
func TestEstimatorTracksWamiProfiles(t *testing.T) {
	for idx := 1; idx <= NumKernels; idx++ {
		desc, ok := wamiDatapaths[idx]
		if !ok {
			t.Fatalf("no datapath description for %s", Names[idx])
		}
		est, err := hls.Estimate(desc)
		if err != nil {
			t.Fatalf("%s: %v", Names[idx], err)
		}
		measured := fpga.NewResources(lutProfile[idx], 0, 0, 0)
		if rel := hls.RelativeError(est, measured); rel > 0.40 {
			t.Errorf("%s: estimate %d vs profile %d LUTs (%.0f%% off)",
				Names[idx], est[fpga.LUT], lutProfile[idx], rel*100)
		}
	}
}

// TestWamiLatencyModelsMatchHLS: the registered cycle models and the
// HLS latency estimates agree on ordering for pixel-scaled kernels
// (more cycles per pixel -> slower).
func TestWamiLatencyModelsMatchHLS(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	fast, err := reg.Lookup(Names[KSubtract]) // 1.0 cyc/px at unroll 32
	if err != nil {
		t.Fatal(err)
	}
	slow, err := reg.Lookup(Names[KHessian]) // 2.6 cyc/px
	if err != nil {
		t.Fatal(err)
	}
	if fast.CyclesPerInvocation(n) >= slow.CyclesPerInvocation(n) {
		t.Fatal("subtract should be faster than hessian")
	}
	// HLS latency for the matching descriptions preserves the ordering.
	lf, err := hls.Latency(wamiDatapaths[KSubtract], n)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := hls.Latency(wamiDatapaths[KHessian], n)
	if err != nil {
		t.Fatal(err)
	}
	if lf >= ls {
		t.Fatalf("HLS latency ordering inverted: %d vs %d", lf, ls)
	}
}
