package wami

import (
	"math"
	"testing"
	"testing/quick"
)

func constImage(n int, v float64) *Image {
	im := NewImage(n)
	for i := range im.Pix {
		im.Pix[i] = v
	}
	return im
}

func rampImage(n int, sx, sy float64) *Image {
	im := NewImage(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			im.Set(x, y, sx*float64(x)+sy*float64(y))
		}
	}
	return im
}

func TestImageAtClamps(t *testing.T) {
	im := rampImage(4, 1, 10)
	if im.At(-5, 0) != im.At(0, 0) || im.At(10, 3) != im.At(3, 3) {
		t.Fatal("border clamping broken")
	}
	im.Set(-1, 0, 99) // out-of-range writes are dropped
	if im.At(0, 0) == 99 {
		t.Fatal("out-of-range write landed")
	}
}

func TestImageClone(t *testing.T) {
	a := rampImage(4, 1, 0)
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) == 42 {
		t.Fatal("clone aliases the original")
	}
}

func TestDebayerConstantScene(t *testing.T) {
	// An achromatic constant mosaic demosaics to constant planes.
	mosaic := constImage(16, 100)
	r, g, b := Debayer(mosaic)
	for i := range mosaic.Pix {
		if r.Pix[i] != 100 || g.Pix[i] != 100 || b.Pix[i] != 100 {
			t.Fatalf("constant scene broke at %d: r=%g g=%g b=%g", i, r.Pix[i], g.Pix[i], b.Pix[i])
		}
	}
}

func TestDebayerInterpolatesLinearScene(t *testing.T) {
	// Bilinear demosaicing reconstructs linear scenes exactly away from
	// the border.
	mosaic := rampImage(16, 2, 3)
	r, g, b := Debayer(mosaic)
	for y := 2; y < 14; y++ {
		for x := 2; x < 14; x++ {
			want := 2*float64(x) + 3*float64(y)
			for _, plane := range []*Image{r, g, b} {
				if math.Abs(plane.At(x, y)-want) > 1e-9 {
					t.Fatalf("linear scene broken at (%d,%d): %g vs %g", x, y, plane.At(x, y), want)
				}
			}
		}
	}
}

func TestGrayscaleWeights(t *testing.T) {
	r := constImage(4, 1)
	g := constImage(4, 0)
	b := constImage(4, 0)
	if got := Grayscale(r, g, b).Pix[0]; math.Abs(got-0.299) > 1e-12 {
		t.Fatalf("red weight: %g", got)
	}
	// The weights sum to 1.
	all := Grayscale(constImage(4, 1), constImage(4, 1), constImage(4, 1))
	if math.Abs(all.Pix[0]-1) > 1e-12 {
		t.Fatalf("weights do not sum to 1: %g", all.Pix[0])
	}
}

func TestGradientOfRamp(t *testing.T) {
	im := rampImage(8, 3, -2)
	gx, gy := Gradient(im)
	// Central differences recover the exact slopes in the interior.
	for y := 1; y < 7; y++ {
		for x := 1; x < 7; x++ {
			if math.Abs(gx.At(x, y)-3) > 1e-9 || math.Abs(gy.At(x, y)+2) > 1e-9 {
				t.Fatalf("gradient at (%d,%d): (%g,%g)", x, y, gx.At(x, y), gy.At(x, y))
			}
		}
	}
}

func TestAffineIdentityAndInverse(t *testing.T) {
	var id Affine
	x, y := id.Apply(3.5, -2.25)
	if x != 3.5 || y != -2.25 {
		t.Fatal("identity warp moved a point")
	}
	p := Affine{0.02, -0.01, 0.03, 0.01, 1.5, -2.5}
	inv, err := p.Invert()
	if err != nil {
		t.Fatal(err)
	}
	comp := p.Compose(inv)
	for i, v := range comp {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("p∘p⁻¹ not identity at %d: %g", i, v)
		}
	}
}

func TestAffineInvertSingular(t *testing.T) {
	p := Affine{-1, 0, 0, -1, 0, 0} // collapses the plane
	if _, err := p.Invert(); err == nil {
		t.Fatal("singular warp inverted")
	}
}

func TestAffineComposeAssociativityProperty(t *testing.T) {
	f := func(a0, a1, b0, b1, c0, c1 int8) bool {
		a := Affine{float64(a0) / 500, 0, 0, float64(a1) / 500, float64(a0) / 10, 0}
		b := Affine{0, float64(b0) / 500, float64(b1) / 500, 0, 0, float64(b0) / 10}
		c := Affine{float64(c0) / 500, 0, 0, 0, float64(c1) / 10, 0}
		l := a.Compose(b).Compose(c)
		r := a.Compose(b.Compose(c))
		for i := range l {
			if math.Abs(l[i]-r[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWarpIdentity(t *testing.T) {
	im := rampImage(8, 1, 2)
	out := Warp(im, Affine{})
	for i := range im.Pix {
		if out.Pix[i] != im.Pix[i] {
			t.Fatal("identity warp changed the image")
		}
	}
}

func TestWarpTranslationOnRamp(t *testing.T) {
	im := rampImage(16, 1, 0) // value == x
	out := Warp(im, Affine{0, 0, 0, 0, 2.5, 0})
	// out(x) = im(x + 2.5) = x + 2.5 in the interior.
	for x := 1; x < 12; x++ {
		if math.Abs(out.At(x, 5)-(float64(x)+2.5)) > 1e-9 {
			t.Fatalf("warp at x=%d: %g", x, out.At(x, 5))
		}
	}
}

func TestSubtract(t *testing.T) {
	a := constImage(4, 5)
	b := rampImage(4, 1, 0)
	d := Subtract(a, b)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if d.At(x, y) != 5-float64(x) {
				t.Fatalf("subtract at (%d,%d): %g", x, y, d.At(x, y))
			}
		}
	}
}

func TestSteepestDescentStructure(t *testing.T) {
	gx := constImage(4, 2)
	gy := constImage(4, 3)
	sd := SteepestDescent(gx, gy)
	// sd[4] = gx, sd[5] = gy; sd[0] = gx·x, sd[3] = gy·y.
	if sd[4].At(2, 1) != 2 || sd[5].At(2, 1) != 3 {
		t.Fatal("translation rows wrong")
	}
	// At (x=2, y=1): sd[0] = gx·x = 2·2 = 4; sd[3] = gy·y = 3·1 = 3.
	if sd[0].At(2, 1) != 4 || sd[3].At(2, 1) != 3 {
		t.Fatalf("scaled rows wrong: %g %g", sd[0].At(2, 1), sd[3].At(2, 1))
	}
}

func TestHessianSymmetricPSD(t *testing.T) {
	im := NewImage(16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			im.Set(x, y, math.Sin(0.4*float64(x))*math.Cos(0.3*float64(y))*50+100)
		}
	}
	gx, gy := Gradient(im)
	h := Hessian(SteepestDescent(gx, gy))
	for i := 0; i < 6; i++ {
		if h[i*6+i] < 0 {
			t.Fatalf("negative diagonal H[%d][%d] = %g", i, i, h[i*6+i])
		}
		for j := 0; j < 6; j++ {
			if h[i*6+j] != h[j*6+i] {
				t.Fatal("Hessian not symmetric")
			}
		}
	}
	// Gram matrices are PSD: xᵀHx >= 0 for a few probes.
	probes := [][6]float64{{1, 0, 0, 0, 0, 0}, {1, -1, 2, 0.5, -0.25, 1}, {0, 0, 0, 0, 1, -1}}
	for _, v := range probes {
		var q float64
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				q += v[i] * h[i*6+j] * v[j]
			}
		}
		if q < -1e-6 {
			t.Fatalf("Hessian not PSD: xᵀHx = %g", q)
		}
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	var id [36]float64
	for i := 0; i < 6; i++ {
		id[i*6+i] = 1
	}
	inv, err := MatrixInvert(id)
	if err != nil {
		t.Fatal(err)
	}
	if inv != id {
		t.Fatal("I⁻¹ != I")
	}
}

func TestMatrixInvertRoundtrip(t *testing.T) {
	var m [36]float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			m[i*6+j] = 1.0 / float64(i+j+1) // Hilbert-like, well-defined
		}
		m[i*6+i] += 1 // keep it well-conditioned
	}
	inv, err := MatrixInvert(m)
	if err != nil {
		t.Fatal(err)
	}
	// m · inv ≈ I.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			var acc float64
			for k := 0; k < 6; k++ {
				acc += m[i*6+k] * inv[k*6+j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(acc-want) > 1e-9 {
				t.Fatalf("M·M⁻¹[%d][%d] = %g", i, j, acc)
			}
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	var m [36]float64 // all zeros
	if _, err := MatrixInvert(m); err == nil {
		t.Fatal("singular matrix inverted")
	}
}

func TestLucasKanadeRecoversTranslation(t *testing.T) {
	n := 64
	f := func(x, y float64) float64 {
		return 128 + 40*math.Sin(x*0.12)*math.Cos(y*0.08) + 25*math.Sin(x*0.05+y*0.06)
	}
	tmpl := NewImage(n)
	img := NewImage(n)
	dx, dy := 1.2, -0.8
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			tmpl.Set(x, y, f(float64(x), float64(y)))
			img.Set(x, y, f(float64(x)+dx, float64(y)+dy))
		}
	}
	p, iters, err := LucasKanade(tmpl, img, 30, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if iters >= 30 {
		t.Fatalf("did not converge in %d iterations", iters)
	}
	// The estimated warp maps img coordinates onto tmpl: translation
	// ≈ (-dx, -dy), up to border effects.
	if math.Abs(p[4]+dx) > 0.15 || math.Abs(p[5]+dy) > 0.15 {
		t.Fatalf("recovered (%g, %g), want (%g, %g)", p[4], p[5], -dx, -dy)
	}
}

func TestLucasKanadeSizeMismatch(t *testing.T) {
	if _, _, err := LucasKanade(NewImage(8), NewImage(16), 5, 1e-3); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestChangeDetection(t *testing.T) {
	bg := constImage(8, 100)
	frame := bg.Clone()
	frame.Set(3, 3, 160)
	frame.Set(4, 3, 160)
	mask, newBg := ChangeDetection(frame, bg, 30, 0.5)
	det := 0
	for _, v := range mask.Pix {
		if v != 0 {
			det++
		}
	}
	if det != 2 {
		t.Fatalf("detections: got %d want 2", det)
	}
	// Background blends toward the frame at rate alpha.
	if newBg.At(3, 3) != 130 {
		t.Fatalf("background update: got %g want 130", newBg.At(3, 3))
	}
	if newBg.At(0, 0) != 100 {
		t.Fatal("unchanged pixels must keep the background")
	}
}
