package wami

import "fmt"

// Node is one accelerator invocation site in the Fig 3 dataflow model.
type Node struct {
	// Kernel is the Fig 3 kernel index.
	Kernel int
	// Deps are the kernel indices whose outputs this node consumes.
	Deps []int
	// PerIteration marks nodes inside the Lucas-Kanade refinement loop
	// (executed once per LK iteration rather than once per frame).
	PerIteration bool
}

// Dataflow returns the WAMI-App dataflow graph of Fig 3: the frame
// front-end (Debayer, Grayscale), the Lucas-Kanade registration stage
// decomposed into its setup chain (Gradient → Steepest-Descent →
// Hessian → Matrix-Invert) and its per-iteration loop (Warp → Subtract
// → SD-Update → Mult → Reshape-Add), and the Change-Detection backend.
func Dataflow() []Node {
	return []Node{
		{Kernel: KDebayer},
		{Kernel: KGrayscale, Deps: []int{KDebayer}},
		{Kernel: KGradient, Deps: []int{KGrayscale}},
		{Kernel: KSteepestDescent, Deps: []int{KGradient}},
		{Kernel: KHessian, Deps: []int{KSteepestDescent}},
		{Kernel: KMatrixInvert, Deps: []int{KHessian}},
		{Kernel: KWarpImg, Deps: []int{KGrayscale, KReshapeAdd}, PerIteration: true},
		{Kernel: KSubtract, Deps: []int{KWarpImg}, PerIteration: true},
		{Kernel: KSDUpdate, Deps: []int{KSteepestDescent, KSubtract}, PerIteration: true},
		{Kernel: KMult, Deps: []int{KMatrixInvert, KSDUpdate}, PerIteration: true},
		{Kernel: KReshapeAdd, Deps: []int{KMult}, PerIteration: true},
		{Kernel: KChangeDetection, Deps: []int{KWarpImg}},
	}
}

// NodeFor returns the dataflow node of kernel idx.
func NodeFor(idx int) (Node, error) {
	for _, n := range Dataflow() {
		if n.Kernel == idx {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("wami: kernel %d not in the dataflow graph", idx)
}

// ValidateDataflow checks the graph is acyclic when the per-iteration
// back edge (Warp depends on the previous iteration's Reshape-Add) is
// removed, and that every kernel appears exactly once.
func ValidateDataflow() error {
	nodes := Dataflow()
	seen := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		if seen[n.Kernel] {
			return fmt.Errorf("wami: kernel %d appears twice in the dataflow", n.Kernel)
		}
		seen[n.Kernel] = true
	}
	for idx := 1; idx <= NumKernels; idx++ {
		if !seen[idx] {
			return fmt.Errorf("wami: kernel %d missing from the dataflow", idx)
		}
	}
	// Topological check ignoring the loop-carried edge into Warp.
	state := make(map[int]int, len(nodes)) // 0 unvisited, 1 visiting, 2 done
	byKernel := make(map[int]Node, len(nodes))
	for _, n := range nodes {
		byKernel[n.Kernel] = n
	}
	var visit func(k int) error
	visit = func(k int) error {
		switch state[k] {
		case 1:
			return fmt.Errorf("wami: dataflow cycle through kernel %d", k)
		case 2:
			return nil
		}
		state[k] = 1
		for _, dep := range byKernel[k].Deps {
			if k == KWarpImg && dep == KReshapeAdd {
				continue // loop-carried dependency
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[k] = 2
		return nil
	}
	for _, n := range nodes {
		if err := visit(n.Kernel); err != nil {
			return err
		}
	}
	return nil
}
