package wami

import (
	"fmt"
	"math"
)

// FrameSource generates synthetic aerial-style Bayer frames: a smooth
// textured background that shifts by a known global motion every frame
// (what Lucas-Kanade must recover) plus small moving targets (what
// Change-Detection must flag). Ground truth is retained so tests can
// check end-to-end correctness.
type FrameSource struct {
	// N is the frame edge length in pixels (square frames).
	N int
	// DX, DY is the per-frame global translation in pixels.
	DX, DY float64
	// Targets is the moving-target count.
	Targets int

	frame int
	seed  uint64
}

// NewFrameSource builds a source of n×n frames with the given global
// per-frame motion and target count.
func NewFrameSource(n int, dx, dy float64, targets int) (*FrameSource, error) {
	if n < 16 {
		return nil, fmt.Errorf("wami: frame size %d too small (min 16)", n)
	}
	if targets < 0 {
		return nil, fmt.Errorf("wami: negative target count")
	}
	return &FrameSource{N: n, DX: dx, DY: dy, Targets: targets, seed: 0x9e3779b9}, nil
}

// FrameIndex returns the index of the next frame Next will produce.
func (s *FrameSource) FrameIndex() int { return s.frame }

// GroundTruthMotion returns the cumulative translation of frame idx
// relative to frame 0.
func (s *FrameSource) GroundTruthMotion(idx int) (float64, float64) {
	return s.DX * float64(idx), s.DY * float64(idx)
}

// background evaluates the continuous background texture at (x, y):
// a sum of smooth sinusoids, so sub-pixel warping is well defined.
func (s *FrameSource) background(x, y float64) float64 {
	v := 128 +
		45*math.Sin(x*0.11)*math.Cos(y*0.07) +
		30*math.Sin(x*0.031+y*0.043) +
		20*math.Cos(x*0.017-y*0.023)
	return v
}

// targetIntensity is the brightness step of a moving target above the
// background. It is kept well below the change-detection threshold
// contrast of the background texture so the handful of target pixels
// does not bias the registration (in real WAMI frames targets occupy a
// vanishing fraction of the scene; synthetic frames are small, so the
// intensity compensates for the relatively larger covered area).
const targetIntensity = 40

// targetAt reports target intensity contribution at integer pixel (x, y)
// of frame idx. Targets are 2x2 squares moving diagonally.
func (s *FrameSource) targetAt(x, y, idx int) float64 {
	for t := 0; t < s.Targets; t++ {
		tx := (17*t + 23 + 2*idx) % (s.N - 4)
		ty := (31*t + 11 + idx) % (s.N - 4)
		if x >= tx && x < tx+2 && y >= ty && y < ty+2 {
			return targetIntensity
		}
	}
	return 0
}

// Next produces the next Bayer mosaic frame (RGGB pattern).
func (s *FrameSource) Next() *Image {
	idx := s.frame
	s.frame++
	ox, oy := s.GroundTruthMotion(idx)
	out := NewImage(s.N)
	for y := 0; y < s.N; y++ {
		for x := 0; x < s.N; x++ {
			// The synthetic scene is achromatic (equal R/G/B), so the
			// RGGB mosaic samples the same luma field at every site;
			// demosaicing still exercises the full interpolation path
			// but introduces no checkerboard that would bias the
			// registration gradients.
			v := s.background(float64(x)+ox, float64(y)+oy) + s.targetAt(x, y, idx)
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out.Set(x, y, v)
		}
	}
	return out
}

// Reset rewinds the source to frame 0.
func (s *FrameSource) Reset() { s.frame = 0 }
