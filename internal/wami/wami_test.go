package wami

import (
	"testing"

	"presp/internal/accel"
	"presp/internal/fpga"
	"presp/internal/socgen"
)

func TestRegistryComplete(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Names()) != NumKernels {
		t.Fatalf("registry holds %d kernels, want %d", len(reg.Names()), NumKernels)
	}
	for idx := 1; idx <= NumKernels; idx++ {
		d, err := reg.Lookup(Names[idx])
		if err != nil {
			t.Fatalf("kernel %d: %v", idx, err)
		}
		if d.Kernel == nil {
			t.Errorf("%s: no functional model", d.Name)
		}
		if d.Resources[fpga.LUT] <= 0 {
			t.Errorf("%s: no LUT profile", d.Name)
		}
		if d.ActivePowerW <= 0 {
			t.Errorf("%s: no power model", d.Name)
		}
	}
}

func TestAddToComposesWithDefault(t *testing.T) {
	reg := accel.Default()
	if err := AddTo(reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.Names()) != 5+NumKernels {
		t.Fatalf("combined registry: %d names", len(reg.Names()))
	}
}

func TestIndexRoundtrip(t *testing.T) {
	for idx := 1; idx <= NumKernels; idx++ {
		got, err := Index(Names[idx])
		if err != nil {
			t.Fatal(err)
		}
		if got != idx {
			t.Fatalf("Index(%s) = %d, want %d", Names[idx], got, idx)
		}
	}
	if _, err := Index("warp-drive"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestLUTs(t *testing.T) {
	if _, err := LUTs(0); err == nil {
		t.Fatal("kernel 0 accepted")
	}
	l, err := LUTs(KSDUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if l != 34000 {
		t.Fatalf("sd-update LUTs: %d", l)
	}
}

func TestDataflowValid(t *testing.T) {
	if err := ValidateDataflow(); err != nil {
		t.Fatal(err)
	}
	n, err := NodeFor(KWarpImg)
	if err != nil {
		t.Fatal(err)
	}
	if !n.PerIteration {
		t.Fatal("warp-img should be in the LK loop")
	}
	if _, err := NodeFor(99); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

// TestFlowSoCsMatchPaperClasses: the WAMI flow SoCs must land on the
// exact metrics and classes Table IV reports.
func TestFlowSoCsMatchPaperClasses(t *testing.T) {
	reg, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		gamma float64
		accs  []int
	}{
		{"SoC_A", 1.26, []int{4, 8, 10, 9}},
		{"SoC_B", 0.60, []int{2, 3, 11, 1}},
		{"SoC_C", 0.97, []int{7, 11, 8, 2}},
		{"SoC_D", 2.40, []int{4, 5, 9, 2}},
	}
	for _, c := range cases {
		cfg, err := FlowSoC(c.name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := socgen.Elaborate(cfg, reg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		gamma := float64(d.ReconfigurableResources()[fpga.LUT]) / float64(d.StaticResources[fpga.LUT])
		if diff := gamma - c.gamma; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: γ=%.3f want %.2f", c.name, gamma, c.gamma)
		}
		// Verify the accelerator set matches the paper's indices.
		want := make(map[string]bool)
		for _, idx := range c.accs {
			want[Names[idx]] = true
		}
		count := 0
		for _, tl := range cfg.Tiles {
			if tl.AccelName != "" && want[tl.AccelName] {
				count++
			}
		}
		if c.name != "SoC_D" && count != 4 {
			t.Errorf("%s hosts %d of the expected accelerators", c.name, count)
		}
	}
	if _, err := FlowSoC("SoC_E"); err == nil {
		t.Fatal("unknown flow SoC accepted")
	}
}

// TestRuntimeSoCsMatchTableVI pins the Table VI allocations.
func TestRuntimeSoCsMatchTableVI(t *testing.T) {
	want := map[string]map[string][]int{
		"SoC_X": {
			"rt_1": {1, 4, 9, 10, 8},
			"rt_2": {2, 3, 6, 7, 11},
		},
		"SoC_Y": {
			"rt_1": {1, 3, 7, 12},
			"rt_2": {2, 6, 8},
			"rt_3": {4, 9, 10},
		},
		"SoC_Z": {
			"rt_1": {1, 6, 12},
			"rt_2": {2, 5, 11},
			"rt_3": {4, 10, 7},
			"rt_4": {3, 8, 9},
		},
	}
	for name, alloc := range want {
		cfg, got, err := RuntimeSoC(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.Tiles) != 3+len(alloc) {
			t.Errorf("%s: %d tiles", name, len(cfg.Tiles))
		}
		for tile, idxs := range alloc {
			g := got[tile]
			if len(g) != len(idxs) {
				t.Fatalf("%s/%s: %v", name, tile, g)
			}
			for i := range idxs {
				if g[i] != idxs[i] {
					t.Fatalf("%s/%s: got %v want %v", name, tile, g, idxs)
				}
			}
		}
	}
	if _, _, err := RuntimeSoC("SoC_W"); err == nil {
		t.Fatal("unknown runtime SoC accepted")
	}
}

func TestMissingKernels(t *testing.T) {
	_, allocX, err := RuntimeSoC("SoC_X")
	if err != nil {
		t.Fatal(err)
	}
	missing := MissingKernels(allocX)
	// SoC_X leaves subtract (5) and change-detection (12) to the CPU.
	if len(missing) != 2 || missing[0] != KSubtract || missing[1] != KChangeDetection {
		t.Fatalf("SoC_X missing kernels: %v", missing)
	}
	_, allocZ, err := RuntimeSoC("SoC_Z")
	if err != nil {
		t.Fatal(err)
	}
	if len(MissingKernels(allocZ)) != 0 {
		t.Fatal("SoC_Z should host every kernel")
	}
}

func TestTileFor(t *testing.T) {
	_, alloc, err := RuntimeSoC("SoC_Y")
	if err != nil {
		t.Fatal(err)
	}
	if TileFor(alloc, KSDUpdate) != "rt_2" {
		t.Fatalf("sd-update tile: %s", TileFor(alloc, KSDUpdate))
	}
	if TileFor(alloc, KSubtract) != "" {
		t.Fatal("unallocated kernel mapped to a tile")
	}
}

// TestRuntimeTilesSizedForLargestModule: each runtime tile's declared
// initial accelerator must be the largest of its set (it sizes the
// partition).
func TestRuntimeTilesSizedForLargestModule(t *testing.T) {
	for _, name := range RuntimeSoCNames() {
		cfg, alloc, err := RuntimeSoC(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tl := range cfg.Tiles {
			idxs, ok := alloc[tl.Name]
			if !ok {
				continue
			}
			declared, err := Index(tl.AccelName)
			if err != nil {
				t.Fatal(err)
			}
			for _, idx := range idxs {
				if lutProfile[idx] > lutProfile[declared] {
					t.Errorf("%s/%s: %s (%d LUTs) exceeds the declared %s (%d)",
						name, tl.Name, Names[idx], lutProfile[idx], tl.AccelName, lutProfile[declared])
				}
			}
		}
	}
}

func TestFrameSourceDeterministicWithGroundTruth(t *testing.T) {
	a, err := NewFrameSource(32, 0.5, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFrameSource(32, 0.5, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Next(), b.Next()
	for i := range fa.Pix {
		if fa.Pix[i] != fb.Pix[i] {
			t.Fatal("frame source not deterministic")
		}
	}
	gx, gy := a.GroundTruthMotion(4)
	if gx != 2.0 || gy != 1.0 {
		t.Fatalf("ground truth: (%g, %g)", gx, gy)
	}
	a.Reset()
	if a.FrameIndex() != 0 {
		t.Fatal("reset did not rewind")
	}
}

func TestFrameSourceValidation(t *testing.T) {
	if _, err := NewFrameSource(8, 0, 0, 0); err == nil {
		t.Fatal("tiny frames accepted")
	}
	if _, err := NewFrameSource(32, 0, 0, -1); err == nil {
		t.Fatal("negative target count accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	src, err := NewFrameSource(64, 0.7, -0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var detections int
	for i := 0; i < 6; i++ {
		res, err := p.Process(src.Next())
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i == 0 {
			continue
		}
		// Registration recovers the per-frame motion to sub-pixel
		// accuracy on the synthetic scene.
		if e := MotionError(res.Motion, 0.7, -0.4); e > 0.25 {
			t.Errorf("frame %d: registration error %.3f px", i, e)
		}
		detections += res.Detections
	}
	if detections == 0 {
		t.Fatal("moving targets never detected")
	}
	if p.FramesProcessed() != 6 {
		t.Fatalf("frames processed: %d", p.FramesProcessed())
	}
}

func TestPipelineValidation(t *testing.T) {
	bad := DefaultPipelineConfig()
	bad.LKIterations = 0
	if _, err := NewPipeline(bad); err == nil {
		t.Fatal("zero-iteration pipeline accepted")
	}
	bad = DefaultPipelineConfig()
	bad.CDAlpha = 0
	if _, err := NewPipeline(bad); err == nil {
		t.Fatal("zero-alpha pipeline accepted")
	}
}

// TestDetectionQuality scores the full software pipeline against the
// frame source's ground truth: the detector must find most of the
// target changes without flooding the mask.
func TestDetectionQuality(t *testing.T) {
	src, err := NewFrameSource(64, 0.7, -0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var agg DetectionQuality
	for i := 0; i < 6; i++ {
		res, err := p.Process(src.Next())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			continue
		}
		q, err := src.ScoreDetections(res.Mask, i)
		if err != nil {
			t.Fatal(err)
		}
		agg.TargetsDetected += q.TargetsDetected
		agg.TargetsTotal += q.TargetsTotal
		agg.TruePixels += q.TruePixels
		agg.FlaggedPixels += q.FlaggedPixels
	}
	if agg.Recall() < 0.5 {
		t.Errorf("object recall %.2f too low (%d of %d targets)", agg.Recall(), agg.TargetsDetected, agg.TargetsTotal)
	}
	if agg.Precision() < 0.6 {
		t.Errorf("pixel precision %.2f too low (%d of %d flagged)", agg.Precision(), agg.TruePixels, agg.FlaggedPixels)
	}
	if agg.F1() <= 0 {
		t.Error("zero F1")
	}
}

func TestScoreDetectionsValidation(t *testing.T) {
	src, err := NewFrameSource(32, 0.5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.ScoreDetections(NewImage(16), 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := src.ScoreDetections(NewImage(32), 0); err == nil {
		t.Fatal("frame 0 accepted")
	}
	// An empty mask on a frame with moving targets misses everything.
	q, err := src.ScoreDetections(NewImage(32), 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.TargetsTotal == 0 {
		t.Fatal("ground truth has no targets?")
	}
	if q.Recall() != 0 {
		t.Fatalf("empty mask recall: %g", q.Recall())
	}
	if q.Precision() != 1 {
		t.Fatalf("empty mask precision should be vacuous 1, got %g", q.Precision())
	}
}
