package wami

import (
	"fmt"

	"presp/internal/accel"
)

// kernelFor returns the accel.Kernel adapter for kernel index idx. The
// adapters present the flat-tensor interface the accelerator sockets
// expose (images travel as row-major n×n slices over the DMA planes).
func kernelFor(idx int) accel.Kernel {
	return wamiKernel{idx: idx}
}

type wamiKernel struct {
	idx int
}

// Name implements accel.Kernel.
func (k wamiKernel) Name() string { return Names[k.idx] }

// Run implements accel.Kernel by dispatching to the functional kernels.
func (k wamiKernel) Run(in [][]float64) ([][]float64, error) {
	switch k.idx {
	case KDebayer:
		im, err := oneImage(k, in)
		if err != nil {
			return nil, err
		}
		r, g, b := Debayer(im)
		return [][]float64{r.Pix, g.Pix, b.Pix}, nil

	case KGrayscale:
		if len(in) != 3 {
			return nil, fmt.Errorf("wami: grayscale wants r,g,b inputs, got %d", len(in))
		}
		r, err := imageFrom(in[0])
		if err != nil {
			return nil, err
		}
		g, err := imageFrom(in[1])
		if err != nil {
			return nil, err
		}
		b, err := imageFrom(in[2])
		if err != nil {
			return nil, err
		}
		if g.N != r.N || b.N != r.N {
			return nil, fmt.Errorf("wami: grayscale plane sizes differ")
		}
		return [][]float64{Grayscale(r, g, b).Pix}, nil

	case KGradient:
		im, err := oneImage(k, in)
		if err != nil {
			return nil, err
		}
		gx, gy := Gradient(im)
		return [][]float64{gx.Pix, gy.Pix}, nil

	case KWarpImg:
		if len(in) != 2 || len(in[1]) != 6 {
			return nil, fmt.Errorf("wami: warp-img wants image + 6 params")
		}
		im, err := imageFrom(in[0])
		if err != nil {
			return nil, err
		}
		var p Affine
		copy(p[:], in[1])
		return [][]float64{Warp(im, p).Pix}, nil

	case KSubtract:
		if len(in) != 2 || len(in[0]) != len(in[1]) {
			return nil, fmt.Errorf("wami: subtract wants two equal images")
		}
		a, err := imageFrom(in[0])
		if err != nil {
			return nil, err
		}
		b, err := imageFrom(in[1])
		if err != nil {
			return nil, err
		}
		return [][]float64{Subtract(a, b).Pix}, nil

	case KSteepestDescent:
		if len(in) != 2 || len(in[0]) != len(in[1]) {
			return nil, fmt.Errorf("wami: steepest-descent wants gx, gy")
		}
		gx, err := imageFrom(in[0])
		if err != nil {
			return nil, err
		}
		gy, err := imageFrom(in[1])
		if err != nil {
			return nil, err
		}
		sd := SteepestDescent(gx, gy)
		out := make([][]float64, 6)
		for i := range sd {
			out[i] = sd[i].Pix
		}
		return out, nil

	case KHessian:
		sd, err := sixPlanes(k, in)
		if err != nil {
			return nil, err
		}
		h := Hessian(sd)
		return [][]float64{h[:]}, nil

	case KSDUpdate:
		if len(in) != 7 {
			return nil, fmt.Errorf("wami: sd-update wants 6 sd planes + error image, got %d", len(in))
		}
		sd, err := sixPlanes(k, in[:6])
		if err != nil {
			return nil, err
		}
		errImg, err := imageFrom(in[6])
		if err != nil {
			return nil, err
		}
		sdu := SDUpdate(sd, errImg)
		out := make([][]float64, 6)
		for i := range sdu {
			out[i] = sdu[i].Pix
		}
		return out, nil

	case KMatrixInvert:
		if len(in) != 1 || len(in[0]) != 36 {
			return nil, fmt.Errorf("wami: matrix-invert wants one 6x6 matrix")
		}
		var m [36]float64
		copy(m[:], in[0])
		inv, err := MatrixInvert(m)
		if err != nil {
			return nil, err
		}
		return [][]float64{inv[:]}, nil

	case KMult:
		if len(in) != 7 || len(in[0]) != 36 {
			return nil, fmt.Errorf("wami: mult wants H⁻¹ + 6 sd-update planes")
		}
		var hinv [36]float64
		copy(hinv[:], in[0])
		sdu, err := sixPlanes(k, in[1:])
		if err != nil {
			return nil, err
		}
		dp := Mult(hinv, sdu)
		return [][]float64{dp[:]}, nil

	case KReshapeAdd:
		if len(in) != 2 || len(in[0]) != 6 || len(in[1]) != 6 {
			return nil, fmt.Errorf("wami: reshape-add wants p and Δp (6 each)")
		}
		var p, dp Affine
		copy(p[:], in[0])
		copy(dp[:], in[1])
		np, err := ReshapeAdd(p, dp)
		if err != nil {
			return nil, err
		}
		return [][]float64{np[:]}, nil

	case KChangeDetection:
		if len(in) != 3 || len(in[2]) != 2 {
			return nil, fmt.Errorf("wami: change-detection wants frame, background, [thresh alpha]")
		}
		frame, err := imageFrom(in[0])
		if err != nil {
			return nil, err
		}
		bg, err := imageFrom(in[1])
		if err != nil {
			return nil, err
		}
		if frame.N != bg.N {
			return nil, fmt.Errorf("wami: change-detection frame/background size mismatch")
		}
		mask, newBg := ChangeDetection(frame, bg, in[2][0], in[2][1])
		return [][]float64{mask.Pix, newBg.Pix}, nil
	}
	return nil, fmt.Errorf("wami: unknown kernel index %d", k.idx)
}

func oneImage(k wamiKernel, in [][]float64) (*Image, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("wami: %s wants one image, got %d inputs", Names[k.idx], len(in))
	}
	return imageFrom(in[0])
}

func sixPlanes(k wamiKernel, in [][]float64) ([6]*Image, error) {
	var sd [6]*Image
	if len(in) != 6 {
		return sd, fmt.Errorf("wami: %s wants 6 planes, got %d", Names[k.idx], len(in))
	}
	for i := range sd {
		im, err := imageFrom(in[i])
		if err != nil {
			return sd, err
		}
		if i > 0 && im.N != sd[0].N {
			return sd, fmt.Errorf("wami: %s plane %d size differs", Names[k.idx], i)
		}
		sd[i] = im
	}
	return sd, nil
}
