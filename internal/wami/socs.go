package wami

import (
	"fmt"

	"presp/internal/noc"
	"presp/internal/socgen"
	"presp/internal/tile"
)

// The WAMI evaluation SoCs of Section VI.
//
// SoC_A..SoC_D (Table IV) carry four WAMI accelerators each, composed so
// the LUT profile lands in classes 1.2, 1.1, 1.3 and 2.1; SoC_D
// additionally moves the CPU tile into the reconfigurable part.
//
// SoC_X/Y/Z (Table VI) are the runtime-evaluation systems with two,
// three and four reconfigurable tiles; every tile hosts several
// accelerators swapped by the reconfiguration manager at run time.

// flowSoCAccs maps the Table IV SoCs to their accelerator index sets.
var flowSoCAccs = map[string][]int{
	"SoC_A": {KWarpImg, KSDUpdate, KMult, KMatrixInvert},      // {4, 8, 10, 9}, class 1.2
	"SoC_B": {KGrayscale, KGradient, KReshapeAdd, KDebayer},   // {2, 3, 11, 1}, class 1.1
	"SoC_C": {KHessian, KReshapeAdd, KSDUpdate, KGrayscale},   // {7, 11, 8, 2}, class 1.3
	"SoC_D": {KWarpImg, KSubtract, KMatrixInvert, KGrayscale}, // {4, 5, 9, 2}, class 2.1
}

// FlowSoCNames lists the Table IV SoCs in order.
func FlowSoCNames() []string { return []string{"SoC_A", "SoC_B", "SoC_C", "SoC_D"} }

// FlowSoC builds the Table IV SoC with the given name.
func FlowSoC(name string) (*socgen.Config, error) {
	accs, ok := flowSoCAccs[name]
	if !ok {
		return nil, fmt.Errorf("wami: unknown flow SoC %q (want SoC_A..SoC_D)", name)
	}
	c := &socgen.Config{Name: name, Board: "VC707", Cols: 3, Rows: 3, FreqHz: 78e6}
	reconfCPU := name == "SoC_D"
	if reconfCPU {
		c.Tiles = append(c.Tiles, tile.Tile{
			Name: "rt_cpu", Kind: tile.Reconf, Core: tile.Leon3, ReconfCPU: true,
			Pos: noc.Coord{X: 0, Y: 0},
		})
	} else {
		c.Tiles = append(c.Tiles, tile.Tile{Name: "cpu0", Kind: tile.CPU, Core: tile.Leon3, Pos: noc.Coord{X: 0, Y: 0}})
	}
	c.Tiles = append(c.Tiles,
		tile.Tile{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
		tile.Tile{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
	)
	pos := []noc.Coord{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 0, Y: 2}}
	for i, idx := range accs {
		c.Tiles = append(c.Tiles, tile.Tile{
			Name:      fmt.Sprintf("rt_%d", i+1),
			Kind:      tile.Reconf,
			AccelName: Names[idx],
			Pos:       pos[i],
		})
	}
	return c, nil
}

// Allocation maps each reconfigurable tile of a runtime SoC to the
// ordered accelerator indices it hosts over a frame (Table VI).
type Allocation map[string][]int

// runtimeAllocs reproduces Table VI.
var runtimeAllocs = map[string]Allocation{
	"SoC_X": {
		"rt_1": {KDebayer, KWarpImg, KMatrixInvert, KMult, KSDUpdate},            // {1, 4, 9, 10, 8}
		"rt_2": {KGrayscale, KGradient, KSteepestDescent, KHessian, KReshapeAdd}, // {2, 3, 6, 7, 11}
	},
	"SoC_Y": {
		"rt_1": {KDebayer, KGradient, KHessian, KChangeDetection}, // {1, 3, 7, 12}
		"rt_2": {KGrayscale, KSteepestDescent, KSDUpdate},         // {2, 6, 8}
		"rt_3": {KWarpImg, KMatrixInvert, KMult},                  // {4, 9, 10}
	},
	"SoC_Z": {
		"rt_1": {KDebayer, KSteepestDescent, KChangeDetection}, // {1, 6, 12}
		"rt_2": {KGrayscale, KSubtract, KReshapeAdd},           // {2, 5, 11}
		"rt_3": {KWarpImg, KMult, KHessian},                    // {4, 10, 7}
		"rt_4": {KGradient, KSDUpdate, KMatrixInvert},          // {3, 8, 9}
	},
}

// RuntimeSoCNames lists the Table VI SoCs in order.
func RuntimeSoCNames() []string { return []string{"SoC_X", "SoC_Y", "SoC_Z"} }

// RuntimeSoC builds the named runtime-evaluation SoC and returns its
// configuration together with the Table VI accelerator allocation.
// Kernels absent from the allocation (e.g. Subtract and Change-Detection
// on SoC_X) fall back to software on the CPU tile at run time.
func RuntimeSoC(name string) (*socgen.Config, Allocation, error) {
	alloc, ok := runtimeAllocs[name]
	if !ok {
		return nil, nil, fmt.Errorf("wami: unknown runtime SoC %q (want SoC_X/SoC_Y/SoC_Z)", name)
	}
	nRT := len(alloc)
	c := &socgen.Config{Name: name, Board: "VC707", Cols: 3, Rows: 3, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Core: tile.Leon3, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
		},
	}
	pos := []noc.Coord{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 0, Y: 2}}
	for i := 1; i <= nRT; i++ {
		tname := fmt.Sprintf("rt_%d", i)
		accs, ok := alloc[tname]
		if !ok || len(accs) == 0 {
			return nil, nil, fmt.Errorf("wami: %s: allocation missing tile %s", name, tname)
		}
		c.Tiles = append(c.Tiles, tile.Tile{
			Name:      tname,
			Kind:      tile.Reconf,
			AccelName: Names[largestOf(accs)],
			Pos:       pos[i-1],
		})
	}
	return c, alloc, nil
}

// largestOf returns the accelerator index with the largest LUT profile —
// the module that sizes the tile's partition.
func largestOf(accs []int) int {
	best := accs[0]
	for _, a := range accs[1:] {
		if lutProfile[a] > lutProfile[best] {
			best = a
		}
	}
	return best
}

// MissingKernels returns the Fig 3 kernels absent from an allocation
// (these run in software on the CPU at run time).
func MissingKernels(alloc Allocation) []int {
	present := make(map[int]bool)
	for _, accs := range alloc {
		for _, a := range accs {
			present[a] = true
		}
	}
	var out []int
	for idx := 1; idx <= NumKernels; idx++ {
		if !present[idx] {
			out = append(out, idx)
		}
	}
	return out
}

// TileFor returns the tile hosting kernel idx under alloc, or "" when
// the kernel is unallocated.
func TileFor(alloc Allocation, idx int) string {
	for t, accs := range alloc {
		for _, a := range accs {
			if a == idx {
				return t
			}
		}
	}
	return ""
}
