// Package sim provides the discrete-event simulation engine and the
// energy accounting used by the PR-ESP runtime evaluation: a virtual
// clock, an event queue, and power meters that integrate per-component
// power over virtual time to produce Joules-per-frame figures.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is virtual simulation time. It uses time.Duration semantics so
// conversions to seconds/minutes are explicit and readable.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker preserving schedule order at equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete event simulator. It is not safe
// for concurrent use; the runtime layer serializes access.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule queues fn to run after delay. Negative delays are an error.
func (e *Engine) Schedule(delay Time, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("sim: negative delay %v", delay)
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + delay, seq: e.seq, fn: fn})
	return nil
}

// At queues fn to run at absolute time t (>= now).
func (e *Engine) At(t Time, fn func()) error {
	if t < e.now {
		return fmt.Errorf("sim: time %v already passed (now %v)", t, e.now)
	}
	return e.Schedule(t-e.now, fn)
}

// Step runs the next pending event and returns false when none remain.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains or the clock passes until
// (until <= 0 means run to completion). It returns the number of events
// executed.
func (e *Engine) Run(until Time) int {
	n := 0
	for e.events.Len() > 0 {
		if until > 0 && e.events[0].at > until {
			e.now = until
			return n
		}
		e.Step()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// Clock converts a cycle count at freq (Hz) to virtual time.
func Clock(cycles int64, freqHz float64) Time {
	if freqHz <= 0 || cycles <= 0 {
		return 0
	}
	sec := float64(cycles) / freqHz
	return Time(math.Round(sec * float64(time.Second)))
}

// Cycles converts virtual time to cycles at freq (Hz), rounding up.
func Cycles(t Time, freqHz float64) int64 {
	if t <= 0 || freqHz <= 0 {
		return 0
	}
	return int64(math.Ceil(t.Seconds() * freqHz))
}
