package sim

import (
	"fmt"
	"sort"
)

// PowerMeter integrates power over virtual time per named consumer. A
// consumer contributes energy only between SetPower calls; static power
// is modelled as a consumer whose power never drops to zero.
type PowerMeter struct {
	eng       *Engine
	consumers map[string]*consumer
}

type consumer struct {
	powerW float64
	since  Time
	joules float64
	peakW  float64
	busy   Time // accumulated time at non-zero power
}

// NewPowerMeter returns a meter bound to the engine's clock.
func NewPowerMeter(eng *Engine) *PowerMeter {
	return &PowerMeter{eng: eng, consumers: make(map[string]*consumer)}
}

// SetPower sets the instantaneous power draw of name, accumulating the
// energy consumed at the previous level first.
func (m *PowerMeter) SetPower(name string, watts float64) error {
	if watts < 0 {
		return fmt.Errorf("sim: negative power %g for %s", watts, name)
	}
	now := m.eng.Now()
	c, ok := m.consumers[name]
	if !ok {
		c = &consumer{since: now}
		m.consumers[name] = c
	}
	m.settle(c, now)
	c.powerW = watts
	if watts > c.peakW {
		c.peakW = watts
	}
	return nil
}

func (m *PowerMeter) settle(c *consumer, now Time) {
	if now > c.since {
		dt := (now - c.since).Seconds()
		c.joules += c.powerW * dt
		if c.powerW > 0 {
			c.busy += now - c.since
		}
	}
	c.since = now
}

// AddEnergy injects a discrete energy quantum for name (events whose
// energy is known directly, like configuring a bitstream byte, rather
// than integrated from a power level).
func (m *PowerMeter) AddEnergy(name string, joules float64) error {
	if joules < 0 {
		return fmt.Errorf("sim: negative energy %g for %s", joules, name)
	}
	now := m.eng.Now()
	c, ok := m.consumers[name]
	if !ok {
		c = &consumer{since: now}
		m.consumers[name] = c
	}
	m.settle(c, now)
	c.joules += joules
	return nil
}

// Energy returns the accumulated energy of name in Joules up to now.
func (m *PowerMeter) Energy(name string) float64 {
	c, ok := m.consumers[name]
	if !ok {
		return 0
	}
	m.settle(c, m.eng.Now())
	return c.joules
}

// TotalEnergy returns the energy summed over all consumers, in Joules.
// The fold runs in sorted name order: float addition is not
// associative, and a map-order sum differs in the last bits between
// otherwise identical runs.
func (m *PowerMeter) TotalEnergy() float64 {
	var sum float64
	for _, name := range m.Consumers() {
		sum += m.Energy(name)
	}
	return sum
}

// Power returns the instantaneous power level of name in Watts — what
// the recovery tests assert returns to baseline after a failure.
func (m *PowerMeter) Power(name string) float64 {
	c, ok := m.consumers[name]
	if !ok {
		return 0
	}
	return c.powerW
}

// BusyTime returns how long name has drawn non-zero power.
func (m *PowerMeter) BusyTime(name string) Time {
	c, ok := m.consumers[name]
	if !ok {
		return 0
	}
	m.settle(c, m.eng.Now())
	return c.busy
}

// Consumers lists consumer names sorted.
func (m *PowerMeter) Consumers() []string {
	out := make([]string, 0, len(m.consumers))
	for n := range m.consumers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Breakdown returns per-consumer energy in Joules, keyed by name.
func (m *PowerMeter) Breakdown() map[string]float64 {
	out := make(map[string]float64, len(m.consumers))
	for n := range m.consumers {
		out[n] = m.Energy(n)
	}
	return out
}
