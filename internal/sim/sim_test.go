package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	must(t, e.Schedule(30*time.Millisecond, func() { order = append(order, 3) }))
	must(t, e.Schedule(10*time.Millisecond, func() { order = append(order, 1) }))
	must(t, e.Schedule(20*time.Millisecond, func() { order = append(order, 2) }))
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v, want 30ms", e.Now())
	}
}

func TestEngineStableOrderAtEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		must(t, e.Schedule(time.Millisecond, func() { order = append(order, i) }))
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	must(t, e.Schedule(time.Millisecond, func() { fired++ }))
	must(t, e.Schedule(time.Hour, func() { fired++ }))
	n := e.Run(time.Second)
	if n != 1 || fired != 1 {
		t.Fatalf("Run(1s) executed %d events, fired %d", n, fired)
	}
	if e.Now() != time.Second {
		t.Fatalf("clock should advance to the horizon, at %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending: got %d want 1", e.Pending())
	}
}

func TestEngineCascade(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 5 {
			depth++
			must(t, e.Schedule(time.Millisecond, recurse))
		}
	}
	must(t, e.Schedule(0, recurse))
	e.Run(0)
	if depth != 5 {
		t.Fatalf("cascade depth: got %d want 5", depth)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("clock at %v", e.Now())
	}
}

func TestScheduleRejectsNegative(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(-time.Second, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestAtRejectsPast(t *testing.T) {
	e := NewEngine()
	must(t, e.Schedule(time.Second, func() {}))
	e.Run(0)
	if err := e.At(time.Millisecond, func() {}); err == nil {
		t.Fatal("past absolute time accepted")
	}
	if err := e.At(2*time.Second, func() {}); err != nil {
		t.Fatalf("future absolute time rejected: %v", err)
	}
}

func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			if err := e.Schedule(Time(d)*time.Microsecond, func() {
				fired = append(fired, e.Now())
			}); err != nil {
				return false
			}
		}
		e.Run(0)
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockCyclesRoundtrip(t *testing.T) {
	if Clock(78, 78e6) != time.Microsecond {
		t.Fatalf("78 cycles @ 78 MHz: got %v want 1µs", Clock(78, 78e6))
	}
	if Clock(0, 78e6) != 0 || Clock(10, 0) != 0 {
		t.Fatal("degenerate Clock inputs should be zero")
	}
	if got := Cycles(time.Microsecond, 78e6); got != 78 {
		t.Fatalf("Cycles(1µs): got %d want 78", got)
	}
	if Cycles(0, 1e6) != 0 {
		t.Fatal("zero time should be zero cycles")
	}
}

func TestPowerMeterIntegration(t *testing.T) {
	e := NewEngine()
	m := NewPowerMeter(e)
	must(t, m.SetPower("x", 2.0))
	must(t, e.Schedule(time.Second, func() {
		if err := m.SetPower("x", 0); err != nil {
			t.Error(err)
		}
	}))
	must(t, e.Schedule(2*time.Second, func() {}))
	e.Run(0)
	if got := m.Energy("x"); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("energy: got %g want 2.0 J", got)
	}
	if got := m.BusyTime("x"); got != time.Second {
		t.Fatalf("busy time: got %v want 1s", got)
	}
}

func TestPowerMeterMultipleConsumers(t *testing.T) {
	e := NewEngine()
	m := NewPowerMeter(e)
	must(t, m.SetPower("a", 1.0))
	must(t, m.SetPower("b", 3.0))
	must(t, e.Schedule(time.Second, func() {}))
	e.Run(0)
	if got := m.TotalEnergy(); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("total energy: got %g want 4.0", got)
	}
	bd := m.Breakdown()
	if math.Abs(bd["a"]-1.0) > 1e-9 || math.Abs(bd["b"]-3.0) > 1e-9 {
		t.Fatalf("breakdown wrong: %v", bd)
	}
	names := m.Consumers()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("consumers: %v", names)
	}
}

func TestPowerMeterAddEnergy(t *testing.T) {
	e := NewEngine()
	m := NewPowerMeter(e)
	must(t, m.AddEnergy("cfg", 0.5))
	must(t, m.AddEnergy("cfg", 0.25))
	if got := m.Energy("cfg"); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("injected energy: got %g want 0.75", got)
	}
	if err := m.AddEnergy("cfg", -1); err == nil {
		t.Fatal("negative energy accepted")
	}
}

func TestPowerMeterRejectsNegativePower(t *testing.T) {
	m := NewPowerMeter(NewEngine())
	if err := m.SetPower("x", -1); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestPowerMeterEnergyConservationProperty(t *testing.T) {
	// For any sequence of power levels held for 1ms each, the energy is
	// the sum of level×dt — and never negative.
	f := func(levels []uint8) bool {
		e := NewEngine()
		m := NewPowerMeter(e)
		var want float64
		for i, l := range levels {
			l := float64(l) / 10
			if err := e.At(Time(i)*time.Millisecond, func() {
				if err := m.SetPower("x", l); err != nil {
					panic(err)
				}
			}); err != nil {
				return false
			}
			want += l * 0.001
		}
		if err := e.At(Time(len(levels))*time.Millisecond, func() {}); err != nil {
			return false
		}
		e.Run(0)
		got := m.Energy("x")
		return got >= 0 && math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
