package reconfig

import (
	"fmt"

	"presp/internal/sim"
)

// Baremetal is the no-OS driver interface of Section V: the same DFXC
// and ICAP hardware path as the Linux runtime manager, but without the
// kernel's workqueue, locks or driver registry. A baremetal application
// is single-threaded: it triggers one reconfiguration or invocation at
// a time and polls for completion. Requests issued while the PRC is
// busy are rejected (there is no queue to park them in), which is
// exactly the discipline the baremetal driver documents.
type Baremetal struct {
	rt *Runtime
}

// NewBaremetal wraps a runtime with the baremetal driver discipline.
func NewBaremetal(rt *Runtime) (*Baremetal, error) {
	if rt == nil {
		return nil, fmt.Errorf("reconfig: nil runtime")
	}
	return &Baremetal{rt: rt}, nil
}

// Reconfigure triggers one partial reconfiguration and polls (in
// virtual time) until the PRC signals completion. It fails immediately
// when the PRC is already busy.
func (b *Baremetal) Reconfigure(tileName, accName string) error {
	ts, err := b.rt.tile(tileName)
	if err != nil {
		return err
	}
	if b.rt.prcBusy {
		return fmt.Errorf("reconfig: baremetal driver: PRC busy (no workqueue to park the request)")
	}
	if ts.busy {
		return fmt.Errorf("reconfig: baremetal driver: tile %s still executing", tileName)
	}
	var done bool
	var rerr error
	b.rt.RequestReconfig(tileName, accName, func(err error) {
		done, rerr = true, err
	})
	// Poll: advance virtual time until the completion interrupt.
	for !done && b.rt.eng.Step() {
	}
	if !done {
		return fmt.Errorf("reconfig: baremetal reconfiguration of %s never completed", tileName)
	}
	return rerr
}

// Invoke runs an accelerator synchronously: it configures, starts and
// polls the accelerator's done register until completion. The tile must
// already hold the accelerator (baremetal applications reconfigure
// explicitly; there is no demand swapping).
func (b *Baremetal) Invoke(tileName, accName string, in [][]float64) (*InvokeResult, error) {
	ts, err := b.rt.tile(tileName)
	if err != nil {
		return nil, err
	}
	if ts.loaded != accName {
		return nil, fmt.Errorf("reconfig: baremetal driver: tile %s holds %q, reconfigure to %q first",
			tileName, ts.loaded, accName)
	}
	var res *InvokeResult
	var rerr error
	done := false
	b.rt.InvokeOn(tileName, accName, in, func(r *InvokeResult, err error) {
		res, rerr, done = r, err, true
	})
	for !done && b.rt.eng.Step() {
	}
	if !done {
		return nil, fmt.Errorf("reconfig: baremetal invocation on %s never completed", tileName)
	}
	return res, rerr
}

// Now exposes the virtual clock (baremetal applications time themselves
// against the hardware timer).
func (b *Baremetal) Now() sim.Time { return b.rt.eng.Now() }

// Loaded reports the accelerator currently configured in the tile.
func (b *Baremetal) Loaded(tileName string) (string, error) {
	return b.rt.Loaded(tileName)
}
