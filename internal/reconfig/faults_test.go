package reconfig

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"presp/internal/accel"
	"presp/internal/faultinject"
	"presp/internal/flow"
	"presp/internal/noc"
	"presp/internal/sim"
	"presp/internal/socgen"
	"presp/internal/tile"
)

// newFaultTestbed boots the standard 2x2 testbed with an explicit
// runtime configuration (the fault tests vary retries, thresholds and
// the fault plan) and an optional worker bound for bitstream
// generation.
func newFaultTestbed(t *testing.T, cfg Config, workers int) *testbed {
	t.Helper()
	reg := accel.Default()
	scfg := &socgen.Config{
		Name: "tb", Board: "VC707", Cols: 2, Rows: 2, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "rt_1", Kind: tile.Reconf, AccelName: "fft", Pos: noc.Coord{X: 1, Y: 1}},
		},
	}
	d, err := socgen.Elaborate(scfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := flow.FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	rt, err := New(eng, d, reg, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, map[string][]string{
		"rt_1": {"fft", "gemm", "sort"},
	}, reg, true, workers)
	if err != nil {
		t.Fatal(err)
	}
	for acc, bs := range bss["rt_1"] {
		if err := rt.RegisterBitstream("rt_1", acc, bs); err != nil {
			t.Fatal(err)
		}
	}
	return &testbed{eng: eng, rt: rt, reg: reg, plan: plan}
}

func faultCfg(plan *faultinject.Plan, retries, deadAt int) Config {
	cfg := DefaultConfig()
	cfg.FaultPlan = plan
	cfg.MaxReconfigRetries = retries
	cfg.TileDeadThreshold = deadAt
	return cfg
}

// assertTileClean asserts the full set of post-recovery invariants the
// issue names: queues re-coupled, no residual PRC power, no stuck
// swap-in-progress state.
func assertTileClean(t *testing.T, tb *testbed) {
	t.Helper()
	pos := noc.Coord{X: 1, Y: 1}
	if tb.rt.Network().Decoupled(pos) {
		t.Fatal("tile left decoupled after failure")
	}
	if w := tb.rt.Meter().Power("prc"); w != 0 {
		t.Fatalf("residual PRC power after failure: %g W", w)
	}
	ts := tb.rt.tiles["rt_1"]
	if ts.reconfig || ts.pending != "" {
		t.Fatalf("stuck swap state: reconfig=%v pending=%q", ts.reconfig, ts.pending)
	}
	if tb.rt.prcBusy && len(tb.rt.workqueue) == 0 {
		t.Fatal("PRC wedged busy with an empty workqueue")
	}
}

// TestTransferFailureRecovery is the regression test for the original
// bug: a failed DMA fetch after a successful decouple must not leave
// the tile gated or the PRC rail powered, and the tile must remain
// usable.
func TestTransferFailureRecovery(t *testing.T) {
	// Persistent DMA-plane fault, no retries: the first swap fails hard.
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpTransfer, Site: "dma", Count: 1},
	}}
	tb := newFaultTestbed(t, faultCfg(plan, 0, 0), 0)

	var gotErr error
	tb.rt.RequestReconfig("rt_1", "gemm", func(err error) { gotErr = err })
	tb.drain()
	if gotErr == nil {
		t.Fatal("faulted swap reported success")
	}
	if _, ok := faultinject.As(gotErr); !ok {
		t.Fatalf("expected injected fault, got %v", gotErr)
	}
	assertTileClean(t, tb)
	st := tb.rt.Stats()
	if st.FailedReconfigs != 1 || st.Reconfigurations != 0 || st.Retries != 0 {
		t.Fatalf("stats after failure: %+v", st)
	}

	// The failure is observable in the timeline.
	tl := tb.rt.Timeline()
	if len(tl) != 1 || !tl[0].Failed || tl[0].Err == "" || tl[0].Attempts != 1 {
		t.Fatalf("failure not recorded: %+v", tl)
	}

	// The fault was one-shot: the same tile reconfigures and computes.
	if err := reconfigureSync(tb, "rt_1", "gemm"); err != nil {
		t.Fatalf("tile unusable after recovery: %v", err)
	}
	var res *InvokeResult
	tb.rt.InvokeOn("rt_1", "sort", [][]float64{{3, 1, 2}}, func(r *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
		res = r
	})
	tb.drain()
	if res == nil || res.OnCPU {
		t.Fatalf("post-recovery invocation wrong: %+v", res)
	}
	if res.Out[0][0] != 1 || res.Out[0][2] != 3 {
		t.Fatalf("post-recovery output: %v", res.Out[0])
	}
}

func reconfigureSync(tb *testbed, tileName, accName string) error {
	var rerr error
	done := false
	tb.rt.RequestReconfig(tileName, accName, func(err error) { rerr, done = err, true })
	tb.drain()
	if !done {
		return fmt.Errorf("reconfiguration never completed")
	}
	return rerr
}

// TestTransientICAPFaultRetries: a one-shot ICAP fault is absorbed by
// the retry policy; the caller never sees it.
func TestTransientICAPFaultRetries(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpICAP, Site: "rt_1", Count: 1},
	}}
	tb := newFaultTestbed(t, faultCfg(plan, 2, 3), 0)
	if err := reconfigureSync(tb, "rt_1", "gemm"); err != nil {
		t.Fatalf("transient fault escaped the retry policy: %v", err)
	}
	st := tb.rt.Stats()
	if st.Retries != 1 || st.Reconfigurations != 1 || st.FailedReconfigs != 0 {
		t.Fatalf("stats: %+v", st)
	}
	tl := tb.rt.Timeline()
	if len(tl) != 1 || tl[0].Failed || tl[0].Attempts != 2 {
		t.Fatalf("timeline should show one success in two attempts: %+v", tl)
	}
	assertTileClean(t, tb)
	if loaded, _ := tb.rt.Loaded("rt_1"); loaded != "gemm" {
		t.Fatalf("loaded after retry: %q", loaded)
	}
}

// TestCRCCorruptionRetries: an injected fetch corruption is caught by
// the bitstream CRC verification and retried like any transient fault.
func TestCRCCorruptionRetries(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpFetchCRC, Site: "rt_1", Count: 1},
	}}
	tb := newFaultTestbed(t, faultCfg(plan, 1, 0), 0)
	if err := reconfigureSync(tb, "rt_1", "gemm"); err != nil {
		t.Fatalf("corrupted fetch not retried: %v", err)
	}
	if st := tb.rt.Stats(); st.Retries != 1 || st.Reconfigurations != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Without retries the CRC error surfaces to the caller.
	plan2 := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpFetchCRC, Site: "rt_1", Count: 1},
	}}
	tb2 := newFaultTestbed(t, faultCfg(plan2, 0, 0), 0)
	err := reconfigureSync(tb2, "rt_1", "gemm")
	if err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("expected CRC mismatch, got %v", err)
	}
	assertTileClean(t, tb2)
}

// TestDecoupleAndRecoupleFaults: faults on both decoupler edges are
// recovered; a stuck disengage is force-reset, never wedging the tile.
func TestDecoupleAndRecoupleFaults(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpDecouple, Site: "rt_1", Count: 1},
		{Op: faultinject.OpRecouple, Site: "rt_1", After: 0, Count: 1},
	}}
	tb := newFaultTestbed(t, faultCfg(plan, 3, 0), 0)
	if err := reconfigureSync(tb, "rt_1", "gemm"); err != nil {
		t.Fatalf("decoupler faults not absorbed: %v", err)
	}
	// Attempt 1 dies at decouple, attempt 2 dies at the stuck
	// disengage (after the ICAP programmed!), attempt 3 succeeds.
	if st := tb.rt.Stats(); st.Retries != 2 || st.Reconfigurations != 1 {
		t.Fatalf("stats: %+v", st)
	}
	assertTileClean(t, tb)
}

// TestPersistentFaultKillsTileAndDegradesToCPU: the acceptance
// scenario — a persistent tile fault exhausts retries repeatedly, the
// manager declares the tile dead, and the workload completes on the
// processor with the tile re-coupled and no residual power.
func TestPersistentFaultKillsTileAndDegradesToCPU(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpICAP, Site: "rt_1", Count: -1},
	}}
	tb := newFaultTestbed(t, faultCfg(plan, 1, 2), 0)

	// Two failed demand swaps cross the dead threshold.
	for i := 0; i < 2; i++ {
		if err := reconfigureSync(tb, "rt_1", "gemm"); err == nil {
			t.Fatalf("swap %d against a persistent fault succeeded", i)
		}
	}
	dead, err := tb.rt.Dead("rt_1")
	if err != nil || !dead {
		t.Fatalf("tile not declared dead: dead=%v err=%v", dead, err)
	}
	st := tb.rt.Stats()
	if st.FailedReconfigs != 2 || st.DeadTiles != 1 || st.Retries != 2 {
		t.Fatalf("stats: %+v", st)
	}
	assertTileClean(t, tb)

	// Requests against the dead tile fail fast with a typed error...
	rerr := reconfigureSync(tb, "rt_1", "sort")
	var dt *ErrTileDead
	if !errors.As(rerr, &dt) || dt.Tile != "rt_1" {
		t.Fatalf("expected ErrTileDead, got %v", rerr)
	}
	// ...but invocations gracefully degrade to the CPU and still
	// compute the right answer.
	var res *InvokeResult
	tb.rt.InvokeOn("rt_1", "sort", [][]float64{{9, 4, 7, 1}}, func(r *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
		res = r
	})
	tb.drain()
	if res == nil || !res.OnCPU {
		t.Fatalf("dead tile did not degrade to CPU: %+v", res)
	}
	if res.Out[0][0] != 1 || res.Out[0][3] != 9 {
		t.Fatalf("CPU fallback output: %v", res.Out[0])
	}
	if tb.rt.Stats().CPUFallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", tb.rt.Stats())
	}
	assertTileClean(t, tb)
}

// TestInvokeDegradesWhenSwapKillsTile: the tile dies during the very
// swap an invocation demanded; the invocation still completes, on the
// processor.
func TestInvokeDegradesWhenSwapKillsTile(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpICAP, Site: "rt_1", Count: -1},
	}}
	tb := newFaultTestbed(t, faultCfg(plan, 0, 1), 0)
	var res *InvokeResult
	tb.rt.InvokeOn("rt_1", "gemm", [][]float64{{1, 0, 0, 1}, {5, 6, 7, 8}}, func(r *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
		res = r
	})
	tb.drain()
	if res == nil || !res.OnCPU {
		t.Fatalf("invocation did not degrade: %+v", res)
	}
	if res.Out[0][0] != 5 || res.Out[0][3] != 8 {
		t.Fatalf("degraded gemm output: %v", res.Out[0])
	}
	assertTileClean(t, tb)
}

// TestPrefetchErrorCounted: a failed speculative load surfaces in
// Stats.PrefetchErrors instead of vanishing, and leaves the tile clean.
func TestPrefetchErrorCounted(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpTransfer, Site: "dma", Count: 1},
	}}
	tb := newFaultTestbed(t, faultCfg(plan, 0, 0), 0)
	tb.rt.Prefetch("rt_1", "gemm")
	tb.drain()
	st := tb.rt.Stats()
	if st.PrefetchErrors != 1 {
		t.Fatalf("prefetch error not counted: %+v", st)
	}
	assertTileClean(t, tb)
	// A successful prefetch does not touch the counter.
	tb.rt.Prefetch("rt_1", "gemm")
	tb.drain()
	if st := tb.rt.Stats(); st.PrefetchErrors != 1 || st.Reconfigurations != 1 {
		t.Fatalf("stats after clean prefetch: %+v", st)
	}
}

// TestKernelFaultSurfaces: an injected kernel fault aborts the
// invocation with the fault error and releases the tile.
func TestKernelFaultSurfaces(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpKernel, Site: "fft", Count: 1},
	}}
	tb := newFaultTestbed(t, faultCfg(plan, 0, 0), 0)
	var gotErr error
	tb.rt.InvokeOn("rt_1", "fft", [][]float64{{1, 0, 0, 0}}, func(_ *InvokeResult, err error) { gotErr = err })
	tb.drain()
	if _, ok := faultinject.As(gotErr); !ok {
		t.Fatalf("kernel fault not delivered: %v", gotErr)
	}
	// The tile is released: the retry computes.
	var res *InvokeResult
	tb.rt.InvokeOn("rt_1", "fft", [][]float64{{1, 0, 0, 0}}, func(r *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
		res = r
	})
	tb.drain()
	if res == nil || res.Out[0][0] != 1 {
		t.Fatalf("retry after kernel fault: %+v", res)
	}
}

// faultStormSignature runs a fixed workload under a seeded fault storm
// and renders every observable — stats, timeline, energy, injected
// fault count — into one string.
func faultStormSignature(t *testing.T, workers int) string {
	t.Helper()
	plan := &faultinject.Plan{
		Seed: 1234,
		Rules: []faultinject.Rule{
			{Op: faultinject.OpICAP, Rate: 0.4},
			{Op: faultinject.OpFetchCRC, Rate: 0.3},
			{Op: faultinject.OpRecouple, Site: "rt_1", After: 2, Count: 1},
		},
	}
	tb := newFaultTestbed(t, faultCfg(plan, 2, 0), workers)
	accs := []string{"gemm", "sort", "fft", "sort", "gemm", "fft", "gemm"}
	for _, acc := range accs {
		_ = reconfigureSync(tb, "rt_1", acc) // errors are part of the signature via stats
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stats=%+v\n", tb.rt.Stats())
	fmt.Fprintf(&b, "energy=%x faults=%d now=%d\n",
		tb.rt.Meter().TotalEnergy(), tb.rt.FaultsInjected(), tb.rt.Engine().Now())
	for _, ev := range tb.rt.Timeline() {
		fmt.Fprintf(&b, "ev %d %d %s %s %d %d %v %q\n",
			ev.Start, ev.End, ev.Tile, ev.Accel, ev.Bytes, ev.Attempts, ev.Failed, ev.Err)
	}
	return b.String()
}

// TestFaultPlanDeterminism: the same seeded plan yields byte-identical
// stats, energy and timelines across repeated runs and across
// bitstream sets generated with different flow worker counts.
func TestFaultPlanDeterminism(t *testing.T) {
	base := faultStormSignature(t, 1)
	for run, workers := range []int{1, 2, 8, 1} {
		if sig := faultStormSignature(t, workers); sig != base {
			t.Fatalf("run %d (workers=%d) diverged:\n--- base\n%s--- got\n%s", run, workers, base, sig)
		}
	}
	if !strings.Contains(base, "Retries") || strings.Contains(base, "faults=0 ") {
		t.Fatalf("storm signature suspiciously quiet:\n%s", base)
	}
}

// TestLeakageFoldIsOrderIndependent: with several configured tiles the
// leakage term must come out of a sorted fold; two identical SoCs
// always meter the same leakage power.
func TestLeakageFoldIsOrderIndependent(t *testing.T) {
	build := func() *Runtime {
		reg := accel.Default()
		cfg := &socgen.Config{
			Name: "leak", Board: "VC707", Cols: 3, Rows: 2, FreqHz: 78e6,
			Tiles: []tile.Tile{
				{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
				{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
				{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
				{Name: "rt_1", Kind: tile.Reconf, AccelName: "fft", Pos: noc.Coord{X: 0, Y: 1}},
				{Name: "rt_2", Kind: tile.Reconf, AccelName: "gemm", Pos: noc.Coord{X: 1, Y: 1}},
				{Name: "rt_3", Kind: tile.Reconf, AccelName: "sort", Pos: noc.Coord{X: 2, Y: 1}},
			},
		}
		d, err := socgen.Elaborate(cfg, reg)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := flow.FloorplanDesign(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(sim.NewEngine(), d, reg, plan, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a, b := build(), build()
	for i := 0; i < 5; i++ {
		a.updateLeakagePower()
		b.updateLeakagePower()
	}
	pa, pb := a.Meter().Power("leakage"), b.Meter().Power("leakage")
	if pa != pb {
		t.Fatalf("leakage fold not deterministic: %x vs %x", pa, pb)
	}
	if pa <= 0 {
		t.Fatal("no leakage accounted")
	}
	if got := a.Tiles(); len(got) != 3 || got[0] != "rt_1" || got[2] != "rt_3" {
		t.Fatalf("Tiles() not sorted: %v", got)
	}
}

// TestRegisterBitstreamRejectsCorrupted: a corrupted image is refused
// at staging time, before it can ever reach the ICAP.
func TestRegisterBitstreamRejectsCorrupted(t *testing.T) {
	tb := newTestbed(t)
	reg := accel.Default()
	bss, err := flow.GenerateRuntimeBitstreams(context.Background(), tb.rt.design, tb.plan, map[string][]string{"rt_1": {"gemm"}}, reg, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := bss["rt_1"]["gemm"].CorruptedCopy(5)
	if err := tb.rt.RegisterBitstream("rt_1", "gemm", bad); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted bitstream staged: %v", err)
	}
}
