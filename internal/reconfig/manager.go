package reconfig

import (
	"fmt"
	"math"

	"presp/internal/faultinject"
	"presp/internal/fpga"
	"presp/internal/noc"
	"presp/internal/sim"
)

// ErrTileDead reports a request against a tile the manager has declared
// dead after repeated reconfiguration failures.
type ErrTileDead struct {
	Tile string
}

// Error implements error.
func (e *ErrTileDead) Error() string {
	return fmt.Sprintf("reconfig: tile %s is dead (repeated reconfiguration failures)", e.Tile)
}

// RequestReconfig asks the manager to load accName into tileName. The
// request is queued on the kernel workqueue and executed as soon as the
// PRC is ready (Section V); before queueing, the manager waits for the
// accelerator currently in the tile to complete its execution. done is
// called (in virtual time) when the new driver is bound.
func (r *Runtime) RequestReconfig(tileName, accName string, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	done = r.trackApp(done)
	r.wakeHealth()
	ts, err := r.tile(tileName)
	if err != nil {
		done(err)
		return
	}
	if ts.dead {
		done(&ErrTileDead{Tile: tileName})
		return
	}
	if _, ok := ts.bitstream[accName]; !ok {
		done(fmt.Errorf("reconfig: no bitstream registered for %s on tile %s", accName, tileName))
		return
	}
	if ts.loaded == accName && !ts.reconfig {
		done(nil) // already configured
		return
	}
	if ts.pending == accName {
		// A swap to the same module is already queued or in flight:
		// coalesce instead of programming the partition twice.
		r.whenTileIdle(ts, func() {
			if ts.loaded == accName {
				done(nil)
				return
			}
			// The coalesced swap was displaced; re-request.
			r.RequestReconfig(tileName, accName, done)
		})
		return
	}
	enqueue := func() {
		// Lock the device: other threads block until the interrupt
		// arrives and the new driver is loaded.
		ts.reconfig = true
		ts.pending = accName
		r.workqueue = append(r.workqueue, &request{tileName: tileName, accName: accName, done: done})
		r.pumpWorkqueue()
	}
	if r.cfg.UnsafeImmediateSwap {
		// Ablation mode: swap without draining. Any invocation still
		// executing on the tile will be aborted when the module under
		// it changes.
		enqueue()
		return
	}
	// Force the caller to wait until the accelerator drains.
	r.whenTileIdle(ts, enqueue)
}

// whenTileIdle runs fn once the tile is neither executing nor
// reconfiguring.
func (r *Runtime) whenTileIdle(ts *tileState, fn func()) {
	if !ts.busy && !ts.reconfig {
		fn()
		return
	}
	ts.waiters = append(ts.waiters, fn)
}

// releaseTile wakes every waiter of ts (they re-check state themselves).
func (r *Runtime) releaseTile(ts *tileState) {
	waiters := ts.waiters
	ts.waiters = nil
	for _, w := range waiters {
		w := w
		// Re-enter through whenTileIdle so a waiter that re-busies the
		// tile makes the rest re-queue.
		if err := r.eng.Schedule(0, func() { r.whenTileIdle(ts, w) }); err != nil {
			w()
		}
	}
}

// pumpWorkqueue starts the next queued reconfiguration when the PRC is
// free. Reconfiguration requests are executed one at a time: the SoC has
// a single DFXC/ICAP pair.
func (r *Runtime) pumpWorkqueue() {
	if r.prcBusy || len(r.workqueue) == 0 {
		return
	}
	req := r.workqueue[0]
	r.workqueue = r.workqueue[1:]
	r.prcBusy = true
	r.executeReconfig(req)
}

// vusec converts a virtual timestamp to trace microseconds. Runtime
// trace events carry sim.Time, not wall time: the trace is a picture
// of the simulated schedule, identical across runs and host speeds.
func vusec(t sim.Time) int64 { return t.Microseconds() }

// traceReconfigSpan records one completed (or finally-failed)
// reconfiguration on the tile's trace lane, plus its fetch/ICAP
// sub-spans recorded separately by attemptReconfig.
func (r *Runtime) traceReconfigSpan(ts *tileState, req *request, start sim.Time, attempt int, bytes int, failErr error) {
	if r.tr == nil {
		return
	}
	args := map[string]any{
		"accelerator": req.accName,
		"attempts":    attempt,
	}
	if req.repair {
		args["repair"] = true
	}
	if bytes > 0 {
		args["bytes"] = bytes
	}
	if failErr != nil {
		args["error"] = failErr.Error()
	}
	// Durations are differences of floored endpoints (not floored
	// differences) so nested sub-spans can never extend past this span
	// by a truncated microsecond.
	r.tr.Complete("reconfig", req.tileName+"<-"+req.accName, r.tileTID[req.tileName],
		vusec(start), vusec(r.eng.Now())-vusec(start), args)
}

// executeReconfig performs the hardware sequence of one partial
// reconfiguration:
//
//  1. the driver engages the tile's decoupler (also gating its NoC
//     queues),
//  2. the DFXC fetches the bitstream from memory over the NoC DMA
//     plane, and the manager CRC-checks the fetched image,
//  3. the ICAP programs the partition,
//  4. the DFXC raises an interrupt; the handler disengages the decoupler
//     (resetting the queues), swaps the driver and unlocks the device.
//
// Any step can fail (a faulted transfer, a stuck decoupler, a corrupted
// fetch, an ICAP error). Every failure funnels through failReconfig,
// which first restores the tile to a safe state via recoverTile and
// then either retries the whole sequence — transient faults — or gives
// up and reports the error.
func (r *Runtime) executeReconfig(req *request) {
	r.attemptReconfig(req, r.eng.Now(), 1)
}

// attemptReconfig runs one hardware attempt. start is the virtual time
// the request left the workqueue; retries extend the same timeline
// event. attempt counts from 1.
func (r *Runtime) attemptReconfig(req *request, start sim.Time, attempt int) {
	ts := r.tiles[req.tileName]
	bs := ts.bitstream[req.accName]
	// Re-assert the swap-in-progress lock: recovery from an earlier
	// attempt cleared it so the tile never looks wedged between
	// attempts.
	ts.reconfig = true
	if ts.pending == "" {
		ts.pending = req.accName
	}

	fail := func(err error) { r.failReconfig(req, ts, start, attempt, err) }

	// Step 1: decouple.
	if err := r.net.Decouple(ts.pos); err != nil {
		fail(err)
		return
	}
	r.mustSetPower("prc", r.cfg.ReconfigPowerW)
	if err := r.eng.Schedule(r.cfg.DecoupleDelay, func() {
		// Step 2: DFXC DMA fetch (memory tile -> auxiliary tile).
		plane := noc.PlaneDMA
		if r.cfg.SharedDMAPlane {
			plane = noc.PlaneMemRsp
		}
		fetchStart := r.eng.Now()
		arrive, err := r.net.Transfer(plane, r.memPos, r.auxPos, bs.Size())
		if err != nil {
			fail(err)
			return
		}
		if r.tr != nil {
			r.tr.Complete("reconfig", "fetch", r.tileTID[req.tileName],
				vusec(fetchStart), vusec(arrive)-vusec(fetchStart),
				map[string]any{"bytes": bs.Size(), "plane": plane.String()})
		}
		// The fetched image is CRC-checked on arrival, before the ICAP
		// consumes it. An injected fetch fault delivers a corrupted
		// copy, which the real verification machinery then catches.
		fetched := bs
		if ferr := r.faultCheck(faultinject.OpFetchCRC, req.tileName, req.accName); ferr != nil {
			fetched = bs.CorruptedCopy(attempt)
		}
		if verr := fetched.Verify(); verr != nil {
			if aerr := r.eng.At(arrive, func() { fail(verr) }); aerr != nil {
				fail(aerr)
			}
			return
		}
		// Step 3: ICAP programming overlaps the tail of the fetch; the
		// slower of the two paths bounds completion.
		icap := r.icapTime(bs.Size())
		finish := arrive + icap
		if err := r.eng.At(finish, func() {
			if r.tr != nil {
				r.tr.Complete("reconfig", "icap", r.tileTID[req.tileName],
					vusec(arrive), vusec(finish)-vusec(arrive),
					map[string]any{"bytes": bs.Size()})
			}
			if ferr := r.faultCheck(faultinject.OpICAP, req.tileName, req.accName); ferr != nil {
				fail(ferr)
				return
			}
			// Step 4: interrupt to the processor.
			intrAt, err := r.net.Transfer(noc.PlaneInterrupt, r.auxPos, r.cpuPos, 8)
			if err != nil {
				fail(err)
				return
			}
			if err := r.eng.At(intrAt+r.cfg.DriverSwapDelay, func() {
				// Handler: disengage decoupler, reset queues, swap driver.
				if err := r.net.Recouple(ts.pos); err != nil {
					fail(err)
					return
				}
				ts.loaded = req.accName
				ts.driver = req.accName
				ts.programConfigMem(bs)
				ts.reconfig = false
				ts.failures = 0
				if ts.pending == req.accName {
					ts.pending = ""
				}
				r.prcBusy = false
				r.mustSetPower("prc", 0)
				r.setTileIdlePower(ts)
				r.stats.Reconfigurations++
				r.stats.ReconfigTime += r.eng.Now() - start
				r.stats.BytesConfigured += int64(bs.Size())
				r.mReconfigs.Inc()
				r.mBytes.Add(int64(bs.Size()))
				r.traceReconfigSpan(ts, req, start, attempt, bs.Size(), nil)
				r.timeline = append(r.timeline, TimelineEvent{
					Start: start, End: r.eng.Now(),
					Tile: ts.t.Name, Accel: req.accName,
					Bytes: bs.Size(), Attempts: attempt,
					Repair: req.repair,
				})
				if e := r.cfg.ReconfigEnergyPerByte * float64(bs.Size()); e > 0 {
					if err := r.meter.AddEnergy("config", e); err != nil {
						fail(err)
						return
					}
				}
				req.done(nil)
				r.releaseTile(ts)
				r.pumpWorkqueue()
			}); err != nil {
				fail(err)
			}
		}); err != nil {
			fail(err)
		}
	}); err != nil {
		fail(err)
	}
}

// recoverTile restores a tile to a safe, usable state after a failed
// reconfiguration attempt: force the decoupler open (the PRC reset
// line — a normal disengage cannot be trusted on this path), drop the
// PRC power rail, restore the tile's idle power and clear the
// swap-in-progress state. After recoverTile the tile is exactly as
// usable as before the attempt: nothing is gated, nothing leaks power,
// and a later RequestReconfig or InvokeOn proceeds normally.
func (r *Runtime) recoverTile(ts *tileState, accName string) {
	if r.net.Decoupled(ts.pos) {
		r.net.ResetTile(ts.pos)
	}
	ts.reconfig = false
	if accName == "" || ts.pending == accName {
		ts.pending = ""
	}
	r.mustSetPower("prc", 0)
	r.setTileIdlePower(ts)
}

// failReconfig is the single failure path of executeReconfig: recover
// the tile, then retry (bounded, with linear backoff) or report.
func (r *Runtime) failReconfig(req *request, ts *tileState, start sim.Time, attempt int, err error) {
	r.recoverTile(ts, req.accName)
	if attempt <= r.cfg.MaxReconfigRetries && !ts.dead {
		// Transient-fault policy: the whole hardware sequence re-runs
		// after a backoff proportional to the attempt number. The PRC
		// stays busy, so queued requests cannot interleave with the
		// retry.
		r.stats.Retries++
		r.mRetries.Inc()
		if r.tr != nil {
			r.tr.InstantAt("reconfig", "retry "+req.tileName, r.tileTID[req.tileName],
				vusec(r.eng.Now()), map[string]any{"attempt": attempt, "error": err.Error()})
		}
		backoff := r.cfg.RetryBackoff * sim.Time(attempt)
		if serr := r.eng.Schedule(backoff, func() { r.attemptReconfig(req, start, attempt+1) }); serr == nil {
			return
		}
		// Could not schedule the retry; fall through to a hard failure.
	}
	r.stats.FailedReconfigs++
	r.mFailures.Inc()
	ts.failures++
	if r.cfg.TileDeadThreshold > 0 && ts.failures >= r.cfg.TileDeadThreshold && !ts.dead {
		ts.dead = true
		r.stats.DeadTiles++
		r.mDeadTiles.Inc()
		if r.tr != nil {
			r.tr.InstantAt("reconfig", "tile dead "+req.tileName, r.tileTID[req.tileName],
				vusec(r.eng.Now()), map[string]any{"failures": ts.failures})
		}
	}
	r.traceReconfigSpan(ts, req, start, attempt, 0, err)
	r.timeline = append(r.timeline, TimelineEvent{
		Start: start, End: r.eng.Now(),
		Tile: ts.t.Name, Accel: req.accName,
		Attempts: attempt, Failed: true, Err: err.Error(),
		Repair: req.repair,
	})
	r.prcBusy = false
	req.done(err)
	r.releaseTile(ts)
	r.pumpWorkqueue()
}

// icapTime returns the ICAP programming time for a stored image of the
// given size. Compressed images program faster: multi-frame writes skip
// repeated frames, which is exactly why the flow enables compression.
func (r *Runtime) icapTime(bytes int) sim.Time {
	bw := r.cfg.ICAPEffectiveBps
	if bw <= 0 {
		bw = r.design.Dev.ICAPBandwidth
	}
	if bw <= 0 {
		bw = 400e6
	}
	sec := float64(bytes) / bw
	return sim.Time(sec * 1e9)
}

// Prefetch asks the manager to opportunistically load accName into the
// tile ahead of its next use. The request goes through the same
// workqueue as demand reconfigurations; if the guess is wrong, the
// demand path simply swaps again. A failed speculative load is not an
// application error — no caller waits on it — but it must not vanish
// either: the manager counts it in Stats.PrefetchErrors, and by the
// time the callback runs the recovery path has already restored the
// tile, so the failure leaves no residue.
func (r *Runtime) Prefetch(tileName, accName string) {
	r.RequestReconfig(tileName, accName, func(err error) {
		if err != nil {
			r.stats.PrefetchErrors++
		}
	})
}

// updateLeakagePower re-evaluates the configured-fabric leakage from
// the total pblock area currently holding loaded modules. The fold
// runs over the sorted tile-name slice: float addition is not
// associative, so summing in map iteration order would perturb the
// leakage term — and every energy figure derived from it — from run
// to run.
func (r *Runtime) updateLeakagePower() {
	var areaK float64
	loaded := 0
	for _, name := range r.tileNames {
		ts := r.tiles[name]
		if ts.loaded != "" {
			areaK += float64(ts.pblock.ResourcesOn(r.design.Dev)[fpga.LUT]) / 1000.0
			loaded++
		}
	}
	e := r.cfg.LeakageExponent
	if e <= 0 {
		e = 1
	}
	p := r.cfg.LeakagePerKLUTW*math.Pow(areaK, e) + r.cfg.PerTilePowerW*float64(loaded)
	r.mustSetPower("leakage", p)
}

// setTileIdlePower applies the clock-tree power of a configured, idle
// accelerator and refreshes the global leakage term.
func (r *Runtime) setTileIdlePower(ts *tileState) {
	r.updateLeakagePower()
	if ts.loaded == "" {
		r.mustSetPower("tile."+ts.t.Name, 0)
		return
	}
	desc, err := r.reg.Lookup(ts.loaded)
	if err != nil {
		r.mustSetPower("tile."+ts.t.Name, 0)
		return
	}
	r.mustSetPower("tile."+ts.t.Name, desc.ActivePowerW*r.cfg.IdlePowerFraction)
}

func (r *Runtime) mustSetPower(name string, w float64) {
	if err := r.meter.SetPower(name, w); err != nil {
		panic(fmt.Sprintf("reconfig: power bookkeeping: %v", err))
	}
	// Each power rail becomes a Chrome-trace counter track sampled at
	// every level change, in virtual time.
	if r.tr != nil {
		r.tr.CounterSampleAt("power "+name, vusec(r.eng.Now()), map[string]float64{"watts": w})
	}
}

// updateContentionPower re-evaluates the superlinear uncore power term
// from the count of concurrently active accelerators: k concurrent
// masters draw ContentionPowerW·k·(k-1) beyond their own datapaths (the
// excess models DRAM/NoC contention — retries, stalls and arbitration
// burn energy only when masters actually collide).
func (r *Runtime) updateContentionPower() {
	k := float64(r.activeAccels)
	if k < 1 {
		k = 0
	}
	r.mustSetPower("uncore", r.cfg.ContentionPowerW*k*(k-1))
}

// pblockAreaLUTs returns the fabric area of the tile's partition (used
// by energy accounting helpers and reporting).
func (r *Runtime) pblockAreaLUTs(tileName string) (int, error) {
	ts, err := r.tile(tileName)
	if err != nil {
		return 0, err
	}
	return ts.pblock.ResourcesOn(r.design.Dev)[fpga.LUT], nil
}
