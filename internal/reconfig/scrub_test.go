package reconfig

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"presp/internal/accel"
	"presp/internal/faultinject"
	"presp/internal/flow"
	"presp/internal/noc"
	"presp/internal/obs"
	"presp/internal/sim"
	"presp/internal/socgen"
	"presp/internal/tile"
)

// scrubCfg is faultCfg plus the health subsystem: a 20µs scrub period
// over 5µs SEU sample ticks, fast enough that even short workloads see
// several cycles.
func scrubCfg(plan *faultinject.Plan, retries, deadAt int) Config {
	cfg := faultCfg(plan, retries, deadAt)
	cfg.ScrubInterval = 20 * time.Microsecond
	cfg.SEUCheckInterval = 5 * time.Microsecond
	return cfg
}

// stormFor advances virtual time by at least span by running
// back-to-back invocations of the accelerator currently loaded in the
// tile — no swaps, so only scrub repairs rewrite config memory. The
// health tick chain runs only while application requests are in
// flight, so real work is what keeps the SEU process and the scrubber
// live (exactly as in the field: an idle, unclocked simulation has no
// passage of time for upsets to occupy).
func stormFor(t *testing.T, tb *testbed, tileName string, span sim.Time) {
	t.Helper()
	deadline := tb.eng.Now() + span
	for i := 0; tb.eng.Now() < deadline; i++ {
		if i > 100000 {
			t.Fatalf("storm stopped advancing virtual time at %v", tb.eng.Now())
		}
		acc, err := tb.rt.Loaded(tileName)
		if err != nil || acc == "" {
			t.Fatalf("loaded(%s) = %q, %v", tileName, acc, err)
		}
		called := false
		tb.rt.InvokeOn(tileName, acc, [][]float64{{1, 0, 0, 0}}, func(*InvokeResult, error) { called = true })
		tb.drain()
		if !called {
			t.Fatal("storm invocation never completed")
		}
	}
}

// newScrubTestbed boots a 3x2 SoC with two reconfigurable tiles (rt_1
// booting fft, rt_2 booting gemm) — the shape the PRC-arbitration test
// needs: one tile mid-reconfiguration while the other takes an upset.
func newScrubTestbed(t *testing.T, cfg Config, workers int) *testbed {
	t.Helper()
	reg := accel.Default()
	scfg := &socgen.Config{
		Name: "tbscrub", Board: "VC707", Cols: 3, Rows: 2, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
			{Name: "rt_1", Kind: tile.Reconf, AccelName: "fft", Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "rt_2", Kind: tile.Reconf, AccelName: "gemm", Pos: noc.Coord{X: 1, Y: 1}},
		},
	}
	d, err := socgen.Elaborate(scfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := flow.FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	rt, err := New(eng, d, reg, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, map[string][]string{
		"rt_1": {"fft", "gemm", "sort"},
		"rt_2": {"fft", "gemm", "sort"},
	}, reg, true, workers)
	if err != nil {
		t.Fatal(err)
	}
	for tileName, accs := range bss {
		for acc, bs := range accs {
			if err := rt.RegisterBitstream(tileName, acc, bs); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &testbed{eng: eng, rt: rt, reg: reg, plan: plan}
}

// TestScrubDetectsAndRepairsSingleUpset is the canonical cycle: one
// deterministic SEU lands in the resident image, the next scrub pass
// catches the readback/golden CRC mismatch, and the repair re-writes
// the golden partial bitstream through the ICAP — observable in the
// stats, the timeline (Repair-flagged event), the obs instruments and
// a clean post-repair ConfigHealth.
func TestScrubDetectsAndRepairsSingleUpset(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpSEU, Site: "rt_1", Count: 1},
	}}
	cfg := scrubCfg(plan, 1, 0)
	o := obs.New()
	cfg.Observer = o
	tb := newFaultTestbed(t, cfg, 0)

	pre, err := tb.rt.ConfigHealth("rt_1")
	if err != nil {
		t.Fatal(err)
	}
	if pre.Corrupted || pre.GoldenCRC == 0 || pre.Frames == 0 {
		t.Fatalf("boot config health wrong: %+v", pre)
	}

	stormFor(t, tb, "rt_1", time.Millisecond)

	st := tb.rt.Stats().Scrub
	if st.Upsets != 1 || st.Detected != 1 || st.Repaired != 1 || st.Uncorrectable != 0 {
		t.Fatalf("scrub stats: %+v", st)
	}
	if st.Cycles == 0 || st.Checks < st.Cycles {
		t.Fatalf("scrubber barely ran: %+v", st)
	}
	post, err := tb.rt.ConfigHealth("rt_1")
	if err != nil {
		t.Fatal(err)
	}
	if post.Corrupted || post.RepairPending || post.UpsetBits != 0 {
		t.Fatalf("tile not repaired: %+v", post)
	}
	if post.ReadbackCRC != post.GoldenCRC || post.GoldenCRC != pre.GoldenCRC {
		t.Fatalf("post-repair CRCs wrong: %+v (boot golden %08x)", post, pre.GoldenCRC)
	}

	// The repair is a real partial reconfiguration: Repair-flagged
	// timeline event, reconfiguration counters advanced, ICAP bytes
	// pushed.
	tl := tb.rt.Timeline()
	if len(tl) != 1 || !tl[0].Repair || tl[0].Failed || tl[0].Accel != "fft" || tl[0].Bytes == 0 {
		t.Fatalf("repair not in timeline: %+v", tl)
	}
	if s := tb.rt.Stats(); s.Reconfigurations != 1 || s.BytesConfigured == 0 {
		t.Fatalf("repair did not count as reconfiguration: %+v", s)
	}
	assertTileClean(t, tb)

	// Observability: counters mirror the stats, the MTTR histogram saw
	// the detection-to-repair latency, and the per-tile instants exist.
	m := o.Metrics()
	for name, want := range map[string]int64{
		"scrub_upsets_total":        1,
		"scrub_detected_total":      1,
		"scrub_repaired_total":      1,
		"scrub_uncorrectable_total": 0,
	} {
		if got := m.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if m.Counter("scrub_cycles_total").Value() == 0 {
		t.Error("scrub_cycles_total never advanced")
	}
	mttr := m.Histogram("scrub_mttr_usec").Snapshot()
	if mttr.Count != 1 || mttr.Sum <= 0 {
		t.Errorf("MTTR histogram: %+v", mttr)
	}
	evs := o.Tracer().Events()
	for _, name := range []string{"seu rt_1", "detect rt_1", "repair rt_1"} {
		if obs.CountInstants(evs, "scrub", name) != 1 {
			t.Errorf("trace instant %q missing", name)
		}
	}
}

// TestScrubRepairWaitsForInFlightReconfig pins the scrub-vs-reconfig
// arbitration: an upset detected while the single PRC is programming
// another tile queues its repair behind the demand swap — the repair
// starts no earlier than the swap completes, never interleaving with
// it.
func TestScrubRepairWaitsForInFlightReconfig(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpSEU, Site: "rt_2", Count: 1},
	}}
	tb := newScrubTestbed(t, scrubCfg(plan, 1, 0), 0)

	// Kick off a demand swap on rt_1; its ICAP program spans well past
	// the first scrub cycle, so rt_2's repair must queue behind it.
	var swapErr error
	tb.rt.RequestReconfig("rt_1", "sort", func(err error) { swapErr = err })
	tb.drain()
	if swapErr != nil {
		t.Fatal(swapErr)
	}

	tl := tb.rt.Timeline()
	if len(tl) != 2 {
		t.Fatalf("expected demand swap + repair, got %+v", tl)
	}
	swap, repair := tl[0], tl[1]
	if swap.Repair || swap.Tile != "rt_1" || swap.Accel != "sort" {
		t.Fatalf("first event is not the demand swap: %+v", swap)
	}
	if !repair.Repair || repair.Tile != "rt_2" || repair.Accel != "gemm" {
		t.Fatalf("second event is not the rt_2 repair: %+v", repair)
	}
	if repair.Start < swap.End {
		t.Fatalf("repair interleaved with the demand swap: repair start %v < swap end %v",
			repair.Start, swap.End)
	}
	st := tb.rt.Stats().Scrub
	if st.Detected != 1 || st.Repaired != 1 {
		t.Fatalf("scrub stats: %+v", st)
	}
	h2, _ := tb.rt.ConfigHealth("rt_2")
	if h2.Corrupted || h2.RepairPending {
		t.Fatalf("rt_2 not repaired: %+v", h2)
	}
}

// TestUncorrectableUpsetEscalatesToDeadTile: when every repair attempt
// fails (persistent ICAP fault), the scrubber's repairs burn through
// the same retry/dead-tile policy as demand swaps — the tile is
// declared dead, scrubbing leaves it alone, and invocations degrade to
// the CPU fallback with correct results.
func TestUncorrectableUpsetEscalatesToDeadTile(t *testing.T) {
	plan := &faultinject.Plan{Rules: []faultinject.Rule{
		{Op: faultinject.OpSEU, Site: "rt_1", Count: 1},
		{Op: faultinject.OpICAP, Site: "rt_1", Count: -1},
	}}
	tb := newFaultTestbed(t, scrubCfg(plan, 1, 2), 0)
	for i := 0; i < 500; i++ {
		if dead, _ := tb.rt.Dead("rt_1"); dead {
			break
		}
		stormFor(t, tb, "rt_1", 20*time.Microsecond)
	}

	dead, err := tb.rt.Dead("rt_1")
	if err != nil || !dead {
		t.Fatalf("tile not declared dead: dead=%v err=%v", dead, err)
	}
	st := tb.rt.Stats()
	// Each detection's repair exhausts its retry and fails; the second
	// failure crosses TileDeadThreshold=2.
	if st.Scrub.Detected != 2 || st.Scrub.Uncorrectable != 2 || st.Scrub.Repaired != 0 {
		t.Fatalf("scrub stats: %+v", st.Scrub)
	}
	if st.DeadTiles != 1 || st.FailedReconfigs != 2 {
		t.Fatalf("stats: %+v", st)
	}
	h, _ := tb.rt.ConfigHealth("rt_1")
	if !h.Corrupted {
		t.Fatalf("dead tile should still show its corruption: %+v", h)
	}
	assertTileClean(t, tb)

	// Graceful degradation holds: the kernel runs on the processor and
	// computes the right answer.
	var res *InvokeResult
	tb.rt.InvokeOn("rt_1", "sort", [][]float64{{9, 4, 7, 1}}, func(r *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
		res = r
	})
	tb.drain()
	if res == nil || !res.OnCPU {
		t.Fatalf("dead tile did not degrade to CPU: %+v", res)
	}
	if res.Out[0][0] != 1 || res.Out[0][3] != 9 {
		t.Fatalf("CPU fallback output: %v", res.Out[0])
	}
}

// TestScrubPowerRailsRestored: after a storm of upsets and repairs the
// power books balance — no residual PRC power, the tile back at its
// configured idle draw, energy strictly accumulated.
func TestScrubPowerRailsRestored(t *testing.T) {
	plan := &faultinject.Plan{Seed: 7, Rules: []faultinject.Rule{
		{Op: faultinject.OpSEU, Site: "rt_1", Rate: 0.3},
	}}
	tb := newFaultTestbed(t, scrubCfg(plan, 1, 0), 0)
	idleBefore := tb.rt.Meter().Power("tile.rt_1")
	if idleBefore <= 0 {
		t.Fatalf("boot idle power: %g W", idleBefore)
	}
	stormFor(t, tb, "rt_1", 2*time.Millisecond)
	st := tb.rt.Stats().Scrub
	if st.Repaired == 0 {
		t.Fatalf("storm produced no repairs: %+v", st)
	}
	if w := tb.rt.Meter().Power("prc"); w != 0 {
		t.Fatalf("residual PRC power after scrubbing: %g W", w)
	}
	if w := tb.rt.Meter().Power("tile.rt_1"); w != idleBefore {
		t.Fatalf("tile idle power not restored: %g W, want %g W", w, idleBefore)
	}
	if tb.rt.Meter().TotalEnergy() <= 0 {
		t.Fatal("no energy accumulated")
	}
	assertTileClean(t, tb)
}

// scrubStormSignature renders every observable of a seeded SEU storm —
// scrub stats, per-tile post-repair CRCs, energy, injected fault
// count, Repair-flagged timeline — into one string. The acceptance
// property: this signature is byte-identical whatever worker count
// generated the bitstreams.
func scrubStormSignature(t *testing.T, workers int) string {
	t.Helper()
	plan := &faultinject.Plan{Seed: 4242, Rules: []faultinject.Rule{
		{Op: faultinject.OpSEU, Site: "rt_1", Rate: 0.25},
		{Op: faultinject.OpSEU, Site: "rt_2", Rate: 0.25},
	}}
	tb := newScrubTestbed(t, scrubCfg(plan, 2, 0), workers)
	// Interleave demand swaps and invocations with the storm so the
	// signature also covers scrub-vs-reconfig arbitration and energy.
	for _, acc := range []string{"sort", "gemm", "fft"} {
		if err := reconfigureSync(tb, "rt_1", acc); err != nil {
			t.Fatal(err)
		}
	}
	tb.rt.InvokeOn("rt_2", "gemm", [][]float64{{1, 0, 0, 1}, {5, 6, 7, 8}}, func(_ *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
	})
	tb.drain()
	stormFor(t, tb, "rt_1", time.Millisecond)

	var b strings.Builder
	fmt.Fprintf(&b, "stats=%+v\n", tb.rt.Stats())
	fmt.Fprintf(&b, "energy=%x faults=%d now=%d\n",
		tb.rt.Meter().TotalEnergy(), tb.rt.FaultsInjected(), tb.rt.Engine().Now())
	for _, name := range tb.rt.Tiles() {
		h, err := tb.rt.ConfigHealth(name)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "health %s loaded=%s golden=%08x readback=%08x upsets=%d frames=%d corrupted=%v\n",
			name, h.Loaded, h.GoldenCRC, h.ReadbackCRC, h.UpsetBits, h.UpsetFrames, h.Corrupted)
	}
	for _, ev := range tb.rt.Timeline() {
		fmt.Fprintf(&b, "ev %d %d %s %s %d %d %v %v %q\n",
			ev.Start, ev.End, ev.Tile, ev.Accel, ev.Bytes, ev.Attempts, ev.Repair, ev.Failed, ev.Err)
	}
	return b.String()
}

// TestScrubStormDeterminism is the acceptance determinism suite:
// identical seed + fault plan + scrub interval yields byte-identical
// post-repair bitstream CRCs, identical scrub counters, identical
// energy and an identical repair timeline across flow worker counts
// (and across repeated runs at the same worker count).
func TestScrubStormDeterminism(t *testing.T) {
	base := scrubStormSignature(t, 1)
	for run, workers := range []int{1, 2, 8, 1} {
		if sig := scrubStormSignature(t, workers); sig != base {
			t.Fatalf("run %d (workers=%d) diverged:\n--- base\n%s--- got\n%s", run, workers, base, sig)
		}
	}
	if !strings.Contains(base, "Repaired") || strings.Contains(base, "faults=0 ") {
		t.Fatalf("storm signature suspiciously quiet:\n%s", base)
	}
	// The storm must actually have exercised the repair path.
	if strings.Contains(base, "Scrub:{Cycles:0") || !strings.Contains(base, "corrupted=false") {
		t.Fatalf("storm never scrubbed:\n%s", base)
	}
}

// TestScrubSoak is the chaos-smoke leg: a long SEU storm over a
// swap-heavy workload, asserting the acceptance property that while
// all upsets are repairable, not one invocation returns a wrong
// result and no tile dies. Runs under -race in `make chaos-smoke`.
func TestScrubSoak(t *testing.T) {
	plan := &faultinject.Plan{Seed: 99, Rules: []faultinject.Rule{
		{Op: faultinject.OpSEU, Site: "rt_1", Rate: 0.4},
	}}
	tb := newFaultTestbed(t, scrubCfg(plan, 2, 3), 0)

	checked := 0
	for i := 0; i < 120; i++ {
		switch i % 3 {
		case 0:
			tb.rt.InvokeOn("rt_1", "sort", [][]float64{{3, 1, 2}}, func(r *InvokeResult, err error) {
				if err != nil {
					t.Errorf("iteration %d: %v", checked, err)
					return
				}
				if r.Out[0][0] != 1 || r.Out[0][1] != 2 || r.Out[0][2] != 3 {
					t.Errorf("iteration %d: wrong sort result %v", checked, r.Out[0])
				}
				checked++
			})
		case 1:
			tb.rt.InvokeOn("rt_1", "gemm", [][]float64{{1, 0, 0, 1}, {5, 6, 7, 8}}, func(r *InvokeResult, err error) {
				if err != nil {
					t.Errorf("iteration %d: %v", checked, err)
					return
				}
				if r.Out[0][0] != 5 || r.Out[0][3] != 8 {
					t.Errorf("iteration %d: wrong gemm result %v", checked, r.Out[0])
				}
				checked++
			})
		default:
			tb.rt.InvokeOn("rt_1", "fft", [][]float64{{1, 0, 0, 0}}, func(r *InvokeResult, err error) {
				if err != nil {
					t.Errorf("iteration %d: %v", checked, err)
					return
				}
				checked++
			})
		}
		tb.drain()
	}
	if checked != 120 {
		t.Fatalf("only %d/120 invocations completed", checked)
	}
	st := tb.rt.Stats()
	if st.DeadTiles != 0 {
		t.Fatalf("repairable storm killed a tile: %+v", st)
	}
	if st.Scrub.Upsets == 0 || st.Scrub.Repaired == 0 {
		t.Fatalf("soak too quiet to prove anything: %+v", st.Scrub)
	}
	if st.Scrub.Uncorrectable != 0 {
		t.Fatalf("repairable upsets reported uncorrectable: %+v", st.Scrub)
	}
	if st.CPUFallbacks != 0 {
		t.Fatalf("healthy tile fell back to CPU: %+v", st)
	}
	h, _ := tb.rt.ConfigHealth("rt_1")
	if h.RepairPending {
		t.Fatalf("repair left pending after drain: %+v", h)
	}
	assertTileClean(t, tb)
}

// TestScrubIdleEngineStillDrains pins the park/unpark contract: with
// scrubbing armed, Engine.Run(0) must still return once application
// work is done — a free-running scrub ticker would hang every drain
// in the codebase. And while the engine is parked, virtual time does
// not advance, so no SEU schedule is missed, only deferred.
func TestScrubIdleEngineStillDrains(t *testing.T) {
	plan := &faultinject.Plan{Seed: 5, Rules: []faultinject.Rule{
		{Op: faultinject.OpSEU, Site: "rt_1", Rate: 0.5},
	}}
	tb := newFaultTestbed(t, scrubCfg(plan, 1, 0), 0)

	// drain() on an idle runtime returns immediately (nothing pending).
	tb.drain()
	if tb.eng.Pending() != 0 {
		t.Fatalf("idle runtime holds %d pending events", tb.eng.Pending())
	}

	// A real workload unparks the chain; the drain still terminates,
	// and afterwards the queue is empty again (the chain re-parked).
	if err := reconfigureSync(tb, "rt_1", "gemm"); err != nil {
		t.Fatal(err)
	}
	if tb.eng.Pending() != 0 {
		t.Fatalf("health chain left %d events after drain", tb.eng.Pending())
	}
	now := tb.eng.Now()
	tb.drain()
	if tb.eng.Now() != now {
		t.Fatal("drain of parked runtime advanced virtual time")
	}
}
