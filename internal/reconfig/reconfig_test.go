package reconfig

import (
	"context"
	"strings"
	"testing"

	"presp/internal/accel"
	"presp/internal/bitstream"
	"presp/internal/floorplan"
	"presp/internal/flow"
	"presp/internal/noc"
	"presp/internal/sim"
	"presp/internal/socgen"
	"presp/internal/tile"
)

// testbed boots a 2x2 SoC with one reconfigurable tile (fft at boot)
// and bitstreams staged for fft, gemm and sort.
type testbed struct {
	eng  *sim.Engine
	rt   *Runtime
	reg  *accel.Registry
	plan *floorplan.Plan
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	reg := accel.Default()
	cfg := &socgen.Config{
		Name: "tb", Board: "VC707", Cols: 2, Rows: 2, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "rt_1", Kind: tile.Reconf, AccelName: "fft", Pos: noc.Coord{X: 1, Y: 1}},
		},
	}
	d, err := socgen.Elaborate(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := flow.FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	rt, err := New(eng, d, reg, plan, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, map[string][]string{
		"rt_1": {"fft", "gemm", "sort"},
	}, reg, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for acc, bs := range bss["rt_1"] {
		if err := rt.RegisterBitstream("rt_1", acc, bs); err != nil {
			t.Fatal(err)
		}
	}
	return &testbed{eng: eng, rt: rt, reg: reg, plan: plan}
}

// drain runs the engine to completion.
func (tb *testbed) drain() { tb.eng.Run(0) }

func TestBootState(t *testing.T) {
	tb := newTestbed(t)
	loaded, err := tb.rt.Loaded("rt_1")
	if err != nil {
		t.Fatal(err)
	}
	if loaded != "fft" {
		t.Fatalf("boot accelerator: got %q want fft", loaded)
	}
	drv, err := tb.rt.Driver("rt_1")
	if err != nil {
		t.Fatal(err)
	}
	if drv != "fft" {
		t.Fatalf("boot driver: got %q", drv)
	}
	if len(tb.rt.Tiles()) != 1 {
		t.Fatalf("tiles: %v", tb.rt.Tiles())
	}
}

func TestReconfigSwapsLoadedAndDriver(t *testing.T) {
	tb := newTestbed(t)
	var done bool
	tb.rt.RequestReconfig("rt_1", "gemm", func(err error) {
		if err != nil {
			t.Error(err)
		}
		done = true
	})
	tb.drain()
	if !done {
		t.Fatal("reconfiguration never completed")
	}
	loaded, _ := tb.rt.Loaded("rt_1")
	drv, _ := tb.rt.Driver("rt_1")
	if loaded != "gemm" || drv != "gemm" {
		t.Fatalf("after swap: loaded=%q driver=%q", loaded, drv)
	}
	st := tb.rt.Stats()
	if st.Reconfigurations != 1 || st.ReconfigTime <= 0 || st.BytesConfigured <= 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestReconfigToSameAccIsNoop(t *testing.T) {
	tb := newTestbed(t)
	calls := 0
	tb.rt.RequestReconfig("rt_1", "fft", func(err error) {
		if err != nil {
			t.Error(err)
		}
		calls++
	})
	tb.drain()
	if calls != 1 {
		t.Fatal("callback not invoked")
	}
	if tb.rt.Stats().Reconfigurations != 0 {
		t.Fatal("no-op swap went through the PRC")
	}
}

func TestReconfigErrors(t *testing.T) {
	tb := newTestbed(t)
	var gotErr error
	tb.rt.RequestReconfig("rt_1", "conv2d", func(err error) { gotErr = err })
	tb.drain()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "no bitstream") {
		t.Fatalf("unregistered bitstream: got %v", gotErr)
	}
	tb.rt.RequestReconfig("ghost", "fft", func(err error) { gotErr = err })
	tb.drain()
	if gotErr == nil {
		t.Fatal("unknown tile accepted")
	}
}

func TestRegisterBitstreamValidation(t *testing.T) {
	tb := newTestbed(t)
	if err := tb.rt.RegisterBitstream("ghost", "fft", &bitstream.Bitstream{Kind: bitstream.Partial, Data: []byte{1}}); err == nil {
		t.Fatal("unknown tile accepted")
	}
	if err := tb.rt.RegisterBitstream("rt_1", "fft", nil); err == nil {
		t.Fatal("nil bitstream accepted")
	}
	if err := tb.rt.RegisterBitstream("rt_1", "fft", &bitstream.Bitstream{Kind: bitstream.Full, Data: []byte{1}}); err == nil {
		t.Fatal("full bitstream accepted through the PRC")
	}
	if err := tb.rt.RegisterBitstream("rt_1", "warp-drive", &bitstream.Bitstream{Kind: bitstream.Partial, Data: []byte{1}}); err == nil {
		t.Fatal("unknown accelerator accepted")
	}
	names, err := tb.rt.RegisteredBitstreams("rt_1")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("registered: %v", names)
	}
}

func TestInvokeComputesFunctionally(t *testing.T) {
	tb := newTestbed(t)
	var res *InvokeResult
	tb.rt.InvokeOn("rt_1", "fft", [][]float64{{1, 0, 0, 0}}, func(r *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
		res = r
	})
	tb.drain()
	if res == nil {
		t.Fatal("invocation never completed")
	}
	// FFT of an impulse: flat spectrum.
	for k := 0; k < 4; k++ {
		if res.Out[0][2*k] != 1 || res.Out[0][2*k+1] != 0 {
			t.Fatalf("fft output wrong: %v", res.Out[0])
		}
	}
	if res.Reconfigured {
		t.Fatal("boot-loaded accelerator should not reconfigure")
	}
	if res.End <= res.Start {
		t.Fatal("invocation took no virtual time")
	}
}

func TestInvokeTriggersSwap(t *testing.T) {
	tb := newTestbed(t)
	var res *InvokeResult
	tb.rt.InvokeOn("rt_1", "sort", [][]float64{{3, 1, 2}}, func(r *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
		res = r
	})
	tb.drain()
	if res == nil {
		t.Fatal("invocation never completed")
	}
	if !res.Reconfigured {
		t.Fatal("swap not reported")
	}
	if res.Out[0][0] != 1 || res.Out[0][1] != 2 || res.Out[0][2] != 3 {
		t.Fatalf("sort output: %v", res.Out[0])
	}
	if tb.rt.Stats().Reconfigurations != 1 {
		t.Fatal("swap not counted")
	}
}

// TestWorkqueueSerializesSwaps: two requests race for the single PRC;
// both complete, in order, and the tile ends on the second accelerator.
func TestWorkqueueSerializesSwaps(t *testing.T) {
	tb := newTestbed(t)
	var order []string
	tb.rt.RequestReconfig("rt_1", "gemm", func(err error) {
		if err != nil {
			t.Error(err)
		}
		order = append(order, "gemm")
	})
	tb.rt.RequestReconfig("rt_1", "sort", func(err error) {
		if err != nil {
			t.Error(err)
		}
		order = append(order, "sort")
	})
	tb.drain()
	if len(order) != 2 || order[0] != "gemm" || order[1] != "sort" {
		t.Fatalf("swap order: %v", order)
	}
	loaded, _ := tb.rt.Loaded("rt_1")
	if loaded != "sort" {
		t.Fatalf("final accelerator: %q", loaded)
	}
	if tb.rt.Stats().Reconfigurations != 2 {
		t.Fatalf("reconfigurations: %d", tb.rt.Stats().Reconfigurations)
	}
}

// TestInvokeWaitsForReconfig: an invocation issued while the tile is
// being reprogrammed must wait for the interrupt and then run on the
// new accelerator.
func TestInvokeWaitsForReconfig(t *testing.T) {
	tb := newTestbed(t)
	var invokeDone, swapDone sim.Time
	tb.rt.RequestReconfig("rt_1", "gemm", func(err error) {
		if err != nil {
			t.Error(err)
		}
		swapDone = tb.eng.Now()
	})
	tb.rt.InvokeOn("rt_1", "gemm", [][]float64{{1, 0, 0, 1}, {1, 2, 3, 4}}, func(r *InvokeResult, err error) {
		if err != nil {
			t.Error(err)
		}
		invokeDone = tb.eng.Now()
	})
	tb.drain()
	if swapDone == 0 || invokeDone == 0 {
		t.Fatal("operations did not complete")
	}
	if invokeDone <= swapDone {
		t.Fatal("invocation finished before the reconfiguration")
	}
}

// TestDecouplingDuringReconfig: while the PRC programs the tile its NoC
// queues are gated, and they are re-enabled afterwards.
func TestDecouplingDuringReconfig(t *testing.T) {
	tb := newTestbed(t)
	pos := noc.Coord{X: 1, Y: 1}
	sawDecoupled := false
	probe := func() {
		if tb.rt.Network().Decoupled(pos) {
			sawDecoupled = true
		}
	}
	// Sample the decoupler state while the swap is in flight.
	for us := 1; us < 20000; us += 200 {
		if err := tb.eng.Schedule(sim.Time(us)*1000, probe); err != nil {
			t.Fatal(err)
		}
	}
	tb.rt.RequestReconfig("rt_1", "gemm", nil)
	tb.drain()
	if !sawDecoupled {
		t.Fatal("tile never decoupled during reconfiguration")
	}
	if tb.rt.Network().Decoupled(pos) {
		t.Fatal("tile left decoupled after the swap")
	}
}

func TestCPUFallbackSerializes(t *testing.T) {
	tb := newTestbed(t)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		tb.rt.RunOnCPU("mac", [][]float64{{1, 2, 3}, {4, 5, 6}}, func(r *InvokeResult, err error) {
			if err != nil {
				t.Error(err)
			}
			if !r.OnCPU {
				t.Error("fallback not marked OnCPU")
			}
			if r.Out[0][0] != 32 {
				t.Errorf("mac on cpu: got %g", r.Out[0][0])
			}
			ends = append(ends, r.End)
		})
	}
	tb.drain()
	if len(ends) != 3 {
		t.Fatalf("completions: %d", len(ends))
	}
	if !(ends[0] < ends[1] && ends[1] < ends[2]) {
		t.Fatalf("software kernels overlapped: %v", ends)
	}
	if tb.rt.Stats().CPUFallbacks != 3 {
		t.Fatalf("fallback count: %d", tb.rt.Stats().CPUFallbacks)
	}
}

func TestEnergyAccounting(t *testing.T) {
	tb := newTestbed(t)
	tb.rt.InvokeOn("rt_1", "gemm", [][]float64{{1, 0, 0, 1}, {5, 6, 7, 8}}, nil)
	tb.drain()
	if e := tb.rt.Meter().TotalEnergy(); e <= 0 {
		t.Fatalf("no energy accounted: %g", e)
	}
	if tb.rt.Meter().Energy("leakage") <= 0 {
		t.Fatal("configured-fabric leakage not accounted")
	}
}

func TestPrefetchLoadsAhead(t *testing.T) {
	tb := newTestbed(t)
	tb.rt.Prefetch("rt_1", "sort")
	tb.drain()
	loaded, _ := tb.rt.Loaded("rt_1")
	if loaded != "sort" {
		t.Fatalf("prefetch did not load: %q", loaded)
	}
}

func TestCompressionSpeedsReconfiguration(t *testing.T) {
	// The paper enables bitstream compression to reduce reconfiguration
	// latency; the model must reflect that.
	run := func(compress bool) sim.Time {
		tb := newTestbed(t)
		// Re-stage with the requested compression.
		reg := accel.Default()
		d := tb.rt.design
		bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, tb.plan, map[string][]string{"rt_1": {"gemm"}}, reg, compress, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.rt.RegisterBitstream("rt_1", "gemm", bss["rt_1"]["gemm"]); err != nil {
			t.Fatal(err)
		}
		tb.rt.RequestReconfig("rt_1", "gemm", nil)
		tb.drain()
		return tb.rt.Stats().ReconfigTime
	}
	compressed := run(true)
	raw := run(false)
	if compressed >= raw {
		t.Fatalf("compression did not speed up reconfiguration: %v vs %v", compressed, raw)
	}
	if raw > 4*compressed {
		t.Logf("compression gain: %.1fx", float64(raw)/float64(compressed))
	}
}

func TestNewValidation(t *testing.T) {
	reg := accel.Default()
	cfg := DefaultConfig()
	cfg.CPUSlowdown = 0.5
	d, err := socgen.Elaborate(socgen.SOC2(), reg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := flow.FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sim.NewEngine(), d, reg, plan, cfg); err == nil {
		t.Fatal("sub-unity CPU slowdown accepted")
	}
	if _, err := New(nil, d, reg, plan, DefaultConfig()); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestBaremetalDriver(t *testing.T) {
	tb := newTestbed(t)
	bm, err := NewBaremetal(tb.rt)
	if err != nil {
		t.Fatal(err)
	}
	// Invoking an accelerator that is not loaded fails: baremetal
	// applications reconfigure explicitly.
	if _, err := bm.Invoke("rt_1", "gemm", [][]float64{{1}, {1}}); err == nil {
		t.Fatal("baremetal demand-swap accepted")
	}
	if err := bm.Reconfigure("rt_1", "gemm"); err != nil {
		t.Fatal(err)
	}
	loaded, err := bm.Loaded("rt_1")
	if err != nil {
		t.Fatal(err)
	}
	if loaded != "gemm" {
		t.Fatalf("loaded: %q", loaded)
	}
	res, err := bm.Invoke("rt_1", "gemm", [][]float64{{1, 0, 0, 1}, {9, 8, 7, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out[0][0] != 9 || res.Out[0][3] != 6 {
		t.Fatalf("gemm via baremetal: %v", res.Out[0])
	}
	if bm.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	// Unknown tile.
	if err := bm.Reconfigure("ghost", "fft"); err == nil {
		t.Fatal("unknown tile accepted")
	}
	if _, err := NewBaremetal(nil); err == nil {
		t.Fatal("nil runtime accepted")
	}
}

func TestBaremetalRejectsBusyPRC(t *testing.T) {
	tb := newTestbed(t)
	bm, err := NewBaremetal(tb.rt)
	if err != nil {
		t.Fatal(err)
	}
	// Start a Linux-manager reconfiguration but do not drain the engine:
	// the PRC is mid-flight.
	tb.rt.RequestReconfig("rt_1", "gemm", nil)
	for i := 0; i < 3 && tb.eng.Pending() > 0; i++ {
		tb.eng.Step()
	}
	if !tb.rt.prcBusy {
		t.Skip("PRC not busy at this point in the sequence")
	}
	if err := bm.Reconfigure("rt_1", "sort"); err == nil {
		t.Fatal("baremetal driver queued behind a busy PRC")
	}
	tb.drain()
}

// TestDrainBeforeSwapAblation demonstrates why the manager forces
// callers to wait for the accelerator to drain (Section V): with the
// discipline disabled, a swap lands mid-execution and the in-flight
// invocation is aborted.
func TestDrainBeforeSwapAblation(t *testing.T) {
	// Safe mode: invocation and swap interleave correctly.
	tb := newTestbed(t)
	var invokeErr, swapErr error
	invoked := false
	tb.rt.InvokeOn("rt_1", "fft", [][]float64{make([]float64, 4096)}, func(r *InvokeResult, err error) {
		invokeErr = err
		invoked = true
	})
	tb.rt.RequestReconfig("rt_1", "gemm", func(err error) { swapErr = err })
	tb.drain()
	if !invoked || invokeErr != nil || swapErr != nil {
		t.Fatalf("safe mode: invoked=%v invokeErr=%v swapErr=%v", invoked, invokeErr, swapErr)
	}
	if loaded, _ := tb.rt.Loaded("rt_1"); loaded != "gemm" {
		t.Fatalf("safe mode final state: %q", loaded)
	}

	// Ablated mode: the same schedule aborts the invocation.
	reg := accel.Default()
	cfg2 := DefaultConfig()
	cfg2.UnsafeImmediateSwap = true
	d, err := socgen.Elaborate(&socgen.Config{
		Name: "tb2", Board: "VC707", Cols: 2, Rows: 2, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "rt_1", Kind: tile.Reconf, AccelName: "fft", Pos: noc.Coord{X: 1, Y: 1}},
		},
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := flow.FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	rt, err := New(eng, d, reg, plan, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, map[string][]string{"rt_1": {"fft", "gemm"}}, reg, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for acc, bs := range bss["rt_1"] {
		if err := rt.RegisterBitstream("rt_1", acc, bs); err != nil {
			t.Fatal(err)
		}
	}
	var abortErr error
	done := false
	// A long FFT (64k samples) so the swap lands mid-execution.
	rt.InvokeOn("rt_1", "fft", [][]float64{make([]float64, 65536)}, func(r *InvokeResult, err error) {
		abortErr = err
		done = true
	})
	rt.RequestReconfig("rt_1", "gemm", nil)
	eng.Run(0)
	if !done {
		t.Fatal("invocation never resolved")
	}
	if abortErr == nil || !strings.Contains(abortErr.Error(), "swapped out") {
		t.Fatalf("unsafe mode should abort the in-flight invocation, got %v", abortErr)
	}
}

// TestSharedDMAPlaneSlowsReconfig: routing bitstream fetches over the
// memory-response plane makes them contend with accelerator DMA.
func TestSharedDMAPlaneSlowsReconfig(t *testing.T) {
	run := func(shared bool) sim.Time {
		reg := accel.Default()
		cfg := DefaultConfig()
		cfg.SharedDMAPlane = shared
		d, err := socgen.Elaborate(&socgen.Config{
			Name: "tb3", Board: "VC707", Cols: 2, Rows: 2, FreqHz: 78e6,
			Tiles: []tile.Tile{
				{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
				{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
				{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 0, Y: 1}},
				{Name: "rt_1", Kind: tile.Reconf, AccelName: "fft", Pos: noc.Coord{X: 1, Y: 1}},
			},
		}, reg)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := flow.FloorplanDesign(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		rt, err := New(eng, d, reg, plan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, map[string][]string{"rt_1": {"fft", "gemm"}}, reg, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		for acc, bs := range bss["rt_1"] {
			if err := rt.RegisterBitstream("rt_1", acc, bs); err != nil {
				t.Fatal(err)
			}
		}
		// Saturate the memory-response plane on the aux tile's row with
		// a big DMA burst, then reconfigure: only the shared-plane
		// configuration contends with it. (mem -> aux is the bitstream
		// fetch path.)
		if _, err := rt.Network().Transfer(noc.PlaneMemRsp, noc.Coord{X: 1, Y: 0}, noc.Coord{X: 0, Y: 1}, 4<<20); err != nil {
			t.Fatal(err)
		}
		rt.RequestReconfig("rt_1", "gemm", nil)
		eng.Run(0)
		return rt.Stats().ReconfigTime
	}
	dedicated := run(false)
	shared := run(true)
	if shared <= dedicated {
		t.Fatalf("shared plane should be slower: %v vs %v", shared, dedicated)
	}
}

func TestLookupErrors(t *testing.T) {
	tb := newTestbed(t)
	if _, err := tb.rt.Loaded("ghost"); err == nil {
		t.Fatal("unknown tile Loaded accepted")
	}
	if _, err := tb.rt.Driver("ghost"); err == nil {
		t.Fatal("unknown tile Driver accepted")
	}
	if _, err := tb.rt.RegisteredBitstreams("ghost"); err == nil {
		t.Fatal("unknown tile RegisteredBitstreams accepted")
	}
	var invoked bool
	tb.rt.InvokeOn("ghost", "fft", nil, func(_ *InvokeResult, err error) {
		invoked = true
		if err == nil {
			t.Error("unknown tile invocation accepted")
		}
	})
	if !invoked {
		t.Fatal("callback not delivered")
	}
	tb.rt.InvokeOn("rt_1", "warp-drive", nil, func(_ *InvokeResult, err error) {
		if err == nil {
			t.Error("unknown accelerator invocation accepted")
		}
	})
	tb.rt.RunOnCPU("warp-drive", nil, func(_ *InvokeResult, err error) {
		if err == nil {
			t.Error("unknown CPU kernel accepted")
		}
	})
}

func TestTimelineRecordsSwaps(t *testing.T) {
	tb := newTestbed(t)
	tb.rt.RequestReconfig("rt_1", "gemm", nil)
	tb.rt.RequestReconfig("rt_1", "sort", nil)
	tb.drain()
	tl := tb.rt.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline entries: %d", len(tl))
	}
	if tl[0].Accel != "gemm" || tl[1].Accel != "sort" {
		t.Fatalf("timeline order: %v", tl)
	}
	for _, ev := range tl {
		if ev.End <= ev.Start || ev.Bytes <= 0 || ev.Tile != "rt_1" {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
	// The snapshot is a copy.
	tl[0].Accel = "mutated"
	if tb.rt.Timeline()[0].Accel == "mutated" {
		t.Fatal("Timeline exposes internal state")
	}
}

func TestCoalescedDuplicateSwaps(t *testing.T) {
	tb := newTestbed(t)
	done := 0
	for i := 0; i < 3; i++ {
		tb.rt.RequestReconfig("rt_1", "gemm", func(err error) {
			if err != nil {
				t.Error(err)
			}
			done++
		})
	}
	tb.drain()
	if done != 3 {
		t.Fatalf("callbacks delivered: %d", done)
	}
	if got := tb.rt.Stats().Reconfigurations; got != 1 {
		t.Fatalf("duplicate requests should coalesce into one swap, got %d", got)
	}
}

// TestRegisteredBitstreamsSorted pins the listing order. The staging
// table is a map; the fold used to return raw map iteration order, so
// the listing shuffled between calls (regression). Repeated calls make
// the old behavior fail with high probability.
func TestRegisteredBitstreamsSorted(t *testing.T) {
	tb := newTestbed(t)
	want := []string{"fft", "gemm", "sort"}
	for i := 0; i < 32; i++ {
		names, err := tb.rt.RegisteredBitstreams("rt_1")
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != len(want) {
			t.Fatalf("call %d: %v, want %v", i, names, want)
		}
		for j := range want {
			if names[j] != want[j] {
				t.Fatalf("call %d: unsorted listing %v, want %v", i, names, want)
			}
		}
	}
}
