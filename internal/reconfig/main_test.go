package reconfig

import (
	"testing"

	"presp/internal/leakcheck"
)

// TestMain fails the package's test run if the reconfiguration
// manager's retry/recovery paths leak a goroutine.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
