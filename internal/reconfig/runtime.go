// Package reconfig implements the PR-ESP software stack of Section V on
// top of the simulated hardware: a runtime manager that schedules and
// synchronizes reconfiguration requests through a workqueue, swaps
// accelerator drivers during reconfiguration, drives the decoupler and
// the DFX controller / ICAP in the auxiliary tile, and exposes the
// user-space API applications invoke accelerators through.
//
// The manager runs against the discrete-event engine: every hardware
// action (DMA over the NoC, ICAP programming, interrupts) advances
// virtual time, and the power meter integrates per-component power so
// the Fig 4 energy-per-frame evaluation falls out of the same machinery.
package reconfig

import (
	"fmt"
	"sort"
	"time"

	"presp/internal/accel"
	"presp/internal/bitstream"
	"presp/internal/faultinject"
	"presp/internal/floorplan"
	"presp/internal/fpga"
	"presp/internal/noc"
	"presp/internal/obs"
	"presp/internal/sim"
	"presp/internal/socgen"
	"presp/internal/tile"
)

// Config tunes the runtime.
type Config struct {
	// CPUSlowdown is the software-fallback factor: a kernel without an
	// allocated accelerator runs on the processor this many times slower
	// than its accelerator latency model.
	CPUSlowdown float64
	// DriverSwapDelay is the kernel-side cost of unregistering the old
	// accelerator driver and registering the new one.
	DriverSwapDelay sim.Time
	// DecoupleDelay is the decoupler engage/disengage latency.
	DecoupleDelay sim.Time
	// IdlePowerFraction is the clock-tree power of a configured but idle
	// accelerator, as a fraction of its active power.
	IdlePowerFraction float64
	// ReconfigPowerW is the board power drawn while the ICAP programs.
	ReconfigPowerW float64
	// CPUPowerW is the processor's active power when running fallback
	// kernels.
	CPUPowerW float64
	// StaticPowerW is the always-on baseline power of the SoC.
	StaticPowerW float64
	// ContentionPowerW scales the superlinear NoC/memory power term:
	// with k accelerators active concurrently the uncore draws
	// ContentionPowerW · k² (bandwidth contention burns energy in
	// retries and stalls; this is what makes wide SoCs fast but
	// inefficient, the Fig 4 trade-off).
	ContentionPowerW float64
	// ICAPEffectiveBps is the end-to-end configuration throughput of the
	// DFXC path (bitstream DMA over the NoC, AXI adapters, ICAP). The
	// raw ICAPE2 primitive sustains 400 MB/s, but the paper's path
	// fetches beat-by-beat through the auxiliary tile's adapters; zero
	// selects the device's raw ICAP bandwidth.
	ICAPEffectiveBps float64
	// ReconfigEnergyPerByte is the effective energy cost of configuring
	// one bitstream byte, covering the DRAM fetch, the configuration
	// logic and the transient of re-initializing the region's clock
	// tree. It is calibrated so the per-frame configuration traffic of
	// Table VI dominates the energy split the way Fig 4 reports.
	ReconfigEnergyPerByte float64
	// UnsafeImmediateSwap disables the manager's drain-before-swap
	// discipline: reconfiguration requests no longer wait for the
	// accelerator in the tile to finish executing. This exists only for
	// the ablation that demonstrates why Section V forces the calling
	// thread to wait — in-flight invocations on the tile are aborted
	// with an error when the module is swapped under them.
	UnsafeImmediateSwap bool
	// SharedDMAPlane routes the DFXC's bitstream fetches over the memory
	// response plane instead of the dedicated DMA plane, making
	// reconfiguration traffic contend with accelerator DMA (the NoC
	// plane-count ablation).
	SharedDMAPlane bool
	// PerTilePowerW is the fixed clock-spine and socket power each
	// reconfigurable tile draws while it holds a configured module —
	// linear in the tile count, on top of the area-driven leakage.
	PerTilePowerW float64
	// LeakagePerKLUTW and LeakageExponent form the configured-fabric
	// leakage model: the SoC draws
	//
	//	P = LeakagePerKLUTW · (Σ configured pblock area in kLUT)^LeakageExponent
	//
	// while modules are loaded. The superlinear exponent models the
	// thermal feedback of powering more fabric (leakage grows with die
	// temperature, which grows with powered area); it is what makes
	// SoCs with fewer, smaller reconfigurable regions more
	// energy-efficient per frame even when they run longer — the Fig 4
	// trade-off.
	LeakagePerKLUTW float64
	LeakageExponent float64
	// MaxReconfigRetries bounds how many times the manager re-attempts
	// a partial reconfiguration whose hardware sequence failed
	// (transient ICAP or DMA faults) before reporting the error to the
	// caller. Zero disables retries.
	MaxReconfigRetries int
	// RetryBackoff is the base delay before re-attempting a failed
	// reconfiguration: attempt k waits k·RetryBackoff. Linear backoff
	// in virtual time keeps the schedule deterministic.
	RetryBackoff sim.Time
	// TileDeadThreshold declares a tile dead after this many
	// consecutive reconfiguration failures, each having exhausted its
	// retries. Invocations on a dead tile gracefully degrade to the
	// CPU fallback; a successful reconfiguration resets the count.
	// Zero never declares tiles dead.
	TileDeadThreshold int
	// ScrubInterval, when positive, arms the configuration-memory
	// readback scrubber: every interval of virtual time the runtime
	// CRC-compares each tile's resident configuration image against its
	// golden bitstream and repairs mismatches by re-writing the golden
	// partial bitstream through the ordinary ICAP path (decouple, DMA
	// fetch, program, recouple), arbitrated against demand
	// reconfigurations by the single PRC. Zero disables scrubbing:
	// upsets then accumulate until a demand swap happens to reprogram
	// the tile.
	ScrubInterval sim.Time
	// SEUCheckInterval is the virtual-time period of the per-tile
	// config-memory sample ticks that drive seu fault-plan rules (each
	// tick is one StableInjector occurrence per tile). Zero derives it
	// from ScrubInterval/4, falling back to 50µs — scrubbing coarser
	// than the upset process keeps multi-bit accumulation observable.
	SEUCheckInterval sim.Time
	// FaultPlan, when non-nil, arms the deterministic fault injector
	// against this runtime's substrate: NoC transfers (sites: plane
	// and endpoint tile names), decoupler engage/disengage (site: tile
	// name), ICAP programming and fetch CRC corruption (sites: tile
	// and accelerator names), kernel execution (sites: accelerator
	// and tile names) and configuration-memory SEUs (sites: tile and
	// resident accelerator names; seu rules are sampled every
	// SEUCheckInterval of virtual time through a StableInjector, so the
	// upset schedule is invariant under flow worker count).
	FaultPlan *faultinject.Plan
	// Observer, when non-nil, attaches the observability layer: the
	// runtime records every reconfiguration as a Chrome-trace span in
	// virtual time (one lane per tile, with nested fetch/ICAP
	// sub-spans), retry and dead-tile instants, power-rail counter
	// samples and per-plane NoC traffic counters. A nil Observer
	// disables all observation at no cost, and observation never
	// changes simulation results. Trace timestamps are virtual sim.Time
	// microseconds — do not share one tracer with a wall-clock flow
	// run, the time bases differ.
	Observer *obs.Observer
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		CPUSlowdown:           150,
		DriverSwapDelay:       120 * time.Microsecond,
		DecoupleDelay:         2 * time.Microsecond,
		IdlePowerFraction:     0.22,
		ReconfigPowerW:        0.8,
		CPUPowerW:             0.15,
		StaticPowerW:          0.1,
		ContentionPowerW:      2.0,
		ICAPEffectiveBps:      45e6,
		ReconfigEnergyPerByte: 0,
		PerTilePowerW:         3.0,
		LeakagePerKLUTW:       0.0025,
		LeakageExponent:       1.75,
		MaxReconfigRetries:    2,
		RetryBackoff:          20 * time.Microsecond,
		TileDeadThreshold:     3,
	}
}

// tileState tracks the runtime condition of one reconfigurable tile.
type tileState struct {
	t         *tile.Tile
	pos       noc.Coord
	pblock    fpga.Pblock
	loaded    string // configured accelerator ("" = empty)
	driver    string // bound driver ("" = none)
	pending   string // accelerator a queued/in-flight swap will install
	busy      bool   // accelerator executing
	reconfig  bool   // reconfiguration in progress
	dead      bool   // declared dead after repeated reconfig failures
	failures  int    // consecutive exhausted-retry reconfig failures
	waiters   []func()
	bitstream map[string]*bitstream.Bitstream
	// mem is the tile's resident configuration image (nil until the
	// first program); repairPending and detectedAt track an upset the
	// scrubber has detected but not yet repaired.
	mem           *configMem
	repairPending bool
	detectedAt    sim.Time
}

// programConfigMem records a successful ICAP program in the tile's
// config-memory model; programming rewrites the covered frames, so it
// clears any accumulated upsets.
func (ts *tileState) programConfigMem(bs *bitstream.Bitstream) {
	if ts.mem == nil {
		ts.mem = newConfigMem()
	}
	ts.mem.program(bs)
}

// TimelineEvent records one completed partial reconfiguration for
// post-run inspection (what presp-sim prints as the swap timeline).
type TimelineEvent struct {
	// Start and End bound the reconfiguration in virtual time.
	Start, End sim.Time
	// Tile and Accel identify the swap.
	Tile, Accel string
	// Bytes is the configured bitstream size (zero for failures).
	Bytes int
	// Attempts is the number of hardware attempts the event consumed
	// (1 = first try succeeded; retries extend the same event).
	Attempts int
	// Failed marks a reconfiguration that exhausted its retries; Err
	// holds the final error text. Failures are recorded in the
	// timeline precisely so they are observable after the fact.
	Failed bool
	Err    string
	// Repair marks a scrubber-initiated rewrite of the resident module
	// after a detected configuration-memory upset.
	Repair bool
}

// Stats aggregates runtime counters.
type Stats struct {
	// Reconfigurations is the completed partial reconfiguration count.
	Reconfigurations int
	// ReconfigTime is the cumulative reconfiguration latency.
	ReconfigTime sim.Time
	// Invocations counts accelerator runs; CPUFallbacks counts kernels
	// executed in software.
	Invocations  int
	CPUFallbacks int
	// BytesConfigured is the total bitstream bytes pushed through ICAP.
	BytesConfigured int64
	// FailedReconfigs counts reconfigurations that failed after
	// exhausting their retries.
	FailedReconfigs int
	// Retries counts re-attempted reconfiguration hardware sequences.
	Retries int
	// PrefetchErrors counts speculative loads that failed; no caller
	// waits on a prefetch, so this counter is the only place the
	// errors surface.
	PrefetchErrors int
	// DeadTiles counts tiles declared dead (their kernels degrade to
	// the CPU fallback).
	DeadTiles int
	// Scrub aggregates the configuration-memory health counters.
	Scrub ScrubStats
}

// Runtime is the reconfiguration manager bound to one simulated SoC.
type Runtime struct {
	eng    *sim.Engine
	net    *noc.Network
	meter  *sim.PowerMeter
	design *socgen.Design
	reg    *accel.Registry
	cfg    Config

	memPos, auxPos, cpuPos noc.Coord
	tiles                  map[string]*tileState
	// tileNames holds the reconfigurable tile names sorted: every loop
	// that folds floats across tiles iterates this slice, never the
	// map, so energy totals do not depend on map iteration order.
	tileNames []string
	// posName labels mesh coordinates with tile names for fault sites.
	posName map[noc.Coord]string
	// inj is the armed fault injector (nil when no FaultPlan is set).
	inj *faultinject.Injector

	// Config-memory health subsystem (see confmem.go). seuInj evaluates
	// seu rules order-independently; the tick chain is parked whenever
	// it would be the only pending event, so Engine.Run(0) still drains.
	healthArmed     bool
	healthScheduled bool
	healthTickNo    int64
	seuTick         sim.Time
	scrubEvery      int
	seuInj          *faultinject.StableInjector
	seuSeed         uint64
	// appInFlight counts outstanding application requests (demand
	// reconfigs, invocations, CPU runs). The health tick chain runs
	// only while it is positive — scrub repairs deliberately do not
	// count, so a storm cannot sustain itself on its own ICAP traffic.
	appInFlight int

	// The single DFXC serializes reconfigurations; queued requests wait
	// in the kernel workqueue.
	prcBusy   bool
	workqueue []*request

	cpuBusy    bool
	cpuWaiters []func()

	activeAccels int
	stats        Stats
	timeline     []TimelineEvent

	// Observability, resolved once in New. All fields are nil-safe, so
	// without an observer every record call is a no-op; arg-map
	// allocations are additionally guarded on tr != nil.
	tr         *obs.Tracer
	mReconfigs *obs.Counter
	mRetries   *obs.Counter
	mFailures  *obs.Counter
	mDeadTiles *obs.Counter
	mBytes     *obs.Counter
	// Scrubber instruments: counters mirror Stats.Scrub, and the MTTR
	// histogram observes detection-to-repair latency in virtual µs.
	mScrubCycles        *obs.Counter
	mScrubUpsets        *obs.Counter
	mScrubDetected      *obs.Counter
	mScrubRepaired      *obs.Counter
	mScrubHealed        *obs.Counter
	mScrubUncorrectable *obs.Counter
	hScrubMTTR          *obs.Histogram
	// tileTID maps tile names to trace lanes (manager events go to
	// lane 0, tiles to 1..n in sorted-name order).
	tileTID map[string]int
}

type request struct {
	tileName string
	accName  string
	// repair marks a scrubber-initiated rewrite of the golden image the
	// tile already holds (demand swaps always change the module).
	repair bool
	done   func(error)
}

// New builds a runtime for design d with accelerator registry reg and
// floorplan plan (the pblocks size the partial bitstream path).
func New(eng *sim.Engine, d *socgen.Design, reg *accel.Registry, plan *floorplan.Plan, cfg Config) (*Runtime, error) {
	if eng == nil || d == nil || reg == nil || plan == nil {
		return nil, fmt.Errorf("reconfig: nil dependency")
	}
	if cfg.CPUSlowdown <= 1 {
		return nil, fmt.Errorf("reconfig: CPU slowdown %.1f must exceed 1", cfg.CPUSlowdown)
	}
	net, err := noc.New(eng, noc.Config{Cols: d.Cfg.Cols, Rows: d.Cfg.Rows, FreqHz: d.Cfg.FreqHz})
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		eng:     eng,
		net:     net,
		meter:   sim.NewPowerMeter(eng),
		design:  d,
		reg:     reg,
		cfg:     cfg,
		tiles:   make(map[string]*tileState),
		posName: make(map[noc.Coord]string),
	}
	if cfg.FaultPlan != nil {
		inj, err := faultinject.New(*cfg.FaultPlan)
		if err != nil {
			return nil, err
		}
		r.inj = inj
		net.SetFaultHook(&nocFaultAdapter{r: r})
	}
	if cfg.ScrubInterval < 0 {
		return nil, fmt.Errorf("reconfig: negative scrub interval %v", cfg.ScrubInterval)
	}
	if cfg.SEUCheckInterval < 0 {
		return nil, fmt.Errorf("reconfig: negative SEU check interval %v", cfg.SEUCheckInterval)
	}
	if err := r.armHealth(); err != nil {
		return nil, err
	}
	var haveMem, haveAux, haveCPU bool
	for i := range d.Cfg.Tiles {
		t := &d.Cfg.Tiles[i]
		r.posName[t.Pos] = t.Name
		switch t.Kind {
		case tile.Mem:
			if !haveMem {
				r.memPos, haveMem = t.Pos, true
			}
		case tile.Aux:
			r.auxPos, haveAux = t.Pos, true
		case tile.CPU:
			r.cpuPos, haveCPU = t.Pos, true
		case tile.Reconf:
			rp, err := d.FindRP(t.Name)
			if err != nil {
				return nil, err
			}
			pb, ok := plan.Pblocks[rp.Name]
			if !ok {
				return nil, fmt.Errorf("reconfig: floorplan has no pblock for %s", rp.Name)
			}
			if t.ReconfCPU && !haveCPU {
				r.cpuPos, haveCPU = t.Pos, true
			}
			ts := &tileState{
				t: t, pos: t.Pos, pblock: pb,
				bitstream: make(map[string]*bitstream.Bitstream),
			}
			// The full bitstream configures each tile's initial
			// accelerator at boot, and the static device tree binds its
			// driver; only later swaps go through the manager.
			if t.AccelName != "" && !t.ReconfCPU {
				ts.loaded = t.AccelName
				ts.driver = t.AccelName
			}
			r.tiles[t.Name] = ts
		}
	}
	if !haveMem || !haveAux || !haveCPU {
		return nil, fmt.Errorf("reconfig: design %s lacks MEM/AUX/CPU tiles", d.Cfg.Name)
	}
	for n := range r.tiles {
		r.tileNames = append(r.tileNames, n)
	}
	sort.Strings(r.tileNames)
	// Resolve the observability instruments before the first power
	// write below, so even boot-time power samples land in the trace.
	mreg := cfg.Observer.Metrics()
	r.tr = cfg.Observer.Tracer()
	r.mReconfigs = mreg.Counter("reconfig_reconfigurations_total")
	r.mRetries = mreg.Counter("reconfig_retries_total")
	r.mFailures = mreg.Counter("reconfig_failures_total")
	r.mDeadTiles = mreg.Counter("reconfig_dead_tiles_total")
	r.mBytes = mreg.Counter("reconfig_bytes_total")
	r.mScrubCycles = mreg.Counter("scrub_cycles_total")
	r.mScrubUpsets = mreg.Counter("scrub_upsets_total")
	r.mScrubDetected = mreg.Counter("scrub_detected_total")
	r.mScrubRepaired = mreg.Counter("scrub_repaired_total")
	r.mScrubHealed = mreg.Counter("scrub_healed_total")
	r.mScrubUncorrectable = mreg.Counter("scrub_uncorrectable_total")
	r.hScrubMTTR = mreg.Histogram("scrub_mttr_usec", 10, 50, 100, 500, 1000, 5000, 10000, 100000, 1e6)
	net.SetObserver(cfg.Observer)
	if r.tr != nil {
		r.tr.SetProcessName("presp runtime (virtual time)")
		r.tr.SetThreadName(0, "manager")
		r.tileTID = make(map[string]int, len(r.tileNames))
		for i, n := range r.tileNames {
			r.tileTID[n] = i + 1
			r.tr.SetThreadName(i+1, "tile "+n)
		}
	}
	if err := r.meter.SetPower("static", cfg.StaticPowerW); err != nil {
		return nil, err
	}
	for _, n := range r.tileNames {
		r.setTileIdlePower(r.tiles[n])
	}
	return r, nil
}

// trackApp marks one application request in flight for the health tick
// chain and returns a done callback that releases it (exactly once —
// re-entrant paths wrap the already-wrapped callback, and each layer
// balances its own increment).
func (r *Runtime) trackApp(done func(error)) func(error) {
	r.appInFlight++
	released := false
	return func(err error) {
		if !released {
			released = true
			r.appInFlight--
		}
		done(err)
	}
}

// trackAppInvoke is trackApp for the invocation callback signature.
func (r *Runtime) trackAppInvoke(done func(*InvokeResult, error)) func(*InvokeResult, error) {
	r.appInFlight++
	released := false
	return func(res *InvokeResult, err error) {
		if !released {
			released = true
			r.appInFlight--
		}
		done(res, err)
	}
}

// nocFaultAdapter translates NoC operations into fault-injector sites:
// the plane name plus the tile names at the endpoints, so plans can
// target "every DMA-plane packet" or "anything touching rt_2" alike.
type nocFaultAdapter struct{ r *Runtime }

func (a *nocFaultAdapter) TransferFault(p noc.Plane, src, dst noc.Coord) error {
	return a.r.inj.Check(faultinject.OpTransfer, p.String(), a.r.siteName(src), a.r.siteName(dst))
}

func (a *nocFaultAdapter) DecoupleFault(c noc.Coord) error {
	return a.r.inj.Check(faultinject.OpDecouple, a.r.siteName(c))
}

func (a *nocFaultAdapter) RecoupleFault(c noc.Coord) error {
	return a.r.inj.Check(faultinject.OpRecouple, a.r.siteName(c))
}

// siteName labels a mesh coordinate with its tile name, falling back
// to the coordinate string for unnamed positions.
func (r *Runtime) siteName(c noc.Coord) string {
	if n, ok := r.posName[c]; ok {
		return n
	}
	return c.String()
}

// faultCheck consults the armed injector; with no fault plan it is
// free. Sites order matters only for the fault's label.
func (r *Runtime) faultCheck(op faultinject.Op, sites ...string) error {
	if r.inj == nil {
		return nil
	}
	return r.inj.Check(op, sites...)
}

// FaultsInjected reports how many faults the armed injectors have
// delivered so far (zero without a FaultPlan). SEUs are counted by
// their own stable injector, so they are included here.
func (r *Runtime) FaultsInjected() int {
	return r.inj.Injected() + r.seuInj.InjectedBy(faultinject.OpSEU)
}

// Engine exposes the simulation engine (for scheduling application work).
func (r *Runtime) Engine() *sim.Engine { return r.eng }

// Meter exposes the power meter.
func (r *Runtime) Meter() *sim.PowerMeter { return r.meter }

// Network exposes the NoC (for inspection in tests).
func (r *Runtime) Network() *noc.Network { return r.net }

// Stats returns a snapshot of the runtime counters.
func (r *Runtime) Stats() Stats { return r.stats }

// Timeline returns the completed reconfigurations in completion order.
func (r *Runtime) Timeline() []TimelineEvent {
	out := make([]TimelineEvent, len(r.timeline))
	copy(out, r.timeline)
	return out
}

// Tiles lists the reconfigurable tile names, sorted.
func (r *Runtime) Tiles() []string {
	out := make([]string, len(r.tileNames))
	copy(out, r.tileNames)
	return out
}

// Dead reports whether the manager has declared the tile dead after
// repeated reconfiguration failures.
func (r *Runtime) Dead(tileName string) (bool, error) {
	ts, err := r.tile(tileName)
	if err != nil {
		return false, err
	}
	return ts.dead, nil
}

// Loaded returns the accelerator currently configured in the tile.
func (r *Runtime) Loaded(tileName string) (string, error) {
	ts, err := r.tile(tileName)
	if err != nil {
		return "", err
	}
	return ts.loaded, nil
}

// Driver returns the driver currently bound to the tile.
func (r *Runtime) Driver(tileName string) (string, error) {
	ts, err := r.tile(tileName)
	if err != nil {
		return "", err
	}
	return ts.driver, nil
}

func (r *Runtime) tile(name string) (*tileState, error) {
	ts, ok := r.tiles[name]
	if !ok {
		return nil, fmt.Errorf("reconfig: no reconfigurable tile %q", name)
	}
	return ts, nil
}

// RegisterBitstream stages a partial bitstream for (tile, accelerator):
// the user-space loader mmaps it in DDR and the manager copies it into
// kernel memory, creating the reference between bitstream, physical
// address, target tile and driver (Section V).
func (r *Runtime) RegisterBitstream(tileName, accName string, bs *bitstream.Bitstream) error {
	ts, err := r.tile(tileName)
	if err != nil {
		return err
	}
	if bs == nil || bs.Size() == 0 {
		return fmt.Errorf("reconfig: empty bitstream for %s/%s", tileName, accName)
	}
	if bs.Kind != bitstream.Partial {
		return fmt.Errorf("reconfig: %s/%s: full bitstreams cannot be loaded through the PRC", tileName, accName)
	}
	if _, err := r.reg.Lookup(accName); err != nil {
		return err
	}
	if err := bs.Verify(); err != nil {
		return fmt.Errorf("reconfig: %s/%s: %w", tileName, accName, err)
	}
	ts.bitstream[accName] = bs
	// A tile booted with this accelerator got its frames from the full
	// bitstream; registering the matching partial image gives the
	// scrubber its golden reference, so install it as the resident
	// config memory now (later swaps install theirs on ICAP success).
	if ts.loaded == accName && ts.mem == nil {
		ts.programConfigMem(bs)
	}
	return nil
}

// RegisteredBitstreams lists accelerator names staged for a tile, in
// sorted order — the staging table is a map, and folding it unsorted
// would leak map iteration order into status output and tests.
func (r *Runtime) RegisteredBitstreams(tileName string) ([]string, error) {
	ts, err := r.tile(tileName)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ts.bitstream))
	for n := range ts.bitstream {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}
