package reconfig

import (
	"fmt"

	"presp/internal/faultinject"
	"presp/internal/noc"
	"presp/internal/sim"
)

// InvokeResult carries an accelerator invocation's outputs and timing.
type InvokeResult struct {
	// Out is the kernel output (functionally computed).
	Out [][]float64
	// Start and End bound the invocation in virtual time, including any
	// reconfiguration it had to wait for.
	Start, End sim.Time
	// Reconfigured reports whether the call triggered a partial
	// reconfiguration.
	Reconfigured bool
	// OnCPU reports software-fallback execution.
	OnCPU bool
}

// InvokeOn runs accelerator accName on reconfigurable tile tileName with
// the given inputs. If a different accelerator occupies the tile, the
// manager first swaps in the right bitstream (waiting in the workqueue
// behind other requests). done receives the result when the completion
// interrupt arrives.
//
// The timing model follows the loosely-coupled invocation path: config
// registers over the NoC, DMA load of the inputs from the memory tile,
// pipelined execution per the accelerator's latency model, DMA store of
// the outputs, completion interrupt to the processor.
func (r *Runtime) InvokeOn(tileName, accName string, in [][]float64, done func(*InvokeResult, error)) {
	if done == nil {
		done = func(*InvokeResult, error) {}
	}
	done = r.trackAppInvoke(done)
	r.wakeHealth()
	ts, err := r.tile(tileName)
	if err != nil {
		done(nil, err)
		return
	}
	desc, err := r.reg.Lookup(accName)
	if err != nil {
		done(nil, err)
		return
	}
	if desc.Kernel == nil {
		done(nil, fmt.Errorf("reconfig: accelerator %s has no functional model", accName))
		return
	}
	// Graceful degradation: a dead tile's kernels run on the processor.
	// The SoC stays usable — slower, but correct — which is the whole
	// point of the recovery machinery.
	if ts.dead {
		r.RunOnCPU(accName, in, done)
		return
	}
	start := r.eng.Now()
	needSwap := ts.loaded != accName

	// swapFailed handles a reconfiguration error on the invocation
	// path: if the failure killed the tile, degrade to the CPU
	// fallback instead of surfacing the error — otherwise propagate it
	// (the caller may retry; transient faults were already retried by
	// the manager's own policy).
	swapFailed := func(err error) {
		if ts.dead {
			r.RunOnCPU(accName, in, done)
			return
		}
		done(nil, err)
	}

	run := func() {
		// Re-check: another thread may have swapped the tile between
		// our wakeup and now.
		if ts.loaded != accName {
			r.RequestReconfig(tileName, accName, func(err error) {
				if err != nil {
					swapFailed(err)
					return
				}
				r.whenTileIdle(ts, func() { r.execute(ts, accName, in, start, true, done) })
			})
			return
		}
		r.execute(ts, accName, in, start, needSwap, done)
	}
	if needSwap {
		r.RequestReconfig(tileName, accName, func(err error) {
			if err != nil {
				swapFailed(err)
				return
			}
			r.whenTileIdle(ts, run)
		})
	} else {
		r.whenTileIdle(ts, run)
	}
}

// execute performs the invocation proper on a tile already holding the
// right accelerator.
func (r *Runtime) execute(ts *tileState, accName string, in [][]float64, start sim.Time, reconfigured bool, done func(*InvokeResult, error)) {
	if ts.loaded != accName || ts.busy || ts.reconfig {
		// State changed under us; retry through the lock.
		r.InvokeOn(ts.t.Name, accName, in, func(res *InvokeResult, err error) {
			if res != nil {
				res.Start = start
				res.Reconfigured = res.Reconfigured || reconfigured
			}
			done(res, err)
		})
		return
	}
	desc, err := r.reg.Lookup(accName)
	if err != nil {
		done(nil, err)
		return
	}
	ts.busy = true
	r.activeAccels++
	r.updateContentionPower()
	r.mustSetPower("tile."+ts.t.Name, desc.ActivePowerW)

	finish := func(res *InvokeResult, err error) {
		ts.busy = false
		r.activeAccels--
		r.updateContentionPower()
		r.setTileIdlePower(ts)
		if err == nil {
			r.stats.Invocations++
		}
		done(res, err)
		r.releaseTile(ts)
	}

	// Configuration writes (registers) and DMA load of the inputs.
	if _, err := r.net.Transfer(noc.PlaneConfig, r.cpuPos, ts.pos, 64); err != nil {
		finish(nil, err)
		return
	}
	inBytes := tensorBytes(in)
	loadDone, err := r.net.Transfer(noc.PlaneMemRsp, r.memPos, ts.pos, inBytes)
	if err != nil {
		finish(nil, err)
		return
	}
	// Execution latency from the accelerator's cycle model.
	items := largestTensor(in)
	cycles := desc.CyclesPerInvocation(items)
	execDur := sim.Clock(cycles, r.design.Cfg.FreqHz)
	if err := r.eng.At(loadDone+execDur, func() {
		// If the module was swapped out from under the invocation (only
		// possible in the UnsafeImmediateSwap ablation), the result is
		// garbage: abort with an error.
		if ts.loaded != accName || ts.reconfig {
			finish(nil, fmt.Errorf("reconfig: accelerator %s swapped out of tile %s mid-execution", accName, ts.t.Name))
			return
		}
		// Functional execution. An injected kernel fault models a
		// datapath error the accelerator's done register reports.
		if ferr := r.faultCheck(faultinject.OpKernel, accName, ts.t.Name); ferr != nil {
			finish(nil, ferr)
			return
		}
		out, kerr := desc.Kernel.Run(in)
		if kerr != nil {
			finish(nil, kerr)
			return
		}
		// DMA store and completion interrupt.
		storeDone, err := r.net.Transfer(noc.PlaneMemReq, ts.pos, r.memPos, tensorBytes(out))
		if err != nil {
			finish(nil, err)
			return
		}
		intrAt, err := r.net.Transfer(noc.PlaneInterrupt, ts.pos, r.cpuPos, 8)
		if err != nil {
			finish(nil, err)
			return
		}
		end := storeDone
		if intrAt > end {
			end = intrAt
		}
		if err := r.eng.At(end, func() {
			finish(&InvokeResult{Out: out, Start: start, End: r.eng.Now(), Reconfigured: reconfigured}, nil)
		}); err != nil {
			finish(nil, err)
		}
	}); err != nil {
		finish(nil, err)
	}
}

// RunOnCPU executes a kernel in software on the processor tile — the
// fallback for Fig 3 kernels without an allocated accelerator in the
// Table VI partitioning. The processor runs CPUSlowdown times slower
// than the accelerator's pipeline and serializes with other software
// kernels.
func (r *Runtime) RunOnCPU(accName string, in [][]float64, done func(*InvokeResult, error)) {
	if done == nil {
		done = func(*InvokeResult, error) {}
	}
	done = r.trackAppInvoke(done)
	r.wakeHealth()
	desc, err := r.reg.Lookup(accName)
	if err != nil {
		done(nil, err)
		return
	}
	if desc.Kernel == nil {
		done(nil, fmt.Errorf("reconfig: kernel %s has no functional model", accName))
		return
	}
	start := r.eng.Now()
	runNow := func() {
		r.cpuBusy = true
		r.mustSetPower("cpu", r.cfg.CPUPowerW)
		cycles := int64(float64(desc.CyclesPerInvocation(largestTensor(in))) * r.cfg.CPUSlowdown)
		dur := sim.Clock(cycles, r.design.Cfg.FreqHz)
		if err := r.eng.Schedule(dur, func() {
			out, kerr := desc.Kernel.Run(in)
			r.cpuBusy = false
			r.mustSetPower("cpu", 0)
			r.stats.CPUFallbacks++
			if kerr != nil {
				done(nil, kerr)
			} else {
				done(&InvokeResult{Out: out, Start: start, End: r.eng.Now(), OnCPU: true}, nil)
			}
			// Wake the next queued software kernel.
			if len(r.cpuWaiters) > 0 {
				next := r.cpuWaiters[0]
				r.cpuWaiters = r.cpuWaiters[1:]
				next()
			}
		}); err != nil {
			r.cpuBusy = false
			r.mustSetPower("cpu", 0)
			done(nil, err)
		}
	}
	if r.cpuBusy {
		r.cpuWaiters = append(r.cpuWaiters, runNow)
	} else {
		runNow()
	}
}

func tensorBytes(t [][]float64) int {
	n := 0
	for _, s := range t {
		n += len(s) * 8
	}
	if n == 0 {
		n = 8
	}
	return n
}

func largestTensor(t [][]float64) int {
	max := 0
	for _, s := range t {
		if len(s) > max {
			max = len(s)
		}
	}
	return max
}
