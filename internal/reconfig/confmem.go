// Configuration-memory health: the per-tile resident-image model, the
// seeded SEU process that corrupts it over virtual time, and the
// readback scrubber that detects corruption by CRC and repairs it by
// re-writing the golden partial bitstream through the normal ICAP path.
//
// The PR premise cuts both ways: partial reconfiguration lets the SoC
// rewrite configuration memory in the field, and configuration memory
// is exactly what radiation flips in the field. The standard mitigation
// — periodic readback scrubbing plus PR-based repair — is therefore a
// first-class runtime workload here, not a test fixture.
//
// Scheduling: the health subsystem is one self-rescheduling tick chain
// on the simulation engine. A free-running chain would keep the event
// queue non-empty forever and Engine.Run(0) — which every test and the
// application runner use to drain a workload — would never return. The
// chain therefore runs only while application requests (RequestReconfig
// / InvokeOn / RunOnCPU) are in flight, parking when the last one
// completes and unparking at the next entry point. Crucially, the
// scrubber's own repairs do not hold the chain open: a repair is ICAP
// traffic that keeps the event queue busy, so if repairs counted as
// activity, a sufficiently hot SEU storm would sample new upsets
// during its own repairs and sustain itself forever — the drain would
// never terminate. Parking is invisible to the fault schedule: a
// parked engine is an idle engine, virtual time does not advance, and
// no SEU sample ticks are skipped, only deferred.
package reconfig

import (
	"encoding/binary"
	"hash/crc32"
	"hash/fnv"
	"time"

	"presp/internal/bitstream"
	"presp/internal/faultinject"
)

// defaultSEUCheckInterval is the per-tile config-memory sample period
// when neither SEUCheckInterval nor ScrubInterval pins one down.
const defaultSEUCheckInterval = 50 * time.Microsecond

// configMem models one tile's resident configuration memory: the
// golden image the ICAP last programmed plus the set of bit positions
// SEUs have flipped since. Upsets are tracked as a toggle set — a
// second flip of the same bit restores it, exactly like real config
// SRAM — and readback reconstructs the corrupted image on demand.
type configMem struct {
	golden    *bitstream.Bitstream
	goldenCRC uint32
	upsets    map[int]struct{}
}

func newConfigMem() *configMem {
	return &configMem{upsets: make(map[int]struct{})}
}

// program installs a freshly-ICAPed image. Programming rewrites every
// frame the image covers, so it clears all accumulated upsets — this is
// both what a repair does and why an ordinary demand swap incidentally
// heals a corrupted tile.
func (m *configMem) program(bs *bitstream.Bitstream) {
	m.golden = bs
	m.goldenCRC = bs.CRC()
	m.upsets = make(map[int]struct{})
}

// bits returns the image size in bits (the SEU target space).
func (m *configMem) bits() int {
	if m.golden == nil {
		return 0
	}
	return len(m.golden.Data) * 8
}

// flip toggles one bit of the resident image.
func (m *configMem) flip(bit int) {
	if _, on := m.upsets[bit]; on {
		delete(m.upsets, bit)
		return
	}
	m.upsets[bit] = struct{}{}
}

// corrupted reports whether the resident image differs from golden.
func (m *configMem) corrupted() bool { return len(m.upsets) > 0 }

// readback reconstructs the resident image as configuration readback
// would see it: the golden payload with every upset bit applied.
func (m *configMem) readback() []byte {
	out := make([]byte, len(m.golden.Data))
	copy(out, m.golden.Data)
	for bit := range m.upsets {
		if byteIdx := bit / 8; byteIdx < len(out) {
			out[byteIdx] ^= 1 << (bit % 8)
		}
	}
	return out
}

// readbackCRC is the CRC-32 of the readback image — what the scrubber
// compares against the golden CRC. Any odd number of flipped bits
// changes a CRC-32, so detection never misses live corruption.
func (m *configMem) readbackCRC() uint32 {
	if !m.corrupted() {
		return m.goldenCRC
	}
	return crc32.ChecksumIEEE(m.readback())
}

// frameBits is the bit width of one configuration frame in this image.
func (m *configMem) frameBits() int {
	if m.golden == nil || m.golden.Frames <= 0 {
		return 0
	}
	fb := m.bits() / m.golden.Frames
	if fb <= 0 {
		fb = 1
	}
	return fb
}

// upsetFrames counts the distinct configuration frames holding at
// least one upset bit — the frame-granular damage extent.
func (m *configMem) upsetFrames() int {
	fb := m.frameBits()
	if fb == 0 {
		return 0
	}
	frames := make(map[int]struct{}, len(m.upsets))
	for bit := range m.upsets {
		frames[bit/fb] = struct{}{}
	}
	return len(frames)
}

// ScrubStats aggregates the configuration-memory health counters.
type ScrubStats struct {
	// Cycles counts completed scrub passes over all tiles.
	Cycles int
	// Checks counts per-tile readback CRC comparisons.
	Checks int
	// Upsets counts injected SEU bit flips delivered to resident images.
	Upsets int
	// Detected counts tiles a scrub pass found corrupted.
	Detected int
	// Repaired counts repairs completed by re-writing the golden
	// partial bitstream through the ICAP.
	Repaired int
	// Healed counts detections whose corruption was gone by the time
	// the repair reached the tile — a demand swap reprogrammed the
	// partition first, or a second SEU flipped the same bit back.
	Healed int
	// Uncorrectable counts repairs that failed after exhausting the
	// manager's retry policy; repeated uncorrectable repairs escalate
	// to ErrTileDead through the ordinary dead-tile machinery.
	Uncorrectable int
}

// ConfigHealth is one tile's configuration-memory state snapshot.
type ConfigHealth struct {
	// Tile and Loaded identify the partition and its resident module.
	Tile, Loaded string
	// Frames is the configuration frame count of the resident image
	// (zero before the first program).
	Frames int
	// UpsetBits and UpsetFrames measure live corruption.
	UpsetBits, UpsetFrames int
	// GoldenCRC and ReadbackCRC are the programmed image's CRC-32 and
	// the CRC-32 configuration readback sees now; they differ exactly
	// when Corrupted.
	GoldenCRC, ReadbackCRC uint32
	// Corrupted reports a golden/readback mismatch.
	Corrupted bool
	// RepairPending reports a detected upset whose repair has not
	// completed yet.
	RepairPending bool
}

// ConfigHealth returns the tile's configuration-memory snapshot.
func (r *Runtime) ConfigHealth(tileName string) (ConfigHealth, error) {
	ts, err := r.tile(tileName)
	if err != nil {
		return ConfigHealth{}, err
	}
	h := ConfigHealth{Tile: tileName, Loaded: ts.loaded, RepairPending: ts.repairPending}
	if ts.mem == nil || ts.mem.golden == nil {
		return h, nil
	}
	h.Frames = ts.mem.golden.Frames
	h.UpsetBits = len(ts.mem.upsets)
	h.UpsetFrames = ts.mem.upsetFrames()
	h.GoldenCRC = ts.mem.goldenCRC
	h.ReadbackCRC = ts.mem.readbackCRC()
	h.Corrupted = ts.mem.corrupted()
	return h, nil
}

// ScrubStats returns a snapshot of the scrubber counters.
func (r *Runtime) ScrubStats() ScrubStats { return r.stats.Scrub }

// planHasSEU reports whether any rule targets config memory.
func planHasSEU(p *faultinject.Plan) bool {
	if p == nil {
		return false
	}
	for _, rule := range p.Rules {
		if rule.Op == faultinject.OpSEU {
			return true
		}
	}
	return false
}

// seuBit picks the bit an SEU flips: a pure hash of (seed, tile, tick
// ordinal) over the image's bit space. Like the StableInjector's
// draws, the choice depends on nothing that happened on other tiles,
// so the corruption pattern — and therefore every post-repair CRC — is
// identical for any flow worker count and any event interleaving.
func seuBit(seed uint64, tileName string, ordinal int64, bits int) int {
	if bits <= 0 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h.Write(buf[:])
	h.Write([]byte(tileName))
	h.Write([]byte{0xff})
	binary.LittleEndian.PutUint64(buf[:], uint64(ordinal))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(bits))
}

// wakeHealth unparks the health tick chain. Every runtime entry point
// calls it; while the chain is live the call is a no-op.
func (r *Runtime) wakeHealth() {
	if !r.healthArmed || r.healthScheduled {
		return
	}
	r.healthScheduled = true
	if err := r.eng.Schedule(r.seuTick, r.healthTick); err != nil {
		r.healthScheduled = false
	}
}

// healthTick is one config-memory sample: deliver due SEUs, run a
// scrub pass every scrubEvery-th tick, then re-arm — but only while
// application requests are still in flight. Repairs spawned by this
// very tick do not count (see the file comment: a storm must not
// sustain itself through its own repair traffic); they finish on
// whatever events they already scheduled after the chain parks.
func (r *Runtime) healthTick() {
	r.healthScheduled = false
	r.healthTickNo++
	r.seuPass()
	if r.scrubEvery > 0 && r.healthTickNo%int64(r.scrubEvery) == 0 {
		r.scrubPass()
	}
	if r.appInFlight > 0 && r.eng.Pending() > 0 {
		r.wakeHealth()
	}
}

// seuPass samples every tile's config memory once against the seu
// rules. Tiles mid-reconfiguration are skipped: the ICAP is rewriting
// their frames, and the swap installs a fresh image anyway. Dead and
// never-programmed tiles have no resident image to corrupt.
func (r *Runtime) seuPass() {
	if r.seuInj == nil {
		return
	}
	for _, name := range r.tileNames {
		ts := r.tiles[name]
		if ts.mem == nil || ts.mem.golden == nil || ts.dead || ts.reconfig || ts.loaded == "" {
			continue
		}
		if ferr := r.seuInj.Check(faultinject.OpSEU, name, ts.loaded); ferr != nil {
			bit := seuBit(r.seuSeed, name, r.healthTickNo, ts.mem.bits())
			ts.mem.flip(bit)
			r.stats.Scrub.Upsets++
			r.mScrubUpsets.Inc()
			if r.tr != nil {
				r.tr.InstantAt("scrub", "seu "+name, r.tileTID[name], vusec(r.eng.Now()),
					map[string]any{"bit": bit, "upset_bits": len(ts.mem.upsets)})
			}
		}
	}
}

// scrubPass is one readback cycle: compare every eligible tile's
// readback CRC against its golden CRC and schedule a repair on
// mismatch. Tiles with a repair already pending are skipped so one
// upset is detected once, not once per cycle until the repair lands.
func (r *Runtime) scrubPass() {
	r.stats.Scrub.Cycles++
	r.mScrubCycles.Inc()
	for _, name := range r.tileNames {
		ts := r.tiles[name]
		if ts.mem == nil || ts.mem.golden == nil || ts.dead || ts.reconfig || ts.repairPending {
			continue
		}
		r.stats.Scrub.Checks++
		if ts.mem.readbackCRC() == ts.mem.goldenCRC {
			continue
		}
		r.stats.Scrub.Detected++
		r.mScrubDetected.Inc()
		ts.repairPending = true
		ts.detectedAt = r.eng.Now()
		if r.tr != nil {
			r.tr.InstantAt("scrub", "detect "+name, r.tileTID[name], vusec(r.eng.Now()),
				map[string]any{"upset_bits": len(ts.mem.upsets), "upset_frames": ts.mem.upsetFrames(),
					"readback_crc": ts.mem.readbackCRC(), "golden_crc": ts.mem.goldenCRC})
		}
		r.scheduleRepair(ts, name)
	}
}

// scheduleRepair queues a PR-based repair: re-write the golden partial
// bitstream of the module the tile holds through the ordinary
// workqueue. The repair waits for the tile to drain (an executing
// accelerator finishes first) and for the single PRC (an in-flight
// demand reconfiguration completes first) — the same arbitration every
// swap obeys, which is what keeps scrub-vs-reconfig interleaving
// deterministic. Failures funnel through failReconfig, so the retry,
// backoff and dead-tile escalation policies apply to repairs verbatim.
func (r *Runtime) scheduleRepair(ts *tileState, tileName string) {
	accName := ts.loaded
	detectedAt := ts.detectedAt
	done := func(err error) {
		ts.repairPending = false
		if err != nil {
			r.stats.Scrub.Uncorrectable++
			r.mScrubUncorrectable.Inc()
			if r.tr != nil {
				r.tr.InstantAt("scrub", "uncorrectable "+tileName, r.tileTID[tileName],
					vusec(r.eng.Now()), map[string]any{"error": err.Error()})
			}
			return
		}
		r.stats.Scrub.Repaired++
		r.mScrubRepaired.Inc()
		mttr := r.eng.Now() - detectedAt
		r.hScrubMTTR.Observe(float64(mttr.Microseconds()))
		if r.tr != nil {
			r.tr.InstantAt("scrub", "repair "+tileName, r.tileTID[tileName],
				vusec(r.eng.Now()), map[string]any{"accelerator": accName, "mttr_usec": mttr.Microseconds()})
		}
	}
	r.whenTileIdle(ts, func() {
		if ts.dead {
			done(&ErrTileDead{Tile: tileName})
			return
		}
		if ts.loaded != accName || ts.mem == nil || !ts.mem.corrupted() {
			// Superseded: a demand swap reprogrammed the partition while
			// the repair waited, or a later SEU flipped the bit back.
			// Either way config memory matches golden again — count the
			// heal, skip the ICAP traffic.
			ts.repairPending = false
			r.stats.Scrub.Healed++
			r.mScrubHealed.Inc()
			return
		}
		// Enqueue directly: RequestReconfig would short-circuit a request
		// for the module the tile already holds, and a repair is exactly
		// that — same module, fresh frames.
		ts.reconfig = true
		ts.pending = accName
		r.workqueue = append(r.workqueue, &request{tileName: tileName, accName: accName, repair: true, done: done})
		r.pumpWorkqueue()
	})
}

// armHealth wires the health subsystem during New: resolve the tick
// period, the scrub cadence and the SEU injector. The chain itself
// starts parked; the first runtime entry point unparks it.
func (r *Runtime) armHealth() error {
	hasSEU := planHasSEU(r.cfg.FaultPlan)
	if r.cfg.ScrubInterval <= 0 && !hasSEU {
		return nil
	}
	r.seuTick = r.cfg.SEUCheckInterval
	if r.seuTick <= 0 {
		if r.cfg.ScrubInterval > 0 {
			r.seuTick = r.cfg.ScrubInterval / 4
		}
		if r.seuTick <= 0 {
			r.seuTick = defaultSEUCheckInterval
		}
	}
	if r.cfg.ScrubInterval > 0 {
		r.scrubEvery = int((r.cfg.ScrubInterval + r.seuTick - 1) / r.seuTick)
		if r.scrubEvery < 1 {
			r.scrubEvery = 1
		}
	}
	if hasSEU {
		inj, err := faultinject.NewStable(*r.cfg.FaultPlan)
		if err != nil {
			return err
		}
		r.seuInj = inj
		r.seuSeed = r.cfg.FaultPlan.Seed
	}
	r.healthArmed = true
	return nil
}
