package reconfig

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"presp/internal/faultinject"
	"presp/internal/noc"
)

// FuzzFaultPlan throws arbitrary fault-plan strings at the runtime and
// checks the two properties the recovery machinery promises for any
// plan: the run is deterministic (two executions of the same plan are
// byte-identical), and no failure — wherever it lands in the swap
// sequence — wedges the tile (always re-coupled, no residual PRC
// power, no stuck swap state, engine drains).
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), "icap@rt_1:count=1")
	f.Add(uint64(7), "transfer@dma=0.5,crc=0.3")
	f.Add(uint64(9), "decouple@rt_1:count=-1")
	f.Add(uint64(42), "recouple@rt_1:after=1:count=2,kernel@gemm=0.4")
	f.Add(uint64(3), "icap=1.0,crc=1.0,transfer=0.9")
	f.Add(uint64(7), "seu@rt_1=0.01")
	f.Add(uint64(5), "seu@rt_1=0.5,icap@rt_1:count=1")
	f.Add(uint64(11), "seu@rt_1:after=2:count=3,crc=0.2")
	f.Fuzz(func(t *testing.T, seed uint64, spec string) {
		if len(spec) > 128 {
			t.Skip()
		}
		plan, err := faultinject.ParsePlan(fmt.Sprintf("seed=%d,%s", seed, spec))
		if err != nil {
			t.Skip() // malformed plans are rejected at parse time
		}
		run := func() string {
			// Scrubbing is on so seu rules exercise the full
			// detect/repair path, not just the injection site.
			cfg := faultCfg(plan, 1, 2)
			cfg.ScrubInterval = 20 * time.Microsecond
			cfg.SEUCheckInterval = 5 * time.Microsecond
			tb := newFaultTestbed(t, cfg, 1)
			for _, acc := range []string{"gemm", "sort", "fft"} {
				_ = reconfigureSync(tb, "rt_1", acc)
			}
			tb.rt.InvokeOn("rt_1", "sort", [][]float64{{2, 1}}, func(*InvokeResult, error) {})
			tb.drain()

			// Invariants: whatever the plan injected, the tile must not
			// be wedged once the engine drains.
			pos := noc.Coord{X: 1, Y: 1}
			if tb.rt.Network().Decoupled(pos) {
				t.Fatalf("plan %q left the tile decoupled", plan)
			}
			if w := tb.rt.Meter().Power("prc"); w != 0 {
				t.Fatalf("plan %q left %g W on the PRC rail", plan, w)
			}
			ts := tb.rt.tiles["rt_1"]
			if ts.reconfig || ts.pending != "" || ts.busy {
				t.Fatalf("plan %q left stuck state: reconfig=%v pending=%q busy=%v",
					plan, ts.reconfig, ts.pending, ts.busy)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%+v|%x|%d|%d", tb.rt.Stats(),
				tb.rt.Meter().TotalEnergy(), tb.rt.FaultsInjected(), tb.rt.Engine().Now())
			for _, ev := range tb.rt.Timeline() {
				fmt.Fprintf(&b, "|%d,%d,%s,%d,%v,%q", ev.Start, ev.End, ev.Accel, ev.Attempts, ev.Failed, ev.Err)
			}
			return b.String()
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("plan %q nondeterministic:\n%s\n%s", plan, a, b)
		}
	})
}
