package experiments

import (
	"context"
	"fmt"

	"presp/internal/core"
	"presp/internal/flow"
	"presp/internal/report"
	"presp/internal/wami"
)

// Table4SoC is the P&R parallelism evaluation of one WAMI flow SoC.
type Table4SoC struct {
	Name string
	// Accs lists the hosted accelerator indices (Fig 3 numbering).
	Accs []int
	// Metrics carries κ, α_av, γ.
	Metrics core.Metrics
	// Class is the taxonomy class.
	Class core.Class
	// Chosen is the strategy PR-ESP's size-driven algorithm selects.
	Chosen core.StrategyKind
	// FullyPar, SemiPar and Serial are the P&R times (minutes) under
	// each strategy; TStaticFull/Semi and OmegaFull/Semi expose the
	// components.
	TStatic   float64
	OmegaFull float64
	FullyPar  float64
	OmegaSemi float64
	SemiPar   float64
	Serial    float64
}

// TimeFor returns the P&R time under the given strategy kind.
func (s *Table4SoC) TimeFor(k core.StrategyKind) float64 {
	switch k {
	case core.FullyParallel:
		return s.FullyPar
	case core.SemiParallel:
		return s.SemiPar
	default:
		return s.Serial
	}
}

// Table4Result reproduces the P&R parallelism evaluation (Table IV).
type Table4Result struct {
	SoCs []Table4SoC
}

// Table4 evaluates SoC_A..SoC_D under all three strategies (semi-parallel
// at τ=2, as the paper fixes it) and records the chooser's pick.
func Table4() (*Table4Result, error) {
	res := &Table4Result{}
	for _, name := range wami.FlowSoCNames() {
		cfg, err := wami.FlowSoC(name)
		if err != nil {
			return nil, err
		}
		d, err := elaborate(cfg)
		if err != nil {
			return nil, err
		}
		m, err := core.ComputeMetrics(d)
		if err != nil {
			return nil, err
		}
		cls, err := core.Classify(m)
		if err != nil {
			return nil, err
		}
		chosen, err := core.Choose(d)
		if err != nil {
			return nil, err
		}
		row := Table4SoC{Name: name, Metrics: m, Class: cls, Chosen: chosen.Kind}
		for _, idx := range allocOf(name) {
			row.Accs = append(row.Accs, idx)
		}
		// Fully parallel.
		strat, err := core.ForceStrategy(d, core.FullyParallel, len(d.RPs))
		if err != nil {
			return nil, err
		}
		r, err := flow.RunPRESP(context.Background(), d, flow.Options{Strategy: strat, SkipBitstreams: true})
		if err != nil {
			return nil, err
		}
		row.TStatic = float64(r.TStatic)
		row.OmegaFull = float64(r.MaxOmega)
		row.FullyPar = float64(r.PRWall)
		// Semi-parallel, τ=2.
		strat, err = core.ForceStrategy(d, core.SemiParallel, core.DefaultSemiTau)
		if err != nil {
			return nil, err
		}
		r, err = flow.RunPRESP(context.Background(), d, flow.Options{Strategy: strat, SkipBitstreams: true})
		if err != nil {
			return nil, err
		}
		row.OmegaSemi = float64(r.MaxOmega)
		row.SemiPar = float64(r.PRWall)
		// Serial.
		strat, err = core.ForceStrategy(d, core.Serial, 1)
		if err != nil {
			return nil, err
		}
		r, err = flow.RunPRESP(context.Background(), d, flow.Options{Strategy: strat, SkipBitstreams: true})
		if err != nil {
			return nil, err
		}
		row.Serial = float64(r.PRWall)
		res.SoCs = append(res.SoCs, row)
	}
	return res, nil
}

// allocOf returns the accelerator index set of a Table IV SoC.
func allocOf(name string) []int {
	switch name {
	case "SoC_A":
		return []int{wami.KWarpImg, wami.KSDUpdate, wami.KMult, wami.KMatrixInvert}
	case "SoC_B":
		return []int{wami.KGrayscale, wami.KGradient, wami.KReshapeAdd, wami.KDebayer}
	case "SoC_C":
		return []int{wami.KHessian, wami.KReshapeAdd, wami.KSDUpdate, wami.KGrayscale}
	case "SoC_D":
		return []int{wami.KWarpImg, wami.KSubtract, wami.KMatrixInvert, wami.KGrayscale}
	default:
		return nil
	}
}

// SoC returns the named SoC's evaluation.
func (r *Table4Result) SoC(name string) (*Table4SoC, error) {
	for i := range r.SoCs {
		if r.SoCs[i].Name == name {
			return &r.SoCs[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: Table IV has no SoC %q", name)
}

// Render builds the Table IV layout; the chosen strategy's column is
// bolded as the paper does.
func (r *Table4Result) Render() *report.Table {
	t := report.New("Table IV — P&R parallelism evaluation on the WAMI SoCs (modelled minutes)",
		"SoC", "accs", "class", "α_av%", "κ%", "γ", "t_static", "fully-par", "semi-par", "serial", "chosen")
	for _, s := range r.SoCs {
		full := report.Minutes(s.FullyPar)
		semi := report.Minutes(s.SemiPar)
		serial := report.Minutes(s.Serial)
		switch s.Chosen {
		case core.FullyParallel:
			full = report.Bold(full)
		case core.SemiParallel:
			semi = report.Bold(semi)
		default:
			serial = report.Bold(serial)
		}
		t.AddRow(s.Name,
			fmt.Sprintf("%v", s.Accs),
			s.Class.String(),
			fmt.Sprintf("%.1f", s.Metrics.AlphaAv*100),
			fmt.Sprintf("%.1f", s.Metrics.Kappa*100),
			fmt.Sprintf("%.2f", s.Metrics.Gamma),
			report.Minutes(s.TStatic),
			full, semi, serial,
			s.Chosen.String())
	}
	return t
}
