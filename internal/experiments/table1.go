package experiments

import (
	"presp/internal/core"
	"presp/internal/report"
)

// Table1Cell is one entry of the size-driven strategy matrix.
type Table1Cell struct {
	// KappaRegime is "κ≈α", "κ>>α" or "κ<<α".
	KappaRegime string
	// GammaRegime is "γ<1", "γ≈1" or "γ>1".
	GammaRegime string
	// Strategy is the chosen strategy, or "-" for impossible cells.
	Strategy string
	// Class is the taxonomy class driving the choice, when defined.
	Class string
}

// Table1Result reproduces Table I by sweeping synthetic designs across
// the (κ vs α_av, γ) plane and recording the strategy the chooser picks.
type Table1Result struct {
	Cells []Table1Cell
}

// syntheticMetrics builds a Metrics instance in the requested regime on
// a 303.6k-LUT device (VC707 scale).
func syntheticMetrics(kappaRegime, gammaRegime string) (core.Metrics, bool) {
	const tot = 303600
	var staticL, n, maxTile, reconfL int
	switch kappaRegime {
	case "κ>>α":
		// Large static part, each tile much smaller.
		staticL = 90000
		n = 6
		switch gammaRegime {
		case "γ<1":
			reconfL = 48000 // γ = 0.53
		case "γ≈1":
			reconfL = 91000 // γ = 1.01
		case "γ>1":
			reconfL = 150000 // γ = 1.67
		}
		maxTile = reconfL / n
	case "κ≈α":
		// A tile rivals the static part.
		staticL = 30000
		switch gammaRegime {
		case "γ<1":
			// Impossible: a tile at least the static size forces γ > 1.
			return core.Metrics{}, false
		case "γ≈1":
			// Only a single reconfigurable tile yields γ ≈ 1 here.
			n = 1
			reconfL = 31000
			maxTile = 31000
		case "γ>1":
			n = 3
			reconfL = 120000
			maxTile = 42000
		}
	case "κ<<α":
		// Every tile dwarfs the static part.
		staticL = 12000
		switch gammaRegime {
		case "γ<1":
			return core.Metrics{}, false
		case "γ≈1":
			n = 1
			reconfL = 12500
			maxTile = 12500
		case "γ>1":
			n = 2
			reconfL = 120000
			maxTile = 60000
		}
	}
	m := core.Metrics{
		N:           n,
		StaticLUTs:  staticL,
		ReconfLUTs:  reconfL,
		MaxTileLUTs: maxTile,
		DeviceLUTs:  tot,
	}
	m.Kappa = float64(staticL) / tot
	m.AlphaAv = float64(reconfL) / (float64(n) * tot)
	m.Gamma = float64(reconfL) / float64(staticL)
	return m, true
}

// strategyForClass maps a class to the Table I strategy label.
func strategyForClass(c core.Class) string {
	switch c {
	case core.Class11, core.Class22:
		return "serial"
	case core.Class13:
		return "semi-parallel"
	case core.Class12, core.Class21:
		return "fully-parallel"
	default:
		return "?"
	}
}

// Table1 regenerates the strategy decision matrix.
func Table1() (*Table1Result, error) {
	res := &Table1Result{}
	for _, kr := range []string{"κ≈α", "κ>>α", "κ<<α"} {
		for _, gr := range []string{"γ<1", "γ≈1", "γ>1"} {
			cell := Table1Cell{KappaRegime: kr, GammaRegime: gr}
			m, ok := syntheticMetrics(kr, gr)
			if !ok {
				cell.Strategy = "-"
				cell.Class = "-"
				res.Cells = append(res.Cells, cell)
				continue
			}
			cls, err := core.Classify(m)
			if err != nil {
				return nil, err
			}
			cell.Class = cls.String()
			cell.Strategy = strategyForClass(cls)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Cell returns the strategy chosen for the given regimes.
func (r *Table1Result) Cell(kappaRegime, gammaRegime string) string {
	for _, c := range r.Cells {
		if c.KappaRegime == kappaRegime && c.GammaRegime == gammaRegime {
			return c.Strategy
		}
	}
	return ""
}

// Render builds the Table I layout.
func (r *Table1Result) Render() *report.Table {
	t := report.New("Table I — size-driven implementation strategies",
		"", "γ<1", "γ≈1", "γ>1")
	for _, kr := range []string{"κ≈α", "κ>>α", "κ<<α"} {
		t.AddRow(kr, r.Cell(kr, "γ<1"), r.Cell(kr, "γ≈1"), r.Cell(kr, "γ>1"))
	}
	return t
}
