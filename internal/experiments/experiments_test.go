package experiments

import (
	"strings"
	"testing"

	"presp/internal/core"
)

// TestTable1MatchesPaper: the regenerated strategy matrix must equal
// Table I cell for cell.
func TestTable1MatchesPaper(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]string]string{
		{"κ≈α", "γ<1"}:  "-",
		{"κ≈α", "γ≈1"}:  "serial",
		{"κ≈α", "γ>1"}:  "fully-parallel",
		{"κ>>α", "γ<1"}: "serial",
		{"κ>>α", "γ≈1"}: "semi-parallel",
		{"κ>>α", "γ>1"}: "fully-parallel",
		{"κ<<α", "γ<1"}: "-",
		{"κ<<α", "γ≈1"}: "serial",
		{"κ<<α", "γ>1"}: "fully-parallel",
	}
	for key, strategy := range want {
		if got := r.Cell(key[0], key[1]); got != strategy {
			t.Errorf("Table I (%s, %s): got %q want %q", key[0], key[1], got, strategy)
		}
	}
	if r.Render().Rows() != 3 {
		t.Fatal("rendered matrix should have 3 rows")
	}
}

// TestTable2MatchesPaper: the measured utilizations must equal Table II.
func TestTable2MatchesPaper(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"mac":              2450,
		"conv2d":           36741,
		"gemm":             30617,
		"fft":              33690,
		"sort":             20468,
		"CPU":              41544,
		"Static":           82267,
		"Static (w/o CPU)": 39254,
	}
	for name, luts := range want {
		got, ok := r.LUTsOf(name)
		if !ok {
			t.Errorf("Table II missing %s", name)
			continue
		}
		if got != luts {
			t.Errorf("Table II %s: got %d want %d", name, got, luts)
		}
	}
}

// TestTable3ShapeHolds asserts the characterization's class-level
// claims: SOC_1 serial wins; SOC_2 improves monotonically with τ and
// fully-parallel wins; SOC_4 improves monotonically and τ=5 wins;
// SOC_3's best parallel degree beats serial.
func TestTable3ShapeHolds(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	soc1, err := r.SoC("SOC_1")
	if err != nil {
		t.Fatal(err)
	}
	if soc1.Best().Tau != 1 {
		t.Errorf("SOC_1 (class 1.1): best τ=%d, serial should win", soc1.Best().Tau)
	}

	soc2, err := r.SoC("SOC_2")
	if err != nil {
		t.Fatal(err)
	}
	if soc2.Best().Tau != 4 {
		t.Errorf("SOC_2 (class 1.2): best τ=%d, want 4", soc2.Best().Tau)
	}
	for i := 1; i < len(soc2.Entries); i++ {
		if soc2.Entries[i].Tau > 1 && soc2.Entries[i-1].Tau > 1 &&
			soc2.Entries[i].Total > soc2.Entries[i-1].Total {
			t.Errorf("SOC_2: more parallelism got slower at τ=%d", soc2.Entries[i].Tau)
		}
	}

	soc3, err := r.SoC("SOC_3")
	if err != nil {
		t.Fatal(err)
	}
	serial3, err := soc3.Entry(1)
	if err != nil {
		t.Fatal(err)
	}
	if soc3.Best().Tau == 1 {
		t.Error("SOC_3 (class 1.3): a parallel degree should beat serial")
	}
	if soc3.Best().Total >= serial3.Total {
		t.Error("SOC_3: best parallel does not beat serial")
	}

	soc4, err := r.SoC("SOC_4")
	if err != nil {
		t.Fatal(err)
	}
	if soc4.Best().Tau != 5 {
		t.Errorf("SOC_4 (class 2.1): best τ=%d, want 5", soc4.Best().Tau)
	}

	// t_static is invariant across parallel degrees of the same SoC.
	for _, s := range r.SoCs {
		var ref float64
		for _, e := range s.Entries {
			if e.Tau == 1 {
				continue
			}
			if ref == 0 {
				ref = e.TStatic
			} else if e.TStatic != ref {
				t.Errorf("%s: t_static varies across τ", s.Name)
			}
		}
	}
}

// TestTable4ShapeHolds asserts the per-class winners of Table IV and
// that the chooser picks them (class 1.3's semi-vs-fully gap is below
// the model's resolution; there the chooser's pick must be within 3%
// of the best).
func TestTable4ShapeHolds(t *testing.T) {
	r, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	wantClass := map[string]core.Class{
		"SoC_A": core.Class12,
		"SoC_B": core.Class11,
		"SoC_C": core.Class13,
		"SoC_D": core.Class21,
	}
	wantChoice := map[string]core.StrategyKind{
		"SoC_A": core.FullyParallel,
		"SoC_B": core.Serial,
		"SoC_C": core.SemiParallel,
		"SoC_D": core.FullyParallel,
	}
	for _, s := range r.SoCs {
		if s.Class != wantClass[s.Name] {
			t.Errorf("%s: class %s, want %s", s.Name, s.Class, wantClass[s.Name])
		}
		if s.Chosen != wantChoice[s.Name] {
			t.Errorf("%s: chose %s, want %s", s.Name, s.Chosen, wantChoice[s.Name])
		}
		best := s.FullyPar
		for _, v := range []float64{s.SemiPar, s.Serial} {
			if v < best {
				best = v
			}
		}
		chosen := s.TimeFor(s.Chosen)
		if chosen > best*1.03 {
			t.Errorf("%s: chosen strategy %.0f min, best %.0f min (>3%% off)", s.Name, chosen, best)
		}
	}
	// The hard winners (classes 1.1, 1.2, 2.1) must be strict.
	a, err := r.SoC("SoC_A")
	if err != nil {
		t.Fatal(err)
	}
	if !(a.FullyPar < a.SemiPar && a.FullyPar < a.Serial) {
		t.Error("SoC_A: fully-parallel should win strictly")
	}
	b, err := r.SoC("SoC_B")
	if err != nil {
		t.Fatal(err)
	}
	if !(b.Serial < b.FullyPar && b.Serial < b.SemiPar) {
		t.Error("SoC_B: serial should win strictly")
	}
	d, err := r.SoC("SoC_D")
	if err != nil {
		t.Fatal(err)
	}
	if !(d.FullyPar < d.SemiPar && d.FullyPar < d.Serial) {
		t.Error("SoC_D: fully-parallel should win strictly")
	}
}

// TestTable5ShapeHolds asserts the flow-comparison claims: PR-ESP wins
// clearly on classes 1.2 and 2.1 (paper: 19% and 24%), is near parity
// on class 1.1 (paper: -2.5%) and wins slightly on 1.3 (paper: 4.4%).
func TestTable5ShapeHolds(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.SoC("SoC_A")
	if err != nil {
		t.Fatal(err)
	}
	if a.Improvement() < 0.10 {
		t.Errorf("SoC_A gain %.1f%%, want >= 10%%", a.Improvement()*100)
	}
	d, err := r.SoC("SoC_D")
	if err != nil {
		t.Fatal(err)
	}
	if d.Improvement() < 0.10 {
		t.Errorf("SoC_D gain %.1f%%, want >= 10%%", d.Improvement()*100)
	}
	b, err := r.SoC("SoC_B")
	if err != nil {
		t.Fatal(err)
	}
	if b.Improvement() > 0.05 || b.Improvement() < -0.05 {
		t.Errorf("SoC_B should be near parity, got %.1f%%", b.Improvement()*100)
	}
	if b.Strategy != core.Serial {
		t.Errorf("SoC_B should run serial, chose %s", b.Strategy)
	}
	c, err := r.SoC("SoC_C")
	if err != nil {
		t.Fatal(err)
	}
	if c.Improvement() < 0 {
		t.Errorf("SoC_C should not lose to monolithic, got %.1f%%", c.Improvement()*100)
	}
}

// TestTable6ShapeHolds: per-tile compressed bitstream sizes land in the
// paper's few-hundred-KB range and storage grows with the tile count.
func TestTable6ShapeHolds(t *testing.T) {
	r, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SoCs) != 3 {
		t.Fatalf("SoCs: %d", len(r.SoCs))
	}
	for _, s := range r.SoCs {
		for _, tile := range s.Tiles {
			if tile.PbsKB < 100 || tile.PbsKB > 800 {
				t.Errorf("%s/%s: pbs %.0f KB outside the plausible range", s.Name, tile.Tile, tile.PbsKB)
			}
		}
	}
	x, err := r.SoC("SoC_X")
	if err != nil {
		t.Fatal(err)
	}
	z, err := r.SoC("SoC_Z")
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Tiles) != 2 || len(z.Tiles) != 4 {
		t.Fatalf("tile counts: X=%d Z=%d", len(x.Tiles), len(z.Tiles))
	}
	if x.TotalKB() >= z.TotalKB() {
		t.Errorf("bitstream storage should grow with tiles: X=%.0f Z=%.0f KB", x.TotalKB(), z.TotalKB())
	}
}

// TestFig3Complete: every kernel is profiled with plausible annotations
// and the dataflow edges reference profiled kernels.
func TestFig3Complete(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Kernels) != 12 {
		t.Fatalf("kernels: %d", len(r.Kernels))
	}
	for _, k := range r.Kernels {
		if k.LUTs <= 0 {
			t.Errorf("%s: no LUT annotation", k.Name)
		}
		if k.ExecMS <= 0 {
			t.Errorf("%s: no execution time", k.Name)
		}
		for _, dep := range k.Deps {
			if _, err := r.Kernel(dep); err != nil {
				t.Errorf("%s depends on unprofiled kernel %d", k.Name, dep)
			}
		}
	}
	// Grayscale (streaming, 0.5 cyc/px) must be faster than Hessian
	// (2.6 cyc/px) on the same workload.
	gs, err := r.Kernel(2)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := r.Kernel(7)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ExecMS >= hs.ExecMS {
		t.Error("grayscale should be faster than hessian")
	}
}

// TestFig4ShapeHolds is the headline runtime result: time ordering
// X > Y > Z, energy-per-frame ordering X < Y < Z.
func TestFig4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full runtime simulation in -short mode")
	}
	r, err := Fig4(Fig4Options{Frames: 4, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	x, err := r.SoC("SoC_X")
	if err != nil {
		t.Fatal(err)
	}
	y, err := r.SoC("SoC_Y")
	if err != nil {
		t.Fatal(err)
	}
	z, err := r.SoC("SoC_Z")
	if err != nil {
		t.Fatal(err)
	}
	if !(x.TimePerFrame > y.TimePerFrame && y.TimePerFrame > z.TimePerFrame) {
		t.Errorf("time ordering: X=%.4f Y=%.4f Z=%.4f", x.TimePerFrame, y.TimePerFrame, z.TimePerFrame)
	}
	if !(x.EnergyPerFrame < y.EnergyPerFrame && y.EnergyPerFrame < z.EnergyPerFrame) {
		t.Errorf("energy ordering: X=%.3f Y=%.3f Z=%.3f", x.EnergyPerFrame, y.EnergyPerFrame, z.EnergyPerFrame)
	}
	// SoC_Z hosts every kernel in hardware.
	if z.CPUFallbacks != 0 {
		t.Errorf("SoC_Z ran %d kernels on the CPU", z.CPUFallbacks)
	}
	if x.CPUFallbacks == 0 {
		t.Error("SoC_X should fall back to the CPU for subtract and change-detection")
	}
	// Everyone reconfigures, and everyone detects the targets.
	for _, s := range r.SoCs {
		if s.Reconfigurations == 0 {
			t.Errorf("%s never reconfigured", s.Name)
		}
		if s.Detections == 0 {
			t.Errorf("%s detected nothing", s.Name)
		}
	}
}

func TestPresetConfigs(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := PresetConfig(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Name != name && !strings.HasPrefix(cfg.Name, name) {
			t.Errorf("preset %s returned config %s", name, cfg.Name)
		}
		if _, err := ElaborateConfig(cfg); err != nil {
			t.Errorf("%s does not elaborate: %v", name, err)
		}
	}
	if _, err := PresetConfig("SOC_9"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestStrategyMap runs the Section IV characterization methodology:
// across the swept design space, the size-driven choice must track the
// exhaustive search closely — near-ties dominate the mismatches.
func TestStrategyMap(t *testing.T) {
	if testing.Short() {
		t.Skip("design-space sweep in -short mode")
	}
	r, err := StrategyMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 15 {
		t.Fatalf("sweep too small: %d designs", len(r.Points))
	}
	if got := r.Agreement(0.10); got < 0.9 {
		t.Errorf("within 10%% of best on only %.0f%% of designs", got*100)
	}
	if got := r.Agreement(0.03); got < 0.6 {
		t.Errorf("within 3%% of best on only %.0f%% of designs", got*100)
	}
	// Class-level sanity: every class-1.1 design picks serial; every
	// class-1.2 design picks fully-parallel — and for 1.2 the pick is
	// the strict winner.
	for i := range r.Points {
		p := &r.Points[i]
		switch p.Class {
		case core.Class11:
			if p.Chosen != core.Serial {
				t.Errorf("%s (1.1): chose %s", p.Label, p.Chosen)
			}
		case core.Class12:
			if p.Chosen != core.FullyParallel {
				t.Errorf("%s (1.2): chose %s", p.Label, p.Chosen)
			}
			if p.Best != core.FullyParallel {
				t.Errorf("%s (1.2): empirical best is %s", p.Label, p.Best)
			}
		case core.Class22:
			if p.Chosen != core.Serial {
				t.Errorf("%s (2.2): chose %s", p.Label, p.Chosen)
			}
		}
	}
}

// TestStabilityUnderJitter: with ±3% CAD run-to-run variation, the
// strategy winners for the decisive classes (1.1, 1.2, 2.1) stay put
// in the vast majority of realizations, while the near-tie class 1.3
// flips freely (it is a tie in the source data too). The chooser's
// regret — time lost versus the per-realization best — stays small
// everywhere.
func TestStabilityUnderJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	r, err := Stability(24, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SoC_A", "SoC_B", "SoC_D"} {
		if r.WinnerStability[name] < 0.75 {
			t.Errorf("%s: winner stable in only %.0f%% of realizations", name, r.WinnerStability[name]*100)
		}
	}
	for name, regret := range r.ChooserRegret {
		if regret > 0.06 {
			t.Errorf("%s: chooser regret %.1f%% too high", name, regret*100)
		}
	}
}

// TestRendersProduceRows smoke-tests every experiment's table rendering
// (the artifact presp-bench prints).
func TestRendersProduceRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment set in -short mode")
	}
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if t3.Render().Rows() != 18 {
		t.Errorf("Table III rows: %d", t3.Render().Rows())
	}
	t4, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if t4.Render().Rows() != 4 {
		t.Errorf("Table IV rows: %d", t4.Render().Rows())
	}
	t5, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if t5.Render().Rows() != 4 {
		t.Errorf("Table V rows: %d", t5.Render().Rows())
	}
	t6, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if t6.Render().Rows() != 9 {
		t.Errorf("Table VI rows: %d", t6.Render().Rows())
	}
	f3, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if f3.Render().Rows() != 12 {
		t.Errorf("Fig 3 rows: %d", f3.Render().Rows())
	}
	f4, err := Fig4(Fig4Options{Frames: 3, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if f4.Render().Rows() != 3 {
		t.Errorf("Fig 4 rows: %d", f4.Render().Rows())
	}
	if _, err := f4.SoC("SoC_Q"); err == nil {
		t.Error("unknown SoC lookup succeeded")
	}
	st, err := Stability(4, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if st.Render().Rows() != 4 {
		t.Errorf("stability rows: %d", st.Render().Rows())
	}
	sm, err := StrategyMap()
	if err != nil {
		t.Fatal(err)
	}
	if sm.Render().Rows() != len(sm.Points) {
		t.Error("strategy map rows mismatch")
	}
}
