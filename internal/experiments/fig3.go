package experiments

import (
	"context"
	"fmt"

	"presp/internal/fpga"
	"presp/internal/report"
	"presp/internal/sim"
	"presp/internal/socgen"
	"presp/internal/vivado"
	"presp/internal/wami"
)

// Fig3Kernel is the profile of one WAMI accelerator: the Fig 3
// annotations (LUT consumption and execution time) measured on the 2x2
// single-accelerator profiling SoC.
type Fig3Kernel struct {
	// Index is the Fig 3 kernel number.
	Index int
	// Name is the accelerator name.
	Name string
	// LUTs is the post-synthesis utilization.
	LUTs int
	// ExecMS is the execution time for one 128x128-pixel invocation at
	// the 78 MHz SoC clock, in milliseconds.
	ExecMS float64
	// Deps lists the upstream kernels in the dataflow.
	Deps []int
	// PerIteration marks the Lucas-Kanade loop kernels.
	PerIteration bool
}

// Fig3Result reproduces the WAMI dataflow profile of Fig 3.
type Fig3Result struct {
	Kernels []Fig3Kernel
	// FramePixels is the profiling workload size.
	FramePixels int
}

// Fig3FrameEdge is the profiling frame edge length.
const Fig3FrameEdge = 128

// Fig3 profiles every WAMI kernel: synthesis on the profiling SoC for
// LUTs, the latency model at 78 MHz for execution time, and the
// dataflow graph for the edges.
func Fig3() (*Fig3Result, error) {
	reg, err := registry()
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{FramePixels: Fig3FrameEdge * Fig3FrameEdge}
	for idx := 1; idx <= wami.NumKernels; idx++ {
		name := wami.Names[idx]
		cfg := socgen.Profiling2x2(name)
		d, err := socgen.Elaborate(cfg, reg)
		if err != nil {
			return nil, err
		}
		tool, err := vivado.New(d.Dev, nil)
		if err != nil {
			return nil, err
		}
		ck, err := tool.Synthesize(context.Background(), d.RPs[0].Content, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: profiling %s: %w", name, err)
		}
		desc, err := reg.Lookup(name)
		if err != nil {
			return nil, err
		}
		cycles := desc.CyclesPerInvocation(res.FramePixels)
		exec := sim.Clock(cycles, cfg.FreqHz)
		node, err := wami.NodeFor(idx)
		if err != nil {
			return nil, err
		}
		res.Kernels = append(res.Kernels, Fig3Kernel{
			Index:        idx,
			Name:         name,
			LUTs:         ck.Resources[fpga.LUT],
			ExecMS:       exec.Seconds() * 1000,
			Deps:         node.Deps,
			PerIteration: node.PerIteration,
		})
	}
	return res, nil
}

// Kernel returns the profile of kernel idx.
func (r *Fig3Result) Kernel(idx int) (*Fig3Kernel, error) {
	for i := range r.Kernels {
		if r.Kernels[i].Index == idx {
			return &r.Kernels[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: Fig 3 has no kernel %d", idx)
}

// Render builds the Fig 3 profile table.
func (r *Fig3Result) Render() *report.Table {
	t := report.New(
		fmt.Sprintf("Fig 3 — WAMI-App dataflow profile (%dx%d frames @ 78 MHz)", Fig3FrameEdge, Fig3FrameEdge),
		"#", "kernel", "LUTs", "exec (ms)", "deps", "LK-loop")
	for _, k := range r.Kernels {
		loop := ""
		if k.PerIteration {
			loop = "yes"
		}
		t.AddRow(k.Index, k.Name, k.LUTs, fmt.Sprintf("%.2f", k.ExecMS), fmt.Sprintf("%v", k.Deps), loop)
	}
	return t
}
