// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I-VI, Fig 3, Fig 4) from the simulated PR-ESP
// platform. Each experiment returns structured results plus a rendered
// text table matching the paper's rows; cmd/presp-bench and the
// top-level benchmarks drive these functions, and EXPERIMENTS.md records
// paper-vs-measured for every cell.
package experiments

import (
	"fmt"

	"presp/internal/accel"
	"presp/internal/socgen"
	"presp/internal/wami"
)

// registry builds the combined accelerator registry (characterization
// accelerators + the twelve WAMI kernels).
func registry() (*accel.Registry, error) {
	reg := accel.Default()
	if err := wami.AddTo(reg); err != nil {
		return nil, err
	}
	return reg, nil
}

// elaborate builds a design from a config against the combined registry.
func elaborate(cfg *socgen.Config) (*socgen.Design, error) {
	reg, err := registry()
	if err != nil {
		return nil, err
	}
	d, err := socgen.Elaborate(cfg, reg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", cfg.Name, err)
	}
	return d, nil
}

// ElaborateConfig elaborates a configuration against the full
// experiment registry (characterization + WAMI accelerators); exported
// for the CLI tools.
func ElaborateConfig(cfg *socgen.Config) (*socgen.Design, error) {
	return elaborate(cfg)
}

// PresetConfig returns a built-in SoC configuration by name: the four
// characterization SoCs (SOC_1..SOC_4), the four WAMI flow SoCs
// (SoC_A..SoC_D) and the three runtime SoCs (SoC_X/SoC_Y/SoC_Z).
func PresetConfig(name string) (*socgen.Config, error) {
	switch name {
	case "SOC_1":
		return socgen.SOC1(), nil
	case "SOC_2":
		return socgen.SOC2(), nil
	case "SOC_3":
		return socgen.SOC3(), nil
	case "SOC_4":
		return socgen.SOC4(), nil
	case "SoC_A", "SoC_B", "SoC_C", "SoC_D":
		return wami.FlowSoC(name)
	case "SoC_X", "SoC_Y", "SoC_Z":
		cfg, _, err := wami.RuntimeSoC(name)
		return cfg, err
	}
	return nil, fmt.Errorf("experiments: unknown preset %q", name)
}

// PresetNames lists the built-in configurations in a stable order.
func PresetNames() []string {
	return []string{
		"SOC_1", "SOC_2", "SOC_3", "SOC_4",
		"SoC_A", "SoC_B", "SoC_C", "SoC_D",
		"SoC_X", "SoC_Y", "SoC_Z",
	}
}
