package experiments

import (
	"context"
	"fmt"
	"sort"

	"presp/internal/core"
	"presp/internal/flow"
	"presp/internal/report"
	"presp/internal/socgen"
)

// Table3Entry is the result of implementing one SoC at one parallelism
// degree.
type Table3Entry struct {
	// Tau is the parallel run count (1 = serial).
	Tau int
	// TStatic is the static pre-route time in minutes (0 for serial).
	TStatic float64
	// Omega is the longest in-context run in minutes (0 for serial).
	Omega float64
	// Total is the end-to-end P&R time in minutes.
	Total float64
}

// Table3SoC aggregates the characterization of one SoC.
type Table3SoC struct {
	Name    string
	Metrics core.Metrics
	Entries []Table3Entry
}

// Best returns the τ with the shortest total time.
func (s *Table3SoC) Best() Table3Entry {
	best := s.Entries[0]
	for _, e := range s.Entries[1:] {
		if e.Total < best.Total {
			best = e
		}
	}
	return best
}

// Entry returns the measurement at the given τ.
func (s *Table3SoC) Entry(tau int) (Table3Entry, error) {
	for _, e := range s.Entries {
		if e.Tau == tau {
			return e, nil
		}
	}
	return Table3Entry{}, fmt.Errorf("experiments: %s has no τ=%d run", s.Name, tau)
}

// Table3Result reproduces the Vivado characterization (Table III).
type Table3Result struct {
	SoCs []Table3SoC
}

// table3Taus lists the parallelism degrees the paper sweeps per SoC.
var table3Taus = map[string][]int{
	"SOC_1": {1, 2, 3, 4, 5, 16},
	"SOC_2": {1, 2, 3, 4},
	"SOC_3": {1, 2, 3},
	"SOC_4": {1, 2, 3, 4, 5},
}

// Table3 runs the characterization sweep on SOC_1..SOC_4.
func Table3() (*Table3Result, error) {
	res := &Table3Result{}
	for _, cfg := range socgen.CharacterizationSoCs() {
		soc, err := characterize(cfg, table3Taus[cfg.Name])
		if err != nil {
			return nil, err
		}
		res.SoCs = append(res.SoCs, *soc)
	}
	return res, nil
}

// characterize sweeps one SoC across the given parallelism degrees.
func characterize(cfg *socgen.Config, taus []int) (*Table3SoC, error) {
	d, err := elaborate(cfg)
	if err != nil {
		return nil, err
	}
	m, err := core.ComputeMetrics(d)
	if err != nil {
		return nil, err
	}
	soc := &Table3SoC{Name: cfg.Name, Metrics: m}
	for _, tau := range taus {
		strat, err := strategyForTau(d, tau)
		if err != nil {
			return nil, err
		}
		r, err := flow.RunPRESP(context.Background(), d, flow.Options{Strategy: strat, SkipBitstreams: true})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s τ=%d: %w", cfg.Name, tau, err)
		}
		soc.Entries = append(soc.Entries, Table3Entry{
			Tau:     tau,
			TStatic: float64(r.TStatic),
			Omega:   float64(r.MaxOmega),
			Total:   float64(r.PRWall),
		})
	}
	sort.Slice(soc.Entries, func(i, j int) bool { return soc.Entries[i].Tau < soc.Entries[j].Tau })
	return soc, nil
}

// strategyForTau maps a τ to the corresponding forced strategy.
func strategyForTau(d *socgen.Design, tau int) (*core.Strategy, error) {
	n := len(d.RPs)
	switch {
	case tau <= 1:
		return core.ForceStrategy(d, core.Serial, 1)
	case tau >= n:
		return core.ForceStrategy(d, core.FullyParallel, n)
	default:
		return core.ForceStrategy(d, core.SemiParallel, tau)
	}
}

// SoC returns the named SoC's characterization.
func (r *Table3Result) SoC(name string) (*Table3SoC, error) {
	for i := range r.SoCs {
		if r.SoCs[i].Name == name {
			return &r.SoCs[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: no characterization for %q", name)
}

// Render builds the Table III layout.
func (r *Table3Result) Render() *report.Table {
	t := report.New("Table III — Vivado characterization under different parallelism (modelled minutes)",
		"SoC", "α_av%", "κ%", "γ", "τ", "t_static", "Ω", "T_tot")
	for _, s := range r.SoCs {
		best := s.Best()
		for _, e := range s.Entries {
			total := report.Minutes(e.Total)
			if e.Tau == best.Tau {
				total = report.Bold(total)
			}
			t.AddRow(s.Name,
				fmt.Sprintf("%.1f", s.Metrics.AlphaAv*100),
				fmt.Sprintf("%.1f", s.Metrics.Kappa*100),
				fmt.Sprintf("%.2f", s.Metrics.Gamma),
				e.Tau,
				report.Minutes(e.TStatic),
				report.Minutes(e.Omega),
				total)
		}
	}
	return t
}
