package experiments

import (
	"context"
	"fmt"

	"presp/internal/flow"
	"presp/internal/fpga"
	"presp/internal/report"
	"presp/internal/socgen"
	"presp/internal/tile"
	"presp/internal/vivado"
)

// Table2Row is one column of the paper's Table II (accelerator resource
// utilization).
type Table2Row struct {
	Name string
	LUTs int
}

// Table2Result holds the utilization of the characterization
// accelerators, the CPU tile and the static part with and without the
// processor, all measured by running the simulated synthesis flow on
// profiling SoCs (not read off a constant table).
type Table2Result struct {
	Rows []Table2Row
}

// Table2 regenerates the resource utilization table by synthesizing
// each accelerator in the 2x2 profiling SoC and the static parts of the
// characterization SoCs.
func Table2() (*Table2Result, error) {
	reg, err := registry()
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	for _, acc := range []string{"mac", "conv2d", "gemm", "fft", "sort"} {
		cfg := socgen.Profiling2x2(acc)
		d, err := socgen.Elaborate(cfg, reg)
		if err != nil {
			return nil, err
		}
		tool, err := vivado.New(d.Dev, nil)
		if err != nil {
			return nil, err
		}
		if len(d.RPs) != 1 {
			return nil, fmt.Errorf("experiments: profiling SoC for %s has %d partitions", acc, len(d.RPs))
		}
		ck, err := tool.Synthesize(context.Background(), d.RPs[0].Content, true)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{Name: acc, LUTs: ck.Resources[fpga.LUT]})
	}
	// CPU tile utilization (Leon3 configuration; the tile's own logic,
	// excluding the NoC router the paper accounts with the static part).
	res.Rows = append(res.Rows, Table2Row{Name: "CPU", LUTs: tile.CPUTileCost(tile.Leon3)[fpga.LUT]})

	// Static part of the characterization SoCs, with and without CPU
	// (SOC_2 vs SOC_4), measured through the flow's static synthesis.
	for _, spec := range []struct {
		label string
		cfg   *socgen.Config
	}{
		{"Static", socgen.SOC2()},
		{"Static (w/o CPU)", socgen.SOC4()},
	} {
		d, err := socgen.Elaborate(spec.cfg, reg)
		if err != nil {
			return nil, err
		}
		tool, err := vivado.New(d.Dev, nil)
		if err != nil {
			return nil, err
		}
		ck, err := tool.Synthesize(context.Background(), flow.BuildStaticTop(d), false)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{Name: spec.label, LUTs: ck.Resources[fpga.LUT]})
	}
	return res, nil
}

// LUTsOf returns the measured LUTs for a row name.
func (r *Table2Result) LUTsOf(name string) (int, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row.LUTs, true
		}
	}
	return 0, false
}

// Render builds the Table II layout.
func (r *Table2Result) Render() *report.Table {
	t := report.New("Table II — resource utilization of the accelerators", "", "LUTs")
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.LUTs)
	}
	return t
}
