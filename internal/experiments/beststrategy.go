package experiments

import "presp/internal/core"

// bestStrategy returns the fastest strategy of a measured times map.
// Candidates are scanned in their fixed declaration order, never in
// map iteration order: an exact tie always resolves to the same
// winner, and a map without an entry for Serial cannot win on the
// zero value.
func bestStrategy(times map[core.StrategyKind]float64) core.StrategyKind {
	best, have := core.Serial, false
	for _, kind := range []core.StrategyKind{core.Serial, core.SemiParallel, core.FullyParallel} {
		tm, ok := times[kind]
		if !ok {
			continue
		}
		if !have || tm < times[best] {
			best, have = kind, true
		}
	}
	return best
}
