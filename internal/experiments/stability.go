package experiments

import (
	"context"
	"fmt"

	"presp/internal/core"
	"presp/internal/flow"
	"presp/internal/report"
	"presp/internal/vivado"
	"presp/internal/wami"
)

// StabilityResult reports how robust the Table IV strategy winners are
// to CAD run-to-run variation: the flow is re-run under many jitter
// realizations of the cost model, and each SoC's winner is compared to
// the paper's claim.
type StabilityResult struct {
	// JitterFrac is the injected per-stage variation.
	JitterFrac float64
	// Seeds is the realization count.
	Seeds int
	// WinnerStability maps SoC name to the fraction of seeds where the
	// paper's winner stayed fastest.
	WinnerStability map[string]float64
	// ChooserRegret maps SoC name to the mean fractional time lost by
	// following the size-driven choice instead of the per-seed best.
	ChooserRegret map[string]float64
}

// paperWinners are the Table IV claims.
var paperWinners = map[string]core.StrategyKind{
	"SoC_A": core.FullyParallel,
	"SoC_B": core.Serial,
	"SoC_C": core.SemiParallel,
	"SoC_D": core.FullyParallel,
}

// Stability runs the sensitivity analysis with `seeds` jitter
// realizations at the given fractional variation.
func Stability(seeds int, jitterFrac float64) (*StabilityResult, error) {
	if seeds <= 0 {
		seeds = 20
	}
	if jitterFrac <= 0 {
		jitterFrac = 0.03
	}
	res := &StabilityResult{
		JitterFrac:      jitterFrac,
		Seeds:           seeds,
		WinnerStability: make(map[string]float64),
		ChooserRegret:   make(map[string]float64),
	}
	for _, name := range wami.FlowSoCNames() {
		cfg, err := wami.FlowSoC(name)
		if err != nil {
			return nil, err
		}
		d, err := elaborate(cfg)
		if err != nil {
			return nil, err
		}
		chosen, err := core.Choose(d)
		if err != nil {
			return nil, err
		}
		stable := 0
		var regret float64
		for seed := 0; seed < seeds; seed++ {
			model := vivado.DefaultCostModel()
			model.JitterFrac = jitterFrac
			model.JitterSeed = uint64(seed) + 1
			times := make(map[core.StrategyKind]float64)
			for _, kind := range []core.StrategyKind{core.Serial, core.SemiParallel, core.FullyParallel} {
				strat, err := core.ForceStrategy(d, kind, core.DefaultSemiTau)
				if err != nil {
					continue
				}
				r, err := flow.RunPRESP(context.Background(), d, flow.Options{Model: model, Strategy: strat, SkipBitstreams: true})
				if err != nil {
					return nil, fmt.Errorf("experiments: stability %s seed %d: %w", name, seed, err)
				}
				times[kind] = float64(r.PRWall)
			}
			best := bestStrategy(times)
			if best == paperWinners[name] {
				stable++
			}
			if t, ok := times[chosen.Kind]; ok && times[best] > 0 {
				regret += (t - times[best]) / times[best]
			}
		}
		res.WinnerStability[name] = float64(stable) / float64(seeds)
		res.ChooserRegret[name] = regret / float64(seeds)
	}
	return res, nil
}

// Render builds the stability table.
func (r *StabilityResult) Render() *report.Table {
	t := report.New(
		fmt.Sprintf("Strategy-winner stability under ±%.0f%% CAD jitter (%d realizations)",
			r.JitterFrac*100, r.Seeds),
		"SoC", "paper winner", "stable", "chooser regret")
	for _, name := range wami.FlowSoCNames() {
		t.AddRow(name,
			paperWinners[name].String(),
			fmt.Sprintf("%.0f%%", r.WinnerStability[name]*100),
			fmt.Sprintf("%.1f%%", r.ChooserRegret[name]*100))
	}
	return t
}
