package experiments

import (
	"context"
	"fmt"

	"presp/internal/core"
	"presp/internal/flow"
	"presp/internal/noc"
	"presp/internal/report"
	"presp/internal/socgen"
	"presp/internal/tile"
)

// StrategyPoint is one design of the characterization sweep: its size
// metrics, taxonomy class, the strategy the size-driven algorithm
// chooses, and the empirically best strategy found by running all of
// them — the methodology Section IV used to build Table I.
type StrategyPoint struct {
	// Label describes the design ("4x conv2d").
	Label string
	// N is the reconfigurable tile count.
	N int
	// Metrics are the Eq. (1) values.
	Metrics core.Metrics
	// Class is the taxonomy class.
	Class core.Class
	// Chosen is the algorithm's pick.
	Chosen core.StrategyKind
	// Times maps each applicable strategy to its P&R minutes.
	Times map[core.StrategyKind]float64
	// Best is the empirically fastest strategy.
	Best core.StrategyKind
}

// ChosenWithin reports whether the algorithm's pick is within frac of
// the empirical best.
func (p *StrategyPoint) ChosenWithin(frac float64) bool {
	best, ok := p.Times[p.Best]
	if !ok {
		return false
	}
	chosen, ok := p.Times[p.Chosen]
	if !ok {
		return false
	}
	return chosen <= best*(1+frac)
}

// StrategyMapResult is the sweep outcome.
type StrategyMapResult struct {
	Points []StrategyPoint
}

// Agreement returns the fraction of points where the chosen strategy is
// within tol of the empirical best.
func (r *StrategyMapResult) Agreement(tol float64) float64 {
	if len(r.Points) == 0 {
		return 0
	}
	hits := 0
	for i := range r.Points {
		if r.Points[i].ChosenWithin(tol) {
			hits++
		}
	}
	return float64(hits) / float64(len(r.Points))
}

// sweepDesign builds a 4x4 SoC hosting n reconfigurable tiles of the
// named accelerator.
func sweepDesign(label, acc string, n int) *socgen.Config {
	cfg := &socgen.Config{
		Name: label, Board: "VC707", Cols: 4, Rows: 4, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Core: tile.Leon3, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
		},
	}
	slots := []noc.Coord{
		{X: 3, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 1},
		{X: 0, Y: 2}, {X: 1, Y: 2}, {X: 2, Y: 2}, {X: 3, Y: 2},
		{X: 0, Y: 3}, {X: 1, Y: 3}, {X: 2, Y: 3}, {X: 3, Y: 3},
	}
	for i := 0; i < n && i < len(slots); i++ {
		cfg.Tiles = append(cfg.Tiles, tile.Tile{
			Name:      fmt.Sprintf("rt_%d", i+1),
			Kind:      tile.Reconf,
			AccelName: acc,
			Pos:       slots[i],
		})
	}
	return cfg
}

// StrategyMap sweeps accelerator type and count across the feasible
// design space and, for every design, compares the size-driven choice
// against exhaustively running serial, semi-parallel (τ=2) and fully
// parallel implementations.
func StrategyMap() (*StrategyMapResult, error) {
	res := &StrategyMapResult{}
	sweeps := []struct {
		acc    string
		counts []int
	}{
		{"mac", []int{2, 4, 8, 12}},
		{"sort", []int{1, 2, 3, 4, 6}},
		{"fft", []int{2, 3, 4}},
		{"gemm", []int{2, 3, 4, 5}},
		{"conv2d", []int{1, 2, 4}},
	}
	for _, sw := range sweeps {
		for _, n := range sw.counts {
			label := fmt.Sprintf("%dx %s", n, sw.acc)
			cfg := sweepDesign(label, sw.acc, n)
			d, err := elaborate(cfg)
			if err != nil {
				return nil, err
			}
			pt := StrategyPoint{Label: label, N: n, Times: make(map[core.StrategyKind]float64)}
			pt.Metrics, err = core.ComputeMetrics(d)
			if err != nil {
				return nil, err
			}
			pt.Class, err = core.Classify(pt.Metrics)
			if err != nil {
				return nil, err
			}
			chosen, err := core.Choose(d)
			if err != nil {
				return nil, err
			}
			pt.Chosen = chosen.Kind
			for _, kind := range []core.StrategyKind{core.Serial, core.SemiParallel, core.FullyParallel} {
				strat, err := core.ForceStrategy(d, kind, core.DefaultSemiTau)
				if err != nil {
					continue // strategy not applicable (e.g. semi with N<3)
				}
				r, err := flow.RunPRESP(context.Background(), d, flow.Options{Strategy: strat, SkipBitstreams: true})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s %s: %w", label, kind, err)
				}
				pt.Times[kind] = float64(r.PRWall)
			}
			pt.Best = bestStrategy(pt.Times)
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Render builds the sweep table.
func (r *StrategyMapResult) Render() *report.Table {
	t := report.New("Strategy map — size-driven choice vs exhaustive search (modelled minutes)",
		"design", "N", "κ%", "γ", "class", "serial", "semi", "fully", "chosen", "best")
	for i := range r.Points {
		p := &r.Points[i]
		cell := func(k core.StrategyKind) string {
			v, ok := p.Times[k]
			if !ok {
				return "-"
			}
			out := report.Minutes(v)
			if k == p.Chosen {
				out = report.Bold(out)
			}
			return out
		}
		t.AddRow(p.Label, p.N,
			fmt.Sprintf("%.1f", p.Metrics.Kappa*100),
			fmt.Sprintf("%.2f", p.Metrics.Gamma),
			p.Class.String(),
			cell(core.Serial), cell(core.SemiParallel), cell(core.FullyParallel),
			p.Chosen.String(), p.Best.String())
	}
	return t
}
