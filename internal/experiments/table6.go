package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"presp/internal/flow"
	"presp/internal/report"
	"presp/internal/wami"
)

// Table6Tile is one reconfigurable tile's allocation and bitstream size.
type Table6Tile struct {
	// Tile is the tile name (rt_1 ...).
	Tile string
	// Accs lists the hosted accelerator indices.
	Accs []int
	// PbsKB is the compressed partial bitstream size per accelerator in
	// binary kilobytes (all accelerators of a tile share the partition,
	// so sizes are close; the reported value is the largest, matching
	// the tile's worst-case reconfiguration).
	PbsKB float64
}

// Table6SoC is one runtime SoC's partitioning.
type Table6SoC struct {
	Name  string
	Tiles []Table6Tile
}

// TotalKB sums the per-tile bitstream sizes (one per tile), the storage
// footprint Table VI reports.
func (s *Table6SoC) TotalKB() float64 {
	var sum float64
	for _, t := range s.Tiles {
		sum += t.PbsKB
	}
	return sum
}

// Table6Result reproduces the accelerator partitioning and partial
// bitstream sizes (Table VI).
type Table6Result struct {
	SoCs []Table6SoC
}

// Table6 floorplans the three runtime SoCs and generates compressed
// partial bitstreams for every (tile, accelerator) pair.
func Table6() (*Table6Result, error) {
	reg, err := registry()
	if err != nil {
		return nil, err
	}
	res := &Table6Result{}
	for _, name := range wami.RuntimeSoCNames() {
		cfg, alloc, err := wami.RuntimeSoC(name)
		if err != nil {
			return nil, err
		}
		d, err := elaborate(cfg)
		if err != nil {
			return nil, err
		}
		plan, err := flow.FloorplanDesign(d, nil)
		if err != nil {
			return nil, err
		}
		am := make(map[string][]string, len(alloc))
		for tileName, idxs := range alloc {
			for _, idx := range idxs {
				am[tileName] = append(am[tileName], wami.Names[idx])
			}
		}
		bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, am, reg, true, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: bitstreams for %s: %w", name, err)
		}
		soc := Table6SoC{Name: name}
		tileNames := make([]string, 0, len(alloc))
		for t := range alloc {
			tileNames = append(tileNames, t)
		}
		sort.Strings(tileNames)
		for _, tileName := range tileNames {
			row := Table6Tile{Tile: tileName, Accs: alloc[tileName]}
			for _, bs := range bss[tileName] {
				if kb := bs.SizeKB(); kb > row.PbsKB {
					row.PbsKB = kb
				}
			}
			soc.Tiles = append(soc.Tiles, row)
		}
		res.SoCs = append(res.SoCs, soc)
	}
	return res, nil
}

// SoC returns the named SoC's partitioning.
func (r *Table6Result) SoC(name string) (*Table6SoC, error) {
	for i := range r.SoCs {
		if r.SoCs[i].Name == name {
			return &r.SoCs[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: Table VI has no SoC %q", name)
}

// Render builds the Table VI layout.
func (r *Table6Result) Render() *report.Table {
	t := report.New("Table VI — accelerator partitioning and partial bitstream sizes",
		"SoC", "tile", "WAMI accs", "pbs (KB)")
	for _, s := range r.SoCs {
		for _, tile := range s.Tiles {
			idx := make([]string, len(tile.Accs))
			for i, a := range tile.Accs {
				idx[i] = fmt.Sprintf("%d", a)
			}
			t.AddRow(s.Name, tile.Tile, "{"+strings.Join(idx, ", ")+"}", fmt.Sprintf("%.0f", tile.PbsKB))
		}
	}
	return t
}
