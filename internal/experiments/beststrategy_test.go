package experiments

import (
	"testing"

	"presp/internal/core"
)

// TestBestStrategyDeterministic: the winner of the exhaustive search
// must not depend on map iteration order — exact ties resolve in
// declaration order, and absent strategies never win on the zero value.
func TestBestStrategyDeterministic(t *testing.T) {
	tie := map[core.StrategyKind]float64{
		core.Serial:        10,
		core.SemiParallel:  10,
		core.FullyParallel: 10,
	}
	for i := 0; i < 50; i++ {
		if got := bestStrategy(tie); got != core.Serial {
			t.Fatalf("three-way tie resolved to %v, want Serial", got)
		}
	}
	partialTie := map[core.StrategyKind]float64{
		core.SemiParallel:  7,
		core.FullyParallel: 7,
	}
	for i := 0; i < 50; i++ {
		if got := bestStrategy(partialTie); got != core.SemiParallel {
			t.Fatalf("two-way tie resolved to %v, want SemiParallel", got)
		}
	}
	noSerial := map[core.StrategyKind]float64{
		core.SemiParallel:  9,
		core.FullyParallel: 4,
	}
	if got := bestStrategy(noSerial); got != core.FullyParallel {
		t.Fatalf("got %v, want FullyParallel (Serial is absent and must not win on its zero value)", got)
	}
	if got := bestStrategy(map[core.StrategyKind]float64{core.FullyParallel: 3, core.Serial: 5}); got != core.FullyParallel {
		t.Fatalf("got %v, want the fastest strategy FullyParallel", got)
	}
}
