package experiments

import (
	"context"
	"fmt"

	"presp/internal/core"
	"presp/internal/flow"
	"presp/internal/report"
	"presp/internal/wami"
)

// Table5SoC compares the full PR-ESP implementation (synthesis + P&R)
// against the monolithic single-instance baseline for one WAMI SoC.
type Table5SoC struct {
	Name string
	// PR-ESP side.
	Synth    float64
	TStatic  float64
	MaxOmega float64
	Total    float64
	Tau      int
	Strategy core.StrategyKind
	// Monolithic side.
	MonoSynth float64
	MonoPR    float64
	MonoTotal float64
}

// Improvement returns the fractional total-time gain of PR-ESP over the
// monolithic baseline (positive = PR-ESP faster).
func (s *Table5SoC) Improvement() float64 {
	if s.MonoTotal == 0 {
		return 0
	}
	return (s.MonoTotal - s.Total) / s.MonoTotal
}

// Table5Result reproduces the flow comparison (Table V).
type Table5Result struct {
	SoCs []Table5SoC
}

// Table5 runs both flows end to end on SoC_A..SoC_D, letting the
// size-driven chooser pick the PR-ESP strategy.
func Table5() (*Table5Result, error) {
	res := &Table5Result{}
	for _, name := range wami.FlowSoCNames() {
		cfg, err := wami.FlowSoC(name)
		if err != nil {
			return nil, err
		}
		d, err := elaborate(cfg)
		if err != nil {
			return nil, err
		}
		pr, err := flow.RunPRESP(context.Background(), d, flow.Options{SkipBitstreams: true})
		if err != nil {
			return nil, fmt.Errorf("experiments: PR-ESP flow on %s: %w", name, err)
		}
		mono, err := flow.RunMonolithic(context.Background(), d, flow.Options{SkipBitstreams: true})
		if err != nil {
			return nil, fmt.Errorf("experiments: monolithic flow on %s: %w", name, err)
		}
		res.SoCs = append(res.SoCs, Table5SoC{
			Name:      name,
			Synth:     float64(pr.SynthWall),
			TStatic:   float64(pr.TStatic),
			MaxOmega:  float64(pr.MaxOmega),
			Total:     float64(pr.Total),
			Tau:       pr.Strategy.Tau,
			Strategy:  pr.Strategy.Kind,
			MonoSynth: float64(mono.SynthWall),
			MonoPR:    float64(mono.PRWall),
			MonoTotal: float64(mono.Total),
		})
	}
	return res, nil
}

// SoC returns the named SoC's comparison.
func (r *Table5Result) SoC(name string) (*Table5SoC, error) {
	for i := range r.SoCs {
		if r.SoCs[i].Name == name {
			return &r.SoCs[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: Table V has no SoC %q", name)
}

// Render builds the Table V layout.
func (r *Table5Result) Render() *report.Table {
	t := report.New("Table V — PR-ESP vs monolithic compile time (modelled minutes)",
		"SoC", "synth", "t_static", "maxΩ", "T_tot", "τ/strategy",
		"mono synth", "mono P&R", "mono T_tot", "gain")
	for _, s := range r.SoCs {
		omega := "-"
		tstatic := "-"
		if s.Strategy != core.Serial {
			omega = report.Minutes(s.MaxOmega)
			tstatic = report.Minutes(s.TStatic)
		}
		t.AddRow(s.Name,
			report.Minutes(s.Synth),
			tstatic,
			omega,
			report.Minutes(s.Total),
			fmt.Sprintf("%d %s", s.Tau, s.Strategy),
			report.Minutes(s.MonoSynth),
			report.Minutes(s.MonoPR),
			report.Minutes(s.MonoTotal),
			report.Pct(s.Improvement()))
	}
	return t
}
