package experiments

import (
	"context"
	"fmt"

	"presp/internal/flow"
	"presp/internal/reconfig"
	"presp/internal/report"
	"presp/internal/sim"
	"presp/internal/wami"
)

// Fig4SoC is the runtime evaluation of one WAMI SoC.
type Fig4SoC struct {
	Name string
	// Tiles is the reconfigurable tile count.
	Tiles int
	// TimePerFrame is the steady-state frame latency in seconds.
	TimePerFrame float64
	// EnergyPerFrame is the steady-state energy in Joules per frame.
	EnergyPerFrame float64
	// Reconfigurations counts partial reconfigurations over the run.
	Reconfigurations int
	// ReconfigTime is the cumulative reconfiguration latency (s).
	ReconfigTime float64
	// CPUFallbacks counts kernels executed in software.
	CPUFallbacks int
	// Detections is the total change-detection pixel count (a
	// functional-correctness signal: the SoC actually found the moving
	// targets).
	Detections int
}

// Fig4Result reproduces the execution-time / energy-efficiency
// comparison of Fig 4.
type Fig4Result struct {
	SoCs []Fig4SoC
	// Frames and FrameEdge record the workload.
	Frames    int
	FrameEdge int
}

// Fig4Options tunes the runtime evaluation.
type Fig4Options struct {
	// Frames is the frame count (first frame is warm-up); 0 = 5.
	Frames int
	// FrameEdge is the frame edge length in pixels; 0 = 128.
	FrameEdge int
	// Runtime overrides the runtime configuration (nil = default).
	Runtime *reconfig.Config
	// Compress selects compressed partial bitstreams (the paper's
	// deployment); the ablation bench flips it off.
	Compress bool
}

// Fig4 runs the WAMI application on SoC_X, SoC_Y and SoC_Z.
func Fig4(opt Fig4Options) (*Fig4Result, error) {
	if opt.Frames == 0 {
		opt.Frames = 5
	}
	if opt.FrameEdge == 0 {
		opt.FrameEdge = 128
	}
	res := &Fig4Result{Frames: opt.Frames, FrameEdge: opt.FrameEdge}
	for _, name := range wami.RuntimeSoCNames() {
		soc, err := runFig4SoC(name, opt)
		if err != nil {
			return nil, err
		}
		res.SoCs = append(res.SoCs, *soc)
	}
	return res, nil
}

// runFig4SoC builds, floorplans, stages bitstreams for and simulates one
// runtime SoC.
func runFig4SoC(name string, opt Fig4Options) (*Fig4SoC, error) {
	reg, err := registry()
	if err != nil {
		return nil, err
	}
	cfg, alloc, err := wami.RuntimeSoC(name)
	if err != nil {
		return nil, err
	}
	d, err := elaborate(cfg)
	if err != nil {
		return nil, err
	}
	plan, err := flow.FloorplanDesign(d, nil)
	if err != nil {
		return nil, err
	}
	rcfg := reconfig.DefaultConfig()
	if opt.Runtime != nil {
		rcfg = *opt.Runtime
	}
	eng := sim.NewEngine()
	rt, err := reconfig.New(eng, d, reg, plan, rcfg)
	if err != nil {
		return nil, err
	}
	am := make(map[string][]string, len(alloc))
	for tileName, idxs := range alloc {
		for _, idx := range idxs {
			am[tileName] = append(am[tileName], wami.Names[idx])
		}
	}
	bss, err := flow.GenerateRuntimeBitstreams(context.Background(), d, plan, am, reg, opt.Compress, 0)
	if err != nil {
		return nil, err
	}
	for tileName, m := range bss {
		for acc, bs := range m {
			if err := rt.RegisterBitstream(tileName, acc, bs); err != nil {
				return nil, err
			}
		}
	}
	pcfg := wami.DefaultPipelineConfig()
	// The runtime evaluation runs one inverse-compositional iteration
	// per frame: inter-frame motion is sub-pixel, and each accelerator
	// is then loaded exactly once per frame, matching Table VI's
	// one-bitstream-per-kernel accounting.
	pcfg.LKIterations = 1
	runner, err := wami.NewRunner(rt, alloc, pcfg)
	if err != nil {
		return nil, err
	}
	src, err := wami.NewFrameSource(opt.FrameEdge, 0.7, -0.4, 3)
	if err != nil {
		return nil, err
	}
	rep, err := runner.ProcessFrames(src, opt.Frames)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig 4 run on %s: %w", name, err)
	}
	soc := &Fig4SoC{
		Name:             name,
		Tiles:            len(alloc),
		TimePerFrame:     rep.TimePerFrame(),
		EnergyPerFrame:   rep.EnergyPerFrame(),
		Reconfigurations: rep.Stats.Reconfigurations,
		ReconfigTime:     rep.Stats.ReconfigTime.Seconds(),
		CPUFallbacks:     rep.Stats.CPUFallbacks,
	}
	for _, f := range rep.Frames {
		soc.Detections += f.Detections
	}
	return soc, nil
}

// SoC returns the named SoC's runtime evaluation.
func (r *Fig4Result) SoC(name string) (*Fig4SoC, error) {
	for i := range r.SoCs {
		if r.SoCs[i].Name == name {
			return &r.SoCs[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: Fig 4 has no SoC %q", name)
}

// Render builds the Fig 4 comparison table.
func (r *Fig4Result) Render() *report.Table {
	t := report.New(
		fmt.Sprintf("Fig 4 — execution time and energy efficiency (%d frames of %dx%d)", r.Frames, r.FrameEdge, r.FrameEdge),
		"SoC", "tiles", "time/frame (s)", "J/frame", "reconfigs", "reconf time (s)", "CPU kernels", "detections")
	for _, s := range r.SoCs {
		t.AddRow(s.Name, s.Tiles,
			fmt.Sprintf("%.4f", s.TimePerFrame),
			fmt.Sprintf("%.3f", s.EnergyPerFrame),
			s.Reconfigurations,
			fmt.Sprintf("%.3f", s.ReconfigTime),
			s.CPUFallbacks,
			s.Detections)
	}
	return t
}
