// Package rtl represents the RTL hierarchy the PR-ESP flow manipulates:
// modules, instances, ports and black boxes. The flow does not need full
// gate-level netlists — it needs the structural hierarchy (to split static
// from reconfigurable sources), port lists (to check reconfigurable
// wrapper interface compliance and DFX rules) and per-module resource
// statistics (for the size-driven parallelism model).
package rtl

import (
	"fmt"
	"sort"

	"presp/internal/fpga"
)

// PortDir is the direction of a module port.
type PortDir int

const (
	In PortDir = iota
	Out
	InOut
)

// String returns the Verilog-style direction keyword.
func (d PortDir) String() string {
	switch d {
	case In:
		return "input"
	case Out:
		return "output"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("PortDir(%d)", int(d))
	}
}

// PortClass tags ports with their architectural role so DFX design rule
// checks can reason about them without parsing names.
type PortClass int

const (
	// DataPort carries load/store or streaming payload.
	DataPort PortClass = iota
	// ConfigPort is a memory-mapped register interface.
	ConfigPort
	// ClockPort is a clock input.
	ClockPort
	// ClockOutPort is a clock *output* — prohibited inside reconfigurable
	// partitions by the Xilinx DFX guideline on route-through clocks.
	ClockOutPort
	// ResetPort is a reset input.
	ResetPort
	// InterruptPort signals task completion.
	InterruptPort
)

// String names the port class.
func (c PortClass) String() string {
	switch c {
	case DataPort:
		return "data"
	case ConfigPort:
		return "config"
	case ClockPort:
		return "clock"
	case ClockOutPort:
		return "clock-out"
	case ResetPort:
		return "reset"
	case InterruptPort:
		return "interrupt"
	default:
		return fmt.Sprintf("PortClass(%d)", int(c))
	}
}

// Port is one port of a module interface.
type Port struct {
	Name  string
	Dir   PortDir
	Width int
	Class PortClass
}

// Module is an RTL module definition.
type Module struct {
	// Name is the module name, unique within a Library.
	Name string
	// Ports is the module interface.
	Ports []Port
	// Cost is the post-synthesis resource estimate for the module body
	// excluding children (set by the HLS estimator or the tile library).
	Cost fpga.Resources
	// Children are the instantiated sub-modules.
	Children []*Instance
	// BlackBox marks a module whose implementation is deliberately absent
	// (the flow replaces reconfigurable accelerators with black boxes
	// during static synthesis).
	BlackBox bool
	// ClockModifying marks modules containing clock-modifying primitives
	// (MMCM/PLL/BUFGCE), which Xilinx DFX prohibits inside reconfigurable
	// partitions.
	ClockModifying bool
}

// Instance is one instantiation of a module inside a parent.
type Instance struct {
	// InstName is the instance name within the parent.
	InstName string
	// Mod is the instantiated module definition.
	Mod *Module
}

// AddChild instantiates child inside m under instName.
func (m *Module) AddChild(instName string, child *Module) *Instance {
	inst := &Instance{InstName: instName, Mod: child}
	m.Children = append(m.Children, inst)
	return inst
}

// AddPort appends a port to the module interface.
func (m *Module) AddPort(name string, dir PortDir, width int, class PortClass) {
	m.Ports = append(m.Ports, Port{Name: name, Dir: dir, Width: width, Class: class})
}

// TotalCost returns the resource cost of the module including all
// children, recursively. Black boxes contribute nothing.
func (m *Module) TotalCost() fpga.Resources {
	if m.BlackBox {
		return fpga.Resources{}
	}
	total := m.Cost
	for _, c := range m.Children {
		total = total.Add(c.Mod.TotalCost())
	}
	return total
}

// ContainsClockModifying reports whether the module or any descendant
// contains clock-modifying logic.
func (m *Module) ContainsClockModifying() bool {
	if m.ClockModifying {
		return true
	}
	for _, c := range m.Children {
		if c.Mod.ContainsClockModifying() {
			return true
		}
	}
	return false
}

// DrivesClockOut reports whether the module interface drives a clock
// output (a route-through clock path under DFX rules).
func (m *Module) DrivesClockOut() bool {
	for _, p := range m.Ports {
		if p.Class == ClockOutPort && p.Dir == Out {
			return true
		}
	}
	return false
}

// Walk visits m and every descendant module in depth-first order. The
// visit function receives the hierarchical path of each module.
func (m *Module) Walk(visit func(path string, mod *Module)) {
	m.walk(m.Name, visit)
}

func (m *Module) walk(path string, visit func(string, *Module)) {
	visit(path, m)
	for _, c := range m.Children {
		c.Mod.walk(path+"/"+c.InstName, visit)
	}
}

// Find returns the first descendant instance whose module name matches,
// or nil.
func (m *Module) Find(moduleName string) *Module {
	if m.Name == moduleName {
		return m
	}
	for _, c := range m.Children {
		if found := c.Mod.Find(moduleName); found != nil {
			return found
		}
	}
	return nil
}

// CloneAsBlackBox returns a black-box wrapper carrying the same interface
// as m but no contents. The PR-ESP flow auto-generates these for every
// reconfigurable accelerator before static synthesis.
func (m *Module) CloneAsBlackBox() *Module {
	bb := &Module{
		Name:     m.Name + "_bb",
		Ports:    append([]Port(nil), m.Ports...),
		BlackBox: true,
	}
	return bb
}

// Library is a named collection of module definitions.
type Library struct {
	mods map[string]*Module
}

// NewLibrary returns an empty module library.
func NewLibrary() *Library {
	return &Library{mods: make(map[string]*Module)}
}

// Register adds a module definition; duplicate names are an error.
func (l *Library) Register(m *Module) error {
	if _, dup := l.mods[m.Name]; dup {
		return fmt.Errorf("rtl: duplicate module %q", m.Name)
	}
	l.mods[m.Name] = m
	return nil
}

// Lookup fetches a module by name.
func (l *Library) Lookup(name string) (*Module, bool) {
	m, ok := l.mods[name]
	return m, ok
}

// Names lists registered module names sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.mods))
	for n := range l.mods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes a hierarchy: module count, instance count, total cost.
type Stats struct {
	Modules   int
	Instances int
	Cost      fpga.Resources
}

// HierarchyStats computes Stats over module m.
func HierarchyStats(m *Module) Stats {
	var s Stats
	seen := make(map[*Module]bool)
	m.Walk(func(_ string, mod *Module) {
		s.Instances++
		if !seen[mod] {
			seen[mod] = true
			s.Modules++
		}
	})
	s.Instances-- // the root itself is not an instance
	s.Cost = m.TotalCost()
	return s
}
