package rtl

import (
	"strings"
	"testing"

	"presp/internal/fpga"
)

func leaf(name string, luts int) *Module {
	return &Module{Name: name, Cost: fpga.NewResources(luts, luts, 0, 0)}
}

func TestTotalCostRecursive(t *testing.T) {
	top := leaf("top", 100)
	a := leaf("a", 10)
	b := leaf("b", 20)
	a.AddChild("b0", b)
	top.AddChild("a0", a)
	if got := top.TotalCost()[fpga.LUT]; got != 130 {
		t.Fatalf("TotalCost: got %d want 130", got)
	}
}

func TestBlackBoxContributesNothing(t *testing.T) {
	top := leaf("top", 100)
	bb := leaf("hidden", 999)
	bb.BlackBox = true
	top.AddChild("bb0", bb)
	if got := top.TotalCost()[fpga.LUT]; got != 100 {
		t.Fatalf("black box leaked cost: got %d", got)
	}
}

func TestCloneAsBlackBox(t *testing.T) {
	m := leaf("acc", 500)
	m.AddPort("clk", In, 1, ClockPort)
	m.AddPort("data", Out, 64, DataPort)
	bb := m.CloneAsBlackBox()
	if !bb.BlackBox {
		t.Fatal("clone is not a black box")
	}
	if len(bb.Ports) != len(m.Ports) {
		t.Fatal("clone lost ports")
	}
	if !bb.TotalCost().IsZero() {
		t.Fatal("black box clone has cost")
	}
	if bb.Name == m.Name {
		t.Fatal("clone must be renamed to avoid module collisions")
	}
	// Mutating the clone's port list must not touch the original.
	bb.AddPort("extra", In, 1, DataPort)
	if len(m.Ports) != 2 {
		t.Fatal("clone aliases the original's ports")
	}
}

func TestClockRuleDetection(t *testing.T) {
	top := leaf("tile", 10)
	dvfs := leaf("dvfs", 5)
	dvfs.ClockModifying = true
	top.AddChild("dvfs0", dvfs)
	if !top.ContainsClockModifying() {
		t.Fatal("nested clock-modifying logic not detected")
	}
	clean := leaf("clean", 10)
	if clean.ContainsClockModifying() {
		t.Fatal("false positive clock detection")
	}
	clkOut := leaf("out", 5)
	clkOut.AddPort("clk_out", Out, 1, ClockOutPort)
	if !clkOut.DrivesClockOut() {
		t.Fatal("clock output not detected")
	}
	clkIn := leaf("in", 5)
	clkIn.AddPort("clk", In, 1, ClockPort)
	if clkIn.DrivesClockOut() {
		t.Fatal("clock input misdetected as output")
	}
}

func TestWalkVisitsAllWithPaths(t *testing.T) {
	top := leaf("top", 1)
	a := leaf("a", 1)
	b := leaf("b", 1)
	a.AddChild("b0", b)
	top.AddChild("a0", a)
	var paths []string
	top.Walk(func(path string, _ *Module) { paths = append(paths, path) })
	want := []string{"top", "top/a0", "top/a0/b0"}
	if len(paths) != len(want) {
		t.Fatalf("walk visited %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("walk order: got %v want %v", paths, want)
		}
	}
}

func TestFind(t *testing.T) {
	top := leaf("top", 1)
	a := leaf("a", 1)
	top.AddChild("a0", a)
	if top.Find("a") != a {
		t.Fatal("Find missed a child")
	}
	if top.Find("nope") != nil {
		t.Fatal("Find invented a module")
	}
	if top.Find("top") != top {
		t.Fatal("Find should match the root")
	}
}

func TestLibrary(t *testing.T) {
	l := NewLibrary()
	if err := l.Register(leaf("m1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Register(leaf("m1", 2)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, ok := l.Lookup("m1"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := l.Lookup("m2"); ok {
		t.Fatal("phantom module found")
	}
	if err := l.Register(leaf("a0", 1)); err != nil {
		t.Fatal(err)
	}
	names := l.Names()
	if len(names) != 2 || names[0] != "a0" || names[1] != "m1" {
		t.Fatalf("Names not sorted: %v", names)
	}
}

func TestHierarchyStats(t *testing.T) {
	top := leaf("top", 100)
	shared := leaf("shared", 10)
	top.AddChild("s0", shared)
	top.AddChild("s1", shared)
	s := HierarchyStats(top)
	if s.Modules != 2 {
		t.Fatalf("unique modules: got %d want 2", s.Modules)
	}
	if s.Instances != 2 {
		t.Fatalf("instances: got %d want 2", s.Instances)
	}
	if s.Cost[fpga.LUT] != 120 {
		t.Fatalf("cost: got %d want 120", s.Cost[fpga.LUT])
	}
}

func TestPortStrings(t *testing.T) {
	if In.String() != "input" || Out.String() != "output" || InOut.String() != "inout" {
		t.Fatal("direction names wrong")
	}
	for _, c := range []PortClass{DataPort, ConfigPort, ClockPort, ClockOutPort, ResetPort, InterruptPort} {
		if strings.HasPrefix(c.String(), "PortClass(") {
			t.Fatalf("class %d unnamed", int(c))
		}
	}
}
