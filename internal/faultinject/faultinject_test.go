package faultinject

import (
	"fmt"
	"strings"
	"testing"
)

func TestDeterministicRuleWindow(t *testing.T) {
	inj, err := New(Plan{Rules: []Rule{{Op: OpICAP, Site: "rt_1", After: 2, Count: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, inj.Check(OpICAP, "rt_1") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("occurrence %d: faulted=%v, sequence %v", i, got[i], got)
		}
	}
	if inj.Injected() != 2 || inj.InjectedBy(OpICAP) != 2 {
		t.Fatalf("injected: %d / %d", inj.Injected(), inj.InjectedBy(OpICAP))
	}
}

func TestPersistentRule(t *testing.T) {
	inj, err := New(Plan{Rules: []Rule{{Op: OpRecouple, Count: -1}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if inj.Check(OpRecouple, "rt_1") == nil {
			t.Fatalf("persistent rule skipped occurrence %d", i)
		}
	}
}

func TestSiteSelectivity(t *testing.T) {
	inj, err := New(Plan{Rules: []Rule{{Op: OpTransfer, Site: "dma", Count: -1}}})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Check(OpTransfer, "mem-rsp", "rt_1") != nil {
		t.Fatal("rule for dma plane hit mem-rsp transfer")
	}
	if inj.Check(OpTransfer, "dma", "rt_1") == nil {
		t.Fatal("rule missed dma transfer")
	}
	if inj.Check(OpICAP, "dma") != nil {
		t.Fatal("transfer rule hit an ICAP operation")
	}
	// Any listed site matches, not only the first.
	if inj.Check(OpTransfer, "interrupt", "dma") == nil {
		t.Fatal("rule missed dma as secondary site")
	}
}

func TestFaultError(t *testing.T) {
	inj, err := New(Plan{Rules: []Rule{{Op: OpDecouple, Count: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	ferr := inj.Check(OpDecouple, "rt_1")
	if ferr == nil {
		t.Fatal("no fault")
	}
	f, ok := As(ferr)
	if !ok {
		t.Fatal("fault not recognized by As")
	}
	if f.Op != OpDecouple || f.Site != "rt_1" || f.Seq != 1 {
		t.Fatalf("fault fields: %+v", f)
	}
	if !strings.Contains(ferr.Error(), "decouple") || !strings.Contains(ferr.Error(), "rt_1") {
		t.Fatalf("error text: %v", ferr)
	}
	if _, ok := As(fmt.Errorf("plain")); ok {
		t.Fatal("plain error recognized as fault")
	}
	if _, ok := As(fmt.Errorf("wrapped: %w", ferr)); !ok {
		t.Fatal("wrapped fault not recognized")
	}
}

// TestRateRuleDeterminism: a seeded rate rule injects an identical
// fault sequence on every fresh injector.
func TestRateRuleDeterminism(t *testing.T) {
	sequence := func(seed uint64) string {
		inj, err := New(Plan{Seed: seed, Rules: []Rule{{Op: OpTransfer, Rate: 0.3}}})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 200; i++ {
			if inj.Check(OpTransfer, "dma") != nil {
				b.WriteByte('X')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := sequence(7), sequence(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == sequence(8) {
		t.Fatal("different seeds produced identical sequences (suspicious)")
	}
	hits := strings.Count(a, "X")
	if hits < 30 || hits > 90 {
		t.Fatalf("rate 0.3 over 200 draws hit %d times", hits)
	}
}

func TestRateRuleCountBound(t *testing.T) {
	inj, err := New(Plan{Seed: 1, Rules: []Rule{{Op: OpKernel, Rate: 1.0, Count: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 50; i++ {
		if inj.Check(OpKernel, "fft") != nil {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("count bound ignored: %d faults", n)
	}
}

func TestValidation(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Op: OpICAP, Count: 0}}},            // never fires
		{Rules: []Rule{{Op: OpICAP, Rate: 1.5, Count: 1}}}, // rate > 1
		{Rules: []Rule{{Op: OpICAP, After: -1, Count: 1}}}, // negative after
		{Rules: []Rule{{Op: Op(99), Count: 1}}},            // unknown op
		{Rules: []Rule{{Op: OpICAP, Rate: -0.1}}},          // negative rate
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	if _, err := New(Plan{}); err != nil {
		t.Fatalf("empty plan rejected: %v", err)
	}
}

// TestSEURuleParseAndValidation: the seu op round-trips through the
// plan grammar, and the dead-rule shapes — zero rate with no count —
// are rejected with an error that names the fix instead of being
// silently accepted.
func TestSEURuleParseAndValidation(t *testing.T) {
	p, err := ParsePlan("seed=9,seu@rt_1=0.01,seu@t0:after=10:count=3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: OpSEU, Site: "rt_1", Rate: 0.01},
		{Op: OpSEU, Site: "t0", After: 10, Count: 3},
	}
	for i, w := range want {
		if p.Rules[i] != w {
			t.Errorf("rule %d: got %+v want %+v", i, p.Rules[i], w)
		}
	}
	if _, err := ParsePlan(p.String()); err != nil {
		t.Fatalf("seu plan does not round-trip: %q: %v", p.String(), err)
	}
	for _, dead := range []string{"seu@rt_1=0", "seu=0.0", "seu@t0:count=0"} {
		_, err := ParsePlan(dead)
		if err == nil {
			t.Errorf("dead seu rule %q accepted", dead)
			continue
		}
		if !strings.Contains(err.Error(), "seu rule") || !strings.Contains(err.Error(), "rate") {
			t.Errorf("dead seu rule %q: error does not name the fix: %v", dead, err)
		}
	}
	// The generic dead-rule shape gets the generic clear error.
	if _, err := ParsePlan("icap=0"); err == nil || !strings.Contains(err.Error(), "never fires") {
		t.Errorf("dead icap rule: %v", err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Check(OpICAP, "rt_1") != nil {
		t.Fatal("nil injector faulted")
	}
	if inj.Injected() != 0 || inj.InjectedBy(OpICAP) != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=42,icap@rt_1:after=2:count=1,transfer@dma=0.05,recouple:count=-1,crc=0.2:count=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Rules) != 4 {
		t.Fatalf("plan: %+v", p)
	}
	want := []Rule{
		{Op: OpICAP, Site: "rt_1", After: 2, Count: 1},
		{Op: OpTransfer, Site: "dma", Rate: 0.05},
		{Op: OpRecouple, Count: -1},
		{Op: OpFetchCRC, Rate: 0.2, Count: 3},
	}
	for i, w := range want {
		if p.Rules[i] != w {
			t.Errorf("rule %d: got %+v want %+v", i, p.Rules[i], w)
		}
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	in := "seed=7,icap@rt_1:after=1,transfer@dma=0.1,kernel@fft:count=-1"
	p, err := ParsePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.String(), err)
	}
	if p.Seed != p2.Seed || len(p.Rules) != len(p2.Rules) {
		t.Fatalf("round trip changed plan: %q -> %q", in, p2.String())
	}
	for i := range p.Rules {
		if p.Rules[i] != p2.Rules[i] {
			t.Fatalf("rule %d changed: %+v vs %+v", i, p.Rules[i], p2.Rules[i])
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"warp@rt_1",       // unknown op
		"icap@",           // empty site
		"seed=banana",     // bad seed
		"icap:count=x",    // bad count
		"icap:depth=3",    // unknown option
		"transfer=2.0",    // rate out of range
		"icap:count=0",    // never fires
		"icap@rt_1:after", // option without value
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
	p, err := ParsePlan("")
	if err != nil || len(p.Rules) != 0 {
		t.Fatalf("empty plan: %v %+v", err, p)
	}
}

// TestDrawConsumptionIsStable: rate rules consume a draw on every
// match whether or not an earlier deterministic rule fired, so adding
// a one-shot rule does not shift the rate rule's later fault pattern.
func TestDrawConsumptionIsStable(t *testing.T) {
	run := func(extra bool) string {
		rules := []Rule{{Op: OpTransfer, Rate: 0.25}}
		if extra {
			rules = append([]Rule{{Op: OpTransfer, Count: 1}}, rules...)
		}
		inj, err := New(Plan{Seed: 3, Rules: rules})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 100; i++ {
			if inj.Check(OpTransfer, "dma") != nil {
				b.WriteByte('X')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	plain, withExtra := run(false), run(true)
	// Occurrence 0 faults deterministically in the extra run; the rate
	// pattern from occurrence 1 on must be unchanged.
	if plain[1:] != withExtra[1:] {
		t.Fatalf("one-shot rule perturbed the rate sequence:\n%s\n%s", plain, withExtra)
	}
}
