// Package faultinject is a deterministic, seed-driven fault-injection
// layer for the simulated hardware substrate. A Plan names the
// operations that must fail — NoC transfers, decoupler engage and
// disengage, ICAP programming, bitstream fetch corruption, kernel
// execution — either at exact occurrence indices (deterministic rules)
// or at a seeded probability per occurrence (rate rules). Because the
// simulation engine is single-threaded and its event order is
// reproducible, the same plan against the same workload injects the
// same faults at the same virtual times on every run, which is what
// makes error-path behaviour testable at all: a failure you cannot
// replay is a failure you cannot regression-test.
//
// The package is dependency-free by design; each substrate layer
// (internal/noc, internal/reconfig) adapts its own operations onto
// Injector.Check sites.
package faultinject

import (
	"errors"
	"fmt"
	"strings"
)

// Op identifies one class of injectable operation.
type Op int

const (
	// OpTransfer is a NoC packet transfer (any plane; rules select a
	// plane or endpoint tile through their site).
	OpTransfer Op = iota
	// OpDecouple is the decoupler engaging before reconfiguration.
	OpDecouple
	// OpRecouple is the decoupler disengaging after reconfiguration.
	OpRecouple
	// OpICAP is ICAP programming of a fetched bitstream.
	OpICAP
	// OpFetchCRC corrupts a bitstream image during the DMA fetch; the
	// manager's CRC verification catches it before the ICAP does.
	OpFetchCRC
	// OpKernel is accelerator kernel execution on a tile.
	OpKernel
	// OpCADSynth is a (simulated) CAD synthesis run in the compile-time
	// flow. CAD operations are checked through vivado.FaultHook by a
	// StableInjector, whose occurrence windows apply independently at
	// each site (see StableInjector).
	OpCADSynth
	// OpCADFloorplan is the floorplanning step of the flow.
	OpCADFloorplan
	// OpCADImpl is a place-and-route run (static pre-route, serial or
	// in-context).
	OpCADImpl
	// OpCADBitgen is bitstream generation (full or partial).
	OpCADBitgen
	// OpCADDRC is the DFX design rule check on a partition.
	OpCADDRC
	// OpSEU is a configuration-memory single-event upset: a radiation-
	// induced bit flip in a tile's resident configuration image. SEU
	// occurrences are the runtime's periodic per-tile config-memory
	// sample ticks (reconfig.Config.SEUCheckInterval apart in virtual
	// time), checked through a StableInjector so each tile's upset
	// schedule is a pure function of (seed, rule, tile, tick) — never of
	// what other tiles or operations did first.
	OpSEU
	numOps
)

// String names the operation the way ParsePlan spells it.
func (o Op) String() string {
	switch o {
	case OpTransfer:
		return "transfer"
	case OpDecouple:
		return "decouple"
	case OpRecouple:
		return "recouple"
	case OpICAP:
		return "icap"
	case OpFetchCRC:
		return "crc"
	case OpKernel:
		return "kernel"
	case OpCADSynth:
		return "synth"
	case OpCADFloorplan:
		return "floorplan"
	case OpCADImpl:
		return "impl"
	case OpCADBitgen:
		return "bitgen"
	case OpCADDRC:
		return "drc"
	case OpSEU:
		return "seu"
	default:
		return fmt.Sprintf("op-%d", int(o))
	}
}

// ParseOp parses an operation name as spelled by Op.String.
func ParseOp(s string) (Op, error) {
	for o := Op(0); o < numOps; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown operation %q", s)
}

// Rule injects faults into one class of operation. A rule matches an
// operation when the Op is equal and Site is empty or equal to one of
// the sites the caller reports (plane name, tile name, accelerator
// name — whatever labels the layer attaches to the operation).
//
// Matching occurrences are numbered from zero. The first After matches
// never fault. A deterministic rule (Rate == 0) then faults the next
// Count matches (Count < 0 means every later match — a persistent,
// stuck-at fault). A rate rule (Rate > 0) faults each later match with
// probability Rate drawn from the plan's seeded generator, stopping
// after Count injected faults when Count > 0.
type Rule struct {
	Op    Op
	Site  string
	After int
	Count int
	Rate  float64
}

// String renders the rule in ParsePlan syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Op.String())
	if r.Site != "" {
		fmt.Fprintf(&b, "@%s", r.Site)
	}
	if r.Rate > 0 {
		fmt.Fprintf(&b, "=%g", r.Rate)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, ":after=%d", r.After)
	}
	if r.Rate > 0 && r.Count != 0 || r.Rate == 0 && r.Count != 1 {
		fmt.Fprintf(&b, ":count=%d", r.Count)
	}
	return b.String()
}

func (r Rule) validate() error {
	if r.Op < 0 || r.Op >= numOps {
		return fmt.Errorf("faultinject: rule %s: unknown op", r)
	}
	if r.After < 0 {
		return fmt.Errorf("faultinject: rule %s: negative after", r)
	}
	if r.Rate < 0 || r.Rate > 1 {
		return fmt.Errorf("faultinject: rule %s: rate %g outside [0,1]", r, r.Rate)
	}
	if r.Rate == 0 && r.Count == 0 {
		// A zero-rate, zero-count rule can never fire. Spell out the fix
		// for the seu op, where the dead rule is an easy typo
		// ("seu@t0=0" instead of "seu@t0=0.01").
		if r.Op == OpSEU {
			return fmt.Errorf("faultinject: rule %s: seu rule with zero rate and no count injects no upsets; give it a rate (seu@t0=0.01) or a count (seu@t0:count=3)", r)
		}
		return fmt.Errorf("faultinject: rule %s: zero rate and no count — the rule never fires (set a rate or a count)", r)
	}
	return nil
}

// Plan is a reproducible fault schedule: a seed for the rate rules plus
// the rule list. The zero Plan injects nothing.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// Validate checks every rule.
func (p *Plan) Validate() error {
	for _, r := range p.Rules {
		if err := r.validate(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the plan in ParsePlan syntax.
func (p *Plan) String() string {
	parts := make([]string, 0, len(p.Rules)+1)
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, r := range p.Rules {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, ",")
}

// Fault is the error an injected failure surfaces as. Layers propagate
// it unwrapped so callers can recognize injected faults with As.
type Fault struct {
	// Op and Site identify the faulted operation.
	Op   Op
	Site string
	// Seq is the 1-based ordinal of this fault among all injected.
	Seq int
	// Rule is the index of the plan rule that fired.
	Rule int
}

// Error implements error.
func (f *Fault) Error() string {
	site := f.Site
	if site == "" {
		site = "?"
	}
	return fmt.Sprintf("faultinject: injected %s fault at %s (fault #%d, rule %d)", f.Op, site, f.Seq, f.Rule)
}

// As reports whether err is (or wraps) an injected fault.
func As(err error) (*Fault, bool) {
	var f *Fault
	ok := errors.As(err, &f)
	return f, ok
}

// Injector evaluates a plan against a stream of operations. It is not
// safe for concurrent use; the single-threaded simulation engine
// serializes all checks, which is also what keeps the injected fault
// sequence reproducible.
type Injector struct {
	plan     Plan
	rng      splitmix64
	matches  []int
	fired    []int
	injected int
	perOp    [numOps]int
}

// New builds an injector for the plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	rules := make([]Rule, len(plan.Rules))
	copy(rules, plan.Rules)
	plan.Rules = rules
	return &Injector{
		plan:    plan,
		rng:     splitmix64(plan.Seed),
		matches: make([]int, len(rules)),
		fired:   make([]int, len(rules)),
	}, nil
}

// Check reports one occurrence of op at the given sites and returns the
// fault to inject, or nil. Every matching rule advances its occurrence
// counter (and rate rules always consume their random draw), so the
// fault sequence depends only on the operation stream, not on which
// earlier rules fired. The first listed site labels the fault.
func (in *Injector) Check(op Op, sites ...string) error {
	if in == nil {
		return nil
	}
	var fault *Fault
	for ri := range in.plan.Rules {
		r := &in.plan.Rules[ri]
		if r.Op != op || !siteMatches(r.Site, sites) {
			continue
		}
		n := in.matches[ri]
		in.matches[ri]++
		if n < r.After {
			continue
		}
		if r.Rate > 0 {
			hit := in.draw() < r.Rate
			if !hit || (r.Count > 0 && in.fired[ri] >= r.Count) {
				continue
			}
		} else if r.Count >= 0 && n >= r.After+r.Count {
			continue
		}
		in.fired[ri]++
		if fault == nil {
			in.injected++
			in.perOp[op]++
			fault = &Fault{Op: op, Site: firstSite(sites), Seq: in.injected, Rule: ri}
		}
	}
	if fault == nil {
		return nil
	}
	return fault
}

// Injected returns the total number of faults delivered so far.
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	return in.injected
}

// InjectedBy returns the number of faults delivered for one operation
// class.
func (in *Injector) InjectedBy(op Op) int {
	if in == nil || op < 0 || op >= numOps {
		return 0
	}
	return in.perOp[op]
}

// Plan returns a copy of the injector's plan.
func (in *Injector) Plan() Plan {
	p := in.plan
	p.Rules = make([]Rule, len(in.plan.Rules))
	copy(p.Rules, in.plan.Rules)
	return p
}

func siteMatches(want string, sites []string) bool {
	if want == "" {
		return true
	}
	for _, s := range sites {
		if s == want {
			return true
		}
	}
	return false
}

func firstSite(sites []string) string {
	if len(sites) == 0 {
		return ""
	}
	return sites[0]
}

// draw returns a uniform float64 in [0,1).
func (in *Injector) draw() float64 {
	return float64(in.rng.next()>>11) / float64(1<<53)
}

// splitmix64 is the same tiny deterministic PRNG the bitstream
// generator uses: no math/rand dependency, so injected fault sequences
// are reproducible across Go versions.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
