package faultinject

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePlan parses the compact fault-plan syntax shared by the
// presp-sim -faults flag (runtime operations) and the presp-flow
// -faults flag (CAD operations): comma-separated clauses, each either
//
//	seed=<uint64>
//
// or a rule
//
//	<op>[@<site>][=<rate>][:after=<n>][:count=<n>]
//
// Runtime operations — transfer, decouple, recouple, icap, crc, kernel
// — are injected by the single-threaded simulation engine; <site> is a
// plane, tile or accelerator name, and occurrences are numbered
// globally in event order. CAD operations — synth, floorplan, impl,
// bitgen, drc — are injected into the concurrent flow engine through a
// StableInjector; <site> is a partition name, module name, design name
// or bitstream name, and each rule's After/Count window applies
// independently at every site (retries of a job advance that site's
// occurrence counter), which is what keeps injected CAD faults
// byte-identical for any worker count.
//
// The seu operation models configuration-memory single-event upsets:
// a matching occurrence flips one bit in the target tile's resident
// configuration image (detected and repaired by the readback scrubber
// when reconfig.Config.ScrubInterval is set). Occurrences are the
// runtime's periodic per-tile config-memory sample ticks
// (reconfig.Config.SEUCheckInterval apart in virtual time), and —
// like the CAD ops — seu rules are evaluated by a StableInjector, so
// each tile's upset schedule is a pure function of (seed, rule, tile,
// tick), independent of every other tile's. <site> is a tile name or
// the name of the accelerator the tile holds. A seu rule with a zero
// rate and no count is rejected with an explicit error: it would
// inject nothing.
//
// A rule without a rate is deterministic and fires once by default;
// count=-1 makes it persistent (stuck-at). Examples:
//
//	icap@rt_1:count=2            fail the tile's first two ICAP programs
//	transfer@dma=0.05            drop 5% of DMA-plane packets (seeded)
//	recouple@rt_2:after=1:count=-1   decoupler stuck after one success
//	seed=42,crc=0.2              corrupt 20% of bitstream fetches
//	synth@rt_1:count=1           crash the partition's first synthesis
//	impl=0.3                     fail 30% of P&R runs (seeded, per site)
//	bitgen@rt_2:count=-1         bitstream writer permanently wedged
//	seu@rt_1=0.01                upset rt_1's config memory at 1%/tick
//	seu@t0:after=10:count=3      three upsets from the 10th sample on
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			p.Seed = seed
			continue
		}
		r, err := parseRule(clause)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseRule(clause string) (Rule, error) {
	fields := strings.Split(clause, ":")
	head, opts := fields[0], fields[1:]

	var r Rule
	rated := false
	if eq := strings.IndexByte(head, '='); eq >= 0 {
		rate, err := strconv.ParseFloat(head[eq+1:], 64)
		if err != nil {
			return r, fmt.Errorf("faultinject: clause %q: bad rate: %v", clause, err)
		}
		r.Rate = rate
		rated = true
		head = head[:eq]
	}
	if at := strings.IndexByte(head, '@'); at >= 0 {
		r.Site = head[at+1:]
		head = head[:at]
		if r.Site == "" {
			return r, fmt.Errorf("faultinject: clause %q: empty site", clause)
		}
	}
	op, err := ParseOp(head)
	if err != nil {
		return r, fmt.Errorf("faultinject: clause %q: %v", clause, err)
	}
	r.Op = op
	if !rated {
		r.Count = 1 // deterministic rules fire once unless told otherwise
	}
	for _, o := range opts {
		key, val, ok := strings.Cut(o, "=")
		if !ok {
			return r, fmt.Errorf("faultinject: clause %q: option %q is not key=value", clause, o)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return r, fmt.Errorf("faultinject: clause %q: bad %s: %v", clause, key, err)
		}
		switch key {
		case "after":
			r.After = n
		case "count":
			r.Count = n
		default:
			return r, fmt.Errorf("faultinject: clause %q: unknown option %q", clause, key)
		}
	}
	return r, nil
}
