package faultinject

import (
	"encoding/binary"
	"hash/fnv"
	"sync"
)

// StableInjector evaluates a plan against operations reported from many
// goroutines at once — the flow engine's worker pool checks CAD
// operations concurrently, so the single-threaded Injector's global
// occurrence stream (and its sequential random draws) would make the
// injected fault set depend on goroutine scheduling.
//
// The StableInjector is order-independent by construction:
//
//   - occurrence counters are kept per (rule, primary site) instead of
//     per rule, where the primary site is the first site the caller
//     reports (the flow labels every CAD job with a unique primary
//     site). Operations at one site are serialized by the job that owns
//     it, so each counter advances deterministically however jobs
//     interleave.
//   - rate-rule draws are a pure function of (seed, rule, site,
//     occurrence) rather than positions in a shared generator stream,
//     so a draw's outcome cannot depend on which other sites were
//     checked first.
//
// The semantic consequence, documented in ParsePlan: a CAD rule's
// After/Count window applies independently at each site. A site-less
// rule like "synth:count=1" fails the first synthesis of *every* module,
// not the globally-first synthesis — "globally first" is not
// well-defined under concurrency.
type StableInjector struct {
	plan Plan

	mu       sync.Mutex
	matches  map[ruleSite]int
	fired    map[ruleSite]int
	injected int
	perOp    [numOps]int
}

// ruleSite keys the per-(rule, primary-site) occurrence counters.
type ruleSite struct {
	rule int
	site string
}

// NewStable builds a concurrency-safe, order-independent injector for
// the plan.
func NewStable(plan Plan) (*StableInjector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	rules := make([]Rule, len(plan.Rules))
	copy(rules, plan.Rules)
	plan.Rules = rules
	return &StableInjector{
		plan:    plan,
		matches: make(map[ruleSite]int),
		fired:   make(map[ruleSite]int),
	}, nil
}

// Check reports one occurrence of op at the given sites and returns the
// fault to inject, or nil. The first listed site is the primary site:
// it keys the occurrence counters and labels the fault. Fault.Seq is
// the per-(rule, site) fired ordinal — a quantity that is reproducible
// for any interleaving, unlike a global sequence number.
func (in *StableInjector) Check(op Op, sites ...string) error {
	if in == nil {
		return nil
	}
	primary := firstSite(sites)
	in.mu.Lock()
	defer in.mu.Unlock()
	var fault *Fault
	for ri := range in.plan.Rules {
		r := &in.plan.Rules[ri]
		if r.Op != op || !siteMatches(r.Site, sites) {
			continue
		}
		k := ruleSite{rule: ri, site: primary}
		n := in.matches[k]
		in.matches[k]++
		if n < r.After {
			continue
		}
		if r.Rate > 0 {
			if r.Count > 0 && in.fired[k] >= r.Count {
				continue
			}
			if in.draw(ri, primary, n) >= r.Rate {
				continue
			}
		} else if r.Count >= 0 && n >= r.After+r.Count {
			continue
		}
		in.fired[k]++
		if fault == nil {
			in.injected++
			in.perOp[op]++
			fault = &Fault{Op: op, Site: primary, Seq: in.fired[k], Rule: ri}
		}
	}
	if fault == nil {
		return nil
	}
	return fault
}

// Injected returns the total number of faults delivered so far.
func (in *StableInjector) Injected() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// InjectedBy returns the number of faults delivered for one operation
// class.
func (in *StableInjector) InjectedBy(op Op) int {
	if in == nil || op < 0 || op >= numOps {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.perOp[op]
}

// Plan returns a copy of the injector's plan.
func (in *StableInjector) Plan() Plan {
	p := in.plan
	p.Rules = make([]Rule, len(in.plan.Rules))
	copy(p.Rules, in.plan.Rules)
	return p
}

// draw returns a uniform float64 in [0,1) that depends only on the
// plan seed, the rule index, the site and the occurrence index — never
// on how many draws other sites consumed first.
func (in *StableInjector) draw(rule int, site string, occurrence int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], in.plan.Seed)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(rule))
	h.Write(buf[:])
	h.Write([]byte(site))
	h.Write([]byte{0xff})
	binary.LittleEndian.PutUint64(buf[:], uint64(occurrence))
	h.Write(buf[:])
	s := splitmix64(h.Sum64())
	return float64(s.next()>>11) / float64(1<<53)
}
