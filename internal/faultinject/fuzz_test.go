package faultinject

import (
	"fmt"
	"math/rand"
	"testing"
)

// FuzzCADFaultPlan throws arbitrary fault-plan strings at the parser
// and, for every plan that parses, checks the property the flow engine
// builds on: the set of injected CAD faults is a pure function of the
// plan and the per-site check sequences — cross-site interleaving
// (i.e. goroutine scheduling in the worker pool) must not change which
// (site, occurrence) pairs fault.
func FuzzCADFaultPlan(f *testing.F) {
	f.Add(uint64(1), "synth@rt_1:count=1")
	f.Add(uint64(7), "seed=5,impl=0.4,bitgen=0.5")
	f.Add(uint64(9), "floorplan:after=1,drc@rt_2:count=-1")
	f.Add(uint64(42), "synth=1.0,impl@static:count=2,bitgen@full=0.3:count=1")
	f.Add(uint64(3), "seed=11,synth=0.9,drc=0.1:after=2")
	f.Fuzz(func(t *testing.T, seed uint64, spec string) {
		if len(spec) > 128 {
			t.Skip()
		}
		plan, err := ParsePlan(spec) // must never panic, whatever the input
		if err != nil {
			t.Skip() // malformed plans are rejected at parse time
		}
		sites := []string{"static", "rt_1", "rt_2", "full"}
		ops := []Op{OpCADSynth, OpCADFloorplan, OpCADImpl, OpCADBitgen, OpCADDRC}
		drive := func(rng *rand.Rand) string {
			in, err := NewStable(*plan)
			if err != nil {
				t.Fatalf("parsed plan rejected by NewStable: %v", err)
			}
			// Per-site order is fixed (the flow serializes checks within a
			// job); cross-site and cross-op interleaving is shuffled.
			type check struct {
				op   Op
				site string
			}
			var order []check
			for _, op := range ops {
				for _, s := range sites {
					for i := 0; i < 3; i++ {
						order = append(order, check{op, s})
					}
				}
			}
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			occ := make(map[check]int)
			out := make(map[string]bool)
			for _, c := range order {
				faulted := in.Check(c.op, c.site) != nil
				out[fmt.Sprintf("%s@%s/%d", c.op, c.site, occ[c])] = faulted
				occ[c]++
			}
			var b []byte
			for _, op := range ops {
				for _, s := range sites {
					for i := 0; i < 3; i++ {
						if out[fmt.Sprintf("%s@%s/%d", op, s, i)] {
							b = append(b, '1')
						} else {
							b = append(b, '0')
						}
					}
				}
			}
			b = append(b, fmt.Sprintf("|%d", in.Injected())...)
			return string(b)
		}
		ref := drive(rand.New(rand.NewSource(int64(seed))))
		got := drive(rand.New(rand.NewSource(int64(seed) + 1)))
		if ref != got {
			t.Fatalf("plan %q: fault set depends on interleaving:\n%s\n%s", spec, ref, got)
		}
	})
}
