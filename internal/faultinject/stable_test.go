package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// outcomeMap records, for a sequence of per-site checks, which (site,
// occurrence) pairs faulted.
type outcomeMap map[string]bool

// driveSites runs nPerSite checks of op at every site, interleaving
// sites in the order perm yields, and returns the fault outcomes keyed
// by site/occurrence. Per-site order is fixed (occurrence 0,1,2,...) —
// that is the serialization the flow's one-job-per-site structure
// guarantees — while cross-site interleaving is arbitrary.
func driveSites(t *testing.T, plan Plan, op Op, sites []string, nPerSite int, rng *rand.Rand) outcomeMap {
	t.Helper()
	in, err := NewStable(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Build the multiset of pending checks and shuffle cross-site order.
	type pending struct {
		site string
		next int
	}
	state := make(map[string]*pending, len(sites))
	var order []string
	for _, s := range sites {
		state[s] = &pending{site: s}
		for i := 0; i < nPerSite; i++ {
			order = append(order, s)
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	out := make(outcomeMap)
	for _, s := range order {
		p := state[s]
		err := in.Check(op, s)
		out[fmt.Sprintf("%s/%d", s, p.next)] = err != nil
		p.next++
	}
	return out
}

// TestStableInjectorOrderIndependence: for deterministic and rate rules
// alike, the set of faulted (site, occurrence) pairs is identical for
// every cross-site interleaving — the property that keeps CAD fault
// injection byte-identical for any worker count.
func TestStableInjectorOrderIndependence(t *testing.T) {
	plans := []Plan{
		{Rules: []Rule{{Op: OpCADSynth, Count: 1}}},
		{Rules: []Rule{{Op: OpCADImpl, Site: "rt_1", After: 1, Count: 2}}},
		{Seed: 7, Rules: []Rule{{Op: OpCADSynth, Rate: 0.5}}},
		{Seed: 99, Rules: []Rule{{Op: OpCADBitgen, Rate: 0.3, Count: 2}, {Op: OpCADBitgen, Site: "full", Count: -1}}},
	}
	sites := []string{"rt_1", "rt_2", "static", "full"}
	for pi, plan := range plans {
		op := plan.Rules[0].Op
		var baseline outcomeMap
		for trial := 0; trial < 10; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)))
			out := driveSites(t, plan, op, sites, 6, rng)
			if trial == 0 {
				baseline = out
				continue
			}
			for k, v := range out {
				if baseline[k] != v {
					t.Fatalf("plan %d trial %d: outcome at %s is %v, baseline says %v", pi, trial, k, v, baseline[k])
				}
			}
		}
	}
}

// TestStableInjectorConcurrentDeterminism: checks arriving from many
// goroutines (per-site serialized, as the flow guarantees) produce the
// same outcome set as a single-threaded run.
func TestStableInjectorConcurrentDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{
		{Op: OpCADSynth, Rate: 0.4},
		{Op: OpCADSynth, Site: "rt_2", After: 2, Count: -1},
	}}
	sites := []string{"rt_1", "rt_2", "rt_3", "static"}
	const nPerSite = 50

	reference := driveSites(t, plan, OpCADSynth, sites, nPerSite, rand.New(rand.NewSource(1)))

	for trial := 0; trial < 5; trial++ {
		in, err := NewStable(plan)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		got := make(outcomeMap)
		var wg sync.WaitGroup
		for _, s := range sites {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < nPerSite; i++ {
					err := in.Check(OpCADSynth, s)
					mu.Lock()
					got[fmt.Sprintf("%s/%d", s, i)] = err != nil
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		for k, v := range got {
			if reference[k] != v {
				t.Fatalf("trial %d: concurrent outcome at %s is %v, single-threaded reference says %v", trial, k, v, reference[k])
			}
		}
	}
}

// TestStableInjectorPerSiteWindows: a site-less deterministic rule fires
// its window independently at every site — the documented CAD-op
// semantics.
func TestStableInjectorPerSiteWindows(t *testing.T) {
	in, err := NewStable(Plan{Rules: []Rule{{Op: OpCADSynth, After: 1, Count: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"a", "b"} {
		if err := in.Check(OpCADSynth, site); err != nil {
			t.Fatalf("site %s occurrence 0 faulted inside the After window", site)
		}
		if err := in.Check(OpCADSynth, site); err == nil {
			t.Fatalf("site %s occurrence 1 did not fault", site)
		}
		if err := in.Check(OpCADSynth, site); err != nil {
			t.Fatalf("site %s occurrence 2 faulted past the Count window", site)
		}
	}
	if got := in.Injected(); got != 2 {
		t.Fatalf("injected %d faults, want 2 (one per site)", got)
	}
	if got := in.InjectedBy(OpCADSynth); got != 2 {
		t.Fatalf("InjectedBy(synth) = %d, want 2", got)
	}
	if got := in.InjectedBy(OpCADBitgen); got != 0 {
		t.Fatalf("InjectedBy(bitgen) = %d, want 0", got)
	}
}

// TestStableInjectorSiteRuleMatchesSecondarySites: a rule naming a
// secondary site (the module name Synthesize appends) still matches,
// but counters stay keyed on the primary site.
func TestStableInjectorSiteRuleMatchesSecondarySites(t *testing.T) {
	in, err := NewStable(Plan{Rules: []Rule{{Op: OpCADSynth, Site: "conv2d_rm", Count: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	err1 := in.Check(OpCADSynth, "rt_1", "conv2d_rm")
	err2 := in.Check(OpCADSynth, "rt_2", "conv2d_rm")
	if err1 == nil || err2 == nil {
		t.Fatalf("module-site rule should fault the first synthesis at each hosting partition: got %v, %v", err1, err2)
	}
	f, ok := As(err1)
	if !ok {
		t.Fatalf("injected error is not a Fault: %v", err1)
	}
	if f.Site != "rt_1" {
		t.Fatalf("fault labeled with site %q, want the primary site rt_1", f.Site)
	}
	if err := in.Check(OpCADSynth, "rt_1", "conv2d_rm"); err != nil {
		t.Fatalf("rt_1's second synthesis faulted past count=1: %v", err)
	}
}

// TestStableInjectorRateSeedReproducible: the same seed reproduces the
// same draws; flipping the seed changes at least one outcome over a
// long stream (overwhelmingly likely at rate 0.5).
func TestStableInjectorRateSeedReproducible(t *testing.T) {
	run := func(seed uint64) []bool {
		in, err := NewStable(Plan{Seed: seed, Rules: []Rule{{Op: OpCADImpl, Rate: 0.5}}})
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.Check(OpCADImpl, "site") != nil)
		}
		return out
	}
	a, b, c := run(5), run(5), run(6)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at occurrence %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 5 and 6 produced identical 64-draw streams")
	}
}

// TestStableInjectorRateCount: a rate rule stops after Count injections
// at each site.
func TestStableInjectorRateCount(t *testing.T) {
	in, err := NewStable(Plan{Seed: 1, Rules: []Rule{{Op: OpCADBitgen, Rate: 1.0, Count: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	for i := 0; i < 10; i++ {
		if in.Check(OpCADBitgen, "x") != nil {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("rate rule with count=2 injected %d faults at one site", faults)
	}
	if in.Check(OpCADBitgen, "y") == nil {
		t.Fatal("count cap leaked across sites: site y should still fault")
	}
}

// TestStableInjectorNilAndPlanCopy: a nil injector is inert, and Plan()
// returns an isolated copy.
func TestStableInjectorNilAndPlanCopy(t *testing.T) {
	var nilIn *StableInjector
	if nilIn.Check(OpCADSynth, "x") != nil || nilIn.Injected() != 0 || nilIn.InjectedBy(OpCADSynth) != 0 {
		t.Fatal("nil injector is not inert")
	}
	in, err := NewStable(Plan{Rules: []Rule{{Op: OpCADDRC, Count: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	p := in.Plan()
	p.Rules[0].Count = 99
	if in.Plan().Rules[0].Count != 1 {
		t.Fatal("Plan() aliases the injector's rules")
	}
}

// TestCADOpsParse: the five CAD ops round-trip through ParseOp/String
// and the shared plan grammar.
func TestCADOpsParse(t *testing.T) {
	for _, op := range []Op{OpCADSynth, OpCADFloorplan, OpCADImpl, OpCADBitgen, OpCADDRC} {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got != op {
			t.Fatalf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
	plan, err := ParsePlan("seed=9,synth@rt_1:count=1,impl=0.3,bitgen@rt_2:count=-1,drc@rt_1,floorplan:after=1")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 9 || len(plan.Rules) != 5 {
		t.Fatalf("parsed plan %+v", plan)
	}
	if _, err := NewStable(*plan); err != nil {
		t.Fatal(err)
	}
}
