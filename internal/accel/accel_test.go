package accel

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"presp/internal/fpga"
)

func TestDefaultRegistryProfiles(t *testing.T) {
	// The characterization accelerators must report the paper's
	// Table II LUT utilizations exactly.
	want := map[string]int{
		"mac":    2450,
		"conv2d": 36741,
		"gemm":   30617,
		"fft":    33690,
		"sort":   20468,
	}
	r := Default()
	for name, luts := range want {
		d, err := r.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := d.Resources[fpga.LUT]; got != luts {
			t.Errorf("%s LUTs: got %d want %d", name, got, luts)
		}
		if d.Kernel == nil {
			t.Errorf("%s has no functional model", name)
		}
		if d.CyclesPerInvocation(1000) <= d.CyclesPerInvocation(0) {
			t.Errorf("%s latency not monotone in workload", name)
		}
	}
}

func TestRegistryDuplicateAndUnknown(t *testing.T) {
	r := Default()
	err := r.Register(&Descriptor{
		Name:                "mac",
		Resources:           fpga.NewResources(1, 1, 0, 0),
		CyclesPerInvocation: func(int) int64 { return 1 },
		ActivePowerW:        0.1,
	})
	if err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := r.Lookup("warp-drive"); err == nil {
		t.Fatal("unknown accelerator found")
	}
}

func TestDescriptorValidation(t *testing.T) {
	valid := func() *Descriptor {
		return &Descriptor{
			Name:                "x",
			Resources:           fpga.NewResources(100, 100, 0, 0),
			CyclesPerInvocation: func(int) int64 { return 1 },
			ActivePowerW:        0.5,
		}
	}
	cases := []func(*Descriptor){
		func(d *Descriptor) { d.Name = "" },
		func(d *Descriptor) { d.Resources = fpga.Resources{} },
		func(d *Descriptor) { d.CyclesPerInvocation = nil },
		func(d *Descriptor) { d.ActivePowerW = 0 },
	}
	for i, mutate := range cases {
		d := valid()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid descriptor accepted", i)
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Default().Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("names not sorted: %v", names)
	}
	if len(names) != 5 {
		t.Fatalf("default registry should hold 5 accelerators, has %v", names)
	}
}

func TestMACKernel(t *testing.T) {
	out, err := (MACKernel{}).Run([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 32 {
		t.Fatalf("mac: got %g want 32", out[0][0])
	}
	if _, err := (MACKernel{}).Run([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := (MACKernel{}).Run([][]float64{{1}}); err == nil {
		t.Fatal("single input accepted")
	}
}

func TestConv2DImpulse(t *testing.T) {
	// Convolving an impulse with a filter recovers the flipped filter
	// footprint centred at the impulse.
	n := 5
	img := make([]float64, n*n)
	img[2*n+2] = 1 // centre
	filt := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	out, err := (Conv2DKernel{K: 3}).Run([][]float64{img, filt})
	if err != nil {
		t.Fatal(err)
	}
	// Output at (x,y) = Σ img(x+fx-1, y+fy-1)·filt(fx,fy): at (1,1) the
	// impulse sits at offset (fx=2, fy=2) → filt[8] = 9.
	if out[0][1*n+1] != 9 {
		t.Fatalf("conv impulse at (1,1): got %g want 9", out[0][1*n+1])
	}
	if out[0][2*n+2] != 5 {
		t.Fatalf("conv impulse centre: got %g want 5", out[0][2*n+2])
	}
}

func TestConv2DErrors(t *testing.T) {
	k := Conv2DKernel{K: 3}
	if _, err := k.Run([][]float64{make([]float64, 10), make([]float64, 9)}); err == nil {
		t.Fatal("non-square image accepted")
	}
	if _, err := k.Run([][]float64{make([]float64, 16), make([]float64, 4)}); err == nil {
		t.Fatal("wrong filter size accepted")
	}
}

func TestGEMMIdentity(t *testing.T) {
	n := 4
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	a := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i * i % 17)
	}
	out, err := (GEMMKernel{}).Run([][]float64{a, id})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if out[0][i] != a[i] {
			t.Fatalf("A·I != A at %d: %g vs %g", i, out[0][i], a[i])
		}
	}
}

func TestGEMMKnownProduct(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	out, err := (GEMMKernel{}).Run([][]float64{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if out[0][i] != want[i] {
			t.Fatalf("gemm: got %v want %v", out[0], want)
		}
	}
}

func TestFFTAgainstNaiveDFT(t *testing.T) {
	n := 16
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)*0.7) + 0.3*float64(i%3)
	}
	out, err := (FFTKernel{}).Run([][]float64{x})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		var re, im float64
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			re += x[j] * math.Cos(ang)
			im += x[j] * math.Sin(ang)
		}
		if math.Abs(out[0][2*k]-re) > 1e-9 || math.Abs(out[0][2*k+1]-im) > 1e-9 {
			t.Fatalf("FFT bin %d: got (%g,%g) want (%g,%g)", k, out[0][2*k], out[0][2*k+1], re, im)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := (FFTKernel{}).Run([][]float64{make([]float64, 12)}); err == nil {
		t.Fatal("length 12 accepted")
	}
	if _, err := (FFTKernel{}).Run([][]float64{{}}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSortKernelProperty(t *testing.T) {
	f := func(in []float64) bool {
		for i, v := range in {
			if math.IsNaN(v) {
				in[i] = 0 // NaN breaks total order; the DMA never carries NaN
			}
		}
		orig := append([]float64(nil), in...)
		out, err := (SortKernel{}).Run([][]float64{in})
		if err != nil {
			return false
		}
		if !sort.Float64sAreSorted(out[0]) {
			return false
		}
		// The output must be a permutation of the input.
		sort.Float64s(orig)
		for i := range orig {
			if out[0][i] != orig[i] {
				return false
			}
		}
		return len(in) == len(out[0])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := (SortKernel{}).Run([][]float64{in}); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestNVDLADescriptor(t *testing.T) {
	d := NVDLA()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Kernel != nil {
		t.Fatal("NVDLA integrates structurally; it ships no generic kernel model")
	}
	if d.Resources[fpga.LUT] < 50000 {
		t.Fatalf("NVDLA small should be a large block, got %d LUTs", d.Resources[fpga.LUT])
	}
	r := Default()
	if err := r.Register(d); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("nvdla"); err != nil {
		t.Fatal(err)
	}
}
