// Package accel provides the loosely-coupled accelerator library of the
// PR-ESP platform: functional kernel implementations (they compute real
// results, validated against golden references in tests), resource
// profiles matching the paper's measurements (Table II), and latency
// models used by the runtime simulation.
//
// Accelerators in ESP are loosely coupled: they sit in their own tile,
// access memory through DMA over the NoC, are configured through
// memory-mapped registers and raise an interrupt on completion. The
// Kernel interface mirrors that contract.
package accel

import (
	"fmt"
	"sort"
	"sync"

	"presp/internal/fpga"
)

// Kernel is the functional model of an accelerator: given an input
// workload it produces output data and reports the work performed (used
// by the latency model).
type Kernel interface {
	// Name returns the accelerator name (unique in the registry).
	Name() string
	// Run executes the kernel on the input tensors and returns outputs.
	Run(in [][]float64) (out [][]float64, err error)
}

// Descriptor bundles everything the platform knows about an accelerator
// type: its functional kernel, its resource profile and its timing model.
type Descriptor struct {
	// Name is the accelerator type name (e.g. "conv2d").
	Name string
	// Kernel is the functional model; may be nil for third-party black
	// boxes that are integrated structurally only.
	Kernel Kernel
	// Resources is the measured post-synthesis utilization on the VC707
	// (the paper profiles each accelerator in a 2x2 SoC, Table II/Fig 3).
	Resources fpga.Resources
	// CyclesPerInvocation returns the execution latency in accelerator
	// clock cycles for a workload of n input items.
	CyclesPerInvocation func(n int) int64
	// ActivePowerW is the dynamic power draw while executing, in Watts.
	ActivePowerW float64
	// HLSTool records which flow produced the RTL ("vivado-hls",
	// "stratus-hls"), as the paper distinguishes both.
	HLSTool string
}

// Validate checks descriptor invariants.
func (d *Descriptor) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("accel: descriptor with empty name")
	}
	if d.Resources[fpga.LUT] <= 0 {
		return fmt.Errorf("accel: %s has non-positive LUT count", d.Name)
	}
	if d.CyclesPerInvocation == nil {
		return fmt.Errorf("accel: %s has no latency model", d.Name)
	}
	if d.ActivePowerW <= 0 {
		return fmt.Errorf("accel: %s has non-positive active power", d.Name)
	}
	return nil
}

// Registry holds accelerator descriptors by name. It is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	descs map[string]*Descriptor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{descs: make(map[string]*Descriptor)}
}

// Register adds a descriptor after validating it; duplicates are errors.
func (r *Registry) Register(d *Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.descs[d.Name]; dup {
		return fmt.Errorf("accel: duplicate descriptor %q", d.Name)
	}
	r.descs[d.Name] = d
	return nil
}

// Lookup fetches a descriptor by name.
func (r *Registry) Lookup(name string) (*Descriptor, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.descs[name]
	if !ok {
		return nil, fmt.Errorf("accel: unknown accelerator %q", name)
	}
	return d, nil
}

// Names lists registered accelerator names sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.descs))
	for n := range r.descs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Default returns a registry pre-populated with the characterization
// accelerators used in Section IV of the paper: MAC, Conv2d, GEMM, FFT
// and Sort. LUT counts follow Table II; FF/BRAM/DSP are derived with the
// typical ESP accelerator ratios (FF ≈ 1.1x LUT, BRAM/DSP per datapath).
func Default() *Registry {
	r := NewRegistry()
	mustRegister(r, &Descriptor{
		Name:      "mac",
		Kernel:    MACKernel{},
		Resources: fpga.NewResources(2450, 2700, 4, 8),
		CyclesPerInvocation: func(n int) int64 {
			return 64 + int64(n) // fully pipelined MAC: one item/cycle
		},
		ActivePowerW: 0.11,
		HLSTool:      "vivado-hls",
	})
	mustRegister(r, &Descriptor{
		Name:      "conv2d",
		Kernel:    Conv2DKernel{K: 3},
		Resources: fpga.NewResources(36741, 40415, 96, 164),
		CyclesPerInvocation: func(n int) int64 {
			return 512 + 9*int64(n)/4 // 3x3 window, 4-wide datapath
		},
		ActivePowerW: 0.95,
		HLSTool:      "stratus-hls",
	})
	mustRegister(r, &Descriptor{
		Name:      "gemm",
		Kernel:    GEMMKernel{},
		Resources: fpga.NewResources(30617, 33678, 80, 128),
		CyclesPerInvocation: func(n int) int64 {
			return 512 + int64(n)/2
		},
		ActivePowerW: 0.88,
		HLSTool:      "stratus-hls",
	})
	mustRegister(r, &Descriptor{
		Name:      "fft",
		Kernel:    FFTKernel{},
		Resources: fpga.NewResources(33690, 37059, 72, 144),
		CyclesPerInvocation: func(n int) int64 {
			c := int64(512)
			for s := 1; s < n; s *= 2 { // log2(n) stages, n/2 butterflies
				c += int64(n / 2)
			}
			return c
		},
		ActivePowerW: 0.92,
		HLSTool:      "stratus-hls",
	})
	mustRegister(r, &Descriptor{
		Name:      "sort",
		Kernel:    SortKernel{},
		Resources: fpga.NewResources(20468, 22514, 48, 0),
		CyclesPerInvocation: func(n int) int64 {
			c := int64(256)
			for s := 1; s < n; s *= 2 { // merge network passes
				c += int64(n)
			}
			return c
		},
		ActivePowerW: 0.63,
		HLSTool:      "stratus-hls",
	})
	return r
}

// NVDLA returns a descriptor for the NVDLA deep-learning accelerator in
// its small configuration — the third-party open-source accelerator the
// ESP platform integrates (the paper cites it as an example of
// loosely-coupled third-party IP). It is integrated *structurally*: the
// flow places and implements it like any accelerator, but it ships no
// functional model here, so runtime invocation goes through its own
// software stack rather than the generic kernel interface.
func NVDLA() *Descriptor {
	return &Descriptor{
		Name: "nvdla",
		// nv_small on a Xilinx part: ~88k LUTs, heavy on DSP and BRAM.
		Resources: fpga.NewResources(88000, 102000, 166, 32),
		CyclesPerInvocation: func(n int) int64 {
			return 4096 + 2*int64(n) // MAC-array streaming estimate
		},
		ActivePowerW: 2.4,
		HLSTool:      "third-party-rtl",
	}
}

func mustRegister(r *Registry, d *Descriptor) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}
