package accel

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// MACKernel computes a multiply-accumulate: out = Σ a[i]*b[i].
// Inputs: in[0] = a, in[1] = b. Output: out[0] = [dot].
type MACKernel struct{}

// Name implements Kernel.
func (MACKernel) Name() string { return "mac" }

// Run implements Kernel.
func (MACKernel) Run(in [][]float64) ([][]float64, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("mac: want 2 inputs, got %d", len(in))
	}
	a, b := in[0], in[1]
	if len(a) != len(b) {
		return nil, fmt.Errorf("mac: length mismatch %d vs %d", len(a), len(b))
	}
	var acc float64
	for i := range a {
		acc += a[i] * b[i]
	}
	return [][]float64{{acc}}, nil
}

// Conv2DKernel computes a 2-D convolution with a KxK filter over a square
// image, zero-padded so the output has the input shape.
// Inputs: in[0] = image (n*n, row major), in[1] = filter (K*K).
type Conv2DKernel struct {
	// K is the filter size (odd).
	K int
}

// Name implements Kernel.
func (Conv2DKernel) Name() string { return "conv2d" }

// Run implements Kernel.
func (k Conv2DKernel) Run(in [][]float64) ([][]float64, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("conv2d: want 2 inputs, got %d", len(in))
	}
	img, filt := in[0], in[1]
	n := int(math.Sqrt(float64(len(img))))
	if n*n != len(img) {
		return nil, fmt.Errorf("conv2d: image length %d is not a square", len(img))
	}
	K := k.K
	if K <= 0 {
		K = 3
	}
	if len(filt) != K*K {
		return nil, fmt.Errorf("conv2d: filter length %d, want %d", len(filt), K*K)
	}
	half := K / 2
	out := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			var acc float64
			for fy := 0; fy < K; fy++ {
				for fx := 0; fx < K; fx++ {
					iy, ix := y+fy-half, x+fx-half
					if iy < 0 || iy >= n || ix < 0 || ix >= n {
						continue
					}
					acc += img[iy*n+ix] * filt[fy*K+fx]
				}
			}
			out[y*n+x] = acc
		}
	}
	return [][]float64{out}, nil
}

// GEMMKernel computes C = A x B for square matrices.
// Inputs: in[0] = A (n*n), in[1] = B (n*n).
type GEMMKernel struct{}

// Name implements Kernel.
func (GEMMKernel) Name() string { return "gemm" }

// Run implements Kernel.
func (GEMMKernel) Run(in [][]float64) ([][]float64, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("gemm: want 2 inputs, got %d", len(in))
	}
	a, b := in[0], in[1]
	n := int(math.Sqrt(float64(len(a))))
	if n*n != len(a) || len(b) != len(a) {
		return nil, fmt.Errorf("gemm: inputs must be equal square matrices")
	}
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for kk := 0; kk < n; kk++ {
			aik := a[i*n+kk]
			if aik == 0 {
				continue
			}
			row := b[kk*n : kk*n+n]
			dst := c[i*n : i*n+n]
			for j := range row {
				dst[j] += aik * row[j]
			}
		}
	}
	return [][]float64{c}, nil
}

// FFTKernel computes an in-order radix-2 FFT of a real input sequence
// whose length must be a power of two. The output interleaves real and
// imaginary parts: out[0] = [re0, im0, re1, im1, ...].
type FFTKernel struct{}

// Name implements Kernel.
func (FFTKernel) Name() string { return "fft" }

// Run implements Kernel.
func (FFTKernel) Run(in [][]float64) ([][]float64, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("fft: want 1 input, got %d", len(in))
	}
	x := in[0]
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftInPlace(buf)
	out := make([]float64, 2*n)
	for i, c := range buf {
		out[2*i] = real(c)
		out[2*i+1] = imag(c)
	}
	return [][]float64{out}, nil
}

// fftInPlace performs an iterative radix-2 Cooley-Tukey FFT.
func fftInPlace(a []complex128) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// SortKernel sorts its input ascending (vector sorting accelerator).
type SortKernel struct{}

// Name implements Kernel.
func (SortKernel) Name() string { return "sort" }

// Run implements Kernel.
func (SortKernel) Run(in [][]float64) ([][]float64, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("sort: want 1 input, got %d", len(in))
	}
	out := append([]float64(nil), in[0]...)
	sort.Float64s(out)
	return [][]float64{out}, nil
}
