package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every layer of the nil chain must be callable without panicking:
	// nil Observer -> nil Registry/Tracer -> nil instruments.
	var o *Observer
	reg := o.Metrics()
	if reg != nil {
		t.Fatal("nil observer returned non-nil registry")
	}
	tr := o.Tracer()
	if tr != nil {
		t.Fatal("nil observer returned non-nil tracer")
	}

	c := reg.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has value")
	}
	g := reg.Gauge("y")
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has value")
	}
	h := reg.Histogram("z")
	h.Observe(3)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram observed")
	}

	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}

	if tr.Now() != 0 {
		t.Fatal("nil tracer clock ticked")
	}
	tr.Complete("c", "n", 0, 0, 1, nil)
	tr.Instant("c", "n", 0, nil)
	tr.InstantAt("c", "n", 0, 5, nil)
	tr.CounterSampleAt("n", 0, map[string]float64{"v": 1})
	tr.SetProcessName("p")
	tr.SetThreadName(0, "t")
	if tr.Events() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer recorded events")
	}
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("jobs")
	g := reg.Gauge("busy")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	if same := reg.Counter("jobs"); same != c {
		t.Fatal("Counter not get-or-create")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 5, 10)
	for _, v := range []float64{0.5, 1, 2, 5, 7, 10, 11, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	wantSum := 0.5 + 1 + 2 + 5 + 7 + 10 + 11 + 1000
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	// Buckets: <=1 gets {0.5, 1}; <=5 gets {2, 5}; <=10 gets {7, 10};
	// +Inf overflow gets {11, 1000}.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("minutes")
	s := h.Snapshot()
	if len(s.Bounds) != len(DefaultMinuteBuckets) {
		t.Fatalf("bounds = %v, want default minute buckets", s.Bounds)
	}
	if same := reg.Histogram("minutes", 1, 2); same != h {
		t.Fatal("Histogram not get-or-create")
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("flow_jobs_total").Add(3)
	reg.Gauge("flow_workers_busy").Set(1.5)
	reg.Histogram("flow_stage_minutes_synth", 10, 100).Observe(42)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var flat map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		t.Fatalf("export not valid JSON: %v\n%s", err, buf.String())
	}
	if len(flat) != 3 {
		t.Fatalf("export has %d keys, want 3: %s", len(flat), buf.String())
	}
	var jobs int64
	if err := json.Unmarshal(flat["flow_jobs_total"], &jobs); err != nil || jobs != 3 {
		t.Fatalf("flow_jobs_total = %s (err %v), want 3", flat["flow_jobs_total"], err)
	}
	var hist HistogramSnapshot
	if err := json.Unmarshal(flat["flow_stage_minutes_synth"], &hist); err != nil {
		t.Fatalf("histogram export: %v", err)
	}
	if hist.Count != 1 || hist.Sum != 42 {
		t.Fatalf("histogram export = %+v", hist)
	}
}
