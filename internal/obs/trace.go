package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one Chrome trace-event. The JSON field names follow the
// trace-event format so the exported file loads directly in Perfetto
// or chrome://tracing. Timestamps and durations are microseconds; the
// flow engine stamps wall time relative to the tracer's epoch, the
// runtime stamps virtual simulation time — either way the timeline is
// self-consistent within one trace.
type Event struct {
	// Name and Cat label the event (job ID and stage for flow spans).
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Phase is the trace-event type: "X" complete span, "i" instant,
	// "C" counter sample, "M" metadata.
	Phase string `json:"ph"`
	// TS is the start timestamp in microseconds; Dur is the span length
	// ("X" events only).
	TS  int64 `json:"ts"`
	Dur int64 `json:"dur,omitempty"`
	// PID and TID select the process/thread lane. Workers and tiles map
	// to TIDs so spans on one lane nest.
	PID int `json:"pid"`
	TID int `json:"tid"`
	// Scope is "t" for thread-scoped instants.
	Scope string `json:"s,omitempty"`
	// Args carries event details (sim_minutes, attempts, bytes, ...).
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects trace events. It is safe for concurrent use; every
// method no-ops on a nil receiver, so instrumented code can hold a nil
// tracer and emit unconditionally.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	epoch  time.Time
}

// tracePID is the single process lane a tracer emits into.
const tracePID = 1

// NewTracer returns a tracer whose Now clock starts at zero.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Now returns the wall-clock microseconds since the tracer was created
// (zero for a nil tracer) — the timestamp base for wall-time spans.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Microseconds()
}

func (t *Tracer) emit(ev Event) {
	if t == nil {
		return
	}
	ev.PID = tracePID
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Complete records a complete span ("X") on lane tid covering
// [ts, ts+dur] microseconds. Negative durations are clamped to zero.
func (t *Tracer) Complete(cat, name string, tid int, ts, dur int64, args map[string]any) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.emit(Event{Name: name, Cat: cat, Phase: "X", TS: ts, Dur: dur, TID: tid, Args: args})
}

// Instant records a thread-scoped instant event at Now().
func (t *Tracer) Instant(cat, name string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.InstantAt(cat, name, tid, t.Now(), args)
}

// InstantAt records a thread-scoped instant event at an explicit
// timestamp (virtual-time emitters compute their own).
func (t *Tracer) InstantAt(cat, name string, tid int, ts int64, args map[string]any) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Cat: cat, Phase: "i", TS: ts, TID: tid, Scope: "t", Args: args})
}

// CounterSampleAt records a counter sample ("C"): each key of values is
// one series under the event name (Perfetto renders them as a stacked
// chart).
func (t *Tracer) CounterSampleAt(name string, ts int64, values map[string]float64) {
	if t == nil || len(values) == 0 {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	t.emit(Event{Name: name, Phase: "C", TS: ts, Args: args})
}

// SetProcessName labels the trace's process lane.
func (t *Tracer) SetProcessName(name string) {
	if t == nil {
		return
	}
	t.emit(Event{Name: "process_name", Phase: "M", Args: map[string]any{"name": name}})
}

// SetThreadName labels lane tid (worker index, tile name).
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.emit(Event{Name: "thread_name", Phase: "M", TID: tid, Args: map[string]any{"name": name}})
}

// Events returns a copy of everything recorded so far.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the recorded event count.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// TraceFile is the JSON object WriteJSON emits — the Chrome
// trace-event container format.
type TraceFile struct {
	DisplayTimeUnit string  `json:"displayTimeUnit"`
	TraceEvents     []Event `json:"traceEvents"`
}

// WriteJSON renders the trace in Chrome trace-event JSON object
// format, loadable by Perfetto and chrome://tracing.
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := TraceFile{DisplayTimeUnit: "ms", TraceEvents: t.Events()}
	if f.TraceEvents == nil {
		f.TraceEvents = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ParseTrace parses a file WriteJSON wrote (for tests and tooling).
func ParseTrace(data []byte) (*TraceFile, error) {
	var f TraceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("obs: invalid trace JSON: %w", err)
	}
	return &f, nil
}

// CountSpans counts the complete ("X") events of one category — the
// per-job span count the CLI acceptance check compares to Result.Jobs.
func CountSpans(events []Event, cat string) int {
	n := 0
	for _, ev := range events {
		if ev.Phase == "X" && ev.Cat == cat {
			n++
		}
	}
	return n
}

// CountInstants counts the instant ("i") events of one category whose
// name matches (an empty name matches any). Recovery, stall-detection
// and breaker-open markers are instants; tests assert them with this
// the same way CountSpans serves the per-job spans.
func CountInstants(events []Event, cat, name string) int {
	n := 0
	for _, ev := range events {
		if ev.Phase == "i" && ev.Cat == cat && (name == "" || ev.Name == name) {
			n++
		}
	}
	return n
}

// CheckNesting verifies the trace's complete spans form a proper stack
// on every (pid, tid) lane: two spans on one lane either nest fully or
// do not overlap at all. Chrome's renderer assumes this; a violation
// means an instrumentation site emitted overlapping spans on a shared
// lane.
func CheckNesting(events []Event) error {
	type lane struct{ pid, tid int }
	spans := make(map[lane][]Event)
	for _, ev := range events {
		if ev.Phase != "X" {
			continue
		}
		k := lane{ev.PID, ev.TID}
		spans[k] = append(spans[k], ev)
	}
	for k, evs := range spans {
		// Sort by start ascending; ties put the longer (outer) span
		// first so it is pushed before its same-start children.
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].TS != evs[j].TS {
				return evs[i].TS < evs[j].TS
			}
			return evs[i].Dur > evs[j].Dur
		})
		var stack []Event
		for _, ev := range evs {
			for len(stack) > 0 && stack[len(stack)-1].TS+stack[len(stack)-1].Dur <= ev.TS {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if ev.TS+ev.Dur > top.TS+top.Dur {
					return fmt.Errorf("obs: span %q [%d,%d] overlaps %q [%d,%d] on pid %d tid %d without nesting",
						ev.Name, ev.TS, ev.TS+ev.Dur, top.Name, top.TS, top.TS+top.Dur, k.pid, k.tid)
				}
			}
			stack = append(stack, ev)
		}
	}
	return nil
}
