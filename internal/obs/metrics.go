package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use; all methods are safe for concurrent use and no-ops on a nil
// receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down (worker occupancy, cache
// sizes). The zero value is ready; methods are concurrency-safe and
// no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (zero for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultMinuteBuckets is the histogram bucketing used for modelled
// CAD runtimes: the paper's per-stage times span a few minutes (partial
// bitstreams) to several hours (serial whole-design P&R).
var DefaultMinuteBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf overflow bucket. Bounds are fixed at creation; observation is
// lock-free. All methods no-op on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    Gauge
}

// NewHistogram builds a histogram with the given ascending upper
// bounds (empty selects DefaultMinuteBuckets).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultMinuteBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := len(h.bounds) // +Inf bucket
	for b, ub := range h.bounds {
		if v <= ub {
			i = b
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a stable copy of a histogram's state.
type HistogramSnapshot struct {
	// Count and Sum aggregate every observation.
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Bounds are the bucket upper bounds; Counts has one entry per
	// bound plus a final +Inf overflow bucket.
	Bounds []float64 `json:"le"`
	Counts []int64   `json:"counts"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry hands out named instruments. Names are a single flat
// namespace shared by all three kinds (the JSON export is one object),
// so a name must not be reused across kinds. Get-or-create semantics:
// asking twice for the same name returns the same instrument. A nil
// *Registry hands out nil instruments, whose methods no-op — resolve
// instruments once at setup and call them unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (empty bounds select DefaultMinuteBuckets; the
// bounds of an existing histogram are never changed).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a stable, point-in-time copy of every instrument.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry's current state. The maps are owned by
// the caller.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// WriteJSON renders the registry expvar-style: one flat JSON object
// mapping every instrument name to its value (counters and gauges as
// numbers, histograms as {count, sum, le, counts} objects), with keys
// sorted for stable output.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	flat := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n, v := range s.Counters {
		flat[n] = v
	}
	for n, v := range s.Gauges {
		flat[n] = v
	}
	for n, v := range s.Histograms {
		flat[n] = v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}
