package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.SetProcessName("presp-flow")
	tr.SetThreadName(0, "worker-0")
	tr.Complete("job", "synth_leaf", 0, 0, 100, map[string]any{"sim_minutes": 12.5})
	tr.Complete("job", "impl_leaf", 0, 100, 50, nil)
	tr.InstantAt("retry", "impl_leaf#1", 0, 120, nil)
	tr.CounterSampleAt("flow_workers_busy", 10, map[string]float64{"busy": 2})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	f, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 6 {
		t.Fatalf("round-tripped %d events, want 6", len(f.TraceEvents))
	}
	if got := CountSpans(f.TraceEvents, "job"); got != 2 {
		t.Fatalf("CountSpans(job) = %d, want 2", got)
	}
	if got := CountInstants(f.TraceEvents, "retry", "impl_leaf#1"); got != 1 {
		t.Fatalf("CountInstants(retry, impl_leaf#1) = %d, want 1", got)
	}
	if got := CountInstants(f.TraceEvents, "retry", ""); got != 1 {
		t.Fatalf("CountInstants(retry, any) = %d, want 1", got)
	}
	if got := CountInstants(f.TraceEvents, "job", ""); got != 0 {
		t.Fatalf("CountInstants(job, any) = %d, want 0 (spans are not instants)", got)
	}
	for _, ev := range f.TraceEvents {
		if ev.PID != tracePID {
			t.Fatalf("event %q pid = %d, want %d", ev.Name, ev.PID, tracePID)
		}
	}
	if err := CheckNesting(f.TraceEvents); err != nil {
		t.Fatalf("nesting: %v", err)
	}
}

func TestTracerEmptyWriteJSON(t *testing.T) {
	tr := NewTracer()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) != 0 {
		t.Fatalf("empty tracer exported %d events", len(f.TraceEvents))
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ts := tr.Now()
				tr.Complete("job", "j", tid, ts, 1, nil)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 400 {
		t.Fatalf("recorded %d events, want 400", tr.Len())
	}
}

func TestCheckNesting(t *testing.T) {
	ok := []Event{
		{Name: "outer", Phase: "X", TS: 0, Dur: 100, PID: 1, TID: 1},
		{Name: "inner", Phase: "X", TS: 10, Dur: 20, PID: 1, TID: 1},
		{Name: "inner2", Phase: "X", TS: 40, Dur: 60, PID: 1, TID: 1},
		{Name: "after", Phase: "X", TS: 100, Dur: 5, PID: 1, TID: 1},
		// Overlap on a different lane is fine.
		{Name: "other", Phase: "X", TS: 5, Dur: 500, PID: 1, TID: 2},
	}
	if err := CheckNesting(ok); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	bad := []Event{
		{Name: "a", Phase: "X", TS: 0, Dur: 100, PID: 1, TID: 1},
		{Name: "b", Phase: "X", TS: 50, Dur: 100, PID: 1, TID: 1},
	}
	if err := CheckNesting(bad); err == nil {
		t.Fatal("overlapping spans accepted")
	}

	// Non-"X" phases are ignored.
	mixed := []Event{
		{Name: "i", Phase: "i", TS: 0, PID: 1, TID: 1},
		{Name: "a", Phase: "X", TS: 0, Dur: 10, PID: 1, TID: 1},
	}
	if err := CheckNesting(mixed); err != nil {
		t.Fatalf("instants should not affect nesting: %v", err)
	}
}

func TestObserverAccessors(t *testing.T) {
	o := New()
	if o.Metrics() == nil || o.Tracer() == nil {
		t.Fatal("New() observer missing registry or tracer")
	}
	o.Metrics().Counter("c").Inc()
	if o.Metrics().Counter("c").Value() != 1 {
		t.Fatal("observer registry not shared across Metrics() calls")
	}
}
