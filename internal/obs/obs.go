// Package obs is the platform's lightweight observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms with a
// stable snapshot API and expvar-style JSON export), a span-based
// tracer that exports Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing), and pprof hooks for the long-running CLIs.
//
// The design rule throughout is that observation must never perturb
// results: every instrument method is a no-op on a nil receiver, so
// instrumented code resolves its instruments once and calls them
// unconditionally — with no Observer attached the whole layer costs a
// nil check per probe and allocates nothing. Spans carry timestamps;
// nothing an instrument records ever feeds back into the code under
// observation, so traced flow runs stay byte-identical to untraced
// ones at any worker count (the determinism suite holds the engine to
// that).
//
// See DESIGN.md §12 for the architecture, the metric name catalogue
// and the trace-event schema.
package obs

// Observer bundles one metrics registry with one tracer — the handle
// the flow engine (flow.Options.Observer) and the runtime
// (reconfig.Config.Observer) accept. A nil *Observer disables all
// observation at no cost.
type Observer struct {
	reg *Registry
	tr  *Tracer
}

// New returns an Observer with a fresh registry and tracer.
func New() *Observer {
	return &Observer{reg: NewRegistry(), tr: NewTracer()}
}

// Metrics returns the observer's registry (nil for a nil observer; a
// nil Registry hands out nil instruments whose methods no-op).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the observer's tracer (nil for a nil observer; every
// method of a nil Tracer no-ops).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}
