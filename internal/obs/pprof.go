package obs

import (
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	runpprof "runtime/pprof"
)

// StartPprof serves the standard pprof endpoints (/debug/pprof/...) on
// addr using a dedicated mux, so long-running CLIs can opt in without
// touching http.DefaultServeMux. It returns the bound address (useful
// with ":0") and a shutdown func that closes the listener.
func StartPprof(addr string) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns when the listener closes.
	return ln.Addr().String(), srv.Close, nil
}

// StartCPUProfile writes a CPU profile to path until the returned stop
// func runs — the file-based alternative for batch CLI runs that exit
// before anyone could scrape an HTTP endpoint.
func StartCPUProfile(path string) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := runpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		runpprof.StopCPUProfile()
		return f.Close()
	}, nil
}
