package obs

import (
	"net/http"
	netpprof "net/http/pprof"
)

// MetricsHandler serves the registry as flat JSON — the scrape endpoint
// a long-running service mounts next to its API. A nil registry serves
// an empty object, keeping the handler nil-safe like every other
// instrument in this package.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg == nil {
			w.Write([]byte("{}\n")) //nolint:errcheck // best-effort scrape
			return
		}
		reg.WriteJSON(w) //nolint:errcheck // client hangup mid-scrape is not an error
	})
}

// RegisterPprof mounts the standard pprof endpoints under /debug/pprof/
// on an existing mux — the in-process variant of StartPprof for
// services that already run an HTTP server and want profiling on the
// same listener.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
}
