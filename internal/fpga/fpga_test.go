package fpga

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewResources(t *testing.T) {
	r := NewResources(1, 2, 3, 4)
	if r[LUT] != 1 || r[FF] != 2 || r[BRAM] != 3 || r[DSP] != 4 {
		t.Fatalf("NewResources mapped wrong: %v", r)
	}
}

func TestResourcesAddSub(t *testing.T) {
	a := NewResources(100, 200, 3, 4)
	b := NewResources(10, 20, 1, 2)
	sum := a.Add(b)
	if sum != NewResources(110, 220, 4, 6) {
		t.Fatalf("Add: got %v", sum)
	}
	if got := sum.Sub(b); got != a {
		t.Fatalf("Sub did not invert Add: got %v want %v", got, a)
	}
}

func TestResourcesAddSubRoundtripProperty(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 int16) bool {
		a := NewResources(int(a0), int(a1), int(a2), int(a3))
		b := NewResources(int(b0), int(b1), int(b2), int(b3))
		return a.Add(b).Sub(b) == a && a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourcesScale(t *testing.T) {
	r := NewResources(100, 200, 10, 4)
	if got := r.Scale(1.5); got != NewResources(150, 300, 15, 6) {
		t.Fatalf("Scale(1.5): got %v", got)
	}
	if got := r.Scale(0); !got.IsZero() {
		t.Fatalf("Scale(0) should zero out, got %v", got)
	}
}

func TestResourcesCovers(t *testing.T) {
	big := NewResources(100, 100, 10, 10)
	small := NewResources(50, 100, 10, 0)
	if !big.Covers(small) {
		t.Fatal("big should cover small")
	}
	if small.Covers(big) {
		t.Fatal("small should not cover big")
	}
	if !big.Covers(big) {
		t.Fatal("Covers must be reflexive")
	}
}

func TestResourcesCoversProperty(t *testing.T) {
	// Covers is antisymmetric except at equality, and Add(b) always
	// covers both operands for non-negative vectors.
	f := func(a0, a1, b0, b1 uint8) bool {
		a := NewResources(int(a0), int(a1), 0, 0)
		b := NewResources(int(b0), int(b1), 0, 0)
		s := a.Add(b)
		return s.Covers(a) && s.Covers(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourcesMax(t *testing.T) {
	a := NewResources(1, 5, 3, 0)
	b := NewResources(2, 4, 3, 1)
	want := NewResources(2, 5, 3, 1)
	if got := a.Max(b); got != want {
		t.Fatalf("Max: got %v want %v", got, want)
	}
	if a.Max(b) != b.Max(a) {
		t.Fatal("Max must be commutative")
	}
}

func TestUtilizationOf(t *testing.T) {
	dev := NewResources(1000, 0, 0, 0)
	need := NewResources(250, 0, 0, 0)
	if got := dev.UtilizationOf(need, LUT); got != 0.25 {
		t.Fatalf("utilization: got %g", got)
	}
	if got := dev.UtilizationOf(need, FF); got != 0 {
		t.Fatalf("zero-need zero-capacity should be 0, got %g", got)
	}
	needFF := NewResources(0, 5, 0, 0)
	if got := dev.UtilizationOf(needFF, FF); got < 1e8 {
		t.Fatalf("impossible need should saturate, got %g", got)
	}
}

func TestResourceKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		if strings.HasPrefix(k.String(), "ResourceKind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
}

func TestVC707Geometry(t *testing.T) {
	d := VC707()
	if d.Total[LUT] != 303600 {
		t.Fatalf("VC707 LUTs: got %d want 303600", d.Total[LUT])
	}
	if d.Regions() != 14 {
		t.Fatalf("VC707 clock regions: got %d want 14", d.Regions())
	}
	if d.Cells() != d.Regions()*d.SubColsPerRegion {
		t.Fatalf("cells %d != regions*subcols", d.Cells())
	}
	cell := d.CellResources()
	if cell[LUT]*d.Cells() > d.Total[LUT] {
		t.Fatal("cell resources over-allocate the device")
	}
	if d.Family.ICAPPrimitive() != "ICAPE2" {
		t.Fatalf("VC707 ICAP: got %s", d.Family.ICAPPrimitive())
	}
}

func TestUltraScaleBoards(t *testing.T) {
	for _, d := range []*Device{VCU118(), VCU128()} {
		if d.Family != UltraScalePlus {
			t.Fatalf("%s: wrong family %v", d.Board, d.Family)
		}
		if d.Family.ICAPPrimitive() != "ICAPE3" {
			t.Fatalf("%s ICAP: got %s", d.Board, d.Family.ICAPPrimitive())
		}
		if d.Total[LUT] < VC707().Total[LUT] {
			t.Fatalf("%s should be larger than the VC707", d.Board)
		}
	}
}

func TestByBoard(t *testing.T) {
	for _, name := range []string{"VC707", "vc707", "VCU118", "VCU128"} {
		if _, err := ByBoard(name); err != nil {
			t.Fatalf("ByBoard(%s): %v", name, err)
		}
	}
	if _, err := ByBoard("ZCU102"); err == nil {
		t.Fatal("unsupported board should error")
	}
}

func TestRegionAt(t *testing.T) {
	d := VC707()
	if _, err := d.RegionAt(0, 0); err != nil {
		t.Fatalf("valid region rejected: %v", err)
	}
	if _, err := d.RegionAt(d.RegionCols, 0); err == nil {
		t.Fatal("out-of-range region accepted")
	}
	if _, err := d.RegionAt(0, -1); err == nil {
		t.Fatal("negative region accepted")
	}
}

func TestCellRegionMapping(t *testing.T) {
	d := VC707()
	c := Cell{X: d.SubColsPerRegion, Y: 3} // first sub-column of region X1
	r := c.Region(d)
	if r.X != 1 || r.Y != 3 {
		t.Fatalf("cell %v maps to region %v", c, r)
	}
}
