package fpga

import (
	"fmt"
	"math"
)

// Cell addresses one placement cell: a sub-column within a clock-region
// row. X runs over GridCols() (RegionCols × SubColsPerRegion), Y over
// clock-region rows.
type Cell struct {
	X, Y int
}

// String renders the cell as "CxRy".
func (c Cell) String() string { return fmt.Sprintf("C%dR%d", c.X, c.Y) }

// Region returns the clock region the cell belongs to on device d.
func (c Cell) Region(d *Device) ClockRegion {
	return ClockRegion{X: c.X / d.SubColsPerRegion, Y: c.Y}
}

// Pblock is a rectangular physical placement region for a reconfigurable
// partition. Per the 7-series DFX rules a partition spans full
// clock-region height vertically (Y coordinates are clock-region rows)
// but may claim a fraction of a region's width (X coordinates are
// sub-columns), the granularity FLORA-style floorplanners exploit.
type Pblock struct {
	// Name is the pblock name in the implementation scripts.
	Name string
	// X0, Y0 are the lower-left cell coordinates (inclusive).
	X0, Y0 int
	// X1, Y1 are the upper-right cell coordinates (inclusive).
	X1, Y1 int
}

// Width returns the pblock width in sub-columns.
func (p Pblock) Width() int { return p.X1 - p.X0 + 1 }

// Height returns the pblock height in clock-region rows.
func (p Pblock) Height() int { return p.Y1 - p.Y0 + 1 }

// CellCount returns the number of placement cells the pblock spans.
func (p Pblock) CellCount() int { return p.Width() * p.Height() }

// Overlaps reports whether two pblocks share any cell.
func (p Pblock) Overlaps(o Pblock) bool {
	return p.X0 <= o.X1 && o.X0 <= p.X1 && p.Y0 <= o.Y1 && o.Y0 <= p.Y1
}

// Contains reports whether the pblock covers cell c.
func (p Pblock) Contains(c Cell) bool {
	return c.X >= p.X0 && c.X <= p.X1 && c.Y >= p.Y0 && c.Y <= p.Y1
}

// Cells enumerates the placement cells the pblock spans.
func (p Pblock) Cells() []Cell {
	out := make([]Cell, 0, p.CellCount())
	for y := p.Y0; y <= p.Y1; y++ {
		for x := p.X0; x <= p.X1; x++ {
			out = append(out, Cell{X: x, Y: y})
		}
	}
	return out
}

// String renders the pblock as a slice-range style constraint.
func (p Pblock) String() string {
	return fmt.Sprintf("%s: SUBCOL_X%dY%d:SUBCOL_X%dY%d", p.Name, p.X0, p.Y0, p.X1, p.Y1)
}

// Validate checks that the pblock lies inside the device grid.
func (p Pblock) Validate(d *Device) error {
	if p.X0 > p.X1 || p.Y0 > p.Y1 {
		return fmt.Errorf("fpga: pblock %s has inverted corners", p.Name)
	}
	if p.X0 < 0 || p.Y0 < 0 || p.X1 >= d.GridCols() || p.Y1 >= d.GridRows() {
		return fmt.Errorf("fpga: pblock %s exceeds %s placement grid %dx%d",
			p.Name, d.Name, d.GridCols(), d.GridRows())
	}
	return nil
}

// ResourcesOn returns the fabric resources enclosed by the pblock on
// device d.
func (p Pblock) ResourcesOn(d *Device) Resources {
	return d.CellResources().Scale(float64(p.CellCount()))
}

// Frames returns the number of configuration frames covering the pblock,
// which (times the frame size) bounds the uncompressed partial bitstream.
func (p Pblock) Frames(d *Device) int {
	lutsPerCell := d.CellResources()[LUT]
	// A 7-series CLB column holds 50 CLBs × 8 LUTs = 400 LUTs per region
	// height; use that to estimate resource columns per cell.
	cols := int(math.Ceil(float64(lutsPerCell) / 400.0))
	return p.CellCount() * cols * d.FramesPerRegionCol
}

// Occupancy tracks which placement cells of a device are already claimed
// by pblocks, so floorplanning can avoid overlap.
type Occupancy struct {
	dev   *Device
	taken []string // cell index -> owner name ("" = free)
}

// NewOccupancy returns an empty occupancy map for device d.
func NewOccupancy(d *Device) *Occupancy {
	return &Occupancy{dev: d, taken: make([]string, d.Cells())}
}

func (o *Occupancy) index(c Cell) int { return c.Y*o.dev.GridCols() + c.X }

// Owner returns the claim on cell c, or "" when free.
func (o *Occupancy) Owner(c Cell) string { return o.taken[o.index(c)] }

// CanClaim reports whether every cell of p is free.
func (o *Occupancy) CanClaim(p Pblock) bool {
	if p.Validate(o.dev) != nil {
		return false
	}
	for _, c := range p.Cells() {
		if o.taken[o.index(c)] != "" {
			return false
		}
	}
	return true
}

// Claim marks every cell of p as owned by p.Name. It fails when any cell
// is already claimed.
func (o *Occupancy) Claim(p Pblock) error {
	if err := p.Validate(o.dev); err != nil {
		return err
	}
	for _, c := range p.Cells() {
		if own := o.taken[o.index(c)]; own != "" {
			return fmt.Errorf("fpga: cell %s already claimed by %s", c, own)
		}
	}
	for _, c := range p.Cells() {
		o.taken[o.index(c)] = p.Name
	}
	return nil
}

// Release frees every cell owned by name.
func (o *Occupancy) Release(name string) {
	for i, own := range o.taken {
		if own == name {
			o.taken[i] = ""
		}
	}
}

// FreeCells returns the number of unclaimed placement cells.
func (o *Occupancy) FreeCells() int {
	n := 0
	for _, own := range o.taken {
		if own == "" {
			n++
		}
	}
	return n
}
