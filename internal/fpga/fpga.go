// Package fpga models Xilinx FPGA devices at the granularity the PR-ESP
// flow needs: resource totals, the clock-region grid, the column layout of
// the fabric, and configuration frames. The models reproduce the public
// geometry of the evaluation boards used in the paper (VC707, VCU118,
// VCU128) so that floorplanning, utilization metrics and DPR legality
// checks behave as they would on the real parts.
package fpga

import (
	"fmt"
	"sort"
)

// ResourceKind enumerates the fabric resource types tracked by the flow.
type ResourceKind int

const (
	LUT ResourceKind = iota
	FF
	BRAM // 36Kb block RAM tiles
	DSP  // DSP48 slices
	numResourceKinds
)

// String returns the vendor-style resource mnemonic.
func (k ResourceKind) String() string {
	switch k {
	case LUT:
		return "LUT"
	case FF:
		return "FF"
	case BRAM:
		return "BRAM"
	case DSP:
		return "DSP"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// Kinds lists every tracked resource kind in a stable order.
func Kinds() []ResourceKind {
	return []ResourceKind{LUT, FF, BRAM, DSP}
}

// Resources is a vector of resource quantities indexed by ResourceKind.
type Resources [numResourceKinds]int

// NewResources builds a resource vector from the common four quantities.
func NewResources(lut, ff, bram, dsp int) Resources {
	var r Resources
	r[LUT], r[FF], r[BRAM], r[DSP] = lut, ff, bram, dsp
	return r
}

// Add returns the element-wise sum r + o.
func (r Resources) Add(o Resources) Resources {
	var s Resources
	for i := range r {
		s[i] = r[i] + o[i]
	}
	return s
}

// Sub returns the element-wise difference r - o.
func (r Resources) Sub(o Resources) Resources {
	var s Resources
	for i := range r {
		s[i] = r[i] - o[i]
	}
	return s
}

// Scale returns r with every element multiplied by f and rounded down.
func (r Resources) Scale(f float64) Resources {
	var s Resources
	for i := range r {
		s[i] = int(float64(r[i]) * f)
	}
	return s
}

// Covers reports whether r has at least as much of every resource as need.
func (r Resources) Covers(need Resources) bool {
	for i := range r {
		if r[i] < need[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every element of r is zero.
func (r Resources) IsZero() bool {
	for _, v := range r {
		if v != 0 {
			return false
		}
	}
	return true
}

// Max returns the element-wise maximum of r and o.
func (r Resources) Max(o Resources) Resources {
	var s Resources
	for i := range r {
		s[i] = r[i]
		if o[i] > s[i] {
			s[i] = o[i]
		}
	}
	return s
}

// String renders the vector as "LUT=.. FF=.. BRAM=.. DSP=..".
func (r Resources) String() string {
	return fmt.Sprintf("LUT=%d FF=%d BRAM=%d DSP=%d", r[LUT], r[FF], r[BRAM], r[DSP])
}

// UtilizationOf returns need[k] / r[k] as a fraction, or +Inf style 1e9
// when the device has none of that resource but the need is non-zero.
func (r Resources) UtilizationOf(need Resources, k ResourceKind) float64 {
	if r[k] == 0 {
		if need[k] == 0 {
			return 0
		}
		return 1e9
	}
	return float64(need[k]) / float64(r[k])
}

// ClockRegion identifies one clock region of the device grid. Xilinx names
// them XxYy with X the column and Y the row.
type ClockRegion struct {
	X, Y int
}

// String renders the vendor-style clock region name, e.g. "X1Y3".
func (c ClockRegion) String() string { return fmt.Sprintf("X%dY%d", c.X, c.Y) }

// Device models one FPGA part. The fabric is abstracted as a grid of clock
// regions, each carrying an identical share of the device resources (a
// simplification that preserves totals and region-level granularity, which
// is what DFX floorplanning constrains against).
type Device struct {
	// Name is the part name, e.g. "xc7vx485t" for the VC707 board.
	Name string
	// Board is the evaluation board the part ships on.
	Board string
	// Family is the device family; it selects the ICAP primitive flavour.
	Family Family
	// Total holds the whole-device resource counts.
	Total Resources
	// RegionCols and RegionRows give the clock-region grid dimensions.
	RegionCols, RegionRows int
	// SubColsPerRegion subdivides each clock region horizontally into
	// placement sub-columns. DFX pblocks on these parts must span full
	// clock-region height but may claim a fraction of a region's width
	// (column granularity), which is what lets many small partitions
	// coexist; FLORA exploits the same granularity.
	SubColsPerRegion int
	// FrameWords is the size in 32-bit words of one configuration frame.
	FrameWords int
	// FramesPerRegionCol is the number of configuration frames covering one
	// clock-region-height column of fabric.
	FramesPerRegionCol int
	// ICAPBandwidth is the ICAP throughput in bytes per second at the
	// reference configuration clock (100 MHz, 32-bit word per cycle).
	ICAPBandwidth float64
}

// Family is an FPGA device family.
type Family int

const (
	// Virtex7 parts (VC707) use the ICAPE2 primitive.
	Virtex7 Family = iota
	// UltraScalePlus parts (VCU118, VCU128) use the ICAPE3 primitive.
	UltraScalePlus
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case Virtex7:
		return "Virtex-7"
	case UltraScalePlus:
		return "UltraScale+"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// ICAPPrimitive returns the configuration-port primitive for the family.
func (f Family) ICAPPrimitive() string {
	if f == UltraScalePlus {
		return "ICAPE3"
	}
	return "ICAPE2"
}

// Regions returns the total number of clock regions.
func (d *Device) Regions() int { return d.RegionCols * d.RegionRows }

// RegionResources returns the resources available inside one clock region.
func (d *Device) RegionResources() Resources {
	n := d.Regions()
	var r Resources
	for i := range d.Total {
		r[i] = d.Total[i] / n
	}
	return r
}

// GridCols returns the placement grid width in sub-columns.
func (d *Device) GridCols() int { return d.RegionCols * d.SubColsPerRegion }

// GridRows returns the placement grid height (clock-region rows).
func (d *Device) GridRows() int { return d.RegionRows }

// Cells returns the total placement cell count (sub-column × region row).
func (d *Device) Cells() int { return d.GridCols() * d.GridRows() }

// CellResources returns the resources of one placement cell.
func (d *Device) CellResources() Resources {
	n := d.Cells()
	var r Resources
	for i := range d.Total {
		r[i] = d.Total[i] / n
	}
	return r
}

// RegionAt validates and returns the clock region at grid position (x, y).
func (d *Device) RegionAt(x, y int) (ClockRegion, error) {
	if x < 0 || x >= d.RegionCols || y < 0 || y >= d.RegionRows {
		return ClockRegion{}, fmt.Errorf("fpga: clock region X%dY%d outside %s grid %dx%d",
			x, y, d.Name, d.RegionCols, d.RegionRows)
	}
	return ClockRegion{X: x, Y: y}, nil
}

// VC707 returns the device model for the Xilinx VC707 board (XC7VX485T).
// Resource counts are the public part totals.
func VC707() *Device {
	return &Device{
		Name:               "xc7vx485t",
		Board:              "VC707",
		Family:             Virtex7,
		Total:              NewResources(303600, 607200, 1030, 2800),
		RegionCols:         2,
		SubColsPerRegion:   4,
		RegionRows:         7,
		FrameWords:         101,
		FramesPerRegionCol: 36,
		ICAPBandwidth:      400e6, // 32 bits @ 100 MHz
	}
}

// VCU118 returns the device model for the Xilinx VCU118 board (XCVU9P).
func VCU118() *Device {
	return &Device{
		Name:               "xcvu9p",
		Board:              "VCU118",
		Family:             UltraScalePlus,
		Total:              NewResources(1182240, 2364480, 2160, 6840),
		RegionCols:         6,
		SubColsPerRegion:   3,
		RegionRows:         15,
		FrameWords:         93,
		FramesPerRegionCol: 32,
		ICAPBandwidth:      400e6,
	}
}

// VCU128 returns the device model for the Xilinx VCU128 board (XCVU37P).
func VCU128() *Device {
	return &Device{
		Name:               "xcvu37p",
		Board:              "VCU128",
		Family:             UltraScalePlus,
		Total:              NewResources(1303680, 2607360, 2016, 9024),
		RegionCols:         6,
		SubColsPerRegion:   3,
		RegionRows:         15,
		FrameWords:         93,
		FramesPerRegionCol: 32,
		ICAPBandwidth:      400e6,
	}
}

// ByBoard returns the device model for a board name, or an error listing
// the supported boards.
func ByBoard(board string) (*Device, error) {
	switch board {
	case "VC707", "vc707":
		return VC707(), nil
	case "VCU118", "vcu118":
		return VCU118(), nil
	case "VCU128", "vcu128":
		return VCU128(), nil
	}
	return nil, fmt.Errorf("fpga: unsupported board %q (supported: VC707, VCU118, VCU128)", board)
}

// Boards lists the supported evaluation boards in stable order.
func Boards() []string {
	b := []string{"VC707", "VCU118", "VCU128"}
	sort.Strings(b)
	return b
}
