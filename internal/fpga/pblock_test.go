package fpga

import (
	"testing"
	"testing/quick"
)

func pb(name string, x0, y0, x1, y1 int) Pblock {
	return Pblock{Name: name, X0: x0, Y0: y0, X1: x1, Y1: y1}
}

func TestPblockGeometry(t *testing.T) {
	p := pb("a", 1, 2, 3, 4)
	if p.Width() != 3 || p.Height() != 3 || p.CellCount() != 9 {
		t.Fatalf("geometry wrong: w=%d h=%d n=%d", p.Width(), p.Height(), p.CellCount())
	}
	if got := len(p.Cells()); got != 9 {
		t.Fatalf("Cells() returned %d cells", got)
	}
}

func TestPblockOverlaps(t *testing.T) {
	a := pb("a", 0, 0, 2, 2)
	cases := []struct {
		b    Pblock
		want bool
	}{
		{pb("b", 3, 0, 4, 2), false}, // adjacent right
		{pb("b", 0, 3, 2, 4), false}, // adjacent above
		{pb("b", 2, 2, 4, 4), true},  // corner cell shared
		{pb("b", 1, 1, 1, 1), true},  // contained
		{pb("b", 0, 0, 2, 2), true},  // identical
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestPblockOverlapsSymmetricProperty(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := pb("a", int(ax0), int(ay0), int(ax0)+int(aw%8), int(ay0)+int(ah%8))
		b := pb("b", int(bx0), int(by0), int(bx0)+int(bw%8), int(by0)+int(bh%8))
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPblockContainsConsistentWithCells(t *testing.T) {
	p := pb("a", 1, 1, 2, 3)
	seen := make(map[Cell]bool)
	for _, c := range p.Cells() {
		if !p.Contains(c) {
			t.Fatalf("cell %v enumerated but not contained", c)
		}
		seen[c] = true
	}
	if p.Contains(Cell{X: 0, Y: 1}) || p.Contains(Cell{X: 3, Y: 1}) {
		t.Fatal("Contains accepts cells outside the rectangle")
	}
	if len(seen) != p.CellCount() {
		t.Fatalf("duplicate cells enumerated: %d unique of %d", len(seen), p.CellCount())
	}
}

func TestPblockValidate(t *testing.T) {
	d := VC707()
	if err := pb("ok", 0, 0, d.GridCols()-1, d.GridRows()-1).Validate(d); err != nil {
		t.Fatalf("full-device pblock rejected: %v", err)
	}
	if err := pb("inv", 2, 2, 1, 1).Validate(d); err == nil {
		t.Fatal("inverted corners accepted")
	}
	if err := pb("oob", 0, 0, d.GridCols(), 0).Validate(d); err == nil {
		t.Fatal("out-of-grid pblock accepted")
	}
}

func TestPblockResourcesAndFrames(t *testing.T) {
	d := VC707()
	one := pb("one", 0, 0, 0, 0)
	if one.ResourcesOn(d) != d.CellResources() {
		t.Fatal("single-cell pblock resources != cell resources")
	}
	two := pb("two", 0, 0, 1, 0)
	if two.ResourcesOn(d)[LUT] != 2*d.CellResources()[LUT] {
		t.Fatal("two-cell pblock should double resources")
	}
	if two.Frames(d) != 2*one.Frames(d) {
		t.Fatal("frames should scale with cell count")
	}
	if one.Frames(d) <= 0 {
		t.Fatal("pblock covers no frames")
	}
}

func TestOccupancyClaimRelease(t *testing.T) {
	d := VC707()
	occ := NewOccupancy(d)
	a := pb("a", 0, 0, 1, 1)
	if !occ.CanClaim(a) {
		t.Fatal("empty fabric should accept claim")
	}
	if err := occ.Claim(a); err != nil {
		t.Fatalf("claim failed: %v", err)
	}
	if occ.Owner(Cell{X: 0, Y: 0}) != "a" {
		t.Fatal("owner not recorded")
	}
	b := pb("b", 1, 1, 2, 2) // overlaps a at (1,1)
	if occ.CanClaim(b) {
		t.Fatal("overlapping claim should be rejected")
	}
	if err := occ.Claim(b); err == nil {
		t.Fatal("Claim must fail on overlap")
	}
	// A failed claim must not partially mark cells.
	if occ.Owner(Cell{X: 2, Y: 2}) != "" {
		t.Fatal("failed claim leaked ownership")
	}
	occ.Release("a")
	if occ.FreeCells() != d.Cells() {
		t.Fatal("release did not free all cells")
	}
	if err := occ.Claim(b); err != nil {
		t.Fatalf("claim after release failed: %v", err)
	}
}

func TestOccupancyFreeCellsAccounting(t *testing.T) {
	d := VC707()
	occ := NewOccupancy(d)
	total := d.Cells()
	a := pb("a", 0, 0, 2, 1) // 6 cells
	if err := occ.Claim(a); err != nil {
		t.Fatal(err)
	}
	if got := occ.FreeCells(); got != total-6 {
		t.Fatalf("free cells: got %d want %d", got, total-6)
	}
}

func TestOccupancyRejectsInvalidPblock(t *testing.T) {
	d := VC707()
	occ := NewOccupancy(d)
	bad := pb("bad", -1, 0, 0, 0)
	if occ.CanClaim(bad) {
		t.Fatal("invalid pblock claimable")
	}
	if err := occ.Claim(bad); err == nil {
		t.Fatal("invalid pblock claimed")
	}
}
