package noc

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"presp/internal/sim"
)

func mesh(t *testing.T, cols, rows int) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	n, err := New(eng, Config{Cols: cols, Rows: rows, FreqHz: 78e6})
	if err != nil {
		t.Fatal(err)
	}
	return eng, n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(sim.NewEngine(), Config{Cols: 0, Rows: 3}); err == nil {
		t.Fatal("zero-width mesh accepted")
	}
	if _, err := New(sim.NewEngine(), Config{Cols: 3, Rows: -1}); err == nil {
		t.Fatal("negative-height mesh accepted")
	}
}

func TestDefaults(t *testing.T) {
	n, err := New(sim.NewEngine(), Config{Cols: 2, Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.Planes != int(NumPlanes) {
		t.Fatalf("default planes: got %d want %d", n.cfg.Planes, NumPlanes)
	}
	if n.cfg.FlitBytes != 8 || n.cfg.FreqHz != 78e6 || n.cfg.RouterLatencyCycles != 2 {
		t.Fatalf("defaults not applied: %+v", n.cfg)
	}
}

func TestRouteXYOrder(t *testing.T) {
	_, n := mesh(t, 4, 4)
	path, err := n.Route(Coord{X: 0, Y: 0}, Coord{X: 3, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	// XY routing travels X first, then Y.
	want := []Coord{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {3, 1}, {3, 2}}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestRouteLengthProperty(t *testing.T) {
	_, n := mesh(t, 6, 5)
	f := func(sx, sy, dx, dy uint8) bool {
		src := Coord{X: int(sx) % 6, Y: int(sy) % 5}
		dst := Coord{X: int(dx) % 6, Y: int(dy) % 5}
		path, err := n.Route(src, dst)
		if err != nil {
			return false
		}
		return len(path) == n.Hops(src, dst)+1 && path[0] == src && path[len(path)-1] == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteOutsideMesh(t *testing.T) {
	_, n := mesh(t, 2, 2)
	if _, err := n.Route(Coord{X: 0, Y: 0}, Coord{X: 5, Y: 0}); err == nil {
		t.Fatal("route to outside coordinate accepted")
	}
	if _, err := n.Transfer(PlaneMemReq, Coord{X: -1, Y: 0}, Coord{X: 0, Y: 0}, 64); err == nil {
		t.Fatal("transfer from outside coordinate accepted")
	}
}

func TestTransferLatencyComponents(t *testing.T) {
	_, n := mesh(t, 3, 3)
	src, dst := Coord{X: 0, Y: 0}, Coord{X: 2, Y: 0}
	// 64 bytes = 8 flits + 1 head = 9 flits; 2 hops × 2 cycles + 9
	// cycles serialization = 13 cycles @ 78 MHz (per-cycle rounding, as
	// the link-reservation model composes durations).
	done, err := n.Transfer(PlaneMemReq, src, dst, 64)
	if err != nil {
		t.Fatal(err)
	}
	cycle := sim.Clock(1, 78e6)
	want := 2*2*cycle + 9*cycle
	if done != want {
		t.Fatalf("transfer latency: got %v want %v", done, want)
	}
}

func TestTransferContentionPushesBack(t *testing.T) {
	_, n := mesh(t, 3, 1)
	src, dst := Coord{X: 0, Y: 0}, Coord{X: 2, Y: 0}
	first, err := n.Transfer(PlaneMemReq, src, dst, 8000)
	if err != nil {
		t.Fatal(err)
	}
	second, err := n.Transfer(PlaneMemReq, src, dst, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if second <= first {
		t.Fatalf("contending transfer should finish later: %v then %v", first, second)
	}
	// A transfer on a different plane shares no links.
	other, err := n.Transfer(PlaneMemRsp, src, dst, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if other != first {
		t.Fatalf("different plane should be uncontended: got %v want %v", other, first)
	}
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	_, n := mesh(t, 3, 3)
	a, err := n.Transfer(PlaneMemReq, Coord{X: 0, Y: 0}, Coord{X: 2, Y: 0}, 800)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Transfer(PlaneMemReq, Coord{X: 0, Y: 2}, Coord{X: 2, Y: 2}, 800)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("disjoint rows should not contend: %v vs %v", a, b)
	}
}

func TestTransferValidation(t *testing.T) {
	_, n := mesh(t, 2, 2)
	if _, err := n.Transfer(Plane(99), Coord{}, Coord{X: 1, Y: 0}, 8); err == nil {
		t.Fatal("invalid plane accepted")
	}
	if _, err := n.Transfer(PlaneMemReq, Coord{}, Coord{X: 1, Y: 0}, 0); err == nil {
		t.Fatal("zero-byte transfer accepted")
	}
}

func TestDecoupleGatesTransfers(t *testing.T) {
	_, n := mesh(t, 2, 2)
	target := Coord{X: 1, Y: 0}
	if err := n.Decouple(target); err != nil {
		t.Fatal(err)
	}
	if !n.Decoupled(target) {
		t.Fatal("decouple state not recorded")
	}
	_, err := n.Transfer(PlaneMemReq, Coord{}, target, 64)
	var gated *ErrDecoupled
	if !errors.As(err, &gated) {
		t.Fatalf("transfer to decoupled tile: got %v, want ErrDecoupled", err)
	}
	if gated.Tile != target {
		t.Fatalf("error names tile %v", gated.Tile)
	}
	if _, err := n.Transfer(PlaneMemReq, target, Coord{}, 64); err == nil {
		t.Fatal("transfer from decoupled tile accepted")
	}
	// Traffic that merely passes through the gated tile's router is NOT
	// blocked — only its local ports are.
	if _, err := n.Transfer(PlaneMemReq, Coord{X: 0, Y: 0}, Coord{X: 1, Y: 1}, 64); err != nil {
		t.Fatalf("pass-through traffic blocked: %v", err)
	}
	if err := n.Recouple(target); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Transfer(PlaneMemReq, Coord{}, target, 64); err != nil {
		t.Fatalf("transfer after recouple failed: %v", err)
	}
}

func TestDecoupleValidation(t *testing.T) {
	_, n := mesh(t, 2, 2)
	if err := n.Decouple(Coord{X: 9, Y: 9}); err == nil {
		t.Fatal("decouple outside mesh accepted")
	}
	if err := n.Recouple(Coord{X: 9, Y: 9}); err == nil {
		t.Fatal("recouple outside mesh accepted")
	}
}

func TestStats(t *testing.T) {
	_, n := mesh(t, 2, 2)
	if _, err := n.Transfer(PlaneMemReq, Coord{}, Coord{X: 1, Y: 0}, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Transfer(PlaneConfig, Coord{}, Coord{X: 1, Y: 1}, 8); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Packets != 2 {
		t.Fatalf("packets: got %d", s.Packets)
	}
	if s.TotalFlits < 9+2 {
		t.Fatalf("flits too few: %d", s.TotalFlits)
	}
	if s.LinksUsed < 3 {
		t.Fatalf("links: got %d", s.LinksUsed)
	}
}

func TestLocalDeliveryPaysSerialization(t *testing.T) {
	eng, n := mesh(t, 2, 2)
	_ = eng
	done, err := n.Transfer(PlaneMemReq, Coord{}, Coord{}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("local transfer should still take serialization time")
	}
}

func TestTransferAdvancesWithEngineTime(t *testing.T) {
	eng, n := mesh(t, 2, 1)
	var second sim.Time
	first, err := n.Transfer(PlaneMemReq, Coord{}, Coord{X: 1, Y: 0}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	// At a later virtual time, the link is free again: no push-back.
	if err := eng.At(first+time.Millisecond, func() {
		var terr error
		second, terr = n.Transfer(PlaneMemReq, Coord{}, Coord{X: 1, Y: 0}, 8000)
		if terr != nil {
			t.Error(terr)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run(0)
	if second <= first {
		t.Fatalf("second transfer should start after the first: %v vs %v", second, first)
	}
}

func TestPlaneNames(t *testing.T) {
	for p := Plane(0); p < NumPlanes; p++ {
		if p.String() == "" {
			t.Fatalf("plane %d unnamed", p)
		}
	}
}

func TestPlaneStats(t *testing.T) {
	_, n := mesh(t, 2, 2)
	if _, err := n.Transfer(PlaneMemReq, Coord{}, Coord{X: 1, Y: 0}, 640); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Transfer(PlaneDMA, Coord{}, Coord{X: 1, Y: 0}, 64); err != nil {
		t.Fatal(err)
	}
	req := n.PlaneStats(PlaneMemReq)
	dma := n.PlaneStats(PlaneDMA)
	idle := n.PlaneStats(PlaneCoherence)
	if req.TotalFlits <= dma.TotalFlits {
		t.Fatalf("mem-req (%d flits) should carry more than dma (%d)", req.TotalFlits, dma.TotalFlits)
	}
	if idle.TotalFlits != 0 || idle.LinksUsed != 0 {
		t.Fatal("unused plane shows traffic")
	}
	total := n.Stats()
	if total.TotalFlits != req.TotalFlits+dma.TotalFlits {
		t.Fatal("plane stats do not sum to the total")
	}
}

// hookFaults is a scripted FaultHook for tests: each field, when
// non-nil, is returned once and cleared.
type hookFaults struct {
	transfer, decouple, recouple error
	calls                        int
}

func (h *hookFaults) TransferFault(p Plane, src, dst Coord) error {
	h.calls++
	err := h.transfer
	h.transfer = nil
	return err
}
func (h *hookFaults) DecoupleFault(c Coord) error {
	h.calls++
	err := h.decouple
	h.decouple = nil
	return err
}
func (h *hookFaults) RecoupleFault(c Coord) error {
	h.calls++
	err := h.recouple
	h.recouple = nil
	return err
}

func TestFaultHookVetoesOperations(t *testing.T) {
	_, n := mesh(t, 2, 2)
	boom := errors.New("injected")
	h := &hookFaults{transfer: boom}
	n.SetFaultHook(h)

	if _, err := n.Transfer(PlaneDMA, Coord{0, 0}, Coord{1, 1}, 64); !errors.Is(err, boom) {
		t.Fatalf("transfer fault not delivered: %v", err)
	}
	if n.Stats().Packets != 0 || n.Stats().LinksUsed != 0 {
		t.Fatalf("faulted transfer mutated link state: %+v", n.Stats())
	}
	// The hook is consumed: the retry goes through.
	if _, err := n.Transfer(PlaneDMA, Coord{0, 0}, Coord{1, 1}, 64); err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}

	h.decouple = boom
	if err := n.Decouple(Coord{1, 1}); !errors.Is(err, boom) {
		t.Fatalf("decouple fault not delivered: %v", err)
	}
	if n.Decoupled(Coord{1, 1}) {
		t.Fatal("faulted decouple gated the tile")
	}
	if err := n.Decouple(Coord{1, 1}); err != nil {
		t.Fatal(err)
	}
	h.recouple = boom
	if err := n.Recouple(Coord{1, 1}); !errors.Is(err, boom) {
		t.Fatalf("recouple fault not delivered: %v", err)
	}
	if !n.Decoupled(Coord{1, 1}) {
		t.Fatal("faulted recouple un-gated the tile")
	}
	// Recovery path: ResetTile bypasses the stuck decoupler.
	h.recouple = boom
	if !n.ResetTile(Coord{1, 1}) {
		t.Fatal("ResetTile did not report resetting a gated tile")
	}
	if n.Decoupled(Coord{1, 1}) {
		t.Fatal("ResetTile did not clear the gate")
	}
	// Removing the hook restores normal operation.
	n.SetFaultHook(nil)
	if err := n.Decouple(Coord{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Recouple(Coord{1, 1}); err != nil {
		t.Fatal(err)
	}
}

// TestDecoupleTrioCoherence pins the decoupler trio's edge semantics:
// the decoupler is a level signal, so double-decouple and
// recouple-without-decouple are idempotent successes, while ResetTile
// validates its coord like the other two and reports whether it
// actually reset anything instead of silently clearing phantom state.
func TestDecoupleTrioCoherence(t *testing.T) {
	_, n := mesh(t, 2, 2)
	c := Coord{1, 0}

	// Double-decouple: asserting the level twice is the same state.
	if err := n.Decouple(c); err != nil {
		t.Fatal(err)
	}
	if err := n.Decouple(c); err != nil {
		t.Fatalf("double decouple: %v", err)
	}
	if !n.Decoupled(c) {
		t.Fatal("tile not gated after double decouple")
	}
	if err := n.Recouple(c); err != nil {
		t.Fatal(err)
	}

	// Recouple-without-decouple: de-asserting an already-low level.
	if err := n.Recouple(c); err != nil {
		t.Fatalf("recouple of never-decoupled tile: %v", err)
	}
	if n.Decoupled(c) {
		t.Fatal("recouple gated the tile")
	}

	// Out-of-mesh coords: all three validate the same way.
	out := Coord{5, 5}
	if err := n.Decouple(out); err == nil {
		t.Fatal("out-of-mesh decouple accepted")
	}
	if err := n.Recouple(out); err == nil {
		t.Fatal("out-of-mesh recouple accepted")
	}
	if n.ResetTile(out) {
		t.Fatal("out-of-mesh ResetTile claimed to reset a tile")
	}
	// Resetting an in-mesh tile that is not gated is a no-op, reported.
	if n.ResetTile(c) {
		t.Fatal("ResetTile claimed to reset an un-gated tile")
	}
	if err := n.Decouple(c); err != nil {
		t.Fatal(err)
	}
	if !n.ResetTile(c) {
		t.Fatal("ResetTile did not reset a gated tile")
	}
}

func TestFaultHookNotConsultedOnInvalidInput(t *testing.T) {
	_, n := mesh(t, 2, 2)
	h := &hookFaults{}
	n.SetFaultHook(h)
	if _, err := n.Transfer(PlaneDMA, Coord{0, 0}, Coord{5, 5}, 64); err == nil {
		t.Fatal("out-of-mesh transfer accepted")
	}
	if _, err := n.Transfer(PlaneDMA, Coord{0, 0}, Coord{1, 1}, 0); err == nil {
		t.Fatal("zero-byte transfer accepted")
	}
	// Gated-destination failures also precede injection.
	if err := n.Decouple(Coord{1, 1}); err != nil {
		t.Fatal(err)
	}
	before := h.calls
	if _, err := n.Transfer(PlaneDMA, Coord{0, 0}, Coord{1, 1}, 64); err == nil {
		t.Fatal("transfer to gated tile accepted")
	}
	if h.calls != before {
		t.Fatal("hook consulted for a transfer that fails validation")
	}
}
