// Package noc models the ESP network-on-chip: a packet-switched 2D mesh
// with multiple physical planes, XY dimension-ordered routing and
// wormhole switching. The model is link-reservation based: every
// directed link tracks when it becomes free, so concurrent transfers
// contend for bandwidth exactly where their paths overlap, while the
// common no-contention case stays O(hops) per transfer.
//
// The reconfigurable tile's decoupler (Section III of the paper) is
// modelled by per-tile port gating: while a tile is decoupled, the
// inputs to its NoC queues are disabled and transfers touching it fail.
package noc

import (
	"fmt"
	"strings"

	"presp/internal/obs"
	"presp/internal/sim"
)

// Coord addresses a tile in the mesh.
type Coord struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Plane identifies one physical NoC plane. ESP instantiates six planes;
// the ones relevant to this model are named below.
type Plane int

const (
	// PlaneMemReq carries DMA/memory requests.
	PlaneMemReq Plane = iota
	// PlaneMemRsp carries DMA/memory responses.
	PlaneMemRsp
	// PlaneConfig carries memory-mapped register traffic.
	PlaneConfig
	// PlaneInterrupt carries interrupt packets.
	PlaneInterrupt
	// PlaneCoherence carries coherence traffic (unused by accelerators
	// in the non-coherent DMA mode modelled here, but instantiated).
	PlaneCoherence
	// PlaneDMA carries the bitstream-fetch DMA issued by the DFX
	// controller in the auxiliary tile.
	PlaneDMA
	// NumPlanes is the ESP physical plane count.
	NumPlanes
)

// String names the plane.
func (p Plane) String() string {
	switch p {
	case PlaneMemReq:
		return "mem-req"
	case PlaneMemRsp:
		return "mem-rsp"
	case PlaneConfig:
		return "config"
	case PlaneInterrupt:
		return "interrupt"
	case PlaneCoherence:
		return "coherence"
	case PlaneDMA:
		return "dma"
	default:
		return fmt.Sprintf("plane-%d", int(p))
	}
}

type linkKey struct {
	plane    Plane
	from, to Coord
}

type link struct {
	freeAt sim.Time
	flits  int64
}

// Config carries the mesh parameters.
type Config struct {
	Cols, Rows int
	// Planes is the physical plane count; zero selects NumPlanes.
	Planes int
	// FlitBytes is the payload bytes per flit (ESP planes are 64-bit).
	FlitBytes int
	// FreqHz is the NoC clock. The paper's SoCs run the fabric at 78 MHz.
	FreqHz float64
	// RouterLatencyCycles is the per-hop router pipeline latency.
	RouterLatencyCycles int
}

// FaultHook lets a fault-injection layer veto NoC operations. Each
// method is consulted before the operation takes effect and returns
// the error to inject, or nil to let the operation proceed. Hooks see
// every operation in simulation order, so a deterministic hook yields
// a deterministic fault schedule.
type FaultHook interface {
	// TransferFault is consulted once per Transfer, after validation
	// and gating checks but before any link is reserved.
	TransferFault(p Plane, src, dst Coord) error
	// DecoupleFault is consulted before the decoupler engages.
	DecoupleFault(c Coord) error
	// RecoupleFault is consulted before the decoupler disengages. A
	// fault here models a stuck decoupler; recovery paths bypass it
	// with ResetTile.
	RecoupleFault(c Coord) error
}

// Network is the mesh instance.
type Network struct {
	cfg     Config
	eng     *sim.Engine
	links   map[linkKey]*link
	gated   map[Coord]bool
	faults  FaultHook
	packets int64

	// Per-plane observability counters, resolved once by SetObserver
	// (nil slices without an observer — Transfer guards on that).
	mTransfers []*obs.Counter
	mFlits     []*obs.Counter
}

// SetObserver attaches an observability handle: every successful
// Transfer counts one packet and its flits on per-plane counters
// (noc_transfers_total_<plane>, noc_flits_total_<plane>). A nil
// observer detaches at no cost; observation never changes timing.
func (n *Network) SetObserver(o *obs.Observer) {
	reg := o.Metrics()
	if reg == nil {
		n.mTransfers, n.mFlits = nil, nil
		return
	}
	n.mTransfers = make([]*obs.Counter, n.cfg.Planes)
	n.mFlits = make([]*obs.Counter, n.cfg.Planes)
	for p := 0; p < n.cfg.Planes; p++ {
		name := strings.ReplaceAll(Plane(p).String(), "-", "_")
		n.mTransfers[p] = reg.Counter("noc_transfers_total_" + name)
		n.mFlits[p] = reg.Counter("noc_flits_total_" + name)
	}
}

// New builds a mesh network bound to engine eng.
func New(eng *sim.Engine, cfg Config) (*Network, error) {
	if cfg.Cols <= 0 || cfg.Rows <= 0 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Cols, cfg.Rows)
	}
	if cfg.Planes <= 0 {
		cfg.Planes = int(NumPlanes)
	}
	if cfg.FlitBytes <= 0 {
		cfg.FlitBytes = 8
	}
	if cfg.FreqHz <= 0 {
		cfg.FreqHz = 78e6
	}
	if cfg.RouterLatencyCycles <= 0 {
		cfg.RouterLatencyCycles = 2
	}
	return &Network{
		cfg:   cfg,
		eng:   eng,
		links: make(map[linkKey]*link),
		gated: make(map[Coord]bool),
	}, nil
}

// Cols returns the mesh width.
func (n *Network) Cols() int { return n.cfg.Cols }

// Rows returns the mesh height.
func (n *Network) Rows() int { return n.cfg.Rows }

// Contains reports whether c addresses a tile inside the mesh.
func (n *Network) Contains(c Coord) bool {
	return c.X >= 0 && c.X < n.cfg.Cols && c.Y >= 0 && c.Y < n.cfg.Rows
}

// Route returns the XY dimension-ordered path from src to dst, inclusive
// of both endpoints.
func (n *Network) Route(src, dst Coord) ([]Coord, error) {
	if !n.Contains(src) || !n.Contains(dst) {
		return nil, fmt.Errorf("noc: route %s -> %s outside %dx%d mesh", src, dst, n.cfg.Cols, n.cfg.Rows)
	}
	path := []Coord{src}
	cur := src
	for cur.X != dst.X {
		if dst.X > cur.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		if dst.Y > cur.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path, nil
}

// Hops returns the hop count (Manhattan distance) between src and dst.
func (n *Network) Hops(src, dst Coord) int {
	dx, dy := dst.X-src.X, dst.Y-src.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook consulted by Transfer, Decouple and Recouple.
func (n *Network) SetFaultHook(h FaultHook) { n.faults = h }

// Decouple gates the NoC queues of the tile at c, as the reconfigurable
// tile's decoupling logic does during partial reconfiguration.
// Decoupling an already-gated tile is idempotent: the decoupler is a
// level signal, not an edge, so asserting it twice is the same state
// (the fault hook is still consulted — a stuck decoupler faults every
// engage attempt, first or repeated).
func (n *Network) Decouple(c Coord) error {
	if !n.Contains(c) {
		return fmt.Errorf("noc: decouple %s outside mesh", c)
	}
	if n.faults != nil {
		if err := n.faults.DecoupleFault(c); err != nil {
			return err
		}
	}
	n.gated[c] = true
	return nil
}

// Recouple re-enables the NoC queues of the tile at c (with the queue
// reset the decoupler performs after a successful reconfiguration).
// Recoupling a tile that was never decoupled is likewise idempotent —
// the de-asserted level plus a queue reset of already-empty queues —
// so it returns nil rather than inventing an error the hardware does
// not have.
func (n *Network) Recouple(c Coord) error {
	if !n.Contains(c) {
		return fmt.Errorf("noc: recouple %s outside mesh", c)
	}
	if n.faults != nil {
		if err := n.faults.RecoupleFault(c); err != nil {
			return err
		}
	}
	delete(n.gated, c)
	return nil
}

// ResetTile force-disengages the decoupler at c, bypassing any fault
// hook — the PRC's dedicated reset line, which error recovery asserts
// when a normal disengage cannot be trusted. Unlike Decouple and
// Recouple it cannot fail (a reset line that could fail would be
// useless for recovery), but it validates the coord the same way: it
// reports whether a gated tile inside the mesh was actually reset, so
// a recovery path aiming the reset line at the wrong tile reads false
// instead of silently "succeeding" against a phantom coordinate.
func (n *Network) ResetTile(c Coord) bool {
	if !n.Contains(c) || !n.gated[c] {
		return false
	}
	delete(n.gated, c)
	return true
}

// Decoupled reports whether the tile at c is currently gated.
func (n *Network) Decoupled(c Coord) bool { return n.gated[c] }

// ErrDecoupled is returned when a transfer touches a gated tile.
type ErrDecoupled struct {
	Tile Coord
}

// Error implements error.
func (e *ErrDecoupled) Error() string {
	return fmt.Sprintf("noc: tile %s is decoupled for reconfiguration", e.Tile)
}

// Transfer reserves the XY path from src to dst on plane p for a packet
// of the given payload size and returns the virtual time at which the
// tail flit arrives. Links already busy push the start time back, which
// is how contention manifests.
func (n *Network) Transfer(p Plane, src, dst Coord, bytes int) (sim.Time, error) {
	if int(p) < 0 || int(p) >= n.cfg.Planes {
		return 0, fmt.Errorf("noc: plane %d out of range (%d planes)", p, n.cfg.Planes)
	}
	if n.gated[src] {
		return 0, &ErrDecoupled{Tile: src}
	}
	if n.gated[dst] {
		return 0, &ErrDecoupled{Tile: dst}
	}
	if bytes <= 0 {
		return 0, fmt.Errorf("noc: non-positive transfer size %d", bytes)
	}
	path, err := n.Route(src, dst)
	if err != nil {
		return 0, err
	}
	if n.faults != nil {
		if err := n.faults.TransferFault(p, src, dst); err != nil {
			return 0, err
		}
	}
	flits := int64((bytes + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes)
	flits++ // head flit

	now := n.eng.Now()
	cycle := sim.Clock(1, n.cfg.FreqHz)
	hopLat := sim.Time(n.cfg.RouterLatencyCycles) * cycle
	serial := sim.Time(flits) * cycle

	// Wormhole: the head advances one hop per router latency; each link
	// is then occupied for the full flit train. The start time is pushed
	// back until every link on the path is free at its offset.
	start := now
	for {
		pushed := false
		for i := 0; i+1 < len(path); i++ {
			lk := n.linkFor(p, path[i], path[i+1])
			need := start + sim.Time(i)*hopLat
			if lk.freeAt > need {
				start += lk.freeAt - need
				pushed = true
			}
		}
		if !pushed {
			break
		}
	}
	for i := 0; i+1 < len(path); i++ {
		lk := n.linkFor(p, path[i], path[i+1])
		lk.freeAt = start + sim.Time(i)*hopLat + serial
		lk.flits += flits
	}
	n.packets++
	if n.mTransfers != nil {
		n.mTransfers[p].Inc()
		n.mFlits[p].Add(flits)
	}
	done := start + sim.Time(len(path)-1)*hopLat + serial
	if len(path) == 1 { // local delivery still pays serialization
		done = start + serial
	}
	return done, nil
}

func (n *Network) linkFor(p Plane, from, to Coord) *link {
	k := linkKey{plane: p, from: from, to: to}
	l, ok := n.links[k]
	if !ok {
		l = &link{}
		n.links[k] = l
	}
	return l
}

// Stats summarizes traffic carried so far.
type Stats struct {
	Packets    int64
	LinksUsed  int
	TotalFlits int64
}

// Stats returns the accumulated traffic statistics.
func (n *Network) Stats() Stats {
	s := Stats{Packets: n.packets, LinksUsed: len(n.links)}
	for _, l := range n.links {
		s.TotalFlits += l.flits
	}
	return s
}

// PlaneStats returns the flits carried and links used on one physical
// plane — the per-plane utilization breakdown designers size the NoC
// with.
func (n *Network) PlaneStats(p Plane) Stats {
	var s Stats
	for k, l := range n.links {
		if k.plane == p {
			s.LinksUsed++
			s.TotalFlits += l.flits
		}
	}
	return s
}
