// Stage-artifact keys: the content addresses behind incremental
// re-flow. Each post-synthesis job — floorplan, script generation, the
// implementation runs, bitstream generation — derives a key from
// everything its result depends on: the design digest inputs, the
// device, the cost model, the partition module set and the *upstream
// artifact keys*, so invalidation follows the dependency graph. Editing
// one partition's content changes its synthesis checkpoint key, which
// changes exactly the implementation run that consumes it and the
// partial bitstreams of that run's partitions — the floorplan, the
// static pre-route, every other group and the full-device bitstream
// keep their keys and skip. See DESIGN.md §16.
package flow

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"

	"presp/internal/core"
	"presp/internal/fpga"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// artifactDigest accumulates one stage key. The framing matches the
// package's other digests: strings are 0xff-terminated so ("ab","c")
// and ("a","bc") differ, numbers are fixed-width little-endian.
type artifactDigest struct {
	h   hash.Hash64
	buf [8]byte
}

func newArtifactDigest(kind string) *artifactDigest {
	d := &artifactDigest{h: fnv.New64a()}
	d.str(kind)
	return d
}

func (d *artifactDigest) str(s string) {
	d.h.Write([]byte(s))
	d.h.Write([]byte{0xff})
}

func (d *artifactDigest) u64(v uint64) {
	binary.LittleEndian.PutUint64(d.buf[:], v)
	d.h.Write(d.buf[:])
}

func (d *artifactDigest) flag(v bool) {
	if v {
		d.u64(1)
	} else {
		d.u64(0)
	}
}

func (d *artifactDigest) res(r fpga.Resources) {
	for _, n := range r {
		d.u64(uint64(n))
	}
}

func (d *artifactDigest) sum() string { return fmt.Sprintf("%016x", d.h.Sum64()) }

// stageKeys holds the derived artifact keys of one partitioned run.
// Empty keys (nil receiver, or a partition without content) disable
// caching for the affected jobs; everything else probes the cache.
type stageKeys struct {
	cache      *vivado.StageCache
	floorplan  string
	scripts    string
	implStatic string
	serial     string
	groups     []string          // one per strategy group
	bitgenFull string
	partials   map[string]string // partition name -> partial-bitgen key
}

// buildStageKeys derives every stage key of a partitioned run up front —
// all inputs are known before the first job executes. A design with a
// contentless partition cannot be keyed (its synthesis key is
// undefined); runs under a fault plan are not keyed either, because a
// cache skip would bypass the injected fault and break the plan's
// determinism contract. Both return nil, which disables stage caching.
func buildStageKeys(d *socgen.Design, tool *vivado.Tool, strat *core.Strategy, opt Options, mode flowMode) *stageKeys {
	if opt.StageCache == nil || opt.FaultPlan != nil {
		return nil
	}
	for _, rp := range d.RPs {
		if rp.Content == nil {
			return nil
		}
	}
	modelBytes, err := json.Marshal(tool.Model())
	if err != nil {
		return nil
	}
	modelDigest := string(modelBytes)

	// Strategy digest: kind, degree and the exact group assignment.
	sd := newArtifactDigest("strategy/v1")
	sd.str(strat.Kind.String())
	sd.u64(uint64(strat.Tau))
	for _, group := range strat.Groups {
		for _, name := range group {
			sd.str(name)
		}
		sd.str("|")
	}
	strategyDigest := sd.sum()

	sk := &stageKeys{cache: opt.StageCache, partials: make(map[string]string, len(d.RPs))}

	// Floorplan: device geometry, cost model (pblock slack), the static
	// envelope and every partition's name, resource envelope and the
	// content properties the DFX design rule checks read — the content
	// *name* and clock-topology flags, deliberately not the content's
	// cost vector, so re-costing a kernel keeps the floorplan hit while
	// anything DRC-visible invalidates it.
	fp := newArtifactDigest("floorplan/v1")
	fp.str(mode.name())
	fp.str(d.Cfg.Name)
	fp.str(d.Dev.Name)
	fp.res(d.Dev.Total)
	fp.str(modelDigest)
	fp.res(d.StaticResources)
	for _, rp := range d.RPs {
		fp.str(rp.Name)
		fp.res(rp.Resources)
		fp.str(rp.Content.Name)
		fp.flag(rp.Content.ContainsClockModifying())
		fp.flag(rp.Content.DrivesClockOut())
	}
	sk.floorplan = fp.sum()

	// Scripts render the floorplan under the chosen strategy; both are
	// already digests.
	sc := newArtifactDigest("scripts/v1")
	sc.str(sk.floorplan)
	sc.str(strategyDigest)
	sk.scripts = sc.sum()

	// Synthesis keys are the upstream addresses of the implementation
	// stage: the checkpoint cache's own content digests.
	staticSynthKey := tool.CheckpointKey(BuildStaticTop(d), false)
	synthKey := make(map[string]string, len(d.RPs))
	for _, rp := range d.RPs {
		synthKey[rp.Name] = tool.CheckpointKey(rp.Content, true)
	}

	switch strat.Kind {
	case core.Serial:
		// The serial run implements everything in one instance, so every
		// partition's content is an input.
		se := newArtifactDigest("impl/serial/v1")
		se.str(sk.floorplan)
		se.str(strategyDigest)
		se.res(d.StaticResources.Add(d.ReconfigurableResources()))
		se.u64(uint64(len(d.RPs)))
		se.str(staticSynthKey)
		for _, rp := range d.RPs {
			se.str(synthKey[rp.Name])
		}
		sk.serial = se.sum()
	default:
		// Static pre-route: floorplan plus the static checkpoint and the
		// reconfigurable envelope — no partition content, so kernel edits
		// never invalidate it.
		st := newArtifactDigest("impl/static/v1")
		st.str(sk.floorplan)
		st.str(staticSynthKey)
		st.res(d.ReconfigurableResources())
		sk.implStatic = st.sum()

		sk.groups = make([]string, len(strat.Groups))
		for gi, group := range strat.Groups {
			gr := newArtifactDigest("impl/group/v1")
			gr.str(sk.implStatic)
			gr.str(strategyDigest)
			gr.u64(uint64(gi))
			for _, name := range group {
				gr.str(name)
				gr.str(synthKey[name])
			}
			sk.groups[gi] = gr.sum()
		}
	}

	// Full-device bitstream: static + placeholder partitions, so it
	// hangs off the static implementation (or the serial run), never a
	// partition's content.
	bf := newArtifactDigest("bitgen/full/v1")
	bf.str(d.Cfg.Name)
	bf.res(d.StaticResources.Add(d.ReconfigurableResources()))
	bf.res(d.Dev.Total)
	bf.flag(opt.Compress)
	if strat.Kind == core.Serial {
		bf.str(sk.serial)
	} else {
		bf.str(sk.implStatic)
	}
	sk.bitgenFull = bf.sum()

	// Partial bitstreams hang off the implementation run that produced
	// their partition — the unit of incremental invalidation.
	for gi, group := range strat.Groups {
		for _, name := range group {
			sk.partials[name] = partialKey(sk.groups[gi], name, d, opt.Compress)
		}
	}
	if strat.Kind == core.Serial {
		for _, rp := range d.RPs {
			sk.partials[rp.Name] = partialKey(sk.serial, rp.Name, d, opt.Compress)
		}
	}
	return sk
}

// The accessors below are nil-safe: a nil *stageKeys (caching disabled)
// yields empty keys, which cachedStage treats as "no probe".

func (sk *stageKeys) floorplanKey() string {
	if sk == nil {
		return ""
	}
	return sk.floorplan
}

func (sk *stageKeys) scriptsKey() string {
	if sk == nil {
		return ""
	}
	return sk.scripts
}

func (sk *stageKeys) implStaticKey() string {
	if sk == nil {
		return ""
	}
	return sk.implStatic
}

func (sk *stageKeys) serialKey() string {
	if sk == nil {
		return ""
	}
	return sk.serial
}

func (sk *stageKeys) groupKey(gi int) string {
	if sk == nil || gi < 0 || gi >= len(sk.groups) {
		return ""
	}
	return sk.groups[gi]
}

func (sk *stageKeys) bitgenFullKey() string {
	if sk == nil {
		return ""
	}
	return sk.bitgenFull
}

func (sk *stageKeys) partialKeyFor(rpName string) string {
	if sk == nil {
		return ""
	}
	return sk.partials[rpName]
}

// partialKey derives one partition's partial-bitstream key from its
// implementation run's key and the envelope the bitstream spans.
func partialKey(implKey, rpName string, d *socgen.Design, compress bool) string {
	bp := newArtifactDigest("bitgen/partial/v1")
	bp.str(implKey)
	bp.str(rpName)
	bp.str(d.Cfg.Name)
	for _, rp := range d.RPs {
		if rp.Name == rpName {
			bp.res(rp.Resources)
		}
	}
	bp.flag(compress)
	return bp.sum()
}

// stageEnvelope is the JSON body a stage artifact persists: the job's
// modelled duration plus its stage-specific payload.
type stageEnvelope struct {
	Minutes vivado.Minutes  `json:"minutes"`
	Payload json.RawMessage `json:"payload"`
}

// cachedStage wraps one job's work function with its stage-artifact
// probe/store pair. run produces the stage value and its modelled
// minutes; apply publishes the value into the run's result exactly as a
// live execution would (it is called from worker goroutines under the
// scheduler's happens-before, like the run body itself). On a probe hit
// the scheduler skips run entirely; on a miss (or with no cache/key)
// the wrapped run executes, publishes, and stores the artifact
// write-through. A cached body that fails to decode reports a miss —
// the disk tier already quarantines corrupt files, and an in-memory
// decode failure just re-runs the job.
func cachedStage[T any](sk *stageKeys, key string, run func(ctx context.Context) (T, vivado.Minutes, error), apply func(T, vivado.Minutes)) (probe func() (vivado.Minutes, bool), wrapped func(ctx context.Context) (vivado.Minutes, error)) {
	wrapped = func(ctx context.Context) (vivado.Minutes, error) {
		v, t, err := run(ctx)
		if err != nil {
			return 0, err
		}
		apply(v, t)
		if sk != nil && key != "" {
			if payload, err := json.Marshal(v); err == nil {
				body, err := json.Marshal(stageEnvelope{Minutes: t, Payload: payload})
				if err == nil {
					// Best-effort write-through: a full disk loses the
					// artifact, never the run.
					sk.cache.Store(key, body) //nolint:errcheck
				}
			}
		}
		return t, nil
	}
	if sk == nil || key == "" {
		return nil, wrapped
	}
	probe = func() (vivado.Minutes, bool) {
		body, ok := sk.cache.Lookup(key)
		if !ok {
			return 0, false
		}
		var env stageEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			return 0, false
		}
		var v T
		if err := json.Unmarshal(env.Payload, &v); err != nil {
			return 0, false
		}
		apply(v, env.Minutes)
		return env.Minutes, true
	}
	return probe, wrapped
}
