package flow

import (
	"context"
	"strings"
	"testing"

	"presp/internal/accel"
	"presp/internal/bitstream"
	"presp/internal/core"
	"presp/internal/fpga"
	"presp/internal/noc"
	"presp/internal/rtl"
	"presp/internal/socgen"
	"presp/internal/tile"
)

func soc2Design(t *testing.T) *socgen.Design {
	t.Helper()
	d, err := socgen.Elaborate(socgen.SOC2(), accel.Default())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunPRESPFullyParallel(t *testing.T) {
	d := soc2Design(t)
	res, err := RunPRESP(context.Background(), d, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	// SOC_2 is class 1.2 -> fully parallel, τ = N = 4.
	if res.Strategy.Kind != core.FullyParallel || res.Strategy.Tau != 4 {
		t.Fatalf("strategy: %s τ=%d", res.Strategy.Kind, res.Strategy.Tau)
	}
	if res.TStatic <= 0 || res.MaxOmega <= 0 {
		t.Fatal("parallel run missing pre-route or in-context times")
	}
	if res.PRWall != res.TStatic+res.MaxOmega {
		t.Fatalf("P&R wall %v != t_static %v + maxΩ %v", res.PRWall, res.TStatic, res.MaxOmega)
	}
	if res.Total != res.SynthWall+res.PRWall {
		t.Fatal("total != synth + P&R")
	}
	if len(res.Groups) != 4 {
		t.Fatalf("in-context runs: got %d want 4", len(res.Groups))
	}
	// Parallel synthesis wall time is bounded by the slowest run (plus
	// contention) — strictly less than the sum.
	var sum float64
	for _, tm := range res.SynthRuns {
		sum += float64(tm)
	}
	if float64(res.SynthWall) >= sum {
		t.Fatal("parallel synthesis did not beat sequential")
	}
	// Bitstreams: one full + one partial per partition.
	if res.FullBitstream == nil || len(res.PartialBitstreams) != 4 {
		t.Fatalf("bitstreams missing: full=%v partials=%d", res.FullBitstream != nil, len(res.PartialBitstreams))
	}
	for _, bs := range res.PartialBitstreams {
		if bs.Kind != bitstream.Partial || bs.Size() == 0 {
			t.Fatalf("bad partial bitstream %s", bs.Name)
		}
	}
}

func TestRunPRESPSerialOnSOC1(t *testing.T) {
	d, err := socgen.Elaborate(socgen.SOC1(), accel.Default())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPRESP(context.Background(), d, Options{SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Kind != core.Serial {
		t.Fatalf("SOC_1 should implement serially, chose %s", res.Strategy.Kind)
	}
	if res.TStatic != 0 || res.MaxOmega != 0 || len(res.Groups) != 0 {
		t.Fatal("serial run should have no parallel components")
	}
	if res.FullBitstream != nil {
		t.Fatal("SkipBitstreams ignored")
	}
}

func TestRunPRESPForcedStrategy(t *testing.T) {
	d := soc2Design(t)
	strat, err := core.ForceStrategy(d, core.SemiParallel, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPRESP(context.Background(), d, Options{Strategy: strat, SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Kind != core.SemiParallel || len(res.Groups) != 2 {
		t.Fatalf("forced semi-parallel not honoured: %s with %d groups", res.Strategy.Kind, len(res.Groups))
	}
}

func TestStrategyOrderingOnSOC2(t *testing.T) {
	// Class 1.2: fully-parallel < semi-parallel < serial (Table III).
	d := soc2Design(t)
	times := make(map[core.StrategyKind]float64)
	for _, kind := range []core.StrategyKind{core.Serial, core.SemiParallel, core.FullyParallel} {
		tau := 2
		strat, err := core.ForceStrategy(d, kind, tau)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunPRESP(context.Background(), d, Options{Strategy: strat, SkipBitstreams: true})
		if err != nil {
			t.Fatal(err)
		}
		times[kind] = float64(res.PRWall)
	}
	if !(times[core.FullyParallel] < times[core.SemiParallel] && times[core.SemiParallel] < times[core.Serial]) {
		t.Fatalf("class 1.2 ordering violated: %v", times)
	}
}

func TestRunMonolithic(t *testing.T) {
	d := soc2Design(t)
	mono, err := RunMonolithic(context.Background(), d, Options{SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	if mono.Strategy.Kind != core.Serial {
		t.Fatal("monolithic flow should be serial")
	}
	if mono.TStatic != 0 || len(mono.Groups) != 0 {
		t.Fatal("monolithic flow has no DFX stages")
	}
	presp, err := RunPRESP(context.Background(), d, Options{SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	// SOC_2 (class 1.2) is where PR-ESP's parallel implementation wins.
	if presp.Total >= mono.Total {
		t.Fatalf("PR-ESP (%v) should beat monolithic (%v) on class 1.2", presp.Total, mono.Total)
	}
}

func TestRunStandardDFX(t *testing.T) {
	d := soc2Design(t)
	dfx, err := RunStandardDFX(context.Background(), d, Options{SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential synthesis: the wall time is the sum of runs (up to
	// float summation order).
	var sum float64
	for _, tm := range dfx.SynthRuns {
		sum += float64(tm)
	}
	if diff := float64(dfx.SynthWall) - sum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("standard DFX synthesis should be sequential: %v vs %v", dfx.SynthWall, sum)
	}
	presp, err := RunPRESP(context.Background(), d, Options{SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	if presp.Total >= dfx.Total {
		t.Fatal("PR-ESP should beat the single-instance DFX flow on SOC_2")
	}
}

func TestBuildStaticTop(t *testing.T) {
	d := soc2Design(t)
	top := BuildStaticTop(d)
	if top.TotalCost()[fpga.LUT] != d.StaticResources[fpga.LUT] {
		t.Fatalf("static top cost %d != static resources %d",
			top.TotalCost()[fpga.LUT], d.StaticResources[fpga.LUT])
	}
	// Every reconfigurable partition appears as an auto-generated black
	// box carrying the wrapper interface.
	bbs := 0
	top.Walk(func(_ string, m *rtl.Module) {
		if m.BlackBox {
			bbs++
			if len(m.Ports) == 0 {
				t.Errorf("black box %s has no interface", m.Name)
			}
		}
	})
	if bbs != len(d.RPs) {
		t.Fatalf("black boxes: got %d want %d", bbs, len(d.RPs))
	}
}

func TestGenerateRuntimeBitstreams(t *testing.T) {
	reg := accel.Default()
	d := soc2Design(t)
	plan, err := FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// rt_1 hosts conv2d initially; stage sort and gemm too.
	alloc := map[string][]string{"rt_1": {"conv2d", "sort", "gemm"}}
	bss, err := GenerateRuntimeBitstreams(context.Background(), d, plan, alloc, reg, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bss["rt_1"]) != 3 {
		t.Fatalf("staged %d bitstreams", len(bss["rt_1"]))
	}
	// An accelerator that does not fit the partition must be rejected:
	// rt_4 hosts sort (20468 LUTs → small pblock); conv2d (36741) will
	// not fit.
	if _, err := GenerateRuntimeBitstreams(context.Background(), d, plan, map[string][]string{"rt_4": {"conv2d"}}, reg, true, 0); err == nil {
		t.Fatal("oversized accelerator staged")
	}
	// Unknown tile and unknown accelerator.
	if _, err := GenerateRuntimeBitstreams(context.Background(), d, plan, map[string][]string{"ghost": {"sort"}}, reg, true, 0); err == nil {
		t.Fatal("unknown tile accepted")
	}
	if _, err := GenerateRuntimeBitstreams(context.Background(), d, plan, map[string][]string{"rt_1": {"warp-drive"}}, reg, true, 0); err == nil {
		t.Fatal("unknown accelerator accepted")
	}
}

func TestFloorplanDesignLeavesRoomForStatic(t *testing.T) {
	d := soc2Design(t)
	plan, err := FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	free := d.Dev.CellResources().Scale(float64(plan.FreeCells))
	if !free.Covers(d.StaticResources) {
		t.Fatalf("floorplan left %s for a %s static part", free, d.StaticResources)
	}
}

func TestFlowRejectsDFXViolations(t *testing.T) {
	d := soc2Design(t)
	// Sabotage one partition with the native (non-compliant) tile
	// content: clock-modifying DVFS logic inside the partition.
	d.RPs[0].Content = tile.NativeAccelModule("bad", fpga.NewResources(20000, 20000, 0, 0))
	_, err := RunPRESP(context.Background(), d, Options{SkipBitstreams: true})
	if err == nil {
		t.Fatal("flow accepted a DFX-violating partition")
	}
	if !strings.Contains(err.Error(), "DRC") {
		t.Fatalf("expected a DRC error, got: %v", err)
	}
}

// TestFlowOnUltraScaleBoards: the same SoC topology compiles on the
// larger parts; relative fabric pressure drops, so the reserved
// fraction shrinks and t_static with it.
func TestFlowOnUltraScaleBoards(t *testing.T) {
	mk := func(board string) *socgen.Design {
		cfg := socgen.SOC2()
		cfg.Name = "SOC_2_" + board
		cfg.Board = board
		d, err := socgen.Elaborate(cfg, accel.Default())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	small, err := RunPRESP(context.Background(), mk("VC707"), Options{SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, board := range []string{"VCU118", "VCU128"} {
		res, err := RunPRESP(context.Background(), mk(board), Options{SkipBitstreams: true})
		if err != nil {
			t.Fatalf("%s: %v", board, err)
		}
		if res.Plan.RPFraction >= small.Plan.RPFraction {
			t.Errorf("%s: reserved fraction %.3f should be below the VC707's %.3f",
				board, res.Plan.RPFraction, small.Plan.RPFraction)
		}
		if res.TStatic >= small.TStatic {
			t.Errorf("%s: t_static %v should beat the congested VC707 %v", board, res.TStatic, small.TStatic)
		}
	}
}

// TestMonolithicESPSoC: a plain ESP SoC (native accelerator tiles, an
// SLM tile, no reconfigurable partitions) flows through RunPRESP as a
// monolithic compile — the base-platform behaviour PR-ESP extends.
func TestMonolithicESPSoC(t *testing.T) {
	cfg := &socgen.Config{
		Name: "esp-mono", Board: "VC707", Cols: 3, Rows: 2, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
			{Name: "slm0", Kind: tile.SLM, Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "acc0", Kind: tile.Accel, AccelName: "fft", Pos: noc.Coord{X: 1, Y: 1}},
			{Name: "acc1", Kind: tile.Accel, AccelName: "sort", Pos: noc.Coord{X: 2, Y: 1}},
		},
	}
	d, err := socgen.Elaborate(cfg, accel.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RPs) != 0 {
		t.Fatalf("monolithic SoC has %d partitions", len(d.RPs))
	}
	// Native accelerator tiles and the SLM are part of the static design.
	if len(d.StaticModules) != 6 {
		t.Fatalf("static modules: %d", len(d.StaticModules))
	}
	res, err := RunPRESP(context.Background(), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Kind != core.Serial || len(res.PartialBitstreams) != 0 {
		t.Fatal("monolithic compile produced DFX artifacts")
	}
	if res.FullBitstream == nil {
		t.Fatal("no full bitstream")
	}
	if res.Total <= 0 {
		t.Fatal("no compile time")
	}
}

// TestModelChooserAgreesWithRules: backed by the calibrated cost model,
// the exhaustive model-based chooser and the paper's O(1) rule land on
// plans within a few percent of each other on every characterization
// SoC — the rule captures the model's structure.
func TestModelChooserAgreesWithRules(t *testing.T) {
	eval := &Evaluator{}
	for _, cfg := range socgen.CharacterizationSoCs() {
		d, err := socgen.Elaborate(cfg, accel.Default())
		if err != nil {
			t.Fatal(err)
		}
		ruled, err := core.Choose(d)
		if err != nil {
			t.Fatal(err)
		}
		modeled, err := core.ChooseWithModel(d, eval, 4)
		if err != nil {
			t.Fatal(err)
		}
		tRule, err := eval.EvaluateStrategy(d, ruled)
		if err != nil {
			t.Fatal(err)
		}
		tModel, err := eval.EvaluateStrategy(d, modeled)
		if err != nil {
			t.Fatal(err)
		}
		if tModel > tRule {
			t.Errorf("%s: model-based pick (%s, %.0f) worse than the rule (%s, %.0f)",
				cfg.Name, modeled.Kind, tModel, ruled.Kind, tRule)
		}
		if tRule > tModel*1.05 {
			t.Errorf("%s: rule (%s, %.0f) more than 5%% behind the model-based optimum (%s, %.0f)",
				cfg.Name, ruled.Kind, tRule, modeled.Kind, tModel)
		}
	}
}

// TestThirdPartyNVDLAFlows: the third-party NVDLA integrates into a
// reconfigurable tile structurally — the flow floorplans, implements
// and generates a partial bitstream for it like any accelerator.
func TestThirdPartyNVDLAFlows(t *testing.T) {
	reg := accel.Default()
	if err := reg.Register(accel.NVDLA()); err != nil {
		t.Fatal(err)
	}
	cfg := &socgen.Config{
		Name: "nvdla-soc", Board: "VC707", Cols: 2, Rows: 2, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "rt_1", Kind: tile.Reconf, AccelName: "nvdla", Pos: noc.Coord{X: 1, Y: 1}},
		},
	}
	d, err := socgen.Elaborate(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPRESP(context.Background(), d, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PartialBitstreams) != 1 {
		t.Fatal("no partial bitstream for the NVDLA partition")
	}
	// A single huge partition: class 2.2, serial implementation.
	if res.Strategy.Class != core.Class22 || res.Strategy.Kind != core.Serial {
		t.Fatalf("NVDLA SoC: class %s strategy %s", res.Strategy.Class, res.Strategy.Kind)
	}
	// Its pblock must actually cover ~88k LUTs.
	pb := res.Plan.Pblocks["rt_1_rp"]
	if pb.ResourcesOn(d.Dev)[fpga.LUT] < 88000 {
		t.Fatal("NVDLA partition under-provisioned")
	}
}
