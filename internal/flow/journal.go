package flow

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"presp/internal/socgen"
	"presp/internal/vivado"
)

// JournalEntry is one JSON line of a flow journal. The first line of a
// journal is a header (Kind "flow") binding the journal to a design
// digest and flow name; every following line (Kind "job") records one
// successfully completed job. Synthesis entries embed the produced
// checkpoint and its cache key, which is what lets a resumed run
// rehydrate the checkpoint cache and skip the re-synthesis cost.
type JournalEntry struct {
	// Kind is "flow" for the header line, "job" for completions.
	Kind string `json:"kind"`
	// Design and Flow identify the run (header line only).
	Design string `json:"design,omitempty"`
	Flow   string `json:"flow,omitempty"`
	// Job, Stage, Minutes and Attempts describe one completed job.
	Job      string         `json:"job,omitempty"`
	Stage    string         `json:"stage,omitempty"`
	Minutes  vivado.Minutes `json:"minutes,omitempty"`
	Attempts int            `json:"attempts,omitempty"`
	// Skipped marks a job whose stage-artifact probe hit: its cached
	// result was reused and Run never executed (Attempts is zero).
	Skipped bool `json:"skipped,omitempty"`
	// CacheKey and Checkpoint carry a synthesis job's product for
	// resume (absent on plan/impl/bitgen jobs, whose recomputation is
	// deterministic and costs no real time in the simulated tool).
	CacheKey   string                  `json:"cache_key,omitempty"`
	Checkpoint *vivado.SynthCheckpoint `json:"checkpoint,omitempty"`
}

// Journal is an append-only record of a flow run, written as JSON lines
// so a killed process leaves at worst one truncated trailing line.
// Completions are appended from the scheduler's coordinator goroutine;
// the journal locks internally so facades can share one instance.
//
// A Journal is either being written (NewJournal) or replayed
// (LoadJournal) — the resume path loads a journal from a previous run
// and hands it to Options.Resume.
type Journal struct {
	mu      sync.Mutex
	enc     *json.Encoder
	err     error
	design  string
	flow    string
	entries []JournalEntry
}

// NewJournal returns a journal that appends every entry to w as one
// JSON line (nil keeps the record in memory only).
func NewJournal(w io.Writer) *Journal {
	j := &Journal{}
	if w != nil {
		j.enc = json.NewEncoder(w)
	}
	return j
}

// MaxJournalLine bounds a single journal line during replay. Synthesis
// entries embed whole checkpoints, and the disk-tier work makes large
// checkpoints realistic, so the cap is generous — but it must exist: an
// unbounded scanner would let one corrupt line swallow the file. A line
// over the cap surfaces bufio.ErrTooLong from LoadJournal rather than
// silently truncating the record.
const MaxJournalLine = 16 * 1024 * 1024

// LoadJournal replays a journal written by a previous run. A malformed
// trailing line — the telltale of a process killed mid-write — is
// tolerated and marks the end of the record; a journal whose very first
// line does not parse is rejected as not-a-journal. A line exceeding
// MaxJournalLine is a load error (wrapping bufio.ErrTooLong), never a
// silently short journal.
func LoadJournal(r io.Reader) (*Journal, error) {
	j := &Journal{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxJournalLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if len(j.entries) == 0 {
				return nil, fmt.Errorf("flow: not a journal: %v", err)
			}
			return j, nil // truncated tail from a killed run
		}
		if e.Kind == "flow" {
			j.design, j.flow = e.Design, e.Flow
		}
		j.entries = append(j.entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flow: reading journal: %w", err)
	}
	return j, nil
}

// Begin writes the header line binding the journal to a design digest
// and flow name.
func (j *Journal) Begin(designDigest, flowName string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.design, j.flow = designDigest, flowName
	j.append(JournalEntry{Kind: "flow", Design: designDigest, Flow: flowName})
}

// Completed records one successfully finished job.
func (j *Journal) Completed(jobID string, stage Stage, minutes vivado.Minutes, attempts int, cacheKey string, ck *vivado.SynthCheckpoint) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.append(JournalEntry{
		Kind:       "job",
		Job:        jobID,
		Stage:      stage.String(),
		Minutes:    minutes,
		Attempts:   attempts,
		CacheKey:   cacheKey,
		Checkpoint: ck,
	})
}

// Skip records one job whose stage-artifact probe hit — the cached
// result was reused at its original modelled cost without re-running.
func (j *Journal) Skip(jobID string, stage Stage, minutes vivado.Minutes) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.append(JournalEntry{
		Kind:    "job",
		Job:     jobID,
		Stage:   stage.String(),
		Minutes: minutes,
		Skipped: true,
	})
}

// append records e and streams it to the writer. Callers hold j.mu.
func (j *Journal) append(e JournalEntry) {
	j.entries = append(j.entries, e)
	if j.enc != nil {
		if err := j.enc.Encode(e); err != nil && j.err == nil {
			j.err = err
		}
	}
}

// Err returns the first write error, if any — a journal that cannot be
// written is useless for recovery, so the flow surfaces it.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// DesignDigest returns the digest from the journal header ("" before
// Begin or for an empty journal).
func (j *Journal) DesignDigest() string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.design
}

// FlowName returns the flow name from the journal header.
func (j *Journal) FlowName() string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flow
}

// CheckDesign verifies the journal was written by the same flow on the
// same design — resuming a different design from stale checkpoints
// would silently produce wrong results.
func (j *Journal) CheckDesign(designDigest, flowName string) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.design == "" {
		return fmt.Errorf("flow: journal has no header (empty or truncated at line one)")
	}
	if j.design != designDigest {
		return fmt.Errorf("flow: journal is for design %s, current design is %s", j.design, designDigest)
	}
	if j.flow != flowName {
		return fmt.Errorf("flow: journal is for the %s flow, current flow is %s", j.flow, flowName)
	}
	return nil
}

// Entries returns a copy of the journal's entries.
func (j *Journal) Entries() []JournalEntry {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]JournalEntry(nil), j.entries...)
}

// CompletedJobs returns the IDs of all journaled job completions.
func (j *Journal) CompletedJobs() map[string]bool {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	done := make(map[string]bool)
	for _, e := range j.entries {
		if e.Kind == "job" && e.Job != "" {
			done[e.Job] = true
		}
	}
	return done
}

// Restore preloads every journaled synthesis checkpoint into cache and
// returns how many entries it rehydrated. Resumed runs then hit the
// cache instead of re-paying the modelled synthesis cost; plan, impl
// and bitgen jobs recompute deterministically at zero real cost.
func (j *Journal) Restore(cache *vivado.CheckpointCache) int {
	if j == nil || cache == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.entries {
		if e.Kind == "job" && e.CacheKey != "" && e.Checkpoint != nil {
			cache.Preload(e.CacheKey, e.Checkpoint)
			n++
		}
	}
	return n
}

// DesignDigest fingerprints the parts of a design a journal's cached
// results depend on: configuration name, device identity and capacity,
// the static module set and every partition's name, content and
// resource envelope.
func DesignDigest(d *socgen.Design) string {
	h := fnv.New64a()
	var buf [8]byte
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0xff}) // separator: ("ab","c") != ("a","bc")
	}
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	ws(d.Cfg.Name)
	ws(d.Dev.Name)
	for _, n := range d.Dev.Total {
		wu(uint64(n))
	}
	for _, m := range d.StaticModules {
		ws(m.Name)
		for _, n := range m.TotalCost() {
			wu(uint64(n))
		}
	}
	for _, rp := range d.RPs {
		ws(rp.Name)
		if rp.Content != nil {
			ws(rp.Content.Name)
		}
		for _, n := range rp.Resources {
			wu(uint64(n))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
