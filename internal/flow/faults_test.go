// CAD fault-injection suite: seeded fault plans against the flow engine
// must produce byte-identical results for any worker count, retries
// must recover transient faults without disturbing the cost model, and
// the collect policy must keep independent partitions alive.
package flow

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"presp/internal/core"
	"presp/internal/faultinject"
	"presp/internal/leakcheck"
	"presp/internal/socgen"
)

func parsePlan(t *testing.T, s string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.ParsePlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFlowFaultDeterminism: under a seeded mixed plan (persistent
// deterministic faults plus rate faults) with retries and the collect
// policy, the full Result — wall times, bitstream CRCs, and the
// per-job error list — is byte-identical across worker counts and
// repeats.
func TestFlowFaultDeterminism(t *testing.T) {
	plans := []string{
		"synth@rt_1_rp:count=-1",
		"seed=11,impl=0.6",
		"seed=5,synth=0.4,bitgen=0.5,drc@rt_2_rp:count=1",
	}
	for _, planStr := range plans {
		var baseline string
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			for repeat := 0; repeat < 2; repeat++ {
				res, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), Options{
					Compress:      true,
					Workers:       workers,
					FaultPlan:     parsePlan(t, planStr),
					MaxJobRetries: 1,
					ErrorPolicy:   Collect,
				})
				if err != nil {
					t.Fatalf("plan %q workers=%d: collect run errored: %v", planStr, workers, err)
				}
				sig := resultSignature(res)
				if baseline == "" {
					baseline = sig
					continue
				}
				if sig != baseline {
					t.Fatalf("plan %q workers=%d repeat=%d: result diverged under faults:\n--- got ---\n%s--- baseline ---\n%s",
						planStr, workers, repeat, sig, baseline)
				}
			}
		}
	}
	leakcheck.VerifyNone(t)
}

// TestFlowRetryRecoversTransientFault: a fault that fires exactly once
// per site is absorbed by one retry — the run succeeds and the
// published cost-model times are identical to a fault-free run (virtual
// backoff lands in SimMinutes, never in the wall times).
func TestFlowRetryRecoversTransientFault(t *testing.T) {
	ref, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC1()), Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC1()), Options{
		Compress:      true,
		FaultPlan:     parsePlan(t, "synth:count=1,impl:count=1"),
		MaxJobRetries: 1,
	})
	if err != nil {
		t.Fatalf("retry did not recover single-shot faults: %v", err)
	}
	if res.Jobs.Retries == 0 {
		t.Fatal("no retries recorded although every synth and impl job faulted once")
	}
	if got, want := resultSignature(res), resultSignature(ref); got != want {
		t.Fatalf("retried run differs from fault-free run:\n--- faulted+retried ---\n%s--- reference ---\n%s", got, want)
	}
	if res.Jobs.SimMinutes <= ref.Jobs.SimMinutes {
		t.Fatalf("SimMinutes %v under faults not greater than fault-free %v (retry attempts and backoff must be accounted)",
			res.Jobs.SimMinutes, ref.Jobs.SimMinutes)
	}
}

// TestFlowFailFastSurfacesInjectedFault: the default policy returns the
// injected fault (recognizable via faultinject.As) and no result.
func TestFlowFailFastSurfacesInjectedFault(t *testing.T) {
	res, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), Options{
		Compress:  true,
		FaultPlan: parsePlan(t, "synth@rt_1_rp:count=-1"),
	})
	if err == nil {
		t.Fatal("persistent synth fault did not fail the run")
	}
	if res != nil {
		t.Fatal("fail-fast returned a result alongside the error")
	}
	if _, ok := faultinject.As(err); !ok {
		t.Fatalf("error does not unwrap to the injected fault: %v", err)
	}
	var je JobError
	if !errors.As(err, &je) || je.ID != "synth/rt_1_rp" {
		t.Fatalf("error does not identify the failed job: %v", err)
	}
}

// TestFlowCollectKeepsIndependentPartitions: with one partition's
// synthesis permanently wedged, the collect policy still implements and
// generates bitstreams for the others, reporting the losses in
// JobErrors with Partial set.
func TestFlowCollectKeepsIndependentPartitions(t *testing.T) {
	d := elaborate(t, socgen.SOC2())
	if len(d.RPs) < 2 {
		t.Fatalf("SOC_2 has %d partitions; test needs at least 2", len(d.RPs))
	}
	victim := d.RPs[0].Name
	strat, err := core.ForceStrategy(d, core.FullyParallel, len(d.RPs))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPRESP(context.Background(), d, Options{
		Compress:    true,
		Strategy:    strat,
		FaultPlan:   parsePlan(t, "synth@"+victim+":count=-1"),
		ErrorPolicy: Collect,
	})
	if err != nil {
		t.Fatalf("collect run errored: %v", err)
	}
	if !res.Partial {
		t.Fatal("result not marked Partial despite job failures")
	}
	if len(res.JobErrors) == 0 || res.JobErrors[0].ID != "synth/"+victim {
		t.Fatalf("JobErrors = %v, want synth/%s first", res.JobErrors, victim)
	}
	if _, ok := res.SynthRuns[victim]; ok {
		t.Fatalf("faulted partition %s reports a synthesis time", victim)
	}
	// The surviving partitions must have synthesized and produced their
	// partial bitstreams; the victim's (and the full-device image, which
	// joins every implementation) must be absent.
	for _, rp := range d.RPs[1:] {
		if _, ok := res.SynthRuns[rp.Name]; !ok {
			t.Fatalf("independent partition %s did not synthesize", rp.Name)
		}
	}
	if len(res.PartialBitstreams) != len(d.RPs)-1 {
		t.Fatalf("%d partial bitstreams survived, want %d", len(res.PartialBitstreams), len(d.RPs)-1)
	}
	for _, bs := range res.PartialBitstreams {
		if bs.Name == d.Cfg.Name+"."+victim+".pbs" {
			t.Fatalf("faulted partition %s produced a bitstream", victim)
		}
	}
	if res.FullBitstream != nil {
		t.Fatal("full bitstream generated although one implementation was cancelled")
	}
	if res.Jobs.Cancelled == 0 {
		t.Fatal("no jobs recorded as cancelled downstream of the fault")
	}
}

// TestFlowJobDeadline: a virtual per-job deadline fails oversized jobs
// deterministically — same outcome for every worker count, no retries
// wasted on a deterministic overrun.
func TestFlowJobDeadline(t *testing.T) {
	var baseline string
	for _, workers := range []int{1, runtime.NumCPU()} {
		res, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), Options{
			Compress:      true,
			Workers:       workers,
			JobDeadline:   1, // one modelled minute: every synth/impl job overruns
			MaxJobRetries: 3,
			ErrorPolicy:   Collect,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial || len(res.JobErrors) == 0 {
			t.Fatal("deadline overruns did not surface as job errors")
		}
		for _, je := range res.JobErrors {
			if !errors.Is(je.Err, ErrJobDeadline) {
				t.Fatalf("job %s failed with %v, want ErrJobDeadline", je.ID, je.Err)
			}
			if je.Attempts != 1 {
				t.Fatalf("job %s retried %d times on a deterministic deadline overrun", je.ID, je.Attempts-1)
			}
		}
		sig := resultSignature(res)
		if baseline == "" {
			baseline = sig
		} else if sig != baseline {
			t.Fatalf("deadline outcome differs across worker counts:\n%s\nvs\n%s", sig, baseline)
		}
	}
}

// TestMonolithicFaults: the monolithic baseline shares the injection
// discipline — its single synthesis is a fault site like any other.
func TestMonolithicFaults(t *testing.T) {
	d := elaborate(t, socgen.SOC1())
	_, err := RunMonolithic(context.Background(), d, Options{
		FaultPlan: parsePlan(t, "synth@full:count=-1"),
	})
	if err == nil {
		t.Fatal("persistent monolithic synth fault did not fail the run")
	}
	if _, ok := faultinject.As(err); !ok {
		t.Fatalf("error does not unwrap to the injected fault: %v", err)
	}
	res, err := RunMonolithic(context.Background(), elaborate(t, socgen.SOC1()), Options{
		FaultPlan:     parsePlan(t, "synth@full:count=1,bitgen:count=1"),
		MaxJobRetries: 1,
	})
	if err != nil {
		t.Fatalf("retry did not recover monolithic faults: %v", err)
	}
	if res.Jobs.Retries < 2 {
		t.Fatalf("recorded %d retries, want >= 2", res.Jobs.Retries)
	}
}
