package flow

import (
	"context"
	"fmt"
	"sort"

	"presp/internal/accel"
	"presp/internal/bitstream"
	"presp/internal/floorplan"
	"presp/internal/fpga"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// GenerateRuntimeBitstreams produces one partial bitstream per
// (reconfigurable tile, accelerator) pair of a runtime allocation — the
// set the reconfiguration manager swaps among at run time (Table VI).
// The returned map is tile name -> accelerator name -> bitstream.
//
// Every accelerator is implemented in-context against the tile's pblock,
// so the flow checks it fits the partition the floorplanner sized for
// the tile's largest module. Tiles and accelerators are validated in
// sorted order — error selection and bitstream naming never depend on
// map iteration order — and the generation jobs fan out on the shared
// worker-pool scheduler, bounded by workers (<= 0 selects NumCPU) and
// by ctx: cancellation stops generation at the next job boundary and
// drains the pool. The outputs are identical for every worker count —
// the fault-injection determinism suite runs the same seeded plan
// against bitstream sets generated at different widths to prove it.
func GenerateRuntimeBitstreams(ctx context.Context, d *socgen.Design, plan *floorplan.Plan, alloc map[string][]string, reg *accel.Registry, compress bool, workers int) (map[string]map[string]*bitstream.Bitstream, error) {
	tool, err := vivado.New(d.Dev, nil)
	if err != nil {
		return nil, err
	}
	tiles := make([]string, 0, len(alloc))
	for tileName := range alloc {
		tiles = append(tiles, tileName)
	}
	sort.Strings(tiles)

	// Validate the whole allocation up front, in deterministic order.
	type task struct {
		tile, acc, name string
		pb              fpga.Pblock
		res             fpga.Resources
	}
	var tasks []task
	for _, tileName := range tiles {
		rp, err := d.FindRP(tileName)
		if err != nil {
			return nil, err
		}
		pb, ok := plan.Pblocks[rp.Name]
		if !ok {
			return nil, fmt.Errorf("flow: no pblock for partition %s", rp.Name)
		}
		for _, accName := range alloc[tileName] {
			desc, err := reg.Lookup(accName)
			if err != nil {
				return nil, fmt.Errorf("flow: tile %s: %w", tileName, err)
			}
			if !pb.ResourcesOn(d.Dev).Covers(desc.Resources) {
				return nil, fmt.Errorf("flow: accelerator %s (%s) does not fit tile %s's partition",
					accName, desc.Resources, tileName)
			}
			tasks = append(tasks, task{
				tile: tileName,
				acc:  accName,
				name: fmt.Sprintf("%s.%s.%s.pbs", d.Cfg.Name, tileName, accName),
				pb:   pb,
				res:  desc.Resources,
			})
		}
	}

	// Fan the independent generation jobs out on the worker pool.
	g := NewGraph()
	generated := make([]*bitstream.Bitstream, len(tasks))
	for i, tk := range tasks {
		i, tk := i, tk
		id := fmt.Sprintf("bitgen/%03d/%s.%s", i, tk.tile, tk.acc)
		must(g.Add(id, StageBitgen, nil, func(ctx context.Context) (vivado.Minutes, error) {
			bs, t, err := tool.WritePartialBitstream(ctx, tk.name, tk.pb, tk.res, compress)
			if err != nil {
				return 0, err
			}
			generated[i] = bs
			return t, nil
		}))
	}
	if _, errs, err := g.ExecuteCtx(ctx, ExecOptions{Workers: workers}); err != nil {
		return nil, err
	} else if len(errs) > 0 {
		return nil, errs[0]
	}

	out := make(map[string]map[string]*bitstream.Bitstream, len(alloc))
	for i, tk := range tasks {
		perTile, ok := out[tk.tile]
		if !ok {
			perTile = make(map[string]*bitstream.Bitstream)
			out[tk.tile] = perTile
		}
		perTile[tk.acc] = generated[i]
	}
	return out, nil
}
