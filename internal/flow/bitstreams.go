package flow

import (
	"fmt"

	"presp/internal/accel"
	"presp/internal/bitstream"
	"presp/internal/floorplan"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// GenerateRuntimeBitstreams produces one partial bitstream per
// (reconfigurable tile, accelerator) pair of a runtime allocation — the
// set the reconfiguration manager swaps among at run time (Table VI).
// The returned map is tile name -> accelerator name -> bitstream.
//
// Every accelerator is implemented in-context against the tile's pblock,
// so the flow checks it fits the partition the floorplanner sized for
// the tile's largest module.
func GenerateRuntimeBitstreams(d *socgen.Design, plan *floorplan.Plan, alloc map[string][]string, reg *accel.Registry, compress bool) (map[string]map[string]*bitstream.Bitstream, error) {
	tool, err := vivado.New(d.Dev, nil)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]*bitstream.Bitstream, len(alloc))
	for tileName, accs := range alloc {
		rp, err := d.FindRP(tileName)
		if err != nil {
			return nil, err
		}
		pb, ok := plan.Pblocks[rp.Name]
		if !ok {
			return nil, fmt.Errorf("flow: no pblock for partition %s", rp.Name)
		}
		perTile := make(map[string]*bitstream.Bitstream, len(accs))
		for _, accName := range accs {
			desc, err := reg.Lookup(accName)
			if err != nil {
				return nil, fmt.Errorf("flow: tile %s: %w", tileName, err)
			}
			if !pb.ResourcesOn(d.Dev).Covers(desc.Resources) {
				return nil, fmt.Errorf("flow: accelerator %s (%s) does not fit tile %s's partition",
					accName, desc.Resources, tileName)
			}
			name := fmt.Sprintf("%s.%s.%s.pbs", d.Cfg.Name, tileName, accName)
			bs, _, err := tool.WritePartialBitstream(name, pb, desc.Resources, compress)
			if err != nil {
				return nil, err
			}
			perTile[accName] = bs
		}
		out[tileName] = perTile
	}
	return out, nil
}
