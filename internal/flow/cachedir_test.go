package flow

import (
	"context"
	"testing"

	"presp/internal/obs"
	"presp/internal/socgen"
)

// TestRunPRESPCacheDirWarmStart: two independent runs — separate caches,
// as two processes would have — sharing one -cache-dir: the first pays
// every synthesis, the second warm-starts entirely from the disk tier
// with identical results and visible cache_disk_* traffic.
func TestRunPRESPCacheDirWarmStart(t *testing.T) {
	dir := t.TempDir()
	cold, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC1()),
		Options{SkipBitstreams: true, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// SOC1 carries content-identical accelerator instances, so a cold run
	// still hits within itself — what matters is that it paid at least
	// one real synthesis and accounted for every job.
	if cold.Jobs.CacheMisses == 0 ||
		cold.Jobs.CacheHits+cold.Jobs.CacheMisses != cold.Jobs.SynthJobs {
		t.Fatalf("cold run cache traffic = %d hits / %d misses over %d synth jobs",
			cold.Jobs.CacheHits, cold.Jobs.CacheMisses, cold.Jobs.SynthJobs)
	}

	// Second "process": a fresh private cache, same directory.
	o := obs.New()
	warm, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC1()),
		Options{SkipBitstreams: true, CacheDir: dir, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Jobs.CacheHits != warm.Jobs.SynthJobs || warm.Jobs.CacheMisses != 0 {
		t.Fatalf("warm run cache traffic = %d hits / %d misses, want %d/0",
			warm.Jobs.CacheHits, warm.Jobs.CacheMisses, warm.Jobs.SynthJobs)
	}
	if warm.SynthWall != cold.SynthWall || warm.Total != cold.Total {
		t.Fatalf("disk-served run diverged: cold %v/%v, warm %v/%v",
			cold.SynthWall, cold.Total, warm.SynthWall, warm.Total)
	}
	snap := o.Metrics().Snapshot()
	if snap.Counters["cache_disk_hits"] < 1 {
		t.Fatalf("cache_disk_hits = %d, want >= 1", snap.Counters["cache_disk_hits"])
	}
	if snap.Counters["cache_disk_misses"] != 0 {
		t.Fatalf("cache_disk_misses = %d, want 0 on a warm start", snap.Counters["cache_disk_misses"])
	}
}
