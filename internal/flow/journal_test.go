package flow

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"presp/internal/socgen"
	"presp/internal/vivado"
)

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Begin("digest123", "presp")
	ck := &vivado.SynthCheckpoint{Name: "acc", OoC: true, Runtime: 42}
	j.Completed("synth/rt_1", StageSynth, 42, 1, "cachekey1", ck)
	j.Completed("floorplan", StagePlan, 0, 2, "", nil)
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DesignDigest() != "digest123" || loaded.FlowName() != "presp" {
		t.Fatalf("header did not round-trip: %q/%q", loaded.DesignDigest(), loaded.FlowName())
	}
	done := loaded.CompletedJobs()
	if !done["synth/rt_1"] || !done["floorplan"] || len(done) != 2 {
		t.Fatalf("CompletedJobs = %v", done)
	}
	entries := loaded.Entries()
	if len(entries) != 3 || entries[1].Checkpoint == nil || entries[1].Checkpoint.Runtime != 42 {
		t.Fatalf("entries did not round-trip: %+v", entries)
	}
	if entries[2].Attempts != 2 {
		t.Fatalf("attempts did not round-trip: %+v", entries[2])
	}

	cache := vivado.NewCheckpointCache()
	if n := loaded.Restore(cache); n != 1 {
		t.Fatalf("Restore rehydrated %d entries, want 1", n)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries after restore", cache.Len())
	}
}

func TestJournalTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Begin("d", "presp")
	j.Completed("synth/a", StageSynth, 1, 1, "k", &vivado.SynthCheckpoint{Name: "a"})
	j.Completed("synth/b", StageSynth, 1, 1, "k2", &vivado.SynthCheckpoint{Name: "b"})
	// Chop the last line in half, as a kill mid-write would.
	full := buf.String()
	cut := full[:len(full)-len("\n")-10]

	loaded, err := LoadJournal(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated journal rejected: %v", err)
	}
	done := loaded.CompletedJobs()
	if !done["synth/a"] || done["synth/b"] {
		t.Fatalf("truncated journal replayed wrong jobs: %v", done)
	}
}

// TestJournalLineCapBoundary pins LoadJournal's behaviour at the
// MaxJournalLine scanner cap: an entry just under it loads completely,
// and one over it surfaces bufio.ErrTooLong as a load error — never a
// silently short journal that would make Resume skip nothing and
// re-run work a previous process already journaled.
func TestJournalLineCapBoundary(t *testing.T) {
	write := func(nameLen int) *bytes.Buffer {
		var buf bytes.Buffer
		j := NewJournal(&buf)
		j.Begin("d", "presp")
		ck := &vivado.SynthCheckpoint{Name: strings.Repeat("x", nameLen), Runtime: 1}
		j.Completed("synth/huge", StageSynth, 1, 1, "k", ck)
		if err := j.Err(); err != nil {
			t.Fatal(err)
		}
		return &buf
	}

	under := write(MaxJournalLine - 4*1024)
	loaded, err := LoadJournal(under)
	if err != nil {
		t.Fatalf("near-cap journal rejected: %v", err)
	}
	entries := loaded.Entries()
	if len(entries) != 2 || entries[1].Checkpoint == nil ||
		len(entries[1].Checkpoint.Name) != MaxJournalLine-4*1024 {
		t.Fatal("near-cap checkpoint did not round-trip intact")
	}

	over := write(MaxJournalLine + 4*1024)
	if _, err := LoadJournal(over); !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("over-cap journal error = %v, want bufio.ErrTooLong", err)
	}
}

func TestJournalRejectsGarbage(t *testing.T) {
	if _, err := LoadJournal(strings.NewReader("this is not json\n")); err == nil {
		t.Fatal("garbage accepted as a journal")
	}
}

func TestJournalCheckDesign(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Begin("digA", "presp")
	if err := j.CheckDesign("digA", "presp"); err != nil {
		t.Fatal(err)
	}
	if err := j.CheckDesign("digB", "presp"); err == nil {
		t.Fatal("design mismatch accepted")
	}
	if err := j.CheckDesign("digA", "monolithic"); err == nil {
		t.Fatal("flow mismatch accepted")
	}
	if err := NewJournal(nil).CheckDesign("digA", "presp"); err == nil {
		t.Fatal("headerless journal accepted")
	}
}

// failingWriter errors after n successful writes.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJournalSurfacesWriteErrors(t *testing.T) {
	j := NewJournal(&failingWriter{n: 1})
	j.Begin("d", "presp")
	if err := j.Err(); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	j.Completed("synth/a", StageSynth, 1, 1, "", nil)
	if err := j.Err(); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestDesignDigestDistinguishesDesigns(t *testing.T) {
	d1 := elaborate(t, socgen.SOC1())
	d2 := elaborate(t, socgen.SOC2())
	if DesignDigest(d1) != DesignDigest(elaborate(t, socgen.SOC1())) {
		t.Fatal("digest is not deterministic for the same design")
	}
	if DesignDigest(d1) == DesignDigest(d2) {
		t.Fatal("different designs share a digest")
	}
}
