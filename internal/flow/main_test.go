package flow

import (
	"testing"

	"presp/internal/leakcheck"
)

// TestMain fails the package's test run if any test — the cancellation
// and fault-injection suites in particular — leaks a scheduler worker
// goroutine.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
