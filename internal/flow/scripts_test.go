package flow

import (
	"context"
	"strings"
	"testing"

	"presp/internal/core"
)

func TestScriptsFullyParallel(t *testing.T) {
	d := soc2Design(t)
	res, err := RunPRESP(context.Background(), d, Options{SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scripts
	if s == nil {
		t.Fatal("no scripts generated")
	}
	// One synthesis script per module + the static part.
	if len(s.Synthesis) != len(d.RPs)+1 {
		t.Fatalf("synthesis scripts: %d", len(s.Synthesis))
	}
	if !strings.Contains(s.Synthesis["static"], "synth_design -top SOC_2_static") {
		t.Fatalf("static synthesis script wrong:\n%s", s.Synthesis["static"])
	}
	for _, rp := range d.RPs {
		script, ok := s.Synthesis[rp.Name]
		if !ok {
			t.Fatalf("no synthesis script for %s", rp.Name)
		}
		if !strings.Contains(script, "-mode out_of_context") {
			t.Errorf("%s not synthesized out of context", rp.Name)
		}
	}
	// Floorplan constraints mark every partition reconfigurable.
	for _, rp := range d.RPs {
		if !strings.Contains(s.FloorplanXDC, "create_pblock pblock_"+rp.Name) {
			t.Errorf("no pblock for %s", rp.Name)
		}
		if !strings.Contains(s.FloorplanXDC, "HD.RECONFIGURABLE true [get_cells "+rp.Name+"]") {
			t.Errorf("%s not marked reconfigurable", rp.Name)
		}
	}
	// Fully parallel: a static pre-route plus one run per partition.
	if _, ok := s.Implementation["static"]; !ok {
		t.Fatal("no static pre-route script")
	}
	runs := 0
	for name := range s.Implementation {
		if strings.HasPrefix(name, "run_") {
			runs++
		}
	}
	if runs != res.Strategy.Tau {
		t.Fatalf("implementation runs: %d, want τ=%d", runs, res.Strategy.Tau)
	}
	if !strings.Contains(s.Implementation["static"], "lock_design -level routing") {
		t.Fatal("static pre-route does not lock routing")
	}
	if !strings.Contains(s.Makefile, "bitstreams:") {
		t.Fatal("Makefile lacks the single make target")
	}
	if !strings.Contains(s.Makefile, "parallel vivado") {
		t.Fatal("Makefile does not parallelize tool instances")
	}
}

func TestScriptsSerial(t *testing.T) {
	d := soc2Design(t)
	strat, err := core.ForceStrategy(d, core.Serial, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPRESP(context.Background(), d, Options{Strategy: strat, SkipBitstreams: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Scripts
	if _, ok := s.Implementation["serial"]; !ok {
		t.Fatal("no serial implementation script")
	}
	if len(s.Implementation) != 1 {
		t.Fatalf("serial strategy should have one run, has %d", len(s.Implementation))
	}
	// The serial run still writes every partial bitstream.
	for _, rp := range d.RPs {
		if !strings.Contains(s.Implementation["serial"], "write_bitstream -cell "+rp.Name) {
			t.Errorf("serial run does not write %s's partial bitstream", rp.Name)
		}
	}
}

func TestGenerateScriptsValidation(t *testing.T) {
	d := soc2Design(t)
	if _, err := GenerateScripts(nil, nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	plan, err := FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateScripts(d, &core.Strategy{Kind: core.StrategyKind(42)}, plan); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
