package flow

import (
	"context"
	"fmt"

	"presp/internal/core"
	"presp/internal/faultinject"
	"presp/internal/fpga"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// RunMonolithic executes the monolithic baseline of Table V: the whole
// SoC — accelerators included — is synthesized and implemented flat in a
// single tool instance, with no reconfigurable partitions, no pblock
// constraints and no partial bitstreams. This is the "equivalent
// monolithic design" the paper compares compile times against.
//
// The run goes through the same job scheduler as the partitioned flows
// — a three-job chain (synth → impl → bitgen), so Result.Jobs accounts
// for it uniformly. It is bounded by ctx (and Options.Timeout), with
// the same retry, fault-injection, journal and error-policy semantics
// as the partitioned flows.
func RunMonolithic(ctx context.Context, d *socgen.Design, opt Options) (*Result, error) {
	ctx, cancel := flowCtx(ctx, opt)
	defer cancel()
	tool, err := setupRun(d, opt, "monolithic")
	if err != nil {
		return nil, err
	}
	res := &Result{Design: d, SynthRuns: make(map[string]vivado.Minutes)}
	total := d.StaticResources.Add(d.ReconfigurableResources())

	g := NewGraph()
	// Single-instance synthesis of the full hierarchy. The time is
	// computed from the aggregate size directly, so the fault gate the
	// tool's Synthesize would apply is invoked explicitly.
	must(g.Add("synth/full", StageSynth, nil, func(ctx context.Context) (vivado.Minutes, error) {
		if err := tool.CheckFault(ctx, faultinject.OpCADSynth, "full", d.Cfg.Name); err != nil {
			return 0, fmt.Errorf("flow: monolithic synthesis: %w", err)
		}
		t := tool.Model().SynthTime(float64(total[fpga.LUT])/1000.0, false)
		res.SynthWall = t
		res.SynthRuns["full"] = t
		return t, nil
	}))
	// Flat implementation: no partitions (nRP = 0), no reserved area.
	must(g.Add("impl/flat", StageImpl, []string{"synth/full"}, func(ctx context.Context) (vivado.Minutes, error) {
		sr, err := tool.ImplementSerial(ctx, d.Cfg.Name+"_mono", total, 0, 0)
		if err != nil {
			return 0, err
		}
		res.PRWall = sr.Runtime
		return sr.Runtime, nil
	}))
	if !opt.SkipBitstreams {
		must(g.Add("bitgen/full", StageBitgen, []string{"impl/flat"}, func(ctx context.Context) (vivado.Minutes, error) {
			full, t, err := tool.WriteFullBitstream(ctx, d.Cfg.Name+"_mono.bit", total, opt.Compress)
			if err != nil {
				return 0, err
			}
			res.FullBitstream = full
			res.BitgenWall = t
			return t, nil
		}))
	}
	if err := execGraph(ctx, g, tool, opt, res, newJournalBook()); err != nil {
		return nil, err
	}

	res.Strategy = &core.Strategy{Kind: core.Serial, Tau: 1}
	if m, err := core.ComputeMetrics(d); err == nil {
		res.Strategy.Metrics = m
	}
	res.Total = res.SynthWall + res.PRWall
	return res, nil
}
