package flow

import (
	"presp/internal/core"
	"presp/internal/fpga"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// RunMonolithic executes the monolithic baseline of Table V: the whole
// SoC — accelerators included — is synthesized and implemented flat in a
// single tool instance, with no reconfigurable partitions, no pblock
// constraints and no partial bitstreams. This is the "equivalent
// monolithic design" the paper compares compile times against.
func RunMonolithic(d *socgen.Design, opt Options) (*Result, error) {
	tool, err := vivado.New(d.Dev, opt.Model)
	if err != nil {
		return nil, err
	}
	res := &Result{Design: d, SynthRuns: make(map[string]vivado.Minutes)}

	// Single-instance synthesis of the full hierarchy.
	total := d.StaticResources.Add(d.ReconfigurableResources())
	res.SynthWall = tool.Model().SynthTime(float64(total[fpga.LUT])/1000.0, false)
	res.SynthRuns["full"] = res.SynthWall

	// Flat implementation: no partitions (nRP = 0), no reserved area.
	sr, err := tool.ImplementSerial(d.Cfg.Name+"_mono", total, 0, 0)
	if err != nil {
		return nil, err
	}
	res.PRWall = sr.Runtime
	res.Strategy = &core.Strategy{Kind: core.Serial, Tau: 1}
	if m, err := core.ComputeMetrics(d); err == nil {
		res.Strategy.Metrics = m
	}

	if !opt.SkipBitstreams {
		full, t, err := tool.WriteFullBitstream(d.Cfg.Name+"_mono.bit", total, opt.Compress)
		if err != nil {
			return nil, err
		}
		res.FullBitstream = full
		res.BitgenWall = t
	}
	res.Total = res.SynthWall + res.PRWall
	return res, nil
}
