package flow

import (
	"presp/internal/core"
	"presp/internal/fpga"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// RunMonolithic executes the monolithic baseline of Table V: the whole
// SoC — accelerators included — is synthesized and implemented flat in a
// single tool instance, with no reconfigurable partitions, no pblock
// constraints and no partial bitstreams. This is the "equivalent
// monolithic design" the paper compares compile times against.
//
// The run goes through the same job scheduler as the partitioned flows
// — a three-job chain (synth → impl → bitgen), so Result.Jobs accounts
// for it uniformly.
func RunMonolithic(d *socgen.Design, opt Options) (*Result, error) {
	tool, err := vivado.New(d.Dev, opt.Model)
	if err != nil {
		return nil, err
	}
	tool.SetCache(opt.Cache)
	res := &Result{Design: d, SynthRuns: make(map[string]vivado.Minutes)}
	total := d.StaticResources.Add(d.ReconfigurableResources())

	g := NewGraph()
	// Single-instance synthesis of the full hierarchy.
	must(g.Add("synth/full", StageSynth, nil, func() (vivado.Minutes, error) {
		t := tool.Model().SynthTime(float64(total[fpga.LUT])/1000.0, false)
		res.SynthWall = t
		res.SynthRuns["full"] = t
		return t, nil
	}))
	// Flat implementation: no partitions (nRP = 0), no reserved area.
	must(g.Add("impl/flat", StageImpl, []string{"synth/full"}, func() (vivado.Minutes, error) {
		sr, err := tool.ImplementSerial(d.Cfg.Name+"_mono", total, 0, 0)
		if err != nil {
			return 0, err
		}
		res.PRWall = sr.Runtime
		return sr.Runtime, nil
	}))
	if !opt.SkipBitstreams {
		must(g.Add("bitgen/full", StageBitgen, []string{"impl/flat"}, func() (vivado.Minutes, error) {
			full, t, err := tool.WriteFullBitstream(d.Cfg.Name+"_mono.bit", total, opt.Compress)
			if err != nil {
				return 0, err
			}
			res.FullBitstream = full
			res.BitgenWall = t
			return t, nil
		}))
	}
	res.Jobs, err = g.Execute(opt.Workers)
	res.Jobs.CacheHits, res.Jobs.CacheMisses = cacheCounts(tool)
	if err != nil {
		return nil, err
	}

	res.Strategy = &core.Strategy{Kind: core.Serial, Tau: 1}
	if m, err := core.ComputeMetrics(d); err == nil {
		res.Strategy.Metrics = m
	}
	res.Total = res.SynthWall + res.PRWall
	return res, nil
}
