// Cancellation and resume suite: a flow killed at any point must leak
// no goroutines, leave the checkpoint cache and journal consistent, and
// resume to a byte-identical result.
package flow

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"presp/internal/accel"
	"presp/internal/leakcheck"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// TestSchedulerRandomCancelPoints: across random DAGs, worker counts
// and cancellation points, the scheduler never violates dependency
// order, never runs a job twice, always accounts every job as executed
// or cancelled, and always drains its pool.
func TestSchedulerRandomCancelPoints(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		g, rec, _, _ := randomDAG(rng, n, 0.1)
		k := rng.Intn(n + 1) // cancel after the k-th completion

		ctx, cancel := context.WithCancel(context.Background())
		done := 0
		stats, _, err := g.ExecuteCtx(ctx, ExecOptions{
			Workers: 1 + rng.Intn(8),
			OnJobDone: func(*Job, JobOutcome) {
				done++
				if done == k {
					cancel()
				}
			},
		})
		cancel()

		if rec.violation != "" {
			t.Fatalf("seed=%d: %s", seed, rec.violation)
		}
		for id, count := range rec.runs {
			if count > 1 {
				t.Fatalf("seed=%d: job %s ran %d times", seed, id, count)
			}
		}
		if got := stats.Executed() + stats.Cancelled; got != n {
			t.Fatalf("seed=%d: executed %d + cancelled %d != %d jobs", seed, stats.Executed(), stats.Cancelled, n)
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("seed=%d: unexpected execution error: %v", seed, err)
		}
	}
	leakcheck.VerifyNone(t)
}

// cancellingWriter counts journal lines and fires cancel once the
// configured number has been written — a deterministic stand-in for
// kill -9 at an arbitrary point of the run.
type cancellingWriter struct {
	buf    bytes.Buffer
	cancel context.CancelFunc
	after  int
	writes int
}

func (w *cancellingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes == w.after {
		w.cancel()
	}
	return w.buf.Write(p)
}

// TestFlowKillAndResume: interrupt a PR-ESP run after every possible
// number of journaled completions, then resume from the journal with a
// fresh cache. The resumed run must complete, hit the cache at least
// once per journaled synthesis, and produce a byte-identical result.
func TestFlowKillAndResume(t *testing.T) {
	cfg := socgen.SOC1()
	base := Options{Compress: true, Workers: 4}

	ref, err := RunPRESP(context.Background(), elaborate(t, cfg), base)
	if err != nil {
		t.Fatal(err)
	}
	refSig := resultSignature(ref)
	totalJobs := ref.Jobs.Executed()

	for k := 1; k <= totalJobs+1; k++ {
		ctx, cancel := context.WithCancel(context.Background())
		w := &cancellingWriter{cancel: cancel, after: 1 + k} // +1: header line
		opt := base
		opt.Journal = NewJournal(w)
		_, runErr := RunPRESP(ctx, elaborate(t, cfg), opt)
		cancel()
		if runErr == nil {
			// Cancellation landed after the last job: the run finished.
			continue
		}
		if !errors.Is(runErr, context.Canceled) {
			t.Fatalf("k=%d: interrupted run failed with %v, want context.Canceled", k, runErr)
		}

		journal, err := LoadJournal(bytes.NewReader(w.buf.Bytes()))
		if err != nil {
			t.Fatalf("k=%d: journal unreadable after kill: %v", k, err)
		}
		synthJournaled := 0
		for _, e := range journal.Entries() {
			if e.Checkpoint != nil {
				synthJournaled++
			}
		}

		opt = base
		opt.Resume = journal
		opt.Cache = vivado.NewCheckpointCache()
		res, err := RunPRESP(context.Background(), elaborate(t, cfg), opt)
		if err != nil {
			t.Fatalf("k=%d: resumed run failed: %v", k, err)
		}
		if sig := resultSignature(res); sig != refSig {
			t.Fatalf("k=%d: resumed result differs from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s", k, sig, refSig)
		}
		if res.Jobs.CacheHits < synthJournaled {
			t.Fatalf("k=%d: %d cache hits on resume, want >= %d journaled syntheses",
				k, res.Jobs.CacheHits, synthJournaled)
		}
	}
	leakcheck.VerifyNone(t)
}

// TestFlowCancelLeavesCacheConsistent: a shared cache that lived
// through a cancelled run still serves a clean run to the reference
// result.
func TestFlowCancelLeavesCacheConsistent(t *testing.T) {
	cfg := socgen.SOC2()
	ref, err := RunPRESP(context.Background(), elaborate(t, cfg), Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	refSig := resultSignature(ref)

	cache := vivado.NewCheckpointCache()
	for k := 1; k <= 4; k++ {
		ctx, cancel := context.WithCancel(context.Background())
		// Cancel mid-run by journaling to a writer that pulls the plug.
		w := &cancellingWriter{cancel: cancel, after: 1 + k}
		_, runErr := RunPRESP(ctx, elaborate(t, cfg), Options{
			Compress: true, Cache: cache, Journal: NewJournal(w), Workers: runtime.NumCPU(),
		})
		cancel()
		if runErr == nil {
			continue
		}
		res, err := RunPRESP(context.Background(), elaborate(t, cfg), Options{Compress: true, Cache: cache})
		if err != nil {
			t.Fatalf("k=%d: clean run after cancellation failed: %v", k, err)
		}
		if sig := resultSignature(res); sig != refSig {
			t.Fatalf("k=%d: cache corrupted by cancellation: result differs", k)
		}
	}
	leakcheck.VerifyNone(t)
}

// TestFlowTimeout: an expired whole-flow timeout surfaces as
// context.DeadlineExceeded before (or during) execution, for every
// entry point.
func TestFlowTimeout(t *testing.T) {
	runs := []struct {
		name string
		run  func(ctx context.Context, d *socgen.Design, opt Options) (*Result, error)
	}{
		{"presp", RunPRESP},
		{"standard-dfx", RunStandardDFX},
		{"monolithic", RunMonolithic},
	}
	for _, r := range runs {
		_, err := r.run(context.Background(), elaborate(t, socgen.SOC1()), Options{Timeout: 1})
		if err == nil {
			t.Fatalf("%s: 1ns timeout did not abort the flow", r.name)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: timeout error %v does not wrap DeadlineExceeded", r.name, err)
		}
	}
	leakcheck.VerifyNone(t)
}

// TestFlowPreCancelledContext: an already-cancelled context stops the
// run before any job.
func TestFlowPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunPRESP(ctx, elaborate(t, socgen.SOC1()), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestResumeRejectsWrongDesign: a journal from one design must not
// seed a different design's run.
func TestResumeRejectsWrongDesign(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	opt := Options{Journal: j, Compress: true}
	if _, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC1()), opt); err != nil {
		t.Fatal(err)
	}
	journal, err := LoadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), Options{Resume: journal}); err == nil {
		t.Fatal("journal for SOC_1 accepted by a SOC_2 run")
	}
	// Same design, wrong flow.
	if _, err := RunStandardDFX(context.Background(), elaborate(t, socgen.SOC1()), Options{Resume: journal}); err == nil {
		t.Fatal("presp journal accepted by the standard-DFX flow")
	}
}

// TestGenerateRuntimeBitstreamsCancel: the runtime bitstream generator
// honours its context too.
func TestGenerateRuntimeBitstreamsCancel(t *testing.T) {
	d := elaborate(t, socgen.SOC2())
	plan, err := FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := map[string][]string{}
	for _, rp := range d.RPs {
		alloc[rp.Name] = []string{"mac"}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateRuntimeBitstreams(ctx, d, plan, alloc, accel.Default(), true, 2); err == nil {
		t.Fatal("cancelled context did not abort bitstream generation")
	}
	leakcheck.VerifyNone(t)
}

// TestNormalizeWorkers covers the centralized validation shared by the
// flow, the scheduler and the presp-flow CLI.
func TestNormalizeWorkers(t *testing.T) {
	if _, err := NormalizeWorkers(-1); err == nil {
		t.Fatal("negative worker count accepted")
	}
	n, err := NormalizeWorkers(0)
	if err != nil || n < 1 {
		t.Fatalf("NormalizeWorkers(0) = %d, %v", n, err)
	}
	n, err = NormalizeWorkers(7)
	if err != nil || n != 7 {
		t.Fatalf("NormalizeWorkers(7) = %d, %v", n, err)
	}
	if _, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC1()), Options{Workers: -3}); err == nil {
		t.Fatal("flow accepted a negative worker count")
	}
}
