// Package flow implements the PR-ESP FPGA flow of Fig. 1 — parse the SoC
// configuration, split static from reconfigurable sources, synthesize
// everything in parallel (out-of-context), floorplan the partitions,
// choose the size-driven P&R parallelism strategy and orchestrate the
// implementation runs through bitstream generation — plus the baseline
// it is evaluated against: Xilinx's standard DFX flow in a single tool
// instance ("monolithic" in Table V).
//
// Every flow run is executed as a dependency-aware job graph (see
// scheduler.go) on a bounded pool of worker goroutines: synthesis jobs
// fan out first, floorplanning joins them, the per-partition
// implementation runs fan out again and bitstream generation closes the
// graph. Reported times stay the analytic values of the cost model —
// the pool parallelizes the *simulation*, not the modelled clock — and
// results are byte-identical for every worker count.
//
// Runs are fault-tolerant, cancellable and resumable: a context (plus
// Options.Timeout) stops the graph at the next job boundary, failed
// jobs are retried with capped virtual-time backoff, seeded CAD faults
// can be injected from a faultinject plan, every completion is
// journaled, and a journal from a killed run resumes via the
// synthesis-checkpoint cache. See DESIGN.md §11 for the failure
// semantics.
package flow

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"presp/internal/bitstream"
	"presp/internal/core"
	"presp/internal/faultinject"
	"presp/internal/floorplan"
	"presp/internal/fpga"
	"presp/internal/obs"
	"presp/internal/report"
	"presp/internal/rtl"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// ErrorPolicy selects what a flow run does with job failures.
type ErrorPolicy int

const (
	// FailFast (the default) stops dispatching new jobs after the first
	// failure and returns it as the run error.
	FailFast ErrorPolicy = iota
	// Collect keeps independent subgraphs running: partitions that do
	// not depend on the failed job still implement, and the Result
	// carries every failure in JobErrors with Partial set.
	Collect
)

// String names the policy.
func (p ErrorPolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case Collect:
		return "collect"
	default:
		return fmt.Sprintf("ErrorPolicy(%d)", int(p))
	}
}

// Options tunes a flow run.
type Options struct {
	// Model overrides the CAD cost model (nil = calibrated default).
	Model *vivado.CostModel
	// Strategy forces a strategy instead of the size-driven choice.
	// Nil lets core.Choose decide.
	Strategy *core.Strategy
	// SemiTau is the semi-parallel degree when the chooser selects
	// semi-parallel (0 = core.DefaultSemiTau).
	SemiTau int
	// Compress enables bitstream compression (the paper's deployment
	// configuration).
	Compress bool
	// SkipBitstreams stops after P&R, for timing-only studies.
	SkipBitstreams bool
	// Workers bounds the job-scheduler worker pool (0 = GOMAXPROCS,
	// negative is rejected; see NormalizeWorkers). The knob trades real
	// CPU parallelism only; reported wall times are identical for every
	// value.
	Workers int
	// Cache is a shared synthesis-checkpoint cache; runs with a warm
	// cache skip re-synthesizing unchanged modules (nil = no cache,
	// except that Resume or CacheDir creates a private one).
	Cache *vivado.CheckpointCache
	// CacheDir, when set, backs the checkpoint cache with a persistent
	// disk tier rooted at the directory (created if absent): inserts
	// write through, memory misses read through, and LRU evictions
	// demote to disk, so a later run — or a restarted daemon — against
	// the same directory warm-starts instead of re-synthesizing. When
	// Cache is nil a private cache is created to carry the tier; when
	// the caller's Cache already has a disk store attached, CacheDir is
	// ignored in favour of it.
	CacheDir string
	// StageCache is a shared stage-artifact cache enabling incremental
	// re-flow: floorplan solutions, implementation results and bitstream
	// images are content-addressed (see stagekeys.go), so a re-run — or
	// a run of an edited design — skips every job whose inputs are
	// unchanged and re-executes exactly the invalidated chain. Nil (the
	// default) disables stage caching; runs under a FaultPlan ignore it
	// (a skip would bypass the injected faults). When the checkpoint
	// cache has a disk tier and the stage cache has none, the tier is
	// shared so incremental hits survive restarts. Skips preserve the
	// determinism contract: a warm run's results are byte-identical to
	// the cold run that populated the cache.
	StageCache *vivado.StageCache

	// Timeout bounds the whole flow in real wall-clock time (0 = none).
	// On expiry the run drains in-flight jobs and returns a
	// context.DeadlineExceeded-wrapped error.
	Timeout time.Duration
	// JobDeadline fails any single job whose *modelled* runtime exceeds
	// it (0 = none). Virtual time keeps the check deterministic for
	// every worker count.
	JobDeadline vivado.Minutes
	// MaxJobRetries re-runs a failed job up to this many extra times
	// with doubling, capped virtual-time backoff (default 0 = no
	// retries).
	MaxJobRetries int
	// RetryBackoff overrides the first retry's virtual-time penalty
	// (0 = DefaultRetryBackoff).
	RetryBackoff vivado.Minutes
	// ErrorPolicy selects fail-fast (default) or collect semantics for
	// job failures.
	ErrorPolicy ErrorPolicy
	// FaultPlan injects seeded CAD faults (synth/floorplan/impl/
	// bitgen/drc ops; see faultinject.ParsePlan) through the tool's
	// fault hook. Injection is order-independent, so results under
	// faults stay byte-identical for every worker count.
	FaultPlan *faultinject.Plan
	// Journal, when set, records every completed job (JSON lines); a
	// later run can resume from it.
	Journal *Journal
	// Resume replays a journal from an interrupted run: journaled
	// synthesis checkpoints are preloaded into the cache, so completed
	// work is skipped. The journal must match the design and flow.
	Resume *Journal
	// Heartbeat, when set, is called from the scheduler coordinator
	// after every completed job with the cumulative count of completed
	// jobs and the run's virtual-time position (sum of modelled job
	// minutes). Service layers use it as a liveness signal: progress is
	// measured in virtual minutes, staleness in real ones, so a stall
	// watchdog can tell "slow but moving" from "wedged". Calls are
	// serialized; the callback must not block.
	Heartbeat func(completed int, virtual vivado.Minutes)
	// Observer records metrics and trace spans for the run: scheduler
	// job lifecycle, worker occupancy, per-stage runtime histograms,
	// cost-model op timings and checkpoint-cache traffic. Nil (the
	// default) disables all observation at no cost, and observation
	// never feeds back into results — traced runs stay byte-identical
	// to untraced ones at any worker count.
	Observer *obs.Observer
}

// GroupRun records one in-context P&R run (one Ω of the paper's model).
type GroupRun struct {
	// Partitions lists the RP names implemented in the run.
	Partitions []string
	// Runtime is the run's modelled duration.
	Runtime vivado.Minutes
}

// Result is the product of a full flow run.
type Result struct {
	// Design is the elaborated SoC.
	Design *socgen.Design
	// Strategy is the implementation strategy used.
	Strategy *core.Strategy
	// Plan is the floorplan (nil for the standard-DFX baseline, which
	// also floorplans but whose plan is identical; kept for inspection).
	Plan *floorplan.Plan
	// SynthWall is the wall-clock synthesis time (parallel OoC for
	// PR-ESP; sequential for the baseline).
	SynthWall vivado.Minutes
	// SynthRuns records per-module synthesis times.
	SynthRuns map[string]vivado.Minutes
	// TStatic is the static-only pre-route time (zero for serial).
	TStatic vivado.Minutes
	// Groups records the in-context runs (empty for serial).
	Groups []GroupRun
	// MaxOmega is the longest in-context run after host contention.
	MaxOmega vivado.Minutes
	// PRWall is the wall-clock P&R time: TStatic + MaxOmega for the
	// parallel strategies, the single-instance run for serial.
	PRWall vivado.Minutes
	// BitgenWall is the bitstream generation time (parallelized with τ).
	BitgenWall vivado.Minutes
	// Total is SynthWall + PRWall (the paper's T_tot excludes bitgen,
	// which Tables III-V fold into P&R; we keep it separate and report
	// both).
	Total vivado.Minutes
	// FullBitstream and PartialBitstreams are the generated images.
	FullBitstream     *bitstream.Bitstream
	PartialBitstreams []*bitstream.Bitstream
	// Scripts are the auto-generated CAD scripts documenting the run.
	Scripts *Scripts
	// Partial is set under the Collect error policy when some jobs
	// failed: the result carries whatever independent subgraphs
	// produced, and JobErrors lists what did not.
	Partial bool
	// JobErrors lists the job failures of a Partial run, sorted in
	// graph-insertion order (the order a sequential run would have hit
	// them).
	JobErrors []JobError
	// Jobs reports the scheduler execution: per-stage job counts,
	// cancellations, retries and checkpoint-cache hits/misses.
	Jobs JobStats
}

// flowMode selects between the PR-ESP flow and the standard-DFX
// baseline, which share the job graph but aggregate differently.
type flowMode int

const (
	modePRESP flowMode = iota
	modeStandardDFX
)

// name labels the mode in journals, matching the presp-flow CLI.
func (m flowMode) name() string {
	if m == modeStandardDFX {
		return "standard-dfx"
	}
	return "presp"
}

// RunPRESP executes the PR-ESP flow on design d, bounded by ctx (and
// Options.Timeout): cancellation stops the run at the next job
// boundary, drains the worker pool and leaves the checkpoint cache and
// journal consistent for a later resume. Designs without
// reconfigurable tiles (plain ESP SoCs with native accelerator tiles)
// fall through to the monolithic implementation — the flow degrades
// gracefully to the base ESP behaviour.
func RunPRESP(ctx context.Context, d *socgen.Design, opt Options) (*Result, error) {
	if len(d.RPs) == 0 {
		return RunMonolithic(ctx, d, opt)
	}
	return runPartitioned(ctx, d, opt, modePRESP)
}

// RunStandardDFX executes the baseline, bounded by ctx: the vendor DFX
// flow in a single tool instance — sequential synthesis of the static
// part and every reconfigurable module, then a serial whole-design
// implementation.
func RunStandardDFX(ctx context.Context, d *socgen.Design, opt Options) (*Result, error) {
	return runPartitioned(ctx, d, opt, modeStandardDFX)
}

// FlowNames lists the runnable flow names RunFlow accepts, in a stable
// order: the PR-ESP flow, the vendor standard-DFX baseline and the
// monolithic (plain ESP) baseline.
func FlowNames() []string {
	return []string{"presp", "standard-dfx", "monolithic"}
}

// RunFlow dispatches a flow run by name — the journal/CLI naming shared
// by presp-flow and the flow service. Unknown names are rejected before
// any work starts.
func RunFlow(ctx context.Context, flowName string, d *socgen.Design, opt Options) (*Result, error) {
	switch flowName {
	case "", "presp":
		return RunPRESP(ctx, d, opt)
	case "standard-dfx":
		return RunStandardDFX(ctx, d, opt)
	case "monolithic":
		return RunMonolithic(ctx, d, opt)
	default:
		return nil, fmt.Errorf("flow: unknown flow %q (want one of %v)", flowName, FlowNames())
	}
}

// chooseStrategy resolves the implementation strategy up front (it
// depends only on the elaborated design), so the whole job graph can be
// built before execution starts.
func chooseStrategy(d *socgen.Design, opt Options, mode flowMode) (*core.Strategy, error) {
	if mode == modeStandardDFX {
		return core.ForceStrategy(d, core.Serial, 1)
	}
	if opt.Strategy != nil {
		return opt.Strategy, nil
	}
	s, err := core.Choose(d)
	if err != nil {
		return nil, err
	}
	if s.Kind == core.SemiParallel && opt.SemiTau > 1 && opt.SemiTau < len(d.RPs) {
		s, err = core.ForceStrategy(d, core.SemiParallel, opt.SemiTau)
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// flowCtx applies the whole-flow timeout on top of the caller's
// context. The returned cancel func must always be called.
func flowCtx(ctx context.Context, opt Options) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		return context.WithTimeout(ctx, opt.Timeout)
	}
	return context.WithCancel(ctx)
}

// setupRun prepares the tool for one flow execution: fault injection
// from the plan, the (possibly resume-private) checkpoint cache,
// journal replay and the new journal's header.
func setupRun(d *socgen.Design, opt Options, flowName string) (*vivado.Tool, error) {
	tool, err := vivado.New(d.Dev, opt.Model)
	if err != nil {
		return nil, err
	}
	if opt.FaultPlan != nil {
		inj, err := faultinject.NewStable(*opt.FaultPlan)
		if err != nil {
			return nil, err
		}
		tool.SetFaultHook(inj.Check)
	}
	cache := opt.Cache
	if cache == nil && (opt.Resume != nil || opt.CacheDir != "") {
		// Resume rehydrates journaled checkpoints through the cache, and
		// the disk tier needs a cache to sit under, so a private one
		// serves when the caller brought none.
		cache = vivado.NewCheckpointCache()
	}
	if opt.CacheDir != "" && cache.Disk() == nil {
		store, err := vivado.OpenDiskStore(opt.CacheDir)
		if err != nil {
			return nil, err
		}
		store.SetObserver(opt.Observer)
		cache.SetDiskStore(store)
	}
	if opt.StageCache != nil && opt.StageCache.Disk() == nil && cache != nil && cache.Disk() != nil {
		// Share the checkpoint tier's disk store: artifact entries use
		// their own file extension, so the two caches never collide, and
		// incremental hits survive restarts alongside the checkpoints.
		opt.StageCache.SetDiskStore(cache.Disk())
	}
	tool.SetCache(cache)
	tool.SetObserver(opt.Observer)
	digest := DesignDigest(d)
	if opt.Resume != nil {
		if err := opt.Resume.CheckDesign(digest, flowName); err != nil {
			return nil, err
		}
		opt.Resume.Restore(cache)
	}
	opt.Journal.Begin(digest, flowName)
	return tool, nil
}

// coordinatorTID is the trace lane for coordinator-side events
// (journal writes), kept clear of the worker lanes 0..workers-1.
const coordinatorTID = 1 << 20

// journalBook captures each synthesis job's cache key and checkpoint so
// the completion journal can embed them for resume. Synthesis jobs
// write from worker goroutines; the journal callback reads from the
// coordinator.
type journalBook struct {
	mu sync.Mutex
	m  map[string]journalPayload
}

type journalPayload struct {
	key string
	ck  *vivado.SynthCheckpoint
}

func newJournalBook() *journalBook {
	return &journalBook{m: make(map[string]journalPayload)}
}

func (b *journalBook) put(id, key string, ck *vivado.SynthCheckpoint) {
	b.mu.Lock()
	b.m[id] = journalPayload{key: key, ck: ck}
	b.mu.Unlock()
}

func (b *journalBook) get(id string) journalPayload {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m[id]
}

// execGraph runs the built graph under the options' retry, journal and
// error policy, filling res.Jobs, res.Partial and res.JobErrors. It
// returns the run-fatal error: execution-level failures (cancellation,
// bad graph), journal write errors, or — under fail-fast — the first
// job failure.
func execGraph(ctx context.Context, g *Graph, tool *vivado.Tool, opt Options, res *Result, book *journalBook) error {
	execOpt := ExecOptions{
		Workers:     opt.Workers,
		MaxRetries:  opt.MaxJobRetries,
		Backoff:     opt.RetryBackoff,
		JobDeadline: opt.JobDeadline,
		FailFast:    opt.ErrorPolicy == FailFast,
		Observer:    opt.Observer,
	}
	reg := opt.Observer.Metrics()
	if opt.Journal != nil || opt.Heartbeat != nil {
		journalWrites := reg.Counter("flow_journal_writes_total")
		tr := opt.Observer.Tracer()
		if tr != nil {
			tr.SetThreadName(coordinatorTID, "coordinator")
		}
		// OnJobDone runs on the coordinator, serially, so the heartbeat
		// accumulators need no extra synchronization.
		completed := 0
		var virtual vivado.Minutes
		execOpt.OnJobDone = func(j *Job, out JobOutcome) {
			if out.Err != nil {
				return
			}
			completed++
			virtual += out.Minutes
			if opt.Journal != nil {
				if out.Skipped {
					opt.Journal.Skip(j.ID, j.Stage, out.Minutes)
				} else {
					p := book.get(j.ID)
					opt.Journal.Completed(j.ID, j.Stage, out.Minutes, out.Attempts, p.key, p.ck)
				}
				journalWrites.Inc()
				if tr != nil {
					tr.Instant("journal", "journal/"+j.ID, coordinatorTID, nil)
				}
			}
			if opt.Heartbeat != nil {
				opt.Heartbeat(completed, virtual)
			}
		}
	}
	stats, jobErrs, execErr := g.ExecuteCtx(ctx, execOpt)
	res.Jobs = stats
	res.Jobs.CacheHits, res.Jobs.CacheMisses = cacheCounts(tool)
	if c := tool.Cache(); c != nil {
		reg.Gauge("vivado_cache_evictions").Set(float64(c.Evictions()))
	}
	if execErr != nil {
		return execErr
	}
	if err := opt.Journal.Err(); err != nil {
		return fmt.Errorf("flow: journal write failed: %w", err)
	}
	if len(jobErrs) > 0 {
		res.JobErrors = jobErrs
		if opt.ErrorPolicy != Collect {
			return jobErrs[0]
		}
		res.Partial = true
	}
	return nil
}

// runPartitioned builds and executes the partitioned-design job graph:
//
//	synth/static ─┐                        ┌─ impl/group_i ─┬─ bitgen/<rp ∈ group_i>
//	synth/<rp>  ──┼─ floorplan ─ scripts ──┼─ ...           ├─ bitgen/full
//	...         ──┘                        └─ impl/serial  ─┘
//
// Partial bitstreams depend only on the implementation run that covers
// their partition, so under the Collect policy a failed group does not
// block the others' bitstreams.
func runPartitioned(ctx context.Context, d *socgen.Design, opt Options, mode flowMode) (*Result, error) {
	ctx, cancel := flowCtx(ctx, opt)
	defer cancel()
	tool, err := setupRun(d, opt, mode.name())
	if err != nil {
		return nil, err
	}
	res := &Result{Design: d, SynthRuns: make(map[string]vivado.Minutes)}
	res.Strategy, err = chooseStrategy(d, opt, mode)
	if err != nil {
		return nil, err
	}

	// Stage-artifact keys for incremental re-flow: every post-synthesis
	// job gets a content address derived from its inputs, so an
	// unchanged job skips via its cached artifact. Nil when no stage
	// cache is configured (or the run is un-keyable; see buildStageKeys).
	sk := buildStageKeys(d, tool, res.Strategy, opt, mode)

	g := NewGraph()
	book := newJournalBook()
	var mu sync.Mutex // guards rpCks and SynthRuns across parallel synth jobs

	// --- Parse & split, then OoC synthesis (Fig 1): one job per
	// module, all independent. ---
	var staticRes fpga.Resources
	for _, m := range d.StaticModules {
		staticRes = staticRes.Add(m.TotalCost())
	}
	staticMod := BuildStaticTop(d)
	var staticCk *vivado.SynthCheckpoint
	rpCks := make(map[string]*vivado.SynthCheckpoint, len(d.RPs))
	synthIDs := []string{"synth/static"}
	must(g.Add("synth/static", StageSynth, nil, func(ctx context.Context) (vivado.Minutes, error) {
		ck, err := tool.Synthesize(ctx, staticMod, false, "static")
		if err != nil {
			return 0, fmt.Errorf("flow: static synthesis: %w", err)
		}
		if got := ck.Resources[fpga.LUT]; got != staticRes[fpga.LUT] {
			return 0, fmt.Errorf("flow: static split lost logic: top has %d LUTs, tiles sum to %d",
				got, staticRes[fpga.LUT])
		}
		mu.Lock()
		staticCk = ck
		res.SynthRuns["static"] = ck.Runtime
		mu.Unlock()
		if opt.Journal != nil {
			book.put("synth/static", tool.CheckpointKey(staticMod, false), ck)
		}
		return ck.Runtime, nil
	}))
	for _, rp := range d.RPs {
		rp := rp
		id := "synth/" + rp.Name
		synthIDs = append(synthIDs, id)
		must(g.Add(id, StageSynth, nil, func(ctx context.Context) (vivado.Minutes, error) {
			if rp.Content == nil {
				return 0, fmt.Errorf("flow: partition %s has no initial content to synthesize", rp.Name)
			}
			ck, err := tool.Synthesize(ctx, rp.Content, true, rp.Name)
			if err != nil {
				return 0, fmt.Errorf("flow: OoC synthesis of %s: %w", rp.Name, err)
			}
			mu.Lock()
			rpCks[rp.Name] = ck
			res.SynthRuns[rp.Name] = ck.Runtime
			mu.Unlock()
			if opt.Journal != nil {
				book.put(id, tool.CheckpointKey(rp.Content, true), ck)
			}
			return ck.Runtime, nil
		}))
	}

	// --- Floorplanning (FLORA-adapted), plus the DFX design rule
	// checks the PR-ESP flow enforces. It consumes the elaborated
	// resource envelopes and the static split — not the OoC checkpoints
	// — so it joins only the static synthesis; each partition's
	// synthesis joins at the implementation run that consumes its
	// checkpoint. One wedged partition therefore cannot cancel the
	// whole plan under the Collect policy. ---
	fpProbe, fpRun := cachedStage(sk, sk.floorplanKey(),
		func(ctx context.Context) (*floorplan.Plan, vivado.Minutes, error) {
			if err := tool.CheckFault(ctx, faultinject.OpCADFloorplan, d.Cfg.Name); err != nil {
				return nil, 0, err
			}
			plan, err := FloorplanDesign(d, tool.Model())
			if err != nil {
				return nil, 0, err
			}
			if mode == modePRESP {
				for _, rp := range d.RPs {
					pb, ok := plan.Pblocks[rp.Name]
					if !ok {
						return nil, 0, fmt.Errorf("flow: floorplan lost partition %s", rp.Name)
					}
					if err := tool.CheckDFX(ctx, rp.Content, rp.Resources, pb); err != nil {
						return nil, 0, fmt.Errorf("flow: partition %s: %w", rp.Name, err)
					}
				}
			}
			return plan, 0, nil
		},
		func(plan *floorplan.Plan, _ vivado.Minutes) { res.Plan = plan })
	must(g.AddCached("floorplan", StagePlan, []string{"synth/static"}, fpProbe, fpRun))

	// --- Script generation (documents every decision made so far). ---
	implGate := "floorplan"
	if mode == modePRESP {
		implGate = "scripts"
		scProbe, scRun := cachedStage(sk, sk.scriptsKey(),
			func(_ context.Context) (*Scripts, vivado.Minutes, error) {
				s, err := GenerateScripts(d, res.Strategy, res.Plan)
				if err != nil {
					return nil, 0, err
				}
				return s, 0, nil
			},
			func(s *Scripts, _ vivado.Minutes) { res.Scripts = s })
		must(g.AddCached("scripts", StagePlan, []string{"floorplan"}, scProbe, scRun))
	}

	// --- Orchestrated P&R per the chosen strategy. ---
	var implIDs []string
	implFor := make(map[string]string, len(d.RPs)) // partition -> its impl job
	var rs *vivado.RoutedStatic
	ctxResults := make([]*vivado.ContextResult, len(res.Strategy.Groups))
	switch res.Strategy.Kind {
	case core.Serial:
		deps := append(append([]string(nil), synthIDs...), implGate)
		implIDs = []string{"impl/serial"}
		for _, rp := range d.RPs {
			implFor[rp.Name] = "impl/serial"
		}
		seProbe, seRun := cachedStage(sk, sk.serialKey(),
			func(ctx context.Context) (*vivado.SerialResult, vivado.Minutes, error) {
				total := d.StaticResources.Add(d.ReconfigurableResources())
				sr, err := tool.ImplementSerial(ctx, d.Cfg.Name, total, len(d.RPs), res.Plan.RPFraction)
				if err != nil {
					return nil, 0, err
				}
				return sr, sr.Runtime, nil
			},
			func(sr *vivado.SerialResult, _ vivado.Minutes) { res.PRWall = sr.Runtime })
		must(g.AddCached("impl/serial", StageImpl, deps, seProbe, seRun))
	case core.SemiParallel, core.FullyParallel:
		stProbe, stRun := cachedStage(sk, sk.implStaticKey(),
			func(ctx context.Context) (*vivado.RoutedStatic, vivado.Minutes, error) {
				r, err := tool.PreRouteStatic(ctx, d.Cfg.Name, staticCk, res.Plan.Pblocks, d.ReconfigurableResources())
				if err != nil {
					return nil, 0, err
				}
				return r, r.Runtime, nil
			},
			func(r *vivado.RoutedStatic, _ vivado.Minutes) {
				// A skipped pre-route must still anchor the group runs that
				// miss: rs is the decoded artifact, bit-for-bit the routed
				// static a live run would have produced.
				rs = r
				res.TStatic = r.Runtime
			})
		must(g.AddCached("impl/static", StageImpl, []string{"synth/static", implGate}, stProbe, stRun))
		for gi, group := range res.Strategy.Groups {
			gi, group := gi, group
			id := fmt.Sprintf("impl/group_%03d", gi)
			implIDs = append(implIDs, id)
			deps := []string{"impl/static"}
			for _, name := range group {
				deps = append(deps, "synth/"+name)
				implFor[name] = id
			}
			grProbe, grRun := cachedStage(sk, sk.groupKey(gi),
				func(ctx context.Context) (*vivado.ContextResult, vivado.Minutes, error) {
					// Snapshot the group's checkpoints: other synthesis jobs
					// may still be writing rpCks concurrently.
					cks := make(map[string]*vivado.SynthCheckpoint, len(group))
					mu.Lock()
					for _, name := range group {
						cks[name] = rpCks[name]
					}
					mu.Unlock()
					cr, err := tool.ImplementInContext(ctx, rs, group, cks)
					if err != nil {
						return nil, 0, err
					}
					return cr, cr.Runtime, nil
				},
				func(cr *vivado.ContextResult, _ vivado.Minutes) { ctxResults[gi] = cr })
			must(g.AddCached(id, StageImpl, deps, grProbe, grRun))
		}
	default:
		return nil, fmt.Errorf("flow: unknown strategy %v", res.Strategy.Kind)
	}

	// --- Bitstream generation: one full-device job joining all of P&R,
	// plus one partial per partition depending only on the run that
	// implemented it. ---
	var fullT vivado.Minutes
	partials := make([]*bitstream.Bitstream, len(d.RPs))
	partialT := make([]vivado.Minutes, len(d.RPs))
	if !opt.SkipBitstreams {
		bfProbe, bfRun := cachedStage(sk, sk.bitgenFullKey(),
			func(ctx context.Context) (*bitstream.Bitstream, vivado.Minutes, error) {
				total := d.StaticResources.Add(d.ReconfigurableResources())
				full, t, err := tool.WriteFullBitstream(ctx, d.Cfg.Name+".bit", total, opt.Compress)
				if err != nil {
					return nil, 0, err
				}
				return full, t, nil
			},
			func(full *bitstream.Bitstream, t vivado.Minutes) {
				res.FullBitstream = full
				fullT = t
			})
		must(g.AddCached("bitgen/full", StageBitgen, implIDs, bfProbe, bfRun))
		for i, rp := range d.RPs {
			i, rp := i, rp
			deps := implIDs
			if id, ok := implFor[rp.Name]; ok {
				deps = []string{id}
			}
			bpProbe, bpRun := cachedStage(sk, sk.partialKeyFor(rp.Name),
				func(ctx context.Context) (*bitstream.Bitstream, vivado.Minutes, error) {
					pb, ok := res.Plan.Pblocks[rp.Name]
					if !ok {
						return nil, 0, fmt.Errorf("flow: no pblock for partition %s", rp.Name)
					}
					name := fmt.Sprintf("%s.%s.pbs", d.Cfg.Name, rp.Name)
					bs, t, err := tool.WritePartialBitstream(ctx, name, pb, rp.Resources, opt.Compress)
					if err != nil {
						return nil, 0, err
					}
					return bs, t, nil
				},
				func(bs *bitstream.Bitstream, t vivado.Minutes) {
					partials[i] = bs
					partialT[i] = t
				})
			must(g.AddCached("bitgen/"+rp.Name, StageBitgen, deps, bpProbe, bpRun))
		}
	}

	if err := execGraph(ctx, g, tool, opt, res, book); err != nil {
		return nil, err
	}

	// --- Wall-time aggregation: the analytic model of the paper,
	// computed in deterministic order from the recorded job times. A
	// Partial result aggregates whatever completed — failed groups are
	// simply absent. ---
	switch mode {
	case modePRESP:
		// All syntheses run in parallel, one tool instance each.
		cont := tool.Model().Contention(1 + len(d.RPs))
		var maxSynth vivado.Minutes
		for _, t := range res.SynthRuns {
			if t > maxSynth {
				maxSynth = t
			}
		}
		res.SynthWall = vivado.Minutes(float64(maxSynth) * cont)
	case modeStandardDFX:
		// Sequential synthesis in one instance: times add up (in sorted
		// run order, so the float sum is reproducible).
		for _, n := range report.SortedKeys(res.SynthRuns) {
			res.SynthWall += res.SynthRuns[n]
		}
	}
	if res.Strategy.Kind != core.Serial {
		cont := tool.Model().Contention(res.Strategy.Tau)
		for _, cr := range ctxResults {
			if cr == nil {
				continue // group failed or was cancelled (Collect policy)
			}
			run := GroupRun{Partitions: cr.Group, Runtime: vivado.Minutes(float64(cr.Runtime) * cont)}
			res.Groups = append(res.Groups, run)
			if run.Runtime > res.MaxOmega {
				res.MaxOmega = run.Runtime
			}
		}
		res.PRWall = res.TStatic + res.MaxOmega
	}
	if !opt.SkipBitstreams {
		var maxPartial vivado.Minutes
		for _, t := range partialT {
			if t > maxPartial {
				maxPartial = t
			}
		}
		for _, bs := range partials {
			if bs != nil {
				res.PartialBitstreams = append(res.PartialBitstreams, bs)
			}
		}
		sort.Slice(res.PartialBitstreams, func(i, j int) bool {
			return res.PartialBitstreams[i].Name < res.PartialBitstreams[j].Name
		})
		// Partial bitstream writes run in parallel with each other.
		res.BitgenWall = fullT + maxPartial
	}
	res.Total = res.SynthWall + res.PRWall
	return res, nil
}

// cacheCounts converts a tool's cache counters for JobStats.
func cacheCounts(tool *vivado.Tool) (hits, misses int) {
	h, m := tool.CacheStats()
	return int(h), int(m)
}

// must panics on graph-construction errors: job IDs and dependencies are
// generated from validated designs, so a failure is a programming bug.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// BuildStaticTop assembles the static-part hierarchy: the static tile
// modules plus an auto-generated black-box wrapper standing in for every
// reconfigurable partition (the synthesis-time replacement Section IV
// describes).
func BuildStaticTop(d *socgen.Design) *rtl.Module {
	top := &rtl.Module{Name: d.Cfg.Name + "_static"}
	top.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	top.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	for _, m := range d.StaticModules {
		top.AddChild(m.Name, m)
	}
	for _, rp := range d.RPs {
		var bb *rtl.Module
		if rp.Content != nil {
			bb = rp.Content.CloneAsBlackBox()
		} else {
			bb = &rtl.Module{Name: rp.Name + "_bb", BlackBox: true}
		}
		top.AddChild(rp.Name, bb)
	}
	return top
}

// FloorplanDesign floorplans all partitions of d with the model's slack.
func FloorplanDesign(d *socgen.Design, model *vivado.CostModel) (*floorplan.Plan, error) {
	if model == nil {
		model = vivado.DefaultCostModel()
	}
	reqs := make([]floorplan.Request, 0, len(d.RPs))
	for _, rp := range d.RPs {
		reqs = append(reqs, floorplan.Request{Name: rp.Name, Need: rp.Resources})
	}
	return floorplan.Floorplan(d.Dev, reqs, floorplan.Options{
		Slack:      model.PblockSlack,
		StaticNeed: d.StaticResources,
	})
}
