// Package flow implements the PR-ESP FPGA flow of Fig. 1 — parse the SoC
// configuration, split static from reconfigurable sources, synthesize
// everything in parallel (out-of-context), floorplan the partitions,
// choose the size-driven P&R parallelism strategy and orchestrate the
// implementation runs through bitstream generation — plus the baseline
// it is evaluated against: Xilinx's standard DFX flow in a single tool
// instance ("monolithic" in Table V).
package flow

import (
	"fmt"
	"sort"

	"presp/internal/bitstream"
	"presp/internal/core"
	"presp/internal/floorplan"
	"presp/internal/fpga"
	"presp/internal/rtl"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// Options tunes a flow run.
type Options struct {
	// Model overrides the CAD cost model (nil = calibrated default).
	Model *vivado.CostModel
	// Strategy forces a strategy instead of the size-driven choice.
	// Nil lets core.Choose decide.
	Strategy *core.Strategy
	// SemiTau is the semi-parallel degree when the chooser selects
	// semi-parallel (0 = core.DefaultSemiTau).
	SemiTau int
	// Compress enables bitstream compression (the paper's deployment
	// configuration).
	Compress bool
	// SkipBitstreams stops after P&R, for timing-only studies.
	SkipBitstreams bool
}

// GroupRun records one in-context P&R run (one Ω of the paper's model).
type GroupRun struct {
	// Partitions lists the RP names implemented in the run.
	Partitions []string
	// Runtime is the run's modelled duration.
	Runtime vivado.Minutes
}

// Result is the product of a full flow run.
type Result struct {
	// Design is the elaborated SoC.
	Design *socgen.Design
	// Strategy is the implementation strategy used.
	Strategy *core.Strategy
	// Plan is the floorplan (nil for the standard-DFX baseline, which
	// also floorplans but whose plan is identical; kept for inspection).
	Plan *floorplan.Plan
	// SynthWall is the wall-clock synthesis time (parallel OoC for
	// PR-ESP; sequential for the baseline).
	SynthWall vivado.Minutes
	// SynthRuns records per-module synthesis times.
	SynthRuns map[string]vivado.Minutes
	// TStatic is the static-only pre-route time (zero for serial).
	TStatic vivado.Minutes
	// Groups records the in-context runs (empty for serial).
	Groups []GroupRun
	// MaxOmega is the longest in-context run after host contention.
	MaxOmega vivado.Minutes
	// PRWall is the wall-clock P&R time: TStatic + MaxOmega for the
	// parallel strategies, the single-instance run for serial.
	PRWall vivado.Minutes
	// BitgenWall is the bitstream generation time (parallelized with τ).
	BitgenWall vivado.Minutes
	// Total is SynthWall + PRWall (the paper's T_tot excludes bitgen,
	// which Tables III-V fold into P&R; we keep it separate and report
	// both).
	Total vivado.Minutes
	// FullBitstream and PartialBitstreams are the generated images.
	FullBitstream     *bitstream.Bitstream
	PartialBitstreams []*bitstream.Bitstream
	// Scripts are the auto-generated CAD scripts documenting the run.
	Scripts *Scripts
}

// RunPRESP executes the PR-ESP flow on design d. Designs without
// reconfigurable tiles (plain ESP SoCs with native accelerator tiles)
// fall through to the monolithic implementation — the flow degrades
// gracefully to the base ESP behaviour.
func RunPRESP(d *socgen.Design, opt Options) (*Result, error) {
	if len(d.RPs) == 0 {
		return RunMonolithic(d, opt)
	}
	tool, err := vivado.New(d.Dev, opt.Model)
	if err != nil {
		return nil, err
	}
	res := &Result{Design: d, SynthRuns: make(map[string]vivado.Minutes)}

	// --- Parse & split, then parallel OoC synthesis (Fig 1). ---
	staticCk, rpCks, err := synthesizeSplit(tool, d, res.SynthRuns)
	if err != nil {
		return nil, err
	}
	// All syntheses run in parallel, one tool instance each.
	instances := 1 + len(rpCks)
	cont := tool.Model().Contention(instances)
	var maxSynth vivado.Minutes
	for _, t := range res.SynthRuns {
		if t > maxSynth {
			maxSynth = t
		}
	}
	res.SynthWall = vivado.Minutes(float64(maxSynth) * cont)

	// --- Floorplanning (FLORA-adapted). ---
	res.Plan, err = FloorplanDesign(d, tool.Model())
	if err != nil {
		return nil, err
	}

	// --- DFX design rule checks: every partition's content must be
	// legal for runtime reconfiguration and fit its pblock. ---
	for _, rp := range d.RPs {
		pb, ok := res.Plan.Pblocks[rp.Name]
		if !ok {
			return nil, fmt.Errorf("flow: floorplan lost partition %s", rp.Name)
		}
		if err := tool.CheckDFX(rp.Content, rp.Resources, pb); err != nil {
			return nil, fmt.Errorf("flow: partition %s: %w", rp.Name, err)
		}
	}

	// --- Strategy choice. ---
	if opt.Strategy != nil {
		res.Strategy = opt.Strategy
	} else {
		res.Strategy, err = core.Choose(d)
		if err != nil {
			return nil, err
		}
		if res.Strategy.Kind == core.SemiParallel && opt.SemiTau > 1 && opt.SemiTau < len(d.RPs) {
			res.Strategy, err = core.ForceStrategy(d, core.SemiParallel, opt.SemiTau)
			if err != nil {
				return nil, err
			}
		}
	}

	// --- Script generation (documents every decision made so far). ---
	res.Scripts, err = GenerateScripts(d, res.Strategy, res.Plan)
	if err != nil {
		return nil, err
	}

	// --- Orchestrated P&R. ---
	if err := implement(tool, d, res, staticCk, rpCks); err != nil {
		return nil, err
	}

	// --- Bitstream generation. ---
	if !opt.SkipBitstreams {
		if err := generateBitstreams(tool, d, res, opt.Compress); err != nil {
			return nil, err
		}
	}
	res.Total = res.SynthWall + res.PRWall
	return res, nil
}

// RunStandardDFX executes the baseline: the vendor DFX flow in a single
// tool instance — sequential synthesis of the static part and every
// reconfigurable module, then a serial whole-design implementation.
func RunStandardDFX(d *socgen.Design, opt Options) (*Result, error) {
	tool, err := vivado.New(d.Dev, opt.Model)
	if err != nil {
		return nil, err
	}
	res := &Result{Design: d, SynthRuns: make(map[string]vivado.Minutes)}

	staticCk, rpCks, err := synthesizeSplit(tool, d, res.SynthRuns)
	if err != nil {
		return nil, err
	}
	_ = staticCk
	_ = rpCks
	// Sequential synthesis in one instance: times add up.
	for _, t := range res.SynthRuns {
		res.SynthWall += t
	}

	res.Plan, err = FloorplanDesign(d, tool.Model())
	if err != nil {
		return nil, err
	}
	res.Strategy, err = core.ForceStrategy(d, core.Serial, 1)
	if err != nil {
		return nil, err
	}
	if err := implement(tool, d, res, staticCk, rpCks); err != nil {
		return nil, err
	}
	if !opt.SkipBitstreams {
		if err := generateBitstreams(tool, d, res, opt.Compress); err != nil {
			return nil, err
		}
	}
	res.Total = res.SynthWall + res.PRWall
	return res, nil
}

// synthesizeSplit synthesizes the static part (reconfigurable
// accelerators replaced by auto-generated black boxes) and each RP
// content out-of-context, recording per-run times.
func synthesizeSplit(tool *vivado.Tool, d *socgen.Design, runs map[string]vivado.Minutes) (*vivado.SynthCheckpoint, map[string]*vivado.SynthCheckpoint, error) {
	var staticRes fpga.Resources
	for _, m := range d.StaticModules {
		staticRes = staticRes.Add(m.TotalCost())
	}
	staticMod := BuildStaticTop(d)
	staticCk, err := tool.Synthesize(staticMod, false)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: static synthesis: %w", err)
	}
	if got := staticCk.Resources[fpga.LUT]; got != staticRes[fpga.LUT] {
		return nil, nil, fmt.Errorf("flow: static split lost logic: top has %d LUTs, tiles sum to %d",
			got, staticRes[fpga.LUT])
	}
	runs["static"] = staticCk.Runtime

	rpCks := make(map[string]*vivado.SynthCheckpoint, len(d.RPs))
	for _, rp := range d.RPs {
		if rp.Content == nil {
			return nil, nil, fmt.Errorf("flow: partition %s has no initial content to synthesize", rp.Name)
		}
		ck, err := tool.Synthesize(rp.Content, true)
		if err != nil {
			return nil, nil, fmt.Errorf("flow: OoC synthesis of %s: %w", rp.Name, err)
		}
		rpCks[rp.Name] = ck
		runs[rp.Name] = ck.Runtime
	}
	return staticCk, rpCks, nil
}

// BuildStaticTop assembles the static-part hierarchy: the static tile
// modules plus an auto-generated black-box wrapper standing in for every
// reconfigurable partition (the synthesis-time replacement Section IV
// describes).
func BuildStaticTop(d *socgen.Design) *rtl.Module {
	top := &rtl.Module{Name: d.Cfg.Name + "_static"}
	top.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	top.AddPort("rstn", rtl.In, 1, rtl.ResetPort)
	for _, m := range d.StaticModules {
		top.AddChild(m.Name, m)
	}
	for _, rp := range d.RPs {
		var bb *rtl.Module
		if rp.Content != nil {
			bb = rp.Content.CloneAsBlackBox()
		} else {
			bb = &rtl.Module{Name: rp.Name + "_bb", BlackBox: true}
		}
		top.AddChild(rp.Name, bb)
	}
	return top
}

// implement runs the P&R stage per the chosen strategy.
func implement(tool *vivado.Tool, d *socgen.Design, res *Result, staticCk *vivado.SynthCheckpoint, rpCks map[string]*vivado.SynthCheckpoint) error {
	model := tool.Model()
	switch res.Strategy.Kind {
	case core.Serial:
		total := d.StaticResources.Add(d.ReconfigurableResources())
		sr, err := tool.ImplementSerial(d.Cfg.Name, total, len(d.RPs), res.Plan.RPFraction)
		if err != nil {
			return err
		}
		res.PRWall = sr.Runtime
		return nil
	case core.SemiParallel, core.FullyParallel:
		rs, err := tool.PreRouteStatic(d.Cfg.Name, staticCk, res.Plan.Pblocks, d.ReconfigurableResources())
		if err != nil {
			return err
		}
		res.TStatic = rs.Runtime
		cont := model.Contention(res.Strategy.Tau)
		for _, group := range res.Strategy.Groups {
			cr, err := tool.ImplementInContext(rs, group, rpCks)
			if err != nil {
				return err
			}
			run := GroupRun{Partitions: cr.Group, Runtime: vivado.Minutes(float64(cr.Runtime) * cont)}
			res.Groups = append(res.Groups, run)
			if run.Runtime > res.MaxOmega {
				res.MaxOmega = run.Runtime
			}
		}
		res.PRWall = res.TStatic + res.MaxOmega
		return nil
	default:
		return fmt.Errorf("flow: unknown strategy %v", res.Strategy.Kind)
	}
}

// generateBitstreams writes the full bitstream and one partial per RP.
func generateBitstreams(tool *vivado.Tool, d *socgen.Design, res *Result, compress bool) error {
	total := d.StaticResources.Add(d.ReconfigurableResources())
	full, tFull, err := tool.WriteFullBitstream(d.Cfg.Name+".bit", total, compress)
	if err != nil {
		return err
	}
	res.FullBitstream = full
	res.BitgenWall = tFull

	var maxPartial vivado.Minutes
	for _, rp := range d.RPs {
		pb, ok := res.Plan.Pblocks[rp.Name]
		if !ok {
			return fmt.Errorf("flow: no pblock for partition %s", rp.Name)
		}
		name := fmt.Sprintf("%s.%s.pbs", d.Cfg.Name, rp.Name)
		bs, t, err := tool.WritePartialBitstream(name, pb, rp.Resources, compress)
		if err != nil {
			return err
		}
		res.PartialBitstreams = append(res.PartialBitstreams, bs)
		if t > maxPartial {
			maxPartial = t
		}
	}
	sort.Slice(res.PartialBitstreams, func(i, j int) bool {
		return res.PartialBitstreams[i].Name < res.PartialBitstreams[j].Name
	})
	// Partial bitstream writes run in parallel with each other.
	res.BitgenWall += maxPartial
	return nil
}

// FloorplanDesign floorplans all partitions of d with the model's slack.
func FloorplanDesign(d *socgen.Design, model *vivado.CostModel) (*floorplan.Plan, error) {
	if model == nil {
		model = vivado.DefaultCostModel()
	}
	reqs := make([]floorplan.Request, 0, len(d.RPs))
	for _, rp := range d.RPs {
		reqs = append(reqs, floorplan.Request{Name: rp.Name, Need: rp.Resources})
	}
	return floorplan.Floorplan(d.Dev, reqs, floorplan.Options{
		Slack:      model.PblockSlack,
		StaticNeed: d.StaticResources,
	})
}
