package flow

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"presp/internal/vivado"
)

// recorder observes a graph execution: which jobs ran, how often, and
// whether every dependency had completed when its dependent started.
type recorder struct {
	mu        sync.Mutex
	completed map[string]bool
	runs      map[string]int
	violation string
}

func newRecorder() *recorder {
	return &recorder{completed: make(map[string]bool), runs: make(map[string]int)}
}

// instrument wraps a job body so the recorder checks dependency order on
// entry and records completion on exit.
func (r *recorder) instrument(id string, deps []string, fail bool) func(ctx context.Context) (vivado.Minutes, error) {
	return func(_ context.Context) (vivado.Minutes, error) {
		r.mu.Lock()
		for _, dep := range deps {
			if !r.completed[dep] {
				if r.violation == "" {
					r.violation = fmt.Sprintf("job %s started before dependency %s completed", id, dep)
				}
			}
		}
		r.runs[id]++
		r.mu.Unlock()

		r.mu.Lock()
		r.completed[id] = true
		r.mu.Unlock()
		if fail {
			return 0, fmt.Errorf("job %s failed", id)
		}
		return 1, nil
	}
}

// randomDAG builds a graph of n jobs where each job depends on a random
// subset of earlier jobs (acyclic by construction) and each job fails
// with probability pFail. It returns the graph, the recorder, the
// dependency lists and the set of fail-designated jobs.
func randomDAG(rng *rand.Rand, n int, pFail float64) (*Graph, *recorder, map[string][]string, map[string]bool) {
	g := NewGraph()
	rec := newRecorder()
	deps := make(map[string][]string, n)
	fails := make(map[string]bool)
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("job%03d", i)
		ids[i] = id
		var d []string
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.25 {
				d = append(d, ids[j])
			}
		}
		deps[id] = d
		fail := rng.Float64() < pFail
		fails[id] = fail
		stage := Stage(rng.Intn(4))
		if err := g.Add(id, stage, d, rec.instrument(id, d, fail)); err != nil {
			panic(err)
		}
	}
	return g, rec, deps, fails
}

// predictOutcome walks the DAG in insertion order (dependencies always
// precede dependents) and computes which jobs must run, which must be
// cancelled, and which failure the scheduler must report.
func predictOutcome(n int, deps map[string][]string, fails map[string]bool) (ran, cancelled map[string]bool, firstErr string) {
	ran = make(map[string]bool)
	cancelled = make(map[string]bool)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("job%03d", i)
		blocked := false
		for _, dep := range deps[id] {
			if cancelled[dep] || (ran[dep] && fails[dep]) {
				blocked = true
				break
			}
		}
		if blocked {
			cancelled[id] = true
			continue
		}
		ran[id] = true
		if fails[id] && firstErr == "" {
			firstErr = fmt.Sprintf("job %s failed", id)
		}
	}
	return ran, cancelled, firstErr
}

// checkExecution runs graph g and verifies the scheduler's contract
// against the predicted outcome, for one worker count.
func checkExecution(t *testing.T, rng *rand.Rand, n int, pFail float64, workers int) {
	t.Helper()
	g, rec, deps, fails := randomDAG(rng, n, pFail)
	wantRan, wantCancelled, wantErr := predictOutcome(n, deps, fails)

	stats, err := g.Execute(workers)

	if rec.violation != "" {
		t.Fatalf("workers=%d: dependency violation: %s", workers, rec.violation)
	}
	for id, count := range rec.runs {
		if count != 1 {
			t.Fatalf("workers=%d: job %s ran %d times", workers, id, count)
		}
	}
	for id := range wantRan {
		if rec.runs[id] != 1 {
			t.Fatalf("workers=%d: job %s should have run", workers, id)
		}
	}
	for id := range wantCancelled {
		if rec.runs[id] != 0 {
			t.Fatalf("workers=%d: cancelled job %s ran", workers, id)
		}
	}
	if stats.Cancelled != len(wantCancelled) {
		t.Fatalf("workers=%d: cancelled %d jobs, want %d", workers, stats.Cancelled, len(wantCancelled))
	}
	if got := stats.Executed(); got != len(wantRan) {
		t.Fatalf("workers=%d: executed %d jobs, want %d", workers, got, len(wantRan))
	}
	if wantErr == "" {
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
	} else {
		if err == nil {
			t.Fatalf("workers=%d: expected error %q, got nil", workers, wantErr)
		}
		if err.Error() != wantErr {
			t.Fatalf("workers=%d: error %q, want %q (error selection must be deterministic)", workers, err, wantErr)
		}
	}
}

// TestSchedulerRandomDAGs is the property suite: across many random DAGs
// and worker counts, no job runs before its dependencies, every runnable
// job runs exactly once, failures cancel exactly the transitive
// dependents, and the reported error never depends on scheduling.
func TestSchedulerRandomDAGs(t *testing.T) {
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for seed := int64(0); seed < 30; seed++ {
		for _, workers := range workerCounts {
			rng := rand.New(rand.NewSource(seed))
			n := 1 + rng.Intn(40)
			pFail := 0.0
			if seed%2 == 1 {
				pFail = 0.15
			}
			checkExecution(t, rng, n, pFail, workers)
		}
	}
}

// FuzzSchedulerExecute drives the same property check from fuzzed
// (seed, size, failure-rate, workers) tuples.
func FuzzSchedulerExecute(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(0), uint8(1))
	f.Add(int64(2), uint8(25), uint8(40), uint8(4))
	f.Add(int64(99), uint8(40), uint8(128), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, size, failPct, workers uint8) {
		n := 1 + int(size)%48
		pFail := float64(failPct) / 255.0
		w := 1 + int(workers)%16
		checkExecution(t, rand.New(rand.NewSource(seed)), n, pFail, w)
	})
}

// TestSchedulerDetectsCycles: a cyclic graph must error out instead of
// deadlocking the pool.
func TestSchedulerDetectsCycles(t *testing.T) {
	g := NewGraph()
	noop := func(_ context.Context) (vivado.Minutes, error) { return 0, nil }
	if err := g.Add("a", StageSynth, []string{"b"}, noop); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("b", StageSynth, []string{"a"}, noop); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("c", StageSynth, nil, noop); err != nil {
		t.Fatal(err)
	}
	_, err := g.Execute(4)
	if err == nil {
		t.Fatal("cycle not detected")
	}
}

// TestSchedulerRejectsBadGraphs covers the construction-time contract.
func TestSchedulerRejectsBadGraphs(t *testing.T) {
	noop := func(_ context.Context) (vivado.Minutes, error) { return 0, nil }
	g := NewGraph()
	if err := g.Add("a", StageSynth, nil, noop); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("a", StageSynth, nil, noop); err == nil {
		t.Fatal("duplicate job accepted")
	}
	if err := g.Add("", StageSynth, nil, noop); err == nil {
		t.Fatal("empty job ID accepted")
	}
	if err := g.Add("b", StageSynth, nil, nil); err == nil {
		t.Fatal("nil work function accepted")
	}
	if err := g.Add("c", StageSynth, []string{"ghost"}, noop); err != nil {
		t.Fatal(err) // unknown deps surface at Execute, not Add
	}
	if _, err := g.Execute(2); err == nil {
		t.Fatal("unknown dependency not detected")
	}
}

// TestSchedulerEmptyGraph: executing nothing succeeds with zero stats.
func TestSchedulerEmptyGraph(t *testing.T) {
	stats, err := NewGraph().Execute(8)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed() != 0 || stats.Cancelled != 0 {
		t.Fatalf("empty graph reported work: %+v", stats)
	}
}
