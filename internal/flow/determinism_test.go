// Determinism suite: the concurrent job-graph engine must be
// observationally equivalent to a serial execution — identical modelled
// wall times, scripts and bitstream payloads for every worker count and
// for warm or cold checkpoint caches.
package flow

import (
	"fmt"
	"hash/crc32"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"

	"presp/internal/accel"
	"presp/internal/core"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// resultSignature renders every externally observable Result field —
// wall times, per-run times, groups, scripts, bitstream names and CRCs —
// into one canonical string. Scheduler statistics (Jobs) are excluded:
// worker counts and cache hit rates legitimately differ between runs.
func resultSignature(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy=%s tau=%d class=%s groups=%v\n",
		res.Strategy.Kind, res.Strategy.Tau, res.Strategy.Class, res.Strategy.Groups)
	fmt.Fprintf(&b, "synthwall=%v tstatic=%v maxomega=%v prwall=%v bitgen=%v total=%v\n",
		float64(res.SynthWall), float64(res.TStatic), float64(res.MaxOmega),
		float64(res.PRWall), float64(res.BitgenWall), float64(res.Total))
	runs := make([]string, 0, len(res.SynthRuns))
	for n := range res.SynthRuns {
		runs = append(runs, n)
	}
	sort.Strings(runs)
	for _, n := range runs {
		fmt.Fprintf(&b, "synth[%s]=%v\n", n, float64(res.SynthRuns[n]))
	}
	for _, gr := range res.Groups {
		fmt.Fprintf(&b, "group=%v omega=%v\n", gr.Partitions, float64(gr.Runtime))
	}
	if res.Plan != nil {
		names := make([]string, 0, len(res.Plan.Pblocks))
		for n := range res.Plan.Pblocks {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "pblock[%s]=%v\n", n, res.Plan.Pblocks[n])
		}
		fmt.Fprintf(&b, "rpfraction=%v freecells=%d\n", res.Plan.RPFraction, res.Plan.FreeCells)
	}
	if res.Scripts != nil {
		fmt.Fprintf(&b, "scripts-crc=%08x\n", crc32.ChecksumIEEE([]byte(fmt.Sprintf("%#v", res.Scripts))))
	}
	if res.FullBitstream != nil {
		fmt.Fprintf(&b, "full=%s frames=%d raw=%d crc=%08x\n",
			res.FullBitstream.Name, res.FullBitstream.Frames,
			res.FullBitstream.RawBytes, crc32.ChecksumIEEE(res.FullBitstream.Data))
	}
	for _, bs := range res.PartialBitstreams {
		fmt.Fprintf(&b, "partial=%s frames=%d raw=%d crc=%08x\n",
			bs.Name, bs.Frames, bs.RawBytes, crc32.ChecksumIEEE(bs.Data))
	}
	fmt.Fprintf(&b, "partial-result=%v\n", res.Partial)
	for _, je := range res.JobErrors {
		fmt.Fprintf(&b, "joberr=%s stage=%s attempts=%d err=%v\n", je.ID, je.Stage, je.Attempts, je.Err)
	}
	return b.String()
}

func elaborate(t *testing.T, cfg *socgen.Config) *socgen.Design {
	t.Helper()
	d, err := socgen.Elaborate(cfg, accel.Default())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRunPRESPWorkerCountInvariance: SOC_1 and SOC_2 across all three
// strategies with worker counts 1, 4 and NumCPU produce byte-identical
// results — the concurrent engine is equivalent to the serial seed.
func TestRunPRESPWorkerCountInvariance(t *testing.T) {
	workerCounts := []int{1, 4, runtime.NumCPU()}
	kinds := []struct {
		kind core.StrategyKind
		tau  int
	}{
		{core.Serial, 1},
		{core.SemiParallel, 2},
		{core.FullyParallel, 0},
	}
	for _, cfg := range []*socgen.Config{socgen.SOC1(), socgen.SOC2()} {
		for _, k := range kinds {
			d := elaborate(t, cfg)
			tau := k.tau
			if k.kind == core.FullyParallel {
				tau = len(d.RPs)
			}
			strat, err := core.ForceStrategy(d, k.kind, tau)
			if err != nil {
				t.Fatalf("%s %s: %v", cfg.Name, k.kind, err)
			}
			var baseline string
			for _, workers := range workerCounts {
				res, err := RunPRESP(elaborate(t, cfg), Options{
					Strategy: strat,
					Compress: true,
					Workers:  workers,
				})
				if err != nil {
					t.Fatalf("%s %s workers=%d: %v", cfg.Name, k.kind, workers, err)
				}
				if res.Jobs.Workers < 1 {
					t.Fatalf("%s %s: scheduler reported %d workers", cfg.Name, k.kind, res.Jobs.Workers)
				}
				sig := resultSignature(res)
				if baseline == "" {
					baseline = sig
					continue
				}
				if sig != baseline {
					t.Fatalf("%s %s: workers=%d diverged from workers=1:\n--- got ---\n%s\n--- want ---\n%s",
						cfg.Name, k.kind, workers, sig, baseline)
				}
			}
		}
	}
}

// TestBaselineFlowsWorkerCountInvariance covers the other two scheduler
// clients: the standard-DFX and monolithic baselines.
func TestBaselineFlowsWorkerCountInvariance(t *testing.T) {
	var baseline string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		dfx, err := RunStandardDFX(elaborate(t, socgen.SOC2()), Options{Compress: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		mono, err := RunMonolithic(elaborate(t, socgen.SOC2()), Options{Compress: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sig := resultSignature(dfx) + "====\n" + resultSignature(mono)
		if baseline == "" {
			baseline = sig
			continue
		}
		if sig != baseline {
			t.Fatalf("baseline flows diverged at workers=%d:\n--- got ---\n%s\n--- want ---\n%s",
				workers, sig, baseline)
		}
	}
}

// TestWarmCacheEquivalence: a run served from a warm checkpoint cache is
// observationally identical to a cold run.
func TestWarmCacheEquivalence(t *testing.T) {
	cache := vivado.NewCheckpointCache()
	cold, err := RunPRESP(elaborate(t, socgen.SOC2()), Options{Compress: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunPRESP(elaborate(t, socgen.SOC2()), Options{Compress: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if resultSignature(cold) != resultSignature(warm) {
		t.Fatalf("warm-cache run diverged from cold run:\n--- cold ---\n%s\n--- warm ---\n%s",
			resultSignature(cold), resultSignature(warm))
	}
	if warm.Jobs.CacheHits == 0 || warm.Jobs.CacheMisses != 0 {
		t.Fatalf("warm run did not hit the cache: %+v", warm.Jobs)
	}
	if cold.Jobs.CacheHits != 0 || cold.Jobs.CacheMisses != cold.Jobs.SynthJobs {
		t.Fatalf("cold run miscounted cache traffic: %+v", cold.Jobs)
	}
}

// TestRuntimeBitstreamsDeterministic: with several invalid tiles in one
// allocation, the reported error must be the lexicographically-first
// tile's — not whichever map iteration surfaced first — and repeated
// generations must be identical.
func TestRuntimeBitstreamsDeterministic(t *testing.T) {
	reg := accel.Default()
	d := elaborate(t, socgen.SOC2())
	plan, err := FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := map[string][]string{
		"rt_1": {"conv2d", "sort"},
		"rt_2": {"fft", "gemm"},
	}
	sigOf := func() string {
		bss, err := GenerateRuntimeBitstreams(d, plan, alloc, reg, true)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tiles := make([]string, 0, len(bss))
		for tile := range bss {
			tiles = append(tiles, tile)
		}
		sort.Strings(tiles)
		for _, tile := range tiles {
			accs := make([]string, 0, len(bss[tile]))
			for acc := range bss[tile] {
				accs = append(accs, acc)
			}
			sort.Strings(accs)
			for _, acc := range accs {
				bs := bss[tile][acc]
				fmt.Fprintf(&b, "%s/%s=%s crc=%08x\n", tile, acc, bs.Name, crc32.ChecksumIEEE(bs.Data))
			}
		}
		return b.String()
	}
	first := sigOf()
	for i := 0; i < 5; i++ {
		if got := sigOf(); got != first {
			t.Fatalf("generation %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}

	// Two bad tiles: "aaa_ghost" sorts before "zzz_ghost", so the error
	// must always name aaa_ghost.
	bad := map[string][]string{
		"zzz_ghost": {"sort"},
		"aaa_ghost": {"sort"},
	}
	for i := 0; i < 10; i++ {
		_, err := GenerateRuntimeBitstreams(d, plan, bad, reg, true)
		if err == nil {
			t.Fatal("unknown tiles accepted")
		}
		if !strings.Contains(err.Error(), "aaa_ghost") {
			t.Fatalf("error selection is map-order dependent: %v", err)
		}
	}
}

// TestErrorDeterminismUnderConcurrency: a design whose partition content
// violates the DFX rules must fail with the same error for every worker
// count, even while unrelated jobs run concurrently.
func TestErrorDeterminismUnderConcurrency(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		d := elaborate(t, socgen.SOC2())
		d.RPs[1].Content = nil // partition with nothing to synthesize
		_, err := RunPRESP(d, Options{SkipBitstreams: true, Workers: workers})
		if err == nil {
			t.Fatal("flow accepted a partition without content")
		}
		if want == "" {
			want = err.Error()
			continue
		}
		if err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, err, want)
		}
	}
}

// Reflect guard: if Result grows an observable field, the signature
// above must learn about it. Jobs, Design and unexported bookkeeping are
// intentionally exempt.
func TestResultSignatureCoversResult(t *testing.T) {
	covered := map[string]bool{
		"Design": true, "Strategy": true, "Plan": true, "SynthWall": true,
		"SynthRuns": true, "TStatic": true, "Groups": true, "MaxOmega": true,
		"PRWall": true, "BitgenWall": true, "Total": true,
		"FullBitstream": true, "PartialBitstreams": true, "Scripts": true,
		"Partial": true, "JobErrors": true, "Jobs": true,
	}
	rt := reflect.TypeOf(Result{})
	for i := 0; i < rt.NumField(); i++ {
		if !covered[rt.Field(i).Name] {
			t.Fatalf("Result gained field %s: extend resultSignature and the determinism suite", rt.Field(i).Name)
		}
	}
}
