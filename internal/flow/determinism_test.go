// Determinism suite: the concurrent job-graph engine must be
// observationally equivalent to a serial execution — identical modelled
// wall times, scripts and bitstream payloads for every worker count and
// for warm or cold checkpoint caches.
package flow

import (
	"context"
	"fmt"
	"hash/crc32"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"

	"presp/internal/accel"
	"presp/internal/core"
	"presp/internal/faultinject"
	"presp/internal/obs"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// resultSignature renders every externally observable Result field —
// wall times, per-run times, groups, scripts, bitstream names and CRCs —
// into one canonical string. Scheduler statistics (Jobs) are excluded:
// worker counts and cache hit rates legitimately differ between runs.
func resultSignature(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy=%s tau=%d class=%s groups=%v\n",
		res.Strategy.Kind, res.Strategy.Tau, res.Strategy.Class, res.Strategy.Groups)
	fmt.Fprintf(&b, "synthwall=%v tstatic=%v maxomega=%v prwall=%v bitgen=%v total=%v\n",
		float64(res.SynthWall), float64(res.TStatic), float64(res.MaxOmega),
		float64(res.PRWall), float64(res.BitgenWall), float64(res.Total))
	runs := make([]string, 0, len(res.SynthRuns))
	for n := range res.SynthRuns {
		runs = append(runs, n)
	}
	sort.Strings(runs)
	for _, n := range runs {
		fmt.Fprintf(&b, "synth[%s]=%v\n", n, float64(res.SynthRuns[n]))
	}
	for _, gr := range res.Groups {
		fmt.Fprintf(&b, "group=%v omega=%v\n", gr.Partitions, float64(gr.Runtime))
	}
	if res.Plan != nil {
		names := make([]string, 0, len(res.Plan.Pblocks))
		for n := range res.Plan.Pblocks {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "pblock[%s]=%v\n", n, res.Plan.Pblocks[n])
		}
		fmt.Fprintf(&b, "rpfraction=%v freecells=%d\n", res.Plan.RPFraction, res.Plan.FreeCells)
	}
	if res.Scripts != nil {
		fmt.Fprintf(&b, "scripts-crc=%08x\n", crc32.ChecksumIEEE([]byte(fmt.Sprintf("%#v", res.Scripts))))
	}
	if res.FullBitstream != nil {
		fmt.Fprintf(&b, "full=%s frames=%d raw=%d crc=%08x\n",
			res.FullBitstream.Name, res.FullBitstream.Frames,
			res.FullBitstream.RawBytes, crc32.ChecksumIEEE(res.FullBitstream.Data))
	}
	for _, bs := range res.PartialBitstreams {
		fmt.Fprintf(&b, "partial=%s frames=%d raw=%d crc=%08x\n",
			bs.Name, bs.Frames, bs.RawBytes, crc32.ChecksumIEEE(bs.Data))
	}
	fmt.Fprintf(&b, "partial-result=%v\n", res.Partial)
	for _, je := range res.JobErrors {
		fmt.Fprintf(&b, "joberr=%s stage=%s attempts=%d err=%v\n", je.ID, je.Stage, je.Attempts, je.Err)
	}
	return b.String()
}

func elaborate(t *testing.T, cfg *socgen.Config) *socgen.Design {
	t.Helper()
	d, err := socgen.Elaborate(cfg, accel.Default())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRunPRESPWorkerCountInvariance: SOC_1 and SOC_2 across all three
// strategies with worker counts 1, 4 and NumCPU produce byte-identical
// results — the concurrent engine is equivalent to the serial seed.
func TestRunPRESPWorkerCountInvariance(t *testing.T) {
	workerCounts := []int{1, 4, runtime.NumCPU()}
	kinds := []struct {
		kind core.StrategyKind
		tau  int
	}{
		{core.Serial, 1},
		{core.SemiParallel, 2},
		{core.FullyParallel, 0},
	}
	for _, cfg := range []*socgen.Config{socgen.SOC1(), socgen.SOC2()} {
		for _, k := range kinds {
			d := elaborate(t, cfg)
			tau := k.tau
			if k.kind == core.FullyParallel {
				tau = len(d.RPs)
			}
			strat, err := core.ForceStrategy(d, k.kind, tau)
			if err != nil {
				t.Fatalf("%s %s: %v", cfg.Name, k.kind, err)
			}
			var baseline string
			for _, workers := range workerCounts {
				res, err := RunPRESP(context.Background(), elaborate(t, cfg), Options{
					Strategy: strat,
					Compress: true,
					Workers:  workers,
				})
				if err != nil {
					t.Fatalf("%s %s workers=%d: %v", cfg.Name, k.kind, workers, err)
				}
				if res.Jobs.Workers < 1 {
					t.Fatalf("%s %s: scheduler reported %d workers", cfg.Name, k.kind, res.Jobs.Workers)
				}
				sig := resultSignature(res)
				if baseline == "" {
					baseline = sig
					continue
				}
				if sig != baseline {
					t.Fatalf("%s %s: workers=%d diverged from workers=1:\n--- got ---\n%s\n--- want ---\n%s",
						cfg.Name, k.kind, workers, sig, baseline)
				}
			}
		}
	}
}

// TestBaselineFlowsWorkerCountInvariance covers the other two scheduler
// clients: the standard-DFX and monolithic baselines.
func TestBaselineFlowsWorkerCountInvariance(t *testing.T) {
	var baseline string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		dfx, err := RunStandardDFX(context.Background(), elaborate(t, socgen.SOC2()), Options{Compress: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		mono, err := RunMonolithic(context.Background(), elaborate(t, socgen.SOC2()), Options{Compress: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sig := resultSignature(dfx) + "====\n" + resultSignature(mono)
		if baseline == "" {
			baseline = sig
			continue
		}
		if sig != baseline {
			t.Fatalf("baseline flows diverged at workers=%d:\n--- got ---\n%s\n--- want ---\n%s",
				workers, sig, baseline)
		}
	}
}

// TestWarmCacheEquivalence: a run served from a warm checkpoint cache is
// observationally identical to a cold run.
func TestWarmCacheEquivalence(t *testing.T) {
	cache := vivado.NewCheckpointCache()
	cold, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), Options{Compress: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), Options{Compress: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if resultSignature(cold) != resultSignature(warm) {
		t.Fatalf("warm-cache run diverged from cold run:\n--- cold ---\n%s\n--- warm ---\n%s",
			resultSignature(cold), resultSignature(warm))
	}
	if warm.Jobs.CacheHits == 0 || warm.Jobs.CacheMisses != 0 {
		t.Fatalf("warm run did not hit the cache: %+v", warm.Jobs)
	}
	if cold.Jobs.CacheHits != 0 || cold.Jobs.CacheMisses != cold.Jobs.SynthJobs {
		t.Fatalf("cold run miscounted cache traffic: %+v", cold.Jobs)
	}
}

// TestRuntimeBitstreamsDeterministic: with several invalid tiles in one
// allocation, the reported error must be the lexicographically-first
// tile's — not whichever map iteration surfaced first — and repeated
// generations must be identical.
func TestRuntimeBitstreamsDeterministic(t *testing.T) {
	reg := accel.Default()
	d := elaborate(t, socgen.SOC2())
	plan, err := FloorplanDesign(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	alloc := map[string][]string{
		"rt_1": {"conv2d", "sort"},
		"rt_2": {"fft", "gemm"},
	}
	sigOf := func() string {
		bss, err := GenerateRuntimeBitstreams(context.Background(), d, plan, alloc, reg, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		tiles := make([]string, 0, len(bss))
		for tile := range bss {
			tiles = append(tiles, tile)
		}
		sort.Strings(tiles)
		for _, tile := range tiles {
			accs := make([]string, 0, len(bss[tile]))
			for acc := range bss[tile] {
				accs = append(accs, acc)
			}
			sort.Strings(accs)
			for _, acc := range accs {
				bs := bss[tile][acc]
				fmt.Fprintf(&b, "%s/%s=%s crc=%08x\n", tile, acc, bs.Name, crc32.ChecksumIEEE(bs.Data))
			}
		}
		return b.String()
	}
	first := sigOf()
	for i := 0; i < 5; i++ {
		if got := sigOf(); got != first {
			t.Fatalf("generation %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}

	// Two bad tiles: "aaa_ghost" sorts before "zzz_ghost", so the error
	// must always name aaa_ghost.
	bad := map[string][]string{
		"zzz_ghost": {"sort"},
		"aaa_ghost": {"sort"},
	}
	for i := 0; i < 10; i++ {
		_, err := GenerateRuntimeBitstreams(context.Background(), d, plan, bad, reg, true, 0)
		if err == nil {
			t.Fatal("unknown tiles accepted")
		}
		if !strings.Contains(err.Error(), "aaa_ghost") {
			t.Fatalf("error selection is map-order dependent: %v", err)
		}
	}
}

// TestErrorDeterminismUnderConcurrency: a design whose partition content
// violates the DFX rules must fail with the same error for every worker
// count, even while unrelated jobs run concurrently.
func TestErrorDeterminismUnderConcurrency(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		d := elaborate(t, socgen.SOC2())
		d.RPs[1].Content = nil // partition with nothing to synthesize
		_, err := RunPRESP(context.Background(), d, Options{SkipBitstreams: true, Workers: workers})
		if err == nil {
			t.Fatal("flow accepted a partition without content")
		}
		if want == "" {
			want = err.Error()
			continue
		}
		if err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, err, want)
		}
	}
}

// Reflect guard: if Result grows an observable field, the signature
// above must learn about it. Jobs, Design and unexported bookkeeping are
// intentionally exempt.
func TestResultSignatureCoversResult(t *testing.T) {
	covered := map[string]bool{
		"Design": true, "Strategy": true, "Plan": true, "SynthWall": true,
		"SynthRuns": true, "TStatic": true, "Groups": true, "MaxOmega": true,
		"PRWall": true, "BitgenWall": true, "Total": true,
		"FullBitstream": true, "PartialBitstreams": true, "Scripts": true,
		"Partial": true, "JobErrors": true, "Jobs": true,
	}
	rt := reflect.TypeOf(Result{})
	for i := 0; i < rt.NumField(); i++ {
		if !covered[rt.Field(i).Name] {
			t.Fatalf("Result gained field %s: extend resultSignature and the determinism suite", rt.Field(i).Name)
		}
	}
}

// TestObservedRunIsByteIdentical: attaching an Observer must not
// change results at any worker count — observation is strictly
// one-way. The traced runs also have to produce exactly one "job"
// span per executed job, with correctly nesting events, at every
// width.
func TestObservedRunIsByteIdentical(t *testing.T) {
	ref, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	refSig := resultSignature(ref)
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		observer := obs.New()
		res, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), Options{
			Compress: true, Workers: workers, Observer: observer,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sig := resultSignature(res); sig != refSig {
			t.Fatalf("workers=%d: observed run diverged from unobserved run:\n--- observed ---\n%s--- reference ---\n%s",
				workers, sig, refSig)
		}
		events := observer.Tracer().Events()
		if got, want := obs.CountSpans(events, "job"), res.Jobs.Executed(); got != want {
			t.Fatalf("workers=%d: %d job spans, want %d (= executed jobs)", workers, got, want)
		}
		if err := obs.CheckNesting(events); err != nil {
			t.Fatalf("workers=%d: trace events do not nest: %v", workers, err)
		}
		snap := observer.Metrics().Snapshot()
		if got, want := snap.Counters["flow_jobs_total"], int64(res.Jobs.Executed()); got != want {
			t.Fatalf("workers=%d: flow_jobs_total=%d, want %d", workers, got, want)
		}
		if busy := snap.Gauges["flow_workers_busy"]; busy != 0 {
			t.Fatalf("workers=%d: flow_workers_busy=%v after the run, want 0", workers, busy)
		}
	}
}

// TestObservedFaultyRunIsByteIdentical: observation changes nothing on
// the failure paths either — retries, fault injection and the collect
// policy all produce the same Result with or without an Observer.
func TestObservedFaultyRunIsByteIdentical(t *testing.T) {
	plan, err := faultinject.ParsePlan("seed=11,synth@rt_1:count=1,impl=0.3")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Compress:      true,
		MaxJobRetries: 2,
		ErrorPolicy:   Collect,
		FaultPlan:     plan,
	}
	ref, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), opt)
	if err != nil {
		t.Fatal(err)
	}
	observed := opt
	observed.Observer = obs.New()
	res, err := RunPRESP(context.Background(), elaborate(t, socgen.SOC2()), observed)
	if err != nil {
		t.Fatal(err)
	}
	if resultSignature(res) != resultSignature(ref) {
		t.Fatalf("observed faulty run diverged:\n--- observed ---\n%s--- reference ---\n%s",
			resultSignature(res), resultSignature(ref))
	}
	snap := observed.Observer.Metrics().Snapshot()
	if got, want := snap.Counters["flow_job_retries_total"], int64(res.Jobs.Retries); got != want {
		t.Fatalf("flow_job_retries_total=%d, want %d", got, want)
	}
	if res.Jobs.Retries > 0 {
		retryInstants := 0
		for _, ev := range observed.Observer.Tracer().Events() {
			if ev.Phase == "i" && ev.Cat == "retry" {
				retryInstants++
			}
		}
		if retryInstants != res.Jobs.Retries {
			t.Fatalf("%d retry instants traced, want %d", retryInstants, res.Jobs.Retries)
		}
	}
}
