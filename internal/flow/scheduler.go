// Job-graph scheduler: the flow's CAD steps — out-of-context synthesis,
// floorplanning, per-partition implementation, bitstream generation —
// form a dependency DAG that a bounded pool of worker goroutines
// executes concurrently. Each job carries its *simulated* CAD runtime
// (vivado.Minutes), so the reported wall times stay the analytic values
// of the cost model whatever the worker count; only the real CPU time
// spent simulating shrinks on multicore hosts. Reported errors are
// selected deterministically (earliest job in graph-insertion order), so
// results are observationally identical for any worker count.
package flow

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"presp/internal/vivado"
)

// Stage labels a job with the flow stage it belongs to, for the
// per-stage counters Result reports.
type Stage int

const (
	// StageSynth is (out-of-context) synthesis.
	StageSynth Stage = iota
	// StagePlan covers floorplanning, DFX design rule checks and script
	// generation.
	StagePlan
	// StageImpl is place-and-route (serial, static pre-route or
	// in-context).
	StageImpl
	// StageBitgen is bitstream generation.
	StageBitgen
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageSynth:
		return "synth"
	case StagePlan:
		return "plan"
	case StageImpl:
		return "impl"
	case StageBitgen:
		return "bitgen"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Job is one unit of CAD work in the dependency graph. Run returns the
// job's simulated duration; the scheduler only accumulates it — wall-time
// aggregation (max over parallel instances, contention scaling) stays
// with the flow, which knows the paper's timing model.
type Job struct {
	// ID names the job uniquely within its graph.
	ID string
	// Stage classifies the job for Result accounting.
	Stage Stage
	// Deps lists job IDs that must complete successfully first.
	Deps []string
	// Run performs the work.
	Run func() (vivado.Minutes, error)
	// order is the insertion index, the deterministic error-priority key.
	order int
}

// Graph is a job dependency DAG under construction.
type Graph struct {
	jobs map[string]*Job
	seq  []*Job
}

// NewGraph returns an empty job graph.
func NewGraph() *Graph {
	return &Graph{jobs: make(map[string]*Job)}
}

// Add registers a job. Duplicate IDs are an error; dependencies are
// validated at Execute time so jobs can be added in any order.
func (g *Graph) Add(id string, stage Stage, deps []string, run func() (vivado.Minutes, error)) error {
	if id == "" {
		return fmt.Errorf("flow: job with empty ID")
	}
	if run == nil {
		return fmt.Errorf("flow: job %q has no work function", id)
	}
	if _, dup := g.jobs[id]; dup {
		return fmt.Errorf("flow: duplicate job %q", id)
	}
	j := &Job{
		ID:    id,
		Stage: stage,
		Deps:  append([]string(nil), deps...),
		Run:   run,
		order: len(g.seq),
	}
	g.jobs[id] = j
	g.seq = append(g.seq, j)
	return nil
}

// Len returns the number of registered jobs.
func (g *Graph) Len() int { return len(g.seq) }

// JobStats summarizes one scheduler execution: how many jobs of each
// stage ran, how many were cancelled by an upstream failure, how the
// synthesis cache performed and how much simulated CAD time the jobs
// accumulated (Σ over all jobs, not wall time).
type JobStats struct {
	// Workers is the worker-pool size the graph executed on.
	Workers int
	// SynthJobs .. BitgenJobs count executed jobs per stage.
	SynthJobs  int
	PlanJobs   int
	ImplJobs   int
	BitgenJobs int
	// Cancelled counts jobs skipped because a dependency failed.
	Cancelled int
	// CacheHits and CacheMisses report the synthesis-checkpoint cache
	// (zero when no cache is attached).
	CacheHits   int
	CacheMisses int
	// SimMinutes is the summed simulated duration of all executed jobs.
	SimMinutes vivado.Minutes
}

// Executed returns the total number of jobs that ran.
func (s JobStats) Executed() int {
	return s.SynthJobs + s.PlanJobs + s.ImplJobs + s.BitgenJobs
}

func (s *JobStats) count(st Stage) {
	switch st {
	case StageSynth:
		s.SynthJobs++
	case StagePlan:
		s.PlanJobs++
	case StageImpl:
		s.ImplJobs++
	case StageBitgen:
		s.BitgenJobs++
	}
}

// jobDone carries one completion from a worker to the coordinator.
type jobDone struct {
	job     *Job
	runtime vivado.Minutes
	err     error
}

// Execute runs the graph on a pool of workers goroutines (workers <= 0
// selects runtime.NumCPU()). Every job runs exactly once after all its
// dependencies succeeded; a failed job cancels its transitive dependents
// without stopping independent work. When several jobs fail, the error
// of the earliest-added one is returned — the same error a sequential
// execution in insertion order would have surfaced — so the outcome does
// not depend on goroutine scheduling.
func (g *Graph) Execute(workers int) (JobStats, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(g.seq) {
		workers = len(g.seq)
	}
	if workers < 1 {
		workers = 1
	}
	stats := JobStats{Workers: workers}
	if len(g.seq) == 0 {
		return stats, nil
	}

	indeg := make(map[string]int, len(g.seq))
	dependents := make(map[string][]*Job)
	for _, j := range g.seq {
		for _, dep := range j.Deps {
			if _, ok := g.jobs[dep]; !ok {
				return stats, fmt.Errorf("flow: job %q depends on unknown job %q", j.ID, dep)
			}
			indeg[j.ID]++
			dependents[dep] = append(dependents[dep], j)
		}
	}

	// Buffers sized to the job count: dispatch and completion never
	// block, so the coordinator cannot deadlock against the pool.
	work := make(chan *Job, len(g.seq))
	results := make(chan jobDone, len(g.seq))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				t, err := j.Run()
				results <- jobDone{job: j, runtime: t, err: err}
			}
		}()
	}

	cancelled := make(map[string]bool)
	failed := make(map[string]*Job)
	failure := make(map[string]error)
	pending := len(g.seq)
	running := 0

	dispatch := func(j *Job) {
		running++
		work <- j
	}
	// cancel removes j and its transitive dependents from the pending
	// set; none of them has been dispatched (they still wait on the
	// failed dependency).
	var cancel func(j *Job)
	cancel = func(j *Job) {
		if cancelled[j.ID] {
			return
		}
		cancelled[j.ID] = true
		stats.Cancelled++
		pending--
		for _, dep := range dependents[j.ID] {
			cancel(dep)
		}
	}

	for _, j := range g.seq {
		if indeg[j.ID] == 0 {
			dispatch(j)
		}
	}
	for pending > 0 {
		if running == 0 {
			// Nothing runs and nothing can become ready: the remaining
			// jobs wait on each other in a cycle.
			close(work)
			wg.Wait()
			var stuck []string
			for _, j := range g.seq {
				if !cancelled[j.ID] && indeg[j.ID] > 0 {
					stuck = append(stuck, j.ID)
				}
			}
			sort.Strings(stuck)
			return stats, fmt.Errorf("flow: job graph has a dependency cycle among %v", stuck)
		}
		d := <-results
		running--
		pending--
		stats.count(d.job.Stage)
		stats.SimMinutes += d.runtime
		if d.err != nil {
			failed[d.job.ID] = d.job
			failure[d.job.ID] = d.err
			for _, dep := range dependents[d.job.ID] {
				cancel(dep)
			}
			continue
		}
		for _, dep := range dependents[d.job.ID] {
			if cancelled[dep.ID] {
				continue
			}
			indeg[dep.ID]--
			if indeg[dep.ID] == 0 {
				dispatch(dep)
			}
		}
	}
	close(work)
	wg.Wait()

	if len(failed) > 0 {
		var first *Job
		for _, j := range failed {
			if first == nil || j.order < first.order {
				first = j
			}
		}
		return stats, failure[first.ID]
	}
	return stats, nil
}
