// Job-graph scheduler: the flow's CAD steps — out-of-context synthesis,
// floorplanning, per-partition implementation, bitstream generation —
// form a dependency DAG that a bounded pool of worker goroutines
// executes concurrently. Each job carries its *simulated* CAD runtime
// (vivado.Minutes), so the reported wall times stay the analytic values
// of the cost model whatever the worker count; only the real CPU time
// spent simulating shrinks on multicore hosts.
//
// The scheduler is fault-tolerant and cancellable: failed jobs are
// retried up to a cap with exponential *virtual-time* backoff (the
// penalty is accounted in modelled minutes, never slept for, so
// published cost-model numbers stay byte-identical for any worker
// count), a per-job deadline in modelled minutes fails oversized jobs
// deterministically, and a cancelled context drains the pool at the
// next job boundary without leaking goroutines. Reported errors are
// selected deterministically (earliest job in graph-insertion order),
// so results are observationally identical for any worker count.
package flow

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"presp/internal/obs"
	"presp/internal/vivado"
)

// Stage labels a job with the flow stage it belongs to, for the
// per-stage counters Result reports.
type Stage int

const (
	// StageSynth is (out-of-context) synthesis.
	StageSynth Stage = iota
	// StagePlan covers floorplanning, DFX design rule checks and script
	// generation.
	StagePlan
	// StageImpl is place-and-route (serial, static pre-route or
	// in-context).
	StageImpl
	// StageBitgen is bitstream generation.
	StageBitgen
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageSynth:
		return "synth"
	case StagePlan:
		return "plan"
	case StageImpl:
		return "impl"
	case StageBitgen:
		return "bitgen"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// NormalizeWorkers is the single validation point for worker-pool
// sizes, shared by flow.Options, the scheduler and presp-flow's
// -workers flag: negative counts are rejected, zero selects
// runtime.GOMAXPROCS(0).
func NormalizeWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("flow: worker count %d is negative (0 selects all CPUs)", n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

// Job is one unit of CAD work in the dependency graph. Run returns the
// job's simulated duration; the scheduler only accumulates it — wall-time
// aggregation (max over parallel instances, contention scaling) stays
// with the flow, which knows the paper's timing model.
type Job struct {
	// ID names the job uniquely within its graph.
	ID string
	// Stage classifies the job for Result accounting.
	Stage Stage
	// Deps lists job IDs that must complete successfully first.
	Deps []string
	// Run performs the work. It must honour ctx promptly: the scheduler
	// passes the execution context so cancelled flows stop mid-graph.
	Run func(ctx context.Context) (vivado.Minutes, error)
	// Probe, when set, asks the stage-artifact cache before Run: a hit
	// returns the cached job's modelled minutes (the probe is expected to
	// publish the cached result as a side effect) and the scheduler skips
	// Run entirely, counting the job as Skipped rather than executed. A
	// miss falls through to Run. Probes run on worker goroutines and must
	// be safe to call concurrently with other jobs' probes.
	Probe func() (vivado.Minutes, bool)
	// order is the insertion index, the deterministic error-priority key.
	order int
}

// Graph is a job dependency DAG under construction.
type Graph struct {
	jobs map[string]*Job
	seq  []*Job
}

// NewGraph returns an empty job graph.
func NewGraph() *Graph {
	return &Graph{jobs: make(map[string]*Job)}
}

// Add registers a job. Duplicate IDs are an error; dependencies are
// validated at Execute time so jobs can be added in any order.
func (g *Graph) Add(id string, stage Stage, deps []string, run func(ctx context.Context) (vivado.Minutes, error)) error {
	if id == "" {
		return fmt.Errorf("flow: job with empty ID")
	}
	if run == nil {
		return fmt.Errorf("flow: job %q has no work function", id)
	}
	if _, dup := g.jobs[id]; dup {
		return fmt.Errorf("flow: duplicate job %q", id)
	}
	j := &Job{
		ID:    id,
		Stage: stage,
		Deps:  append([]string(nil), deps...),
		Run:   run,
		order: len(g.seq),
	}
	g.jobs[id] = j
	g.seq = append(g.seq, j)
	return nil
}

// AddCached registers a job with a stage-artifact cache probe: before
// Run is dispatched, probe is consulted, and a hit skips the job (see
// Job.Probe). A nil probe makes AddCached equivalent to Add.
func (g *Graph) AddCached(id string, stage Stage, deps []string, probe func() (vivado.Minutes, bool), run func(ctx context.Context) (vivado.Minutes, error)) error {
	if err := g.Add(id, stage, deps, run); err != nil {
		return err
	}
	g.jobs[id].Probe = probe
	return nil
}

// Len returns the number of registered jobs.
func (g *Graph) Len() int { return len(g.seq) }

// JobStats summarizes one scheduler execution: how many jobs of each
// stage ran, how many were cancelled by an upstream failure or an
// aborted context, how often failed jobs were retried, how the
// synthesis cache performed and how much simulated CAD time the jobs
// accumulated (Σ over all attempts plus virtual backoff, not wall
// time).
type JobStats struct {
	// Workers is the worker-pool size the graph executed on.
	Workers int
	// SynthJobs .. BitgenJobs count executed jobs per stage.
	SynthJobs  int
	PlanJobs   int
	ImplJobs   int
	BitgenJobs int
	// Cancelled counts jobs dropped because a dependency failed or the
	// context was cancelled before they were dispatched.
	Cancelled int
	// Skipped counts jobs whose stage-artifact probe hit: their cached
	// result was reused without running, so they appear in neither the
	// per-stage executed counts nor SimMinutes. Executed + Skipped +
	// Cancelled always sums to the graph size.
	Skipped int
	// SkippedByStage breaks Skipped down per stage (nil when nothing was
	// skipped).
	SkippedByStage map[Stage]int
	// StageCacheMisses counts probed jobs whose artifact key missed and
	// that therefore executed normally. Jobs without a probe (synthesis,
	// which the checkpoint cache covers) contribute to neither this nor
	// Skipped.
	StageCacheMisses int
	// Retries counts re-runs of failed job attempts (a job that
	// succeeds on its third attempt contributes two).
	Retries int
	// FailedJobs counts jobs whose final attempt still failed.
	FailedJobs int
	// CacheHits and CacheMisses report the synthesis-checkpoint cache
	// (zero when no cache is attached).
	CacheHits   int
	CacheMisses int
	// SimMinutes is the summed simulated duration of all executed jobs,
	// including the virtual backoff charged to retries.
	SimMinutes vivado.Minutes
}

// Executed returns the total number of jobs that ran.
func (s JobStats) Executed() int {
	return s.SynthJobs + s.PlanJobs + s.ImplJobs + s.BitgenJobs
}

func (s *JobStats) count(st Stage) {
	switch st {
	case StageSynth:
		s.SynthJobs++
	case StagePlan:
		s.PlanJobs++
	case StageImpl:
		s.ImplJobs++
	case StageBitgen:
		s.BitgenJobs++
	}
}

// JobError records one job's final failure after retries were
// exhausted. The flow's collect error policy surfaces the full sorted
// list instead of aborting on the first.
type JobError struct {
	// ID and Stage identify the failed job.
	ID    string
	Stage Stage
	// Attempts is how many times the job ran (1 = no retries).
	Attempts int
	// Err is the final attempt's error.
	Err error

	order int
}

// Error implements error.
func (e JobError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("%s (after %d attempts): %v", e.ID, e.Attempts, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.ID, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e JobError) Unwrap() error { return e.Err }

// JobOutcome reports one finished job to the OnJobDone observer.
type JobOutcome struct {
	// Minutes is the job's accounted simulated time (all attempts plus
	// virtual backoff).
	Minutes vivado.Minutes
	// Attempts is how many times the job ran (0 when Skipped).
	Attempts int
	// Skipped reports that the job's stage-artifact probe hit and Run
	// never executed; Minutes is the cached modelled duration.
	Skipped bool
	// Err is nil when the job ultimately succeeded.
	Err error
}

// ErrJobDeadline is wrapped by failures of jobs whose modelled runtime
// exceeded ExecOptions.JobDeadline.
var ErrJobDeadline = errors.New("job exceeded per-job deadline")

// DefaultRetryBackoff is the virtual-time penalty charged to a job's
// first retry when no explicit backoff is configured; it doubles per
// subsequent attempt up to DefaultBackoffCap. Fifteen modelled minutes
// approximates a license-server reconnect plus tool restart.
const DefaultRetryBackoff = vivado.Minutes(15)

// DefaultBackoffCap bounds the doubling virtual backoff.
const DefaultBackoffCap = vivado.Minutes(120)

// ExecOptions tunes one graph execution.
type ExecOptions struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS, negative is an
	// error; see NormalizeWorkers).
	Workers int
	// MaxRetries re-runs a failed job up to this many extra attempts.
	// Context errors and deadline failures are never retried: the
	// former mean the flow is shutting down, the latter are
	// deterministic.
	MaxRetries int
	// Backoff is the virtual-time penalty of the first retry (0 =
	// DefaultRetryBackoff when MaxRetries > 0); it doubles per attempt.
	Backoff vivado.Minutes
	// BackoffCap bounds the doubled backoff (0 = DefaultBackoffCap).
	BackoffCap vivado.Minutes
	// JobDeadline fails any job whose modelled runtime exceeds it
	// (0 = no deadline). The check is in virtual time, so it is
	// deterministic for every worker count.
	JobDeadline vivado.Minutes
	// FailFast stops dispatching new jobs after the first failure
	// (in-flight jobs are still drained); the default keeps independent
	// subgraphs running so partial results survive.
	FailFast bool
	// OnJobDone, when set, observes every finished job (success or
	// final failure) from the coordinator goroutine, in completion
	// order. The flow journals completed jobs through it.
	OnJobDone func(j *Job, out JobOutcome)
	// Observer, when set, records job spans, retry instants, worker
	// occupancy and per-stage runtime histograms. Nil disables all
	// observation at no cost; recorded spans carry wall timestamps but
	// nothing observed feeds back into scheduling, so results stay
	// byte-identical with or without it.
	Observer *obs.Observer
}

// jobDone carries one completion from a worker to the coordinator.
type jobDone struct {
	job      *Job
	runtime  vivado.Minutes
	attempts int
	skipped  bool // stage-artifact probe hit; Run never executed
	probed   bool // job had a probe (skipped or missed)
	err      error
}

// Execute runs the graph with background context and default retry
// policy — the pre-cancellation API, kept for callers that need
// neither.
func (g *Graph) Execute(workers int) (JobStats, error) {
	stats, errs, err := g.ExecuteCtx(context.Background(), ExecOptions{Workers: workers})
	if err != nil {
		return stats, err
	}
	if len(errs) > 0 {
		return stats, errs[0].Err
	}
	return stats, nil
}

// ExecuteCtx runs the graph on a pool of worker goroutines. Every job
// runs after all its dependencies succeeded; a failed job (after
// retries) cancels its transitive dependents without stopping
// independent work. Job failures are returned as a list sorted by
// graph-insertion order — the same order a sequential execution would
// have surfaced them — so the outcome does not depend on goroutine
// scheduling; the caller picks fail-fast (errs[0]) or collect
// semantics.
//
// The returned error is reserved for execution-level problems: an
// invalid worker count, an unknown dependency, a dependency cycle, or
// a cancelled/expired context. On cancellation the scheduler stops
// dispatching, drains every in-flight job, and shuts the pool down —
// no goroutine outlives the call.
func (g *Graph) ExecuteCtx(ctx context.Context, opt ExecOptions) (JobStats, []JobError, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers, err := NormalizeWorkers(opt.Workers)
	if err != nil {
		return JobStats{}, nil, err
	}
	if workers > len(g.seq) {
		workers = len(g.seq)
	}
	if workers < 1 {
		workers = 1
	}
	if opt.MaxRetries < 0 {
		return JobStats{}, nil, fmt.Errorf("flow: negative retry count %d", opt.MaxRetries)
	}
	if opt.Backoff <= 0 {
		opt.Backoff = DefaultRetryBackoff
	}
	if opt.BackoffCap <= 0 {
		opt.BackoffCap = DefaultBackoffCap
	}
	stats := JobStats{Workers: workers}
	if len(g.seq) == 0 {
		return stats, nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return stats, nil, fmt.Errorf("flow: execution cancelled before any job ran: %w", err)
	}

	indeg := make(map[string]int, len(g.seq))
	dependents := make(map[string][]*Job)
	for _, j := range g.seq {
		for _, dep := range j.Deps {
			if _, ok := g.jobs[dep]; !ok {
				return stats, nil, fmt.Errorf("flow: job %q depends on unknown job %q", j.ID, dep)
			}
			indeg[j.ID]++
			dependents[dep] = append(dependents[dep], j)
		}
	}

	// Resolved once: with a nil Observer every instrument below is nil
	// and each probe costs one nil check.
	reg := opt.Observer.Metrics()
	tr := opt.Observer.Tracer()
	busy := reg.Gauge("flow_workers_busy")
	jobsTotal := reg.Counter("flow_jobs_total")
	jobsFailed := reg.Counter("flow_jobs_failed_total")
	jobsCancelled := reg.Counter("flow_jobs_cancelled_total")
	jobRetries := reg.Counter("flow_job_retries_total")
	stageCacheHits := reg.Counter("flow_stage_cache_hits")
	stageCacheMisses := reg.Counter("flow_stage_cache_misses")
	stageMinutes := map[Stage]*obs.Histogram{
		StageSynth:  reg.Histogram("flow_stage_minutes_synth"),
		StagePlan:   reg.Histogram("flow_stage_minutes_plan"),
		StageImpl:   reg.Histogram("flow_stage_minutes_impl"),
		StageBitgen: reg.Histogram("flow_stage_minutes_bitgen"),
	}
	if tr != nil {
		for w := 0; w < workers; w++ {
			tr.SetThreadName(w, fmt.Sprintf("worker-%d", w))
		}
	}

	// Buffers sized to the job count: dispatch and completion never
	// block, so the coordinator cannot deadlock against the pool and a
	// cancelled coordinator can always drain in-flight results.
	work := make(chan *Job, len(g.seq))
	results := make(chan jobDone, len(g.seq))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for j := range work {
				busy.Add(1)
				// A probe hit skips the job: no "job" span is recorded (the
				// observed-span == executed-jobs invariant holds), just a
				// stage-skip instant on the worker's lane.
				if j.Probe != nil {
					if m, ok := j.Probe(); ok {
						if tr != nil {
							tr.Instant("stage-skip", j.ID, tid, map[string]any{
								"stage":       j.Stage.String(),
								"sim_minutes": float64(m),
							})
						}
						busy.Add(-1)
						results <- jobDone{job: j, runtime: m, skipped: true, probed: true}
						continue
					}
				}
				start := tr.Now()
				d := runWithRetry(ctx, j, opt, tr, tid)
				d.probed = j.Probe != nil
				if tr != nil {
					args := map[string]any{
						"stage":       j.Stage.String(),
						"sim_minutes": float64(d.runtime),
						"attempts":    d.attempts,
					}
					if d.err != nil {
						args["error"] = d.err.Error()
					}
					tr.Complete("job", j.ID, tid, start, tr.Now()-start, args)
				}
				busy.Add(-1)
				results <- d
			}
		}(w)
	}

	cancelled := make(map[string]bool)
	var failures []JobError
	pending := len(g.seq)
	running := 0
	completed := make(map[string]bool)

	dispatch := func(j *Job) {
		running++
		work <- j
	}
	// cancelJob removes j and its transitive dependents from the pending
	// set; none of them has been dispatched (they still wait on the
	// failed dependency).
	var cancelJob func(j *Job)
	cancelJob = func(j *Job) {
		if cancelled[j.ID] {
			return
		}
		cancelled[j.ID] = true
		stats.Cancelled++
		jobsCancelled.Inc()
		pending--
		for _, dep := range dependents[j.ID] {
			cancelJob(dep)
		}
	}
	account := func(d jobDone) {
		completed[d.job.ID] = true
		if d.skipped {
			// A cache skip is reuse, not execution: it stays out of the
			// per-stage executed counts, SimMinutes and flow_jobs_total so
			// every executed-jobs invariant (span counts, journal replays)
			// holds; only the skip-side books move.
			stats.Skipped++
			if stats.SkippedByStage == nil {
				stats.SkippedByStage = make(map[Stage]int)
			}
			stats.SkippedByStage[d.job.Stage]++
			stageCacheHits.Inc()
			if opt.OnJobDone != nil {
				opt.OnJobDone(d.job, JobOutcome{Minutes: d.runtime, Skipped: true})
			}
			return
		}
		if d.probed {
			stats.StageCacheMisses++
			stageCacheMisses.Inc()
		}
		stats.count(d.job.Stage)
		stats.SimMinutes += d.runtime
		stats.Retries += d.attempts - 1
		jobsTotal.Inc()
		jobRetries.Add(int64(d.attempts - 1))
		stageMinutes[d.job.Stage].Observe(float64(d.runtime))
		if d.err != nil {
			stats.FailedJobs++
			jobsFailed.Inc()
		}
		if opt.OnJobDone != nil {
			opt.OnJobDone(d.job, JobOutcome{Minutes: d.runtime, Attempts: d.attempts, Err: d.err})
		}
	}

	for _, j := range g.seq {
		if indeg[j.ID] == 0 {
			dispatch(j)
		}
	}
	// handle books one completion; when release is set a success frees
	// its dependents for dispatch (a draining coordinator passes false).
	handle := func(d jobDone, release bool) {
		running--
		pending--
		account(d)
		if d.err != nil {
			failures = append(failures, JobError{
				ID: d.job.ID, Stage: d.job.Stage, Attempts: d.attempts, Err: d.err, order: d.job.order,
			})
			for _, dep := range dependents[d.job.ID] {
				cancelJob(dep)
			}
			return
		}
		if !release {
			return
		}
		for _, dep := range dependents[d.job.ID] {
			if cancelled[dep.ID] {
				continue
			}
			indeg[dep.ID]--
			if indeg[dep.ID] == 0 {
				dispatch(dep)
			}
		}
	}

	aborted := false // context cancelled
	stopped := false // fail-fast stop after a job failure
	for pending > 0 && !aborted && !stopped {
		if running == 0 {
			// Nothing runs and nothing can become ready: the remaining
			// jobs wait on each other in a cycle.
			close(work)
			wg.Wait()
			var stuck []string
			for _, j := range g.seq {
				if !cancelled[j.ID] && !completed[j.ID] && indeg[j.ID] > 0 {
					stuck = append(stuck, j.ID)
				}
			}
			sort.Strings(stuck)
			return stats, sortJobErrors(failures), fmt.Errorf("flow: job graph has a dependency cycle among %v", stuck)
		}
		select {
		case <-ctx.Done():
			aborted = true
		case d := <-results:
			handle(d, true)
			if len(failures) > 0 && opt.FailFast {
				stopped = true
			}
		}
	}
	// Drain every in-flight job before tearing the pool down: results is
	// buffered, so workers can never block, and jobs observe ctx
	// themselves and return promptly after a cancellation.
	for running > 0 {
		handle(<-results, false)
	}
	close(work)
	wg.Wait()

	if aborted || stopped {
		// Never-dispatched jobs count as cancelled so Executed + Skipped
		// + Cancelled always sums to the graph size.
		for _, j := range g.seq {
			if !completed[j.ID] && !cancelled[j.ID] {
				cancelled[j.ID] = true
				stats.Cancelled++
				jobsCancelled.Inc()
			}
		}
	}
	if aborted {
		return stats, sortJobErrors(failures), fmt.Errorf("flow: execution cancelled: %w", ctx.Err())
	}
	return stats, sortJobErrors(failures), nil
}

// runWithRetry executes one job up to 1+MaxRetries times, charging the
// doubling virtual backoff to each retry. Context errors and deadline
// overruns stop the attempt loop immediately: retrying a cancelled
// flow is pointless and a deadline overrun is deterministic. Each
// retry emits a trace instant on the worker's lane (tr may be nil).
func runWithRetry(ctx context.Context, j *Job, opt ExecOptions, tr *obs.Tracer, tid int) jobDone {
	var total vivado.Minutes
	backoff := opt.Backoff
	attempts := 0
	for {
		attempts++
		t, err := j.Run(ctx)
		if err == nil && opt.JobDeadline > 0 && t > opt.JobDeadline {
			err = fmt.Errorf("flow: job %s ran %v, over the %v deadline: %w",
				j.ID, t, opt.JobDeadline, ErrJobDeadline)
		}
		total += t
		if err == nil {
			return jobDone{job: j, runtime: total, attempts: attempts, err: nil}
		}
		if attempts > opt.MaxRetries || !retryable(err) || ctx.Err() != nil {
			return jobDone{job: j, runtime: total, attempts: attempts, err: err}
		}
		if tr != nil {
			tr.Instant("retry", j.ID, tid, map[string]any{
				"attempt":         attempts,
				"backoff_minutes": float64(backoff),
				"error":           err.Error(),
			})
		}
		total += backoff
		if backoff *= 2; backoff > opt.BackoffCap {
			backoff = opt.BackoffCap
		}
	}
}

// retryable reports whether a failed attempt is worth re-running:
// everything except cancellation and deterministic deadline overruns.
func retryable(err error) bool {
	return !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, ErrJobDeadline)
}

// sortJobErrors orders failures by graph-insertion order — the
// deterministic, scheduling-independent error priority.
func sortJobErrors(errs []JobError) []JobError {
	sort.Slice(errs, func(i, j int) bool { return errs[i].order < errs[j].order })
	return errs
}
