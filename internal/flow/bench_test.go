// Cache-effectiveness tests and benchmarks: probing several strategies
// for one design must synthesize it once, not once per strategy.
package flow

import (
	"context"
	"testing"

	"presp/internal/accel"
	"presp/internal/core"
	"presp/internal/fpga"
	"presp/internal/obs"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// strategySweep returns the three strategies the evaluator probes on
// SOC_2 (serial, semi-parallel τ=2, fully parallel).
func strategySweep(t testing.TB, d *socgen.Design) []*core.Strategy {
	t.Helper()
	var out []*core.Strategy
	for _, k := range []struct {
		kind core.StrategyKind
		tau  int
	}{{core.Serial, 1}, {core.SemiParallel, 2}, {core.FullyParallel, len(d.RPs)}} {
		s, err := core.ForceStrategy(d, k.kind, k.tau)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// TestEvaluatorCacheCutsSynthesisJobs is the acceptance check: with a
// warm cache, a strategy sweep performs at least 2x fewer cold synthesis
// jobs than the cache-less engine would, and flow.Result reports the
// hits.
func TestEvaluatorCacheCutsSynthesisJobs(t *testing.T) {
	d, err := socgen.Elaborate(socgen.SOC2(), accel.Default())
	if err != nil {
		t.Fatal(err)
	}
	strategies := strategySweep(t, d)
	eval := &Evaluator{}
	for _, s := range strategies {
		if _, err := eval.EvaluateStrategy(d, s); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := eval.Cache().Stats()
	perRun := int64(len(d.RPs) + 1) // static + one OoC job per partition
	if misses != perRun {
		t.Fatalf("cold synthesis jobs: %d, want %d (one full design)", misses, perRun)
	}
	wantTotal := perRun * int64(len(strategies))
	if hits+misses != wantTotal {
		t.Fatalf("synthesis requests: %d, want %d", hits+misses, wantTotal)
	}
	if misses*2 > hits+misses {
		t.Fatalf("cache saved too little: %d cold of %d total (need >= 2x reduction)", misses, hits+misses)
	}

	// The per-run accounting surfaces on flow.Result too: a warm run
	// reports all-hit synthesis.
	res, err := RunPRESP(context.Background(), d, Options{Strategy: strategies[0], SkipBitstreams: true, Cache: eval.Cache()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs.CacheHits != int(perRun) || res.Jobs.CacheMisses != 0 {
		t.Fatalf("warm run reported %d hits / %d misses, want %d/0",
			res.Jobs.CacheHits, res.Jobs.CacheMisses, perRun)
	}
	if res.Jobs.SynthJobs != int(perRun) {
		t.Fatalf("synth jobs: %d, want %d", res.Jobs.SynthJobs, perRun)
	}
}

// BenchmarkEvaluateStrategyCold re-evaluates with a fresh cache each
// sweep: every strategy pays full synthesis.
func BenchmarkEvaluateStrategyCold(b *testing.B) {
	d, err := socgen.Elaborate(socgen.SOC2(), accel.Default())
	if err != nil {
		b.Fatal(err)
	}
	strategies := strategySweep(b, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval := &Evaluator{}
		for _, s := range strategies {
			if _, err := eval.EvaluateStrategy(d, s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEvaluateStrategyWarm shares one evaluator (and cache) across
// all iterations: after the first sweep every synthesis is a hit.
func BenchmarkEvaluateStrategyWarm(b *testing.B) {
	d, err := socgen.Elaborate(socgen.SOC2(), accel.Default())
	if err != nil {
		b.Fatal(err)
	}
	strategies := strategySweep(b, d)
	eval := &Evaluator{}
	for _, s := range strategies {
		if _, err := eval.EvaluateStrategy(d, s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range strategies {
			if _, err := eval.EvaluateStrategy(d, s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRunPRESPNilObserver measures the full flow with observation
// disabled — the instrumented hot paths resolve to nil instruments, so
// this must stay within noise of the pre-observability flow (the
// bench-smoke gate compares it against BenchmarkRunPRESPObserved).
func BenchmarkRunPRESPNilObserver(b *testing.B) {
	d, err := socgen.Elaborate(socgen.SOC2(), accel.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPRESP(context.Background(), d, Options{Compress: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunPRESPObserved measures the same flow with a live metrics
// registry and tracer attached.
func BenchmarkRunPRESPObserved(b *testing.B) {
	d, err := socgen.Elaborate(socgen.SOC2(), accel.Default())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPRESP(context.Background(), d, Options{Compress: true, Observer: obs.New()}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIncrementalSetup elaborates SOC_2 twice — a base design and a
// copy with one kernel re-costed — and pins the fully-parallel strategy
// for both, so the stage-cache invalidation unit is a single partition
// and the edit leg below re-runs exactly one impl + one bitgen job.
func benchIncrementalSetup(b *testing.B) (base, edited *socgen.Design, sBase, sEdited *core.Strategy) {
	b.Helper()
	var err error
	if base, err = socgen.Elaborate(socgen.SOC2(), accel.Default()); err != nil {
		b.Fatal(err)
	}
	if edited, err = socgen.Elaborate(socgen.SOC2(), accel.Default()); err != nil {
		b.Fatal(err)
	}
	edited.RPs[1].Content.Cost[fpga.LUT] -= 64
	if sBase, err = core.ForceStrategy(base, core.FullyParallel, len(base.RPs)); err != nil {
		b.Fatal(err)
	}
	if sEdited, err = core.ForceStrategy(edited, core.FullyParallel, len(edited.RPs)); err != nil {
		b.Fatal(err)
	}
	return base, edited, sBase, sEdited
}

// BenchmarkRunPRESPIncrementalCold pays the full flow every iteration:
// fresh checkpoint and stage caches, so nothing is reused.
func BenchmarkRunPRESPIncrementalCold(b *testing.B) {
	d, _, strat, _ := benchIncrementalSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := Options{Strategy: strat, Compress: true,
			Cache: vivado.NewCheckpointCache(), StageCache: vivado.NewStageCache()}
		if _, err := RunPRESP(context.Background(), d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunPRESPIncrementalWarm reruns an unchanged design against
// primed caches: synthesis is all hits and every post-synthesis stage
// is skipped from the artifact cache.
func BenchmarkRunPRESPIncrementalWarm(b *testing.B) {
	d, _, strat, _ := benchIncrementalSetup(b)
	opts := Options{Strategy: strat, Compress: true,
		Cache: vivado.NewCheckpointCache(), StageCache: vivado.NewStageCache()}
	if _, err := RunPRESP(context.Background(), d, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunPRESP(context.Background(), d, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Jobs.Skipped == 0 || res.Jobs.StageCacheMisses != 0 {
			b.Fatalf("warm run reused nothing: %d skipped, %d misses",
				res.Jobs.Skipped, res.Jobs.StageCacheMisses)
		}
	}
}

// BenchmarkRunPRESPIncrementalEdit measures the one-kernel-edit rerun:
// each iteration primes fresh caches with the base design off the
// clock, then times the edited run, which re-synthesizes and
// re-implements only the edited partition.
func BenchmarkRunPRESPIncrementalEdit(b *testing.B) {
	base, edited, sBase, sEdited := benchIncrementalSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, stage := vivado.NewCheckpointCache(), vivado.NewStageCache()
		if _, err := RunPRESP(context.Background(), base, Options{Strategy: sBase, Compress: true,
			Cache: cache, StageCache: stage}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := RunPRESP(context.Background(), edited, Options{Strategy: sEdited, Compress: true,
			Cache: cache, StageCache: stage})
		if err != nil {
			b.Fatal(err)
		}
		if res.Jobs.ImplJobs != 1 || res.Jobs.BitgenJobs != 1 {
			b.Fatalf("edit run re-ran %d impl + %d bitgen jobs, want 1 + 1",
				res.Jobs.ImplJobs, res.Jobs.BitgenJobs)
		}
	}
}
