// Incremental re-flow suite: the stage-artifact cache must skip
// exactly the jobs whose inputs are unchanged, and a run assembled from
// cached artifacts must be byte-identical to one computed from scratch
// — at every worker count.
package flow

import (
	"context"
	"runtime"
	"testing"

	"presp/internal/core"
	"presp/internal/fpga"
	"presp/internal/obs"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// forceFully pins the fully-parallel strategy: one group per partition,
// so the implementation-run invalidation unit IS the partition and the
// one-kernel-edit property below is exact.
func forceFully(t *testing.T, d *socgen.Design) *core.Strategy {
	t.Helper()
	strat, err := core.ForceStrategy(d, core.FullyParallel, len(d.RPs))
	if err != nil {
		t.Fatal(err)
	}
	return strat
}

// editKernel re-costs one partition's content in place: the resource
// envelope, module name and clock topology stay fixed, so the design
// digest and floorplan inputs are unchanged while the synthesis
// checkpoint key — and everything downstream of it — is not.
func editKernel(t *testing.T, d *socgen.Design, idx int) string {
	t.Helper()
	rp := d.RPs[idx]
	if rp.Content == nil {
		t.Fatalf("partition %s has no content to edit", rp.Name)
	}
	if rp.Content.Cost[fpga.LUT] < 128 {
		t.Fatalf("partition %s too small to re-cost: %v", rp.Name, rp.Content.Cost)
	}
	rp.Content.Cost[fpga.LUT] -= 64
	return rp.Name
}

// TestIncrementalEditReimplementsOnlyEditedPartition is the acceptance
// property of incremental re-flow: on a 4-partition SoC under the
// fully-parallel strategy, editing one accelerator and re-running
// executes exactly that partition's implementation and partial-bitstream
// jobs — everything else (floorplan, scripts, static pre-route, the
// other three groups, the full-device bitstream, the other partials) is
// served from the artifact cache — and the assembled result is
// byte-identical to a cold run of the edited design.
func TestIncrementalEditReimplementsOnlyEditedPartition(t *testing.T) {
	cache := vivado.NewCheckpointCache()
	stage := vivado.NewStageCache()
	base := func(d *socgen.Design, j *Journal) Options {
		return Options{
			Compress:   true,
			Cache:      cache,
			StageCache: stage,
			Strategy:   forceFully(t, d),
			Journal:    j,
		}
	}

	d1 := elaborate(t, socgen.SOC2())
	if len(d1.RPs) < 4 {
		t.Fatalf("SOC_2 has %d partitions, the property needs >= 4", len(d1.RPs))
	}

	cold, err := RunPRESP(context.Background(), d1, base(d1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Jobs.Skipped != 0 {
		t.Fatalf("cold run skipped %d jobs, want 0", cold.Jobs.Skipped)
	}
	if cold.Jobs.StageCacheMisses == 0 {
		t.Fatal("cold run probed no stage keys: caching is not wired")
	}
	postSynth := cold.Jobs.PlanJobs + cold.Jobs.ImplJobs + cold.Jobs.BitgenJobs
	if cold.Jobs.StageCacheMisses != postSynth {
		t.Fatalf("cold run: %d stage-cache misses, want %d (every post-synthesis job)",
			cold.Jobs.StageCacheMisses, postSynth)
	}

	// Warm identical resubmission: every post-synthesis job skips.
	d2 := elaborate(t, socgen.SOC2())
	warmJournal := NewJournal(nil)
	warm, err := RunPRESP(context.Background(), d2, base(d2, warmJournal))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Jobs.Skipped != postSynth || warm.Jobs.PlanJobs != 0 ||
		warm.Jobs.ImplJobs != 0 || warm.Jobs.BitgenJobs != 0 {
		t.Fatalf("warm run executed work it should have skipped: %+v", warm.Jobs)
	}
	if resultSignature(warm) != resultSignature(cold) {
		t.Fatalf("warm run diverged from cold run:\n--- warm ---\n%s--- cold ---\n%s",
			resultSignature(warm), resultSignature(cold))
	}
	warmSkips := 0
	for _, e := range warmJournal.Entries() {
		if e.Kind == "job" && e.Skipped {
			warmSkips++
		}
	}
	if warmSkips != postSynth {
		t.Fatalf("warm journal records %d skips, want %d", warmSkips, postSynth)
	}

	// One-kernel edit: re-cost partition 1, keep the envelope.
	d3 := elaborate(t, socgen.SOC2())
	edited := editKernel(t, d3, 1)
	if DesignDigest(d3) != DesignDigest(d1) {
		t.Fatal("re-costing a kernel changed the design digest; the edit is not envelope-preserving")
	}
	editJournal := NewJournal(nil)
	editOpt := base(d3, editJournal)
	editOpt.Observer = obs.New()
	edit, err := RunPRESP(context.Background(), d3, editOpt)
	if err != nil {
		t.Fatal(err)
	}
	if edit.Jobs.PlanJobs != 0 || edit.Jobs.ImplJobs != 1 || edit.Jobs.BitgenJobs != 1 {
		t.Fatalf("one-kernel edit re-ran plan=%d impl=%d bitgen=%d jobs, want 0/1/1: %+v",
			edit.Jobs.PlanJobs, edit.Jobs.ImplJobs, edit.Jobs.BitgenJobs, edit.Jobs)
	}
	if edit.Jobs.Skipped != postSynth-2 || edit.Jobs.StageCacheMisses != 2 {
		t.Fatalf("one-kernel edit: %d skips / %d misses, want %d / 2",
			edit.Jobs.Skipped, edit.Jobs.StageCacheMisses, postSynth-2)
	}
	if edit.Jobs.CacheMisses != 1 {
		t.Fatalf("one-kernel edit paid %d synthesis misses, want 1 (the edited module)", edit.Jobs.CacheMisses)
	}

	// The journal must name exactly the edited partition's impl group
	// and partial bitstream as the non-skipped post-synthesis jobs.
	gi := -1
	for i, group := range editOpt.Strategy.Groups {
		for _, name := range group {
			if name == edited {
				gi = i
			}
		}
	}
	if gi < 0 {
		t.Fatalf("edited partition %s not in any strategy group", edited)
	}
	wantRan := map[string]bool{
		"impl/group_" + padGroup(gi): true,
		"bitgen/" + edited:           true,
	}
	for _, e := range editJournal.Entries() {
		if e.Kind != "job" || e.Stage == StageSynth.String() {
			continue
		}
		if e.Skipped == wantRan[e.Job] {
			t.Errorf("journal: job %s skipped=%v, want ran=%v", e.Job, e.Skipped, wantRan[e.Job])
		}
	}

	// The incremental result must be byte-identical to a from-scratch
	// run of the same edited design — including every bitstream CRC.
	dRef := elaborate(t, socgen.SOC2())
	editKernel(t, dRef, 1)
	ref, err := RunPRESP(context.Background(), dRef, Options{
		Compress: true, Strategy: forceFully(t, dRef),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resultSignature(edit) != resultSignature(ref) {
		t.Fatalf("incremental edited run diverged from cold edited run:\n--- incremental ---\n%s--- cold ---\n%s",
			resultSignature(edit), resultSignature(ref))
	}

	// Observability: skip and miss counters mirror the scheduler stats,
	// skipped jobs get no "job" span, and flow_jobs_total still counts
	// executed jobs only.
	snap := editOpt.Observer.Metrics().Snapshot()
	if got := snap.Counters["flow_stage_cache_hits"]; got != int64(edit.Jobs.Skipped) {
		t.Fatalf("flow_stage_cache_hits=%d, want %d", got, edit.Jobs.Skipped)
	}
	if got := snap.Counters["flow_stage_cache_misses"]; got != int64(edit.Jobs.StageCacheMisses) {
		t.Fatalf("flow_stage_cache_misses=%d, want %d", got, edit.Jobs.StageCacheMisses)
	}
	events := editOpt.Observer.Tracer().Events()
	if got, want := obs.CountSpans(events, "job"), edit.Jobs.Executed(); got != want {
		t.Fatalf("%d job spans, want %d (skips must not emit job spans)", got, want)
	}
	if got, want := snap.Counters["flow_jobs_total"], int64(edit.Jobs.Executed()); got != want {
		t.Fatalf("flow_jobs_total=%d, want %d", got, want)
	}
}

func padGroup(gi int) string { return string([]byte{'0' + byte(gi/100%10), '0' + byte(gi/10%10), '0' + byte(gi%10)}) }

// TestIncrementalWarmWorkerCountInvariance pins the determinism rule of
// DESIGN.md §16: a run assembled entirely from cached artifacts is
// byte-identical to the cold run for every worker count.
func TestIncrementalWarmWorkerCountInvariance(t *testing.T) {
	cache := vivado.NewCheckpointCache()
	stage := vivado.NewStageCache()
	opts := func(d *socgen.Design, workers int) Options {
		return Options{
			Compress:   true,
			Workers:    workers,
			Cache:      cache,
			StageCache: stage,
			Strategy:   forceFully(t, d),
		}
	}
	d := elaborate(t, socgen.SOC2())
	cold, err := RunPRESP(context.Background(), d, opts(d, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := resultSignature(cold)
	postSynth := cold.Jobs.PlanJobs + cold.Jobs.ImplJobs + cold.Jobs.BitgenJobs
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		dw := elaborate(t, socgen.SOC2())
		warm, err := RunPRESP(context.Background(), dw, opts(dw, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if warm.Jobs.Skipped != postSynth {
			t.Fatalf("workers=%d: skipped %d jobs, want %d", workers, warm.Jobs.Skipped, postSynth)
		}
		if got := resultSignature(warm); got != want {
			t.Fatalf("workers=%d: warm run diverged from cold run:\n--- warm ---\n%s--- cold ---\n%s",
				workers, got, want)
		}
	}
}

// TestIncrementalWarmRestartFromDisk: with a CacheDir, the stage cache
// rides the checkpoint cache's disk tier, so a fresh process (fresh
// in-memory caches over the same directory) skips every post-synthesis
// job and pays no synthesis recompute either.
func TestIncrementalWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	run := func() *Result {
		d := elaborate(t, socgen.SOC2())
		res, err := RunPRESP(context.Background(), d, Options{
			Compress:   true,
			Cache:      vivado.NewCheckpointCache(),
			StageCache: vivado.NewStageCache(),
			CacheDir:   dir,
			Strategy:   forceFully(t, d),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	warm := run()
	postSynth := cold.Jobs.PlanJobs + cold.Jobs.ImplJobs + cold.Jobs.BitgenJobs
	if warm.Jobs.Skipped != postSynth {
		t.Fatalf("restarted run skipped %d jobs, want %d", warm.Jobs.Skipped, postSynth)
	}
	if warm.Jobs.CacheMisses != 0 {
		t.Fatalf("restarted run paid %d synthesis misses, want 0", warm.Jobs.CacheMisses)
	}
	if resultSignature(warm) != resultSignature(cold) {
		t.Fatalf("disk-restarted run diverged:\n--- warm ---\n%s--- cold ---\n%s",
			resultSignature(warm), resultSignature(cold))
	}
}

// TestStageCacheDisabledUnderFaults: a fault plan must force every
// stage to execute — a cached skip would bypass the injected fault.
func TestStageCacheDisabledUnderFaults(t *testing.T) {
	cache := vivado.NewCheckpointCache()
	stage := vivado.NewStageCache()
	d := elaborate(t, socgen.SOC2())
	if _, err := RunPRESP(context.Background(), d, Options{
		Compress: true, Cache: cache, StageCache: stage, Strategy: forceFully(t, d),
	}); err != nil {
		t.Fatal(err)
	}
	// A plan whose only rule targets a job that does not exist: no fault
	// ever fires, so the run succeeds — but its mere presence must turn
	// stage caching off.
	plan := parsePlan(t, "seed=3,impl@zz_no_such_partition:count=1")
	d2 := elaborate(t, socgen.SOC2())
	res, err := RunPRESP(context.Background(), d2, Options{
		Compress: true, Cache: cache, StageCache: stage, Strategy: forceFully(t, d2), FaultPlan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs.Skipped != 0 || res.Jobs.StageCacheMisses != 0 {
		t.Fatalf("faulted run used the stage cache: %+v", res.Jobs)
	}
}
