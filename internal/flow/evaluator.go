package flow

import (
	"context"
	"sync"

	"presp/internal/core"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// Evaluator adapts the flow to core.CostEvaluator: it predicts a
// strategy's P&R wall time by running the timing-only flow (no
// bitstreams) under the platform's cost model.
//
// The evaluator keeps a synthesis-checkpoint cache across calls: probing
// several strategies for the same design re-synthesizes nothing after
// the first run — only the P&R jobs differ between strategies.
type Evaluator struct {
	// Model overrides the CAD cost model (nil = calibrated default).
	Model *vivado.CostModel
	// Workers bounds the scheduler worker pool per run (0 = NumCPU).
	Workers int
	// Context, when non-nil, bounds every evaluation probe — the
	// core.CostEvaluator interface is fixed, so cancellation rides on
	// the struct.
	Context context.Context

	once  sync.Once
	cache *vivado.CheckpointCache
}

var _ core.CostEvaluator = (*Evaluator)(nil)

// Cache returns the evaluator's checkpoint cache, creating it on first
// use (also shared with any flow runs the caller wires it into).
func (e *Evaluator) Cache() *vivado.CheckpointCache {
	e.once.Do(func() { e.cache = vivado.NewCheckpointCache() })
	return e.cache
}

// EvaluateStrategy implements core.CostEvaluator.
func (e *Evaluator) EvaluateStrategy(d *socgen.Design, s *core.Strategy) (float64, error) {
	ctx := e.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := RunPRESP(ctx, d, Options{
		Model:          e.Model,
		Strategy:       s,
		SkipBitstreams: true,
		Workers:        e.Workers,
		Cache:          e.Cache(),
	})
	if err != nil {
		return 0, err
	}
	return float64(res.PRWall), nil
}
