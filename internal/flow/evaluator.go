package flow

import (
	"presp/internal/core"
	"presp/internal/socgen"
	"presp/internal/vivado"
)

// Evaluator adapts the flow to core.CostEvaluator: it predicts a
// strategy's P&R wall time by running the timing-only flow (no
// bitstreams) under the platform's cost model.
type Evaluator struct {
	// Model overrides the CAD cost model (nil = calibrated default).
	Model *vivado.CostModel
}

var _ core.CostEvaluator = (*Evaluator)(nil)

// EvaluateStrategy implements core.CostEvaluator.
func (e *Evaluator) EvaluateStrategy(d *socgen.Design, s *core.Strategy) (float64, error) {
	res, err := RunPRESP(d, Options{Model: e.Model, Strategy: s, SkipBitstreams: true})
	if err != nil {
		return 0, err
	}
	return float64(res.PRWall), nil
}
