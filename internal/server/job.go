package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"presp/internal/core"
	"presp/internal/experiments"
	"presp/internal/faultinject"
	"presp/internal/flow"
	"presp/internal/socgen"
)

// Spec is the client-facing description of one flow job — the JSON body
// of POST /v1/jobs. Everything a run depends on is in the spec; the
// per-run scheduler width and the shared checkpoint cache belong to the
// server, so a tenant cannot buy itself more CPU than the deployment
// grants.
type Spec struct {
	// Preset names a built-in SoC configuration (SOC_1..SOC_4,
	// SoC_A..SoC_D, SoC_X/Y/Z).
	Preset string `json:"preset"`
	// Flow selects the flow to run: "presp" (default), "standard-dfx"
	// or "monolithic".
	Flow string `json:"flow,omitempty"`
	// Strategy forces an implementation strategy ("serial", "semi",
	// "fully"); empty lets the size-driven chooser decide.
	Strategy string `json:"strategy,omitempty"`
	// Tau is the semi-parallel degree (0 = default).
	Tau int `json:"tau,omitempty"`
	// Compress enables bitstream compression.
	Compress bool `json:"compress,omitempty"`
	// SkipBitstreams stops after P&R.
	SkipBitstreams bool `json:"skip_bitstreams,omitempty"`
	// Retries re-runs failed jobs with capped virtual-time backoff.
	Retries int `json:"retries,omitempty"`
	// ErrorPolicy is "fail-fast" (default) or "collect".
	ErrorPolicy string `json:"error_policy,omitempty"`
	// Faults injects seeded CAD faults (faultinject plan syntax).
	Faults string `json:"faults,omitempty"`
}

// compiledSpec is a validated spec plus everything derived from it at
// admission time: the elaborated design, the forced strategy (if any),
// the parsed fault plan and the single-flight key.
type compiledSpec struct {
	spec     Spec
	design   *socgen.Design
	strategy *core.Strategy
	faults   *faultinject.Plan
	key      string
}

// compile validates and normalizes a spec, elaborates its design and
// computes the single-flight key. Every rejection here becomes an HTTP
// 400 before the job touches the queue.
func compile(spec Spec) (*compiledSpec, error) {
	if spec.Preset == "" {
		return nil, fmt.Errorf("spec: preset is required (one of %v)", experiments.PresetNames())
	}
	cfg, err := experiments.PresetConfig(spec.Preset)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	d, err := experiments.ElaborateConfig(cfg)
	if err != nil {
		return nil, fmt.Errorf("spec: elaborating %s: %w", spec.Preset, err)
	}
	if spec.Flow == "" {
		spec.Flow = "presp"
	}
	switch spec.Flow {
	case "presp", "standard-dfx", "monolithic":
	default:
		return nil, fmt.Errorf("spec: unknown flow %q (want one of %v)", spec.Flow, flow.FlowNames())
	}
	if spec.Retries < 0 {
		return nil, fmt.Errorf("spec: retries must be >= 0, got %d", spec.Retries)
	}
	if spec.Tau < 0 {
		return nil, fmt.Errorf("spec: tau must be >= 0, got %d", spec.Tau)
	}
	if spec.ErrorPolicy == "" {
		spec.ErrorPolicy = "fail-fast"
	}
	switch spec.ErrorPolicy {
	case "fail-fast", "collect":
	default:
		return nil, fmt.Errorf("spec: unknown error policy %q (want fail-fast or collect)", spec.ErrorPolicy)
	}
	cs := &compiledSpec{spec: spec, design: d}
	if spec.Strategy != "" {
		kind, err := parseStrategyKind(spec.Strategy)
		if err != nil {
			return nil, err
		}
		tau := spec.Tau
		if tau == 0 {
			tau = core.DefaultSemiTau
		}
		if len(d.RPs) > 0 {
			s, err := core.ForceStrategy(d, kind, tau)
			if err != nil {
				return nil, fmt.Errorf("spec: %w", err)
			}
			cs.strategy = s
		}
	}
	if spec.Faults != "" {
		plan, err := faultinject.ParsePlan(spec.Faults)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		cs.faults = plan
	}
	cs.key = specKey(cs)
	return cs, nil
}

func parseStrategyKind(s string) (core.StrategyKind, error) {
	switch s {
	case "serial":
		return core.Serial, nil
	case "semi", "semi-parallel":
		return core.SemiParallel, nil
	case "fully", "fully-parallel":
		return core.FullyParallel, nil
	default:
		return 0, fmt.Errorf("spec: unknown strategy %q (want serial, semi or fully)", s)
	}
}

// specKey is the single-flight identity of a compiled spec. It rides on
// the same content-address machinery as the synthesis-checkpoint cache:
// the design digest (device identity and capacity, module hierarchy and
// resource envelopes) extended with every run option that can change
// the result. Two submissions with equal keys are guaranteed to produce
// byte-identical results, so the service runs the flow once and shares
// it.
func specKey(cs *compiledSpec) string {
	h := fnv.New64a()
	var buf [8]byte
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0xff}) // separator: ("ab","c") != ("a","bc")
	}
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	ws(flow.DesignDigest(cs.design))
	ws(cs.spec.Flow)
	ws(cs.spec.Strategy)
	wu(uint64(cs.spec.Tau))
	if cs.spec.Compress {
		ws("compress")
	}
	if cs.spec.SkipBitstreams {
		ws("skip-bitstreams")
	}
	wu(uint64(cs.spec.Retries))
	ws(cs.spec.ErrorPolicy)
	ws(cs.spec.Faults)
	return fmt.Sprintf("%016x", h.Sum64())
}

// JobState is a job's lifecycle state.
type JobState string

const (
	// StateQueued: admitted, waiting for a worker slot.
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing the job's flight group.
	StateRunning JobState = "running"
	// StateSucceeded: the flow completed; Result is populated.
	StateSucceeded JobState = "succeeded"
	// StateFailed: the flow returned an error; Error is populated.
	StateFailed JobState = "failed"
	// StateCancelled: the client cancelled the job before completion.
	StateCancelled JobState = "cancelled"
	// StateRejected: the server drained before the job was admitted to
	// a worker.
	StateRejected JobState = "rejected"
	// StatePoisoned: the job stalled past its watchdog requeue budget
	// and was quarantined — it will not run again.
	StatePoisoned JobState = "poisoned"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	switch s {
	case StateSucceeded, StateFailed, StateCancelled, StateRejected, StatePoisoned:
		return true
	}
	return false
}

// Job is one tenant submission. All fields are guarded by the server
// mutex; handlers read consistent snapshots via View.
type Job struct {
	ID        string
	Tenant    string
	Spec      Spec
	State     JobState
	Err       string
	Dedup     bool
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Result    *ResultView

	// Key is the spec's single-flight content address; it is what the
	// WAL records and what an idempotent resubmission is checked
	// against.
	Key string
	// IdemKey is the client's Idempotency-Key, if any.
	IdemKey string
	// Attempts counts watchdog requeues: 0 for a job that ran once.
	Attempts int
	// Recovered marks a job re-created from the WAL after a crash.
	Recovered bool

	group *group
}

// ResultView is the JSON summary of a completed flow run: the modelled
// wall times, the scheduler's execution counters and the journal size.
// Everything in it is deterministic for a given spec, which is what
// makes the golden-file API tests and the single-flight result-equality
// guarantee possible.
type ResultView struct {
	Flow           string  `json:"flow"`
	Strategy       string  `json:"strategy"`
	Tau            int     `json:"tau"`
	SynthWallMin   float64 `json:"synth_wall_min"`
	PRWallMin      float64 `json:"pr_wall_min"`
	BitgenWallMin  float64 `json:"bitgen_wall_min"`
	TotalMin       float64 `json:"total_min"`
	JobsExecuted   int     `json:"jobs_executed"`
	CacheHits      int     `json:"cache_hits"`
	CacheMisses    int     `json:"cache_misses"`
	// JobsSkipped counts stage jobs satisfied from the stage-artifact
	// cache instead of executing; SkippedByStage breaks the count down
	// per stage and StageCacheMisses counts probes that found nothing.
	// A resubmitted spec that edits one kernel shows exactly the edited
	// partition's impl+bitgen jobs here as misses, everything else as
	// skips. Absent on cold runs.
	JobsSkipped      int            `json:"jobs_skipped,omitempty"`
	SkippedByStage   map[string]int `json:"skipped_by_stage,omitempty"`
	StageCacheMisses int            `json:"stage_cache_misses,omitempty"`
	Retries          int            `json:"retries,omitempty"`
	Partial        bool    `json:"partial,omitempty"`
	Partitions     int     `json:"partitions"`
	JournalEntries int     `json:"journal_entries"`
	// BitstreamCRCs fingerprints every generated image as
	// "name:crc32" (IEEE, hex), sorted by name. Deterministic for a
	// given spec, so a client — or the restart smoke test — can assert
	// two runs produced byte-identical bitstreams without downloading
	// them. Absent when the run skipped bitstream generation.
	BitstreamCRCs []string `json:"bitstream_crcs,omitempty"`
}

// summarizeResult converts a flow result to its wire form.
func summarizeResult(spec Spec, res *flow.Result, journalEntries int) *ResultView {
	rv := &ResultView{
		Flow:           spec.Flow,
		SynthWallMin:   float64(res.SynthWall),
		PRWallMin:      float64(res.PRWall),
		BitgenWallMin:  float64(res.BitgenWall),
		TotalMin:       float64(res.Total),
		JobsExecuted:     res.Jobs.Executed(),
		CacheHits:        res.Jobs.CacheHits,
		CacheMisses:      res.Jobs.CacheMisses,
		JobsSkipped:      res.Jobs.Skipped,
		StageCacheMisses: res.Jobs.StageCacheMisses,
		Retries:          res.Jobs.Retries,
		Partial:        res.Partial,
		JournalEntries: journalEntries,
	}
	if len(res.Jobs.SkippedByStage) > 0 {
		rv.SkippedByStage = make(map[string]int, len(res.Jobs.SkippedByStage))
		for st, n := range res.Jobs.SkippedByStage {
			rv.SkippedByStage[st.String()] = n
		}
	}
	if res.Strategy != nil {
		rv.Strategy = res.Strategy.Kind.String()
		rv.Tau = res.Strategy.Tau
	}
	if res.Design != nil {
		rv.Partitions = len(res.Design.RPs)
	}
	if res.FullBitstream != nil {
		rv.BitstreamCRCs = append(rv.BitstreamCRCs,
			fmt.Sprintf("%s:%08x", res.FullBitstream.Name, res.FullBitstream.Checksum))
	}
	for _, bs := range res.PartialBitstreams {
		if bs == nil {
			continue
		}
		rv.BitstreamCRCs = append(rv.BitstreamCRCs, fmt.Sprintf("%s:%08x", bs.Name, bs.Checksum))
	}
	sort.Strings(rv.BitstreamCRCs)
	return rv
}

// JobView is the wire form of a job.
type JobView struct {
	ID           string      `json:"id"`
	Tenant       string      `json:"tenant"`
	State        JobState    `json:"state"`
	Spec         Spec        `json:"spec"`
	Deduplicated bool        `json:"deduplicated,omitempty"`
	// IdempotencyKey echoes the client's Idempotency-Key header.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Recovered marks a job replayed from the WAL after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Attempts counts watchdog requeues (absent for first-try jobs).
	Attempts    int         `json:"attempts,omitempty"`
	SubmittedAt string      `json:"submitted_at,omitempty"`
	StartedAt   string      `json:"started_at,omitempty"`
	FinishedAt  string      `json:"finished_at,omitempty"`
	Error       string      `json:"error,omitempty"`
	Result      *ResultView `json:"result,omitempty"`
}

// viewLocked snapshots a job. Callers hold the server mutex.
func (j *Job) viewLocked() JobView {
	v := JobView{
		ID:             j.ID,
		Tenant:         j.Tenant,
		State:          j.State,
		Spec:           j.Spec,
		Deduplicated:   j.Dedup,
		IdempotencyKey: j.IdemKey,
		Recovered:      j.Recovered,
		Attempts:       j.Attempts,
		Error:          j.Err,
		Result:         j.Result,
	}
	fmtT := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	v.SubmittedAt = fmtT(j.Submitted)
	v.StartedAt = fmtT(j.Started)
	v.FinishedAt = fmtT(j.Finished)
	return v
}

// Typed admission errors; the HTTP layer maps them to status codes.
var (
	// ErrDraining rejects submissions while the server shuts down (503).
	ErrDraining = errors.New("server draining")
	// ErrNotFound reports an unknown job ID — or one owned by another
	// tenant, indistinguishable by design (404).
	ErrNotFound = errors.New("job not found")
	// ErrFinished reports a cancel of a job that already reached a
	// non-cancelled terminal state (409) — distinct from an unknown ID,
	// so clients can tell a lost race from a typo. Re-cancelling an
	// already-cancelled job stays an idempotent no-op.
	ErrFinished = errors.New("job already finished")
)

// CircuitOpenError sheds a submission whose (tenant, spec) circuit
// breaker is open after repeated failures (503 + Retry-After).
type CircuitOpenError struct {
	// Failures is the consecutive-failure count that opened the circuit.
	Failures int
	// RetryAfter is how long until the breaker half-opens.
	RetryAfter time.Duration
}

// Error implements error.
func (e *CircuitOpenError) Error() string {
	return fmt.Sprintf("circuit open after %d consecutive failures; retry in %s",
		e.Failures, e.RetryAfter.Round(time.Second))
}

// IdempotencyMismatchError rejects a submission that reuses an
// Idempotency-Key with a different spec (409): replaying the existing
// job would silently hand the client a result for work it did not ask
// for.
type IdempotencyMismatchError struct {
	// Key is the reused idempotency key.
	Key string
	// JobID is the job that owns the key.
	JobID string
}

// Error implements error.
func (e *IdempotencyMismatchError) Error() string {
	return fmt.Sprintf("idempotency key %q was already used by job %s with a different spec", e.Key, e.JobID)
}

// QueueFullError rejects a submission when the admission queue is at
// capacity (429 + Retry-After).
type QueueFullError struct {
	// Depth is the configured queue bound that was hit.
	Depth int
}

// Error implements error.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("admission queue full (%d queued); retry later", e.Depth)
}

// BadSpecError rejects an invalid submission (400).
type BadSpecError struct{ Reason error }

// Error implements error.
func (e *BadSpecError) Error() string { return e.Reason.Error() }

// Unwrap exposes the underlying validation error.
func (e *BadSpecError) Unwrap() error { return e.Reason }
