package server

import (
	"testing"

	"presp/internal/leakcheck"
)

// TestMain fails the whole package if any test leaves a goroutine
// behind — every server the tests create must drain completely.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
