package server

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"presp/internal/obs"
	"presp/internal/vivado"
)

// bootDiskServer builds a server whose checkpoint cache is backed by the
// persistent tier at dir — the wiring presp-served -cache-dir performs.
func bootDiskServer(t *testing.T, dir string) (*Server, *obs.Observer) {
	t.Helper()
	o := obs.New()
	store, err := vivado.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetObserver(o)
	cache := vivado.NewCheckpointCache()
	cache.SetDiskStore(store)
	return newTestServer(t, Config{Workers: 1, Cache: cache, Observer: o}), o
}

// runJob submits spec, waits for success and returns the result summary.
func runJob(t *testing.T, s *Server, spec Spec) *ResultView {
	t.Helper()
	v, err := s.Submit("default", spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, "default", v.ID, StateSucceeded)
	if done.Result == nil {
		t.Fatal("succeeded job has no result")
	}
	return done.Result
}

// TestServerRestartWarmStart is the acceptance scenario for the disk
// tier: run a real flow through a daemon backed by -cache-dir, kill the
// daemon, restart against the same directory and resubmit the identical
// spec — the second run must be served entirely from the persistent
// tier (cache_disk_hits >= 1, zero synthesis misses) with byte-identical
// bitstream CRCs. A corrupted entry must be quarantined and recomputed,
// never loaded.
func TestServerRestartWarmStart(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Preset: "SOC_1", Compress: true}

	// First daemon: cold start, pays the syntheses, persists them.
	s1, _ := bootDiskServer(t, dir)
	cold := runJob(t, s1, spec)
	if len(cold.BitstreamCRCs) == 0 {
		t.Fatal("cold run produced no bitstream CRCs")
	}
	if !sort.StringsAreSorted(cold.BitstreamCRCs) {
		t.Fatalf("bitstream CRCs not sorted: %v", cold.BitstreamCRCs)
	}
	if cold.CacheMisses == 0 {
		t.Fatal("cold run paid no synthesis")
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("kill: %v", err)
	}

	// Second daemon, same directory: the identical spec warm-starts.
	s2, o2 := bootDiskServer(t, dir)
	warm := runJob(t, s2, spec)
	if warm.CacheMisses != 0 {
		t.Fatalf("warm restart paid %d synthesis misses, want 0", warm.CacheMisses)
	}
	if !reflect.DeepEqual(warm.BitstreamCRCs, cold.BitstreamCRCs) {
		t.Fatalf("bitstreams diverged across restart:\ncold %v\nwarm %v",
			cold.BitstreamCRCs, warm.BitstreamCRCs)
	}
	snap := o2.Metrics().Snapshot()
	if snap.Counters["cache_disk_hits"] < 1 {
		t.Fatalf("cache_disk_hits = %d, want >= 1", snap.Counters["cache_disk_hits"])
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatalf("kill: %v", err)
	}

	// Corrupt one persisted entry: the third daemon must quarantine it at
	// open, recompute that synthesis, and still produce identical results.
	names, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no persisted entries to corrupt (err %v)", err)
	}
	sort.Strings(names)
	victim := names[0]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s3, o3 := bootDiskServer(t, dir)
	again := runJob(t, s3, spec)
	if again.CacheMisses == 0 {
		t.Fatal("corrupted entry was served instead of recomputed")
	}
	if !reflect.DeepEqual(again.BitstreamCRCs, cold.BitstreamCRCs) {
		t.Fatalf("recomputed run diverged:\ncold  %v\nagain %v",
			cold.BitstreamCRCs, again.BitstreamCRCs)
	}
	snap = o3.Metrics().Snapshot()
	if snap.Counters["cache_disk_corrupt"] < 1 {
		t.Fatalf("cache_disk_corrupt = %d, want >= 1", snap.Counters["cache_disk_corrupt"])
	}
	if _, err := os.Stat(victim + ".bad"); err != nil {
		t.Fatalf("corrupt entry was not quarantined: %v", err)
	}
}
