package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"presp/internal/flow"
)

// RecoveryStats summarizes one WAL replay at boot.
type RecoveryStats struct {
	// Records is how many clean WAL records were replayed (a torn final
	// record is silently dropped and does not count).
	Records int `json:"records"`
	// Jobs is how many jobs were re-created from the log.
	Jobs int `json:"jobs"`
	// Requeued is how many live jobs went back on the admission queue.
	Requeued int `json:"requeued"`
	// Resumed is how many requeued flights found a usable journal from
	// the interrupted run, so completed stages will not be recomputed.
	Resumed int `json:"resumed"`
	// Terminal is how many jobs were already finished in the log; their
	// results are re-served from the replayed records.
	Terminal int `json:"terminal"`
}

// replayJob is one job's state folded from its WAL records.
type replayJob struct {
	id, tenant, key, idem string
	spec                  Spec
	started               bool
	attempts              int
	state                 JobState // terminal state, or "" if still live
	errStr                string
	result                *ResultView
	order                 int
}

// Recover opens the job WAL under Config.StateDir, replays it and
// rebuilds the server's job table: terminal jobs come back with their
// recorded outcomes (so idempotent resubmits and GETs keep working
// across the crash), and live jobs — admitted or interrupted
// mid-run — are re-enqueued, with interrupted flights resuming from
// their per-job journals so completed stages are never recomputed.
// It must be called once, before the server takes traffic; with no
// StateDir it is a durability-off no-op. Calling it twice, or after
// jobs were already admitted, is an error.
func (s *Server) Recover() (RecoveryStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovered {
		return RecoveryStats{}, fmt.Errorf("server: Recover called twice")
	}
	s.recovered = true
	if s.cfg.StateDir == "" {
		return RecoveryStats{}, nil
	}
	if len(s.jobs) > 0 {
		return RecoveryStats{}, fmt.Errorf("server: Recover after jobs were admitted")
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return RecoveryStats{}, fmt.Errorf("server: state dir: %w", err)
	}
	if err := os.MkdirAll(s.journalDir, 0o755); err != nil {
		return RecoveryStats{}, fmt.Errorf("server: journal dir: %w", err)
	}
	w, recs, err := openWAL(filepath.Join(s.cfg.StateDir, "jobs.wal"))
	if err != nil {
		return RecoveryStats{}, err
	}
	s.wal = w

	stats := RecoveryStats{Records: len(recs)}
	jobs, order := foldWAL(recs)

	// Rebuild the job table in admission order so recovered IDs, queue
	// positions and round-robin fairness match the pre-crash server.
	for _, id := range order {
		rj := jobs[id]
		j := &Job{
			ID:        rj.id,
			Tenant:    rj.tenant,
			Spec:      rj.spec,
			Key:       rj.key,
			IdemKey:   rj.idem,
			Attempts:  rj.attempts,
			Recovered: true,
			Submitted: s.now(),
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(rj.id, "j")); err == nil && n > s.seq {
			s.seq = n
		}
		s.jobs[j.ID] = j
		if j.IdemKey != "" {
			s.idem[tenantKey(j.Tenant, j.IdemKey)] = j.ID
		}
		stats.Jobs++
		s.mRecovered.Inc()
		if rj.state != "" {
			j.State = rj.state
			j.Err = rj.errStr
			j.Result = rj.result
			j.Finished = j.Submitted
			stats.Terminal++
			continue
		}
		j.State = StateQueued
		if rj.started {
			// The crash interrupted this run; the next attempt resumes
			// from its journal.
			j.Attempts++
		}
	}

	// Re-admit live jobs, regrouping them into single-flight groups so
	// a post-crash queue dedups exactly like the pre-crash one did.
	reg := s.cfg.Observer.Metrics()
	for _, id := range order {
		rj := jobs[id]
		if rj.state != "" {
			continue
		}
		j := s.jobs[id]
		if g, ok := s.flights[j.Key]; ok {
			j.group = g
			g.jobs = append(g.jobs, j)
			continue
		}
		cs, err := compile(j.Spec)
		if err != nil {
			// The admitted spec no longer compiles (version drift across
			// the restart); fail it cleanly rather than wedging the queue.
			j.State = StateFailed
			j.Err = fmt.Sprintf("recovery: %v", err)
			j.Finished = j.Submitted
			s.mFailed.Inc()
			s.walAppendLocked(walRecord{Op: walDone, Job: j.ID, State: StateFailed, Error: j.Err})
			continue
		}
		g := s.newGroupLocked(cs, j)
		if rj.started {
			g.resume = s.loadResumeJournal(cs, rj.id)
			if g.resume != nil {
				stats.Resumed++
				reg.Counter("server_recovered_resumed_total").Inc()
			}
		}
		s.enqueueLocked(g)
		s.cond.Signal()
	}
	for _, id := range order {
		if rj := jobs[id]; rj.state == "" {
			stats.Requeued++
			reg.Counter("server_recovered_requeued_total").Inc()
		}
	}

	if tr := s.cfg.Observer.Tracer(); tr != nil && stats.Jobs > 0 {
		tr.Instant("server", "recovered", serverTIDBase, map[string]any{
			"records": stats.Records, "jobs": stats.Jobs,
			"requeued": stats.Requeued, "resumed": stats.Resumed, "terminal": stats.Terminal,
		})
	}
	return stats, nil
}

// foldWAL folds a record sequence into per-job end states, preserving
// admission order. Records for jobs that were never admitted (their
// admission sat in the torn tail) are dropped — without a spec there
// is nothing to re-run, and the client never got an acknowledgement.
func foldWAL(recs []walRecord) (map[string]*replayJob, []string) {
	jobs := make(map[string]*replayJob)
	var order []string
	for _, r := range recs {
		switch r.Op {
		case walAdmitted:
			if _, dup := jobs[r.Job]; dup || r.Spec == nil {
				continue
			}
			jobs[r.Job] = &replayJob{
				id: r.Job, tenant: r.Tenant, key: r.Key, idem: r.Idem,
				spec: *r.Spec, order: len(order),
			}
			order = append(order, r.Job)
		case walStarted:
			if j := jobs[r.Job]; j != nil && j.state == "" {
				j.started = true
			}
		case walRequeued:
			if j := jobs[r.Job]; j != nil && j.state == "" {
				j.started = false
				j.attempts++
			}
		case walDone:
			if j := jobs[r.Job]; j != nil && j.state == "" {
				j.state = r.State
				if j.state == "" {
					j.state = StateFailed
				}
				j.errStr = r.Error
				j.result = r.Result
			}
		case walCancelled:
			if j := jobs[r.Job]; j != nil && j.state == "" {
				j.state = StateCancelled
			}
		case walPoisoned:
			if j := jobs[r.Job]; j != nil && j.state == "" {
				j.state = StatePoisoned
				j.errStr = r.Error
			}
		}
	}
	return jobs, order
}

// newGroupLocked builds a fresh flight group led by j and registers it.
// Callers hold s.mu.
func (s *Server) newGroupLocked(cs *compiledSpec, j *Job) *group {
	ctx, cancel := context.WithCancel(context.Background())
	g := &group{
		key:      cs.key,
		tenant:   j.Tenant,
		cs:       cs,
		jobs:     []*Job{j},
		ctx:      ctx,
		cancel:   cancel,
		enqueued: s.now(),
	}
	j.group = g
	s.flights[cs.key] = g
	return g
}

// loadResumeJournal probes the interrupted run's journal — named after
// the flight's leader job — and returns it when it is loadable and
// matches the spec's design and flow. A missing, torn-at-birth or
// mismatched journal just means a cold re-run; recovery never fails on
// it.
func (s *Server) loadResumeJournal(cs *compiledSpec, leader string) *flow.Journal {
	if s.journalDir == "" {
		return nil
	}
	f, err := os.Open(filepath.Join(s.journalDir, leader+".jsonl"))
	if err != nil {
		return nil
	}
	defer f.Close()
	j, err := flow.LoadJournal(f)
	if err != nil {
		return nil
	}
	if err := j.CheckDesign(flow.DesignDigest(cs.design), cs.spec.Flow); err != nil {
		return nil
	}
	return j
}
