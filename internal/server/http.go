package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"presp/internal/obs"
)

// errorEnvelope is the wire form of every API error: a stable machine
// code plus a human message, pinned by the golden-file tests. Errors
// that carry a Retry-After header (429 queue_full, 503 circuit_open)
// mirror the hint in retry_after_s so machine clients never have to
// parse headers to back off correctly.
type errorEnvelope struct {
	Error struct {
		Code       string `json:"code"`
		Message    string `json:"message"`
		RetryAfter int    `json:"retry_after_s,omitempty"`
	} `json:"error"`
}

// tenantOf resolves the calling tenant from the X-Tenant header.
// Absent means the shared "default" tenant — fine for a single-team
// deployment, while multi-tenant deployments put an authenticating
// proxy in front that stamps the header.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// Handler returns the service mux: the job API under /v1, the metrics
// scrape endpoint and the pprof handlers — one listener serves all
// three, so operating the daemon needs exactly one port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/readyz", s.handleReady)
	mux.Handle("GET /metrics", obs.MetricsHandler(s.cfg.Observer.Metrics()))
	obs.RegisterPprof(mux)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding job spec: %v", err))
		return
	}
	job, replayed, err := s.SubmitIdempotent(tenantOf(r), r.Header.Get("Idempotency-Key"), spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	if replayed {
		// The key was seen before: return the prior submission's job —
		// 200, not 202, so clients can tell a replay from an admission.
		writeJSON(w, http.StatusOK, job)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// writeSubmitError maps the typed admission errors to status codes:
// backpressure is 429 with a Retry-After hint, draining is 503, an
// invalid spec is 400.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var qf *QueueFullError
	var bad *BadSpecError
	var open *CircuitOpenError
	var mism *IdempotencyMismatchError
	switch {
	case errors.As(err, &open):
		secs := int(math.Round(open.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		writeErrorRetry(w, http.StatusServiceUnavailable, "circuit_open", open.Error(), secs)
	case errors.As(err, &mism):
		writeError(w, http.StatusConflict, "idempotency_mismatch", mism.Error())
	case errors.As(err, &qf):
		// Retry-After must be a positive integer: sub-second or negative
		// configs round to at least 1, since "0" tells well-behaved
		// clients to hammer a queue that is by definition full.
		secs := int(math.Round(s.cfg.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		writeErrorRetry(w, http.StatusTooManyRequests, "queue_full", qf.Error(), secs)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", ErrDraining.Error())
	case errors.As(err, &bad):
		writeError(w, http.StatusBadRequest, "bad_spec", bad.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(tenantOf(r), r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", ErrNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.List(tenantOf(r))
	writeJSON(w, http.StatusOK, map[string][]JobView{"jobs": jobs})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(tenantOf(r), r.PathValue("id"))
	switch {
	case errors.Is(err, ErrFinished):
		// The job exists but already reached a terminal state some other
		// way — a conflict, not a missing resource.
		writeError(w, http.StatusConflict, "conflict", ErrFinished.Error())
	case err != nil:
		writeError(w, http.StatusNotFound, "not_found", ErrNotFound.Error())
	default:
		writeJSON(w, http.StatusOK, job)
	}
}

// handleHealth is liveness: the process is up and serving, so it is
// always 200 — even while draining, when in-flight work is still being
// finished and polled. Load balancers shed on readyz, not here.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	status := "ok"
	if st.Draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"queued":  st.Queued,
		"running": st.Running,
		"jobs":    st.Jobs,
	})
}

// handleReady is readiness: 503 once the server stops admitting work
// (draining), so load balancers route new submissions elsewhere while
// existing clients keep polling through the still-live process.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	if st.Draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client hangup mid-write is not a server error
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var env errorEnvelope
	env.Error.Code = code
	env.Error.Message = msg
	writeJSON(w, status, env)
}

// writeErrorRetry is writeError for backpressure responses: the same
// hint goes out twice, as the standard Retry-After header and as
// retry_after_s inside the envelope.
func writeErrorRetry(w http.ResponseWriter, status int, code, msg string, secs int) {
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	var env errorEnvelope
	env.Error.Code = code
	env.Error.Message = msg
	env.Error.RetryAfter = secs
	writeJSON(w, status, env)
}
