package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"presp/internal/flow"
	"presp/internal/obs"
	"presp/internal/vivado"
)

// bootWALServer builds a recovered server rooted at dir, with runFlow
// substituted BEFORE Recover so re-enqueued jobs hit the stub too.
func bootWALServer(t *testing.T, dir string, run func(context.Context, *compiledSpec, flow.Options) (*flow.Result, error), cfg Config) (*Server, RecoveryStats) {
	t.Helper()
	cfg.StateDir = dir
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	s := newTestServer(t, cfg)
	if run != nil {
		s.runFlow = run
	}
	stats, err := s.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return s, stats
}

func TestRecoverNoStateDir(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	stats, err := s.Recover()
	if err != nil || stats != (RecoveryStats{}) {
		t.Fatalf("Recover without StateDir = %+v, %v; want zero stats, nil", stats, err)
	}
	if _, err := s.Recover(); err == nil {
		t.Fatal("second Recover succeeded, want error")
	}
}

// TestSubmitIsDurable: the admitted record must be on disk (fsynced,
// CRC-clean) by the time Submit returns — that is the whole contract.
func TestSubmitIsDurable(t *testing.T) {
	dir := t.TempDir()
	st := &stubRunner{gate: make(chan struct{})}
	s, _ := bootWALServer(t, dir, st.run, Config{})
	defer close(st.gate)

	v, err := s.Submit("acme", Spec{Preset: "SOC_2", Tau: 7})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs.wal"))
	if err != nil {
		t.Fatalf("wal not on disk after submit: %v", err)
	}
	recs, clean := decodeWALPrefix(data)
	if clean != len(data) {
		t.Fatalf("wal has a dirty tail right after submit: clean %d of %d", clean, len(data))
	}
	var admitted *walRecord
	for i := range recs {
		if recs[i].Op == walAdmitted && recs[i].Job == v.ID {
			admitted = &recs[i]
		}
	}
	if admitted == nil {
		t.Fatalf("no admitted record for %s in %d records", v.ID, len(recs))
	}
	if admitted.Tenant != "acme" || admitted.Spec == nil || admitted.Spec.Tau != 7 {
		t.Fatalf("admitted record lost the submission: %+v", admitted)
	}
}

// buildScenarioWAL drives a live durable server through a representative
// history — a run with a dedup subscriber and an idempotency key, a
// queued-then-cancelled job, a second completed run, a failed run — and
// returns the clean WAL records it wrote.
func buildScenarioWAL(t *testing.T) []walRecord {
	t.Helper()
	dir := t.TempDir()
	gate := make(chan struct{})
	started := make(chan int, 16)
	st := &stubRunner{gate: gate, started: started}
	failing := fmt.Errorf("synthetic P&R failure")
	run := func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		if cs.spec.Tau == 40 { // the designated failing spec
			return nil, failing
		}
		return st.run(ctx, cs, opt)
	}
	s, _ := bootWALServer(t, dir, run, Config{Workers: 1})

	// j1 runs (held at the gate), j2 queues behind it, j3 dedups onto
	// j1's flight, j2 is cancelled while queued.
	j1, _, err := s.SubmitIdempotent("acme", "build-1", Spec{Preset: "SOC_2", Tau: 10})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := s.Submit("beta", Spec{Preset: "SOC_2", Tau: 20})
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.Submit("gamma", Spec{Preset: "SOC_2", Tau: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !j3.Deduplicated {
		t.Fatalf("j3 should have deduped onto j1's flight: %+v", j3)
	}
	if _, err := s.Cancel("beta", j2.ID); err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitState(t, s, "acme", j1.ID, StateSucceeded)
	waitState(t, s, "gamma", j3.ID, StateSucceeded)

	// j4 fails organically.
	j4, err := s.Submit("acme", Spec{Preset: "SOC_2", Tau: 40})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, "acme", j4.ID, StateFailed)

	// j5 is admitted and left running at "crash" time: the worker wedges
	// on a fresh gate so no terminal record lands. The gate opens at
	// cleanup (before the server's own drain) so leakcheck stays happy.
	gate2 := make(chan struct{})
	st.gate = gate2
	t.Cleanup(func() { close(gate2) })
	if _, err := s.Submit("acme", Spec{Preset: "SOC_2", Tau: 50}); err != nil {
		t.Fatal(err)
	}

	// Read the WAL while the server still lives — Shutdown would append
	// drain records that a kill -9 would never write. The read is safe:
	// every append is atomic and fsynced.
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := os.ReadFile(filepath.Join(dir, "jobs.wal"))
		if err != nil {
			t.Fatal(err)
		}
		recs, clean := decodeWALPrefix(data)
		if clean != len(data) {
			t.Fatalf("live WAL has a dirty tail: clean %d of %d", clean, len(data))
		}
		// Wait until j5's started record lands so the scenario includes
		// an interrupted run, not just a queued job.
		for _, r := range recs {
			if r.Op == walStarted && r.Job == "j000005" {
				return recs
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("j5 never started; %d records", len(recs))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrashEveryWALPrefix is the record-level crash battery: for every
// prefix of a realistic WAL — every point a kill -9 could have struck
// between appends — a fresh server must recover with zero lost and zero
// duplicated jobs, preserve terminal outcomes exactly, run every live
// job to completion, and come up fully terminal on a second restart.
// Each prefix also gets a torn fragment of the next record glued on,
// covering the mid-append kill points byte-exactly (the codec-level
// every-byte sweep is TestWALTornTailEveryLength).
func TestCrashEveryWALPrefix(t *testing.T) {
	recs := buildScenarioWAL(t)
	if len(recs) < 8 {
		t.Fatalf("scenario too thin: %d records", len(recs))
	}
	for k := 0; k <= len(recs); k++ {
		k := k
		t.Run(fmt.Sprintf("prefix-%02d", k), func(t *testing.T) {
			var img bytes.Buffer
			for _, r := range recs[:k] {
				enc, err := encodeWALRecord(r)
				if err != nil {
					t.Fatal(err)
				}
				img.Write(enc)
			}
			if k < len(recs) {
				// The kill struck mid-append: half the next record made it.
				enc, _ := encodeWALRecord(recs[k])
				img.Write(enc[:len(enc)/2])
			}
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "jobs.wal"), img.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}

			st := &stubRunner{}
			s, stats := bootWALServer(t, dir, st.run, Config{Workers: 2})

			// Fold the clean prefix ourselves to know the ground truth.
			want, order := foldWAL(recs[:k])
			if stats.Jobs != len(order) {
				t.Fatalf("recovered %d jobs, want %d", stats.Jobs, len(order))
			}
			if n := s.Snapshot().Jobs; n != len(order) {
				t.Fatalf("job table has %d entries, want %d — lost or duplicated", n, len(order))
			}
			for _, id := range order {
				rj := want[id]
				v, err := s.Get(rj.tenant, id)
				if err != nil {
					t.Fatalf("job %s lost in recovery: %v", id, err)
				}
				if !v.Recovered {
					t.Fatalf("job %s not marked recovered", id)
				}
				if rj.state != "" && v.State != rj.state {
					t.Fatalf("job %s: terminal state %s not preserved (got %s)", id, rj.state, v.State)
				}
			}
			// Every live job must reach a terminal state under the stub.
			for _, id := range order {
				rj := want[id]
				if rj.state != "" {
					continue
				}
				v := waitState(t, s, rj.tenant, id, StateSucceeded)
				if rj.started && v.Attempts == 0 {
					t.Fatalf("interrupted job %s shows no recovery attempt", id)
				}
			}
			// An idempotent resubmit after the crash must return the
			// recovered job, never duplicate it.
			if _, ok := want["j000001"]; ok {
				v, replayed, err := s.SubmitIdempotent("acme", "build-1", Spec{Preset: "SOC_2", Tau: 10})
				if err != nil || !replayed || v.ID != "j000001" {
					t.Fatalf("idempotent resubmit = (%+v, %v, %v), want replay of j000001", v, replayed, err)
				}
			}
			if got := s.cfg.Observer.Metrics().Snapshot().Counters["server_recovered_jobs"]; got != int64(len(order)) {
				t.Fatalf("server_recovered_jobs = %d, want %d", got, len(order))
			}
			wantInstants := 0
			if len(order) > 0 {
				wantInstants = 1
			}
			if got := obs.CountInstants(s.cfg.Observer.Tracer().Events(), "server", "recovered"); got != wantInstants {
				t.Fatalf("trace has %d 'recovered' instants, want %d per boot", got, wantInstants)
			}
			if err := s.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}

			// Second restart: everything reached a terminal state above, so
			// nothing may requeue.
			s2, stats2 := bootWALServer(t, dir, st.run, Config{})
			if stats2.Jobs != len(order) || stats2.Requeued != 0 {
				t.Fatalf("second restart: %+v, want %d terminal jobs and 0 requeued", stats2, len(order))
			}
			_ = s2
		})
	}
}

// TestRecoverResumesFromJournal: an interrupted run whose journal
// survived must resume from it — the journal is handed to the flow as
// Options.Resume and counted in RecoveryStats.Resumed.
func TestRecoverResumesFromJournal(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Preset: "SOC_2", Tau: 10}
	cs, err := compile(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Synthesize the crash leftovers: an admitted+started WAL and the
	// interrupted run's journal with a matching design header.
	var img bytes.Buffer
	for _, r := range []walRecord{
		{Op: walAdmitted, Job: "j000001", Tenant: "acme", Key: cs.key, Spec: &spec},
		{Op: walStarted, Job: "j000001"},
	} {
		enc, err := encodeWALRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		img.Write(enc)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs.wal"), img.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "journals"), 0o755); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Create(filepath.Join(dir, "journals", "j000001.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	j := flow.NewJournal(jf)
	j.Begin(flow.DesignDigest(cs.design), cs.spec.Flow)
	jf.Close()

	var gotResume *flow.Journal
	st := &stubRunner{}
	run := func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		gotResume = opt.Resume
		return st.run(ctx, cs, opt)
	}
	s, stats := bootWALServer(t, dir, run, Config{})
	if stats.Jobs != 1 || stats.Requeued != 1 || stats.Resumed != 1 {
		t.Fatalf("stats = %+v, want 1 job, 1 requeued, 1 resumed", stats)
	}
	waitState(t, s, "acme", "j000001", StateSucceeded)
	if gotResume == nil {
		t.Fatal("recovered run was not handed its journal as Options.Resume")
	}
	if gotResume.DesignDigest() != flow.DesignDigest(cs.design) {
		t.Fatal("resume journal does not match the design")
	}
}

// TestRecoverIgnoresMismatchedJournal: a journal from a different design
// must be ignored — cold re-run, never a poisoned resume.
func TestRecoverIgnoresMismatchedJournal(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Preset: "SOC_2", Tau: 10}
	cs, err := compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	for _, r := range []walRecord{
		{Op: walAdmitted, Job: "j000001", Tenant: "acme", Key: cs.key, Spec: &spec},
		{Op: walStarted, Job: "j000001"},
	} {
		enc, _ := encodeWALRecord(r)
		img.Write(enc)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs.wal"), img.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "journals"), 0o755); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Create(filepath.Join(dir, "journals", "j000001.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	flow.NewJournal(jf).Begin("not-this-design", "presp")
	jf.Close()

	var gotResume *flow.Journal
	st := &stubRunner{}
	run := func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		gotResume = opt.Resume
		return st.run(ctx, cs, opt)
	}
	s, stats := bootWALServer(t, dir, run, Config{})
	if stats.Resumed != 0 {
		t.Fatalf("mismatched journal counted as resumed: %+v", stats)
	}
	waitState(t, s, "acme", "j000001", StateSucceeded)
	if gotResume != nil {
		t.Fatal("mismatched journal was handed to the flow")
	}
}

// --- Real kill -9 battery -------------------------------------------

// TestCrashDaemonChild is not a test: it is the daemon half of the
// kill -9 battery, run in a child process via re-exec. It serves a
// durable server with a real flow engine (slowed via heartbeats so the
// parent can land kills mid-run) until the parent kills it dead.
func TestCrashDaemonChild(t *testing.T) {
	dir := os.Getenv("PRESP_CRASH_CHILD")
	if dir == "" {
		t.Skip("not a crash child")
	}
	o := obs.New()
	store, err := vivado.OpenDiskStore(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	store.SetObserver(o)
	cache := vivado.NewCheckpointCache()
	cache.SetDiskStore(store)
	s := New(Config{Workers: 1, StateDir: dir, Cache: cache, Observer: o})
	real := s.runFlow
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		inner := opt.Heartbeat
		opt.Heartbeat = func(n int, v vivado.Minutes) {
			if inner != nil {
				inner(n, v)
			}
			time.Sleep(3 * time.Millisecond) // stretch the kill window
		}
		return real(ctx, cs, opt)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the address atomically so the parent never reads a torn
	// file.
	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		t.Fatal(err)
	}
	// Serve until killed. This process only ever dies by SIGKILL.
	http.Serve(ln, s.Handler()) //nolint:errcheck
	select {}
}

// killPoint is one moment the battery kills the daemon at.
type killPoint struct {
	name string
	// armed reports whether the daemon reached the point, given the
	// job's journal path and the WAL path.
	armed func(journal, wal string) bool
}

// TestKill9CrashRecovery is the process-level half of the battery: a
// real daemon (child process, real flow engine, durable WAL, disk-tier
// cache) is killed with SIGKILL at increasingly late points — right
// after admission, mid-run once the journal shows progress — and a
// recovery server over the same state directory must finish the job
// with bitstream CRCs byte-identical to an uninterrupted reference run,
// without re-synthesizing journaled work and without duplicating the
// job on idempotent resubmit.
func TestKill9CrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Preset: "SOC_1", Compress: true}

	// Reference: the same spec, uninterrupted.
	ref := runJob(t, newTestServer(t, Config{Workers: 1}), spec)
	if len(ref.BitstreamCRCs) == 0 {
		t.Fatal("reference run produced no bitstream CRCs")
	}

	points := []killPoint{
		{name: "after-admission", armed: func(_, wal string) bool {
			_, err := os.Stat(wal)
			return err == nil
		}},
		{name: "mid-run", armed: func(journal, _ string) bool {
			fi, err := os.Stat(journal)
			return err == nil && fi.Size() > 0
		}},
	}
	for _, pt := range points {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(exe, "-test.run", "^TestCrashDaemonChild$", "-test.v")
			cmd.Env = append(os.Environ(), "PRESP_CRASH_CHILD="+dir)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				cmd.Process.Kill() //nolint:errcheck
				cmd.Wait()         //nolint:errcheck
			}()

			// Wait for the daemon to publish its address.
			var addr string
			deadline := time.Now().Add(10 * time.Second)
			for addr == "" {
				if data, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil {
					addr = string(data)
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("daemon never came up")
				}
				time.Sleep(2 * time.Millisecond)
			}

			// Submit with an idempotency key, then kill at the point.
			body, _ := json.Marshal(spec)
			req, _ := http.NewRequest("POST", "http://"+addr+"/v1/jobs", bytes.NewReader(body))
			req.Header.Set("Idempotency-Key", "kill9-build")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			rb, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit = %d: %s", resp.StatusCode, rb)
			}
			var accepted JobView
			if err := json.Unmarshal(rb, &accepted); err != nil {
				t.Fatal(err)
			}

			journalPath := filepath.Join(dir, "journals", accepted.ID+".jsonl")
			walPath := filepath.Join(dir, "jobs.wal")
			deadline = time.Now().Add(10 * time.Second)
			for !pt.armed(journalPath, walPath) {
				if time.Now().After(deadline) {
					t.Fatalf("kill point %q never armed", pt.name)
				}
				time.Sleep(time.Millisecond)
			}
			if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no flush
				t.Fatal(err)
			}
			cmd.Wait() //nolint:errcheck

			// Recover in-process over the same state directory.
			o := obs.New()
			store, err := vivado.OpenDiskStore(filepath.Join(dir, "cache"))
			if err != nil {
				t.Fatal(err)
			}
			store.SetObserver(o)
			cache := vivado.NewCheckpointCache()
			cache.SetDiskStore(store)
			s := newTestServer(t, Config{Workers: 1, StateDir: dir, Cache: cache, Observer: o})
			stats, err := s.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if stats.Jobs < 1 {
				t.Fatalf("recovery found no jobs: %+v", stats)
			}

			// The job must finish (or already be finished) with CRCs
			// byte-identical to the uninterrupted reference.
			v, err := s.Get("default", accepted.ID)
			if err != nil {
				t.Fatalf("job %s lost across kill -9: %v", accepted.ID, err)
			}
			if !v.State.terminal() {
				v = waitState(t, s, "default", accepted.ID, StateSucceeded)
			}
			if v.State != StateSucceeded || v.Result == nil {
				t.Fatalf("recovered job: state %s, error %q", v.State, v.Error)
			}
			if !reflect.DeepEqual(v.Result.BitstreamCRCs, ref.BitstreamCRCs) {
				t.Fatalf("bitstreams diverged across kill -9:\nref       %v\nrecovered %v",
					ref.BitstreamCRCs, v.Result.BitstreamCRCs)
			}
			if got := o.Metrics().Snapshot().Counters["server_recovered_jobs"]; got < 1 {
				t.Fatalf("server_recovered_jobs = %d, want >= 1", got)
			}
			// A journaled mid-run kill must not re-pay journaled synthesis:
			// the resumed run restores checkpoints instead of recomputing.
			if pt.name == "mid-run" && stats.Resumed == 1 && v.Result.CacheMisses > 0 {
				ent := countJournalEntries(t, journalPath)
				if ent > 1 && v.Result.CacheHits == 0 {
					t.Fatalf("resumed run re-synthesized everything: %d journal entries, 0 cache hits", ent)
				}
			}

			// Idempotent resubmit after the crash returns the recovered
			// job — no duplicate work.
			again, replayed, err := s.SubmitIdempotent("default", "kill9-build", spec)
			if err != nil || !replayed || again.ID != accepted.ID {
				t.Fatalf("post-crash resubmit = (%+v, %v, %v), want replay of %s",
					again, replayed, err, accepted.ID)
			}
		})
	}
}

func countJournalEntries(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	j, err := flow.LoadJournal(f)
	if err != nil {
		return 0
	}
	return len(j.Entries())
}
