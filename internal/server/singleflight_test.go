package server

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"presp/internal/flow"
	"presp/internal/vivado"
)

// TestSingleFlightDedup hammers one spec with K concurrent submissions
// while the leader is held mid-run: exactly one flow executes and every
// subscriber receives the identical result.
func TestSingleFlightDedup(t *testing.T) {
	const k = 16
	st := &stubRunner{started: make(chan int, 1), gate: make(chan struct{})}
	s := newTestServer(t, Config{Workers: 2})
	s.runFlow = st.run

	leader, err := s.Submit("t0", Spec{Preset: "SOC_3", Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	<-st.started // flight is in the worker, not the queue

	ids := make([]string, 0, k)
	tenants := make([]string, 0, k)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < k-1; i++ {
		wg.Add(1)
		tenant := string(rune('a' + i%4))
		go func(tenant string) {
			defer wg.Done()
			v, err := s.Submit(tenant, Spec{Preset: "SOC_3", Compress: true})
			if err != nil {
				t.Errorf("dedup submit: %v", err)
				return
			}
			if !v.Deduplicated {
				t.Errorf("submission %s was not deduplicated", v.ID)
			}
			mu.Lock()
			ids = append(ids, v.ID)
			tenants = append(tenants, tenant)
			mu.Unlock()
		}(tenant)
	}
	wg.Wait()
	close(st.gate)

	want := waitState(t, s, "t0", leader.ID, StateSucceeded)
	for i, id := range ids {
		got := waitState(t, s, tenants[i], id, StateSucceeded)
		if !reflect.DeepEqual(got.Result, want.Result) {
			t.Fatalf("job %s result diverged:\n got %+v\nwant %+v", id, got.Result, want.Result)
		}
	}
	if got := st.count(); got != 1 {
		t.Errorf("runs = %d, want exactly 1 for %d identical submissions", got, k)
	}
	if got := s.mDeduped.Value(); got != k-1 {
		t.Errorf("dedup counter = %d, want %d", got, k-1)
	}
	seen := map[string]bool{leader.ID: true}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job ID %s", id)
		}
		seen[id] = true
	}
}

// TestSingleFlightLeaderErrorPropagates: a failing leader fails every
// follower with the same error, and the flight key is released so the
// next submission runs fresh instead of wedging.
func TestSingleFlightLeaderErrorPropagates(t *testing.T) {
	const k = 8
	boom := errors.New("synthesis exploded")
	st := &stubRunner{started: make(chan int, 1), gate: make(chan struct{}), err: boom}
	s := newTestServer(t, Config{Workers: 1})
	s.runFlow = st.run

	leader, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatal(err)
	}
	<-st.started
	var followers []string
	for i := 0; i < k; i++ {
		v, err := s.Submit("acme", Spec{Preset: "SOC_2"})
		if err != nil {
			t.Fatal(err)
		}
		followers = append(followers, v.ID)
	}
	close(st.gate)

	want := waitState(t, s, "acme", leader.ID, StateFailed)
	if want.Error != boom.Error() {
		t.Fatalf("leader error = %q, want %q", want.Error, boom)
	}
	for _, id := range followers {
		got := waitState(t, s, "acme", id, StateFailed)
		if got.Error != boom.Error() {
			t.Errorf("follower %s error = %q, want leader's %q", id, got.Error, boom)
		}
		if got.Result != nil {
			t.Errorf("failed follower %s has a result", id)
		}
	}
	if got := s.mFailed.Value(); got != k+1 {
		t.Errorf("failed counter = %d, want %d", got, k+1)
	}

	// Not wedged: the key is free again and a fresh submission runs.
	st.err = nil
	st.gate = nil
	retry, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatalf("resubmit after failed flight: %v", err)
	}
	<-st.started
	if v := waitState(t, s, "acme", retry.ID, StateSucceeded); v.Result == nil {
		t.Fatal("retry after failed flight lost its result")
	}
	if got := st.count(); got != 2 {
		t.Errorf("runs = %d, want 2 (failed + retry)", got)
	}
}

// TestSingleFlightRealFlow runs the actual engine behind the seam: K
// byte-identical SOC_3 submissions collapse to one flight whose cold
// run takes every checkpoint-cache miss; a later identical submission
// is a pure cache hit.
func TestSingleFlightRealFlow(t *testing.T) {
	const k = 8
	cache := vivado.NewCheckpointCache()
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var realRuns atomic.Int64
	s := newTestServer(t, Config{Workers: 2, Cache: cache})
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		realRuns.Add(1)
		return flow.RunFlow(ctx, cs.spec.Flow, cs.design, opt)
	}

	spec := Spec{Preset: "SOC_3"}
	leader, err := s.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var followers []string
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < k-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Submit("acme", spec)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			mu.Lock()
			followers = append(followers, v.ID)
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(gate)

	want := waitState(t, s, "acme", leader.ID, StateSucceeded)
	for _, id := range followers {
		got := waitState(t, s, "acme", id, StateSucceeded)
		if !reflect.DeepEqual(got.Result, want.Result) {
			t.Fatalf("follower %s result diverged from leader", id)
		}
	}
	if got := realRuns.Load(); got != 1 {
		t.Fatalf("real flow ran %d times for %d identical submissions, want 1", got, k)
	}
	hits, misses := cache.Stats()
	if hits != 0 {
		t.Errorf("cold single flight recorded %d cache hits, want 0", hits)
	}
	if int(misses) != want.Result.CacheMisses || misses == 0 {
		t.Errorf("cache misses = %d, want the run's %d (one per unique module)", misses, want.Result.CacheMisses)
	}

	// The content address outlives the flight: an identical submission
	// after completion is a new run but a full cache hit.
	warm, err := s.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	wv := waitState(t, s, "acme", warm.ID, StateSucceeded)
	if wv.Result.CacheMisses != 0 {
		t.Errorf("warm run took %d cache misses, want 0", wv.Result.CacheMisses)
	}
	if wv.Result.CacheHits == 0 {
		t.Error("warm run recorded no cache hits")
	}
	if wv.Result.TotalMin != want.Result.TotalMin {
		t.Errorf("warm TotalMin %v != cold %v (model must be deterministic)", wv.Result.TotalMin, want.Result.TotalMin)
	}
}
