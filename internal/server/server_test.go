package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"presp/internal/flow"
	"presp/internal/obs"
)

// newTestServer builds a server and guarantees it drains on cleanup, so
// the package-level leakcheck sees no straggling workers.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Observer == nil {
		cfg.Observer = obs.New()
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// stubRunner replaces the flow engine behind the runFlow seam: runs are
// counted, optionally announced on started, optionally held at gate
// (respecting cancellation), and finish with a fixed result or error.
type stubRunner struct {
	mu      sync.Mutex
	runs    int
	started chan int      // receives the spec's Tau when a run begins
	gate    chan struct{} // when non-nil, runs block here until closed
	err     error
}

func (r *stubRunner) run(ctx context.Context, cs *compiledSpec, _ flow.Options) (*flow.Result, error) {
	r.mu.Lock()
	r.runs++
	r.mu.Unlock()
	if r.started != nil {
		select {
		case r.started <- cs.spec.Tau:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if r.gate != nil {
		select {
		case <-r.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return &flow.Result{
		Design:     cs.design,
		SynthWall:  30,
		PRWall:     12,
		BitgenWall: 3,
		Total:      42,
	}, nil
}

func (r *stubRunner) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Server, tenant, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := s.Get(tenant, id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if v.State == want {
			return v
		}
		if v.State.terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s, want %s (error %q)", id, v.State, want, v.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	st := &stubRunner{}
	s := newTestServer(t, Config{Workers: 1})
	s.runFlow = st.run

	v, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.ID == "" || v.Tenant != "acme" {
		t.Fatalf("bad submit view: %+v", v)
	}
	done := waitState(t, s, "acme", v.ID, StateSucceeded)
	if done.Result == nil {
		t.Fatal("succeeded job has no result")
	}
	if done.Result.TotalMin != 42 {
		t.Errorf("TotalMin = %v, want 42", done.Result.TotalMin)
	}
	if done.Result.Flow != "presp" {
		t.Errorf("Flow = %q, want presp (normalized default)", done.Result.Flow)
	}
	if done.SubmittedAt == "" || done.StartedAt == "" || done.FinishedAt == "" {
		t.Errorf("missing timestamps: %+v", done)
	}
	if got := st.count(); got != 1 {
		t.Errorf("runs = %d, want 1", got)
	}
	jobs := s.List("acme")
	if len(jobs) != 1 || jobs[0].ID != v.ID {
		t.Errorf("List = %+v, want the one job", jobs)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.runFlow = (&stubRunner{}).run

	cases := []struct {
		name string
		spec Spec
	}{
		{"missing preset", Spec{}},
		{"unknown preset", Spec{Preset: "SOC_99"}},
		{"unknown flow", Spec{Preset: "SOC_1", Flow: "quantum"}},
		{"unknown strategy", Spec{Preset: "SOC_1", Strategy: "yolo"}},
		{"negative retries", Spec{Preset: "SOC_1", Retries: -1}},
		{"negative tau", Spec{Preset: "SOC_1", Tau: -2}},
		{"unknown policy", Spec{Preset: "SOC_1", ErrorPolicy: "ignore"}},
		{"bad fault plan", Spec{Preset: "SOC_1", Faults: "lol=what"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Submit("acme", tc.spec)
			var bad *BadSpecError
			if !errors.As(err, &bad) {
				t.Fatalf("Submit(%+v) = %v, want *BadSpecError", tc.spec, err)
			}
		})
	}
	if st := s.Snapshot(); st.Jobs != 0 {
		t.Errorf("rejected specs created %d job records, want 0", st.Jobs)
	}
}

func TestBackpressureQueueFull(t *testing.T) {
	st := &stubRunner{started: make(chan int, 8), gate: make(chan struct{})}
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	s.runFlow = st.run

	// Occupy the single worker, then fill the two queue slots with
	// distinct specs (Tau changes the single-flight key).
	if _, err := s.Submit("acme", Spec{Preset: "SOC_1", Tau: 1}); err != nil {
		t.Fatalf("submit filler: %v", err)
	}
	<-st.started // filler is running, not queued
	for tau := 2; tau <= 3; tau++ {
		if _, err := s.Submit("acme", Spec{Preset: "SOC_1", Tau: tau}); err != nil {
			t.Fatalf("submit queued tau=%d: %v", tau, err)
		}
	}

	_, err := s.Submit("acme", Spec{Preset: "SOC_1", Tau: 4})
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("overflow submit = %v, want *QueueFullError", err)
	}
	if qf.Depth != 2 {
		t.Errorf("QueueFullError.Depth = %d, want 2", qf.Depth)
	}
	if got := s.mQueueRejects.Value(); got != 1 {
		t.Errorf("admission reject counter = %d, want 1", got)
	}

	// An identical resubmission of a queued spec must dedup, not 429:
	// single-flight subscribers ride the existing slot.
	dup, err := s.Submit("acme", Spec{Preset: "SOC_1", Tau: 2})
	if err != nil {
		t.Fatalf("dedup submit while full: %v", err)
	}
	if !dup.Deduplicated {
		t.Error("identical spec at full queue was not deduplicated")
	}

	close(st.gate)
	for tau := 2; tau <= 3; tau++ {
		<-st.started
	}
	// All admitted work finishes and the queue-depth gauge returns to 0.
	deadline := time.Now().Add(10 * time.Second)
	for s.Snapshot().Queued != 0 || s.Snapshot().Running != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: %+v", s.Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.gQueueDepth.Value(); got != 0 {
		t.Errorf("queue depth gauge = %v after drain, want 0", got)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	st := &stubRunner{started: make(chan int, 8), gate: make(chan struct{})}
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	s.runFlow = st.run

	// Hold the worker, then queue tenant A three deep and tenant B one
	// deep. Round-robin must interleave B's job after A's first.
	if _, err := s.Submit("a", Spec{Preset: "SOC_1", Tau: 1}); err != nil {
		t.Fatal(err)
	}
	<-st.started
	for _, sub := range []struct {
		tenant string
		tau    int
	}{{"a", 2}, {"a", 3}, {"a", 4}, {"b", 5}} {
		if _, err := s.Submit(sub.tenant, Spec{Preset: "SOC_1", Tau: sub.tau}); err != nil {
			t.Fatalf("submit %s tau=%d: %v", sub.tenant, sub.tau, err)
		}
	}

	close(st.gate)
	var order []int
	for i := 0; i < 4; i++ {
		order = append(order, <-st.started)
	}
	want := []int{2, 5, 3, 4} // a, b, a, a — not a, a, a, b
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v (tenant b starved)", order, want)
		}
	}
}

func TestCancelQueuedJobFreesSlot(t *testing.T) {
	st := &stubRunner{started: make(chan int, 8), gate: make(chan struct{})}
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	s.runFlow = st.run

	if _, err := s.Submit("acme", Spec{Preset: "SOC_1", Tau: 1}); err != nil {
		t.Fatal(err)
	}
	<-st.started
	queued, err := s.Submit("acme", Spec{Preset: "SOC_1", Tau: 2})
	if err != nil {
		t.Fatal(err)
	}

	v, err := s.Cancel("acme", queued.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if v.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
	if st := s.Snapshot(); st.Queued != 0 {
		t.Errorf("queued = %d after cancel, want 0", st.Queued)
	}
	// The freed slot admits new work instead of 429ing.
	if _, err := s.Submit("acme", Spec{Preset: "SOC_1", Tau: 3}); err != nil {
		t.Fatalf("submit into freed slot: %v", err)
	}
	close(st.gate)
	<-st.started // tau=3 runs; tau=2 must never start
	if got := st.count(); got != 2 {
		t.Errorf("runs = %d, want 2 (cancelled job must not run)", got)
	}
}

func TestCancelRunningJobStopsRun(t *testing.T) {
	st := &stubRunner{started: make(chan int, 1), gate: make(chan struct{})}
	s := newTestServer(t, Config{Workers: 1})
	s.runFlow = st.run

	v, err := s.Submit("acme", Spec{Preset: "SOC_1"})
	if err != nil {
		t.Fatal(err)
	}
	<-st.started
	if _, err := s.Cancel("acme", v.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	// The run's context is cancelled (last subscriber left): the stub
	// returns ctx.Err and the worker moves on, but the job keeps its
	// cancelled state rather than flipping to failed.
	deadline := time.Now().Add(10 * time.Second)
	for s.Snapshot().Running != 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never stopped after cancel")
		}
		time.Sleep(2 * time.Millisecond)
	}
	got, err := s.Get("acme", v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled || got.Error != "" {
		t.Errorf("job after cancelled run = %s/%q, want cancelled with no error", got.State, got.Error)
	}

	// Cancelling a terminal job is a harmless no-op.
	again, err := s.Cancel("acme", v.ID)
	if err != nil || again.State != StateCancelled {
		t.Errorf("re-cancel = %+v, %v; want cancelled, nil", again, err)
	}
	if got := s.mCancelled.Value(); got != 1 {
		t.Errorf("cancelled counter = %d, want 1 (no double count)", got)
	}
}

func TestCancelLeaderKeepsFollowerRunning(t *testing.T) {
	st := &stubRunner{started: make(chan int, 1), gate: make(chan struct{})}
	s := newTestServer(t, Config{Workers: 1})
	s.runFlow = st.run

	leader, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatal(err)
	}
	<-st.started
	follower, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Deduplicated || follower.State != StateRunning {
		t.Fatalf("follower = %+v, want deduplicated and running", follower)
	}

	if _, err := s.Cancel("acme", leader.ID); err != nil {
		t.Fatal(err)
	}
	close(st.gate) // the run survives: the follower still wants it
	done := waitState(t, s, "acme", follower.ID, StateSucceeded)
	if done.Result == nil {
		t.Fatal("follower lost the shared result")
	}
	if got, _ := s.Get("acme", leader.ID); got.State != StateCancelled {
		t.Errorf("leader state = %s, want cancelled", got.State)
	}
	if got := st.count(); got != 1 {
		t.Errorf("runs = %d, want 1", got)
	}
}

func TestTenantIsolation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.runFlow = (&stubRunner{}).run

	v, err := s.Submit("acme", Spec{Preset: "SOC_1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("rival", v.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("cross-tenant Get = %v, want ErrNotFound", err)
	}
	if _, err := s.Cancel("rival", v.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("cross-tenant Cancel = %v, want ErrNotFound", err)
	}
	if jobs := s.List("rival"); len(jobs) != 0 {
		t.Errorf("cross-tenant List leaked %d jobs", len(jobs))
	}
	if _, err := s.Get("acme", "j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id Get = %v, want ErrNotFound", err)
	}
}
