package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// The job write-ahead log makes accepted work crash-durable: every job
// state transition is appended to <state-dir>/jobs.wal before it is
// acknowledged, so a hard crash (kill -9, OOM, power loss) loses at
// worst the final, torn record — never an acknowledged job. The format
// follows the same trailer discipline as vivado.DiskStore: each record
// is one JSON line followed by a "crc32:%08x\n" CRC-32 (IEEE) trailer
// of that line, and each append is a single write(2) on an O_APPEND
// descriptor followed by fsync, so concurrent records never interleave
// and a crash tears at most the last one.
//
// Replay (decodeWALPrefix) recovers the longest clean prefix: the first
// record whose JSON does not parse, whose trailer is malformed or whose
// CRC does not match marks the end of the trustworthy log. openWAL
// truncates the file to that prefix before appending again, so a torn
// tail can never glue itself onto the next record.

// walOp is the transition a record logs.
const (
	// walAdmitted: the job was accepted; carries the full Spec, tenant,
	// single-flight key and idempotency key. The only record that must
	// be durable before the client sees 202.
	walAdmitted = "admitted"
	// walStarted: the job's flight group began executing.
	walStarted = "started"
	// walDone: the run finished; carries the terminal state
	// (succeeded/failed), the error string and the result summary.
	walDone = "done"
	// walCancelled: the client cancelled the job.
	walCancelled = "cancelled"
	// walRequeued: the stall watchdog cancelled the run and put the job
	// back on the admission queue.
	walRequeued = "requeued"
	// walPoisoned: the job stalled past its requeue budget and was
	// quarantined.
	walPoisoned = "poisoned"
)

// walRecord is one durable job transition. Admitted records carry the
// submission; terminal records carry the outcome; the rest are bare
// (op, job) pairs.
type walRecord struct {
	Op     string      `json:"op"`
	Job    string      `json:"job"`
	Tenant string      `json:"tenant,omitempty"`
	Key    string      `json:"key,omitempty"`
	Idem   string      `json:"idem,omitempty"`
	Spec   *Spec       `json:"spec,omitempty"`
	State  JobState    `json:"state,omitempty"`
	Error  string      `json:"error,omitempty"`
	Result *ResultView `json:"result,omitempty"`
	Time   string      `json:"time,omitempty"`
}

// walTrailerLen is the fixed byte length of the CRC trailer line:
// "crc32:" + 8 hex digits + "\n" — byte-identical to the DiskStore
// entry trailer.
const walTrailerLen = len("crc32:") + 8 + 1

// maxWALLine bounds one record's JSON line during replay; a "line"
// longer than this is corruption, not a record.
const maxWALLine = 1 << 20

// encodeWALRecord renders one record: the JSON line followed by the
// CRC-32 trailer of everything before it (newline included).
func encodeWALRecord(r walRecord) ([]byte, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	return append(body, fmt.Sprintf("crc32:%08x\n", crc32.ChecksumIEEE(body))...), nil
}

// decodeWALPrefix replays the longest clean prefix of a WAL image. It
// never fails: a torn or corrupt record simply ends the replay, and the
// returned offset is the byte length of the clean prefix — everything
// after it is untrustworthy and must be truncated before appending.
func decodeWALPrefix(data []byte) (recs []walRecord, clean int) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 || nl+1 > maxWALLine {
			return recs, off // torn or absurd body line
		}
		body := rest[:nl+1]
		if len(rest) < nl+1+walTrailerLen {
			return recs, off // trailer torn off
		}
		trailer := rest[nl+1 : nl+1+walTrailerLen]
		want, ok := parseCRCTrailer(trailer)
		if !ok || crc32.ChecksumIEEE(body) != want {
			return recs, off
		}
		var r walRecord
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&r); err != nil || r.Op == "" || r.Job == "" {
			return recs, off // CRC-valid but not a record we wrote
		}
		recs = append(recs, r)
		off += nl + 1 + walTrailerLen
	}
	return recs, off
}

// parseCRCTrailer parses the byte-exact "crc32:%08x\n" trailer — no fmt
// scanning, whose whitespace leniency would bless a damaged terminator
// (the lesson FuzzDiskEntry taught the disk store).
func parseCRCTrailer(trailer []byte) (uint32, bool) {
	if len(trailer) != walTrailerLen || string(trailer[:6]) != "crc32:" || trailer[walTrailerLen-1] != '\n' {
		return 0, false
	}
	var want uint32
	for _, c := range trailer[6 : 6+8] {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return 0, false
		}
		want = want<<4 | d
	}
	return want, true
}

// wal is the open log: appends are serialized, written in one write(2)
// and fsynced before returning, so an acknowledged transition survives
// any crash.
type wal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openWAL loads the log at path (a missing file is an empty log),
// truncates any torn tail to the clean prefix and opens the file for
// durable appending. It returns the replayed records.
func openWAL(path string) (*wal, []walRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("server: wal: %w", err)
	}
	recs, clean := decodeWALPrefix(data)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: wal: %w", err)
	}
	if clean < len(data) {
		// Drop the torn tail; O_APPEND writes land at the new end.
		if err := f.Truncate(int64(clean)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("server: wal: truncating torn tail: %w", err)
		}
	}
	return &wal{f: f, path: path}, recs, nil
}

// append encodes r, writes it in a single call and fsyncs. The record
// is durable when append returns nil.
func (w *wal) append(r walRecord) error {
	data, err := encodeWALRecord(r)
	if err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("server: wal: closed")
	}
	if _, err := w.f.Write(data); err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	return nil
}

// close releases the log file. Appends after close fail.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
