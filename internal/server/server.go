// Package server exposes the flow engine as a long-running,
// multi-tenant job service: clients submit PR-ESP / standard-DFX /
// monolithic flow runs over HTTP, poll their status, fetch results and
// cancel — all on the ctx-first flow.Run* entry points.
//
// The service layer adds what a shared deployment needs and the engine
// deliberately does not have:
//
//   - a bounded admission queue with backpressure: when the queue is
//     full, submissions are rejected with 429 and a Retry-After hint
//     instead of growing memory without limit;
//   - per-tenant fair scheduling: each tenant has its own FIFO and a
//     round-robin dispatcher picks across them, so one heavy client
//     cannot starve the rest;
//   - single-flight deduplication keyed on the checkpoint-cache content
//     address: N concurrent submissions of identical work admit one
//     flight group, run the flow once, and share the result — a failing
//     leader propagates its error to every follower;
//   - graceful drain: shutdown stops admitting, rejects
//     queued-but-unadmitted jobs with a clean "server draining" error,
//     lets in-flight runs finish (journaled, via the engine's
//     drain-on-cancel semantics) and only then returns.
//
// Everything is wired into internal/obs: server_* counters, gauges and
// histograms, per-job trace spans, and the /metrics + /debug/pprof
// endpoints mounted on the same mux. See DESIGN.md §13.
package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"presp/internal/flow"
	"presp/internal/obs"
	"presp/internal/report"
	"presp/internal/vivado"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent flow executions (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running flight groups across all
	// tenants (default 64). Beyond it, submissions get 429.
	QueueDepth int
	// JobWorkers is the per-run flow scheduler pool width passed to
	// flow.Options.Workers (0 = GOMAXPROCS).
	JobWorkers int
	// Cache is the shared synthesis-checkpoint cache (nil = a fresh
	// one). Sharing it across jobs is what makes warm submissions cheap
	// and is the second half of the dedup story: even non-identical
	// jobs reuse each other's synthesis checkpoints.
	Cache *vivado.CheckpointCache
	// Observer records server_* metrics and per-job trace spans, and
	// backs the /metrics endpoint (nil = no observation).
	Observer *obs.Observer
	// JournalDir, when set, writes each job's flow journal to
	// <dir>/<job-id>.jsonl; in-flight jobs that complete during a drain
	// are journaled there.
	JournalDir string
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Now overrides the clock (tests pin it for golden files).
	Now func() time.Time
}

// group is one single-flight execution: every job whose spec key
// matches an in-flight group subscribes to it instead of running again.
// The group owns the run's context; it is cancelled only when the last
// subscriber goes away.
type group struct {
	key      string
	tenant   string // admitting tenant, used for fair scheduling
	cs       *compiledSpec
	jobs     []*Job // live subscribers
	ctx      context.Context
	cancel   context.CancelFunc
	running  bool
	started  time.Time
	enqueued time.Time

	journalFile *os.File // non-nil when Config.JournalDir is set
}

// Server is the flow service. Create with New, serve via Handler, stop
// with Shutdown.
type Server struct {
	cfg   Config
	now   func() time.Time
	cache *vivado.CheckpointCache

	// runFlow is the execution seam; tests substitute it to control
	// run timing without touching the scheduling machinery.
	runFlow func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error)

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	flights  map[string]*group   // queued + running groups by spec key
	queues   map[string][]*group // per-tenant admission FIFOs
	rr       []string            // round-robin ring of tenants with queued work
	queued   int                 // total queued groups
	running  int                 // groups currently executing
	draining bool
	seq      int
	wg       sync.WaitGroup

	// Instruments, resolved once; nil-safe when no Observer is set.
	mSubmitted    *obs.Counter
	mDeduped      *obs.Counter
	mCompleted    *obs.Counter
	mFailed       *obs.Counter
	mCancelled    *obs.Counter
	mRejected     *obs.Counter // queued jobs rejected by drain
	mQueueRejects *obs.Counter // 429s
	mDrainRejects *obs.Counter // 503s
	gQueueDepth   *obs.Gauge
	gRunning      *obs.Gauge
	hQueueSec     *obs.Histogram
	hRunSec       *obs.Histogram
}

// serverTIDBase is the trace lane block for server worker slots, kept
// clear of the flow scheduler's worker lanes and coordinator lane.
const serverTIDBase = 1 << 21

// New builds and starts a server: worker goroutines spin up immediately
// and wait for submissions. Callers must Shutdown to stop them.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:     cfg,
		now:     cfg.Now,
		cache:   cfg.Cache,
		jobs:    make(map[string]*Job),
		flights: make(map[string]*group),
		queues:  make(map[string][]*group),
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.cache == nil {
		s.cache = vivado.NewCheckpointCache()
	}
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		return flow.RunFlow(ctx, cs.spec.Flow, cs.design, opt)
	}
	s.cond = sync.NewCond(&s.mu)

	reg := cfg.Observer.Metrics()
	s.mSubmitted = reg.Counter("server_jobs_submitted_total")
	s.mDeduped = reg.Counter("server_dedup_hits_total")
	s.mCompleted = reg.Counter("server_jobs_completed_total")
	s.mFailed = reg.Counter("server_jobs_failed_total")
	s.mCancelled = reg.Counter("server_jobs_cancelled_total")
	s.mRejected = reg.Counter("server_jobs_drain_rejected_total")
	s.mQueueRejects = reg.Counter("server_admission_rejects_total")
	s.mDrainRejects = reg.Counter("server_drain_rejects_total")
	s.gQueueDepth = reg.Gauge("server_queue_depth")
	s.gRunning = reg.Gauge("server_jobs_running")
	s.hQueueSec = reg.Histogram("server_job_queue_seconds")
	s.hRunSec = reg.Histogram("server_job_run_seconds")
	if tr := cfg.Observer.Tracer(); tr != nil {
		for i := 0; i < cfg.Workers; i++ {
			tr.SetThreadName(serverTIDBase+i, fmt.Sprintf("server-worker-%d", i))
		}
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	return s
}

// Submit validates and admits one job for tenant. It returns the
// created job, or ErrDraining, a *QueueFullError or a *BadSpecError.
func (s *Server) Submit(tenant string, spec Spec) (JobView, error) {
	cs, err := compile(spec)
	if err != nil {
		return JobView{}, &BadSpecError{Reason: err}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.mDrainRejects.Inc()
		return JobView{}, ErrDraining
	}
	// Single-flight: identical work joins the in-flight group — queued
	// or running — instead of consuming a queue slot.
	if g, ok := s.flights[cs.key]; ok {
		j := s.newJobLocked(tenant, cs.spec, true)
		j.group = g
		g.jobs = append(g.jobs, j)
		if g.running {
			j.State = StateRunning
			j.Started = g.started
		}
		s.mDeduped.Inc()
		return j.viewLocked(), nil
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mQueueRejects.Inc()
		return JobView{}, &QueueFullError{Depth: s.cfg.QueueDepth}
	}
	j := s.newJobLocked(tenant, cs.spec, false)
	ctx, cancel := context.WithCancel(context.Background())
	g := &group{
		key:      cs.key,
		tenant:   tenant,
		cs:       cs,
		jobs:     []*Job{j},
		ctx:      ctx,
		cancel:   cancel,
		enqueued: j.Submitted,
	}
	j.group = g
	s.flights[cs.key] = g
	s.enqueueLocked(g)
	s.cond.Signal()
	return j.viewLocked(), nil
}

// newJobLocked allocates a job record. Callers hold s.mu.
func (s *Server) newJobLocked(tenant string, spec Spec, dedup bool) *Job {
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", s.seq),
		Tenant:    tenant,
		Spec:      spec,
		State:     StateQueued,
		Dedup:     dedup,
		Submitted: s.now(),
	}
	s.jobs[j.ID] = j
	s.mSubmitted.Inc()
	s.cfg.Observer.Metrics().Counter("server_tenant_jobs_total." + tenant).Inc()
	return j
}

// enqueueLocked appends g to its tenant FIFO and registers the tenant
// in the round-robin ring. Callers hold s.mu.
func (s *Server) enqueueLocked(g *group) {
	if len(s.queues[g.tenant]) == 0 {
		s.rr = append(s.rr, g.tenant)
	}
	s.queues[g.tenant] = append(s.queues[g.tenant], g)
	s.queued++
	s.gQueueDepth.Set(float64(s.queued))
}

// dequeueLocked pops the next group in tenant round-robin order.
// Callers hold s.mu and have checked s.queued > 0.
func (s *Server) dequeueLocked() *group {
	tenant := s.rr[0]
	s.rr = s.rr[1:]
	q := s.queues[tenant]
	g := q[0]
	q = q[1:]
	if len(q) > 0 {
		s.queues[tenant] = q
		s.rr = append(s.rr, tenant) // rotate: next tenant gets the next slot
	} else {
		delete(s.queues, tenant)
	}
	s.queued--
	s.gQueueDepth.Set(float64(s.queued))
	return g
}

// removeQueuedLocked unlinks a queued group (last subscriber
// cancelled). Callers hold s.mu.
func (s *Server) removeQueuedLocked(g *group) {
	q := s.queues[g.tenant]
	for i, qg := range q {
		if qg == g {
			q = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	if len(q) > 0 {
		s.queues[g.tenant] = q
	} else {
		delete(s.queues, g.tenant)
		for i, t := range s.rr {
			if t == g.tenant {
				s.rr = append(s.rr[:i:i], s.rr[i+1:]...)
				break
			}
		}
	}
	delete(s.flights, g.key)
	s.queued--
	s.gQueueDepth.Set(float64(s.queued))
}

// worker is one execution slot: it pulls flight groups off the tenant
// queues in round-robin order and runs them until the server drains.
func (s *Server) worker(slot int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queued == 0 {
			s.mu.Unlock()
			return // draining and nothing left to admit
		}
		g := s.dequeueLocked()
		g.running = true
		g.started = s.now()
		for _, j := range g.jobs {
			j.State = StateRunning
			j.Started = g.started
		}
		s.running++
		s.gRunning.Set(float64(s.running))
		s.hQueueSec.Observe(g.started.Sub(g.enqueued).Seconds())
		s.mu.Unlock()
		s.execute(slot, g)
	}
}

// execute runs one flight group to completion and publishes the
// outcome to every surviving subscriber.
func (s *Server) execute(slot int, g *group) {
	journal, journalErr := s.openJournal(g)
	opt := flow.Options{
		Strategy:       g.cs.strategy,
		SemiTau:        g.cs.spec.Tau,
		Compress:       g.cs.spec.Compress,
		SkipBitstreams: g.cs.spec.SkipBitstreams,
		Workers:        s.cfg.JobWorkers,
		Cache:          s.cache,
		MaxJobRetries:  g.cs.spec.Retries,
		FaultPlan:      g.cs.faults,
		Journal:        journal,
		Observer:       s.cfg.Observer,
	}
	if g.cs.spec.ErrorPolicy == "collect" {
		opt.ErrorPolicy = flow.Collect
	}

	tr := s.cfg.Observer.Tracer()
	spanStart := tr.Now()

	var res *flow.Result
	err := journalErr
	if err == nil {
		res, err = s.runFlow(g.ctx, g.cs, opt)
	}
	if g.journalFile != nil {
		g.journalFile.Close() //nolint:errcheck // line-buffered writes already flushed per entry
	}

	s.mu.Lock()
	delete(s.flights, g.key)
	s.running--
	s.gRunning.Set(float64(s.running))
	end := s.now()
	s.hRunSec.Observe(end.Sub(g.started).Seconds())
	var rv *ResultView
	if err == nil {
		rv = summarizeResult(g.cs.spec, res, len(journal.Entries()))
	}
	for _, j := range g.jobs {
		if j.State.terminal() {
			continue // cancelled subscribers keep their state
		}
		j.Finished = end
		if err != nil {
			j.State = StateFailed
			j.Err = err.Error()
			s.mFailed.Inc()
		} else {
			j.State = StateSucceeded
			j.Result = rv
			s.mCompleted.Inc()
		}
	}
	nJobs := len(g.jobs)
	g.jobs = nil
	s.mu.Unlock()
	g.cancel() // release the group context

	if tr != nil {
		args := map[string]any{"key": g.key, "tenant": g.tenant, "subscribers": nJobs}
		if err != nil {
			args["error"] = err.Error()
		}
		tr.Complete("server", "flight/"+g.cs.spec.Preset, serverTIDBase+slot, spanStart, tr.Now()-spanStart, args)
	}
}

// openJournal creates the group's journal: in-memory always, backed by
// a <JournalDir>/<leader-job>.jsonl file when configured.
func (s *Server) openJournal(g *group) (*flow.Journal, error) {
	if s.cfg.JournalDir == "" {
		return flow.NewJournal(nil), nil
	}
	s.mu.Lock()
	leader := ""
	if len(g.jobs) > 0 {
		leader = g.jobs[0].ID
	}
	s.mu.Unlock()
	f, err := os.Create(filepath.Join(s.cfg.JournalDir, leader+".jsonl"))
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	g.journalFile = f // closed by execute after the run's entries are final
	return flow.NewJournal(f), nil
}

// Get returns tenant's job by ID. A job owned by another tenant is
// ErrNotFound — existence is not leaked across tenants.
func (s *Server) Get(tenant, id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.Tenant != tenant {
		return JobView{}, ErrNotFound
	}
	return j.viewLocked(), nil
}

// List returns all of tenant's jobs in submission order.
func (s *Server) List(tenant string) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, 8)
	for _, id := range report.SortedKeys(s.jobs) {
		if j := s.jobs[id]; j.Tenant == tenant {
			out = append(out, j.viewLocked())
		}
	}
	return out
}

// Cancel marks tenant's job cancelled. Cancelling a queued job frees
// its queue slot when it was the group's last subscriber; cancelling a
// running job detaches the subscription and stops the underlying run
// only when nobody else is waiting on it. Cancelling a terminal job is
// a no-op returning the job as-is, so poll/cancel races are harmless.
func (s *Server) Cancel(tenant, id string) (JobView, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.Tenant != tenant {
		s.mu.Unlock()
		return JobView{}, ErrNotFound
	}
	if j.State.terminal() {
		v := j.viewLocked()
		s.mu.Unlock()
		return v, nil
	}
	j.State = StateCancelled
	j.Finished = s.now()
	s.mCancelled.Inc()
	g := j.group
	var cancelRun bool
	if g != nil {
		for i, gj := range g.jobs {
			if gj == j {
				g.jobs = append(g.jobs[:i:i], g.jobs[i+1:]...)
				break
			}
		}
		if len(g.jobs) == 0 {
			if !g.running {
				s.removeQueuedLocked(g)
			}
			cancelRun = true // nobody wants the result anymore
		}
	}
	v := j.viewLocked()
	s.mu.Unlock()
	if cancelRun {
		g.cancel()
	}
	return v, nil
}

// Stats is a point-in-time snapshot of the server's occupancy.
type Stats struct {
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	Jobs     int  `json:"jobs"`
	Draining bool `json:"draining"`
}

// Snapshot returns current occupancy.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Queued: s.queued, Running: s.running, Jobs: len(s.jobs), Draining: s.draining}
}

// Shutdown drains the server: admission stops (submissions get
// ErrDraining), every queued-but-unadmitted job is rejected with a
// clean "server draining" error, and in-flight runs are left to finish
// and journal through the engine's drain-on-cancel semantics. If ctx
// expires first, the remaining runs are cancelled at the next job
// boundary and Shutdown still waits for the workers to exit before
// returning ctx's error. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Reject everything still waiting for admission, in sorted
		// tenant order so the rejection sequence is deterministic.
		for _, tenant := range report.SortedKeys(s.queues) {
			for _, g := range s.queues[tenant] {
				for _, j := range g.jobs {
					if j.State.terminal() {
						continue
					}
					j.State = StateRejected
					j.Err = ErrDraining.Error()
					j.Finished = s.now()
					s.mRejected.Inc()
				}
				g.jobs = nil
				delete(s.flights, g.key)
				g.cancel()
			}
		}
		s.queues = make(map[string][]*group)
		s.rr = nil
		s.queued = 0
		s.gQueueDepth.Set(0)
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Grace period over: stop in-flight runs at the next job
		// boundary and wait for the workers to wind down.
		s.mu.Lock()
		for _, g := range s.flights {
			g.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
