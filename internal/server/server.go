// Package server exposes the flow engine as a long-running,
// multi-tenant job service: clients submit PR-ESP / standard-DFX /
// monolithic flow runs over HTTP, poll their status, fetch results and
// cancel — all on the ctx-first flow.Run* entry points.
//
// The service layer adds what a shared deployment needs and the engine
// deliberately does not have:
//
//   - a bounded admission queue with backpressure: when the queue is
//     full, submissions are rejected with 429 and a Retry-After hint
//     instead of growing memory without limit;
//   - per-tenant fair scheduling: each tenant has its own FIFO and a
//     round-robin dispatcher picks across them, so one heavy client
//     cannot starve the rest;
//   - single-flight deduplication keyed on the checkpoint-cache content
//     address: N concurrent submissions of identical work admit one
//     flight group, run the flow once, and share the result — a failing
//     leader propagates its error to every follower;
//   - graceful drain: shutdown stops admitting, rejects
//     queued-but-unadmitted jobs with a clean "server draining" error,
//     lets in-flight runs finish (journaled, via the engine's
//     drain-on-cancel semantics) and only then returns.
//
// Everything is wired into internal/obs: server_* counters, gauges and
// histograms, per-job trace spans, and the /metrics + /debug/pprof
// endpoints mounted on the same mux. See DESIGN.md §13.
package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"presp/internal/flow"
	"presp/internal/obs"
	"presp/internal/report"
	"presp/internal/vivado"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent flow executions (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running flight groups across all
	// tenants (default 64). Beyond it, submissions get 429.
	QueueDepth int
	// JobWorkers is the per-run flow scheduler pool width passed to
	// flow.Options.Workers (0 = GOMAXPROCS).
	JobWorkers int
	// Cache is the shared synthesis-checkpoint cache (nil = a fresh
	// one). Sharing it across jobs is what makes warm submissions cheap
	// and is the second half of the dedup story: even non-identical
	// jobs reuse each other's synthesis checkpoints.
	Cache *vivado.CheckpointCache
	// StageCache is the shared stage-artifact cache backing incremental
	// re-flow: floorplan solutions, per-partition implementation runs and
	// bitstream images are content-addressed, so resubmitting an edited
	// spec re-runs only the stages whose inputs changed and ResultView
	// reports the reuse. Nil creates a fresh one (sharing Cache's disk
	// tier when present) unless NoStageCache is set.
	StageCache *vivado.StageCache
	// NoStageCache disables stage-artifact caching entirely: every
	// submission runs every stage cold, as before incremental re-flow.
	NoStageCache bool
	// Observer records server_* metrics and per-job trace spans, and
	// backs the /metrics endpoint (nil = no observation).
	Observer *obs.Observer
	// JournalDir, when set, writes each job's flow journal to
	// <dir>/<job-id>.jsonl; in-flight jobs that complete during a drain
	// are journaled there. When empty and StateDir is set, it defaults
	// to <StateDir>/journals so crash recovery can always resume
	// interrupted runs from their journals.
	JournalDir string
	// StateDir, when set, makes accepted jobs crash-durable: every job
	// state transition is appended to <dir>/jobs.wal (CRC-trailered,
	// fsynced) before it is acknowledged, and Recover replays the log
	// on boot — re-enqueueing jobs that never started and resuming
	// interrupted runs from their journals. Recover must be called once
	// before the server takes traffic; until then nothing is logged.
	StateDir string
	// StallTimeout arms the stuck-job watchdog: a running flight that
	// makes no scheduler progress (virtual-time heartbeats) for longer
	// than this wall-clock span is cancelled and requeued, and after
	// StallRequeues requeues it is quarantined as poisoned. 0 disables
	// the watchdog.
	StallTimeout time.Duration
	// StallRequeues caps how many times a stalled flight is requeued
	// before being poisoned (default 1).
	StallRequeues int
	// BreakerThreshold opens a per-(tenant, spec) circuit breaker after
	// this many consecutive failures of the same spec: further
	// submissions are shed with 503 + Retry-After until BreakerCooldown
	// passes, then one probe is let through (half-open). 0 disables the
	// breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit sheds submissions
	// (default 30s).
	BreakerCooldown time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// Now overrides the clock (tests pin it for golden files).
	Now func() time.Time
}

// group is one single-flight execution: every job whose spec key
// matches an in-flight group subscribes to it instead of running again.
// The group owns the run's context; it is cancelled only when the last
// subscriber goes away.
type group struct {
	key      string
	tenant   string // admitting tenant, used for fair scheduling
	cs       *compiledSpec
	jobs     []*Job // live subscribers
	ctx      context.Context
	cancel   context.CancelFunc
	running  bool
	started  time.Time
	enqueued time.Time

	// lastBeat is the wall time of the last scheduler progress
	// heartbeat; the watchdog declares a stall when it falls more than
	// StallTimeout behind. virtMinutes is the modelled progress the
	// heartbeat reported — the two time bases are deliberately
	// distinct: progress is measured in virtual minutes, staleness in
	// real ones.
	lastBeat    time.Time
	virtMinutes float64
	// stalled marks a run the watchdog cancelled; requeues counts how
	// often this flight was put back on the queue.
	stalled  bool
	requeues int
	// resume carries a previous (crashed) run's journal so the flow
	// skips completed stages.
	resume *flow.Journal

	journalFile *os.File // non-nil when a journal directory is set
}

// breakerState tracks one (tenant, spec key)'s consecutive failures.
type breakerState struct {
	fails     int
	openUntil time.Time
}

// tenantKey scopes a name (spec content address, idempotency key) per
// tenant; used for both breaker state and idempotency lookups.
func tenantKey(tenant, name string) string { return tenant + "\x00" + name }

// Server is the flow service. Create with New, serve via Handler, stop
// with Shutdown.
type Server struct {
	cfg   Config
	now   func() time.Time
	cache *vivado.CheckpointCache
	stage *vivado.StageCache // nil when Config.NoStageCache

	// runFlow is the execution seam; tests substitute it to control
	// run timing without touching the scheduling machinery.
	runFlow func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error)

	// journalDir is JournalDir after StateDir defaulting.
	journalDir string

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	flights  map[string]*group   // queued + running groups by spec key
	queues   map[string][]*group // per-tenant admission FIFOs
	rr       []string            // round-robin ring of tenants with queued work
	queued   int                 // total queued groups
	running  int                 // groups currently executing
	draining bool
	seq      int
	wg       sync.WaitGroup

	// wal is the job write-ahead log, non-nil once Recover has opened
	// it (StateDir set). idem maps tenant-scoped idempotency keys to job
	// IDs; breakers holds per-(tenant, spec) failure circuits.
	wal          *wal
	recovered    bool
	idem         map[string]string
	breakers     map[string]*breakerState
	watchdogQuit chan struct{}

	// Instruments, resolved once; nil-safe when no Observer is set.
	mSubmitted    *obs.Counter
	mDeduped      *obs.Counter
	mCompleted    *obs.Counter
	mFailed       *obs.Counter
	mCancelled    *obs.Counter
	mRejected     *obs.Counter // queued jobs rejected by drain
	mQueueRejects *obs.Counter // 429s
	mDrainRejects *obs.Counter // 503s
	gQueueDepth   *obs.Gauge
	gRunning      *obs.Gauge
	hQueueSec     *obs.Histogram
	hRunSec       *obs.Histogram

	mWALRecords  *obs.Counter
	mWALErrors   *obs.Counter
	mRecovered   *obs.Counter // jobs re-created from the WAL at boot
	mStalls      *obs.Counter // watchdog stall detections
	mPoisoned    *obs.Counter // jobs quarantined past the requeue budget
	mBreakerOpen *obs.Counter // circuit transitions to open
	mBreakerShed *obs.Counter // submissions shed by an open circuit
	mIdemReplays *obs.Counter // Idempotency-Key hits returning prior jobs
}

// serverTIDBase is the trace lane block for server worker slots, kept
// clear of the flow scheduler's worker lanes and coordinator lane.
const serverTIDBase = 1 << 21

// New builds and starts a server: worker goroutines spin up immediately
// and wait for submissions. Callers must Shutdown to stop them.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.StallRequeues <= 0 {
		cfg.StallRequeues = 1
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.JournalDir == "" && cfg.StateDir != "" {
		cfg.JournalDir = filepath.Join(cfg.StateDir, "journals")
	}
	s := &Server{
		cfg:        cfg,
		now:        cfg.Now,
		cache:      cfg.Cache,
		stage:      cfg.StageCache,
		journalDir: cfg.JournalDir,
		jobs:       make(map[string]*Job),
		flights:    make(map[string]*group),
		queues:     make(map[string][]*group),
		idem:       make(map[string]string),
		breakers:   make(map[string]*breakerState),
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.cache == nil {
		s.cache = vivado.NewCheckpointCache()
	}
	if cfg.NoStageCache {
		s.stage = nil
	} else if s.stage == nil {
		s.stage = vivado.NewStageCache()
	}
	if s.stage != nil && s.stage.Disk() == nil && s.cache.Disk() != nil {
		s.stage.SetDiskStore(s.cache.Disk())
	}
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		return flow.RunFlow(ctx, cs.spec.Flow, cs.design, opt)
	}
	s.cond = sync.NewCond(&s.mu)

	reg := cfg.Observer.Metrics()
	s.mSubmitted = reg.Counter("server_jobs_submitted_total")
	s.mDeduped = reg.Counter("server_dedup_hits_total")
	s.mCompleted = reg.Counter("server_jobs_completed_total")
	s.mFailed = reg.Counter("server_jobs_failed_total")
	s.mCancelled = reg.Counter("server_jobs_cancelled_total")
	s.mRejected = reg.Counter("server_jobs_drain_rejected_total")
	s.mQueueRejects = reg.Counter("server_admission_rejects_total")
	s.mDrainRejects = reg.Counter("server_drain_rejects_total")
	s.mWALRecords = reg.Counter("server_wal_records_total")
	s.mWALErrors = reg.Counter("server_wal_errors_total")
	s.mRecovered = reg.Counter("server_recovered_jobs")
	s.mStalls = reg.Counter("server_watchdog_stalls_total")
	s.mPoisoned = reg.Counter("server_jobs_poisoned")
	s.mBreakerOpen = reg.Counter("server_breaker_opens_total")
	s.mBreakerShed = reg.Counter("server_breaker_sheds_total")
	s.mIdemReplays = reg.Counter("server_idempotent_replays_total")
	s.gQueueDepth = reg.Gauge("server_queue_depth")
	s.gRunning = reg.Gauge("server_jobs_running")
	s.hQueueSec = reg.Histogram("server_job_queue_seconds")
	s.hRunSec = reg.Histogram("server_job_run_seconds")
	if tr := cfg.Observer.Tracer(); tr != nil {
		for i := 0; i < cfg.Workers; i++ {
			tr.SetThreadName(serverTIDBase+i, fmt.Sprintf("server-worker-%d", i))
		}
	}

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	if cfg.StallTimeout > 0 {
		s.watchdogQuit = make(chan struct{})
		s.wg.Add(1)
		go s.watchdog(s.watchdogQuit)
	}
	return s
}

// Submit validates and admits one job for tenant. It returns the
// created job, or ErrDraining, a *QueueFullError or a *BadSpecError.
func (s *Server) Submit(tenant string, spec Spec) (JobView, error) {
	v, _, err := s.SubmitIdempotent(tenant, "", spec)
	return v, err
}

// SubmitIdempotent is Submit with an optional client idempotency key.
// A key the tenant has used before returns that submission's job —
// terminal or live — with replayed=true instead of admitting new work;
// this is how a client that crashed (or whose server crashed) resubmits
// safely after recovery. Reusing a key with a different spec is an
// *IdempotencyMismatchError. An open circuit for (tenant, spec) sheds
// the submission with a *CircuitOpenError.
func (s *Server) SubmitIdempotent(tenant, idemKey string, spec Spec) (JobView, bool, error) {
	cs, err := compile(spec)
	if err != nil {
		return JobView{}, false, &BadSpecError{Reason: err}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if idemKey != "" {
		if id, ok := s.idem[tenantKey(tenant, idemKey)]; ok {
			j := s.jobs[id]
			if j.Key != cs.key {
				return JobView{}, false, &IdempotencyMismatchError{Key: idemKey, JobID: id}
			}
			s.mIdemReplays.Inc()
			return j.viewLocked(), true, nil
		}
	}
	if s.draining {
		s.mDrainRejects.Inc()
		return JobView{}, false, ErrDraining
	}
	// Single-flight: identical work joins the in-flight group — queued
	// or running — instead of consuming a queue slot.
	if g, ok := s.flights[cs.key]; ok {
		j := s.newJobLocked(tenant, cs, idemKey, true)
		j.group = g
		g.jobs = append(g.jobs, j)
		if g.running {
			j.State = StateRunning
			j.Started = g.started
		}
		if err := s.admitDurablyLocked(j); err != nil {
			g.jobs = g.jobs[:len(g.jobs)-1]
			return JobView{}, false, err
		}
		s.mDeduped.Inc()
		return j.viewLocked(), false, nil
	}
	if s.cfg.BreakerThreshold > 0 {
		if b := s.breakers[tenantKey(tenant, cs.key)]; b != nil && b.fails >= s.cfg.BreakerThreshold {
			if now := s.now(); now.Before(b.openUntil) {
				s.mBreakerShed.Inc()
				return JobView{}, false, &CircuitOpenError{Failures: b.fails, RetryAfter: b.openUntil.Sub(now)}
			}
			// Cooldown elapsed: half-open, let this probe through. The
			// breaker reopens on its failure and resets on success.
		}
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mQueueRejects.Inc()
		return JobView{}, false, &QueueFullError{Depth: s.cfg.QueueDepth}
	}
	j := s.newJobLocked(tenant, cs, idemKey, false)
	ctx, cancel := context.WithCancel(context.Background())
	g := &group{
		key:      cs.key,
		tenant:   tenant,
		cs:       cs,
		jobs:     []*Job{j},
		ctx:      ctx,
		cancel:   cancel,
		enqueued: j.Submitted,
	}
	j.group = g
	s.flights[cs.key] = g
	s.enqueueLocked(g)
	if err := s.admitDurablyLocked(j); err != nil {
		s.removeQueuedLocked(g)
		cancel()
		return JobView{}, false, err
	}
	s.cond.Signal()
	return j.viewLocked(), false, nil
}

// admitDurablyLocked makes j's admission crash-durable and registers
// its idempotency key. The admitted record is the one WAL append that
// gates the acknowledgement: if it cannot be made durable, the caller
// rolls the job back and the submission fails — the client never holds
// a 202 for a job a crash could lose. Callers hold s.mu and must
// unlink j on error.
func (s *Server) admitDurablyLocked(j *Job) error {
	if s.wal != nil {
		rec := walRecord{
			Op: walAdmitted, Job: j.ID, Tenant: j.Tenant, Key: j.Key,
			Idem: j.IdemKey, Spec: &j.Spec, Time: j.Submitted.UTC().Format(time.RFC3339Nano),
		}
		if err := s.wal.append(rec); err != nil {
			s.mWALErrors.Inc()
			delete(s.jobs, j.ID)
			return fmt.Errorf("server: job not durable: %w", err)
		}
		s.mWALRecords.Inc()
	}
	if j.IdemKey != "" {
		s.idem[tenantKey(j.Tenant, j.IdemKey)] = j.ID
	}
	return nil
}

// walAppendLocked logs a non-admission transition best-effort: a
// failing append is counted but does not fail the job — the transition
// already happened in memory, and replay treats a missing tail record
// conservatively (a re-run, never a loss). Callers hold s.mu.
func (s *Server) walAppendLocked(rec walRecord) {
	if s.wal == nil {
		return
	}
	if err := s.wal.append(rec); err != nil {
		s.mWALErrors.Inc()
		return
	}
	s.mWALRecords.Inc()
}

// newJobLocked allocates a job record. Callers hold s.mu.
func (s *Server) newJobLocked(tenant string, cs *compiledSpec, idemKey string, dedup bool) *Job {
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", s.seq),
		Tenant:    tenant,
		Spec:      cs.spec,
		Key:       cs.key,
		IdemKey:   idemKey,
		State:     StateQueued,
		Dedup:     dedup,
		Submitted: s.now(),
	}
	s.jobs[j.ID] = j
	s.mSubmitted.Inc()
	s.cfg.Observer.Metrics().Counter("server_tenant_jobs_total." + tenant).Inc()
	return j
}

// enqueueLocked appends g to its tenant FIFO and registers the tenant
// in the round-robin ring. Callers hold s.mu.
func (s *Server) enqueueLocked(g *group) {
	if len(s.queues[g.tenant]) == 0 {
		s.rr = append(s.rr, g.tenant)
	}
	s.queues[g.tenant] = append(s.queues[g.tenant], g)
	s.queued++
	s.gQueueDepth.Set(float64(s.queued))
}

// dequeueLocked pops the next group in tenant round-robin order.
// Callers hold s.mu and have checked s.queued > 0.
func (s *Server) dequeueLocked() *group {
	tenant := s.rr[0]
	s.rr = s.rr[1:]
	q := s.queues[tenant]
	g := q[0]
	q = q[1:]
	if len(q) > 0 {
		s.queues[tenant] = q
		s.rr = append(s.rr, tenant) // rotate: next tenant gets the next slot
	} else {
		delete(s.queues, tenant)
	}
	s.queued--
	s.gQueueDepth.Set(float64(s.queued))
	return g
}

// removeQueuedLocked unlinks a queued group (last subscriber
// cancelled). Callers hold s.mu.
func (s *Server) removeQueuedLocked(g *group) {
	q := s.queues[g.tenant]
	for i, qg := range q {
		if qg == g {
			q = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	if len(q) > 0 {
		s.queues[g.tenant] = q
	} else {
		delete(s.queues, g.tenant)
		for i, t := range s.rr {
			if t == g.tenant {
				s.rr = append(s.rr[:i:i], s.rr[i+1:]...)
				break
			}
		}
	}
	delete(s.flights, g.key)
	s.queued--
	s.gQueueDepth.Set(float64(s.queued))
}

// worker is one execution slot: it pulls flight groups off the tenant
// queues in round-robin order and runs them until the server drains.
func (s *Server) worker(slot int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queued == 0 {
			s.mu.Unlock()
			return // draining and nothing left to admit
		}
		g := s.dequeueLocked()
		g.running = true
		g.started = s.now()
		g.lastBeat = g.started
		for _, j := range g.jobs {
			j.State = StateRunning
			j.Started = g.started
			s.walAppendLocked(walRecord{Op: walStarted, Job: j.ID})
		}
		s.running++
		s.gRunning.Set(float64(s.running))
		s.hQueueSec.Observe(g.started.Sub(g.enqueued).Seconds())
		s.mu.Unlock()
		s.execute(slot, g)
	}
}

// execute runs one flight group to completion and publishes the
// outcome to every surviving subscriber. A run the watchdog stalled is
// requeued (within its budget) instead of published; past the budget
// its jobs are quarantined as poisoned.
func (s *Server) execute(slot int, g *group) {
	journal, journalErr := s.openJournal(g)
	opt := flow.Options{
		Strategy:       g.cs.strategy,
		SemiTau:        g.cs.spec.Tau,
		Compress:       g.cs.spec.Compress,
		SkipBitstreams: g.cs.spec.SkipBitstreams,
		Workers:        s.cfg.JobWorkers,
		Cache:          s.cache,
		StageCache:     s.stage,
		MaxJobRetries:  g.cs.spec.Retries,
		FaultPlan:      g.cs.faults,
		Journal:        journal,
		Observer:       s.cfg.Observer,
	}
	if g.cs.spec.ErrorPolicy == "collect" {
		opt.ErrorPolicy = flow.Collect
	}
	s.mu.Lock()
	opt.Resume = g.resume
	s.mu.Unlock()
	// Progress heartbeats feed the stall watchdog: each completed
	// scheduler job advances the flight's virtual-time position and
	// refreshes its wall-clock liveness.
	opt.Heartbeat = func(completed int, virt vivado.Minutes) {
		s.mu.Lock()
		g.lastBeat = s.now()
		g.virtMinutes = float64(virt)
		s.mu.Unlock()
	}

	tr := s.cfg.Observer.Tracer()
	spanStart := tr.Now()

	var res *flow.Result
	err := journalErr
	if err == nil {
		res, err = s.runFlow(g.ctx, g.cs, opt)
	}
	if g.journalFile != nil {
		g.journalFile.Close() //nolint:errcheck // line-buffered writes already flushed per entry
	}

	s.mu.Lock()
	s.running--
	s.gRunning.Set(float64(s.running))
	end := s.now()
	s.hRunSec.Observe(end.Sub(g.started).Seconds())

	// Watchdog requeue: the stall cancelled this run, subscribers are
	// still waiting and the budget has room — put the flight back on
	// the queue with a fresh context instead of failing it.
	if err != nil && g.stalled && !s.draining && len(g.jobs) > 0 && g.requeues < s.cfg.StallRequeues {
		g.requeues++
		g.stalled = false
		g.running = false
		oldCancel := g.cancel
		g.ctx, g.cancel = context.WithCancel(context.Background())
		g.enqueued = end
		for _, j := range g.jobs {
			if j.State.terminal() {
				continue
			}
			j.State = StateQueued
			j.Attempts++
			s.walAppendLocked(walRecord{Op: walRequeued, Job: j.ID})
		}
		s.enqueueLocked(g)
		s.cond.Signal()
		requeues := g.requeues
		s.mu.Unlock()
		oldCancel()
		if tr != nil {
			tr.Instant("server", "stall-requeue/"+g.cs.spec.Preset, serverTIDBase+slot,
				map[string]any{"key": g.key, "requeues": requeues})
		}
		return
	}

	delete(s.flights, g.key)
	poisoned := err != nil && g.stalled && !s.draining && len(g.jobs) > 0
	var rv *ResultView
	if err == nil {
		rv = summarizeResult(g.cs.spec, res, len(journal.Entries()))
	}
	for _, j := range g.jobs {
		if j.State.terminal() {
			continue // cancelled subscribers keep their state
		}
		j.Finished = end
		switch {
		case poisoned:
			j.State = StatePoisoned
			j.Err = fmt.Sprintf("poisoned: no scheduler progress for %v after %d attempts: %v",
				s.cfg.StallTimeout, g.requeues+1, err)
			s.mPoisoned.Inc()
			s.walAppendLocked(walRecord{Op: walPoisoned, Job: j.ID, Error: j.Err})
		case err != nil:
			j.State = StateFailed
			j.Err = err.Error()
			s.mFailed.Inc()
			s.walAppendLocked(walRecord{Op: walDone, Job: j.ID, State: StateFailed, Error: j.Err})
		default:
			j.State = StateSucceeded
			j.Result = rv
			s.mCompleted.Inc()
			s.walAppendLocked(walRecord{Op: walDone, Job: j.ID, State: StateSucceeded, Result: rv})
		}
	}
	// Circuit breaker accounting: only organic outcomes count — runs
	// whose subscribers all cancelled, or that died in a drain, say
	// nothing about the spec itself.
	if len(g.jobs) > 0 && !s.draining {
		if err != nil {
			s.breakerFailureLocked(g.tenant, g.key, end)
		} else {
			delete(s.breakers, tenantKey(g.tenant, g.key))
		}
	}
	nJobs := len(g.jobs)
	g.jobs = nil
	s.mu.Unlock()
	g.cancel() // release the group context

	if tr != nil {
		args := map[string]any{"key": g.key, "tenant": g.tenant, "subscribers": nJobs}
		if err != nil {
			args["error"] = err.Error()
		}
		tr.Complete("server", "flight/"+g.cs.spec.Preset, serverTIDBase+slot, spanStart, tr.Now()-spanStart, args)
	}
}

// breakerFailureLocked records one organic failure for (tenant, spec)
// and opens the circuit at the threshold. Callers hold s.mu.
func (s *Server) breakerFailureLocked(tenant, specKey string, now time.Time) {
	if s.cfg.BreakerThreshold <= 0 {
		return
	}
	bk := tenantKey(tenant, specKey)
	b := s.breakers[bk]
	if b == nil {
		b = &breakerState{}
		s.breakers[bk] = b
	}
	b.fails++
	if b.fails >= s.cfg.BreakerThreshold {
		wasOpen := now.Before(b.openUntil)
		b.openUntil = now.Add(s.cfg.BreakerCooldown)
		if !wasOpen {
			s.mBreakerOpen.Inc()
			if tr := s.cfg.Observer.Tracer(); tr != nil {
				tr.Instant("server", "breaker-open", serverTIDBase,
					map[string]any{"tenant": tenant, "key": specKey, "failures": b.fails})
			}
		}
	}
}

// watchdog scans running flights and cancels any whose last progress
// heartbeat is older than StallTimeout. Detection uses the wall clock
// (s.now); progress itself is reported in virtual minutes — a flight
// modelling hours of CAD time is fine as long as heartbeats keep
// arriving in real time.
func (s *Server) watchdog(quit chan struct{}) {
	defer s.wg.Done()
	interval := s.cfg.StallTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-quit:
			return
		case <-tick.C:
		}
		type stall struct {
			key, tenant string
			cancel      context.CancelFunc
		}
		var stalled []stall
		s.mu.Lock()
		now := s.now()
		for _, g := range s.flights {
			if g.running && !g.stalled && now.Sub(g.lastBeat) > s.cfg.StallTimeout {
				g.stalled = true
				s.mStalls.Inc()
				stalled = append(stalled, stall{g.key, g.tenant, g.cancel})
			}
		}
		s.mu.Unlock()
		for _, st := range stalled {
			if tr := s.cfg.Observer.Tracer(); tr != nil {
				tr.Instant("server", "stall-detected", serverTIDBase,
					map[string]any{"key": st.key, "tenant": st.tenant})
			}
			st.cancel()
		}
	}
}

// openJournal creates the group's journal: in-memory always, backed by
// a <journalDir>/<leader-job>.jsonl file when configured.
func (s *Server) openJournal(g *group) (*flow.Journal, error) {
	if s.journalDir == "" {
		return flow.NewJournal(nil), nil
	}
	s.mu.Lock()
	leader := ""
	if len(g.jobs) > 0 {
		leader = g.jobs[0].ID
	}
	s.mu.Unlock()
	if err := os.MkdirAll(s.journalDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	f, err := os.Create(filepath.Join(s.journalDir, leader+".jsonl"))
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	g.journalFile = f // closed by execute after the run's entries are final
	return flow.NewJournal(f), nil
}

// Get returns tenant's job by ID. A job owned by another tenant is
// ErrNotFound — existence is not leaked across tenants.
func (s *Server) Get(tenant, id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil || j.Tenant != tenant {
		return JobView{}, ErrNotFound
	}
	return j.viewLocked(), nil
}

// List returns all of tenant's jobs in submission order.
func (s *Server) List(tenant string) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, 8)
	for _, id := range report.SortedKeys(s.jobs) {
		if j := s.jobs[id]; j.Tenant == tenant {
			out = append(out, j.viewLocked())
		}
	}
	return out
}

// Cancel marks tenant's job cancelled. Cancelling a queued job frees
// its queue slot when it was the group's last subscriber; cancelling a
// running job detaches the subscription and stops the underlying run
// only when nobody else is waiting on it. Re-cancelling a cancelled
// job is a no-op returning the job as-is, so poll/cancel races are
// harmless; cancelling a job that already finished some other way is
// ErrFinished (the HTTP layer's 409), distinct from an unknown ID's
// ErrNotFound (404).
func (s *Server) Cancel(tenant, id string) (JobView, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.Tenant != tenant {
		s.mu.Unlock()
		return JobView{}, ErrNotFound
	}
	if j.State.terminal() {
		v := j.viewLocked()
		wasCancelled := j.State == StateCancelled
		s.mu.Unlock()
		if wasCancelled {
			return v, nil
		}
		return v, ErrFinished
	}
	j.State = StateCancelled
	j.Finished = s.now()
	s.mCancelled.Inc()
	s.walAppendLocked(walRecord{Op: walCancelled, Job: j.ID})
	g := j.group
	var cancelRun bool
	if g != nil {
		for i, gj := range g.jobs {
			if gj == j {
				g.jobs = append(g.jobs[:i:i], g.jobs[i+1:]...)
				break
			}
		}
		if len(g.jobs) == 0 {
			if !g.running {
				s.removeQueuedLocked(g)
			}
			cancelRun = true // nobody wants the result anymore
		}
	}
	v := j.viewLocked()
	s.mu.Unlock()
	if cancelRun {
		g.cancel()
	}
	return v, nil
}

// Stats is a point-in-time snapshot of the server's occupancy.
type Stats struct {
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	Jobs     int  `json:"jobs"`
	Draining bool `json:"draining"`
}

// Snapshot returns current occupancy.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Queued: s.queued, Running: s.running, Jobs: len(s.jobs), Draining: s.draining}
}

// Shutdown drains the server: admission stops (submissions get
// ErrDraining), every queued-but-unadmitted job is rejected with a
// clean "server draining" error, and in-flight runs are left to finish
// and journal through the engine's drain-on-cancel semantics. If ctx
// expires first, the remaining runs are cancelled at the next job
// boundary and Shutdown still waits for the workers to exit before
// returning ctx's error. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Reject everything still waiting for admission, in sorted
		// tenant order so the rejection sequence is deterministic.
		for _, tenant := range report.SortedKeys(s.queues) {
			for _, g := range s.queues[tenant] {
				for _, j := range g.jobs {
					if j.State.terminal() {
						continue
					}
					j.State = StateRejected
					j.Err = ErrDraining.Error()
					j.Finished = s.now()
					s.mRejected.Inc()
					s.walAppendLocked(walRecord{Op: walDone, Job: j.ID, State: StateRejected, Error: j.Err})
				}
				g.jobs = nil
				delete(s.flights, g.key)
				g.cancel()
			}
		}
		s.queues = make(map[string][]*group)
		s.rr = nil
		s.queued = 0
		s.gQueueDepth.Set(0)
		if s.watchdogQuit != nil {
			close(s.watchdogQuit)
			s.watchdogQuit = nil
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeWAL()
		return nil
	case <-ctx.Done():
		// Grace period over: stop in-flight runs at the next job
		// boundary and wait for the workers to wind down.
		s.mu.Lock()
		var cancels []context.CancelFunc
		for _, g := range s.flights {
			cancels = append(cancels, g.cancel)
		}
		s.mu.Unlock()
		for _, cancel := range cancels {
			cancel()
		}
		<-done
		s.closeWAL()
		return ctx.Err()
	}
}

// closeWAL releases the job log after the last worker exits; later
// appends become no-ops.
func (s *Server) closeWAL() {
	s.mu.Lock()
	w := s.wal
	s.wal = nil
	s.mu.Unlock()
	if w != nil {
		w.close() //nolint:errcheck // every durable record was already fsynced
	}
}
