package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestConcurrencyBattery is the headline stress test: 32 goroutine
// clients across 4 tenants hammer submit/poll/cancel against the real
// HTTP API running real (model-time) flows, under the race detector.
// Invariants checked afterwards:
//
//   - no job is lost: every accepted submission is retrievable by its
//     tenant and reaches a terminal state;
//   - no cross-tenant leakage: every job 404s for other tenants and
//     List never shows foreign jobs;
//   - backpressure is clean: 429s carry Retry-After and reject, never
//     corrupt;
//   - the queue fully drains: the queue-depth gauge reads 0 at the end.
func TestConcurrencyBattery(t *testing.T) {
	const (
		clients       = 32
		perClient     = 4
		tenantCount   = 4
		pollInterval  = 2 * time.Millisecond
		drainDeadline = 60 * time.Second
	)
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// The spec pool mixes flows, strategies, cache-friendly duplicates
	// and deliberately failing runs (seeded faults, fail-fast).
	specs := []string{
		`{"preset":"SOC_1"}`,
		`{"preset":"SOC_2","compress":true}`,
		`{"preset":"SOC_3","flow":"standard-dfx"}`,
		`{"preset":"SOC_2","strategy":"serial"}`,
		`{"preset":"SOC_1","flow":"monolithic"}`,
		`{"preset":"SOC_2","faults":"seed=7,synth=1.0"}`,
		`{"preset":"SOC_1","skip_bitstreams":true}`,
	}

	type submitted struct {
		tenant string
		id     string
	}
	var (
		mu       sync.Mutex
		accepted []submitted
		rejected int
	)
	record := func(tenant, id string) {
		mu.Lock()
		accepted = append(accepted, submitted{tenant, id})
		mu.Unlock()
	}

	client := ts.Client()
	do := func(method, path, tenant, body string) (*http.Response, []byte, error) {
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return nil, nil, err
		}
		return resp, buf.Bytes(), nil
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			tenant := fmt.Sprintf("tenant-%d", c%tenantCount)
			for i := 0; i < perClient; i++ {
				spec := specs[rng.Intn(len(specs))]
				resp, body, err := do("POST", "/v1/jobs", tenant, spec)
				if err != nil {
					t.Errorf("client %d: submit: %v", c, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					var v JobView
					if err := json.Unmarshal(body, &v); err != nil {
						t.Errorf("client %d: bad submit body: %v", c, err)
						return
					}
					record(tenant, v.ID)
					// Cancel a third of our jobs at a random moment.
					if rng.Intn(3) == 0 {
						time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
						cresp, _, err := do("DELETE", "/v1/jobs/"+v.ID, tenant, "")
						if err != nil {
							t.Errorf("client %d: cancel: %v", c, err)
							return
						}
						// 200 = cancelled; 409 = the job beat us to a
						// terminal state — both are legitimate outcomes
						// of a cancel racing completion.
						if cresp.StatusCode != http.StatusOK && cresp.StatusCode != http.StatusConflict {
							t.Errorf("client %d: cancel %s = %d, want 200 or 409", c, v.ID, cresp.StatusCode)
						}
					} else {
						// Poll a few times like a real client would.
						for p := 0; p < 3; p++ {
							presp, _, err := do("GET", "/v1/jobs/"+v.ID, tenant, "")
							if err != nil {
								t.Errorf("client %d: poll: %v", c, err)
								return
							}
							if presp.StatusCode != http.StatusOK {
								t.Errorf("client %d: poll %s = %d, want 200", c, v.ID, presp.StatusCode)
							}
							time.Sleep(pollInterval)
						}
					}
				case http.StatusTooManyRequests:
					if ra := resp.Header.Get("Retry-After"); ra == "" {
						t.Errorf("client %d: 429 without Retry-After", c)
					}
					mu.Lock()
					rejected++
					mu.Unlock()
					time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
					i-- // retry the slot like a backoff-respecting client
				default:
					t.Errorf("client %d: submit = %d: %s", c, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("battery: %d accepted, %d backpressure rejections", len(accepted), rejected)
	if len(accepted) != clients*perClient {
		t.Fatalf("accepted %d jobs, want %d (every client retries past 429s)", len(accepted), clients*perClient)
	}

	// No job lost: each reaches a terminal state, visible to its tenant.
	deadline := time.Now().Add(drainDeadline)
	for _, sub := range accepted {
		for {
			v, err := s.Get(sub.tenant, sub.id)
			if err != nil {
				t.Fatalf("job %s vanished for %s: %v", sub.id, sub.tenant, err)
			}
			if v.State.terminal() {
				if v.State == StateRejected {
					t.Errorf("job %s rejected outside a drain", sub.id)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", sub.id, v.State)
			}
			time.Sleep(pollInterval)
		}
	}

	// No cross-tenant leakage, through the real HTTP surface.
	for _, sub := range accepted {
		other := "tenant-x"
		resp, _, err := do("GET", "/v1/jobs/"+sub.id, other, "")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("job %s leaked to %s: status %d", sub.id, other, resp.StatusCode)
		}
	}
	perTenant := map[string]int{}
	for _, sub := range accepted {
		perTenant[sub.tenant]++
	}
	for tenant, want := range perTenant {
		resp, body, err := do("GET", "/v1/jobs", tenant, "")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("list %s: %v status %d", tenant, err, resp.StatusCode)
		}
		var listing struct {
			Jobs []JobView `json:"jobs"`
		}
		if err := json.Unmarshal(body, &listing); err != nil {
			t.Fatal(err)
		}
		if len(listing.Jobs) != want {
			t.Errorf("tenant %s lists %d jobs, want %d", tenant, len(listing.Jobs), want)
		}
		for _, j := range listing.Jobs {
			if j.Tenant != tenant {
				t.Errorf("tenant %s's listing contains %s's job %s", tenant, j.Tenant, j.ID)
			}
		}
	}

	// Everything drained: occupancy is zero and the queue-depth gauge
	// (scraped through the real /metrics endpoint) reads 0.
	if st := s.Snapshot(); st.Queued != 0 || st.Running != 0 {
		t.Fatalf("server not idle after battery: %+v", st)
	}
	resp, body, err := do("GET", "/metrics", "tenant-0", "")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v status %d", err, resp.StatusCode)
	}
	var metrics map[string]any
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatal(err)
	}
	if depth, ok := metrics["server_queue_depth"].(float64); !ok || depth != 0 {
		t.Errorf("server_queue_depth = %v after drain, want 0", metrics["server_queue_depth"])
	}
	submittedN, _ := metrics["server_jobs_submitted_total"].(float64)
	if int(submittedN) != len(accepted) {
		t.Errorf("server_jobs_submitted_total = %v, want %d", submittedN, len(accepted))
	}
}
