package server

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"presp/internal/flow"
	"presp/internal/leakcheck"
)

// TestGracefulDrain is the shutdown contract: the in-flight run
// finishes and journals to disk, the queued-but-unadmitted job gets a
// clean "server draining" rejection, and no goroutine survives.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s := New(Config{Workers: 1, JournalDir: dir})
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return flow.RunFlow(ctx, cs.spec.Flow, cs.design, opt)
	}

	inflight, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit("acme", Spec{Preset: "SOC_3"})
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// The queued job is rejected immediately — before the in-flight run
	// is released — with the clean drain error.
	rej := waitState(t, s, "acme", queued.ID, StateRejected)
	if rej.Error != "server draining" {
		t.Errorf("queued job error = %q, want \"server draining\"", rej.Error)
	}
	// New submissions are refused while draining.
	if _, err := s.Submit("acme", Spec{Preset: "SOC_1"}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain = %v, want ErrDraining", err)
	}

	close(gate) // let the in-flight run finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	done, err := s.Get("acme", inflight.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateSucceeded || done.Result == nil {
		t.Fatalf("in-flight job after drain = %s, want succeeded with result", done.State)
	}
	if done.Result.JournalEntries == 0 {
		t.Error("in-flight run recorded no journal entries")
	}

	// The journal made it to disk: a parseable JSON-lines file for the
	// in-flight leader, and none for the rejected job.
	data, err := os.ReadFile(filepath.Join(dir, inflight.ID+".jsonl"))
	if err != nil {
		t.Fatalf("in-flight journal: %v", err)
	}
	if len(data) == 0 {
		t.Error("in-flight journal is empty")
	}
	if _, err := os.Stat(filepath.Join(dir, queued.ID+".jsonl")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("rejected job left a journal: %v", err)
	}

	leakcheck.VerifyNone(t)
}

// TestShutdownIdempotent: calling Shutdown again (including after
// completion) is a no-op that still waits cleanly.
func TestShutdownIdempotent(t *testing.T) {
	s := New(Config{Workers: 2})
	s.runFlow = (&stubRunner{}).run
	for i := 0; i < 3; i++ {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatalf("shutdown #%d: %v", i+1, err)
		}
	}
	leakcheck.VerifyNone(t)
}

// TestShutdownDeadlineCancelsInFlight: when the grace period expires,
// in-flight runs are cancelled, Shutdown reports the context error, and
// the workers still exit.
func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	st := &stubRunner{started: make(chan int, 1), gate: make(chan struct{})}
	s := New(Config{Workers: 1})
	s.runFlow = st.run

	v, err := s.Submit("acme", Spec{Preset: "SOC_1"})
	if err != nil {
		t.Fatal(err)
	}
	<-st.started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // grace period already over
	if err := s.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown = %v, want context.Canceled", err)
	}
	got, err := s.Get("acme", v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || got.Error != context.Canceled.Error() {
		t.Errorf("in-flight job after forced drain = %s/%q, want failed/context canceled", got.State, got.Error)
	}
	leakcheck.VerifyNone(t)
}
