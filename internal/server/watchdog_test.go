package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"presp/internal/flow"
	"presp/internal/vivado"
)

// wedgedRunner simulates a stuck CAD run: it makes no progress and
// blocks until its context is cancelled — exactly what the watchdog
// exists to catch.
func wedgedRunner(runs *int, mu *sync.Mutex) func(context.Context, *compiledSpec, flow.Options) (*flow.Result, error) {
	return func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		mu.Lock()
		*runs++
		mu.Unlock()
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

func TestWatchdogRequeuesThenPoisons(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	s := newTestServer(t, Config{Workers: 1, StallTimeout: 15 * time.Millisecond, StallRequeues: 1})
	s.runFlow = wedgedRunner(&runs, &mu)

	v, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, "acme", v.ID, StatePoisoned)
	if done.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (one watchdog requeue)", done.Attempts)
	}
	if done.Error == "" {
		t.Error("poisoned job has no error")
	}
	mu.Lock()
	gotRuns := runs
	mu.Unlock()
	if gotRuns != 2 {
		t.Errorf("runs = %d, want 2 (original + one requeue)", gotRuns)
	}
	snap := s.cfg.Observer.Metrics().Snapshot()
	if snap.Counters["server_watchdog_stalls_total"] != 2 {
		t.Errorf("stalls = %d, want 2", snap.Counters["server_watchdog_stalls_total"])
	}
	if snap.Counters["server_jobs_poisoned"] != 1 {
		t.Errorf("poisoned = %d, want 1", snap.Counters["server_jobs_poisoned"])
	}

	// A poisoned job is terminal: cancelling it is a conflict, and the
	// flight is gone so an identical resubmission starts fresh.
	if _, err := s.Cancel("acme", v.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("cancel poisoned = %v, want ErrFinished", err)
	}
}

func TestWatchdogStallRequeueRecovers(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	st := &stubRunner{}
	s := newTestServer(t, Config{Workers: 1, StallTimeout: 15 * time.Millisecond, StallRequeues: 2})
	// First attempt wedges; the requeued attempt behaves.
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		mu.Lock()
		runs++
		attempt := runs
		mu.Unlock()
		if attempt == 1 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return st.run(ctx, cs, opt)
	}

	v, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, "acme", v.ID, StateSucceeded)
	if done.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", done.Attempts)
	}
	if done.Result == nil {
		t.Error("recovered run has no result")
	}
	snap := s.cfg.Observer.Metrics().Snapshot()
	if snap.Counters["server_jobs_poisoned"] != 0 {
		t.Errorf("poisoned = %d, want 0", snap.Counters["server_jobs_poisoned"])
	}
}

// TestHeartbeatsPreventStall: a run that is slow in wall time but keeps
// reporting virtual-time progress must never trip the watchdog — the
// two time bases are independent, and liveness is "heartbeats keep
// arriving", not "finishes quickly".
func TestHeartbeatsPreventStall(t *testing.T) {
	st := &stubRunner{}
	s := newTestServer(t, Config{Workers: 1, StallTimeout: 40 * time.Millisecond})
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		for i := 1; i <= 20; i++ {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(8 * time.Millisecond):
			}
			if opt.Heartbeat != nil {
				// Virtual progress can be huge (modelled hours) while wall
				// progress is slow; only the arrival cadence matters.
				opt.Heartbeat(i, vivado.Minutes(i)*120)
			}
		}
		return st.run(ctx, cs, opt)
	}

	v, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, "acme", v.ID, StateSucceeded)
	snap := s.cfg.Observer.Metrics().Snapshot()
	if snap.Counters["server_watchdog_stalls_total"] != 0 {
		t.Errorf("stalls = %d, want 0: heartbeats should have kept the run alive",
			snap.Counters["server_watchdog_stalls_total"])
	}
}

func TestBreakerOpensAndSheds(t *testing.T) {
	boom := fmt.Errorf("synthetic failure")
	s := newTestServer(t, Config{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Hour})
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		return nil, boom
	}

	spec := Spec{Preset: "SOC_2", Tau: 5}
	for i := 0; i < 2; i++ {
		v, err := s.Submit("acme", spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, "acme", v.ID, StateFailed)
	}
	var open *CircuitOpenError
	if _, err := s.Submit("acme", spec); !errors.As(err, &open) {
		t.Fatalf("third submit = %v, want CircuitOpenError", err)
	}
	if open.Failures < 2 || open.RetryAfter <= 0 {
		t.Fatalf("bad shed error: %+v", open)
	}
	// The circuit is scoped per (tenant, spec): a different spec and a
	// different tenant both pass.
	if _, err := s.Submit("acme", Spec{Preset: "SOC_2", Tau: 9}); err != nil {
		t.Fatalf("different spec was shed: %v", err)
	}
	if _, err := s.Submit("beta", spec); err != nil {
		t.Fatalf("different tenant was shed: %v", err)
	}
	snap := s.cfg.Observer.Metrics().Snapshot()
	if snap.Counters["server_breaker_opens_total"] < 1 {
		t.Errorf("opens = %d, want >= 1", snap.Counters["server_breaker_opens_total"])
	}
	if snap.Counters["server_breaker_sheds_total"] != 1 {
		t.Errorf("sheds = %d, want 1", snap.Counters["server_breaker_sheds_total"])
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	var mu sync.Mutex
	failing := true
	st := &stubRunner{}
	s := newTestServer(t, Config{Workers: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Millisecond})
	s.runFlow = func(ctx context.Context, cs *compiledSpec, opt flow.Options) (*flow.Result, error) {
		mu.Lock()
		f := failing
		mu.Unlock()
		if f {
			return nil, fmt.Errorf("still broken")
		}
		return st.run(ctx, cs, opt)
	}

	spec := Spec{Preset: "SOC_2", Tau: 5}
	for i := 0; i < 2; i++ {
		v, err := s.Submit("acme", spec)
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, "acme", v.ID, StateFailed)
	}
	if _, err := s.Submit("acme", spec); err == nil {
		t.Fatal("open circuit admitted a submission")
	}

	// After the cooldown the half-open probe goes through; its success
	// closes the circuit entirely.
	mu.Lock()
	failing = false
	mu.Unlock()
	time.Sleep(25 * time.Millisecond)
	v, err := s.Submit("acme", spec)
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	waitState(t, s, "acme", v.ID, StateSucceeded)
	v, err = s.Submit("acme", spec)
	if err != nil {
		t.Fatalf("submit after recovery rejected: %v", err)
	}
	waitState(t, s, "acme", v.ID, StateSucceeded)
}

func TestIdempotentReplay(t *testing.T) {
	st := &stubRunner{}
	s := newTestServer(t, Config{Workers: 1})
	s.runFlow = st.run

	spec := Spec{Preset: "SOC_2", Tau: 5}
	v1, replayed, err := s.SubmitIdempotent("acme", "build-7", spec)
	if err != nil || replayed {
		t.Fatalf("first submit = (%v, %v), want fresh admission", replayed, err)
	}
	waitState(t, s, "acme", v1.ID, StateSucceeded)

	// Replay after completion: same job back, no new work.
	v2, replayed, err := s.SubmitIdempotent("acme", "build-7", spec)
	if err != nil || !replayed || v2.ID != v1.ID {
		t.Fatalf("replay = (%+v, %v, %v), want %s replayed", v2, replayed, err, v1.ID)
	}
	if v2.State != StateSucceeded || v2.Result == nil {
		t.Fatalf("replayed job lost its result: %+v", v2)
	}
	if st.count() != 1 {
		t.Fatalf("runs = %d, want 1", st.count())
	}

	// Same key, different spec: a client bug, rejected loudly.
	var mism *IdempotencyMismatchError
	if _, _, err := s.SubmitIdempotent("acme", "build-7", Spec{Preset: "SOC_2", Tau: 9}); !errors.As(err, &mism) {
		t.Fatalf("mismatched reuse = %v, want IdempotencyMismatchError", err)
	}

	// Keys are tenant-scoped: another tenant may use the same string.
	v3, replayed, err := s.SubmitIdempotent("beta", "build-7", spec)
	if err != nil || replayed {
		t.Fatalf("other tenant's key = (%v, %v), want fresh admission", replayed, err)
	}
	waitState(t, s, "beta", v3.ID, StateSucceeded)

	snap := s.cfg.Observer.Metrics().Snapshot()
	if snap.Counters["server_idempotent_replays_total"] != 1 {
		t.Errorf("replays = %d, want 1", snap.Counters["server_idempotent_replays_total"])
	}
}

func TestCancelConflictVsNotFound(t *testing.T) {
	st := &stubRunner{}
	s := newTestServer(t, Config{Workers: 1})
	s.runFlow = st.run

	v, err := s.Submit("acme", Spec{Preset: "SOC_2"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, "acme", v.ID, StateSucceeded)

	// Cancelling a finished job is a conflict, not a missing resource...
	if _, err := s.Cancel("acme", v.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel finished = %v, want ErrFinished", err)
	}
	// ...an unknown ID is still not found...
	if _, err := s.Cancel("acme", "j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}
	// ...and re-cancelling a cancelled job stays an idempotent no-op.
	gate := make(chan struct{})
	st.gate = gate
	defer close(gate)
	v2, err := s.Submit("acme", Spec{Preset: "SOC_2", Tau: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel("acme", v2.ID); err != nil {
		t.Fatalf("cancel live: %v", err)
	}
	again, err := s.Cancel("acme", v2.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("re-cancel = (%s, %v), want cancelled no-op", again.State, err)
	}
}
