package server

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare checks body against testdata/<name>.golden, rewriting
// the file under -update. The JSON API is a compatibility surface;
// any drift in these bodies is a breaking change and must be deliberate.
func goldenCompare(t *testing.T, name string, body []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, body, want)
	}
}

// goldenServer is a server with a pinned clock and a deterministic stub
// flow, so every byte of the API responses is reproducible.
func goldenServer(t *testing.T, st *stubRunner, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Now = func() time.Time {
		return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	}
	s := newTestServer(t, cfg)
	s.runFlow = st.run
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestGoldenJobLifecycle(t *testing.T) {
	st := &stubRunner{}
	s, ts := goldenServer(t, st, Config{Workers: 1})

	resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"preset":"SOC_3","compress":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	goldenCompare(t, "job_accepted", body)

	waitState(t, s, "default", "j000001", StateSucceeded)
	resp, body = doJSON(t, "GET", ts.URL+"/v1/jobs/j000001", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d: %s", resp.StatusCode, body)
	}
	goldenCompare(t, "job_succeeded", body)
}

func TestGoldenErrorEnvelopes(t *testing.T) {
	st := &stubRunner{started: make(chan int, 1), gate: make(chan struct{})}
	s, ts := goldenServer(t, st, Config{Workers: 1, QueueDepth: 1})

	t.Run("bad spec", func(t *testing.T) {
		resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"preset":"SOC_99"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
		}
		goldenCompare(t, "error_bad_spec", body)
	})

	t.Run("unknown field", func(t *testing.T) {
		resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"preset":"SOC_1","power":9001}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
		}
		goldenCompare(t, "error_unknown_field", body)
	})

	t.Run("not found", func(t *testing.T) {
		resp, body := doJSON(t, "GET", ts.URL+"/v1/jobs/j999999", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404: %s", resp.StatusCode, body)
		}
		goldenCompare(t, "error_not_found", body)
	})

	t.Run("queue full", func(t *testing.T) {
		// Pin the worker, fill the single queue slot, then overflow.
		for tau := 1; tau <= 2; tau++ {
			resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs",
				fmt.Sprintf(`{"preset":"SOC_1","tau":%d}`, tau))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("setup submit tau=%d: %d %s", tau, resp.StatusCode, body)
			}
			if tau == 1 {
				<-st.started
			}
		}
		resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"preset":"SOC_1","tau":3}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Errorf("Retry-After = %q, want \"1\"", ra)
		}
		goldenCompare(t, "error_queue_full", body)
		close(st.gate)
	})

	t.Run("retry-after rounding", func(t *testing.T) {
		// Retry-After is an integer-seconds header: sub-second (and,
		// defensively, negative) configs must clamp to 1 — "0" invites
		// clients to hammer a full queue — and everything else rounds to
		// the nearest second.
		cases := []struct {
			d    time.Duration
			want string
		}{
			{400 * time.Millisecond, "1"},
			{time.Second, "1"},
			{1500 * time.Millisecond, "2"},
			{2400 * time.Millisecond, "2"},
			{-3 * time.Second, "1"},
		}
		for _, c := range cases {
			srv := &Server{cfg: Config{RetryAfter: c.d}}
			w := httptest.NewRecorder()
			srv.writeSubmitError(w, &QueueFullError{Depth: 1})
			if w.Code != http.StatusTooManyRequests {
				t.Errorf("RetryAfter=%v: status = %d, want 429", c.d, w.Code)
			}
			if got := w.Header().Get("Retry-After"); got != c.want {
				t.Errorf("RetryAfter=%v: header = %q, want %q", c.d, got, c.want)
			}
		}
	})

	t.Run("draining", func(t *testing.T) {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"preset":"SOC_1"}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503: %s", resp.StatusCode, body)
		}
		goldenCompare(t, "error_draining", body)
	})
}

// TestGoldenHealthAndReadiness pins the liveness/readiness split:
// healthz answers 200 for the whole life of the process — including a
// drain, when in-flight work is still being served — while readyz flips
// to 503 the moment admission stops, so load balancers shed traffic
// before shutdown without killing the pod under it.
func TestGoldenHealthAndReadiness(t *testing.T) {
	st := &stubRunner{}
	s, ts := goldenServer(t, st, Config{Workers: 1})

	resp, body := doJSON(t, "GET", ts.URL+"/v1/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200: %s", resp.StatusCode, body)
	}
	goldenCompare(t, "healthz_ok", body)

	resp, body = doJSON(t, "GET", ts.URL+"/v1/readyz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200: %s", resp.StatusCode, body)
	}
	goldenCompare(t, "readyz_ok", body)

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Liveness survives the drain; readiness does not.
	resp, body = doJSON(t, "GET", ts.URL+"/v1/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200 (liveness must survive a drain): %s", resp.StatusCode, body)
	}
	goldenCompare(t, "healthz_draining", body)

	resp, body = doJSON(t, "GET", ts.URL+"/v1/readyz", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503: %s", resp.StatusCode, body)
	}
	goldenCompare(t, "readyz_draining", body)
}

// TestGoldenCancelConflict pins the 409-vs-404 split on DELETE.
func TestGoldenCancelConflict(t *testing.T) {
	st := &stubRunner{}
	s, ts := goldenServer(t, st, Config{Workers: 1})

	resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"preset":"SOC_1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	waitState(t, s, "default", "j000001", StateSucceeded)

	resp, body = doJSON(t, "DELETE", ts.URL+"/v1/jobs/j000001", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel finished = %d, want 409: %s", resp.StatusCode, body)
	}
	goldenCompare(t, "error_conflict", body)
}

// TestGoldenCircuitOpen pins the breaker's 503 envelope and its
// Retry-After header.
func TestGoldenCircuitOpen(t *testing.T) {
	st := &stubRunner{err: fmt.Errorf("synthetic failure")}
	s, ts := goldenServer(t, st, Config{Workers: 1, BreakerThreshold: 2, BreakerCooldown: 30 * time.Second})

	for i := 1; i <= 2; i++ {
		resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"preset":"SOC_1"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, resp.StatusCode, body)
		}
		waitState(t, s, "default", fmt.Sprintf("j%06d", i), StateFailed)
	}
	resp, body := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"preset":"SOC_1"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit = %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "30" {
		t.Errorf("Retry-After = %q, want \"30\"", ra)
	}
	goldenCompare(t, "error_circuit_open", body)
}

// TestGoldenIdempotentReplay pins the Idempotency-Key surface: first
// submission 202, replay 200 with the same job (idempotency_key in the
// body), mismatched reuse 409.
func TestGoldenIdempotentReplay(t *testing.T) {
	st := &stubRunner{}
	s, ts := goldenServer(t, st, Config{Workers: 1})

	post := func(body, key string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp, body := post(`{"preset":"SOC_3","compress":true}`, "build-42")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202: %s", resp.StatusCode, body)
	}
	goldenCompare(t, "job_accepted_idempotent", body)
	waitState(t, s, "default", "j000001", StateSucceeded)

	resp, body = post(`{"preset":"SOC_3","compress":true}`, "build-42")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay = %d, want 200: %s", resp.StatusCode, body)
	}
	goldenCompare(t, "job_replayed_idempotent", body)

	resp, body = post(`{"preset":"SOC_3"}`, "build-42")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched reuse = %d, want 409: %s", resp.StatusCode, body)
	}
	goldenCompare(t, "error_idempotency_mismatch", body)
}
