package server

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// walFixture is a representative record sequence: an admission with a
// full spec, a start, and a terminal record with a result.
func walFixture() []walRecord {
	return []walRecord{
		{Op: walAdmitted, Job: "j000001", Tenant: "acme", Key: "deadbeefdeadbeef",
			Idem: "build-42", Spec: &Spec{Preset: "SOC_1", Compress: true}, Time: "2026-08-07T12:00:00Z"},
		{Op: walStarted, Job: "j000001"},
		{Op: walDone, Job: "j000001", State: StateSucceeded,
			Result: &ResultView{Flow: "presp", TotalMin: 42, BitstreamCRCs: []string{"a.bit:00000001"}}},
	}
}

func encodeAll(t *testing.T, recs []walRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		data, err := encodeWALRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
	}
	return buf.Bytes()
}

func TestWALRoundTrip(t *testing.T) {
	recs := walFixture()
	data := encodeAll(t, recs)
	got, clean := decodeWALPrefix(data)
	if clean != len(data) {
		t.Fatalf("clean prefix = %d, want %d (whole log)", clean, len(data))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, recs)
	}
}

// TestWALTornTailEveryLength is the record-level half of the crash
// battery: for every byte prefix of a valid log, replay must recover
// exactly the records whose encodings fit completely — no panic, no
// partial record, no lost complete record.
func TestWALTornTailEveryLength(t *testing.T) {
	recs := walFixture()
	data := encodeAll(t, recs)
	// Record boundaries: the byte offsets after each complete record.
	var bounds []int
	off := 0
	for _, r := range recs {
		enc, _ := encodeWALRecord(r)
		off += len(enc)
		bounds = append(bounds, off)
	}
	for cut := 0; cut <= len(data); cut++ {
		got, clean := decodeWALPrefix(data[:cut])
		wantN := 0
		for _, b := range bounds {
			if cut >= b {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		if wantN > 0 && clean != bounds[wantN-1] {
			t.Fatalf("cut %d: clean prefix = %d, want %d", cut, clean, bounds[wantN-1])
		}
		if wantN > 0 && !reflect.DeepEqual(got, recs[:wantN]) {
			t.Fatalf("cut %d: prefix records diverged", cut)
		}
	}
}

// TestWALCorruptMidRecord: a flipped bit anywhere inside a record ends
// the replay at that record — the prefix before it is still recovered,
// nothing after it is trusted.
func TestWALCorruptMidRecord(t *testing.T) {
	recs := walFixture()
	data := encodeAll(t, recs)
	first, _ := encodeWALRecord(recs[0])
	// Corrupt a byte inside the second record's body.
	mut := append([]byte(nil), data...)
	mut[len(first)+10] ^= 0x20
	got, clean := decodeWALPrefix(mut)
	if len(got) != 1 || clean != len(first) {
		t.Fatalf("corrupt mid-record: recovered %d records (clean %d), want 1 (%d)",
			len(got), clean, len(first))
	}
}

// TestWALOpenTruncatesTornTail: appending after a torn tail must not
// glue the new record onto the torn bytes — openWAL truncates first.
func TestWALOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	recs := walFixture()
	data := encodeAll(t, recs)
	torn := data[:len(data)-7] // tear the final record's trailer
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	w, replayed, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records from torn log, want 2", len(replayed))
	}
	next := walRecord{Op: walCancelled, Job: "j000002"}
	if err := w.append(next); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	again, clean := decodeWALPrefixFile(t, path)
	if len(again) != 3 {
		t.Fatalf("after torn-tail append: %d records, want 3 (2 replayed + 1 new)", len(again))
	}
	if !reflect.DeepEqual(again[2], next) {
		t.Fatalf("appended record diverged: %+v", again[2])
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(clean) != fi.Size() {
		t.Fatalf("log still has untrusted bytes: clean %d, size %d", clean, fi.Size())
	}
}

func decodeWALPrefixFile(t *testing.T, path string) ([]walRecord, int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, clean := decodeWALPrefix(data)
	return recs, clean
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecord{Op: walStarted, Job: "j000001"}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := w.close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// FuzzWALRecord is the codec's safety net: any byte soup must decode
// without panicking into a clean prefix that (a) never exceeds the
// input, (b) re-decodes to itself, and (c) stays appendable — a fresh
// record written after the clean prefix is always recovered.
func FuzzWALRecord(f *testing.F) {
	valid := func() []byte {
		var buf bytes.Buffer
		for _, r := range walFixture() {
			enc, _ := encodeWALRecord(r)
			buf.Write(enc)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("{}\ncrc32:00000000\n"))
	f.Add([]byte("not a wal at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean := decodeWALPrefix(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean prefix %d out of range [0,%d]", clean, len(data))
		}
		again, cleanAgain := decodeWALPrefix(data[:clean])
		if cleanAgain != clean || !reflect.DeepEqual(again, recs) {
			t.Fatalf("clean prefix is not a fixed point: %d/%d records, %d/%d bytes",
				len(again), len(recs), cleanAgain, clean)
		}
		// The prefix must stay appendable: write one more record after it
		// and recover everything.
		next := walRecord{Op: walStarted, Job: "j999999"}
		enc, err := encodeWALRecord(next)
		if err != nil {
			t.Fatal(err)
		}
		extended := append(append([]byte(nil), data[:clean]...), enc...)
		all, cleanAll := decodeWALPrefix(extended)
		if cleanAll != len(extended) || len(all) != len(recs)+1 {
			t.Fatalf("append after clean prefix lost records: %d, want %d", len(all), len(recs)+1)
		}
		if !reflect.DeepEqual(all[len(all)-1], next) {
			t.Fatalf("appended record diverged: %+v", all[len(all)-1])
		}
	})
}
