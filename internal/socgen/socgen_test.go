package socgen

import (
	"testing"

	"presp/internal/accel"
	"presp/internal/fpga"
	"presp/internal/noc"
	"presp/internal/rtl"
	"presp/internal/tile"
)

// fullRegistry returns the characterization accelerator library (the
// WAMI kernels live in a package that depends on this one, so their
// SoCs are covered by the wami and experiments test suites instead).
func fullRegistry(t *testing.T) *accel.Registry {
	t.Helper()
	return accel.Default()
}

func validConfig() *Config {
	return &Config{
		Name: "t", Board: "VC707", Cols: 2, Rows: 2, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "rt_1", Kind: tile.Reconf, AccelName: "fft", Pos: noc.Coord{X: 1, Y: 1}},
		},
	}
}

func TestValidateAcceptsGoodConfig(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		label  string
		mutate func(*Config)
	}{
		{"no name", func(c *Config) { c.Name = "" }},
		{"zero grid", func(c *Config) { c.Cols = 0 }},
		{"bad board", func(c *Config) { c.Board = "ZCU102" }},
		{"no tiles", func(c *Config) { c.Tiles = nil }},
		{"too many tiles", func(c *Config) { c.Cols, c.Rows = 1, 1 }},
		{"duplicate name", func(c *Config) { c.Tiles[1].Name = "cpu0" }},
		{"shared slot", func(c *Config) { c.Tiles[1].Pos = c.Tiles[0].Pos }},
		{"outside grid", func(c *Config) { c.Tiles[3].Pos = noc.Coord{X: 5, Y: 5} }},
		{"no CPU", func(c *Config) { c.Tiles[0].Kind = tile.SLM }},
		{"no MEM", func(c *Config) { c.Tiles[1].Kind = tile.SLM }},
		{"no AUX", func(c *Config) { c.Tiles[2].Kind = tile.SLM }},
		{"two AUX", func(c *Config) { c.Tiles[1] = tile.Tile{Name: "aux1", Kind: tile.Aux, Pos: noc.Coord{X: 1, Y: 0}} }},
	}
	for _, c := range cases {
		cfg := validConfig()
		c.mutate(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.label)
		}
	}
}

func TestReconfCPUSatisfiesCPURequirement(t *testing.T) {
	cfg := validConfig()
	cfg.Tiles[0] = tile.Tile{Name: "rt_cpu", Kind: tile.Reconf, ReconfCPU: true, Pos: noc.Coord{X: 0, Y: 0}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("reconfigurable CPU not counted: %v", err)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	cfg := SOC2()
	data, err := EncodeConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != cfg.Name || len(back.Tiles) != len(cfg.Tiles) {
		t.Fatalf("roundtrip lost data: %+v", back)
	}
	for i := range cfg.Tiles {
		if back.Tiles[i] != cfg.Tiles[i] {
			t.Fatalf("tile %d changed: %+v vs %+v", i, back.Tiles[i], cfg.Tiles[i])
		}
	}
}

func TestParseConfigRejectsGarbage(t *testing.T) {
	if _, err := ParseConfig([]byte("{not json")); err == nil {
		t.Fatal("garbage parsed")
	}
	if _, err := ParseConfig([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("invalid config parsed")
	}
}

func TestElaborateSplitsStaticAndReconfigurable(t *testing.T) {
	d, err := Elaborate(validConfig(), fullRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RPs) != 1 {
		t.Fatalf("partitions: got %d want 1", len(d.RPs))
	}
	if d.RPs[0].Resources[fpga.LUT] != 33690 {
		t.Fatalf("fft partition LUTs: got %d", d.RPs[0].Resources[fpga.LUT])
	}
	wantStatic := tile.CPUTileCost(tile.Leon3)[fpga.LUT] +
		tile.MemTileCost()[fpga.LUT] + tile.AuxTileCost()[fpga.LUT] +
		3*tile.RouterCost()[fpga.LUT]
	if d.StaticResources[fpga.LUT] != wantStatic {
		t.Fatalf("static LUTs: got %d want %d", d.StaticResources[fpga.LUT], wantStatic)
	}
	if d.ReconfigurableResources()[fpga.LUT] != 33690 {
		t.Fatalf("reconfigurable total: got %d", d.ReconfigurableResources()[fpga.LUT])
	}
}

func TestElaborateUnknownAccelerator(t *testing.T) {
	cfg := validConfig()
	cfg.Tiles[3].AccelName = "flux-capacitor"
	if _, err := Elaborate(cfg, fullRegistry(t)); err == nil {
		t.Fatal("unknown accelerator accepted")
	}
}

func TestElaborateReconfCPU(t *testing.T) {
	d, err := Elaborate(SOC4(), fullRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	// SOC_4 moves the CPU into the reconfigurable part: 5 partitions,
	// static = MEM + AUX (+ routers) = 39254.
	if len(d.RPs) != 5 {
		t.Fatalf("SOC_4 partitions: got %d want 5", len(d.RPs))
	}
	if d.StaticResources[fpga.LUT] != 39254 {
		t.Fatalf("SOC_4 static: got %d want 39254", d.StaticResources[fpga.LUT])
	}
	cpuRP, err := d.FindRP("rt_cpu")
	if err != nil {
		t.Fatal(err)
	}
	if cpuRP.Resources[fpga.LUT] != 41544 {
		t.Fatalf("CPU partition: got %d want 41544", cpuRP.Resources[fpga.LUT])
	}
}

// TestCharacterizationSoCsMatchPaperMetrics pins the whole resource
// model to the paper: the four characterization SoCs must land on the
// κ and γ values Table III reports.
func TestCharacterizationSoCsMatchPaperMetrics(t *testing.T) {
	reg := fullRegistry(t)
	cases := []struct {
		cfg        *Config
		kappa      float64
		gamma      float64
		partitions int
	}{
		{SOC1(), 0.271, 0.48, 16},
		{SOC2(), 0.271, 1.48, 4},
		{SOC3(), 0.271, 1.07, 3},
		{SOC4(), 0.129, 4.15, 5},
	}
	for _, c := range cases {
		d, err := Elaborate(c.cfg, reg)
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.Name, err)
		}
		if len(d.RPs) != c.partitions {
			t.Errorf("%s: %d partitions, want %d", c.cfg.Name, len(d.RPs), c.partitions)
		}
		kappa := float64(d.StaticResources[fpga.LUT]) / float64(d.Dev.Total[fpga.LUT])
		gamma := float64(d.ReconfigurableResources()[fpga.LUT]) / float64(d.StaticResources[fpga.LUT])
		if diff := kappa - c.kappa; diff > 0.005 || diff < -0.005 {
			t.Errorf("%s: κ=%.3f want %.3f", c.cfg.Name, kappa, c.kappa)
		}
		if diff := gamma - c.gamma; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: γ=%.3f want %.3f", c.cfg.Name, gamma, c.gamma)
		}
	}
}

func TestProfiling2x2(t *testing.T) {
	cfg := Profiling2x2("gemm")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(cfg, fullRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RPs) != 1 || d.RPs[0].Resources[fpga.LUT] != 30617 {
		t.Fatalf("profiling SoC wrong: %d partitions", len(d.RPs))
	}
}

func TestTileLookups(t *testing.T) {
	d, err := Elaborate(validConfig(), fullRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.TileAt(noc.Coord{X: 1, Y: 1}); got == nil || got.Name != "rt_1" {
		t.Fatal("TileAt missed rt_1")
	}
	if d.TileAt(noc.Coord{X: 5, Y: 5}) != nil {
		t.Fatal("TileAt invented a tile")
	}
	if _, err := d.TileByName("rt_1"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TileByName("nope"); err == nil {
		t.Fatal("TileByName invented a tile")
	}
	if _, err := d.FindRP("cpu0"); err == nil {
		t.Fatal("FindRP matched a static tile")
	}
}

func TestTopHierarchyContainsEveryTile(t *testing.T) {
	d, err := Elaborate(validConfig(), fullRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	d.Top.Walk(func(path string, _ *rtl.Module) { seen[path] = true })
	for _, want := range []string{"t_top/cpu0", "t_top/mem0", "t_top/aux0", "t_top/rt_1"} {
		if !seen[want] {
			t.Errorf("hierarchy missing %s (have %d paths)", want, len(seen))
		}
	}
	// Every tile carries its router.
	if !seen["t_top/cpu0/router0"] {
		t.Error("CPU tile lacks its NoC router")
	}
}
