// Package socgen builds SoC instances from tile-grid configurations, the
// role the ESP SoC generator plays in the real flow: it validates the
// configuration, elaborates the RTL hierarchy of every tile, and splits
// the design into its static part and its reconfigurable partitions —
// the separation the PR-ESP FPGA flow starts from (Fig 1).
package socgen

import (
	"encoding/json"
	"fmt"
	"sort"

	"presp/internal/accel"
	"presp/internal/fpga"
	"presp/internal/noc"
	"presp/internal/rtl"
	"presp/internal/tile"
)

// Config describes one SoC: the board, the tile grid and the clock.
type Config struct {
	// Name identifies the SoC (e.g. "SOC_2", "SoC_Y").
	Name string `json:"name"`
	// Board selects the target FPGA board (VC707, VCU118, VCU128).
	Board string `json:"board"`
	// Cols, Rows give the tile grid dimensions.
	Cols int `json:"cols"`
	Rows int `json:"rows"`
	// FreqHz is the SoC fabric clock; the paper's systems run at 78 MHz.
	FreqHz float64 `json:"freq_hz"`
	// Tiles lists the populated grid slots.
	Tiles []tile.Tile `json:"tiles"`
}

// Validate checks structural invariants of the configuration.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("socgen: config has no name")
	}
	if c.Cols <= 0 || c.Rows <= 0 {
		return fmt.Errorf("socgen: %s: invalid grid %dx%d", c.Name, c.Cols, c.Rows)
	}
	if len(c.Tiles) == 0 {
		return fmt.Errorf("socgen: %s: no tiles", c.Name)
	}
	if len(c.Tiles) > c.Cols*c.Rows {
		return fmt.Errorf("socgen: %s: %d tiles exceed %dx%d grid", c.Name, len(c.Tiles), c.Cols, c.Rows)
	}
	if _, err := fpga.ByBoard(c.Board); err != nil {
		return err
	}
	names := make(map[string]bool, len(c.Tiles))
	slots := make(map[noc.Coord]string, len(c.Tiles))
	var cpus, mems, auxs int
	for i := range c.Tiles {
		t := &c.Tiles[i]
		if err := t.Validate(); err != nil {
			return fmt.Errorf("socgen: %s: %w", c.Name, err)
		}
		if t.Pos.X < 0 || t.Pos.X >= c.Cols || t.Pos.Y < 0 || t.Pos.Y >= c.Rows {
			return fmt.Errorf("socgen: %s: tile %s at %s outside %dx%d grid", c.Name, t.Name, t.Pos, c.Cols, c.Rows)
		}
		if names[t.Name] {
			return fmt.Errorf("socgen: %s: duplicate tile name %q", c.Name, t.Name)
		}
		names[t.Name] = true
		if prev, taken := slots[t.Pos]; taken {
			return fmt.Errorf("socgen: %s: tiles %s and %s share slot %s", c.Name, prev, t.Name, t.Pos)
		}
		slots[t.Pos] = t.Name
		switch t.Kind {
		case tile.CPU:
			cpus++
		case tile.Mem:
			mems++
		case tile.Aux:
			auxs++
		case tile.Reconf:
			if t.ReconfCPU {
				cpus++
			}
		}
	}
	if cpus == 0 {
		return fmt.Errorf("socgen: %s: no CPU tile", c.Name)
	}
	if mems == 0 {
		return fmt.Errorf("socgen: %s: no MEM tile", c.Name)
	}
	if auxs != 1 {
		return fmt.Errorf("socgen: %s: want exactly one AUX tile, have %d", c.Name, auxs)
	}
	return nil
}

// MarshalJSON is provided by the embedded struct tags; ParseConfig is the
// inverse used by the CLI tools.
func ParseConfig(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("socgen: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// EncodeConfig serializes a configuration to the on-disk JSON form.
func EncodeConfig(c *Config) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(c, "", "  ")
}

// RP is one reconfigurable partition of an elaborated design.
type RP struct {
	// Name is the partition name (derives from the tile name).
	Name string
	// Tile is the hosting reconfigurable tile.
	Tile *tile.Tile
	// Content is the initial reconfigurable module (wrapper + accelerator
	// or the relocated CPU); nil means the RP starts as a black box.
	Content *rtl.Module
	// Resources is the post-synthesis utilization of the largest module
	// that must fit the partition.
	Resources fpga.Resources
}

// Design is an elaborated SoC: the full RTL hierarchy plus the
// static/reconfigurable split the flow consumes.
type Design struct {
	// Cfg is the source configuration.
	Cfg *Config
	// Dev is the target device model.
	Dev *fpga.Device
	// Top is the full-SoC RTL hierarchy.
	Top *rtl.Module
	// StaticModules are the per-tile modules of the static part
	// (including each tile's NoC router).
	StaticModules []*rtl.Module
	// RPs are the reconfigurable partitions in tile order.
	RPs []*RP
	// StaticResources is the total utilization of the static part.
	StaticResources fpga.Resources
}

// Elaborate builds the Design for config c, resolving accelerator names
// against reg. Reconfigurable tiles receive the PR-ESP wrapper interface;
// native accelerator tiles keep the (non-DFX-compliant) ESP socket.
func Elaborate(c *Config, reg *accel.Registry) (*Design, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	dev, err := fpga.ByBoard(c.Board)
	if err != nil {
		return nil, err
	}
	d := &Design{Cfg: c, Dev: dev}
	d.Top = &rtl.Module{Name: c.Name + "_top"}
	d.Top.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	d.Top.AddPort("rstn", rtl.In, 1, rtl.ResetPort)

	for i := range c.Tiles {
		t := &c.Tiles[i]
		var mod *rtl.Module
		switch t.Kind {
		case tile.CPU:
			mod = tile.CPUModule(t.Name, t.Core)
		case tile.Mem:
			mod = tile.MemModule(t.Name)
		case tile.Aux:
			mod = tile.AuxModule(t.Name, dev.Family)
		case tile.SLM:
			mod = tile.SLMModule(t.Name)
		case tile.Accel:
			desc, err := reg.Lookup(t.AccelName)
			if err != nil {
				return nil, fmt.Errorf("socgen: %s: tile %s: %w", c.Name, t.Name, err)
			}
			mod = tile.NativeAccelModule(t.Name, desc.Resources)
		case tile.Reconf:
			rp, err := elaborateRP(t, reg)
			if err != nil {
				return nil, fmt.Errorf("socgen: %s: %w", c.Name, err)
			}
			d.RPs = append(d.RPs, rp)
			mod = tile.ReconfModule(t.Name, rp.Content)
		default:
			return nil, fmt.Errorf("socgen: %s: tile %s has unsupported kind %s", c.Name, t.Name, t.Kind)
		}
		// Every populated tile instantiates its NoC router.
		router := &rtl.Module{Name: t.Name + "_router", Cost: tile.RouterCost()}
		mod.AddChild("router0", router)
		d.Top.AddChild(t.Name, mod)
		if t.Kind.Static() {
			d.StaticModules = append(d.StaticModules, mod)
			d.StaticResources = d.StaticResources.Add(mod.TotalCost())
		}
	}
	sort.Slice(d.RPs, func(i, j int) bool { return d.RPs[i].Name < d.RPs[j].Name })
	return d, nil
}

func elaborateRP(t *tile.Tile, reg *accel.Registry) (*RP, error) {
	rp := &RP{Name: t.Name + "_rp", Tile: t}
	if t.ReconfCPU {
		// The CPU tile content is relocated into the reconfigurable
		// partition to shrink the static region (SOC_4 / SoC_D).
		rp.Content = tile.WrapperModule(t.Name+"_cpu", tile.CPUTileCost(t.Core))
		rp.Resources = tile.CPUTileCost(t.Core)
		return rp, nil
	}
	desc, err := reg.Lookup(t.AccelName)
	if err != nil {
		return nil, fmt.Errorf("tile %s: %w", t.Name, err)
	}
	rp.Content = tile.WrapperModule(desc.Name, desc.Resources)
	rp.Resources = desc.Resources
	return rp, nil
}

// ReconfigurableResources sums the utilization of all RP contents, the
// numerator of the paper's γ metric.
func (d *Design) ReconfigurableResources() fpga.Resources {
	var sum fpga.Resources
	for _, rp := range d.RPs {
		sum = sum.Add(rp.Resources)
	}
	return sum
}

// TileAt returns the tile occupying mesh coordinate c, or nil.
func (d *Design) TileAt(c noc.Coord) *tile.Tile {
	for i := range d.Cfg.Tiles {
		if d.Cfg.Tiles[i].Pos == c {
			return &d.Cfg.Tiles[i]
		}
	}
	return nil
}

// TileByName returns the named tile, or an error.
func (d *Design) TileByName(name string) (*tile.Tile, error) {
	for i := range d.Cfg.Tiles {
		if d.Cfg.Tiles[i].Name == name {
			return &d.Cfg.Tiles[i], nil
		}
	}
	return nil, fmt.Errorf("socgen: %s: no tile named %q", d.Cfg.Name, name)
}

// FindRP returns the reconfigurable partition hosted by the named tile.
func (d *Design) FindRP(tileName string) (*RP, error) {
	for _, rp := range d.RPs {
		if rp.Tile.Name == tileName {
			return rp, nil
		}
	}
	return nil, fmt.Errorf("socgen: %s: tile %q hosts no reconfigurable partition", d.Cfg.Name, tileName)
}
