package socgen

import (
	"fmt"

	"presp/internal/noc"
	"presp/internal/tile"
)

// The four characterization SoCs of Section IV. Each targets the VC707
// and is shaped so its LUT profile lands in one of the size classes:
//
//	SOC_1 (class 1.1): 4x5 grid, 16 reconfigurable MAC tiles.
//	SOC_2 (class 1.2): 3x3 grid, Conv2d + GEMM + FFT + Sort.
//	SOC_3 (class 1.3): 3x3 grid, Conv2d + GEMM + Sort.
//	SOC_4 (class 2.1): SOC_2 with the CPU tile moved into the
//	                   reconfigurable part to shrink the static region.

// CharacterizationSoCs returns the configs for SOC_1..SOC_4 in order.
func CharacterizationSoCs() []*Config {
	return []*Config{SOC1(), SOC2(), SOC3(), SOC4()}
}

// SOC1 builds the class-1.1 characterization SoC: a 4x5 tile grid with
// sixteen instances of the reconfigurable MAC accelerator (generated with
// the ESP Vivado HLS flow) and a Leon3 static part.
func SOC1() *Config {
	c := &Config{Name: "SOC_1", Board: "VC707", Cols: 4, Rows: 5, FreqHz: 78e6}
	c.Tiles = append(c.Tiles,
		tile.Tile{Name: "cpu0", Kind: tile.CPU, Core: tile.Leon3, Pos: noc.Coord{X: 0, Y: 0}},
		tile.Tile{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
		tile.Tile{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
	)
	slot := 0
	for y := 0; y < 5; y++ {
		for x := 0; x < 4; x++ {
			if y == 0 && x < 3 {
				continue // static tiles
			}
			if slot >= 16 {
				break
			}
			c.Tiles = append(c.Tiles, tile.Tile{
				Name:      fmt.Sprintf("rt_%d", slot+1),
				Kind:      tile.Reconf,
				AccelName: "mac",
				Pos:       noc.Coord{X: x, Y: y},
			})
			slot++
		}
	}
	return c
}

// SOC2 builds the class-1.2 characterization SoC: a 3x3 grid with the
// four Stratus HLS accelerators (Conv2d, GEMM, FFT, Sort).
func SOC2() *Config {
	return threeByThree("SOC_2", []string{"conv2d", "gemm", "fft", "sort"}, false)
}

// SOC3 builds the class-1.3 characterization SoC: SOC_2 without the FFT.
func SOC3() *Config {
	return threeByThree("SOC_3", []string{"conv2d", "gemm", "sort"}, false)
}

// SOC4 builds the class-2.1 characterization SoC: SOC_2 with the CPU tile
// configured as partially reconfigurable. The goal is not swapping the
// CPU at runtime but shrinking the static part (Section IV).
func SOC4() *Config {
	return threeByThree("SOC_4", []string{"conv2d", "gemm", "fft", "sort"}, true)
}

// threeByThree lays out a 3x3 SoC: static tiles on the top row (CPU, MEM,
// AUX), reconfigurable tiles filling subsequent slots in row-major order.
func threeByThree(name string, accs []string, reconfCPU bool) *Config {
	c := &Config{Name: name, Board: "VC707", Cols: 3, Rows: 3, FreqHz: 78e6}
	if reconfCPU {
		c.Tiles = append(c.Tiles, tile.Tile{
			Name: "rt_cpu", Kind: tile.Reconf, Core: tile.Leon3, ReconfCPU: true,
			Pos: noc.Coord{X: 0, Y: 0},
		})
	} else {
		c.Tiles = append(c.Tiles, tile.Tile{Name: "cpu0", Kind: tile.CPU, Core: tile.Leon3, Pos: noc.Coord{X: 0, Y: 0}})
	}
	c.Tiles = append(c.Tiles,
		tile.Tile{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
		tile.Tile{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 2, Y: 0}},
	)
	pos := []noc.Coord{{X: 0, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 1}, {X: 0, Y: 2}, {X: 1, Y: 2}, {X: 2, Y: 2}}
	for i, a := range accs {
		c.Tiles = append(c.Tiles, tile.Tile{
			Name:      fmt.Sprintf("rt_%d", i+1),
			Kind:      tile.Reconf,
			AccelName: a,
			Pos:       pos[i],
		})
	}
	return c
}

// Profiling2x2 builds the 2x2 single-accelerator profiling SoC the paper
// uses to characterize each accelerator's LUT consumption and execution
// time (Section VI).
func Profiling2x2(accName string) *Config {
	return &Config{
		Name: "PROF_" + accName, Board: "VC707", Cols: 2, Rows: 2, FreqHz: 78e6,
		Tiles: []tile.Tile{
			{Name: "cpu0", Kind: tile.CPU, Core: tile.Leon3, Pos: noc.Coord{X: 0, Y: 0}},
			{Name: "mem0", Kind: tile.Mem, Pos: noc.Coord{X: 1, Y: 0}},
			{Name: "aux0", Kind: tile.Aux, Pos: noc.Coord{X: 0, Y: 1}},
			{Name: "rt_1", Kind: tile.Reconf, AccelName: accName, Pos: noc.Coord{X: 1, Y: 1}},
		},
	}
}
