package floorplan

import (
	"fmt"
	"testing"
	"testing/quick"

	"presp/internal/fpga"
)

func req(name string, luts int) Request {
	return Request{Name: name, Need: fpga.NewResources(luts, luts, luts/450, luts/900)}
}

func TestFloorplanBasic(t *testing.T) {
	d := fpga.VC707()
	plan, err := Floorplan(d, []Request{req("a", 30000), req("b", 20000)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pblocks) != 2 {
		t.Fatalf("pblocks: got %d", len(plan.Pblocks))
	}
	for name, pb := range plan.Pblocks {
		if pb.Name != name {
			t.Fatalf("pblock name mismatch: %s vs %s", pb.Name, name)
		}
		if err := pb.Validate(d); err != nil {
			t.Fatal(err)
		}
	}
	a, b := plan.Pblocks["a"], plan.Pblocks["b"]
	if a.Overlaps(b) {
		t.Fatal("pblocks overlap")
	}
	if plan.RPFraction <= 0 || plan.RPFraction >= 1 {
		t.Fatalf("reserved fraction %g implausible", plan.RPFraction)
	}
}

func TestFloorplanSatisfiesNeedsWithSlack(t *testing.T) {
	d := fpga.VC707()
	needs := []Request{req("x", 33690), req("y", 2450), req("z", 20468)}
	plan, err := Floorplan(d, needs, Options{Slack: 1.25})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range needs {
		pb := plan.Pblocks[r.Name]
		avail := pb.ResourcesOn(d)
		if !avail.Covers(r.Need.Scale(1.25)) {
			t.Errorf("%s: pblock %s does not cover need+slack %s", r.Name, avail, r.Need.Scale(1.25))
		}
	}
}

func TestFloorplanValidation(t *testing.T) {
	d := fpga.VC707()
	if _, err := Floorplan(nil, []Request{req("a", 100)}, Options{}); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := Floorplan(d, nil, Options{}); err == nil {
		t.Fatal("empty request list accepted")
	}
	if _, err := Floorplan(d, []Request{req("", 100)}, Options{}); err == nil {
		t.Fatal("unnamed request accepted")
	}
	if _, err := Floorplan(d, []Request{req("a", 100), req("a", 200)}, Options{}); err == nil {
		t.Fatal("duplicate request accepted")
	}
	if _, err := Floorplan(d, []Request{req("a", 0)}, Options{}); err == nil {
		t.Fatal("zero-LUT request accepted")
	}
	if _, err := Floorplan(d, []Request{req("a", 100)}, Options{Slack: 1.0}); err == nil {
		t.Fatal("slack below closure minimum accepted")
	}
}

func TestFloorplanFabricExhaustion(t *testing.T) {
	d := fpga.VC707()
	// One partition larger than the device.
	if _, err := Floorplan(d, []Request{req("big", 400000)}, Options{}); err == nil {
		t.Fatal("oversized partition placed")
	}
	// Many partitions that cannot coexist.
	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, req(fmt.Sprintf("p%d", i), 30000))
	}
	if _, err := Floorplan(d, reqs, Options{}); err == nil {
		t.Fatal("over-committed fabric accepted")
	}
}

func TestFloorplanStaticNeedCheck(t *testing.T) {
	d := fpga.VC707()
	reqs := []Request{req("a", 100000), req("b", 80000)}
	// Plenty of partitions plus a static part that no longer fits.
	if _, err := Floorplan(d, reqs, Options{StaticNeed: fpga.NewResources(100000, 0, 0, 0)}); err == nil {
		t.Fatal("static part that does not fit accepted")
	}
	// A small static part is fine.
	if _, err := Floorplan(d, reqs, Options{StaticNeed: fpga.NewResources(30000, 0, 0, 0)}); err != nil {
		t.Fatalf("feasible static part rejected: %v", err)
	}
}

func TestFloorplanSixteenSmallPartitions(t *testing.T) {
	// SOC_1's layout: sixteen 2450-LUT partitions must coexist thanks to
	// sub-clock-region granularity.
	d := fpga.VC707()
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, req(fmt.Sprintf("mac%d", i), 2450))
	}
	plan, err := Floorplan(d, reqs, Options{StaticNeed: fpga.NewResources(82267, 0, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pblocks) != 16 {
		t.Fatalf("placed %d of 16", len(plan.Pblocks))
	}
}

// TestFloorplanDisjointProperty: any feasible plan has pairwise
// disjoint pblocks, each covering its padded request.
func TestFloorplanDisjointProperty(t *testing.T) {
	d := fpga.VC707()
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 8 {
			return true
		}
		var reqs []Request
		for i, s := range sizes {
			luts := 1000 + int(s)%30000
			reqs = append(reqs, req(fmt.Sprintf("p%d", i), luts))
		}
		plan, err := Floorplan(d, reqs, Options{})
		if err != nil {
			return true // infeasible inputs may be rejected
		}
		names := make([]string, 0, len(plan.Pblocks))
		for n := range plan.Pblocks {
			names = append(names, n)
		}
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				if plan.Pblocks[names[i]].Overlaps(plan.Pblocks[names[j]]) {
					return false
				}
			}
		}
		for _, r := range reqs {
			pb, ok := plan.Pblocks[r.Name]
			if !ok {
				return false
			}
			if !pb.ResourcesOn(d).Covers(r.Need.Scale(1.25)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeCellAccounting(t *testing.T) {
	d := fpga.VC707()
	plan, err := Floorplan(d, []Request{req("a", 30000)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	used := plan.Pblocks["a"].CellCount()
	if plan.FreeCells != d.Cells()-used {
		t.Fatalf("free cells: got %d want %d", plan.FreeCells, d.Cells()-used)
	}
}
