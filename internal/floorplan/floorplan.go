// Package floorplan automates DPR floorplanning in the way PR-ESP adapts
// the FLORA tool (Section IV): given the post-synthesis resource needs
// of every reconfigurable partition and the target device, it produces
// non-overlapping, clock-region-aligned pblocks that satisfy each
// partition's resources (with head-room) and the vendor's technology
// constraints, while leaving enough fabric free for the static part.
package floorplan

import (
	"fmt"
	"sort"

	"presp/internal/fpga"
)

// Request asks for one partition's placement.
type Request struct {
	// Name is the partition name (becomes the pblock name).
	Name string
	// Need is the partition's post-synthesis resource requirement — the
	// largest reconfigurable module that must fit the partition.
	Need fpga.Resources
}

// Options tunes the floorplanner.
type Options struct {
	// Slack is the resource head-room factor (reserved = need × slack).
	// Values below 1.05 make P&R closure unrealistic; default 1.25.
	Slack float64
	// StaticNeed is the static part's resource requirement; the planner
	// fails when the free fabric cannot host it.
	StaticNeed fpga.Resources
}

// Plan is the floorplanning result.
type Plan struct {
	// Pblocks maps partition name to its placement.
	Pblocks map[string]fpga.Pblock
	// RPFraction is the fraction of fabric LUTs reserved by all pblocks.
	RPFraction float64
	// FreeCells is the placement-cell count left to the static part.
	FreeCells int
}

// Floorplan places every request on device d. The algorithm is
// first-fit-decreasing over clock regions with column-shaped candidates
// preferred (vertically aligned pblocks cross fewer configuration
// column boundaries), followed by a shrink pass that trims any excess
// regions a rectangle shape forced.
func Floorplan(d *fpga.Device, reqs []Request, opt Options) (*Plan, error) {
	if d == nil {
		return nil, fmt.Errorf("floorplan: nil device")
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("floorplan: no partitions to place")
	}
	slack := opt.Slack
	if slack == 0 {
		slack = 1.25
	}
	if slack < 1.05 {
		return nil, fmt.Errorf("floorplan: slack %.2f below the 1.05 closure minimum", slack)
	}
	seen := make(map[string]bool, len(reqs))
	for _, r := range reqs {
		if r.Name == "" {
			return nil, fmt.Errorf("floorplan: request with empty name")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("floorplan: duplicate partition %q", r.Name)
		}
		seen[r.Name] = true
		if r.Need[fpga.LUT] <= 0 {
			return nil, fmt.Errorf("floorplan: partition %q needs no LUTs", r.Name)
		}
	}

	cell := d.CellResources()
	// Cells needed per request, after slack, driven by the scarcest
	// resource kind.
	cellsFor := func(need fpga.Resources) int {
		padded := need.Scale(slack)
		max := 1
		for _, k := range fpga.Kinds() {
			if cell[k] == 0 {
				if padded[k] > 0 {
					return -1
				}
				continue
			}
			n := (padded[k] + cell[k] - 1) / cell[k]
			if n > max {
				max = n
			}
		}
		return max
	}

	type job struct {
		req   Request
		cells int
	}
	jobs := make([]job, 0, len(reqs))
	for _, r := range reqs {
		n := cellsFor(r.Need)
		if n < 0 {
			return nil, fmt.Errorf("floorplan: partition %q needs a resource device %s lacks", r.Name, d.Name)
		}
		if n > d.Cells() {
			return nil, fmt.Errorf("floorplan: partition %q needs %d placement cells, device %s has %d",
				r.Name, n, d.Name, d.Cells())
		}
		jobs = append(jobs, job{req: r, cells: n})
	}
	// First-fit decreasing: biggest partitions claim fabric first.
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].cells != jobs[j].cells {
			return jobs[i].cells > jobs[j].cells
		}
		return jobs[i].req.Name < jobs[j].req.Name
	})

	occ := fpga.NewOccupancy(d)
	plan := &Plan{Pblocks: make(map[string]fpga.Pblock, len(jobs))}
	for _, jb := range jobs {
		pb, ok := place(d, occ, jb.req.Name, jb.cells)
		if !ok {
			return nil, fmt.Errorf("floorplan: cannot place partition %q (%d placement cells) — fabric exhausted",
				jb.req.Name, jb.cells)
		}
		if err := occ.Claim(pb); err != nil {
			return nil, err
		}
		plan.Pblocks[jb.req.Name] = pb
	}

	plan.FreeCells = occ.FreeCells()
	reserved := 0
	for _, pb := range plan.Pblocks {
		reserved += pb.ResourcesOn(d)[fpga.LUT]
	}
	plan.RPFraction = float64(reserved) / float64(d.Total[fpga.LUT])

	if !opt.StaticNeed.IsZero() {
		free := cell.Scale(float64(plan.FreeCells))
		if !free.Covers(opt.StaticNeed) {
			return nil, fmt.Errorf("floorplan: static part (%s) does not fit the %d free placement cells (%s)",
				opt.StaticNeed, plan.FreeCells, free)
		}
	}
	return plan, nil
}

// place finds the first free rectangle of `cells` placement cells,
// preferring shapes that tile exactly (no over-allocation) and, among
// those, wide-and-short shapes that stay within one clock-region row
// where possible; falls back to the smallest enclosing rectangle.
func place(d *fpga.Device, occ *fpga.Occupancy, name string, cells int) (fpga.Pblock, bool) {
	type shape struct{ w, h int }
	var shapes []shape
	for h := 1; h <= d.GridRows(); h++ {
		if cells%h == 0 && cells/h <= d.GridCols() {
			shapes = append(shapes, shape{w: cells / h, h: h})
		}
	}
	// Fallback shapes that over-allocate minimally.
	for h := 1; h <= d.GridRows(); h++ {
		w := (cells + h - 1) / h
		if w <= d.GridCols() {
			shapes = append(shapes, shape{w: w, h: h})
		}
	}
	for _, s := range shapes {
		for y := 0; y+s.h <= d.GridRows(); y++ {
			for x := 0; x+s.w <= d.GridCols(); x++ {
				pb := fpga.Pblock{Name: name, X0: x, Y0: y, X1: x + s.w - 1, Y1: y + s.h - 1}
				if occ.CanClaim(pb) {
					return pb, true
				}
			}
		}
	}
	return fpga.Pblock{}, false
}
