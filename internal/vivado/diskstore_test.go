package vivado

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"presp/internal/fpga"
	"presp/internal/obs"
)

func testCheckpoint(name string) *SynthCheckpoint {
	return &SynthCheckpoint{
		Name:       name,
		Resources:  fpga.NewResources(1200, 900, 4, 8),
		OoC:        true,
		Runtime:    12.5,
		BlackBoxes: []string{"u_rp0", "u_rp1"},
	}
}

func openTestStore(t *testing.T) *DiskStore {
	t.Helper()
	ds, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestDiskStoreRoundTrip: a stored checkpoint loads back byte-for-byte,
// re-storing an existing key is a no-op (content-addressed), and a
// missing key is a miss.
func TestDiskStoreRoundTrip(t *testing.T) {
	ds := openTestStore(t)
	ck := testCheckpoint("acc")
	if err := ds.Store("k1", ck); err != nil {
		t.Fatal(err)
	}
	got, ok := ds.Load("k1")
	if !ok {
		t.Fatal("stored entry did not load")
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("round-trip mismatch: got %+v, want %+v", got, ck)
	}
	// Loads hand out independent copies: mutating one must not leak into
	// the next.
	got.BlackBoxes[0] = "mutated"
	again, _ := ds.Load("k1")
	if again.BlackBoxes[0] != "u_rp0" {
		t.Fatal("disk loads alias each other")
	}
	if err := ds.Store("k1", testCheckpoint("other")); err != nil {
		t.Fatal(err)
	}
	st := ds.Stats()
	if st.Writes != 1 {
		t.Fatalf("Writes = %d, want 1 (re-store of a present key is a no-op)", st.Writes)
	}
	if st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 entry", st)
	}
	if _, ok := ds.Load("absent"); ok {
		t.Fatal("missing key loaded")
	}
	if st := ds.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
}

// TestDiskStoreRejectsBadInput: empty keys, nil checkpoints and an empty
// directory are refused up front.
func TestDiskStoreRejectsBadInput(t *testing.T) {
	if _, err := OpenDiskStore(""); err == nil {
		t.Fatal("empty directory accepted")
	}
	ds := openTestStore(t)
	if err := ds.Store("", testCheckpoint("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := ds.Store("k", nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	if _, ok := ds.Load(""); ok {
		t.Fatal("empty key loaded")
	}
}

// corruptEntry flips one byte in the on-disk file for key.
func corruptEntry(t *testing.T, ds *DiskStore, key string, offset int) {
	t.Helper()
	path := filepath.Join(ds.Dir(), key+diskEntryExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offset] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDiskStoreQuarantineCorrupt: a flipped byte means the entry is
// never loaded — it is moved aside as *.bad, counted, and the key can be
// recomputed and stored again.
func TestDiskStoreQuarantineCorrupt(t *testing.T) {
	ds := openTestStore(t)
	if err := ds.Store("k1", testCheckpoint("acc")); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, ds, "k1", 3)
	if _, ok := ds.Load("k1"); ok {
		t.Fatal("corrupt entry loaded")
	}
	st := ds.Stats()
	if st.Corrupt != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats after corruption = %+v, want 1 corrupt / 1 miss / 0 entries", st)
	}
	if _, err := os.Stat(filepath.Join(ds.Dir(), "k1"+diskEntryExt+diskQuarantineExt)); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(ds.Dir(), "k1"+diskEntryExt)); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still present under its live name")
	}
	// The key is recomputable: a fresh store makes it loadable again.
	if err := ds.Store("k1", testCheckpoint("acc")); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Load("k1"); !ok {
		t.Fatal("recomputed entry did not load")
	}
}

// TestDiskStoreTruncatedEntry: a file too short to carry the CRC trailer
// is quarantined, not trusted.
func TestDiskStoreTruncatedEntry(t *testing.T) {
	ds := openTestStore(t)
	if err := ds.Store("k1", testCheckpoint("acc")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(ds.Dir(), "k1"+diskEntryExt)
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Load("k1"); ok {
		t.Fatal("truncated entry loaded")
	}
	if st := ds.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
}

// TestDiskStoreVerifyAtOpen: reopening a directory verifies every entry
// up front — good ones survive, corrupt ones are quarantined before any
// Load can see them.
func TestDiskStoreVerifyAtOpen(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Store("good", testCheckpoint("acc")); err != nil {
		t.Fatal(err)
	}
	if err := ds.Store("bad", testCheckpoint("acc2")); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, ds, "bad", 5)
	if err := os.WriteFile(filepath.Join(dir, "garbage"+diskEntryExt), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	ds2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := ds2.Stats()
	if st.Entries != 1 || st.Corrupt != 2 {
		t.Fatalf("stats after reopen = %+v, want 1 entry / 2 corrupt", st)
	}
	if _, ok := ds2.Load("good"); !ok {
		t.Fatal("good entry lost across reopen")
	}
	if _, ok := ds2.Load("bad"); ok {
		t.Fatal("corrupt entry loaded after reopen")
	}
}

// TestDiskStoreGCOldestFirst: the byte budget evicts the
// least-recently-accessed entries first, and a Load refreshes its
// entry's recency so hot entries survive the sweep.
func TestDiskStoreGCOldestFirst(t *testing.T) {
	ds := openTestStore(t)
	var size int64
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := ds.Store(k, testCheckpoint("m_"+k)); err != nil {
			t.Fatal(err)
		}
	}
	size = ds.Stats().Bytes / 3
	// Pin distinct access times: k1 oldest, k3 newest.
	base := time.Now().Add(-time.Hour)
	for i, k := range []string{"k1", "k2", "k3"} {
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(ds.Dir(), k+diskEntryExt), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// Budget for two entries: the oldest (k1) must go.
	ds.SetMaxBytes(2 * size)
	st := ds.Stats()
	if st.Entries != 2 || st.GCEvictions != 1 {
		t.Fatalf("stats after GC = %+v, want 2 entries / 1 eviction", st)
	}
	if _, ok := ds.Load("k1"); ok {
		t.Fatal("oldest entry survived the byte budget")
	}
	// That Load was a miss; k2 is now the oldest — but touching it via a
	// successful Load must protect it, so adding a new entry evicts k3.
	if _, ok := ds.Load("k2"); !ok {
		t.Fatal("k2 missing")
	}
	if err := ds.Store("k4", testCheckpoint("m_k4")); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Load("k2"); !ok {
		t.Fatal("recently-loaded entry was GC'd ahead of older ones")
	}
	if _, ok := ds.Load("k3"); ok {
		t.Fatal("stale entry survived while a fresher one was evicted")
	}
}

// TestDiskStoreObserver: the cache_disk_* instruments land on the shared
// registry with the documented names and track real operations.
func TestDiskStoreObserver(t *testing.T) {
	ds := openTestStore(t)
	o := obs.New()
	ds.SetObserver(o)
	if err := ds.Store("k1", testCheckpoint("acc")); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Load("k1"); !ok {
		t.Fatal("load failed")
	}
	if _, ok := ds.Load("absent"); ok {
		t.Fatal("phantom hit")
	}
	corruptEntry(t, ds, "k1", 2)
	if _, ok := ds.Load("k1"); ok {
		t.Fatal("corrupt load succeeded")
	}
	snap := o.Metrics().Snapshot()
	want := map[string]int64{
		"cache_disk_hits":    1,
		"cache_disk_misses":  2,
		"cache_disk_writes":  1,
		"cache_disk_corrupt": 1,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	for _, name := range []string{"cache_disk_load_ms", "cache_disk_store_ms"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %s missing or empty", name)
		}
	}
}

// TestCacheDiskWriteThroughAndWarmRestart: inserts write through to
// disk, and a fresh cache over the same directory serves the key as a
// hit without any compute — the warm-restart contract.
func TestCacheDiskWriteThroughAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCheckpointCache()
	cache.SetDiskStore(ds)
	if cache.Disk() != ds {
		t.Fatal("Disk() does not report the attached store")
	}
	want, role, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
		return testCheckpoint("acc"), nil
	})
	if err != nil || role != roleLeader {
		t.Fatalf("first materialize = role %v, err %v", role, err)
	}
	if ds.Len() != 1 {
		t.Fatalf("insert did not write through: disk has %d entries", ds.Len())
	}

	// "Restart": new process state, same directory.
	ds2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache2 := NewCheckpointCache()
	cache2.SetDiskStore(ds2)
	got, role, err := cache2.materialize("k", func() (*SynthCheckpoint, error) {
		t.Error("warm restart paid a compute")
		return nil, nil
	})
	if err != nil || role != roleHit {
		t.Fatalf("warm materialize = role %v, err %v, want disk-served hit", role, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disk-served checkpoint differs: got %+v, want %+v", got, want)
	}
	if hits, misses := cache2.Stats(); hits != 1 || misses != 0 {
		t.Fatalf("warm cache stats = %d hits / %d misses, want 1/0", hits, misses)
	}
	if st := ds2.Stats(); st.Hits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.Hits)
	}
	// Promotion happened: a second materialize is a pure memory hit.
	if _, role, _ := cache2.materialize("k", nil); role != roleHit {
		t.Fatal("promoted entry not served from memory")
	}
	if st := ds2.Stats(); st.Hits != 1 {
		t.Fatalf("memory hit went back to disk (disk hits = %d)", st.Hits)
	}
}

// TestCacheDiskPromotionSingleFlight: N callers racing on a
// disk-resident key cost exactly one file read — the probe rides the
// flight, and everyone shares the promoted checkpoint.
func TestCacheDiskPromotionSingleFlight(t *testing.T) {
	ds := openTestStore(t)
	if err := ds.Store("k", testCheckpoint("acc")); err != nil {
		t.Fatal(err)
	}
	cache := NewCheckpointCache()
	cache.SetDiskStore(ds)

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ck, _, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
				t.Error("disk-resident key paid a compute")
				return nil, nil
			})
			if err == nil && ck.Name != "acc" {
				err = os.ErrInvalid
			}
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if st := ds.Stats(); st.Hits != 1 {
		t.Fatalf("disk hits = %d, want exactly 1 (probe rides the single flight)", st.Hits)
	}
	if hits, misses := cache.Stats(); hits != n || misses != 0 {
		t.Fatalf("cache stats = %d hits / %d misses, want %d/0", hits, misses, n)
	}
}

// TestCacheEvictionDemotesToDisk: with a disk tier attached, LRU
// eviction demotes the victim to disk-only instead of discarding it, and
// the key is later served back from disk as a hit.
func TestCacheEvictionDemotesToDisk(t *testing.T) {
	cache := NewCheckpointCache()
	// Preload while memory-only, so nothing is on disk yet.
	cache.Preload("a", testCheckpoint("ma"))
	cache.Preload("b", testCheckpoint("mb"))
	ds := openTestStore(t)
	cache.SetDiskStore(ds)
	if ds.Len() != 0 {
		t.Fatal("attaching a store wrote entries")
	}
	// Shrinking evicts "a" (the LRU entry) — it must land on disk.
	cache.SetMaxEntries(1)
	if cache.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", cache.Evictions())
	}
	if ds.Len() != 1 {
		t.Fatalf("disk has %d entries after demotion, want 1", ds.Len())
	}
	ck, role, err := cache.materialize("a", func() (*SynthCheckpoint, error) {
		t.Error("demoted key paid a compute")
		return nil, nil
	})
	if err != nil || role != roleHit || ck.Name != "ma" {
		t.Fatalf("demoted key materialize = (%+v, %v, %v), want disk-served ma", ck, role, err)
	}
}

// FuzzDiskEntry mutates a valid on-disk entry — truncation plus a byte
// flip at an arbitrary offset — and asserts the decoder never trusts a
// damaged file: any real mutation must fail decoding, and the unmutated
// entry must decode to exactly the original checkpoint.
func FuzzDiskEntry(f *testing.F) {
	ck := testCheckpoint("fuzz_mod")
	valid, err := encodeDiskEntry(ck)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(0, byte(0), len(valid))
	f.Add(3, byte(1), len(valid))
	f.Add(0, byte(0), 0)
	f.Add(len(valid)-1, byte(0x80), len(valid))
	f.Add(0, byte(0xff), diskTrailerLen)
	f.Fuzz(func(t *testing.T, off int, flip byte, keep int) {
		data := append([]byte(nil), valid...)
		if keep < 0 {
			keep = -keep
		}
		if keep > len(data) {
			keep = len(data)
		}
		data = data[:keep]
		mutated := keep < len(valid)
		if len(data) > 0 {
			i := off % len(data)
			if i < 0 {
				i += len(data)
			}
			data[i] ^= flip
			if flip != 0 {
				mutated = true
			}
		}
		got, err := decodeDiskEntry(data)
		if !mutated {
			if err != nil {
				t.Fatalf("pristine entry rejected: %v", err)
			}
			if !reflect.DeepEqual(got, ck) {
				t.Fatalf("pristine entry decoded to %+v, want %+v", got, ck)
			}
			return
		}
		if err == nil {
			t.Fatalf("mutated entry (keep=%d flip=%#x off=%d) decoded to %+v", keep, flip, off, got)
		}
	})
}

// TestDiskStoreQuarantineAgeOut: a quarantined *.bad file is kept for
// post-mortem, counted in Stats, and aged out by the GC once it is older
// than quarantineMaxAge — even with no byte budget configured.
func TestDiskStoreQuarantineAgeOut(t *testing.T) {
	ds := openTestStore(t)
	o := obs.New()
	ds.SetObserver(o)
	if err := ds.Store("k1", testCheckpoint("acc")); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, ds, "k1", 3)
	if _, ok := ds.Load("k1"); ok {
		t.Fatal("corrupt entry loaded")
	}
	st := ds.Stats()
	if st.Quarantined != 1 || st.QuarantinedBytes <= 0 {
		t.Fatalf("stats = %+v, want 1 quarantined file with bytes", st)
	}

	// A fresh quarantine survives a GC pass...
	if err := ds.Store("k2", testCheckpoint("acc2")); err != nil {
		t.Fatal(err)
	}
	if st := ds.Stats(); st.Quarantined != 1 || st.QuarantineEvictions != 0 {
		t.Fatalf("fresh quarantine aged out early: %+v", st)
	}

	// ...but once older than quarantineMaxAge the next pass removes it.
	bad := filepath.Join(ds.Dir(), "k1"+diskEntryExt+diskQuarantineExt)
	old := time.Now().Add(-quarantineMaxAge - time.Hour)
	if err := os.Chtimes(bad, old, old); err != nil {
		t.Fatal(err)
	}
	if err := ds.Store("k3", testCheckpoint("acc3")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("aged quarantine file still on disk")
	}
	st = ds.Stats()
	if st.Quarantined != 0 || st.QuarantinedBytes != 0 || st.QuarantineEvictions != 1 {
		t.Fatalf("stats after age-out = %+v, want 0 quarantined / 1 eviction", st)
	}
	snap := o.Metrics().Snapshot()
	if snap.Counters["cache_disk_quarantine_evictions"] != 1 {
		t.Errorf("cache_disk_quarantine_evictions = %d, want 1",
			snap.Counters["cache_disk_quarantine_evictions"])
	}
}

// TestDiskStoreQuarantineCountsAgainstBudget: *.bad files count toward
// SetMaxBytes and are sacrificed ahead of live entries — a corruption
// storm shrinks the post-mortem pile, not the working set.
func TestDiskStoreQuarantineCountsAgainstBudget(t *testing.T) {
	ds := openTestStore(t)
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := ds.Store(k, testCheckpoint("m_"+k)); err != nil {
			t.Fatal(err)
		}
	}
	size := ds.Stats().Bytes / 3
	corruptEntry(t, ds, "k2", 3)
	if _, ok := ds.Load("k2"); ok {
		t.Fatal("corrupt entry loaded")
	}
	// Live: k1 + k3 (2*size). Quarantined: k2's corpse (size). A budget
	// of 2*size is over-subscribed only because of the corpse, so the GC
	// must delete it and leave both live entries alone.
	ds.SetMaxBytes(2 * size)
	st := ds.Stats()
	if st.Quarantined != 0 || st.QuarantineEvictions != 1 {
		t.Fatalf("stats = %+v, want quarantine evicted for the budget", st)
	}
	if st.Entries != 2 || st.GCEvictions != 0 {
		t.Fatalf("stats = %+v, want both live entries untouched", st)
	}
	for _, k := range []string{"k1", "k3"} {
		if _, ok := ds.Load(k); !ok {
			t.Fatalf("live entry %s lost to a quarantine corpse", k)
		}
	}
}

// TestDiskStoreGCRacesConcurrentLoads: the byte-budget GC churning
// underneath concurrent Loads and cache promotions must never corrupt
// either tier — every materialize returns the right checkpoint for its
// key (recomputing if the file was evicted mid-probe), and a direct Load
// whose file just vanished is a clean miss, never garbage. Run under
// -race, this is the locking proof for the disk tier.
func TestDiskStoreGCRacesConcurrentLoads(t *testing.T) {
	ds := openTestStore(t)
	cache := NewCheckpointCache()
	cache.SetDiskStore(ds)
	cache.SetMaxEntries(4) // force continuous demotion/promotion traffic

	var keys []string
	for i := 0; i < 16; i++ {
		keys = append(keys, fmt.Sprintf("k%02d", i))
	}
	for _, k := range keys {
		if err := ds.Store(k, testCheckpoint("m_"+k)); err != nil {
			t.Fatal(err)
		}
	}
	size := ds.Stats().Bytes / int64(len(keys))

	var wg sync.WaitGroup
	// Budget churner: whipsaw the byte budget so the GC constantly
	// evicts, and re-store keys so there is always something to evict.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if i%2 == 0 {
				ds.SetMaxBytes(size * 4)
			} else {
				ds.SetMaxBytes(0)
			}
			k := keys[i%len(keys)]
			ds.Store(k, testCheckpoint("m_"+k)) //nolint:errcheck // churn; misses are fine
		}
	}()
	// Promoting readers: materialize through the cache; the compute
	// fallback recomputes keys the GC stole mid-flight.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g*7+i)%len(keys)]
				ck, _, err := cache.materialize(k, func() (*SynthCheckpoint, error) {
					return testCheckpoint("m_" + k), nil
				})
				if err != nil {
					t.Errorf("materialize %s: %v", k, err)
					return
				}
				if ck == nil || ck.Name != "m_"+k {
					t.Errorf("materialize %s returned wrong checkpoint: %+v", k, ck)
					return
				}
			}
		}(g)
	}
	// Raw readers: a Load racing an eviction is a hit or a clean miss —
	// never an error path, never another key's data.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g*5+i)%len(keys)]
				if ck, ok := ds.Load(k); ok && ck.Name != "m_"+k {
					t.Errorf("Load %s returned %q", k, ck.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The store must still be coherent: unbounded again, every key is
	// recomputable and loadable.
	ds.SetMaxBytes(0)
	for _, k := range keys {
		if err := ds.Store(k, testCheckpoint("m_"+k)); err != nil {
			t.Fatal(err)
		}
		if _, ok := ds.Load(k); !ok {
			t.Fatalf("key %s unloadable after the churn", k)
		}
	}
	if st := ds.Stats(); st.Corrupt != 0 {
		t.Fatalf("churn corrupted entries: %+v", st)
	}
}
