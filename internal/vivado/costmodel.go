// Package vivado simulates the Xilinx CAD tool as the PR-ESP flow drives
// it: out-of-context and full synthesis, design rule checks for dynamic
// function exchange, serial and in-context place-and-route, checkpoints
// and (partial) bitstream generation.
//
// The tool's *runtime* is the quantity the paper characterizes (Section
// IV spends hundreds of machine-hours measuring it), so the simulation's
// heart is an empirical cost model: analytic formulas whose constants
// are fit against the paper's published measurements (Tables III, IV
// and V) by cmd/presp-calibrate. Times are virtual minutes; no real
// Vivado runs anywhere.
package vivado

import (
	"fmt"
	"math"
)

// Minutes is a CAD runtime in modelled minutes.
type Minutes float64

// String renders the runtime rounded to the paper's reporting precision.
func (m Minutes) String() string { return fmt.Sprintf("%.0f min", float64(m)) }

// CostModel holds the empirical runtime model of the CAD tool. The
// zero value is not useful; use DefaultCostModel (calibrated constants)
// or build one explicitly for sensitivity studies.
type CostModel struct {
	// --- Synthesis ---

	// SynthBase is the fixed per-instance synthesis overhead (tool
	// startup, HDL elaboration), in minutes.
	SynthBase float64
	// SynthPerK is the synthesis cost slope, minutes per kLUT^SynthExp.
	SynthPerK float64
	// SynthExp is the synthesis size exponent.
	SynthExp float64
	// SynthOoCFactor scales the cost in out-of-context mode (no top-level
	// constraint propagation).
	SynthOoCFactor float64

	// --- Place & route ---

	// ImplBase is the fixed per-instance implementation overhead.
	ImplBase float64
	// PRPerK and PRExp form the base place-and-route power law:
	// a·L^e with L in kLUT.
	PRPerK float64
	PRExp  float64
	// StaticCongestion scales the static-only pre-route cost with the
	// fraction of fabric reserved for reconfigurable pblocks (routing
	// must detour around the reserved regions).
	StaticCongestion float64
	// StitchPerRP is the per-partition cost of instantiating the empty
	// place-holder hard macros during the static pre-route.
	StitchPerRP float64
	// SerialPerRP is the per-partition DFX bookkeeping cost in a serial
	// (single instance) implementation.
	SerialPerRP float64
	// SerialCongestion scales serial implementation with pblock area.
	SerialCongestion float64

	// --- In-context runs ---

	// CtxBase is the fixed per-run overhead of an in-context
	// implementation (tool start, constraint application).
	CtxBase float64
	// LoadStaticPerK and LoadReconfPerK time loading the routed static
	// checkpoint: minutes per kLUT of routed static content and per kLUT
	// of reconfigurable content the checkpoint carries (as place-holder
	// macros and partition metadata) respectively.
	LoadStaticPerK float64
	LoadReconfPerK float64
	// CtxPerK and CtxExp form the in-context P&R power law for the
	// reconfigurable group being implemented.
	CtxPerK float64
	CtxExp  float64

	// --- Host ---

	// HostCores is the machine core count (the paper uses 16).
	HostCores int
	// VivadoCores is the core count one instance effectively uses (P&R
	// is largely sequential; the paper cites [18] for this).
	VivadoCores int
	// ContentionPerInstance is the fractional slowdown per instance
	// beyond the host's parallel capacity.
	ContentionPerInstance float64

	// --- Floorplanning ---

	// PblockSlack is the area head-room factor when reserving pblock
	// area for a partition (resources reserved = need × slack).
	PblockSlack float64

	// --- Bitstream generation ---

	// BitgenBase and BitgenPerK time full-bitstream generation.
	BitgenBase float64
	BitgenPerK float64

	// --- Measurement jitter (sensitivity studies) ---

	// JitterFrac adds deterministic pseudo-random run-to-run variation:
	// every modelled stage time is scaled by a factor in
	// [1-JitterFrac, 1+JitterFrac] keyed on (JitterSeed, stage, size).
	// Zero (the default) keeps the model fully deterministic.
	JitterFrac float64
	// JitterSeed selects the jitter realization.
	JitterSeed uint64
}

// jitter returns the stage's variation factor.
func (m *CostModel) jitter(stage string, size float64) float64 {
	if m.JitterFrac <= 0 {
		return 1
	}
	h := uint64(1469598103934665603)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < 8; i++ {
		mix(byte(m.JitterSeed >> (8 * i)))
	}
	for i := 0; i < len(stage); i++ {
		mix(stage[i])
	}
	bits := math.Float64bits(size)
	for i := 0; i < 8; i++ {
		mix(byte(bits >> (8 * i)))
	}
	// Map the hash to [-1, 1).
	u := float64(h%(1<<20))/float64(1<<19) - 1
	return 1 + m.JitterFrac*u
}

// DefaultCostModel returns the model with constants calibrated against
// the paper's Tables III, IV and V by cmd/presp-calibrate (mean absolute
// error across the 35 published runtime cells is reported in
// EXPERIMENTS.md).
func DefaultCostModel() *CostModel {
	return &CostModel{
		SynthBase:      25.0,
		SynthPerK:      0.40969,
		SynthExp:       0.9,
		SynthOoCFactor: 1.3,

		ImplBase:         15.454,
		PRPerK:           0.08151,
		PRExp:            1.4263,
		StaticCongestion: 1.6235,
		StitchPerRP:      0,
		SerialPerRP:      0.69,
		SerialCongestion: 0.35,

		CtxBase:        15.997,
		LoadStaticPerK: 0.023629,
		LoadReconfPerK: 0.15607,
		CtxPerK:        2.1784,
		CtxExp:         0.6,

		HostCores:             16,
		VivadoCores:           4,
		ContentionPerInstance: 0.013415,

		PblockSlack: 1.25,

		BitgenBase: 2.0,
		BitgenPerK: 0.02,
	}
}

// Validate rejects models with non-physical parameters.
func (m *CostModel) Validate() error {
	if m.SynthPerK <= 0 || m.SynthExp <= 0 || m.PRPerK <= 0 || m.PRExp <= 0 {
		return fmt.Errorf("vivado: cost model has non-positive core coefficients")
	}
	if m.HostCores <= 0 || m.VivadoCores <= 0 {
		return fmt.Errorf("vivado: cost model has non-positive host configuration")
	}
	if m.PblockSlack < 1 {
		return fmt.Errorf("vivado: pblock slack %.2f < 1 cannot fit partitions", m.PblockSlack)
	}
	return nil
}

// SynthTime models synthesizing a netlist of kluts kLUTs. OoC mode is
// slightly cheaper per unit (no top-level constraint propagation).
func (m *CostModel) SynthTime(kluts float64, ooc bool) Minutes {
	if kluts <= 0 {
		return Minutes(m.SynthBase)
	}
	t := m.SynthBase + m.SynthPerK*math.Pow(kluts, m.SynthExp)
	if ooc {
		t = m.SynthBase + m.SynthOoCFactor*m.SynthPerK*math.Pow(kluts, m.SynthExp)
	}
	return Minutes(t * m.jitter("synth", kluts))
}

// prBase is the core place-and-route power law.
func (m *CostModel) prBase(kluts float64) float64 {
	if kluts <= 0 {
		return 0
	}
	return m.PRPerK * math.Pow(kluts, m.PRExp)
}

// SerialImplTime models a τ=1 DFX implementation of the whole design in
// one instance: total size totalK kLUTs, nRP partitions, with rpFrac of
// the fabric reserved as pblocks.
func (m *CostModel) SerialImplTime(totalK float64, nRP int, rpFrac float64) Minutes {
	t := m.ImplBase + m.prBase(totalK)*(1+m.SerialCongestion*clamp01(rpFrac)) + m.SerialPerRP*float64(nRP)
	return Minutes(t * m.jitter("serial", totalK))
}

// StaticPreRouteTime models the static-only P&R with place-holder hard
// macros of empty reconfigurable tiles (the intermediate step of the
// fully- and semi-parallel strategies).
func (m *CostModel) StaticPreRouteTime(staticK, rpFrac float64, nRP int) Minutes {
	t := m.ImplBase +
		m.prBase(staticK)*(1+m.StaticCongestion*clamp01(rpFrac)) +
		m.StitchPerRP*float64(nRP)
	return Minutes(t * m.jitter("static", staticK+rpFrac))
}

// InContextImplTime models one in-context P&R run implementing a group
// of reconfigurable modules totalling groupK kLUTs against a routed
// static checkpoint of staticK kLUTs belonging to a design with
// reconfContentK kLUTs of reconfigurable content overall.
func (m *CostModel) InContextImplTime(groupK, staticK, reconfContentK float64) Minutes {
	load := m.LoadStaticPerK*staticK + m.LoadReconfPerK*reconfContentK
	t := m.CtxBase + load + m.CtxPerK*math.Pow(groupK, m.CtxExp)
	return Minutes(t * m.jitter("context", groupK))
}

// Contention returns the slowdown multiplier when instances Vivado runs
// execute simultaneously on the host.
func (m *CostModel) Contention(instances int) float64 {
	cap := m.HostCores / m.VivadoCores
	if cap < 1 {
		cap = 1
	}
	if instances <= cap {
		return 1.0
	}
	return 1.0 + m.ContentionPerInstance*float64(instances-cap)
}

// BitgenTime models generating one bitstream covering kluts kLUTs of
// fabric area.
func (m *CostModel) BitgenTime(kluts float64) Minutes {
	return Minutes(m.BitgenBase + m.BitgenPerK*kluts)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
