package vivado

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"presp/internal/obs"
)

// DiskStore is the persistent tier under CheckpointCache: one file per
// cache key holding the JSON-encoded checkpoint plus a CRC-32 trailer.
// It is what lets a restarted daemon warm-start from the previous
// process's synthesis corpus instead of re-paying every modelled run.
//
// Durability discipline:
//
//   - Writes are atomic: the entry is written to a CreateTemp file in
//     the store directory and Renamed over the final name, so a crash
//     mid-write leaves either the old entry or none — never a torn one.
//   - Reads are verified: a file whose CRC-32 trailer does not match its
//     body — or that is too short to carry one, or whose body does not
//     decode — is quarantined by renaming it to <name>.bad, counted in
//     Corrupt, and reported as a miss. A quarantined entry is never
//     trusted and never loaded; the flow simply recomputes it.
//     Quarantined files are kept for post-mortem but not forever: the
//     GC ages them out after quarantineMaxAge, and while present they
//     count against the byte budget ahead of live entries.
//   - Open verifies every entry up front (quarantining the bad ones and
//     applying the byte budget), so a warm start begins from a store
//     that is known-good end to end.
//
// The store is bounded by an optional byte budget (SetMaxBytes): after
// each write, entries are garbage-collected oldest-access-first until
// the total size fits. Access order is tracked through file mtimes — a
// successful Load touches its entry — which keeps the policy intact
// across restarts without a sidecar index.
//
// All methods are safe for concurrent use; the store serializes its
// file I/O internally.
type DiskStore struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	bytes    int64 // total size of live (non-quarantined) entries

	hits          int64
	misses        int64
	writes        int64
	corrupt       int64
	gcEvictions   int64
	quarEvictions int64

	// exported mirrors how much of each counter has reached the obs
	// registry, so SetObserver can push the backlog accumulated before
	// an observer attached (verify-at-open quarantines, notably) without
	// double-counting on re-attachment.
	exported struct {
		hits, misses, writes, corrupt, gcEvictions, quarEvictions int64
	}

	// Instruments resolved by SetObserver; nil without an observer, and
	// every method of a nil instrument no-ops.
	mHits    *obs.Counter
	mMisses  *obs.Counter
	mWrites  *obs.Counter
	mCorrupt *obs.Counter
	mGC      *obs.Counter
	mQuarGC  *obs.Counter
	hLoad    *obs.Histogram
	hStore   *obs.Histogram
}

// diskEntryExt is the filename suffix of a live checkpoint entry,
// diskArtifactExt the suffix of a stage-artifact entry (floorplan
// solutions, implementation results, bitstream images — see StageCache);
// quarantined files carry diskQuarantineExt appended to their full name.
// The two live kinds must stay distinct: checkpoint entries are decoded
// strictly as SynthCheckpoint, artifact entries as opaque JSON.
const (
	diskEntryExt      = ".ckpt"
	diskArtifactExt   = ".art"
	diskQuarantineExt = ".bad"
)

// quarantineMaxAge bounds how long a quarantined *.bad file is kept
// around for post-mortem inspection: the GC removes older ones on its
// next pass, so a corruption storm cannot grow the store directory
// without bound even under no byte budget.
const quarantineMaxAge = 24 * time.Hour

// diskTrailerLen is the fixed byte length of the CRC trailer line:
// "crc32:" + 8 hex digits + "\n".
const diskTrailerLen = len("crc32:") + 8 + 1

// diskMSBuckets buckets real file-I/O latencies (milliseconds) — unlike
// the modelled-minute histograms, these measure wall time.
var diskMSBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// OpenDiskStore opens (creating if necessary) the persistent checkpoint
// store rooted at dir and verifies every existing entry: corrupt or
// truncated files are quarantined immediately, so everything the store
// reports as present is loadable.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("vivado: disk store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vivado: disk store: %w", err)
	}
	ds := &DiskStore{dir: dir}
	if err := ds.verifyAll(); err != nil {
		return nil, err
	}
	return ds, nil
}

// Dir returns the store's root directory.
func (ds *DiskStore) Dir() string { return ds.dir }

// SetMaxBytes bounds the store to max bytes of live entries (0 removes
// the bound), garbage-collecting oldest-access-first immediately if the
// store is already over it.
func (ds *DiskStore) SetMaxBytes(max int64) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if max < 0 {
		max = 0
	}
	ds.maxBytes = max
	ds.gcLocked()
}

// MaxBytes returns the configured byte budget (0 = unbounded).
func (ds *DiskStore) MaxBytes() int64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.maxBytes
}

// SetObserver attaches cache_disk_* counters and load/store latency
// histograms on the observer's registry (nil detaches). Counts
// accumulated before the observer attached — the verify-at-open
// quarantines in particular — are pushed onto the registry immediately,
// and the export is delta-tracked so re-attachment never double-counts.
func (ds *DiskStore) SetObserver(o *obs.Observer) {
	reg := o.Metrics()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.mHits = reg.Counter("cache_disk_hits")
	ds.mMisses = reg.Counter("cache_disk_misses")
	ds.mWrites = reg.Counter("cache_disk_writes")
	ds.mCorrupt = reg.Counter("cache_disk_corrupt")
	ds.mGC = reg.Counter("cache_disk_gc_evictions")
	ds.mQuarGC = reg.Counter("cache_disk_quarantine_evictions")
	ds.hLoad = reg.Histogram("cache_disk_load_ms", diskMSBuckets...)
	ds.hStore = reg.Histogram("cache_disk_store_ms", diskMSBuckets...)
	flush := func(total int64, exported *int64, m *obs.Counter) {
		m.Add(total - *exported)
		*exported = total
	}
	flush(ds.hits, &ds.exported.hits, ds.mHits)
	flush(ds.misses, &ds.exported.misses, ds.mMisses)
	flush(ds.writes, &ds.exported.writes, ds.mWrites)
	flush(ds.corrupt, &ds.exported.corrupt, ds.mCorrupt)
	flush(ds.gcEvictions, &ds.exported.gcEvictions, ds.mGC)
	flush(ds.quarEvictions, &ds.exported.quarEvictions, ds.mQuarGC)
}

// count bumps one counter pair: the store-local total and — once an
// observer is attached — its obs-side mirror. Before attachment only
// the total moves, leaving the difference as backlog for SetObserver to
// flush. Callers hold ds.mu.
func count(total, exported *int64, m *obs.Counter) {
	*total++
	if m != nil {
		*exported++
		m.Inc()
	}
}

// DiskStats is a point-in-time snapshot of a store's counters.
type DiskStats struct {
	// Hits and Misses count Load outcomes (a quarantined entry is a
	// miss and a Corrupt).
	Hits, Misses int64
	// Writes counts successfully persisted entries.
	Writes int64
	// Corrupt counts entries quarantined as *.bad — short files, CRC
	// mismatches and undecodable bodies.
	Corrupt int64
	// GCEvictions counts entries removed by the byte-budget GC.
	GCEvictions int64
	// QuarantineEvictions counts quarantined *.bad files the GC removed
	// — aged out past quarantineMaxAge or sacrificed to the byte budget.
	QuarantineEvictions int64
	// Entries and Bytes describe the live contents.
	Entries int
	Bytes   int64
	// Quarantined and QuarantinedBytes describe the *.bad files still
	// held for post-mortem inspection; they count against the byte
	// budget ahead of live entries.
	Quarantined      int
	QuarantinedBytes int64
}

// Stats snapshots the store's counters and occupancy.
func (ds *DiskStore) Stats() DiskStats {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	n := 0
	if names, err := ds.entryNamesLocked(); err == nil {
		n = len(names)
	}
	quar := ds.scanLocked(isQuarantined)
	var quarBytes int64
	for _, f := range quar {
		quarBytes += f.size
	}
	return DiskStats{
		Hits: ds.hits, Misses: ds.misses, Writes: ds.writes,
		Corrupt: ds.corrupt, GCEvictions: ds.gcEvictions,
		QuarantineEvictions: ds.quarEvictions,
		Entries:             n, Bytes: ds.bytes,
		Quarantined: len(quar), QuarantinedBytes: quarBytes,
	}
}

// Len returns the number of live entries on disk.
func (ds *DiskStore) Len() int { return ds.Stats().Entries }

// path maps a cache key to its entry file. Keys are the cache's hex
// digests, so they are always filename-safe; anything else is rejected
// by the callers before reaching disk.
func (ds *DiskStore) path(key string) string {
	return filepath.Join(ds.dir, key+diskEntryExt)
}

// artifactPath maps a stage-artifact key to its entry file.
func (ds *DiskStore) artifactPath(key string) string {
	return filepath.Join(ds.dir, key+diskArtifactExt)
}

// Load fetches the checkpoint stored under key. A present, verified
// entry is returned (and its access time refreshed for the GC's
// oldest-first ordering); a missing one is a miss; a corrupt one is
// quarantined and reported as a miss.
func (ds *DiskStore) Load(key string) (*SynthCheckpoint, bool) {
	if key == "" {
		return nil, false
	}
	start := time.Now()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	defer func() { ds.hLoad.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	path := ds.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		count(&ds.misses, &ds.exported.misses, ds.mMisses)
		return nil, false
	}
	ck, err := decodeDiskEntry(data)
	if err != nil {
		ds.quarantineLocked(path, int64(len(data)))
		count(&ds.misses, &ds.exported.misses, ds.mMisses)
		return nil, false
	}
	// Touch the entry: GC evicts oldest-accessed first, and mtime is the
	// access record that survives restarts.
	now := time.Now()
	os.Chtimes(path, now, now) //nolint:errcheck // best-effort recency hint
	count(&ds.hits, &ds.exported.hits, ds.mHits)
	return ck, true
}

// Store persists ck under key with an atomic CreateTemp+Rename write,
// then applies the byte budget. Storing an already-present key is a
// cheap no-op — entries are content-addressed, so same key means same
// bytes. Failures are returned but never poison the store: the worst
// outcome of a failed write is a missing entry.
func (ds *DiskStore) Store(key string, ck *SynthCheckpoint) error {
	if key == "" || ck == nil {
		return fmt.Errorf("vivado: disk store: empty key or nil checkpoint")
	}
	start := time.Now()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	defer func() { ds.hStore.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	path := ds.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: the entry is already durable
	}
	data, err := encodeDiskEntry(ck)
	if err != nil {
		return fmt.Errorf("vivado: disk store: %w", err)
	}
	return ds.writeEntryLocked(path, data)
}

// writeEntryLocked persists one sealed entry with an atomic
// CreateTemp+Rename write, then applies the byte budget. Callers hold
// ds.mu.
func (ds *DiskStore) writeEntryLocked(path string, data []byte) error {
	tmp, err := os.CreateTemp(ds.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("vivado: disk store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("vivado: disk store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("vivado: disk store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("vivado: disk store: %w", err)
	}
	ds.bytes += int64(len(data))
	count(&ds.writes, &ds.exported.writes, ds.mWrites)
	ds.gcLocked()
	return nil
}

// sealDiskPayload renders the on-disk form shared by checkpoint and
// artifact entries: the JSON body as one line followed by the CRC-32
// (IEEE) trailer of everything before it.
func sealDiskPayload(body []byte) []byte {
	body = append(append([]byte(nil), body...), '\n')
	return append(body, fmt.Sprintf("crc32:%08x\n", crc32.ChecksumIEEE(body))...)
}

// openDiskPayload verifies the CRC trailer of one entry file and
// returns the body (including its terminating newline): trailer
// present, byte-exact, CRC matching. Any failure means the file cannot
// be trusted and must be quarantined by the caller.
func openDiskPayload(data []byte) ([]byte, error) {
	if len(data) < diskTrailerLen {
		return nil, fmt.Errorf("short entry (%d bytes)", len(data))
	}
	body := data[:len(data)-diskTrailerLen]
	trailer := data[len(data)-diskTrailerLen:]
	// Byte-exact trailer parse — no fmt scanning, whose whitespace
	// leniency would bless a damaged terminator (found by FuzzDiskEntry).
	if string(trailer[:6]) != "crc32:" || trailer[diskTrailerLen-1] != '\n' {
		return nil, fmt.Errorf("malformed CRC trailer %q", trailer)
	}
	var want uint32
	for _, c := range trailer[6 : 6+8] {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return nil, fmt.Errorf("malformed CRC trailer %q", trailer)
		}
		want = want<<4 | d
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("CRC mismatch (got %08x, want %08x)", got, want)
	}
	return body, nil
}

// encodeDiskEntry renders a checkpoint's on-disk form.
func encodeDiskEntry(ck *SynthCheckpoint) ([]byte, error) {
	body, err := json.Marshal(ck)
	if err != nil {
		return nil, err
	}
	return sealDiskPayload(body), nil
}

// decodeDiskEntry verifies and decodes one checkpoint entry file:
// trailer present, CRC matching, body decodable. Any failure means the
// file cannot be trusted and must be quarantined by the caller.
func decodeDiskEntry(data []byte) (*SynthCheckpoint, error) {
	body, err := openDiskPayload(data)
	if err != nil {
		return nil, err
	}
	ck := &SynthCheckpoint{}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(ck); err != nil {
		return nil, fmt.Errorf("decoding body: %w", err)
	}
	if ck.Name == "" {
		return nil, fmt.Errorf("entry has no module name")
	}
	return ck, nil
}

// decodeDiskArtifact verifies one stage-artifact entry file and returns
// its JSON body (without the body's terminating newline). Artifacts are
// opaque to the store beyond being valid JSON — the flow layer owns
// their schema — but the same CRC discipline applies: a damaged file is
// quarantined, never served.
func decodeDiskArtifact(data []byte) ([]byte, error) {
	body, err := openDiskPayload(data)
	if err != nil {
		return nil, err
	}
	body = bytes.TrimSuffix(body, []byte("\n"))
	if !json.Valid(body) {
		return nil, fmt.Errorf("artifact body is not valid JSON")
	}
	return body, nil
}

// LoadArtifact fetches the stage-artifact JSON stored under key, with
// the same verify/touch/quarantine semantics as Load.
func (ds *DiskStore) LoadArtifact(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	start := time.Now()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	defer func() { ds.hLoad.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	path := ds.artifactPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		count(&ds.misses, &ds.exported.misses, ds.mMisses)
		return nil, false
	}
	body, err := decodeDiskArtifact(data)
	if err != nil {
		ds.quarantineLocked(path, int64(len(data)))
		count(&ds.misses, &ds.exported.misses, ds.mMisses)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(path, now, now) //nolint:errcheck // best-effort recency hint
	count(&ds.hits, &ds.exported.hits, ds.mHits)
	return body, true
}

// StoreArtifact persists a stage-artifact JSON body under key with the
// same atomic-write and byte-budget semantics as Store. Keys are
// content addresses, so an already-present key is a no-op.
func (ds *DiskStore) StoreArtifact(key string, body []byte) error {
	if key == "" || len(body) == 0 {
		return fmt.Errorf("vivado: disk store: empty artifact key or body")
	}
	if !json.Valid(body) {
		return fmt.Errorf("vivado: disk store: artifact body is not valid JSON")
	}
	start := time.Now()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	defer func() { ds.hStore.Observe(float64(time.Since(start)) / float64(time.Millisecond)) }()
	path := ds.artifactPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: the entry is already durable
	}
	return ds.writeEntryLocked(path, sealDiskPayload(body))
}

// quarantineLocked moves a corrupt entry aside as <name>.bad (deleting
// it if even the rename fails) and counts it. Callers hold ds.mu.
func (ds *DiskStore) quarantineLocked(path string, size int64) {
	if err := os.Rename(path, path+diskQuarantineExt); err != nil {
		os.Remove(path) //nolint:errcheck // best-effort: gone is as good as quarantined
	}
	ds.bytes -= size
	if ds.bytes < 0 {
		ds.bytes = 0
	}
	count(&ds.corrupt, &ds.exported.corrupt, ds.mCorrupt)
}

// entryNamesLocked lists the live entry file names — checkpoints and
// stage artifacts. Callers hold ds.mu.
func (ds *DiskStore) entryNamesLocked() ([]string, error) {
	des, err := os.ReadDir(ds.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(des))
	for _, de := range des {
		if de.Type().IsRegular() && isLiveEntry(de.Name()) {
			names = append(names, de.Name())
		}
	}
	return names, nil
}

// verifyAll scans the store at open: every entry is read and checked
// against the codec of its kind, corrupt ones are quarantined, and the
// byte budget (if any) applied.
func (ds *DiskStore) verifyAll() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	names, err := ds.entryNamesLocked()
	if err != nil {
		return fmt.Errorf("vivado: disk store: %w", err)
	}
	ds.bytes = 0
	for _, name := range names {
		path := filepath.Join(ds.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue // vanished between ReadDir and read; nothing to count
		}
		var decodeErr error
		if filepath.Ext(name) == diskArtifactExt {
			_, decodeErr = decodeDiskArtifact(data)
		} else {
			_, decodeErr = decodeDiskEntry(data)
		}
		if decodeErr != nil {
			ds.quarantineLocked(path, 0)
			continue
		}
		ds.bytes += int64(len(data))
	}
	ds.gcLocked()
	return nil
}

// diskFile is one on-disk file as the GC sees it.
type diskFile struct {
	path  string
	size  int64
	atime time.Time
}

// isLiveEntry / isQuarantined classify store files by name. A
// quarantined file is "<key>.ckpt.bad" or "<key>.art.bad", so its
// filepath.Ext is ".bad" and the two predicates are disjoint.
func isLiveEntry(name string) bool {
	ext := filepath.Ext(name)
	return ext == diskEntryExt || ext == diskArtifactExt
}
func isQuarantined(name string) bool { return strings.HasSuffix(name, diskQuarantineExt) }

// scanLocked lists the regular files matching keep, oldest mtime first
// with a deterministic path tie-break. Callers hold ds.mu.
func (ds *DiskStore) scanLocked(keep func(string) bool) []diskFile {
	des, err := os.ReadDir(ds.dir)
	if err != nil {
		return nil
	}
	files := make([]diskFile, 0, len(des))
	for _, de := range des {
		if !de.Type().IsRegular() || !keep(de.Name()) {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, diskFile{
			path: filepath.Join(ds.dir, de.Name()), size: fi.Size(), atime: fi.ModTime(),
		})
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].atime.Equal(files[j].atime) {
			return files[i].atime.Before(files[j].atime)
		}
		return files[i].path < files[j].path
	})
	return files
}

// gcLocked enforces the store's two retention rules. Quarantined *.bad
// files are post-mortem artifacts, not cache content: any older than
// quarantineMaxAge is removed regardless of the byte budget, and the
// survivors count against the budget ahead of live entries — a
// corruption storm must never crowd working checkpoints out of the
// budget, nor grow the directory forever. Then live entries are evicted
// oldest-accessed first until everything fits. Callers hold ds.mu.
func (ds *DiskStore) gcLocked() {
	quar := ds.scanLocked(isQuarantined)
	now := time.Now()
	kept := quar[:0]
	var quarBytes int64
	for _, f := range quar {
		if now.Sub(f.atime) > quarantineMaxAge {
			if os.Remove(f.path) == nil {
				count(&ds.quarEvictions, &ds.exported.quarEvictions, ds.mQuarGC)
			}
			continue
		}
		kept = append(kept, f)
		quarBytes += f.size
	}
	if ds.maxBytes <= 0 || ds.bytes+quarBytes <= ds.maxBytes {
		return
	}
	// Over budget: quarantined files go first (they serve no reads),
	// oldest first...
	for _, f := range kept {
		if ds.bytes+quarBytes <= ds.maxBytes {
			return
		}
		if err := os.Remove(f.path); err != nil {
			continue
		}
		quarBytes -= f.size
		count(&ds.quarEvictions, &ds.exported.quarEvictions, ds.mQuarGC)
	}
	// ...then live entries, oldest-accessed first.
	for _, f := range ds.scanLocked(isLiveEntry) {
		if ds.bytes+quarBytes <= ds.maxBytes {
			return
		}
		if err := os.Remove(f.path); err != nil {
			continue
		}
		ds.bytes -= f.size
		count(&ds.gcEvictions, &ds.exported.gcEvictions, ds.mGC)
	}
}
