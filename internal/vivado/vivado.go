package vivado

import (
	"context"
	"fmt"
	"sync/atomic"

	"presp/internal/bitstream"
	"presp/internal/faultinject"
	"presp/internal/fpga"
	"presp/internal/obs"
	"presp/internal/rtl"
)

// Tool is one simulated CAD installation bound to a target device and a
// runtime cost model. Methods correspond to the script steps the real
// flow auto-generates; each returns what the step produces plus the
// modelled runtime.
//
// Every entry point takes a context.Context and checks it before doing
// any work, so a cancelled or timed-out flow stops at the next job
// boundary; it then consults the optional FaultHook, the seam the flow
// uses to inject deterministic CAD failures (tool crashes, license
// drops) from a faultinject plan.
//
// A Tool is safe for concurrent use: device, model, generator, cache
// and fault hook are read-only after setup, the optional checkpoint
// cache locks internally, and the hit/miss counters are atomic — the
// flow's worker pool drives one shared instance from many goroutines.
type Tool struct {
	dev   *fpga.Device
	model *CostModel
	gen   *bitstream.Generator

	cache       *CheckpointCache
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	fault FaultHook

	// Instruments pre-resolved by SetObserver; all nil without an
	// observer, and every method of a nil instrument no-ops.
	mCacheHits   *obs.Counter
	mCacheMisses *obs.Counter
	mSynth       *obs.Histogram
	mPreroute    *obs.Histogram
	mImpl        *obs.Histogram
	mBitgen      *obs.Histogram
}

// FaultHook intercepts one CAD operation before it runs. A non-nil
// returned error fails the operation (the flow's retry policy then
// decides whether to re-run it). The first site is the operation's
// primary site; faultinject.StableInjector.Check satisfies this
// signature directly.
type FaultHook func(op faultinject.Op, sites ...string) error

// New builds a tool for device d with cost model m (nil selects the
// calibrated default).
func New(d *fpga.Device, m *CostModel) (*Tool, error) {
	if d == nil {
		return nil, fmt.Errorf("vivado: nil device")
	}
	if m == nil {
		m = DefaultCostModel()
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Tool{dev: d, model: m, gen: bitstream.NewGenerator(d)}, nil
}

// Device returns the target device.
func (t *Tool) Device() *fpga.Device { return t.dev }

// Model returns the cost model in use.
func (t *Tool) Model() *CostModel { return t.model }

// SetCache attaches a shared synthesis-checkpoint cache (nil detaches).
// Subsequent Synthesize calls consult it before paying the modelled
// synthesis cost and populate it on misses.
func (t *Tool) SetCache(c *CheckpointCache) { t.cache = c }

// Cache returns the attached synthesis-checkpoint cache (nil when none
// is attached).
func (t *Tool) Cache() *CheckpointCache { return t.cache }

// SetFaultHook attaches a CAD fault-injection hook (nil detaches). Set
// it before sharing the tool across goroutines.
func (t *Tool) SetFaultHook(h FaultHook) { t.fault = h }

// SetObserver attaches an observability handle: per-op cost-model
// runtime histograms and checkpoint-cache traffic counters (nil
// detaches). Like the fault hook, set it before sharing the tool
// across goroutines; nothing observed influences modelled results.
func (t *Tool) SetObserver(o *obs.Observer) {
	reg := o.Metrics()
	t.mCacheHits = reg.Counter("vivado_cache_hits_total")
	t.mCacheMisses = reg.Counter("vivado_cache_misses_total")
	t.mSynth = reg.Histogram("vivado_synth_minutes")
	t.mPreroute = reg.Histogram("vivado_preroute_minutes")
	t.mImpl = reg.Histogram("vivado_impl_minutes")
	t.mBitgen = reg.Histogram("vivado_bitgen_minutes")
}

// CheckFault is the gate every entry point passes through: it fails
// fast when ctx is cancelled or past its deadline, then gives the fault
// hook a chance to crash the operation. Flow steps that live outside
// this package (floorplanning) call it directly so the whole
// compile-time surface shares one injection discipline.
func (t *Tool) CheckFault(ctx context.Context, op faultinject.Op, sites ...string) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if t.fault == nil {
		return nil
	}
	return t.fault(op, sites...)
}

// CacheStats returns this tool's synthesis cache hits and misses (both
// zero when no cache is attached).
func (t *Tool) CacheStats() (hits, misses int64) {
	return t.cacheHits.Load(), t.cacheMisses.Load()
}

// CheckpointKey returns the content-addressed cache key a synthesis of
// m would use on this tool — the digest of everything the run depends
// on. The flow journals it per synthesis job so an interrupted run can
// be resumed from rehydrated cache entries.
func (t *Tool) CheckpointKey(m *rtl.Module, ooc bool) string {
	return checkpointKey(t.dev, t.model, m, ooc)
}

// SynthCheckpoint is the product of a synthesis run. All fields are
// exported and JSON-serializable so flow journals can embed completed
// checkpoints for crash recovery.
type SynthCheckpoint struct {
	// Name is the synthesized module name.
	Name string
	// Resources is the post-synthesis utilization.
	Resources fpga.Resources
	// OoC records out-of-context mode.
	OoC bool
	// Runtime is the modelled synthesis time.
	Runtime Minutes
	// BlackBoxes lists black-box instances left unresolved (the
	// reconfigurable partitions of a static synthesis).
	BlackBoxes []string
}

// Synthesize runs synthesis on module m. In OoC mode the module is
// compiled against its own interface; otherwise black boxes are
// permitted only for declared reconfigurable partitions. Optional sites
// label the run for fault injection (the flow passes the partition
// name); the module name is always appended as a matchable site.
func (t *Tool) Synthesize(ctx context.Context, m *rtl.Module, ooc bool, sites ...string) (*SynthCheckpoint, error) {
	if m == nil {
		return nil, fmt.Errorf("vivado: synthesize nil module")
	}
	if err := t.CheckFault(ctx, faultinject.OpCADSynth, append(append([]string(nil), sites...), m.Name)...); err != nil {
		return nil, err
	}
	if t.cache == nil {
		return t.synthesize(m, ooc)
	}
	// Single-flight through the cache: concurrent misses on the same
	// content collapse to one leader synthesis; followers share the
	// leader's checkpoint (or its error) and count as hits.
	key := checkpointKey(t.dev, t.model, m, ooc)
	ck, role, err := t.cache.materialize(key, func() (*SynthCheckpoint, error) {
		return t.synthesize(m, ooc)
	})
	switch role {
	case roleLeader:
		t.cacheMisses.Add(1)
		t.mCacheMisses.Inc()
	case roleHit, roleFollower:
		if err == nil {
			t.cacheHits.Add(1)
			t.mCacheHits.Inc()
		}
	}
	return ck, err
}

// synthesize is the cache-free synthesis body: the modelled cost of one
// run, shared by the direct path and the materialize leader.
func (t *Tool) synthesize(m *rtl.Module, ooc bool) (*SynthCheckpoint, error) {
	ck := &SynthCheckpoint{Name: m.Name, OoC: ooc}
	m.Walk(func(path string, mod *rtl.Module) {
		if mod.BlackBox {
			ck.BlackBoxes = append(ck.BlackBoxes, path)
		}
	})
	ck.Resources = m.TotalCost()
	if ck.Resources[fpga.LUT] == 0 && len(ck.BlackBoxes) == 0 {
		return nil, fmt.Errorf("vivado: module %s synthesizes to nothing", m.Name)
	}
	if ck.Resources[fpga.LUT] > t.dev.Total[fpga.LUT] {
		return nil, fmt.Errorf("vivado: module %s needs %d LUTs, device %s has %d",
			m.Name, ck.Resources[fpga.LUT], t.dev.Name, t.dev.Total[fpga.LUT])
	}
	ck.Runtime = t.model.SynthTime(kluts(ck.Resources), ooc)
	t.mSynth.Observe(float64(ck.Runtime))
	return ck, nil
}

// CheckDFX performs the design rule checks the DFX flow enforces on a
// reconfigurable module and its assigned pblock: no clock-modifying
// logic, no route-through clock outputs, and the pblock must cover the
// module's resource needs.
func (t *Tool) CheckDFX(ctx context.Context, content *rtl.Module, need fpga.Resources, pb fpga.Pblock) error {
	drcSites := []string{pb.Name}
	if content != nil {
		drcSites = append(drcSites, content.Name)
	}
	if err := t.CheckFault(ctx, faultinject.OpCADDRC, drcSites...); err != nil {
		return err
	}
	if content != nil {
		if content.ContainsClockModifying() {
			return fmt.Errorf("vivado: DRC HDPR-1: %s contains clock-modifying logic inside a reconfigurable partition", content.Name)
		}
		if content.DrivesClockOut() {
			return fmt.Errorf("vivado: DRC HDPR-2: %s drives a route-through clock output from a reconfigurable partition", content.Name)
		}
	}
	if err := pb.Validate(t.dev); err != nil {
		return err
	}
	avail := pb.ResourcesOn(t.dev)
	if !avail.Covers(need) {
		return fmt.Errorf("vivado: DRC HDPR-3: pblock %s (%s) cannot host %s",
			pb.Name, avail, need)
	}
	return nil
}

// RoutedStatic is the routed static-only design (with place-holder hard
// macros in every reconfigurable partition), the anchor for in-context
// runs.
type RoutedStatic struct {
	// DesignName labels the design.
	DesignName string
	// StaticResources is the static-part utilization.
	StaticResources fpga.Resources
	// Pblocks maps partition name to its reserved placement region.
	Pblocks map[string]fpga.Pblock
	// ReconfContent is the total utilization of the design's
	// reconfigurable modules (carried in the checkpoint as place-holder
	// macros and partition metadata; drives the load cost of in-context
	// runs).
	ReconfContent fpga.Resources
	// Runtime is the modelled pre-route time (t_static in the paper).
	Runtime Minutes
}

// rpAreaLUTs sums the fabric LUTs reserved by all pblocks.
func (rs *RoutedStatic) rpAreaLUTs(d *fpga.Device) int {
	sum := 0
	for _, pb := range rs.Pblocks {
		sum += pb.ResourcesOn(d)[fpga.LUT]
	}
	return sum
}

// RPFraction returns the fraction of the device fabric reserved for
// reconfigurable partitions.
func (rs *RoutedStatic) RPFraction(d *fpga.Device) float64 {
	return float64(rs.rpAreaLUTs(d)) / float64(d.Total[fpga.LUT])
}

// PreRouteStatic places and routes the static checkpoint with empty
// place-holder macros inside every pblock (the intermediate step of the
// parallel strategies; the empty netlists are prepared offline so they
// add no timing overhead, per Section IV).
func (t *Tool) PreRouteStatic(ctx context.Context, designName string, static *SynthCheckpoint, pblocks map[string]fpga.Pblock, reconfContent fpga.Resources) (*RoutedStatic, error) {
	if static == nil {
		return nil, fmt.Errorf("vivado: nil static checkpoint")
	}
	if err := t.CheckFault(ctx, faultinject.OpCADImpl, "static", designName); err != nil {
		return nil, err
	}
	if len(pblocks) == 0 {
		return nil, fmt.Errorf("vivado: static pre-route of %s has no reconfigurable partitions", designName)
	}
	rs := &RoutedStatic{
		DesignName:      designName,
		StaticResources: static.Resources,
		Pblocks:         pblocks,
		ReconfContent:   reconfContent,
	}
	// The pblocks must not overlap each other.
	names := make([]string, 0, len(pblocks))
	for n := range pblocks {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := pblocks[names[i]], pblocks[names[j]]
			if a.Overlaps(b) {
				return nil, fmt.Errorf("vivado: pblocks %s and %s overlap", a.Name, b.Name)
			}
		}
	}
	rpFrac := rs.RPFraction(t.dev)
	staticK := kluts(static.Resources)
	// The static part plus the reserved area must fit the device.
	if staticK*1000+float64(rs.rpAreaLUTs(t.dev)) > float64(t.dev.Total[fpga.LUT]) {
		return nil, fmt.Errorf("vivado: design %s: static part (%0.fk LUTs) plus reserved pblocks (%.0f%% of fabric) exceed device %s",
			designName, staticK, rpFrac*100, t.dev.Name)
	}
	rs.Runtime = t.model.StaticPreRouteTime(staticK, rpFrac, len(pblocks))
	t.mPreroute.Observe(float64(rs.Runtime))
	return rs, nil
}

// SerialResult is the product of a τ=1 whole-design implementation.
type SerialResult struct {
	DesignName string
	Runtime    Minutes
}

// ImplementSerial places and routes the whole design — static part plus
// every reconfigurable module — in a single instance.
func (t *Tool) ImplementSerial(ctx context.Context, designName string, totalRes fpga.Resources, nRP int, rpFrac float64) (*SerialResult, error) {
	if err := t.CheckFault(ctx, faultinject.OpCADImpl, designName, "serial"); err != nil {
		return nil, err
	}
	if totalRes[fpga.LUT] <= 0 {
		return nil, fmt.Errorf("vivado: serial implementation of empty design %s", designName)
	}
	if totalRes[fpga.LUT] > t.dev.Total[fpga.LUT] {
		return nil, fmt.Errorf("vivado: design %s needs %d LUTs, device %s has %d",
			designName, totalRes[fpga.LUT], t.dev.Name, t.dev.Total[fpga.LUT])
	}
	sr := &SerialResult{
		DesignName: designName,
		Runtime:    t.model.SerialImplTime(kluts(totalRes), nRP, rpFrac),
	}
	t.mImpl.Observe(float64(sr.Runtime))
	return sr, nil
}

// ContextResult is the product of one in-context P&R run implementing a
// group of reconfigurable modules against the routed static.
type ContextResult struct {
	// Group lists the implemented partition names.
	Group []string
	// Runtime is the modelled run time (one Ω_i of the paper).
	Runtime Minutes
}

// ImplementInContext implements the named partitions (with module
// checkpoints cks, one per partition) against routed static rs.
func (t *Tool) ImplementInContext(ctx context.Context, rs *RoutedStatic, group []string, cks map[string]*SynthCheckpoint) (*ContextResult, error) {
	if rs == nil {
		return nil, fmt.Errorf("vivado: in-context run without a routed static")
	}
	if len(group) == 0 {
		return nil, fmt.Errorf("vivado: empty in-context group")
	}
	if err := t.CheckFault(ctx, faultinject.OpCADImpl, append(append([]string(nil), group...), rs.DesignName)...); err != nil {
		return nil, err
	}
	var groupK float64
	for _, name := range group {
		ck, ok := cks[name]
		if !ok {
			return nil, fmt.Errorf("vivado: no synthesis checkpoint for partition %q", name)
		}
		pb, ok := rs.Pblocks[name]
		if !ok {
			return nil, fmt.Errorf("vivado: routed static %s has no pblock for partition %q", rs.DesignName, name)
		}
		if !pb.ResourcesOn(t.dev).Covers(ck.Resources) {
			return nil, fmt.Errorf("vivado: partition %q (%s) does not fit pblock %s",
				name, ck.Resources, pb.Name)
		}
		groupK += kluts(ck.Resources)
	}
	cr := &ContextResult{
		Group:   append([]string(nil), group...),
		Runtime: t.model.InContextImplTime(groupK, kluts(rs.StaticResources), kluts(rs.ReconfContent)),
	}
	t.mImpl.Observe(float64(cr.Runtime))
	return cr, nil
}

// WritePartialBitstream generates the compressed partial bitstream for
// partition name implemented in pblock pb with the given utilization.
func (t *Tool) WritePartialBitstream(ctx context.Context, name string, pb fpga.Pblock, used fpga.Resources, compress bool) (*bitstream.Bitstream, Minutes, error) {
	if err := t.CheckFault(ctx, faultinject.OpCADBitgen, pb.Name, name); err != nil {
		return nil, 0, err
	}
	bs, err := t.gen.Partial(name, pb, used[fpga.LUT], compress)
	if err != nil {
		return nil, 0, err
	}
	areaK := float64(pb.ResourcesOn(t.dev)[fpga.LUT]) / 1000.0
	mins := t.model.BitgenTime(areaK)
	t.mBitgen.Observe(float64(mins))
	return bs, mins, nil
}

// WriteFullBitstream generates the full-device bitstream.
func (t *Tool) WriteFullBitstream(ctx context.Context, name string, used fpga.Resources, compress bool) (*bitstream.Bitstream, Minutes, error) {
	if err := t.CheckFault(ctx, faultinject.OpCADBitgen, "full", name); err != nil {
		return nil, 0, err
	}
	bs, err := t.gen.FullDevice(name, used[fpga.LUT], compress)
	if err != nil {
		return nil, 0, err
	}
	mins := t.model.BitgenTime(kluts(t.dev.Total))
	t.mBitgen.Observe(float64(mins))
	return bs, mins, nil
}

// kluts converts a resource vector's LUT count to kLUT.
func kluts(r fpga.Resources) float64 { return float64(r[fpga.LUT]) / 1000.0 }
