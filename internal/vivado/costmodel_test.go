package vivado

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*CostModel){
		func(m *CostModel) { m.SynthPerK = 0 },
		func(m *CostModel) { m.PRExp = -1 },
		func(m *CostModel) { m.HostCores = 0 },
		func(m *CostModel) { m.PblockSlack = 0.9 },
	}
	for i, mutate := range cases {
		m := DefaultCostModel()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestSynthTimeMonotonic(t *testing.T) {
	m := DefaultCostModel()
	prev := m.SynthTime(0, false)
	for _, k := range []float64{10, 50, 100, 200} {
		cur := m.SynthTime(k, false)
		if cur <= prev {
			t.Fatalf("synth time not monotone at %g kLUT", k)
		}
		prev = cur
	}
}

func TestSerialImplMonotonic(t *testing.T) {
	m := DefaultCostModel()
	if m.SerialImplTime(200, 4, 0.5) <= m.SerialImplTime(100, 4, 0.5) {
		t.Fatal("serial time not monotone in size")
	}
	if m.SerialImplTime(100, 4, 0.8) <= m.SerialImplTime(100, 4, 0.1) {
		t.Fatal("serial time not monotone in reserved fraction")
	}
	if m.SerialImplTime(100, 8, 0.5) <= m.SerialImplTime(100, 2, 0.5) {
		t.Fatal("serial time not monotone in partition count")
	}
}

func TestStaticPreRouteCongestion(t *testing.T) {
	m := DefaultCostModel()
	low := m.StaticPreRouteTime(82, 0.2, 4)
	high := m.StaticPreRouteTime(82, 0.7, 4)
	if high <= low {
		t.Fatal("reserved-area congestion not charged")
	}
}

func TestInContextMonotonic(t *testing.T) {
	m := DefaultCostModel()
	if m.InContextImplTime(60, 82, 120) <= m.InContextImplTime(30, 82, 120) {
		t.Fatal("in-context time not monotone in group size")
	}
	if m.InContextImplTime(30, 82, 160) <= m.InContextImplTime(30, 82, 40) {
		t.Fatal("checkpoint-load cost not monotone in reconfigurable content")
	}
}

func TestContention(t *testing.T) {
	m := DefaultCostModel()
	// Up to HostCores/VivadoCores instances run at full speed.
	if m.Contention(1) != 1.0 || m.Contention(4) != 1.0 {
		t.Fatal("under-capacity contention should be 1.0")
	}
	if m.Contention(8) <= 1.0 {
		t.Fatal("over-capacity contention should slow instances")
	}
	if m.Contention(16) <= m.Contention(8) {
		t.Fatal("contention not monotone")
	}
}

func TestClamp01Property(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		c := clamp01(v)
		return c >= 0 && c <= 1 && (v < 0 || v > 1 || c == v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestParallelFormulaStructure checks the decomposition the paper's
// model is built on: T_full = t_static + max{Ω_i}, with every Ω made of
// base + load + place/route terms.
func TestParallelFormulaStructure(t *testing.T) {
	m := DefaultCostModel()
	staticK, reconfK := 82.0, 120.0
	tStatic := float64(m.StaticPreRouteTime(staticK, 0.5, 4))
	omega := float64(m.InContextImplTime(36, staticK, reconfK))
	total := tStatic + omega
	if total <= tStatic || total <= omega {
		t.Fatal("total must exceed both components")
	}
	// The in-context run must be much cheaper than a full serial
	// implementation of the same design — that is the entire point of
	// the parallel strategies.
	serial := float64(m.SerialImplTime(staticK+reconfK, 4, 0.5))
	if omega >= serial {
		t.Fatalf("in-context run (%.0f) not cheaper than full serial (%.0f)", omega, serial)
	}
}

// TestCalibratedShapeHolds verifies on raw model arithmetic the three
// headline behaviours the calibration enforces (the full-design check
// happens in the experiments package):
//
//  1. for a design with a dominant static part and small modules
//     (class 1.1), serial beats pre-route + in-context;
//  2. for a large reconfigurable total (class 1.2/2.1), the parallel
//     path wins;
//  3. bigger groups mean longer in-context runs (so more parallelism
//     helps when it shrinks groups).
func TestCalibratedShapeHolds(t *testing.T) {
	m := DefaultCostModel()

	// Class 1.1 shape: static 82k, 16 modules of 2.45k. Fully parallel
	// needs 16 simultaneous instances, so host contention applies.
	serial11 := float64(m.SerialImplTime(82+39, 16, 0.29))
	par11 := float64(m.StaticPreRouteTime(82, 0.29, 16)) +
		float64(m.InContextImplTime(2.45, 82, 39))*m.Contention(16)
	if serial11 >= par11 {
		t.Fatalf("class 1.1: serial (%.0f) should beat parallel (%.0f)", serial11, par11)
	}

	// Class 1.2 shape: static 82k, 4 modules totalling 121k.
	serial12 := float64(m.SerialImplTime(82+121, 4, 0.64))
	par12 := float64(m.StaticPreRouteTime(82, 0.64, 4)) + float64(m.InContextImplTime(36.7, 82, 121))
	if par12 >= serial12 {
		t.Fatalf("class 1.2: parallel (%.0f) should beat serial (%.0f)", par12, serial12)
	}

	// Group-size monotonicity.
	if m.InContextImplTime(64, 82, 121) <= m.InContextImplTime(36, 82, 121) {
		t.Fatal("larger groups must take longer")
	}
}

func TestBitgenTime(t *testing.T) {
	m := DefaultCostModel()
	if m.BitgenTime(300) <= m.BitgenTime(20) {
		t.Fatal("bitgen time not monotone")
	}
}

func TestMinutesString(t *testing.T) {
	if Minutes(89.4).String() != "89 min" {
		t.Fatalf("got %q", Minutes(89.4).String())
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	m := DefaultCostModel()
	if m.JitterFrac != 0 {
		t.Fatal("default model must be deterministic")
	}
	base := m.SynthTime(80, false)
	m.JitterFrac = 0.05
	m.JitterSeed = 7
	a := m.SynthTime(80, false)
	b := m.SynthTime(80, false)
	if a != b {
		t.Fatal("same seed must give the same realization")
	}
	if ratio := float64(a) / float64(base); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("jitter out of bounds: %g", ratio)
	}
	m.JitterSeed = 8
	if c := m.SynthTime(80, false); c == a {
		t.Fatal("different seeds should (almost surely) differ")
	}
	// Different stages jitter independently.
	s1 := float64(m.SerialImplTime(80, 2, 0.3)) / float64(DefaultCostModel().SerialImplTime(80, 2, 0.3))
	s2 := float64(m.InContextImplTime(30, 80, 100)) / float64(DefaultCostModel().InContextImplTime(30, 80, 100))
	if s1 == s2 {
		t.Fatal("stage jitters should be independent")
	}
}
