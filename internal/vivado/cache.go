package vivado

import (
	"container/list"
	"fmt"
	"math"
	"sync"

	"presp/internal/fpga"
	"presp/internal/rtl"
)

// CheckpointCache is a content-addressed store of synthesis checkpoints
// shared across tool instances and flow runs. A synthesis result is
// fully determined by the target device, the module hierarchy (names,
// interfaces, black-box structure and per-module resource costs), the
// out-of-context flag and the cost model's synthesis parameters — the
// cache key digests exactly those, so any change to a module's resources,
// its hierarchy, the device or the model invalidates the entry.
//
// The cache is bounded by an LRU eviction policy when MaxEntries is
// set (SetMaxEntries; the default is unbounded, preserving the
// original behaviour), so long strategy sweeps and resumed runs cannot
// grow memory without limit. Evictions only cost future re-synthesis
// time — a checkpoint is pure derived state.
//
// The cache is safe for concurrent use by the flow's worker pool.
// Checkpoints are deep-copied on both store and load, so callers can
// never mutate a cached entry through an aliased pointer.
//
// Concurrent misses on the same key are single-flighted (materialize):
// the first caller becomes the leader and pays the synthesis, every
// later caller waits on the flight and shares the leader's checkpoint —
// or its error. N flow runs racing on identical content therefore cost
// exactly one miss, which is what lets a shared flow service collapse
// duplicate submissions to one synthesis.
//
// An optional persistent tier (SetDiskStore) extends the cache across
// process restarts: every insert is written through to disk, a memory
// miss probes the disk before paying the compute (the probe rides the
// same single-flight, so a disk read promotes into memory exactly once
// per key however many callers race), and LRU eviction demotes an entry
// to disk-only instead of discarding it. Disk-served lookups count as
// hits — the whole point of the tier is that a restarted daemon's first
// submission costs file reads, not re-synthesis.
type CheckpointCache struct {
	mu        sync.Mutex
	max       int
	entries   map[string]*list.Element
	lru       *list.List // front = most recently used
	inflight  map[string]*flight
	disk      *DiskStore
	demoted   []*lruEntry // evicted entries pending a disk demotion write
	hits      int64
	misses    int64
	evictions int64
}

// flight is one in-progress materialization: the leader computes, the
// followers wait on done and read ck/err.
type flight struct {
	done chan struct{}
	ck   *SynthCheckpoint
	err  error
}

// flightRole reports how a materialize call was served.
type flightRole int

const (
	// roleHit: the checkpoint was already cached.
	roleHit flightRole = iota
	// roleLeader: this caller ran compute (a true miss).
	roleLeader
	// roleFollower: another caller was already computing the same key;
	// this one shared its outcome.
	roleFollower
)

// lruEntry is the list payload: the key rides along so eviction can
// delete the map entry from the list element alone.
type lruEntry struct {
	key string
	ck  *SynthCheckpoint
}

// NewCheckpointCache returns an empty, unbounded cache.
func NewCheckpointCache() *CheckpointCache {
	return &CheckpointCache{
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}
}

// NewCheckpointCacheWithLimit returns an empty cache holding at most
// max checkpoints (max <= 0 means unbounded).
func NewCheckpointCacheWithLimit(max int) *CheckpointCache {
	c := NewCheckpointCache()
	c.SetMaxEntries(max)
	return c
}

// SetMaxEntries bounds the cache to max checkpoints, evicting the
// least-recently-used entries immediately if it is already over the
// limit. max <= 0 removes the bound.
func (c *CheckpointCache) SetMaxEntries(max int) {
	c.mu.Lock()
	if max < 0 {
		max = 0
	}
	c.max = max
	c.evict()
	disk, demoted := c.disk, c.takeDemotedLocked()
	c.mu.Unlock()
	writeDemoted(disk, demoted)
}

// SetDiskStore attaches the persistent checkpoint tier (nil detaches):
// inserts write through to it, misses read through it, and evictions
// demote to it. Attach before sharing the cache across goroutines or
// runs; swapping stores mid-traffic is safe but pointless.
func (c *CheckpointCache) SetDiskStore(ds *DiskStore) {
	c.mu.Lock()
	c.disk = ds
	c.mu.Unlock()
}

// Disk returns the attached persistent tier (nil when the cache is
// memory-only).
func (c *CheckpointCache) Disk() *DiskStore {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// MaxEntries returns the configured bound (0 = unbounded).
func (c *CheckpointCache) MaxEntries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max
}

// Stats returns the cumulative hit and miss counts.
func (c *CheckpointCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns how many checkpoints the LRU policy has dropped.
func (c *CheckpointCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len returns the number of cached checkpoints.
func (c *CheckpointCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Preload seeds the cache with a checkpoint under an externally-known
// key — the resume path rehydrates journaled synthesis results through
// it. Preloading counts as neither hit nor miss.
//
// Store precedence is first-store-wins: preloading a key that is
// already cached is a no-op (the resident entry and its recency are
// untouched), and conversely a preload that lands while a flight for
// the same key is still computing wins the key — when the flight lands
// on the occupied entry its result is discarded and every flight
// subscriber is served the preloaded checkpoint. Keys are content
// addresses, so whichever copy arrives first is the correct value.
func (c *CheckpointCache) Preload(key string, ck *SynthCheckpoint) {
	if key == "" || ck == nil {
		return
	}
	c.mu.Lock()
	stored, inserted := c.storeLocked(key, ck)
	disk, demoted := c.disk, c.takeDemotedLocked()
	c.mu.Unlock()
	if disk != nil && inserted {
		disk.Store(key, stored) //nolint:errcheck // best-effort durability tier
	}
	writeDemoted(disk, demoted)
}

// lookup fetches a deep copy of the checkpoint under key, counting the
// access as a hit or miss and refreshing the entry's LRU position.
func (c *CheckpointCache) lookup(key string) (*SynthCheckpoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*lruEntry).ck.clone(), true
}

// storeLocked saves a deep copy of ck under key with first-store-wins
// precedence: if the key is already occupied the resident checkpoint is
// kept — value and LRU recency both untouched, the late store simply
// discarded — and returned with inserted=false. On insert it returns
// the cache-owned copy, which callers may hand to the disk tier (it is
// never mutated) but must clone before handing to cache clients.
// Callers hold c.mu.
func (c *CheckpointCache) storeLocked(key string, ck *SynthCheckpoint) (stored *SynthCheckpoint, inserted bool) {
	if el, ok := c.entries[key]; ok {
		return el.Value.(*lruEntry).ck, false
	}
	stored = ck.clone()
	c.entries[key] = c.lru.PushFront(&lruEntry{key: key, ck: stored})
	c.evict()
	return stored, true
}

// materialize returns the checkpoint under key, computing it at most
// once across concurrent callers. A cached entry is returned
// immediately (roleHit). Otherwise the first caller opens a flight:
// with a disk tier attached it first probes the store — a verified disk
// entry is promoted into memory and served as a hit (roleHit) without
// any compute — and only a two-tier miss makes it the leader
// (roleLeader): it counts the miss, runs compute outside the lock, and
// publishes the result — stored on success (write-through to the disk
// tier), discarded on error. Callers that arrive while the flight is
// open (roleFollower) wait and share the leader's outcome: a successful
// flight counts as a hit for each follower (refreshing the entry's LRU
// recency, so heavily-followed keys stay resident), a failed one
// propagates the leader's error to all of them without wedging the
// key — the next caller after a failure starts a fresh flight.
//
// If a Preload lands the key while the flight is computing, the
// preloaded entry wins (see Preload): the flight's result is discarded
// and the leader and every follower are served the resident checkpoint.
func (c *CheckpointCache) materialize(key string, compute func() (*SynthCheckpoint, error)) (*SynthCheckpoint, flightRole, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		ck := el.Value.(*lruEntry).ck.clone()
		c.mu.Unlock()
		return ck, roleHit, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, roleFollower, fl.err
		}
		c.mu.Lock()
		c.hits++
		if el, ok := c.entries[key]; ok {
			// The follower's hit is an access like any other: without
			// this refresh a heavily-followed key would age toward
			// eviction while colder directly-hit keys stayed resident.
			c.lru.MoveToFront(el)
		}
		c.mu.Unlock()
		return fl.ck.clone(), roleFollower, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	disk := c.disk
	c.mu.Unlock()

	// Read through the disk tier before paying the compute. The probe
	// happens inside the flight, so concurrent callers of a disk-resident
	// key cost exactly one file read and one promotion into memory.
	if disk != nil {
		if ck, ok := disk.Load(key); ok {
			out := c.land(key, fl, ck, nil, true)
			return out, roleHit, nil
		}
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	ck, err := compute()
	out := c.land(key, fl, ck, err, false)
	if err != nil {
		return nil, roleLeader, err
	}
	return out, roleLeader, nil
}

// land closes a flight with its outcome: on success the checkpoint is
// stored (first-store-wins — a Preload that landed first keeps the key
// and the flight result is discarded), written through to the disk tier
// when the insert took, and returned as the value every flight caller
// observes. hit marks a disk-served landing, which counts as a cache
// hit instead of a miss.
func (c *CheckpointCache) land(key string, fl *flight, ck *SynthCheckpoint, err error, hit bool) *SynthCheckpoint {
	var out *SynthCheckpoint
	var inserted bool
	c.mu.Lock()
	if err == nil {
		var stored *SynthCheckpoint
		stored, inserted = c.storeLocked(key, ck)
		fl.ck = stored
		if inserted {
			out = ck // the opener owns ck; no extra copy needed
		} else {
			out = stored.clone() // first store won; serve the resident value
		}
		if hit {
			c.hits++
		}
	} else {
		fl.err = err
	}
	delete(c.inflight, key)
	close(fl.done)
	disk, demoted := c.disk, c.takeDemotedLocked()
	c.mu.Unlock()
	if disk != nil && inserted {
		disk.Store(key, fl.ck) //nolint:errcheck // best-effort durability tier
	}
	writeDemoted(disk, demoted)
	return out
}

// evict drops least-recently-used entries until the bound is met. With
// a disk tier attached the dropped entries are queued for demotion —
// the caller must flush them via takeDemotedLocked/writeDemoted after
// releasing the lock, so eviction never does file I/O under c.mu.
// Callers must hold c.mu.
func (c *CheckpointCache) evict() {
	if c.max <= 0 {
		return
	}
	for len(c.entries) > c.max {
		oldest := c.lru.Back()
		if oldest == nil {
			return
		}
		ent := oldest.Value.(*lruEntry)
		c.lru.Remove(oldest)
		delete(c.entries, ent.key)
		c.evictions++
		if c.disk != nil {
			c.demoted = append(c.demoted, ent)
		}
	}
}

// takeDemotedLocked drains the pending demotion queue. Callers hold
// c.mu and pass the result to writeDemoted after unlocking.
func (c *CheckpointCache) takeDemotedLocked() []*lruEntry {
	d := c.demoted
	c.demoted = nil
	return d
}

// writeDemoted flushes evicted entries to the disk tier. The entries
// left the LRU already, so nothing else aliases their checkpoints; the
// write is best-effort (content-addressed keys make a lost demotion
// only a future re-synthesis, never a correctness problem) and usually
// a Stat no-op, since a write-through insert already persisted the key.
func writeDemoted(disk *DiskStore, entries []*lruEntry) {
	if disk == nil {
		return
	}
	for _, e := range entries {
		disk.Store(e.key, e.ck) //nolint:errcheck // best-effort durability tier
	}
}

// clone deep-copies a checkpoint.
func (ck *SynthCheckpoint) clone() *SynthCheckpoint {
	out := *ck
	out.BlackBoxes = append([]string(nil), ck.BlackBoxes...)
	return &out
}

// checkpointKey digests everything a synthesis run depends on into an
// FNV-1a content hash: device identity and capacity, the cost model's
// synthesis-time parameters (a checkpoint's Runtime is model-dependent),
// the OoC flag and the full module hierarchy with per-module interfaces
// and resource signatures.
func checkpointKey(dev *fpga.Device, model *CostModel, m *rtl.Module, ooc bool) string {
	h := newFNV()
	h.str(dev.Name)
	for _, n := range dev.Total {
		h.u64(uint64(n))
	}
	h.f64(model.SynthBase)
	h.f64(model.SynthPerK)
	h.f64(model.SynthExp)
	h.f64(model.SynthOoCFactor)
	h.f64(model.JitterFrac)
	h.u64(model.JitterSeed)
	if ooc {
		h.str("ooc")
	}
	m.Walk(func(path string, mod *rtl.Module) {
		h.str(path)
		h.str(mod.Name)
		if mod.BlackBox {
			h.str("bb")
		}
		if mod.ClockModifying {
			h.str("ckmod")
		}
		for _, p := range mod.Ports {
			h.str(p.Name)
			h.u64(uint64(p.Dir))
			h.u64(uint64(p.Width))
			h.u64(uint64(p.Class))
		}
		for _, r := range mod.Cost {
			h.u64(uint64(r))
		}
	})
	return fmt.Sprintf("%016x", uint64(*h))
}

// fnv is an incremental FNV-1a 64-bit hasher with field separators.
type fnv uint64

func newFNV() *fnv {
	h := fnv(1469598103934665603)
	return &h
}

func (h *fnv) byte(b byte) {
	*h = (*h ^ fnv(b)) * 1099511628211
}

func (h *fnv) str(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(0xff) // separator: ("ab","c") != ("a","bc")
}

func (h *fnv) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnv) f64(v float64) {
	h.u64(math.Float64bits(v))
}
