package vivado

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestStageCacheMemoryRoundTrip(t *testing.T) {
	sc := NewStageCache()
	if _, ok := sc.Lookup("abc"); ok {
		t.Fatal("lookup on empty cache hit")
	}
	body := []byte(`{"minutes":12.5,"payload":{"x":1}}`)
	if err := sc.Store("abc", body); err != nil {
		t.Fatalf("store: %v", err)
	}
	got, ok := sc.Lookup("abc")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("lookup = %q, %v; want stored body", got, ok)
	}
	// First store wins: a second store of the same key keeps the original.
	if err := sc.Store("abc", []byte(`{"other":true}`)); err != nil {
		t.Fatalf("re-store: %v", err)
	}
	got, _ = sc.Lookup("abc")
	if !bytes.Equal(got, body) {
		t.Fatalf("re-store replaced entry: %q", got)
	}
	hits, misses := sc.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
	if sc.Len() != 1 {
		t.Fatalf("len = %d; want 1", sc.Len())
	}
}

func TestStageCacheRejectsEmpty(t *testing.T) {
	sc := NewStageCache()
	if err := sc.Store("", []byte(`{}`)); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := sc.Store("k", nil); err == nil {
		t.Fatal("empty body accepted")
	}
}

func TestStageCacheDiskWriteThroughAndReadThrough(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sc := NewStageCache()
	sc.SetDiskStore(ds)
	body := []byte(`{"minutes":3,"payload":"x"}`)
	if err := sc.Store("feedbeef", body); err != nil {
		t.Fatalf("store: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "feedbeef"+diskArtifactExt)); err != nil {
		t.Fatalf("artifact not written through: %v", err)
	}

	// A fresh cache over the same store must read the artifact back —
	// that is the warm-restart path — and promote it into memory.
	ds2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	sc2 := NewStageCache()
	sc2.SetDiskStore(ds2)
	got, ok := sc2.Lookup("feedbeef")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("read-through = %q, %v; want stored body", got, ok)
	}
	if sc2.Len() != 1 {
		t.Fatalf("disk hit not promoted: len = %d", sc2.Len())
	}
	// Promoted: the second lookup is a memory hit even if the file goes.
	os.Remove(filepath.Join(dir, "feedbeef"+diskArtifactExt))
	if _, ok := sc2.Lookup("feedbeef"); !ok {
		t.Fatal("promoted entry lost")
	}
}

func TestStageCacheCorruptArtifactQuarantined(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sc := NewStageCache()
	sc.SetDiskStore(ds)
	if err := sc.Store("cafef00d", []byte(`{"v":1}`)); err != nil {
		t.Fatalf("store: %v", err)
	}
	path := filepath.Join(dir, "cafef00d"+diskArtifactExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}

	fresh := NewStageCache()
	fresh.SetDiskStore(ds)
	if _, ok := fresh.Lookup("cafef00d"); ok {
		t.Fatal("corrupt artifact served")
	}
	if _, err := os.Stat(path + diskQuarantineExt); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
	if st := ds.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d; want 1", st.Corrupt)
	}
}

func TestDiskStoreVerifyAllChecksArtifacts(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := ds.StoreArtifact("aa11", []byte(`{"ok":true}`)); err != nil {
		t.Fatalf("store artifact: %v", err)
	}
	// Plant a torn artifact next to the good one; reopen must quarantine
	// it while keeping the verified entry.
	bad := filepath.Join(dir, "bb22"+diskArtifactExt)
	if err := os.WriteFile(bad, []byte("torn"), 0o644); err != nil {
		t.Fatalf("plant: %v", err)
	}
	ds2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	st := ds2.Stats()
	if st.Entries != 1 || st.Corrupt != 1 || st.Quarantined != 1 {
		t.Fatalf("stats after reopen = %+v; want 1 live, 1 corrupt, 1 quarantined", st)
	}
	if _, ok := ds2.LoadArtifact("aa11"); !ok {
		t.Fatal("verified artifact not loadable")
	}
}

func TestStoreArtifactRejectsInvalidJSON(t *testing.T) {
	ds, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := ds.StoreArtifact("k1", []byte("not json")); err == nil {
		t.Fatal("invalid JSON body accepted")
	}
	if err := ds.StoreArtifact("", []byte(`{}`)); err == nil {
		t.Fatal("empty key accepted")
	}
}
