package vivado

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestCacheLRUEviction: a bounded cache drops the least-recently-used
// checkpoint first and counts the evictions.
func TestCacheLRUEviction(t *testing.T) {
	cache := NewCheckpointCacheWithLimit(2)
	if got := cache.MaxEntries(); got != 2 {
		t.Fatalf("MaxEntries = %d, want 2", got)
	}
	tool := newTool(t)
	tool.SetCache(cache)
	synth := func(luts int) {
		t.Helper()
		if _, err := tool.Synthesize(context.Background(), testModule(fmt.Sprintf("m%d", luts), luts), true); err != nil {
			t.Fatal(err)
		}
	}
	synth(20000) // A
	synth(20001) // B
	synth(20000) // hit A -> A most recent, B is LRU
	synth(20002) // C evicts B
	if got := cache.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := cache.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	hits0, _ := cache.Stats()
	synth(20000) // A must still be cached
	if hits, _ := cache.Stats(); hits != hits0+1 {
		t.Fatal("most-recently-used entry was evicted instead of the LRU one")
	}
	synth(20001) // B was evicted: this is a miss
	_, misses := cache.Stats()
	if misses != 4 { // A, B, C cold misses + B re-synthesis
		t.Fatalf("misses = %d, want 4", misses)
	}
}

// TestCacheSetMaxEntriesShrinks: lowering the bound on a full cache
// evicts immediately; zero removes the bound.
func TestCacheSetMaxEntriesShrinks(t *testing.T) {
	cache := NewCheckpointCache()
	for i := 0; i < 5; i++ {
		cache.Preload(fmt.Sprintf("k%d", i), &SynthCheckpoint{Name: fmt.Sprintf("m%d", i), Runtime: 1})
	}
	if cache.Len() != 5 || cache.Evictions() != 0 {
		t.Fatalf("unbounded cache evicted: len=%d evictions=%d", cache.Len(), cache.Evictions())
	}
	cache.SetMaxEntries(2)
	if cache.Len() != 2 {
		t.Fatalf("Len after shrink = %d, want 2", cache.Len())
	}
	if cache.Evictions() != 3 {
		t.Fatalf("Evictions after shrink = %d, want 3", cache.Evictions())
	}
	// The two most recently preloaded entries survive.
	for _, k := range []string{"k3", "k4"} {
		if _, ok := cache.lookup(k); !ok {
			t.Fatalf("recent entry %s was evicted", k)
		}
	}
	cache.SetMaxEntries(0)
	for i := 5; i < 20; i++ {
		cache.Preload(fmt.Sprintf("k%d", i), &SynthCheckpoint{Name: "m", Runtime: 1})
	}
	if cache.Len() != 17 {
		t.Fatalf("unbounding failed: len=%d, want 17", cache.Len())
	}
}

// TestFollowerHitRefreshesLRURecency: a follower served from a flight
// is an access like any other — it must refresh the entry's recency, so
// a heavily-followed key cannot be evicted ahead of colder entries.
//
// The test builds the racy interleaving by hand: a manually-opened
// flight guarantees the waiter can only be a follower (the key is not in
// entries, so it cannot hit; the flight exists, so it cannot lead), and
// the flight is landed together with a colder entry in one critical
// section, so when the follower wakes, "hot" is already the LRU victim.
// If the follower arrives too late it becomes a plain hit and the
// attempt retries — assertions only run on a genuine follower.
func TestFollowerHitRefreshesLRURecency(t *testing.T) {
	for try := 0; try < 50; try++ {
		cache := NewCheckpointCacheWithLimit(2)
		fl := &flight{done: make(chan struct{})}
		cache.mu.Lock()
		cache.inflight["hot"] = fl
		cache.mu.Unlock()

		roleCh := make(chan flightRole, 1)
		go func() {
			_, role, _ := cache.materialize("hot", func() (*SynthCheckpoint, error) {
				return nil, fmt.Errorf("waiter must not compute")
			})
			roleCh <- role
		}()
		time.Sleep(time.Millisecond) // give the waiter time to park

		// Land the flight the way a leader would, and age "hot" behind
		// "cold" before the follower can observe anything.
		cache.mu.Lock()
		stored, _ := cache.storeLocked("hot", &SynthCheckpoint{Name: "hot", Runtime: 1})
		fl.ck = stored
		delete(cache.inflight, "hot")
		cache.storeLocked("cold", &SynthCheckpoint{Name: "cold", Runtime: 1})
		close(fl.done)
		cache.mu.Unlock()

		if role := <-roleCh; role != roleFollower {
			continue // waiter arrived after the landing; retry the race
		}

		// The follower's hit refreshed "hot", so the next eviction must
		// take "cold".
		cache.mu.Lock()
		cache.storeLocked("new", &SynthCheckpoint{Name: "new", Runtime: 1})
		_, hotThere := cache.entries["hot"]
		_, coldThere := cache.entries["cold"]
		cache.mu.Unlock()
		if !hotThere {
			t.Fatal("followed key was evicted ahead of a colder entry")
		}
		if coldThere {
			t.Fatal("eviction dropped neither candidate — LRU bookkeeping broken")
		}
		return
	}
	t.Skip("could not park a follower in 50 attempts")
}

// TestCachePreloadSemantics: preloading counts as neither hit nor miss,
// ignores nil/empty input, and the preloaded checkpoint round-trips.
func TestCachePreloadSemantics(t *testing.T) {
	cache := NewCheckpointCache()
	cache.Preload("", &SynthCheckpoint{Name: "x"})
	cache.Preload("k", nil)
	if cache.Len() != 0 {
		t.Fatal("empty-key or nil-checkpoint preload stored something")
	}
	ck := &SynthCheckpoint{Name: "acc", Runtime: 12.5, BlackBoxes: []string{"bb"}}
	cache.Preload("k", ck)
	if h, m := cache.Stats(); h != 0 || m != 0 {
		t.Fatalf("preload counted as hit/miss: %d/%d", h, m)
	}
	got, ok := cache.lookup("k")
	if !ok || got.Name != "acc" || got.Runtime != 12.5 {
		t.Fatalf("preloaded checkpoint did not round-trip: %+v", got)
	}
	// Deep copy: mutating the retrieved checkpoint must not corrupt the
	// cached entry.
	got.BlackBoxes[0] = "mutated"
	again, _ := cache.lookup("k")
	if again.BlackBoxes[0] != "bb" {
		t.Fatal("cache aliases stored checkpoint slices")
	}
}
