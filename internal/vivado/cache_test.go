package vivado

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"presp/internal/fpga"
	"presp/internal/rtl"
)

func testModule(name string, luts int) *rtl.Module {
	m := &rtl.Module{Name: name, Cost: fpga.NewResources(luts, luts, 4, 8)}
	m.AddPort("clk", rtl.In, 1, rtl.ClockPort)
	m.AddPort("data", rtl.In, 64, rtl.DataPort)
	sub := &rtl.Module{Name: name + "_core", Cost: fpga.NewResources(luts/2, luts/2, 2, 4)}
	m.AddChild("u_core", sub)
	return m
}

func cachedTool(t *testing.T, board string) (*Tool, *CheckpointCache) {
	t.Helper()
	dev, err := fpga.ByBoard(board)
	if err != nil {
		t.Fatal(err)
	}
	tool, err := New(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCheckpointCache()
	tool.SetCache(cache)
	return tool, cache
}

// TestCacheHitMatchesColdSynthesis: the checkpoint served from a warm
// cache is deep-equal to the one a cold synthesis produces, and the
// caller cannot corrupt the cache through the returned pointer.
func TestCacheHitMatchesColdSynthesis(t *testing.T) {
	tool, cache := cachedTool(t, "VC707")
	m := testModule("acc", 20000)

	cold, err := tool.Synthesize(context.Background(), m, true)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := tool.Synthesize(context.Background(), m, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cache hit differs from cold synthesis:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if cold == warm {
		t.Fatal("cache returned an aliased pointer, not a copy")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats: %d hits / %d misses, want 1/1", hits, misses)
	}

	// Mutating the returned checkpoint must not poison later hits.
	warm.Resources[fpga.LUT] = 1
	warm.Runtime = -1
	again, err := tool.Synthesize(context.Background(), m, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Fatal("mutating a returned checkpoint corrupted the cache")
	}
}

// TestCacheKeyInvalidation: any change to the module's resources, its
// hierarchy, the synthesis mode, the device or the cost model's
// synthesis parameters must miss.
func TestCacheKeyInvalidation(t *testing.T) {
	tool, cache := cachedTool(t, "VC707")
	if _, err := tool.Synthesize(context.Background(), testModule("acc", 20000), true); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		label string
		run   func() error
	}{
		{"changed resources", func() error {
			_, err := tool.Synthesize(context.Background(), testModule("acc", 20001), true)
			return err
		}},
		{"changed ooc mode", func() error {
			_, err := tool.Synthesize(context.Background(), testModule("acc", 20000), false)
			return err
		}},
		{"changed hierarchy", func() error {
			m := testModule("acc", 20000)
			m.AddChild("u_extra", &rtl.Module{Name: "extra", Cost: fpga.NewResources(10, 10, 0, 0)})
			_, err := tool.Synthesize(context.Background(), m, true)
			return err
		}},
		{"changed device", func() error {
			dev, err := fpga.ByBoard("VCU118")
			if err != nil {
				return err
			}
			other, err := New(dev, nil)
			if err != nil {
				return err
			}
			other.SetCache(cache)
			_, err = other.Synthesize(context.Background(), testModule("acc", 20000), true)
			return err
		}},
		{"changed model", func() error {
			model := DefaultCostModel()
			model.SynthPerK *= 2
			dev, err := fpga.ByBoard("VC707")
			if err != nil {
				return err
			}
			other, err := New(dev, model)
			if err != nil {
				return err
			}
			other.SetCache(cache)
			_, err = other.Synthesize(context.Background(), testModule("acc", 20000), true)
			return err
		}},
	}
	for i, tc := range cases {
		before, missesBefore := cache.Stats()
		if err := tc.run(); err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		hits, misses := cache.Stats()
		if hits != before || misses != missesBefore+1 {
			t.Fatalf("case %d (%s): expected a miss, got hits %d->%d misses %d->%d",
				i, tc.label, before, hits, missesBefore, misses)
		}
	}

	// And the identical input still hits.
	hitsBefore, _ := cache.Stats()
	if _, err := tool.Synthesize(context.Background(), testModule("acc", 20000), true); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != hitsBefore+1 {
		t.Fatal("identical module no longer hits after unrelated inserts")
	}
}

// TestCacheConcurrentSynthesize hammers one shared cache from many
// goroutines — the race detector gates the locking discipline.
func TestCacheConcurrentSynthesize(t *testing.T) {
	tool, cache := cachedTool(t, "VC707")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				m := testModule(fmt.Sprintf("acc%d", i%4), 10000+(i%4)*100)
				ck, err := tool.Synthesize(context.Background(), m, true)
				if err != nil {
					errs <- err
					return
				}
				// Touch the result: clones must be private per caller.
				ck.BlackBoxes = append(ck.BlackBoxes, "scratch")
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cache.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4", cache.Len())
	}
	hits, misses := cache.Stats()
	if hits+misses != 64 {
		t.Fatalf("accounted %d accesses, want 64", hits+misses)
	}
	if misses < 4 {
		t.Fatalf("only %d misses for 4 distinct designs", misses)
	}
}

// TestToolWithoutCache: a cache-less tool keeps working and reports zero
// cache traffic.
func TestToolWithoutCache(t *testing.T) {
	dev, err := fpga.ByBoard("VC707")
	if err != nil {
		t.Fatal(err)
	}
	tool, err := New(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tool.Synthesize(context.Background(), testModule("acc", 20000), true); err != nil {
		t.Fatal(err)
	}
	if hits, misses := tool.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("cache-less tool reported traffic: %d/%d", hits, misses)
	}
}
