package vivado

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"presp/internal/fpga"
)

// TestMaterializeSingleFlight drives N concurrent Synthesize calls for
// the same content through one shared cache: exactly one leader must
// pay the miss, everyone else shares the checkpoint as a hit, and all
// results are identical.
func TestMaterializeSingleFlight(t *testing.T) {
	dev := fpga.VC707()
	cache := NewCheckpointCache()

	const n = 32
	results := make([]*SynthCheckpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One tool per goroutine, as the flow service holds one tool
			// per concurrent run; the cache is the shared layer.
			tool, err := New(dev, nil)
			if err != nil {
				errs[i] = err
				return
			}
			tool.SetCache(cache)
			results[i], errs[i] = tool.Synthesize(context.Background(), testModule("sf_mod", 1200), true)
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("synthesize %d: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("synthesize %d returned nil checkpoint", i)
		}
		if results[i].Name != "sf_mod" || results[i].Runtime != results[0].Runtime ||
			results[i].Resources != results[0].Resources || results[i].OoC != results[0].OoC {
			t.Fatalf("checkpoint %d = %+v, want identical to leader %+v", i, results[i], results[0])
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 (single-flight leader)", misses)
	}
	if hits != n-1 {
		t.Fatalf("cache hits = %d, want %d (every follower shares the flight)", hits, n-1)
	}
}

// TestMaterializeLeaderErrorPropagates holds a flight open with a
// blocking compute, parks followers on it, then fails the leader: every
// follower must observe the leader's error, the key must not stay
// wedged, and the next caller must start a fresh flight.
func TestMaterializeLeaderErrorPropagates(t *testing.T) {
	cache := NewCheckpointCache()
	boom := errors.New("synthesis crashed")
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, role, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
			close(started)
			<-release
			return nil, boom
		})
		if role != roleLeader {
			leaderDone <- fmt.Errorf("leader got role %v, want roleLeader", role)
			return
		}
		leaderDone <- err
	}()
	<-started

	const followers = 8
	var wg sync.WaitGroup
	ferrs := make([]error, followers)
	froles := make([]flightRole, followers)
	for i := 0; i < followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, froles[i], ferrs[i] = cache.materialize("k", func() (*SynthCheckpoint, error) {
				return nil, errors.New("follower must not compute")
			})
		}()
	}
	close(release)
	wg.Wait()
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want %v", err, boom)
	}
	for i := 0; i < followers; i++ {
		// A follower that arrived after the flight closed becomes a new
		// leader and fails on its own compute; either way no goroutine
		// may hang and no one may see a checkpoint.
		if ferrs[i] == nil {
			t.Fatalf("follower %d got nil error", i)
		}
		if froles[i] == roleFollower && !errors.Is(ferrs[i], boom) {
			t.Fatalf("follower %d error = %v, want leader's %v", i, ferrs[i], boom)
		}
	}

	// The group is not wedged: a fresh call computes anew and succeeds.
	ck, role, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
		return &SynthCheckpoint{Name: "fresh", Runtime: 1}, nil
	})
	if err != nil || role != roleLeader || ck == nil || ck.Name != "fresh" {
		t.Fatalf("post-failure materialize = (%+v, %v, %v), want fresh leader success", ck, role, err)
	}
}

// TestMaterializeNoAliasing: the leader's returned checkpoint and every
// follower's copy are independent of the cached entry — mutating any of
// them must not corrupt what later callers see. This pins the
// reduced-clone landing path (the leader hands back its own computed
// checkpoint, the cache keeps its private copy).
func TestMaterializeNoAliasing(t *testing.T) {
	cache := NewCheckpointCache()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderCk := make(chan *SynthCheckpoint, 1)
	go func() {
		ck, _, _ := cache.materialize("k", func() (*SynthCheckpoint, error) {
			close(started)
			<-release
			return &SynthCheckpoint{Name: "acc", Runtime: 7, BlackBoxes: []string{"u_rp0"}}, nil
		})
		leaderCk <- ck
	}()
	<-started
	followerCk := make(chan *SynthCheckpoint, 1)
	go func() {
		ck, _, _ := cache.materialize("k", func() (*SynthCheckpoint, error) {
			return nil, fmt.Errorf("follower must not compute")
		})
		followerCk <- ck
	}()
	close(release)
	lck, fck := <-leaderCk, <-followerCk
	if lck == nil || fck == nil {
		t.Fatal("nil checkpoint from flight")
	}
	if lck == fck {
		t.Fatal("leader and follower share one checkpoint pointer")
	}
	// Mutate both returned copies through every reference type they carry.
	lck.Name = "scribbled"
	lck.BlackBoxes[0] = "scribbled"
	fck.Name = "scribbled2"
	fck.BlackBoxes[0] = "scribbled2"
	cached, ok := cache.lookup("k")
	if !ok {
		t.Fatal("entry missing")
	}
	if cached.Name != "acc" || cached.BlackBoxes[0] != "u_rp0" {
		t.Fatalf("cache was corrupted through an aliased result: %+v", cached)
	}
}

// TestPreloadWinsOverOpenFlight: a Preload landing while a flight for
// the same key is still computing takes the key — the flight's own
// result is discarded on landing, and the leader plus every follower are
// served the preloaded checkpoint. This pins the first-store-wins
// precedence for the journal-rehydration race.
func TestPreloadWinsOverOpenFlight(t *testing.T) {
	cache := NewCheckpointCache()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderCk := make(chan *SynthCheckpoint, 1)
	go func() {
		ck, role, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
			close(started)
			<-release
			return &SynthCheckpoint{Name: "computed", Runtime: 9}, nil
		})
		if err != nil || role != roleLeader {
			t.Errorf("leader = role %v, err %v", role, err)
		}
		leaderCk <- ck
	}()
	<-started

	follower := make(chan *SynthCheckpoint, 1)
	go func() {
		ck, _, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
			return nil, fmt.Errorf("must not compute")
		})
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		follower <- ck
	}()

	// The journal-rehydration path lands while the flight is computing.
	preloaded := &SynthCheckpoint{Name: "preloaded", Runtime: 3, BlackBoxes: []string{"u_rp0"}}
	cache.Preload("k", preloaded)
	close(release)

	if ck := <-leaderCk; ck == nil || ck.Name != "preloaded" {
		t.Fatalf("leader got %+v, want the preloaded checkpoint", ck)
	}
	if ck := <-follower; ck == nil || ck.Name != "preloaded" {
		t.Fatalf("follower got %+v, want the preloaded checkpoint", ck)
	}
	cached, ok := cache.lookup("k")
	if !ok || cached.Name != "preloaded" || cached.Runtime != 3 {
		t.Fatalf("cache holds %+v, want the preloaded checkpoint (first store wins)", cached)
	}
}

// TestMaterializeFailedFlightNotCached asserts a failed leader leaves
// nothing behind: no entry, no inflight record, and the miss counter
// reflects each real attempt.
func TestMaterializeFailedFlightNotCached(t *testing.T) {
	cache := NewCheckpointCache()
	if _, _, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
		return nil, errors.New("no")
	}); err == nil {
		t.Fatal("failed compute reported success")
	}
	if cache.Len() != 0 {
		t.Fatalf("failed flight cached an entry (len=%d)", cache.Len())
	}
	if _, misses := cache.Stats(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}
