package vivado

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"presp/internal/fpga"
)

// TestMaterializeSingleFlight drives N concurrent Synthesize calls for
// the same content through one shared cache: exactly one leader must
// pay the miss, everyone else shares the checkpoint as a hit, and all
// results are identical.
func TestMaterializeSingleFlight(t *testing.T) {
	dev := fpga.VC707()
	cache := NewCheckpointCache()

	const n = 32
	results := make([]*SynthCheckpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One tool per goroutine, as the flow service holds one tool
			// per concurrent run; the cache is the shared layer.
			tool, err := New(dev, nil)
			if err != nil {
				errs[i] = err
				return
			}
			tool.SetCache(cache)
			results[i], errs[i] = tool.Synthesize(context.Background(), testModule("sf_mod", 1200), true)
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("synthesize %d: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("synthesize %d returned nil checkpoint", i)
		}
		if results[i].Name != "sf_mod" || results[i].Runtime != results[0].Runtime ||
			results[i].Resources != results[0].Resources || results[i].OoC != results[0].OoC {
			t.Fatalf("checkpoint %d = %+v, want identical to leader %+v", i, results[i], results[0])
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 (single-flight leader)", misses)
	}
	if hits != n-1 {
		t.Fatalf("cache hits = %d, want %d (every follower shares the flight)", hits, n-1)
	}
}

// TestMaterializeLeaderErrorPropagates holds a flight open with a
// blocking compute, parks followers on it, then fails the leader: every
// follower must observe the leader's error, the key must not stay
// wedged, and the next caller must start a fresh flight.
func TestMaterializeLeaderErrorPropagates(t *testing.T) {
	cache := NewCheckpointCache()
	boom := errors.New("synthesis crashed")
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, role, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
			close(started)
			<-release
			return nil, boom
		})
		if role != roleLeader {
			leaderDone <- fmt.Errorf("leader got role %v, want roleLeader", role)
			return
		}
		leaderDone <- err
	}()
	<-started

	const followers = 8
	var wg sync.WaitGroup
	ferrs := make([]error, followers)
	froles := make([]flightRole, followers)
	for i := 0; i < followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, froles[i], ferrs[i] = cache.materialize("k", func() (*SynthCheckpoint, error) {
				return nil, errors.New("follower must not compute")
			})
		}()
	}
	close(release)
	wg.Wait()
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want %v", err, boom)
	}
	for i := 0; i < followers; i++ {
		// A follower that arrived after the flight closed becomes a new
		// leader and fails on its own compute; either way no goroutine
		// may hang and no one may see a checkpoint.
		if ferrs[i] == nil {
			t.Fatalf("follower %d got nil error", i)
		}
		if froles[i] == roleFollower && !errors.Is(ferrs[i], boom) {
			t.Fatalf("follower %d error = %v, want leader's %v", i, ferrs[i], boom)
		}
	}

	// The group is not wedged: a fresh call computes anew and succeeds.
	ck, role, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
		return &SynthCheckpoint{Name: "fresh", Runtime: 1}, nil
	})
	if err != nil || role != roleLeader || ck == nil || ck.Name != "fresh" {
		t.Fatalf("post-failure materialize = (%+v, %v, %v), want fresh leader success", ck, role, err)
	}
}

// TestMaterializeFailedFlightNotCached asserts a failed leader leaves
// nothing behind: no entry, no inflight record, and the miss counter
// reflects each real attempt.
func TestMaterializeFailedFlightNotCached(t *testing.T) {
	cache := NewCheckpointCache()
	if _, _, err := cache.materialize("k", func() (*SynthCheckpoint, error) {
		return nil, errors.New("no")
	}); err == nil {
		t.Fatal("failed compute reported success")
	}
	if cache.Len() != 0 {
		t.Fatalf("failed flight cached an entry (len=%d)", cache.Len())
	}
	if _, misses := cache.Stats(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}
