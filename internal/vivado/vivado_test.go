package vivado

import (
	"context"
	"strings"
	"testing"

	"presp/internal/fpga"
	"presp/internal/rtl"
	"presp/internal/tile"
)

func newTool(t *testing.T) *Tool {
	t.Helper()
	tool, err := New(fpga.VC707(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return tool
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil device accepted")
	}
	bad := DefaultCostModel()
	bad.PRPerK = 0
	if _, err := New(fpga.VC707(), bad); err == nil {
		t.Fatal("invalid cost model accepted")
	}
}

func TestSynthesize(t *testing.T) {
	tool := newTool(t)
	m := &rtl.Module{Name: "m", Cost: fpga.NewResources(10000, 11000, 4, 8)}
	ck, err := tool.Synthesize(context.Background(), m, true)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Resources != m.Cost || !ck.OoC || ck.Runtime <= 0 {
		t.Fatalf("checkpoint wrong: %+v", ck)
	}
	if _, err := tool.Synthesize(context.Background(), nil, false); err == nil {
		t.Fatal("nil module synthesized")
	}
	empty := &rtl.Module{Name: "empty"}
	if _, err := tool.Synthesize(context.Background(), empty, false); err == nil {
		t.Fatal("empty module synthesized")
	}
	huge := &rtl.Module{Name: "huge", Cost: fpga.NewResources(400000, 0, 0, 0)}
	if _, err := tool.Synthesize(context.Background(), huge, false); err == nil {
		t.Fatal("over-capacity module synthesized")
	}
}

func TestSynthesizeRecordsBlackBoxes(t *testing.T) {
	tool := newTool(t)
	top := &rtl.Module{Name: "top", Cost: fpga.NewResources(5000, 5000, 0, 0)}
	bb := &rtl.Module{Name: "rp_bb", BlackBox: true}
	top.AddChild("rp0", bb)
	ck, err := tool.Synthesize(context.Background(), top, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.BlackBoxes) != 1 {
		t.Fatalf("black boxes: got %v", ck.BlackBoxes)
	}
}

func TestCheckDFX(t *testing.T) {
	tool := newTool(t)
	pb := fpga.Pblock{Name: "p", X0: 0, Y0: 0, X1: 3, Y1: 1}
	good := tile.WrapperModule("fft", fpga.NewResources(33000, 36000, 70, 140))
	if err := tool.CheckDFX(context.Background(), good, good.Cost, pb); err != nil {
		t.Fatalf("compliant module rejected: %v", err)
	}
	// Clock-modifying logic inside the partition.
	bad := tile.NativeAccelModule("acc", fpga.NewResources(10000, 10000, 0, 0))
	if err := tool.CheckDFX(context.Background(), bad, bad.TotalCost(), pb); err == nil {
		t.Fatal("clock-modifying partition passed DRC")
	}
	// Partition larger than its pblock.
	tiny := fpga.Pblock{Name: "tiny", X0: 0, Y0: 0, X1: 0, Y1: 0}
	if err := tool.CheckDFX(context.Background(), good, good.Cost, tiny); err == nil {
		t.Fatal("oversized partition passed DRC")
	}
	// Invalid pblock.
	oob := fpga.Pblock{Name: "oob", X0: 0, Y0: 0, X1: 99, Y1: 0}
	if err := tool.CheckDFX(context.Background(), good, good.Cost, oob); err == nil {
		t.Fatal("out-of-grid pblock passed DRC")
	}
}

func TestPreRouteStatic(t *testing.T) {
	tool := newTool(t)
	static := &SynthCheckpoint{Name: "static", Resources: fpga.NewResources(80000, 90000, 100, 20)}
	pblocks := map[string]fpga.Pblock{
		"rp1": {Name: "rp1", X0: 0, Y0: 1, X1: 3, Y1: 2},
		"rp2": {Name: "rp2", X0: 4, Y0: 1, X1: 7, Y1: 2},
	}
	rs, err := tool.PreRouteStatic(context.Background(), "soc", static, pblocks, fpga.NewResources(60000, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Runtime <= 0 {
		t.Fatal("pre-route took no time")
	}
	if rs.RPFraction(tool.Device()) <= 0 {
		t.Fatal("no fabric reserved")
	}
	// Overlapping pblocks must be rejected.
	pblocks["rp3"] = fpga.Pblock{Name: "rp3", X0: 3, Y0: 2, X1: 5, Y1: 3}
	if _, err := tool.PreRouteStatic(context.Background(), "soc", static, pblocks, fpga.Resources{}); err == nil {
		t.Fatal("overlapping pblocks accepted")
	}
	if _, err := tool.PreRouteStatic(context.Background(), "soc", static, nil, fpga.Resources{}); err == nil {
		t.Fatal("pre-route without partitions accepted")
	}
	if _, err := tool.PreRouteStatic(context.Background(), "soc", nil, pblocks, fpga.Resources{}); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
}

func TestPreRouteStaticCapacity(t *testing.T) {
	tool := newTool(t)
	// Static part too big for the fabric left over by the pblocks.
	static := &SynthCheckpoint{Name: "static", Resources: fpga.NewResources(290000, 0, 0, 0)}
	pblocks := map[string]fpga.Pblock{
		"rp1": {Name: "rp1", X0: 0, Y0: 0, X1: 7, Y1: 3}, // half the device
	}
	if _, err := tool.PreRouteStatic(context.Background(), "soc", static, pblocks, fpga.Resources{}); err == nil {
		t.Fatal("over-capacity design accepted")
	}
}

func TestImplementSerial(t *testing.T) {
	tool := newTool(t)
	res, err := tool.ImplementSerial(context.Background(), "soc", fpga.NewResources(200000, 0, 0, 0), 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 {
		t.Fatal("no runtime")
	}
	if _, err := tool.ImplementSerial(context.Background(), "soc", fpga.Resources{}, 0, 0); err == nil {
		t.Fatal("empty design implemented")
	}
	if _, err := tool.ImplementSerial(context.Background(), "soc", fpga.NewResources(400000, 0, 0, 0), 0, 0); err == nil {
		t.Fatal("over-capacity design implemented")
	}
}

func TestImplementInContext(t *testing.T) {
	tool := newTool(t)
	static := &SynthCheckpoint{Name: "static", Resources: fpga.NewResources(80000, 0, 0, 0)}
	pblocks := map[string]fpga.Pblock{
		"rp1": {Name: "rp1", X0: 0, Y0: 1, X1: 3, Y1: 2},
	}
	rs, err := tool.PreRouteStatic(context.Background(), "soc", static, pblocks, fpga.NewResources(30000, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	cks := map[string]*SynthCheckpoint{
		"rp1": {Name: "rp1", Resources: fpga.NewResources(30000, 0, 0, 0)},
	}
	cr, err := tool.ImplementInContext(context.Background(), rs, []string{"rp1"}, cks)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Runtime <= 0 {
		t.Fatal("in-context run took no time")
	}
	// Unknown partition, missing checkpoint, oversized module.
	if _, err := tool.ImplementInContext(context.Background(), rs, []string{"ghost"}, cks); err == nil {
		t.Fatal("unknown partition accepted")
	}
	cks["rp1"].Resources = fpga.NewResources(400000, 0, 0, 0)
	if _, err := tool.ImplementInContext(context.Background(), rs, []string{"rp1"}, cks); err == nil {
		t.Fatal("module larger than its pblock accepted")
	}
	if _, err := tool.ImplementInContext(context.Background(), nil, []string{"rp1"}, cks); err == nil {
		t.Fatal("nil routed static accepted")
	}
	if _, err := tool.ImplementInContext(context.Background(), rs, nil, cks); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestBitstreams(t *testing.T) {
	tool := newTool(t)
	pb := fpga.Pblock{Name: "p", X0: 0, Y0: 0, X1: 3, Y1: 1}
	bs, tm, err := tool.WritePartialBitstream(context.Background(), "x.pbs", pb, fpga.NewResources(30000, 0, 0, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Size() <= 0 || tm <= 0 {
		t.Fatal("degenerate partial bitstream")
	}
	if bs.CompressionRatio() < 2 {
		t.Fatalf("compression ineffective: %.2fx", bs.CompressionRatio())
	}
	full, _, err := tool.WriteFullBitstream(context.Background(), "x.bit", fpga.NewResources(150000, 0, 0, 0), true)
	if err != nil {
		t.Fatal(err)
	}
	if full.Size() <= bs.Size() {
		t.Fatal("full bitstream smaller than a partial")
	}
}

func TestUtilizationReport(t *testing.T) {
	tool := newTool(t)
	rep := tool.UtilizationReport("SOC_2", fpga.NewResources(151800, 0, 515, 1400))
	for _, want := range []string{"SOC_2", "xc7vx485t", "50.0%", "LUT", "BRAM"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestPblockUtilizationReport(t *testing.T) {
	tool := newTool(t)
	pb := fpga.Pblock{Name: "rt_1", X0: 0, Y0: 0, X1: 3, Y1: 1}
	rep, err := tool.PblockUtilizationReport("fft", pb, fpga.NewResources(33690, 37000, 72, 144))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "fft") || !strings.Contains(rep, "In Pblock") {
		t.Fatalf("report wrong:\n%s", rep)
	}
	bad := fpga.Pblock{Name: "oob", X0: 0, Y0: 0, X1: 99, Y1: 0}
	if _, err := tool.PblockUtilizationReport("x", bad, fpga.Resources{}); err == nil {
		t.Fatal("invalid pblock accepted")
	}
}
