package vivado

import (
	"fmt"
	"strings"

	"presp/internal/fpga"
)

// UtilizationReport renders a vendor-style resource utilization report
// for a design (or partition) using `used` resources on the tool's
// device — the report_utilization artifact designers read after
// synthesis and implementation.
func (t *Tool) UtilizationReport(name string, used fpga.Resources) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Utilization Design Information\n")
	fmt.Fprintf(&b, "Design: %s  Part: %s (%s)\n\n", name, t.dev.Name, t.dev.Board)
	b.WriteString("+-----------+--------+-----------+--------+\n")
	b.WriteString("| Site Type | Used   | Available | Util%  |\n")
	b.WriteString("+-----------+--------+-----------+--------+\n")
	for _, k := range fpga.Kinds() {
		avail := t.dev.Total[k]
		pct := 0.0
		if avail > 0 {
			pct = 100 * float64(used[k]) / float64(avail)
		}
		fmt.Fprintf(&b, "| %-9s | %6d | %9d | %5.1f%% |\n", k, used[k], avail, pct)
	}
	b.WriteString("+-----------+--------+-----------+--------+\n")
	return b.String()
}

// PblockUtilizationReport renders the per-partition utilization against
// a pblock's enclosed fabric.
func (t *Tool) PblockUtilizationReport(name string, pb fpga.Pblock, used fpga.Resources) (string, error) {
	if err := pb.Validate(t.dev); err != nil {
		return "", err
	}
	avail := pb.ResourcesOn(t.dev)
	var b strings.Builder
	fmt.Fprintf(&b, "Pblock Utilization: %s (%s)\n\n", name, pb)
	b.WriteString("+-----------+--------+-----------+--------+\n")
	b.WriteString("| Site Type | Used   | In Pblock | Util%  |\n")
	b.WriteString("+-----------+--------+-----------+--------+\n")
	for _, k := range fpga.Kinds() {
		pct := 0.0
		if avail[k] > 0 {
			pct = 100 * float64(used[k]) / float64(avail[k])
		} else if used[k] > 0 {
			pct = 999.9
		}
		fmt.Fprintf(&b, "| %-9s | %6d | %9d | %5.1f%% |\n", k, used[k], avail[k], pct)
	}
	b.WriteString("+-----------+--------+-----------+--------+\n")
	return b.String(), nil
}
