package vivado

import (
	"fmt"
	"sync"
)

// StageCache is the content-addressed artifact cache behind incremental
// re-flow: where CheckpointCache holds synthesis checkpoints keyed by
// module content, StageCache holds the downstream stage results —
// floorplan solutions, routed-static and per-partition implementation
// results, bitstream images — keyed by digests the flow layer derives
// from the design, the cost model, and the upstream artifact keys. The
// cache itself is schema-agnostic: values are opaque JSON bodies that
// the flow layer encodes and decodes; the cache only moves bytes.
//
// Two tiers mirror CheckpointCache's shape: an in-memory map for the
// hot path, and an optional DiskStore (shared with the checkpoint tier,
// distinguished by file extension) so incremental hits survive process
// restarts. Lookups read through — a disk hit is promoted into memory —
// and stores write through. Entries are content-addressed, so the first
// store wins and a re-store of the same key is a no-op; there is no
// in-memory eviction (artifact bodies are small modelled results, and
// the disk tier has its own byte budget).
//
// All methods are safe for concurrent use.
type StageCache struct {
	mu      sync.Mutex
	entries map[string][]byte
	disk    *DiskStore

	hits   int64
	misses int64
}

// NewStageCache returns an empty, memory-only stage-artifact cache.
func NewStageCache() *StageCache {
	return &StageCache{entries: make(map[string][]byte)}
}

// SetDiskStore attaches (or with nil, detaches) the persistent tier.
// The store may be shared with a CheckpointCache — checkpoint and
// artifact entries use distinct file extensions and never collide.
func (sc *StageCache) SetDiskStore(ds *DiskStore) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.disk = ds
}

// Disk returns the attached persistent tier, or nil.
func (sc *StageCache) Disk() *DiskStore {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.disk
}

// Lookup fetches the artifact body stored under key, reading through to
// the disk tier (and promoting a disk hit into memory) when attached.
// The returned slice is shared — callers must not mutate it.
func (sc *StageCache) Lookup(key string) ([]byte, bool) {
	if key == "" {
		return nil, false
	}
	sc.mu.Lock()
	if body, ok := sc.entries[key]; ok {
		sc.hits++
		sc.mu.Unlock()
		return body, true
	}
	disk := sc.disk
	sc.mu.Unlock()
	// Disk I/O happens outside sc.mu: the store serializes internally,
	// and a concurrent Store of the same key is benign (same bytes).
	if disk != nil {
		if body, ok := disk.LoadArtifact(key); ok {
			sc.mu.Lock()
			if _, present := sc.entries[key]; !present {
				sc.entries[key] = body
			}
			sc.hits++
			sc.mu.Unlock()
			return body, true
		}
	}
	sc.mu.Lock()
	sc.misses++
	sc.mu.Unlock()
	return nil, false
}

// Store records body under key, writing through to the disk tier when
// attached. Keys are content addresses: the first store wins, and
// storing an already-present key is a no-op. The body is retained as
// given — callers must not mutate it afterwards.
func (sc *StageCache) Store(key string, body []byte) error {
	if key == "" || len(body) == 0 {
		return fmt.Errorf("vivado: stage cache: empty key or body")
	}
	sc.mu.Lock()
	if _, present := sc.entries[key]; present {
		sc.mu.Unlock()
		return nil
	}
	sc.entries[key] = body
	disk := sc.disk
	sc.mu.Unlock()
	if disk != nil {
		return disk.StoreArtifact(key, body)
	}
	return nil
}

// Stats returns the lookup hit/miss totals.
func (sc *StageCache) Stats() (hits, misses int64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.hits, sc.misses
}

// Len returns the number of artifacts held in memory.
func (sc *StageCache) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.entries)
}
